// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section VI). Each paper artifact has one benchmark:
//
//	Table I  -> BenchmarkDefaultScenario        (the default workload)
//	Fig. 6   -> BenchmarkFig6WelfareVsSlots
//	Fig. 7   -> BenchmarkFig7WelfareVsArrivalRate
//	Fig. 8   -> BenchmarkFig8WelfareVsCost
//	Fig. 9   -> sigma_* metrics of BenchmarkFig6WelfareVsSlots
//	Fig. 10  -> sigma_* metrics of BenchmarkFig7WelfareVsArrivalRate
//	Fig. 11  -> sigma_* metrics of BenchmarkFig8WelfareVsCost
//
// The figure benchmarks emit the paper's series as custom benchmark
// metrics (welfare_online, welfare_offline, sigma_online,
// sigma_offline), one sub-benchmark per swept x value, so `go test
// -bench=Fig` prints the same rows the paper plots. Figures 9–11 plot
// the overpayment ratio over the identical three sweeps as Figures 6–8,
// so they have no benchmarks of their own: every sweep run emits both
// metric families at once, and the sigma_* columns ARE the Fig. 9–11
// series. The EXPERIMENTS.md-quality runs (20+ seeds) come from
// cmd/crowdsim; these benches use 2 seeds per point to keep `go test
// -bench=.` tractable.
//
// Ablation benchmarks cover the design choices called out in DESIGN.md:
// Hungarian vs min-cost-flow matching (internal/matching), incremental
// vs naive VCG pricing, and the per-component mechanism costs.
package dynacrowd_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/experiments"
	"dynacrowd/internal/market"
	"dynacrowd/internal/matching"
	"dynacrowd/internal/multitask"
	"dynacrowd/internal/shard"
	"dynacrowd/internal/sim"
	"dynacrowd/internal/typed"
	"dynacrowd/internal/workload"
)

// benchSeeds keeps figure benchmarks affordable; crowdsim uses 20+.
const benchSeeds = 2

// runPoint executes both mechanisms on benchSeeds replications of the
// scenario and reports the figure metrics.
func runPoint(b *testing.B, scn workload.Scenario) {
	b.Helper()
	mechs := []core.Mechanism{&core.OnlineMechanism{}, &core.OfflineMechanism{}}
	for i := 0; i < b.N; i++ {
		reps, err := sim.Compare(scn, sim.Seeds(1, benchSeeds), mechs, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 { // report once, from the final iteration
			var wOn, wOff, sOn, sOff float64
			for _, r := range reps {
				wOn += r.Results[0].Welfare
				wOff += r.Results[1].Welfare
				sOn += r.Results[0].OverpaymentRatio
				sOff += r.Results[1].OverpaymentRatio
			}
			n := float64(len(reps))
			b.ReportMetric(wOn/n, "welfare_online")
			b.ReportMetric(wOff/n, "welfare_offline")
			b.ReportMetric(sOn/n, "sigma_online")
			b.ReportMetric(sOff/n, "sigma_offline")
		}
	}
}

// benchSweep runs one sub-benchmark per sweep point.
func benchSweep(b *testing.B, sw experiments.Sweep) {
	for _, pt := range sw.Points {
		b.Run(fmt.Sprintf("%s=%g", sw.Name, pt.X), func(b *testing.B) {
			runPoint(b, pt.Scenario)
		})
	}
}

// BenchmarkDefaultScenario exercises the paper's Table I configuration
// end to end: workload generation plus both mechanisms.
func BenchmarkDefaultScenario(b *testing.B) {
	runPoint(b, workload.DefaultScenario())
}

func BenchmarkFig6WelfareVsSlots(b *testing.B) {
	benchSweep(b, experiments.SlotsSweep(workload.DefaultScenario()))
}

func BenchmarkFig7WelfareVsArrivalRate(b *testing.B) {
	benchSweep(b, experiments.PhoneRateSweep(workload.DefaultScenario()))
}

func BenchmarkFig8WelfareVsCost(b *testing.B) {
	benchSweep(b, experiments.CostSweep(workload.DefaultScenario()))
}

// --- component and ablation benchmarks ---

func generated(b *testing.B, slots core.Slot) *core.Instance {
	b.Helper()
	scn := workload.DefaultScenario()
	scn.Slots = slots
	in, err := scn.Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkOnlineMechanism measures the full online run (allocation +
// critical-value payments) at increasing round lengths.
func BenchmarkOnlineMechanism(b *testing.B) {
	for _, m := range []core.Slot{25, 50, 100} {
		in := generated(b, m)
		b.Run(fmt.Sprintf("slots=%d", m), func(b *testing.B) {
			mech := &core.OnlineMechanism{}
			for i := 0; i < b.N; i++ {
				if _, err := mech.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPaymentEngines ablates the critical-value payment engines on
// the same instance: the incremental cascade (default), the literal
// per-winner Algorithm 2 oracle, and the parallel oracle fan-out. All
// three return bit-identical payments (see TestCascadeMatchesOracleSweep),
// so the spread here is pure engine cost.
func BenchmarkPaymentEngines(b *testing.B) {
	for _, m := range []core.Slot{50, 100} {
		in := generated(b, m)
		for _, mech := range sim.EngineMechs() {
			b.Run(fmt.Sprintf("%s/slots=%d", mech.Name(), m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := mech.Run(in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOfflineMechanism measures the full offline run under the
// default interval engine (augmenting-path matching + deletion-exchange
// VCG payments; see docs/THEORY.md §6).
func BenchmarkOfflineMechanism(b *testing.B) {
	for _, m := range []core.Slot{25, 50, 100} {
		in := generated(b, m)
		b.Run(fmt.Sprintf("slots=%d", m), func(b *testing.B) {
			mech := &core.OfflineMechanism{}
			for i := 0; i < b.N; i++ {
				if _, err := mech.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOfflineEngines ablates the offline solver engines on the same
// instances: the interval fast path against the dense Hungarian oracle
// and the two generic matchers. All four return the same welfare and
// (modulo ties) the same payments — see TestOfflineDifferentialSweep —
// so the spread here is pure engine cost.
func BenchmarkOfflineEngines(b *testing.B) {
	for _, m := range []core.Slot{25, 50, 100} {
		in := generated(b, m)
		for _, eng := range []core.OfflineEngine{
			core.IntervalOffline, core.HungarianOffline, core.FlowOffline, core.SSPOffline,
		} {
			b.Run(fmt.Sprintf("%s/slots=%d", eng.Name(), m), func(b *testing.B) {
				mech := &core.OfflineMechanism{Engine: eng}
				for i := 0; i < b.N; i++ {
					if _, err := mech.Run(in); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOfflineSweep pushes the interval engine to the 10⁴–10⁵ phone
// scale the dense engines cannot reach (the Hungarian oracle is
// O((n+γ)³): at 10⁴ phones that is ~10¹² steps, so it is deliberately
// absent here — use BenchmarkOfflineEngines for the head-to-head at
// feasible sizes). Phones per round = Slots × PhoneRate.
func BenchmarkOfflineSweep(b *testing.B) {
	for _, phones := range []int{10_000, 30_000, 100_000} {
		scn := workload.DefaultScenario()
		scn.Slots = 500
		scn.PhoneRate = float64(phones) / float64(scn.Slots)
		scn.TaskRate = scn.PhoneRate / 2
		in, err := scn.Generate(1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("phones=%d", phones), func(b *testing.B) {
			mech := &core.OfflineMechanism{}
			b.ReportMetric(float64(in.NumPhones()), "phones/op")
			b.ReportMetric(float64(in.NumTasks()), "tasks/op")
			for i := 0; i < b.N; i++ {
				if _, err := mech.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOfflinePaymentsAblation compares the default incremental VCG
// pricing (O(s²) dual re-optimization per winner) against the naive
// re-solve (O(s³) per winner) that a straightforward implementation of
// the paper would use. The naive path is ~100× slower at Table I scale,
// so the ablation stops at 25 slots; the gap only widens beyond.
func BenchmarkOfflinePaymentsAblation(b *testing.B) {
	for _, m := range []core.Slot{15, 25} {
		in := generated(b, m)
		b.Run(fmt.Sprintf("incremental/slots=%d", m), func(b *testing.B) {
			mech := &core.OfflineMechanism{}
			for i := 0; i < b.N; i++ {
				if _, err := mech.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive/slots=%d", m), func(b *testing.B) {
			mech := &core.OfflineMechanism{Matcher: matching.MaxWeightMatching}
			for i := 0; i < b.N; i++ {
				if _, err := mech.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamingSlot measures the per-slot cost of the streaming
// online auction (the platform's hot path), including departures'
// payment replays.
func BenchmarkStreamingSlot(b *testing.B) {
	scn := workload.DefaultScenario()
	in, err := scn.Generate(2)
	if err != nil {
		b.Fatal(err)
	}
	perSlot := in.TasksPerSlot()
	byArrival := make([][]core.StreamBid, in.Slots+1)
	for _, bid := range in.Bids {
		byArrival[bid.Arrival] = append(byArrival[bid.Arrival], core.StreamBid{
			Departure: bid.Departure, Cost: bid.Cost,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oa, err := core.NewOnlineAuction(in.Slots, in.Value, false)
		if err != nil {
			b.Fatal(err)
		}
		for t := core.Slot(1); t <= in.Slots; t++ {
			if _, err := oa.Step(byArrival[t], perSlot[t-1]); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Slots per op is more interpretable than ns for this benchmark.
	b.ReportMetric(float64(in.Slots), "slots/op")
}

// BenchmarkShardedSlot measures the per-slot cost of the sharded
// auction engine on the heavy-traffic workload (~2000 Zipf-windowed
// phones, bursty tasks) across shard counts and a GOMAXPROCS sweep.
// Outcomes are bit-identical to the sequential engine at every point
// (see internal/shard's differential sweep); this benchmark measures
// only the throughput of partitioned admission plus the top-k merge.
// On a single-core box every configuration runs the parallel phases
// inline, so S > 1 shows the partitioning overhead rather than a
// speedup; see docs/SHARDING.md for the scaling discussion.
func BenchmarkShardedSlot(b *testing.B) {
	scn := workload.HeavyTrafficScenario()
	in, err := scn.Generate(2)
	if err != nil {
		b.Fatal(err)
	}
	perSlot := in.TasksPerSlot()
	byArrival := make([][]core.StreamBid, in.Slots+1)
	for _, bid := range in.Bids {
		byArrival[bid.Arrival] = append(byArrival[bid.Arrival], core.StreamBid{
			Departure: bid.Departure, Cost: bid.Cost,
		})
	}
	procs := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		procs = append(procs, n)
	}
	for _, s := range []int{1, 2, 4, 8} {
		for _, p := range procs {
			b.Run(fmt.Sprintf("shards=%d/procs=%d", s, p), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(p)
				defer runtime.GOMAXPROCS(prev)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sa, err := shard.New(s, in.Slots, in.Value, in.AllocateAtLoss)
					if err != nil {
						b.Fatal(err)
					}
					for t := core.Slot(1); t <= in.Slots; t++ {
						if _, err := sa.Step(byArrival[t], perSlot[t-1]); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ReportMetric(float64(in.Slots), "slots/op")
				b.ReportMetric(float64(len(in.Bids)), "bids/op")
			})
		}
	}
}

// BenchmarkWorkloadGeneration isolates the generator.
func BenchmarkWorkloadGeneration(b *testing.B) {
	scn := workload.DefaultScenario()
	for i := 0; i < b.N; i++ {
		if _, err := scn.Generate(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompletionLifecycle prices the unreliable-winner pipeline
// (docs/PLATFORM.md "Failure model") on the default workload. The
// "disabled" variant is the pre-lifecycle baseline — tracking off, the
// slot path must not regress. "all-complete" adds the bookkeeping of a
// fully reliable population (every winner reports). "chaos-defaults"
// realizes the chaos reliability mixture against the stream, so each
// slot pays the full default path: winner teardown, replacement scan,
// repricing, and clawback accounting.
func BenchmarkCompletionLifecycle(b *testing.B) {
	scn := workload.DefaultScenario()
	in, err := scn.Generate(2)
	if err != nil {
		b.Fatal(err)
	}
	perSlot := in.TasksPerSlot()
	byArrival := make([][]core.StreamBid, in.Slots+1)
	for _, bid := range in.Bids {
		byArrival[bid.Arrival] = append(byArrival[bid.Arrival], core.StreamBid{
			Departure: bid.Departure, Cost: bid.Cost,
		})
	}
	rel, err := workload.ChaosModel().Realize(in, 7)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, track bool, resolve func(*core.OnlineAuction, *core.SlotResult) int) {
		defaults := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			oa, err := core.NewOnlineAuction(in.Slots, in.Value, false)
			if err != nil {
				b.Fatal(err)
			}
			oa.TrackCompletions(track)
			for t := core.Slot(1); t <= in.Slots; t++ {
				res, err := oa.Step(byArrival[t], perSlot[t-1])
				if err != nil {
					b.Fatal(err)
				}
				if resolve != nil {
					defaults += resolve(oa, res)
				}
			}
		}
		b.ReportMetric(float64(in.Slots), "slots/op")
		b.ReportMetric(float64(defaults)/float64(b.N), "defaults/op")
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, false, nil)
	})
	b.Run("all-complete", func(b *testing.B) {
		run(b, true, func(oa *core.OnlineAuction, res *core.SlotResult) int {
			for _, as := range res.Assignments {
				if err := oa.Complete(as.Phone); err != nil {
					b.Fatal(err)
				}
			}
			return 0
		})
	})
	b.Run("chaos-defaults", func(b *testing.B) {
		run(b, true, func(oa *core.OnlineAuction, res *core.SlotResult) int {
			_, defaulted, err := rel.Resolve(oa, res)
			if err != nil {
				b.Fatal(err)
			}
			return defaulted
		})
	})
}

// --- extension benchmarks ---

// BenchmarkTypedMechanisms measures the heterogeneous-sensing extension
// (internal/typed): offline VCG vs online greedy with binary-search
// critical payments.
func BenchmarkTypedMechanisms(b *testing.B) {
	rng := workload.NewRNG(31)
	build := func(slots core.Slot, phones int) *typed.Instance {
		in := &typed.Instance{Slots: slots, Values: []float64{20, 45, 30}}
		for i := 0; i < phones; i++ {
			a := core.Slot(1 + rng.Intn(int(slots)))
			d := a + core.Slot(rng.Intn(int(slots-a)+1))
			caps := typed.Caps(0)
			if rng.Intn(3) == 0 {
				caps |= typed.Caps(1)
			}
			if rng.Intn(2) == 0 {
				caps |= typed.Caps(2)
			}
			in.Bids = append(in.Bids, typed.Bid{
				Phone: core.PhoneID(i), Arrival: a, Departure: d,
				Cost: rng.Uniform(1, 18), Caps: caps,
			})
		}
		for t := core.Slot(1); t <= slots; t++ {
			for k := rng.Poisson(1.5); k > 0; k-- {
				in.Tasks = append(in.Tasks, typed.Task{
					ID: core.TaskID(len(in.Tasks)), Arrival: t, Kind: typed.Kind(rng.Intn(3)),
				})
			}
		}
		return in
	}
	in := build(30, 120)
	b.Run("offline", func(b *testing.B) {
		mech := &typed.OfflineMechanism{}
		for i := 0; i < b.N; i++ {
			if _, err := mech.Run(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("online", func(b *testing.B) {
		mech := &typed.OnlineMechanism{}
		for i := 0; i < b.N; i++ {
			if _, err := mech.Run(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMultitaskOffline measures the capacity extension's flow-based
// VCG auction (internal/multitask).
func BenchmarkMultitaskOffline(b *testing.B) {
	rng := workload.NewRNG(37)
	in := &multitask.Instance{Slots: 30, Value: 30}
	for i := 0; i < 80; i++ {
		a := core.Slot(1 + rng.Intn(30))
		d := a + core.Slot(rng.Intn(int(30-a)+1))
		in.Bids = append(in.Bids, multitask.Bid{
			Phone: core.PhoneID(i), Arrival: a, Departure: d,
			Cost: rng.Uniform(1, 25), Capacity: 1 + rng.Intn(3),
		})
	}
	for t := core.Slot(1); t <= 30; t++ {
		for k := rng.Poisson(2); k > 0; k-- {
			in.Tasks = append(in.Tasks, core.Task{ID: core.TaskID(len(in.Tasks)), Arrival: t})
		}
	}
	mech := &multitask.OfflineMechanism{}
	for i := 0; i < b.N; i++ {
		if _, err := mech.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarketRounds measures the multi-round market driver.
func BenchmarkMarketRounds(b *testing.B) {
	scn := workload.DefaultScenario()
	scn.Slots = 20
	for i := 0; i < b.N; i++ {
		if _, err := market.Run(market.Config{
			Rounds: 5, Scenario: scn, Seed: uint64(i), ReturnProbability: 0.5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBudgetSweep records the welfare-per-budget comparison
// (docs/BUDGET.md): both budget engines at B ∈ {¼, ½, 1} of the
// unbudgeted mechanism's mean payment against the unbudgeted greedy,
// one sub-benchmark per workload-zoo scenario, emitting the
// welfare-per-unit-committed series as custom metrics
// (wpb_<engine>_f<fraction>, wpb_unbudgeted). Recorded into
// BENCH_PR10.json by `make budget-bench`.
func BenchmarkBudgetSweep(b *testing.B) {
	base := workload.DefaultScenario()
	for _, src := range experiments.BudgetSources(base) {
		b.Run("scenario="+src.Name, func(b *testing.B) {
			opt := experiments.Options{Seeds: 3, Scenario: base}
			var res *experiments.BudgetSweepResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.RunBudgetSweep(opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, row := range res.Rows {
				if row.Scenario != src.Name {
					continue
				}
				if row.Budget == 0 {
					b.ReportMetric(row.WelfarePerUnit, "wpb_unbudgeted")
					continue
				}
				eng := "stage"
				if strings.Contains(row.Mechanism, "frugal") {
					eng = "frugal"
				}
				b.ReportMetric(row.WelfarePerUnit, fmt.Sprintf("wpb_%s_f%g", eng, row.Fraction))
			}
		})
	}
}
