// Package dynacrowd is a reproduction of "Towards Truthful Mechanisms
// for Mobile Crowdsourcing with Dynamic Smartphones" (Feng et al.,
// ICDCS 2014): truthful reverse-auction mechanisms for allocating
// sensing tasks to smartphones that join and leave the system
// dynamically.
//
// The package is a facade over the implementation packages:
//
//   - Offline mechanism (Section IV): optimal allocation via maximum
//     weighted bipartite matching + VCG payments. Truthful, individually
//     rational, welfare-optimal, O((n+γ)³).
//   - Online mechanism (Section V): slot-by-slot greedy allocation +
//     critical-value payments. Truthful, individually rational,
//     1/2-competitive.
//   - A streaming auction driver (OnlineAuction) and a TCP platform
//     (ListenPlatform/DialPlatform) that run the online mechanism live.
//   - Workload generation per the paper's Table I, a truthfulness
//     auditor (Audit), multi-round markets (RunMarket), and the sensing
//     application layer (RunCampaign) that turns queries into tasks and
//     winners' readings into aggregated answers.
//
// Quickstart:
//
//	in, _ := dynacrowd.DefaultScenario().Generate(1)
//	out, _ := dynacrowd.RunOnline(in)
//	fmt.Println("welfare:", out.Welfare)
//
// See the examples/ directory for complete programs.
package dynacrowd

import (
	"dynacrowd/internal/core"
	"dynacrowd/internal/market"
	"dynacrowd/internal/platform"
	"dynacrowd/internal/sensing"
	"dynacrowd/internal/strategy"
	"dynacrowd/internal/workload"
)

// Core auction vocabulary, re-exported from internal/core.
type (
	// Slot indexes a time slot within a round (1-based).
	Slot = core.Slot
	// PhoneID identifies a smartphone (dense, 0-based).
	PhoneID = core.PhoneID
	// TaskID identifies a sensing task (dense, 0-based, arrival order).
	TaskID = core.TaskID
	// Bid is a smartphone's sealed bid (ã, d̃, b).
	Bid = core.Bid
	// Task is a sensing task with its arrival slot.
	Task = core.Task
	// Instance is one complete auction round.
	Instance = core.Instance
	// Allocation maps tasks to phones.
	Allocation = core.Allocation
	// Outcome is an allocation plus payments and welfare.
	Outcome = core.Outcome
	// Mechanism is an allocation rule plus a payment rule.
	Mechanism = core.Mechanism
	// OnlineAuction drives the online mechanism slot by slot.
	OnlineAuction = core.OnlineAuction
	// StreamBid is a bid submitted to an OnlineAuction in the current slot.
	StreamBid = core.StreamBid
	// SlotResult reports one slot of an OnlineAuction.
	SlotResult = core.SlotResult
	// PaymentNotice is a payment finalized at a winner's departure.
	PaymentNotice = core.PaymentNotice
)

// Sentinels for unassigned tasks and phones.
const (
	NoPhone = core.NoPhone
	NoTask  = core.NoTask
)

// Workload generation, re-exported from internal/workload.
type (
	// Scenario holds the workload parameters of the paper's Table I.
	Scenario = workload.Scenario
	// Trace is an archived, replayable auction round.
	Trace = workload.Trace
)

// DefaultScenario returns the paper's Table I settings.
func DefaultScenario() Scenario { return workload.DefaultScenario() }

// NewOffline returns the Section IV mechanism: optimal matching with VCG
// payments.
func NewOffline() Mechanism { return &core.OfflineMechanism{} }

// NewOnline returns the Section V mechanism: greedy allocation with
// critical-value payments.
func NewOnline() Mechanism { return &core.OnlineMechanism{} }

// RunOffline executes the offline mechanism on the instance.
func RunOffline(in *Instance) (*Outcome, error) { return NewOffline().Run(in) }

// RunOnline executes the online mechanism on the instance.
func RunOnline(in *Instance) (*Outcome, error) { return NewOnline().Run(in) }

// OptimalWelfare returns ω*, the maximum achievable social welfare of
// the instance (the offline optimum used as the competitive baseline).
func OptimalWelfare(in *Instance) (float64, error) {
	return (&core.OfflineMechanism{}).Welfare(in)
}

// NewOnlineAuction starts a streaming round of m slots with per-task
// value ν; drive it with Step (see core.OnlineAuction).
func NewOnlineAuction(m Slot, value float64) (*OnlineAuction, error) {
	return core.NewOnlineAuction(m, value, false)
}

// Networked platform, re-exported from internal/platform.
type (
	// PlatformConfig parameterizes a TCP platform round.
	PlatformConfig = platform.Config
	// PlatformServer hosts one auction round over TCP.
	PlatformServer = platform.Server
	// Agent is a smartphone client of a platform.
	Agent = platform.Agent
	// AgentEvent is a platform notification delivered to an agent.
	AgentEvent = platform.Event
)

// ListenPlatform starts a TCP platform server (see internal/platform).
func ListenPlatform(addr string, cfg PlatformConfig) (*PlatformServer, error) {
	return platform.Listen(addr, cfg)
}

// DialPlatform connects a smartphone agent to a platform.
func DialPlatform(addr string) (*Agent, error) { return platform.Dial(addr) }

// Truthfulness auditing, re-exported from internal/strategy.
type (
	// AuditOptions bounds the misreport search.
	AuditOptions = strategy.AuditOptions
	// AuditResult is the misreport search outcome for one phone.
	AuditResult = strategy.AuditResult
)

// Audit searches every phone's feasible misreports for profitable
// deviations under the mechanism; a positive gain disproves
// truthfulness (see internal/strategy).
func Audit(mech Mechanism, truth *Instance, opts AuditOptions) ([]AuditResult, error) {
	return strategy.Audit(mech, truth, opts)
}

// Multi-round markets, re-exported from internal/market.
type (
	// MarketConfig parameterizes a round-by-round market simulation.
	MarketConfig = market.Config
	// MarketResult is a completed market simulation.
	MarketResult = market.Result
)

// RunMarket executes the auction round by round (the paper's §III-B
// deployment model) with losing phones optionally re-entering later
// rounds; see internal/market.
func RunMarket(cfg MarketConfig) (*MarketResult, error) { return market.Run(cfg) }

// Sensing application layer, re-exported from internal/sensing.
type (
	// SensingQuery is an end-user request for periodic samples.
	SensingQuery = sensing.Query
	// SensingAnswer is an aggregated per-query result.
	SensingAnswer = sensing.Answer
	// CampaignResult ties auction metrics to data quality for a round.
	CampaignResult = sensing.CampaignResult
	// GroundTruth synthesizes the sensed phenomenon for evaluation.
	GroundTruth = sensing.GroundTruth
)

// NewGroundTruth creates a reproducible synthetic phenomenon with the
// given per-reading sensor noise.
func NewGroundTruth(seed uint64, noiseStdDev float64) *GroundTruth {
	return sensing.NewGroundTruth(seed, noiseStdDev)
}

// RunCampaign runs the paper's Fig. 1 pipeline end to end: queries are
// decomposed into tasks, the mechanism allocates them to the given
// bids, winners deliver synthetic readings, and the answers are
// aggregated and scored; see internal/sensing.
func RunCampaign(m Slot, value float64, queries []SensingQuery, bids []Bid, mech Mechanism, truth *GroundTruth) (*CampaignResult, error) {
	return sensing.RunCampaign(m, value, queries, bids, mech, truth)
}
