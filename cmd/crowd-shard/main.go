// Command crowd-shard runs one shard-server process for the distributed
// auction engine (see docs/DISTRIBUTED.md). It is partition-agnostic:
// the coordinator's join handshake names which partition a connection
// owns and streams the replica state, so the same binary serves any
// shard slot in any topology, and a restarted server rejoins with no
// local state.
//
// Start one per partition, then point the coordinator at them:
//
//	crowd-shard -addr 127.0.0.1:7401 &
//	crowd-shard -addr 127.0.0.1:7402 &
//	crowd-platform -shard-addrs 127.0.0.1:7401,127.0.0.1:7402
//
// Usage:
//
//	crowd-shard [flags]
//
//	-addr host:port   listen address (default 127.0.0.1:7401)
//	-quiet            suppress session lifecycle logging
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"

	"dynacrowd/internal/dshard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7401", "listen address")
	quiet := flag.Bool("quiet", false, "suppress session lifecycle logging")
	flag.Parse()

	if err := run(*addr, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "crowd-shard:", err)
		os.Exit(1)
	}
}

func run(addr string, quiet bool) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &dshard.Server{}
	if !quiet {
		srv.Logger = slog.Default()
		slog.Info("crowd-shard listening", "addr", ln.Addr().String())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-stop:
		if !quiet {
			slog.Info("crowd-shard shutting down", "signal", sig.String())
		}
		srv.Close()
		<-done
		return nil
	case err := <-done:
		srv.Close()
		return err
	}
}
