package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func genTempTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"gen", "-slots", "12", "-seed", "3", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGenInfoRoundTrip(t *testing.T) {
	path := genTempTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"info", "-in", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"seed 3", "12 slots", "phones:", "tasks:", "busiest slot"} {
		if !strings.Contains(out, want) {
			t.Fatalf("info missing %q:\n%s", want, out)
		}
	}
}

func TestGenToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"gen", "-slots", "5", "-seed", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version": 1`) {
		t.Fatalf("stdout trace malformed:\n%.200s", buf.String())
	}
}

func TestRunMechanisms(t *testing.T) {
	path := genTempTrace(t)
	for _, mech := range []string{"online", "offline"} {
		var buf bytes.Buffer
		if err := run([]string{"run", "-in", path, "-mechanism", mech}, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "social welfare:") {
			t.Fatalf("%s output missing welfare:\n%s", mech, buf.String())
		}
	}
	var buf bytes.Buffer
	if err := run([]string{"run", "-in", path, "-mechanism", "nonsense"}, &buf); err == nil {
		t.Fatal("want unknown-mechanism error")
	}
}

func TestCompareListsAllMechanisms(t *testing.T) {
	path := genTempTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"compare", "-in", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"online-greedy", "offline-vcg", "second-price-per-slot",
		"first-price-per-slot", "random", "greedy-by-cost",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("want usage error")
	}
	if err := run([]string{"frobnicate"}, &buf); err == nil {
		t.Fatal("want unknown-subcommand error")
	}
	if err := run([]string{"info", "-in", "/does/not/exist"}, &buf); err == nil {
		t.Fatal("want file error")
	}
	if err := run([]string{"gen", "-slots", "0"}, &buf); err == nil {
		t.Fatal("want scenario error")
	}
}
