// Command crowd-trace generates, inspects, and replays archived auction
// rounds (JSON traces; see internal/workload).
//
// Usage:
//
//	crowd-trace gen  [-seed n] [-slots m] [-phone-rate λ] [-task-rate λt]
//	                 [-mean-cost c] [-value ν] [-out file]
//	crowd-trace info [-in file]
//	crowd-trace run  [-in file] [-mechanism online|offline]
//	crowd-trace compare [-in file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynacrowd/internal/baseline"
	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crowd-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: crowd-trace gen|info|run|compare [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], out)
	case "info":
		return runInfo(args[1:], out)
	case "run":
		return runMechanism(args[1:], out)
	case "compare":
		return runCompare(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, info, run, or compare)", args[0])
	}
}

func runGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "generation seed")
	slots := fs.Int("slots", 50, "round length m")
	phoneRate := fs.Float64("phone-rate", 6, "smartphone arrivals per slot")
	taskRate := fs.Float64("task-rate", 3, "task arrivals per slot")
	meanCost := fs.Float64("mean-cost", 25, "average real cost c̄")
	value := fs.Float64("value", 30, "per-task value ν")
	out := fs.String("out", "-", "output file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scn := workload.DefaultScenario()
	scn.Slots = core.Slot(*slots)
	scn.PhoneRate = *phoneRate
	scn.TaskRate = *taskRate
	scn.MeanCost = *meanCost
	scn.Value = *value
	in, err := scn.Generate(*seed)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return workload.NewTrace(scn, *seed, in).Write(w)
}

func readTrace(path string) (*workload.Trace, error) {
	r := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return workload.ReadTrace(r)
}

func runInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("in", "-", "trace file (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	inst, err := tr.Materialize()
	if err != nil {
		return err
	}
	perSlot := inst.TasksPerSlot()
	busiest, busiestSlot := 0, core.Slot(0)
	for s, n := range perSlot {
		if n > busiest {
			busiest, busiestSlot = n, core.Slot(s+1)
		}
	}
	fmt.Fprintf(out, "trace: seed %d, %d slots, ν=%g\n", tr.Seed, inst.Slots, inst.Value)
	fmt.Fprintf(out, "phones: %d (rate %g/slot), tasks: %d (rate %g/slot)\n",
		inst.NumPhones(), tr.Scenario.PhoneRate, inst.NumTasks(), tr.Scenario.TaskRate)
	fmt.Fprintf(out, "busiest slot: %d with %d tasks\n", busiestSlot, busiest)
	return nil
}

func runMechanism(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	in := fs.String("in", "-", "trace file (- for stdin)")
	mechName := fs.String("mechanism", "online", "online | offline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	inst, err := tr.Materialize()
	if err != nil {
		return err
	}
	var mech core.Mechanism
	switch *mechName {
	case "online":
		mech = &core.OnlineMechanism{}
	case "offline":
		mech = &core.OfflineMechanism{}
	default:
		return fmt.Errorf("unknown mechanism %q", *mechName)
	}
	res, err := mech.Run(inst)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mechanism: %s\n", mech.Name())
	fmt.Fprintf(out, "served: %d/%d tasks\n", res.Allocation.NumServed(), inst.NumTasks())
	fmt.Fprintf(out, "social welfare: %.2f\n", res.Welfare)
	fmt.Fprintf(out, "total payment: %.2f (overpayment ratio %.3f)\n",
		res.TotalPayment(), res.OverpaymentRatio(inst))
	return nil
}

// runCompare runs every mechanism on the trace and prints one row each.
func runCompare(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	in := fs.String("in", "-", "trace file (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := readTrace(*in)
	if err != nil {
		return err
	}
	inst, err := tr.Materialize()
	if err != nil {
		return err
	}
	mechs := []core.Mechanism{
		&core.OnlineMechanism{},
		&core.OfflineMechanism{},
		&baseline.SecondPricePerSlot{},
		&baseline.FirstPricePerSlot{},
		&baseline.Random{Seed: int64(tr.Seed)},
		&baseline.GreedyByCost{},
	}
	fmt.Fprintf(out, "%-24s %8s %12s %12s %8s\n", "mechanism", "served", "welfare", "paid", "sigma")
	for _, mech := range mechs {
		res, err := mech.Run(inst)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-24s %4d/%-3d %12.2f %12.2f %8.3f\n",
			mech.Name(), res.Allocation.NumServed(), inst.NumTasks(),
			res.Welfare, res.TotalPayment(), res.OverpaymentRatio(inst))
	}
	return nil
}
