// Command crowd-platform runs the networked crowdsourcing platform: a
// TCP server hosting one online-auction round. Smartphone agents connect
// with crowd-agent (or anything speaking the line protocol; see
// internal/protocol). Tasks arrive Poisson per slot and the slot clock
// runs on wall time.
//
// Usage:
//
//	crowd-platform [flags]
//
//	-addr host:port   listen address (default 127.0.0.1:7381)
//	-slots m          round length in slots (default 50)
//	-value v          per-task value ν (default 30)
//	-task-rate λ      mean tasks per slot (default 3)
//	-slot-every d     slot duration, e.g. 500ms (default 1s)
//	-seed n           task arrival seed (default 1)
//	-rounds n         consecutive auction rounds to play (default 1)
//	-shards n         run the sharded auction engine with n bid pools
//	                  (default 1: sequential engine; outcomes identical,
//	                  see docs/SHARDING.md)
//	-shard-addrs a,b  run the distributed engine against crowd-shard
//	                  server processes at these addresses, one per
//	                  partition (outcomes identical, see
//	                  docs/DISTRIBUTED.md; takes precedence over -shards)
//	-checkpoint f     write the auction state to f after every slot and,
//	                  if f already exists at startup, resume from it
//	-payments e       payment engine: cascade | oracle | parallel
//	                  (default cascade; all produce identical payments)
//	-completion-deadline n
//	                  require each winner to report its task done within
//	                  n slots of assignment or be defaulted: its task is
//	                  re-allocated and any issued payment clawed back
//	                  (default 0: tracking disabled; forces the cascade
//	                  payment engine when set)
//	-budget B         cap the round's total payments at B: the budgeted
//	                  stage-sampling auction replaces the unbudgeted
//	                  greedy, winners are paid counterfactual critical
//	                  values, and bids past exhaustion are rejected with
//	                  a typed reason (default 0: unbudgeted; incompatible
//	                  with -shards, -shard-addrs, -completion-deadline;
//	                  see docs/BUDGET.md)
//	-budget-engine e  budget threshold engine: stage (default) | frugal
//	-offline-benchmark e
//	                  solve each completed round's offline VCG optimum ω*
//	                  with engine e (interval | hungarian | flow | ssp) and
//	                  log it beside the realized online welfare — the
//	                  paper's competitive-ratio check, live (default "":
//	                  disabled)
//	-obs-addr a       serve Prometheus metrics, health, trace dumps and
//	                  pprof on this address (e.g. 127.0.0.1:7390); empty
//	                  disables observability
//	-trace f          append structured auction events to f as JSON lines
//	                  (implies the in-process tracer even without -obs-addr)
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"strings"
	"time"

	"dynacrowd/internal/budget"
	"dynacrowd/internal/core"
	"dynacrowd/internal/obs"
	"dynacrowd/internal/platform"
	"dynacrowd/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7381", "listen address")
	slots := flag.Int("slots", 50, "round length in slots")
	value := flag.Float64("value", 30, "per-task value ν")
	taskRate := flag.Float64("task-rate", 3, "mean tasks per slot (Poisson)")
	slotEvery := flag.Duration("slot-every", time.Second, "slot duration")
	seed := flag.Uint64("seed", 1, "task arrival seed")
	rounds := flag.Int("rounds", 1, "consecutive auction rounds")
	shards := flag.Int("shards", 1, "shard count for the sharded auction engine (1 = sequential)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated crowd-shard server addresses for the distributed engine (empty = in-process)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file (resume if present)")
	payments := flag.String("payments", "cascade", "payment engine: cascade | oracle | parallel")
	completionDeadline := flag.Int("completion-deadline", 0, "slots a winner has to report completion before defaulting (0 disables)")
	obsAddr := flag.String("obs-addr", "", "observability HTTP address (metrics, trace, pprof); empty disables")
	trace := flag.String("trace", "", "append auction trace events to this JSONL file")
	offlineBench := flag.String("offline-benchmark", "", "solve each round's offline VCG optimum with this engine: interval | hungarian | flow | ssp (empty disables)")
	budgetFlag := flag.Float64("budget", 0, "hard round budget B (0 = unbudgeted)")
	budgetEngine := flag.String("budget-engine", "stage", "budget threshold engine: stage | frugal")
	flag.Parse()

	if err := run(*addr, *slots, *value, *taskRate, *slotEvery, *seed, *rounds, *shards, *completionDeadline, *checkpoint, *payments, *obsAddr, *trace, *offlineBench, *shardAddrs, *budgetFlag, *budgetEngine); err != nil {
		fmt.Fprintln(os.Stderr, "crowd-platform:", err)
		os.Exit(1)
	}
}

// buildObs assembles the observability stack for the -obs-addr and
// -trace flags; both empty yields nil (disabled).
func buildObs(obsAddr, trace string) (*obs.Observability, error) {
	if obsAddr == "" && trace == "" {
		return nil, nil
	}
	var sinks []obs.Sink
	if trace != "" {
		f, err := os.OpenFile(trace, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("trace file: %w", err)
		}
		sinks = append(sinks, obs.NewJSONLSink(f))
	}
	return obs.New(obs.Options{Addr: obsAddr, Sinks: sinks})
}

// paymentEngine resolves the -payments flag.
func paymentEngine(name string) (core.PaymentEngine, error) {
	switch name {
	case "", "cascade":
		return core.CascadePayments, nil
	case "oracle":
		return core.OraclePayments, nil
	case "parallel":
		return core.ParallelPayments(0), nil
	default:
		return nil, fmt.Errorf("unknown payment engine %q (want cascade, oracle, or parallel)", name)
	}
}

func run(addr string, slots int, value, taskRate float64, slotEvery time.Duration, seed uint64, rounds, shards, completionDeadline int, checkpoint, payments, obsAddr, trace, offlineBench, shardAddrs string, budgetB float64, budgetEngine string) error {
	engine, err := paymentEngine(payments)
	if err != nil {
		return err
	}
	// Surface bad -budget knobs as the typed errors before any socket or
	// file is touched; platform.Listen re-checks the combination rules.
	if budgetB != 0 {
		if err := budget.ValidateBudget(budgetB); err != nil {
			return err
		}
		if _, err := budget.EngineByName(budgetEngine); err != nil {
			return err
		}
	}
	var offlineEngine core.OfflineEngine
	if offlineBench != "" {
		offlineEngine, err = core.OfflineEngineByName(offlineBench)
		if err != nil {
			return err
		}
	}
	observ, err := buildObs(obsAddr, trace)
	if err != nil {
		return err
	}
	var shardList []string
	if shardAddrs != "" {
		for _, a := range strings.Split(shardAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				shardList = append(shardList, a)
			}
		}
		if len(shardList) == 0 {
			return fmt.Errorf("-shard-addrs %q names no addresses", shardAddrs)
		}
	}
	cfg := platform.Config{
		Slots:              core.Slot(slots),
		Value:              value,
		Rounds:             rounds,
		Shards:             shards,
		ShardAddrs:         shardList,
		Logger:             slog.Default(),
		PaymentEngine:      engine,
		CompletionDeadline: core.Slot(completionDeadline),
		Budget:             budgetB,
		BudgetEngine:       budgetEngine,
		OfflineBenchmark:   offlineEngine,
		Obs:                observ, // server owns it: srv.Close flushes and stops it
	}
	if observ != nil && observ.HTTP != nil {
		log.Printf("observability on http://%s (/metrics /healthz /debug/rounds /debug/pprof)", observ.HTTP.Addr())
	}
	var srv *platform.Server
	if checkpoint != "" {
		if data, readErr := os.ReadFile(checkpoint); readErr == nil {
			srv, err = platform.Resume(addr, cfg, data)
			if err != nil {
				observ.Close()
				return fmt.Errorf("resume from %s: %w", checkpoint, err)
			}
			log.Printf("resumed round from checkpoint %s", checkpoint)
		}
	}
	if srv == nil {
		srv, err = platform.Listen(addr, cfg)
		if err != nil {
			observ.Close()
			return err
		}
	}
	defer srv.Close()
	log.Printf("platform listening on %s: %d slots of %v, ν=%g, task rate %g/slot",
		srv.Addr(), slots, slotEvery, value, taskRate)

	rng := workload.NewRNG(seed)
	err = srv.RunClock(slotEvery, func(s core.Slot) int {
		if checkpoint != "" {
			if data, snapErr := srv.Checkpoint(); snapErr == nil {
				if writeErr := os.WriteFile(checkpoint, data, 0o644); writeErr != nil {
					log.Printf("checkpoint write failed: %v", writeErr)
				}
			}
		}
		n := rng.Poisson(taskRate)
		log.Printf("slot %d: announcing %d task(s)", s, n)
		return n
	})
	if err != nil {
		return err
	}

	st := srv.Stats()
	log.Printf("all %d round(s) complete: %d tasks announced, %d served, total paid %.2f",
		rounds, st.TasksAnnounced, st.TasksServed, st.TotalPaid)
	if completionDeadline > 0 {
		log.Printf("completions: %d reported, %d winners defaulted, %d tasks re-allocated, %d unreplaced, %.2f clawed back",
			st.CompletionsReported, st.WinnersDefaulted, st.TasksReallocated, st.TasksUnreplaced, st.ClawbackTotal)
	}
	if offlineEngine != nil && st.OfflineRounds > 0 {
		ratio := 1.0
		if st.OfflineOptimum > 0 {
			ratio = st.TotalWelfare / st.OfflineOptimum
		}
		log.Printf("offline benchmark (%s): optimum %.2f over %d round(s), online welfare %.2f, ratio %.3f",
			offlineEngine.Name(), st.OfflineOptimum, st.OfflineRounds, st.TotalWelfare, ratio)
	}
	return nil
}
