package main

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynacrowd/internal/budget"
)

// TestRunPlaysRoundOnWallClock: the server CLI plays an unattended
// round to completion with observability enabled, writing checkpoints
// and a JSONL trace along the way.
func TestRunPlaysRoundOnWallClock(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "round.ckpt")
	trace := filepath.Join(dir, "round.trace.jsonl")
	err := run("127.0.0.1:0", 3, 10, 1, 3*time.Millisecond, 1, 1, 1, 0, ckpt, "cascade", "127.0.0.1:0", trace, "", "", 0, "stage")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("empty checkpoint")
	}
	events, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !strings.Contains(string(events), `"type":"round_open"`) {
		t.Fatalf("trace missing round_open event:\n%s", events)
	}
}

// TestRunResumesFromCheckpoint: a second invocation picks the round up
// from the checkpoint file instead of starting over.
func TestRunResumesFromCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "round.ckpt")
	if err := run("127.0.0.1:0", 4, 10, 1, 3*time.Millisecond, 1, 1, 1, 0, ckpt, "cascade", "", "", "", "", 0, "stage"); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint captures the last pre-completion state;
	// resuming finishes the remaining slots and exits cleanly — here on
	// the sharded engine, which reads the same snapshot format.
	if err := run("127.0.0.1:0", 4, 10, 1, 3*time.Millisecond, 1, 1, 4, 0, ckpt, "cascade", "", "", "", "", 0, "stage"); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownEngine(t *testing.T) {
	if err := run("127.0.0.1:0", 3, 10, 1, time.Millisecond, 1, 1, 1, 0, "", "magic", "", "", "", "", 0, "stage"); err == nil {
		t.Fatal("want unknown payment engine error")
	}
}

func TestRunRejectsUnknownOfflineEngine(t *testing.T) {
	if err := run("127.0.0.1:0", 3, 10, 1, time.Millisecond, 1, 1, 1, 0, "", "cascade", "", "", "magic", "", 0, "stage"); err == nil {
		t.Fatal("want unknown offline engine error")
	}
}

func TestRunRejectsBadAddress(t *testing.T) {
	if err := run("256.0.0.1:99999", 3, 10, 1, time.Millisecond, 1, 1, 1, 0, "", "", "", "", "", "", 0, "stage"); err == nil {
		t.Fatal("want listen error")
	}
}

func TestRunMultiRound(t *testing.T) {
	if err := run("127.0.0.1:0", 2, 10, 0.5, 3*time.Millisecond, 2, 2, 2, 0, "", "parallel", "", "", "interval", "", 0, "stage"); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsBadBudget: -budget validation happens at flag level,
// before any listener is opened.
func TestRunRejectsBadBudget(t *testing.T) {
	for _, b := range []float64{-5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := run("127.0.0.1:0", 3, 10, 1, time.Millisecond, 1, 1, 1, 0, "", "cascade", "", "", "", "", b, "stage")
		if !errors.Is(err, budget.ErrInvalidBudget) {
			t.Errorf("budget %g: err = %v, want ErrInvalidBudget", b, err)
		}
	}
}

func TestRunRejectsUnknownBudgetEngine(t *testing.T) {
	err := run("127.0.0.1:0", 3, 10, 1, time.Millisecond, 1, 1, 1, 0, "", "cascade", "", "", "", "", 5, "simplex")
	if err == nil || !strings.Contains(err.Error(), "simplex") {
		t.Fatalf("err = %v, want unknown budget engine", err)
	}
}

// TestRunBudgetedRound: the CLI plays a budgeted round unattended on
// the wall clock.
func TestRunBudgetedRound(t *testing.T) {
	err := run("127.0.0.1:0", 3, 10, 1, 3*time.Millisecond, 1, 1, 1, 0, "", "cascade", "", "", "", "", 25, "frugal")
	if err != nil {
		t.Fatal(err)
	}
}
