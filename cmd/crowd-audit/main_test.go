package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynacrowd/internal/workload"
)

func TestAuditTruthfulMechanisms(t *testing.T) {
	for _, mech := range []string{"online", "offline"} {
		var buf bytes.Buffer
		exploitable, err := run([]string{"-mechanism", mech, "-slots", "6", "-phone-rate", "1.5", "-task-rate", "1"}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if exploitable {
			t.Fatalf("%s flagged exploitable:\n%s", mech, buf.String())
		}
		if !strings.Contains(buf.String(), "TRUTHFUL") {
			t.Fatalf("%s verdict missing:\n%s", mech, buf.String())
		}
	}
}

func TestAuditExposesSecondPrice(t *testing.T) {
	var buf bytes.Buffer
	exploitable, err := run([]string{"-mechanism", "second-price", "-slots", "8", "-seed", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !exploitable {
		t.Fatalf("second-price not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "EXPLOITABLE") || !strings.Contains(buf.String(), "best lie") {
		t.Fatalf("exploit details missing:\n%s", buf.String())
	}
}

func TestAuditFromTrace(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 6
	scn.PhoneRate = 1.5
	scn.TaskRate = 1
	in, err := scn.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.NewTrace(scn, 9, in).Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	exploitable, err := run([]string{"-trace", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if exploitable {
		t.Fatalf("online mechanism exploitable on trace:\n%s", buf.String())
	}
}

func TestAuditErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run([]string{"-mechanism", "warble"}, &buf); err == nil {
		t.Fatal("want unknown-mechanism error")
	}
	if _, err := run([]string{"-trace", "/no/such/file"}, &buf); err == nil {
		t.Fatal("want file error")
	}
	if _, err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("want flag error")
	}
}

func TestAuditMaxSpanReducesWork(t *testing.T) {
	var full, capped bytes.Buffer
	if _, err := run([]string{"-slots", "6", "-phone-rate", "1.5"}, &full); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"-slots", "6", "-phone-rate", "1.5", "-max-span", "1"}, &capped); err != nil {
		t.Fatal(err)
	}
	if full.String() == capped.String() {
		t.Fatal("-max-span had no effect")
	}
}

func TestAuditCampaignFlag(t *testing.T) {
	var buf bytes.Buffer
	exploitable, err := run([]string{"-rounds", "2", "-slots", "6", "-phone-rate", "1.5", "-task-rate", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if exploitable {
		t.Fatalf("online exploitable across campaign:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "across 2 instances") {
		t.Fatalf("campaign summary missing:\n%s", buf.String())
	}

	buf.Reset()
	exploitable, err = run([]string{"-rounds", "2", "-mechanism", "second-price", "-slots", "6"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !exploitable || !strings.Contains(buf.String(), "worst gain") {
		t.Fatalf("second-price campaign verdict:\n%s", buf.String())
	}
}
