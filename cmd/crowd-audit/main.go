// Command crowd-audit adversarially audits a mechanism for
// truthfulness: for every phone in a workload (or archived trace), it
// exhaustively searches the feasible misreport space — delayed arrivals,
// advanced departures, scaled costs — for a report that beats honesty,
// and reports any exploit it finds.
//
// Usage:
//
//	crowd-audit [flags]
//
//	-mechanism m    online | offline | second-price (default online)
//	-trace file     audit an archived trace instead of a generated round
//	-seed n         workload seed when generating (default 1)
//	-slots m        round length when generating (default 10; audits are
//	                O(phones · window² · cost grid · mechanism runs))
//	-phone-rate λ   phone arrivals per slot when generating (default 2)
//	-task-rate λt   task arrivals per slot when generating (default 1.5)
//	-max-span n     cap window combinations searched per phone (0 = all)
//	-rounds n       audit n generated instances (seeds seed..seed+n-1)
//	                and report the worst misreport gain found (default 1)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynacrowd/internal/baseline"
	"dynacrowd/internal/core"
	"dynacrowd/internal/strategy"
	"dynacrowd/internal/workload"
)

func main() {
	exploitable, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crowd-audit:", err)
		os.Exit(1)
	}
	if exploitable {
		os.Exit(2) // distinct exit code so scripts can branch on the verdict
	}
}

// run returns whether the mechanism was found exploitable.
func run(args []string, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("crowd-audit", flag.ContinueOnError)
	mechName := fs.String("mechanism", "online", "online | offline | second-price")
	tracePath := fs.String("trace", "", "audit this archived trace")
	seed := fs.Uint64("seed", 1, "workload seed")
	slots := fs.Int("slots", 10, "round length when generating")
	phoneRate := fs.Float64("phone-rate", 2, "phone arrivals per slot")
	taskRate := fs.Float64("task-rate", 1.5, "task arrivals per slot")
	maxSpan := fs.Int("max-span", 0, "cap window combinations per phone (0 = exhaustive)")
	rounds := fs.Int("rounds", 1, "number of generated instances to audit")
	if err := fs.Parse(args); err != nil {
		return false, err
	}

	var mech core.Mechanism
	switch *mechName {
	case "online":
		mech = &core.OnlineMechanism{}
	case "offline":
		mech = &core.OfflineMechanism{}
	case "second-price":
		mech = &baseline.SecondPricePerSlot{}
	default:
		return false, fmt.Errorf("unknown mechanism %q", *mechName)
	}

	if *rounds > 1 && *tracePath == "" {
		return runCampaign(out, mech, *seed, *rounds, *slots, *phoneRate, *taskRate, *maxSpan)
	}

	in, err := loadInstance(*tracePath, *seed, *slots, *phoneRate, *taskRate)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(out, "auditing %s on %d phones, %d tasks, %d slots\n",
		mech.Name(), in.NumPhones(), in.NumTasks(), in.Slots)

	results, err := strategy.Audit(mech, in, strategy.AuditOptions{MaxWindowSpan: *maxSpan})
	if err != nil {
		return false, err
	}

	searched, exploits := 0, 0
	for _, r := range results {
		searched += r.ReportsSearched
		if r.Gain() <= 1e-9 {
			continue
		}
		exploits++
		truth := in.Bids[r.Phone]
		fmt.Fprintf(out, "EXPLOITABLE phone %d: true (window [%d,%d], cost %.2f)\n",
			r.Phone, truth.Arrival, truth.Departure, truth.Cost)
		fmt.Fprintf(out, "  best lie: window [%d,%d], cost %.2f -> utility %.2f vs honest %.2f (gain %.2f)\n",
			r.BestBid.Arrival, r.BestBid.Departure, r.BestBid.Cost,
			r.BestUtility, r.TruthfulUtility, r.Gain())
	}
	fmt.Fprintf(out, "searched %d reports across %d phones\n", searched, len(results))
	if exploits == 0 {
		fmt.Fprintln(out, "verdict: TRUTHFUL on this instance (no profitable misreport found)")
		return false, nil
	}
	fmt.Fprintf(out, "verdict: NOT truthful — %d exploitable phone(s)\n", exploits)
	return true, nil
}

func loadInstance(tracePath string, seed uint64, slots int, phoneRate, taskRate float64) (*core.Instance, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := workload.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		return tr.Materialize()
	}
	scn := workload.DefaultScenario()
	scn.Slots = core.Slot(slots)
	scn.PhoneRate = phoneRate
	scn.TaskRate = taskRate
	return scn.Generate(seed)
}

// runCampaign audits the mechanism across several generated instances.
func runCampaign(out io.Writer, mech core.Mechanism, seed uint64, rounds, slots int, phoneRate, taskRate float64, maxSpan int) (bool, error) {
	scn := workload.DefaultScenario()
	scn.Slots = core.Slot(slots)
	scn.PhoneRate = phoneRate
	scn.TaskRate = taskRate
	seeds := make([]uint64, rounds)
	for i := range seeds {
		seeds[i] = seed + uint64(i)
	}
	res, err := strategy.AuditCampaign(mech,
		func(s uint64) (*core.Instance, error) { return scn.Generate(s) },
		seeds, strategy.AuditOptions{MaxWindowSpan: maxSpan})
	if err != nil {
		return false, err
	}
	fmt.Fprintf(out, "audited %s across %d instances: %d phones, %d reports searched\n",
		mech.Name(), res.Instances, res.PhonesAudited, res.ReportsSearched)
	if res.Truthful() {
		fmt.Fprintln(out, "verdict: TRUTHFUL across the campaign")
		return false, nil
	}
	fmt.Fprintf(out, "verdict: NOT truthful — worst gain %.3f (seed %d, phone %d)\n",
		res.WorstGain, res.WorstSeed, res.WorstPhone)
	return true, nil
}
