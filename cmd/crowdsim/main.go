// Command crowdsim regenerates the paper's evaluation figures
// (Figs. 6-11) by sweeping round length, smartphone arrival rate, and
// average cost, running the online and offline mechanisms on identical
// workloads, and rendering the resulting series as ASCII tables, charts,
// or CSV.
//
// Usage:
//
//	crowdsim [flags]
//
//	-figure id     figure to run: fig6..fig11, "baselines", "robustness",
//	               "reserve", "anytime", "quality", "budget", or "all"
//	               (default all; "baselines" adds the extension figure
//	               comparing second-price / first-price / random /
//	               greedy-by-cost against the paper's mechanisms;
//	               "budget" runs the welfare-per-budget comparison of
//	               the budgeted engines against the unbudgeted greedy
//	               across the workload zoo, see docs/BUDGET.md)
//	-seeds n       replications per sweep point (default 20)
//	-seed base     base seed for the replication set (default 1)
//	-format f      table | chart | csv (default table)
//	-check         verify the paper's shape claims and report
//	-value v       per-task value ν override (default scenario's 30)
//	-shards n      run the online mechanism on the sharded engine with n
//	               bid pools (default 1 = sequential; outcomes are
//	               bit-identical either way)
//	-dshard n      run the online mechanism through the distributed
//	               coordinator with n in-process shard servers over an
//	               in-memory transport (default 0 = off; outcomes are
//	               bit-identical, see docs/DISTRIBUTED.md)
//	-budget B      hard round budget: substitute the budgeted online
//	               mechanism (stage-sampling thresholds, counterfactual
//	               critical-value payments, Σ payments ≤ B) for the
//	               paper's online mechanism in every sweep (default 0 =
//	               unbudgeted; incompatible with -shards/-dshard)
//	-budget-engine e  budget threshold engine: stage (default) | frugal
//	-offline-engine e  solver engine for the offline VCG benchmark:
//	               interval (default, augmenting-path fast path),
//	               hungarian (dense oracle), flow, or ssp
//	               (welfare is identical across engines)
//	-quick         3 seeds and a thinned sweep, for smoke runs
//	-cpuprofile f  write a CPU profile of the run to f (go tool pprof)
//	-memprofile f  write an end-of-run heap profile to f
//	-obs-addr a    serve live Prometheus metrics (mechanism latency
//	               histograms, round counters) and pprof on this address
//	               while the sweep runs; empty disables
//	-load          run the platform load harness instead of figures:
//	               -load-agents in-process virtual agents connect, bid,
//	               and drain slot fan-out from a real platform.Server
//	               for -load-ticks slot ticks, in each -load-wire format
//	               (json | binary | both). Prints benchjson-compatible
//	               result lines (bids/s, msgs/s, fan-out p50/p99,
//	               allocs/msg); see docs/LOADTEST.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"dynacrowd/internal/budget"
	"dynacrowd/internal/core"
	"dynacrowd/internal/dshard"
	"dynacrowd/internal/experiments"
	"dynacrowd/internal/obs"
	"dynacrowd/internal/shard"
	"dynacrowd/internal/sim"
	"dynacrowd/internal/stats"
	"dynacrowd/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crowdsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("crowdsim", flag.ContinueOnError)
	figure := fs.String("figure", "all", "figure to run: fig6..fig11 or all")
	seeds := fs.Int("seeds", 20, "replications per sweep point")
	seed := fs.Uint64("seed", 1, "base seed")
	format := fs.String("format", "table", "output format: table | chart | csv")
	check := fs.Bool("check", false, "verify the paper's shape claims")
	value := fs.Float64("value", 0, "per-task value ν override (0 = scenario default)")
	shards := fs.Int("shards", 1, "bid-pool shards for the online mechanism (1 = sequential)")
	dshards := fs.Int("dshard", 0, "run the online mechanism through a distributed coordinator with this many in-process shard servers (0 = off)")
	budgetFlag := fs.Float64("budget", 0, "hard round budget B for the online mechanism (0 = unbudgeted)")
	budgetEngine := fs.String("budget-engine", "stage", "budget threshold engine: stage | frugal")
	offlineEngine := fs.String("offline-engine", "", "offline solver engine: interval | hungarian | flow | ssp (default interval)")
	quick := fs.Bool("quick", false, "3 seeds and thinned sweeps")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an end-of-run heap profile to this file")
	obsAddr := fs.String("obs-addr", "", "observability HTTP address (metrics, pprof); empty disables")
	load := fs.Bool("load", false, "run the platform load harness instead of figures (see docs/LOADTEST.md)")
	loadAgents := fs.Int("load-agents", 5000, "load: concurrent virtual agents")
	loadTicks := fs.Int("load-ticks", 50, "load: measured slot ticks")
	loadTasks := fs.Int("load-tasks", 0, "load: tasks announced per measured tick (0 = pure fan-out)")
	loadQueue := fs.Int("load-queue", 256, "load: per-session outbound queue depth")
	loadWire := fs.String("load-wire", "both", "load: wire format to drive: json | binary | both")
	loadTransport := fs.String("load-transport", "mem", "load: transport: mem (net.Pipe, no fds) | tcp (loopback)")
	loadMinMsgs := fs.Float64("load-min-msgs", 0, "load: fail if sustained msgs/s falls below this floor (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *obsAddr != "" {
		o, err := obs.New(obs.Options{Addr: *obsAddr})
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		defer o.Close()
		core.SetDefaultMetrics(core.NewMetrics(o.Registry))
		defer core.SetDefaultMetrics(nil)
		sim.SetInstruments(sim.NewInstruments(o.Registry))
		defer sim.SetInstruments(nil)
		fmt.Fprintf(os.Stderr, "crowdsim: observability on http://%s/metrics\n", o.HTTP.Addr())
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "crowdsim: heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live allocations, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "crowdsim: heap profile:", err)
			}
		}()
	}

	if *load {
		return runLoad(loadOptions{
			agents:    *loadAgents,
			ticks:     *loadTicks,
			tasks:     *loadTasks,
			queue:     *loadQueue,
			wire:      *loadWire,
			transport: *loadTransport,
			minMsgs:   *loadMinMsgs,
			seed:      *seed,
		}, out)
	}

	base := workload.DefaultScenario()
	if *value > 0 {
		base.Value = *value
	}
	opt := experiments.Options{Seeds: *seeds, BaseSeed: *seed, Scenario: base}
	switch {
	case *dshards > 0:
		opt.Online = &dshard.Mechanism{Shards: *dshards}
	case *shards > 1:
		opt.Online = &shard.Mechanism{Shards: *shards}
	}
	if *budgetFlag != 0 {
		if err := budget.ValidateBudget(*budgetFlag); err != nil {
			return err
		}
		eng, err := budget.EngineByName(*budgetEngine)
		if err != nil {
			return err
		}
		if opt.Online != nil {
			return fmt.Errorf("-budget is incompatible with -shards and -dshard")
		}
		opt.Online = &budget.Mechanism{Budget: *budgetFlag, Engine: eng}
	}
	if *offlineEngine != "" {
		eng, err := core.OfflineEngineByName(*offlineEngine)
		if err != nil {
			return err
		}
		opt.Offline = &core.OfflineMechanism{Engine: eng}
	}
	if *quick {
		opt.Seeds = 3
	}

	if *figure == "budget" {
		res, err := experiments.RunBudgetSweep(opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "welfare per unit budget across the workload zoo (%d seeds; B as a fraction of the unbudgeted payment):\n", opt.Seeds)
		fmt.Fprintf(out, "%-12s %-22s %8s %10s %10s %8s %8s\n",
			"scenario", "mechanism", "B", "welfare", "paid", "ω/B", "served")
		for _, r := range res.Rows {
			b := "∞"
			if r.Budget > 0 {
				b = fmt.Sprintf("%.1f", r.Budget)
			}
			fmt.Fprintf(out, "%-12s %-22s %8s %10.1f %10.1f %8.3f %8.2f\n",
				r.Scenario, r.Mechanism, b, r.Welfare, r.Payment, r.WelfarePerUnit, r.ServiceRate)
		}
		fmt.Fprintln(out)
		return render(res.Figure, *format, out)
	}

	if *figure == "quality" {
		fig, err := experiments.RunQualitySweep(opt)
		if err != nil {
			return err
		}
		return render(fig, *format, out)
	}

	if *figure == "anytime" {
		scn := opt.Scenario
		scn.Slots = 25 // O(m) prefix optima; keep the per-slot solves light
		aOpt := opt
		aOpt.Scenario = scn
		fig, err := experiments.RunAnytime(aOpt)
		if err != nil {
			return err
		}
		return render(fig, *format, out)
	}

	if *figure == "reserve" {
		fig, err := experiments.RunReserveSweep(opt)
		if err != nil {
			return err
		}
		return render(fig, *format, out)
	}

	if *figure == "robustness" {
		rows, err := experiments.RunRobustness(opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "robustness of the paper's conclusions across workload variants (%d seeds):\n", opt.Seeds)
		fmt.Fprintf(out, "%-22s %14s %14s %7s %7s %7s %10s\n",
			"variant", "welfare on", "welfare off", "ratio", "σ on", "σ off", "σ equal?")
		for _, r := range rows {
			verdict := "yes"
			if r.SigmaTTest.Distinguishable(0.05) {
				verdict = fmt.Sprintf("no p=%.3f", r.SigmaTTest.P)
			}
			ok := "OK"
			if !r.CompetitiveOK || !r.DominanceOK || !r.IndividuallyRat {
				ok = "VIOLATED"
			}
			fmt.Fprintf(out, "%-22s %14.1f %14.1f %7.3f %7.3f %7.3f %10s  %s\n",
				r.Variant, r.OnlineWelfare.Mean, r.OfflineWelfare.Mean, r.WorstRatio,
				r.OnlineSigma.Mean, r.OfflineSigma.Mean, verdict, ok)
		}
		return nil
	}

	if *figure == "baselines" {
		res, err := experiments.RunBaselines(opt)
		if err != nil {
			return err
		}
		if err := render(res.Welfare, *format, out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		return render(res.Overpayment, *format, out)
	}

	wanted := map[string]bool{}
	if *figure == "all" {
		for _, id := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
			wanted[id] = true
		}
	} else {
		wanted[*figure] = true
	}

	var results []*experiments.Result
	for _, sw := range experiments.Sweeps(base) {
		if !wanted[sw.Figures[0]] && !wanted[sw.Figures[1]] {
			continue
		}
		if *quick {
			thin := sw.Points[:0:0]
			for i := 0; i < len(sw.Points); i += 2 {
				thin = append(thin, sw.Points[i])
			}
			sw.Points = thin
		}
		fmt.Fprintf(out, "running sweep %q (%d points × %d seeds × 2 mechanisms)...\n",
			sw.Name, len(sw.Points), opt.Seeds)
		res, err := experiments.RunSweep(sw, opt)
		if err != nil {
			return err
		}
		results = append(results, res)

		for _, pick := range []struct {
			id  string
			fig *stats.Figure
		}{
			{sw.Figures[0], res.Welfare},
			{sw.Figures[1], res.Overpayment},
		} {
			if !wanted[pick.id] {
				continue
			}
			fmt.Fprintln(out)
			if err := render(pick.fig, *format, out); err != nil {
				return err
			}
		}
	}
	if len(results) == 0 {
		return fmt.Errorf("unknown figure %q (want fig6..fig11 or all)", *figure)
	}

	if *check {
		fmt.Fprintln(out, "\nshape checks against the paper's findings:")
		bad := 0
		for _, rep := range experiments.CheckShapes(results) {
			for _, c := range rep.Checks {
				fmt.Fprintf(out, "  %-6s PASS  %s\n", rep.Figure, c)
			}
			for _, v := range rep.Violations {
				fmt.Fprintf(out, "  %-6s FAIL  %s\n", rep.Figure, v)
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d shape check(s) failed", bad)
		}
	}
	return nil
}

func render(fig *stats.Figure, format string, out io.Writer) error {
	switch format {
	case "table":
		return fig.WriteTable(out)
	case "chart":
		return fig.WriteChart(out, 60, 14)
	case "csv":
		return fig.WriteCSV(out)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
