package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "fig6", "-format", "table"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig6", "online", "offline", "30", "70"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fig9") {
		t.Fatal("unrequested figure rendered")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "fig10", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "online_mean,online_ci95") {
		t.Fatalf("csv header missing:\n%s", buf.String())
	}
}

func TestRunChartFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "fig7", "-format", "chart"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legend:") {
		t.Fatalf("chart legend missing:\n%s", buf.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-figure", "fig99"}, &buf); err == nil {
		t.Fatal("want unknown-figure error")
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "fig6", "-format", "pdf"}, &buf); err == nil {
		t.Fatal("want unknown-format error")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("want flag error")
	}
}

func TestRunValueOverride(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-quick", "-figure", "fig6", "-value", "60"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-figure", "fig6"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Fatal("-value override had no effect")
	}
}

func TestRunBaselinesFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "baselines"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"all mechanisms", "posted-price", "adaptive-posted-price", "greedy-by-cost"} {
		if !strings.Contains(out, want) {
			t.Fatalf("baselines output missing %q", want)
		}
	}
}

func TestRunRobustnessFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "robustness"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"exponential costs", "rush-hour tasks", "OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("robustness output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("core claims violated:\n%s", out)
	}
}

func TestRunReserveFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "reserve"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Platform profit vs declared reserve") {
		t.Fatalf("reserve output:\n%s", buf.String())
	}
}

func TestRunAnytimeFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "anytime"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Anytime competitive ratio") {
		t.Fatalf("anytime output:\n%s", buf.String())
	}
}

func TestRunQualityFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "quality"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Query coverage") {
		t.Fatalf("quality output:\n%s", buf.String())
	}
}

func TestRunAllWithCheck(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-check"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "shape checks") || !strings.Contains(out, "PASS") {
		t.Fatalf("check output missing:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("shape checks failed:\n%s", out)
	}
}

// TestRunBudgetFigure: -figure budget runs the welfare-per-budget
// comparison across the workload zoo and renders the table plus the
// figure.
func TestRunBudgetFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "budget"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"default", "heavy-burst", "rush-hour", "budget-stage", "budget-frugal", "online", "ω/B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunBudgetOverride: -budget swaps the budgeted mechanism into the
// ordinary paper sweeps.
func TestRunBudgetOverride(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-figure", "fig6", "-budget", "150", "-budget-engine", "frugal"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig6") {
		t.Fatalf("figure missing:\n%s", buf.String())
	}
}

// TestRunBudgetFlagValidation: bad -budget values and combinations are
// rejected before any sweep starts.
func TestRunBudgetFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-budget", "-4"},
		{"-budget", "NaN"},
		{"-budget", "+Inf"},
		{"-budget", "5", "-budget-engine", "simplex"},
		{"-budget", "5", "-shards", "4"},
		{"-budget", "5", "-dshard", "2"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(append([]string{"-quick", "-figure", "fig6"}, args...), &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
