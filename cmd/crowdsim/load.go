// Load harness: -load drives a swarm of in-process virtual agents
// against a real platform.Server and reports sustained throughput.
//
// The agents speak the real wire protocol end to end — dial, hello
// (optionally negotiating the binary framing), bid, then drain slot
// fan-out — so the numbers cover the full encode/queue/write/decode
// path, not a mocked transport. The default transport is
// chaos.MemListener (net.Pipe pairs): no file descriptors, so a
// 100k-agent swarm fits inside an ordinary ulimit; -load-transport tcp
// switches to real loopback sockets for smaller swarms.
//
// Results print as `go test -bench`-shaped lines so they pipe straight
// into cmd/benchjson:
//
//	crowdsim -load -load-agents 100000 | benchjson -out BENCH_PR8.json -section load
package main

import (
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
	"dynacrowd/internal/obs"
	"dynacrowd/internal/platform"
	"dynacrowd/internal/protocol"
	"dynacrowd/internal/workload"
)

// loadOptions parameterize one -load invocation.
type loadOptions struct {
	agents    int
	ticks     int
	tasks     int    // tasks announced per measured tick (0 = pure fan-out)
	queue     int    // per-session outbound queue depth
	wire      string  // "json", "binary", or "both"
	transport string  // "mem" or "tcp"
	minMsgs   float64 // fail the run below this msgs/s (0 disables); smoke floor
	seed      uint64
}

// loadResult is one measured run.
type loadResult struct {
	wire         string
	bidsPerSec   float64
	msgsPerSec   float64
	fanoutP50    float64 // seconds
	fanoutP99    float64 // seconds
	allocsPerMsg float64
	delivered    int64 // messages written to the wire during the measured phase
	slotsSeen    int64 // slot notices decoded by the agents (sanity signal)
}

func (o loadOptions) validate() error {
	switch {
	case o.agents < 1:
		return fmt.Errorf("load: -load-agents %d must be positive", o.agents)
	case o.ticks < 1:
		return fmt.Errorf("load: -load-ticks %d must be positive", o.ticks)
	case o.tasks < 0:
		return fmt.Errorf("load: -load-tasks %d must be non-negative", o.tasks)
	case o.queue < o.ticks+2:
		// Every measured tick enqueues one slot notice per session; a
		// queue shallower than the tick count would trip the
		// slow-consumer disconnect by design rather than by load.
		return fmt.Errorf("load: -load-queue %d must exceed -load-ticks+1 (%d)", o.queue, o.ticks+1)
	case o.wire != protocol.WireJSON && o.wire != protocol.WireBinary && o.wire != "both":
		return fmt.Errorf("load: -load-wire %q must be json, binary, or both", o.wire)
	case o.transport != "mem" && o.transport != "tcp":
		return fmt.Errorf("load: -load-transport %q must be mem or tcp", o.transport)
	}
	return nil
}

// runLoad executes the harness for each requested wire format and
// prints benchjson-compatible result lines to out. Progress and
// human-readable summaries go to stderr so `crowdsim -load | benchjson`
// stays clean.
func runLoad(opt loadOptions, out io.Writer) error {
	if err := opt.validate(); err != nil {
		return err
	}
	wires := []string{opt.wire}
	if opt.wire == "both" {
		wires = []string{protocol.WireJSON, protocol.WireBinary}
	}
	fmt.Fprintln(out, "pkg: dynacrowd/cmd/crowdsim")
	byWire := make(map[string]*loadResult, len(wires))
	for _, wire := range wires {
		res, err := runLoadOnce(opt, wire)
		if err != nil {
			return fmt.Errorf("load (%s): %w", wire, err)
		}
		byWire[wire] = res
		fmt.Fprintf(out, "BenchmarkLoadHarness/agents=%d/ticks=%d/wire=%s 1 %.1f bids/s %.1f msgs/s %.1f msgs/s/core %.0f ns/fanout-p50 %.0f ns/fanout-p99 %.4f allocs/msg\n",
			opt.agents, opt.ticks, wire,
			res.bidsPerSec, res.msgsPerSec, res.msgsPerSec/float64(runtime.GOMAXPROCS(0)),
			res.fanoutP50*1e9, res.fanoutP99*1e9, res.allocsPerMsg)
		fmt.Fprintf(os.Stderr, "crowdsim: load %s: %d agents, %d ticks: %.0f bids/s, %.0f msgs/s, fan-out p50 %s p99 %s, %.4f allocs/msg (%d delivered, %d slot notices decoded)\n",
			wire, opt.agents, opt.ticks, res.bidsPerSec, res.msgsPerSec,
			time.Duration(res.fanoutP50*1e9), time.Duration(res.fanoutP99*1e9),
			res.allocsPerMsg, res.delivered, res.slotsSeen)
	}
	if j, b := byWire[protocol.WireJSON], byWire[protocol.WireBinary]; j != nil && b != nil && j.msgsPerSec > 0 {
		fmt.Fprintf(os.Stderr, "crowdsim: load: binary/json throughput ratio %.2fx\n", b.msgsPerSec/j.msgsPerSec)
	}
	if opt.minMsgs > 0 {
		for wire, res := range byWire {
			if res.msgsPerSec < opt.minMsgs {
				return fmt.Errorf("load: %s sustained %.0f msgs/s, below the %.0f floor", wire, res.msgsPerSec, opt.minMsgs)
			}
		}
	}
	return nil
}

// runLoadOnce measures one wire format: connect/bid phase, one
// admission tick, then a measured fan-out phase of opt.ticks ticks.
func runLoadOnce(opt loadOptions, wire string) (*loadResult, error) {
	o, err := obs.New(obs.Options{}) // registry only; no HTTP listener
	if err != nil {
		return nil, err
	}
	var ln net.Listener
	var dial func() (net.Conn, error)
	switch opt.transport {
	case "mem":
		ml := chaos.NewMemListener(1024)
		ln, dial = ml, ml.Dial
	case "tcp":
		tl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			o.Close()
			return nil, err
		}
		addr := tl.Addr().String()
		ln, dial = tl, func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}

	// Slots: the round must outlast the measured ticks, or the
	// round-end broadcast and fresh-round reset land mid-measurement.
	slots := core.Slot(opt.ticks + 16)
	srv, err := platform.Serve(ln, platform.Config{
		Slots:         slots,
		Value:         workload.DefaultScenario().Value,
		OutboundQueue: opt.queue,
		// net.Pipe writes rendezvous with the reader, so a per-write
		// deadline would need a timer per coalesced batch across 100k
		// sessions; the bounded queue is the slow-consumer trip wire.
		WriteTimeout: -1,
		Obs:          o,
	})
	if err != nil {
		o.Close()
		return nil, err
	}
	defer srv.Close() // also closes o: the server owns Config.Obs

	// Seeded bid schedule: costs drawn from the paper's Table I
	// workload; every agent stays available for the whole round so the
	// fan-out population is constant during measurement.
	scn := workload.DefaultScenario()
	rng := workload.NewRNG(opt.seed)
	costs := make([]float64, opt.agents)
	for i := range costs {
		c := rng.Uniform(scn.MeanCost*(1-scn.CostSpread), scn.MeanCost*(1+scn.CostSpread))
		costs[i] = math.Max(c, 0.01)
	}

	// Connect phase: a worker pool dials, negotiates, and bids for all
	// agents. bids/s is the full ingest path — dial, hello handshake,
	// bid, ack — not just raw message parsing.
	agents := make([]*loadAgent, opt.agents)
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	workers := 256
	if workers > opt.agents {
		workers = opt.agents
	}
	var wg sync.WaitGroup
	connectStart := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opt.agents || firstErr.Load() != nil {
					return
				}
				a, err := connectLoadAgent(dial, wire, "load-"+strconv.Itoa(i), slots, costs[i])
				if err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				agents[i] = a
			}
		}()
	}
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}
	bidsPerSec := float64(opt.agents) / time.Since(connectStart).Seconds()

	// Every agent drains its connection for the rest of the run,
	// counting decoded slot notices as a delivery sanity signal.
	var slotsSeen atomic.Int64
	for _, a := range agents {
		go a.drain(&slotsSeen)
	}
	defer func() {
		for _, a := range agents {
			a.conn.Close()
		}
	}()

	// Admission tick: all pending bids join the auction, each phone
	// gets its welcome. Settle and garbage-collect before measuring so
	// connect-phase allocation doesn't bleed into allocs/msg.
	if _, err := srv.Tick(0); err != nil {
		return nil, err
	}
	if err := waitLoadDrained(srv, 2*time.Minute); err != nil {
		return nil, err
	}
	runtime.GC()

	pre := srv.Stats()
	if pre.SlowConsumers > 0 || pre.MessagesDropped > 0 {
		return nil, fmt.Errorf("%d slow consumers, %d drops before measurement (queue too shallow?)", pre.SlowConsumers, pre.MessagesDropped)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	sent0 := pre.MessagesSentJSON + pre.MessagesSentBinary

	// Measured phase. Ticks run as fast as the backlog budget allows:
	// per-session queues absorb several ticks of fan-out and the
	// coalescing writers flush each backlog in one write, which is
	// exactly the steady state of a platform ahead of its slowest
	// consumers. The budget (half the aggregate queue capacity) keeps
	// pacing honest — nobody is pushed into the slow-consumer trip.
	budget := int64(opt.agents) * int64(opt.queue) / 2
	start := time.Now()
	for t := 0; t < opt.ticks; t++ {
		for {
			st := srv.Stats()
			backlog := st.MessagesQueued - st.MessagesSentJSON - st.MessagesSentBinary - st.MessagesDropped
			if backlog <= budget {
				break
			}
			runtime.Gosched()
		}
		if _, err := srv.Tick(opt.tasks); err != nil {
			return nil, err
		}
	}
	if err := waitLoadDrained(srv, 5*time.Minute); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	runtime.ReadMemStats(&ms)
	post := srv.Stats()
	if post.SlowConsumers > 0 || post.MessagesDropped > 0 {
		return nil, fmt.Errorf("%d slow consumers, %d drops during measurement", post.SlowConsumers, post.MessagesDropped)
	}
	delivered := post.MessagesSentJSON + post.MessagesSentBinary - sent0
	if delivered == 0 {
		return nil, fmt.Errorf("no messages delivered during measurement")
	}
	fanout := o.Registry.Histogram("dynacrowd_platform_fanout_seconds",
		"time to enqueue one tick's announcements across all sessions", obs.LatencyBuckets)
	return &loadResult{
		wire:         wire,
		bidsPerSec:   bidsPerSec,
		msgsPerSec:   float64(delivered) / elapsed.Seconds(),
		fanoutP50:    fanout.Quantile(0.50),
		fanoutP99:    fanout.Quantile(0.99),
		allocsPerMsg: float64(ms.Mallocs-mallocs0) / float64(delivered),
		delivered:    delivered,
		slotsSeen:    slotsSeen.Load(),
	}, nil
}

// loadAgent is one virtual smartphone: a real protocol conversation
// over its own connection.
type loadAgent struct {
	conn net.Conn
	r    *protocol.Reader
	w    *protocol.Writer
}

// connectLoadAgent dials, performs the hello handshake (negotiating the
// binary framing when wire says so), and submits one bid, returning
// once the ack arrives.
func connectLoadAgent(dial func() (net.Conn, error), wire, name string, duration core.Slot, cost float64) (*loadAgent, error) {
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	a := &loadAgent{conn: conn, r: protocol.NewReader(conn), w: protocol.NewWriter(conn)}
	hello := &protocol.Message{Type: protocol.TypeHello}
	if wire == protocol.WireBinary {
		hello.Wire = protocol.WireBinary
	}
	if err := a.w.Send(hello); err != nil {
		conn.Close()
		return nil, err
	}
	st, err := a.r.Receive()
	if err != nil || st.Type != protocol.TypeState {
		conn.Close()
		return nil, fmt.Errorf("%s: handshake: got %v, err %w", name, st, err)
	}
	if wire == protocol.WireBinary {
		if st.Wire != protocol.WireBinary {
			conn.Close()
			return nil, fmt.Errorf("%s: binary negotiation refused", name)
		}
		a.r.SetFormat(protocol.FormatBinary)
		a.w.SetFormat(protocol.FormatBinary)
	}
	if err := a.w.Send(&protocol.Message{Type: protocol.TypeBid, Name: name, Duration: duration, Cost: cost}); err != nil {
		conn.Close()
		return nil, err
	}
	for {
		m, err := a.r.Receive()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("%s: awaiting ack: %w", name, err)
		}
		switch m.Type {
		case protocol.TypeAck:
			return a, nil
		case protocol.TypeError:
			conn.Close()
			return nil, fmt.Errorf("%s: bid rejected: %s", name, m.Error)
		}
	}
}

// drain consumes the connection until it dies. ReceiveInto keeps the
// loop allocation-free in binary mode, so agent-side decode cost — not
// agent-side garbage — is what the harness weighs.
func (a *loadAgent) drain(slots *atomic.Int64) {
	var m protocol.Message
	for {
		if err := a.r.ReceiveInto(&m); err != nil {
			return
		}
		if m.Type == protocol.TypeSlot {
			slots.Add(1)
		}
	}
}

// waitLoadDrained blocks until every queued outbound message has been
// written to the wire (or dropped), i.e. the swarm has caught up.
func waitLoadDrained(s *platform.Server, deadline time.Duration) error {
	stop := time.Now().Add(deadline)
	for {
		st := s.Stats()
		if st.MessagesSentJSON+st.MessagesSentBinary+st.MessagesDropped >= st.MessagesQueued {
			return nil
		}
		if time.Now().After(stop) {
			return fmt.Errorf("queues never drained: %d queued, %d sent, %d dropped",
				st.MessagesQueued, st.MessagesSentJSON+st.MessagesSentBinary, st.MessagesDropped)
		}
		runtime.Gosched()
	}
}
