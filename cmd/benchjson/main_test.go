package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dynacrowd
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkOnlineMechanism/slots=100        	   88958	     26158 ns/op	   17408 B/op	       6 allocs/op
BenchmarkFig6WelfareVsSlots/slots=30-8    	       1	  12345678 ns/op	       434.9 welfare_online	       512.3 welfare_offline	         0.52 sigma_online	         0.61 sigma_offline
BenchmarkStreamingSlot                    	   48362	     59043 ns/op	        50.00 slots/op	   89848 B/op	     532 allocs/op
PASS
ok  	dynacrowd	11.074s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	m, ok := got["dynacrowd/BenchmarkOnlineMechanism/slots=100"]
	if !ok {
		t.Fatalf("missing pkg-qualified benchmark, got keys %v", got)
	}
	if m["ns/op"] != 26158 || m["allocs/op"] != 6 || m["iterations"] != 88958 {
		t.Errorf("wrong metrics: %v", m)
	}
	// The -8 GOMAXPROCS suffix must be stripped so sections recorded on
	// different machines stay comparable, and custom metrics must survive.
	fig, ok := got["dynacrowd/BenchmarkFig6WelfareVsSlots/slots=30"]
	if !ok {
		t.Fatalf("missing suffix-stripped benchmark, got keys %v", got)
	}
	if fig["welfare_online"] != 434.9 || fig["sigma_offline"] != 0.61 {
		t.Errorf("custom metrics lost: %v", fig)
	}
}

func TestMergeKeepsOtherSections(t *testing.T) {
	existing := []byte(`{"sections":{"baseline":{"go":"go1.0","recorded":"x","benchmarks":{"b":{"ns/op":100}}}}}`)
	data, err := merge(existing, "current", &section{
		Go:         "go1.24",
		Recorded:   "now",
		Benchmarks: map[string]metrics{"b": {"ns/op": 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var traj trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Sections) != 2 {
		t.Fatalf("sections %v, want baseline+current", traj.Sections)
	}
	if traj.Sections["baseline"].Benchmarks["b"]["ns/op"] != 100 {
		t.Error("baseline section was clobbered")
	}
	if traj.Sections["current"].Benchmarks["b"]["ns/op"] != 10 {
		t.Error("current section not recorded")
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-out", out, "-section", "current"}, strings.NewReader(sample), os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if traj.Sections["current"] == nil || len(traj.Sections["current"].Benchmarks) != 3 {
		t.Fatalf("bad trajectory: %s", data)
	}
}

func TestMergeFilesCombinesTrajectories(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "BENCH_PR3.json")
	b := filepath.Join(dir, "BENCH_PR5.json")
	writeJSON := func(path, body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeJSON(a, `{"sections":{
		"baseline":{"go":"go1.24","recorded":"a","benchmarks":{"b":{"ns/op":100}}},
		"current":{"go":"go1.24","recorded":"a","benchmarks":{"b":{"ns/op":50}}}}}`)
	writeJSON(b, `{"sections":{
		"current":{"go":"go1.24","recorded":"b","benchmarks":{"b":{"ns/op":25}}},
		"sharded":{"go":"go1.24","recorded":"b","benchmarks":{"s":{"ns/op":10}}}}}`)

	out := filepath.Join(dir, "BENCH_ALL.json")
	err := run([]string{"-merge", a + "," + b, "-out", out}, strings.NewReader(""), discard{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	// All four recorded runs survive: the second file's colliding
	// "current" is renamed after its file stem instead of clobbering.
	for _, name := range []string{"baseline", "current", "current@BENCH_PR5", "sharded"} {
		if traj.Sections[name] == nil {
			t.Fatalf("merged file missing section %q: %s", name, data)
		}
	}
	if traj.Sections["current"].Benchmarks["b"]["ns/op"] != 50 {
		t.Error("first file's current section was overwritten")
	}
	if traj.Sections["current@BENCH_PR5"].Benchmarks["b"]["ns/op"] != 25 {
		t.Error("second file's current section lost")
	}
}

func TestMergeFilesErrors(t *testing.T) {
	if _, err := mergeFiles([]string{filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Fatal("want error for missing input file")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"sections":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeFiles([]string{empty}); err == nil {
		t.Fatal("want error when no sections found")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-out", out}, strings.NewReader("no benchmarks here\n"), discard{})
	if err == nil {
		t.Fatal("want error on empty benchmark input")
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Error("file should not be written on empty input")
	}
}

// discard is a throwaway writer for tests that don't care about stderr.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
