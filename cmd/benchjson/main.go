// Command benchjson converts `go test -bench` output into a named
// section of a JSON trajectory file, so performance baselines survive
// across changes and regressions are diffable:
//
//	go test -bench=. -benchtime=1x -run='^$' . | benchjson -out BENCH_PR3.json -section current
//
// The file accumulates sections (e.g. "baseline" recorded before an
// optimization, "current" after); re-recording a section replaces it and
// leaves the others untouched. Every metric the benchmark emitted is
// kept — ns/op, B/op, allocs/op, and custom metrics like the figure
// benchmarks' welfare_online / sigma_online series.
//
// With -merge, benchjson instead combines several trajectory files into
// one (no benchmark output is read):
//
//	benchjson -merge BENCH_PR3.json,BENCH_PR5.json -out BENCH_ALL.json
//
// Sections keep their names; when two files both define a section, the
// later file's copy is renamed "<section>@<file-stem>" so nothing is
// silently dropped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// trajectory is the top-level file shape.
type trajectory struct {
	Sections map[string]*section `json:"sections"`
}

// section is one recorded benchmark run.
type section struct {
	Go         string             `json:"go"`
	Recorded   string             `json:"recorded"`
	Benchmarks map[string]metrics `json:"benchmarks"`
}

// metrics maps unit -> value for one benchmark, plus the iteration count.
type metrics map[string]float64

// cpuSuffix is the -GOMAXPROCS suffix go test appends to benchmark names
// when running on more than one CPU.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark result lines from `go test -bench` output.
// Benchmarks are keyed "<pkg>/<name>" using the preceding `pkg:` line
// (bare name if none was seen), so multi-package runs don't collide.
func parse(r io.Reader) (map[string]metrics, error) {
	out := make(map[string]metrics)
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is: name iterations (value unit)+
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue // e.g. "BenchmarkX ... FAIL" status lines
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		if pkg != "" {
			name = pkg + "/" + name
		}
		m := metrics{"iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", fields[0], fields[i])
			}
			m[fields[i+1]] = v
		}
		out[name] = m
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: read: %w", err)
	}
	return out, nil
}

// merge loads the existing trajectory (if any), replaces the named
// section, and returns the updated file content.
func merge(existing []byte, name string, sec *section) ([]byte, error) {
	traj := trajectory{Sections: map[string]*section{}}
	if len(existing) > 0 {
		if err := json.Unmarshal(existing, &traj); err != nil {
			return nil, fmt.Errorf("benchjson: existing file: %w", err)
		}
		if traj.Sections == nil {
			traj.Sections = map[string]*section{}
		}
	}
	traj.Sections[name] = sec
	return json.MarshalIndent(traj, "", "  ")
}

// mergeFiles unions the sections of several trajectory files, in order.
// A section name already taken by an earlier file is disambiguated to
// "<name>@<file-stem>" rather than overwritten, so merged reports keep
// every recorded run.
func mergeFiles(paths []string) (*trajectory, error) {
	out := &trajectory{Sections: map[string]*section{}}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %w", err)
		}
		var traj trajectory
		if err := json.Unmarshal(data, &traj); err != nil {
			return nil, fmt.Errorf("benchjson: %s: %w", path, err)
		}
		names := make([]string, 0, len(traj.Sections))
		for name := range traj.Sections {
			names = append(names, name)
		}
		sort.Strings(names)
		stem := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		for _, name := range names {
			key := name
			if _, taken := out.Sections[key]; taken {
				key = name + "@" + stem
			}
			if _, taken := out.Sections[key]; taken {
				return nil, fmt.Errorf("benchjson: section %q defined twice in %s", name, path)
			}
			out.Sections[key] = traj.Sections[name]
		}
	}
	if len(out.Sections) == 0 {
		return nil, fmt.Errorf("benchjson: no sections in %s", strings.Join(paths, ", "))
	}
	return out, nil
}

// speedup prints the ns/op ratio baseline/current for benchmarks present
// in both sections, so the trajectory doubles as a quick regression
// report.
func speedup(w io.Writer, traj trajectory, from, to string) {
	a, b := traj.Sections[from], traj.Sections[to]
	if a == nil || b == nil {
		return
	}
	names := make([]string, 0, len(a.Benchmarks))
	for name := range a.Benchmarks {
		if _, ok := b.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		old, new := a.Benchmarks[name]["ns/op"], b.Benchmarks[name]["ns/op"]
		if old > 0 && new > 0 {
			fmt.Fprintf(w, "%-70s %10.0f -> %10.0f ns/op  (%.1fx)\n", name, old, new, old/new)
		}
	}
}

func run(args []string, stdin io.Reader, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH_PR3.json", "trajectory file to create or update")
	name := fs.String("section", "current", "section name to (re)record")
	in := fs.String("in", "", "read benchmark output from this file instead of stdin")
	compare := fs.String("compare", "baseline", "print ns/op speedups against this section, if present")
	mergeList := fs.String("merge", "", "comma-separated trajectory files to combine into -out (reads no benchmark output)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *mergeList != "" {
		traj, err := mergeFiles(strings.Split(*mergeList, ","))
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(traj, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
		fmt.Fprintf(stderr, "benchjson: merged %d sections into %s\n", len(traj.Sections), *out)
		if *compare != "" {
			speedup(stderr, *traj, *compare, *name)
		}
		return nil
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return fmt.Errorf("benchjson: %w", err)
		}
		defer f.Close()
		src = f
	}
	benches, err := parse(src)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("benchjson: no benchmark results in input")
	}

	existing, err := os.ReadFile(*out)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("benchjson: %w", err)
	}
	data, err := merge(existing, *name, &section{
		Go:         runtime.Version(),
		Recorded:   time.Now().UTC().Format(time.RFC3339),
		Benchmarks: benches,
	})
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	fmt.Fprintf(stderr, "benchjson: recorded %d benchmarks to section %q of %s\n", len(benches), *name, *out)
	if *compare != "" && *compare != *name {
		var traj trajectory
		if err := json.Unmarshal(data, &traj); err == nil {
			speedup(stderr, traj, *compare, *name)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		os.Exit(1)
	}
}
