package main

import (
	"testing"
	"time"

	"dynacrowd/internal/platform"
)

// TestRunAgentAgainstInProcessPlatform drives the CLI's agent loop
// against a real platform server: bid, win, get paid, survive the round
// end, and return cleanly when the server closes.
func TestRunAgentAgainstInProcessPlatform(t *testing.T) {
	srv, err := platform.Listen("127.0.0.1:0", platform.Config{Slots: 2, Value: 10})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- runAgent(srv.Addr(), "cli-test", 2, 4, true, 1, "binary", 1) }()

	// Give the agent time to connect and bid, then play the round out.
	deadline := time.After(5 * time.Second)
	for srv.Stats().BidsAccepted == 0 {
		select {
		case <-deadline:
			t.Fatal("agent never bid")
		case err := <-done:
			t.Fatalf("agent exited early: %v", err)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if _, err := srv.Tick(1); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Tick(0); err != nil {
		t.Fatal(err)
	}
	srv.Close() // end of service: the agent's event stream closes

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("agent returned error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not exit after server close")
	}
	out := srv.Outcome()
	if out.Allocation.NumServed() != 1 || out.TotalPayment() != 10 {
		t.Fatalf("round outcome: served %d paid %g", out.Allocation.NumServed(), out.TotalPayment())
	}
}

// TestRunSwarmValidation exercises the fan-out wrapper's error paths.
func TestRunSwarmValidation(t *testing.T) {
	if err := run("127.0.0.1:1", 0, 10, 3, time.Second, 1, false, 1, "json"); err == nil {
		t.Fatal("want error for zero agents")
	}
	if err := run("127.0.0.1:1", 1, 10, 3, time.Second, 1, false, 1, "carrier-pigeon"); err == nil {
		t.Fatal("want error for unknown wire format")
	}
	// A dead address must surface a dial error from the agent.
	if err := run("127.0.0.1:1", 1, 10, 3, time.Millisecond, 1, false, 1, "json"); err == nil {
		t.Fatal("want dial error")
	}
}

// TestSwarmAgainstInProcessPlatform: several CLI agents join a live
// round concurrently.
func TestSwarmAgainstInProcessPlatform(t *testing.T) {
	srv, err := platform.Listen("127.0.0.1:0", platform.Config{Slots: 3, Value: 30})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- run(srv.Addr(), 5, 15, 2, 50*time.Millisecond, 7, true, 1, "binary") }()

	deadline := time.After(5 * time.Second)
	for srv.Stats().BidsAccepted < 5 {
		select {
		case <-deadline:
			t.Fatalf("only %d bids arrived", srv.Stats().BidsAccepted)
		case err := <-done:
			t.Fatalf("swarm exited early: %v", err)
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	for !srv.Done() {
		if _, err := srv.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("swarm error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("swarm did not exit")
	}
	if served := srv.Outcome().Allocation.NumServed(); served == 0 {
		t.Fatal("no tasks served by the swarm")
	}
}
