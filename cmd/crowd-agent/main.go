// Command crowd-agent runs one or many smartphone agents against a
// crowd-platform server. Each agent joins after a random delay, submits
// a bid drawn from the configured cost distribution, and logs the
// assignments and payments it receives.
//
// Usage:
//
//	crowd-agent [flags]
//
//	-addr host:port   platform address (default 127.0.0.1:7381)
//	-n count          number of agents to simulate (default 1)
//	-cost c           claimed cost; with -n > 1, the mean of U[0, 2c] (default 25)
//	-duration slots   active time in slots; with -n > 1, mean (default 5)
//	-join-spread d    agents join uniformly within this window (default 10s)
//	-seed n           randomness seed (default 1)
//	-reconnect        automatically reconnect and resume an admitted
//	                  phone after a dropped connection (default true)
//	-complete p       probability of reporting an assigned task done
//	                  (default 1; meaningful against a platform running
//	                  -completion-deadline — an agent that stays silent
//	                  is defaulted and its payment clawed back)
//	-wire f           wire framing: json (default) or binary — binary
//	                  negotiates the compact length-prefixed framing at
//	                  hello (see docs/PLATFORM.md "Wire formats")
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/platform"
	"dynacrowd/internal/protocol"
	"dynacrowd/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7381", "platform address")
	n := flag.Int("n", 1, "number of agents")
	cost := flag.Float64("cost", 25, "claimed cost (mean when -n > 1)")
	duration := flag.Int("duration", 5, "active slots (mean when -n > 1)")
	joinSpread := flag.Duration("join-spread", 10*time.Second, "join-time window")
	seed := flag.Uint64("seed", 1, "randomness seed")
	reconnect := flag.Bool("reconnect", true, "reconnect and resume after connection loss")
	complete := flag.Float64("complete", 1, "probability of reporting an assigned task done")
	wire := flag.String("wire", "json", "wire framing: json | binary (negotiated at hello)")
	flag.Parse()

	if err := run(*addr, *n, *cost, *duration, *joinSpread, *seed, *reconnect, *complete, *wire); err != nil {
		fmt.Fprintln(os.Stderr, "crowd-agent:", err)
		os.Exit(1)
	}
}

func run(addr string, n int, cost float64, duration int, joinSpread time.Duration, seed uint64, reconnect bool, complete float64, wire string) error {
	if n < 1 {
		return fmt.Errorf("need at least one agent, got %d", n)
	}
	if complete < 0 || complete > 1 {
		return fmt.Errorf("completion probability %g outside [0,1]", complete)
	}
	if wire != protocol.WireJSON && wire != protocol.WireBinary {
		return fmt.Errorf("wire format %q must be json or binary", wire)
	}
	rng := workload.NewRNG(seed)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("agent-%d", i)
		agentSeed := int64(seed) + int64(i)
		c, d, delay := cost, duration, time.Duration(0)
		if n > 1 {
			c = rng.Uniform(0, 2*cost)
			d = rng.UniformInt(1, 2*duration-1)
			delay = time.Duration(rng.Float64() * float64(joinSpread))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(delay)
			if err := runAgent(addr, name, core.Slot(d), c, reconnect, complete, wire, agentSeed); err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err // report the first failure
	}
	return nil
}

// runAgent plays one phone's life: hello, bid, consume events to the end.
func runAgent(addr, name string, duration core.Slot, cost float64, reconnect bool, complete float64, wire string, seed int64) error {
	var a *platform.Agent
	var err error
	if reconnect {
		a, err = platform.DialResilient(addr, platform.ReconnectPolicy{Seed: seed})
	} else {
		a, err = platform.Dial(addr)
	}
	if err != nil {
		return err
	}
	defer a.Close()

	var st platform.RoundState
	if wire == protocol.WireBinary {
		st, err = a.UpgradeBinary()
	} else {
		st, err = a.Hello()
	}
	if err != nil {
		return err
	}
	log.Printf("%s: joined round at slot %d/%d (ν=%g, wire %s); bidding cost %.2f for %d slots",
		name, st.Slot, st.Slots, st.Value, wire, cost, duration)
	if err := a.SubmitBid(name, duration, cost); err != nil {
		return err
	}

	rng := workload.NewRNG(uint64(seed) + 1)
	phone := core.NoPhone
	for ev := range a.Events() {
		switch ev.Kind {
		case platform.EventWelcome:
			phone = ev.Phone
			log.Printf("%s: admitted as phone %d, active slots %d..%d", name, phone, ev.Slot, ev.Departure)
		case platform.EventAssign:
			log.Printf("%s: assigned task %d in slot %d", name, ev.Task, ev.Slot)
			// Against a -completion-deadline platform, report the task
			// done (or — with probability 1-complete — stay silent and
			// let the deadline default this phone).
			if rng.Float64() < complete {
				if err := a.ReportCompletion(); err != nil {
					log.Printf("%s: completion report rejected: %v", name, err)
				} else {
					log.Printf("%s: reported task %d done", name, ev.Task)
				}
			} else {
				log.Printf("%s: skipping completion report for task %d (simulating an unreliable phone)", name, ev.Task)
			}
		case platform.EventPayment:
			log.Printf("%s: paid %.2f in slot %d (utility %.2f at real cost %.2f)",
				name, ev.Amount, ev.Slot, ev.Amount-cost, cost)
		case platform.EventClawback:
			log.Printf("%s: defaulted — payment of %.2f revoked (slot %d)", name, ev.Amount, ev.Slot)
		case platform.EventEnd:
			log.Printf("%s: round %d over (welfare %.2f, total paid %.2f)", name, ev.Round, ev.Welfare, ev.Payments)
		case platform.EventRound:
			// Multi-round platform: the next round opened, bid again.
			log.Printf("%s: round %d opened, re-bidding", name, ev.Round)
			if err := a.SubmitBid(name, duration, cost); err != nil {
				return err
			}
		case platform.EventError:
			return ev.Err
		}
		// A phone past its departure with no task learns nothing more;
		// keep listening anyway for the end-of-round summary.
	}
	return nil
}
