// Command crowd-repro regenerates the full reproduction report in one
// shot: every paper figure (Figs. 6-11) with shape checks, plus the
// extension experiments (baselines, robustness, reserve, anytime,
// quality) — as a self-contained Markdown document on stdout. It is the
// single command behind EXPERIMENTS.md.
//
// Usage:
//
//	crowd-repro [-seeds n] [-seed base] > report.md
//
// With the default 20 seeds the run takes a few minutes on one core
// (the offline VCG sweeps dominate); -seeds 5 gives a quick draft.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dynacrowd/internal/experiments"
	"dynacrowd/internal/stats"
	"dynacrowd/internal/workload"
)

func main() {
	seeds := flag.Int("seeds", 20, "replications per sweep point")
	seed := flag.Uint64("seed", 1, "base seed")
	flag.Parse()
	if err := run(*seeds, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crowd-repro:", err)
		os.Exit(1)
	}
}

func run(seeds int, seed uint64, out io.Writer) error {
	opt := experiments.Options{Seeds: seeds, BaseSeed: seed, Scenario: workload.DefaultScenario()}
	start := time.Now()

	fmt.Fprintf(out, "# dynacrowd reproduction report\n\n")
	fmt.Fprintf(out, "%d seeds per point, base seed %d, scenario: paper Table I defaults.\n\n",
		seeds, seed)

	// --- the paper's six figures, two per sweep ---
	fmt.Fprintf(out, "## Paper figures (Figs. 6-11)\n\n")
	results, err := experiments.RunAll(opt)
	if err != nil {
		return err
	}
	for _, res := range results {
		for _, fig := range []*stats.Figure{res.Welfare, res.Overpayment} {
			fmt.Fprintf(out, "```\n")
			if err := fig.WriteTable(out); err != nil {
				return err
			}
			fmt.Fprintf(out, "```\n\n")
		}
	}

	fmt.Fprintf(out, "### Shape checks vs the paper's findings\n\n")
	for _, rep := range experiments.CheckShapes(results) {
		for _, c := range rep.Checks {
			fmt.Fprintf(out, "- %s: PASS — %s\n", rep.Figure, c)
		}
		for _, v := range rep.Violations {
			fmt.Fprintf(out, "- %s: **FAIL** — %s\n", rep.Figure, v)
		}
	}
	fmt.Fprintln(out)

	// --- extensions ---
	fmt.Fprintf(out, "## Extension: all mechanisms compared\n\n```\n")
	base, err := experiments.RunBaselines(opt)
	if err != nil {
		return err
	}
	if err := base.Welfare.WriteTable(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n")
	if err := base.Overpayment.WriteTable(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "```\n\n")

	fmt.Fprintf(out, "## Extension: robustness across workload variants\n\n")
	rows, err := experiments.RunRobustness(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "| variant | welfare on | welfare off | worst ratio | σ on | σ off | σ distinguishable? | claims |\n")
	fmt.Fprintf(out, "|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		dist := "no"
		if r.SigmaTTest.Distinguishable(0.05) {
			dist = fmt.Sprintf("yes (p=%.3f)", r.SigmaTTest.P)
		}
		claims := "OK"
		if !r.CompetitiveOK || !r.DominanceOK || !r.IndividuallyRat {
			claims = "VIOLATED"
		}
		fmt.Fprintf(out, "| %s | %.1f | %.1f | %.3f | %.3f | %.3f | %s | %s |\n",
			r.Variant, r.OnlineWelfare.Mean, r.OfflineWelfare.Mean, r.WorstRatio,
			r.OnlineSigma.Mean, r.OfflineSigma.Mean, dist, claims)
	}
	fmt.Fprintln(out)

	fmt.Fprintf(out, "## Extension: reserve-price profit curve\n\n```\n")
	reserve, err := experiments.RunReserveSweep(opt)
	if err != nil {
		return err
	}
	if err := reserve.WriteTable(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "```\n\n")

	fmt.Fprintf(out, "## Extension: anytime competitive ratio\n\n```\n")
	anyOpt := opt
	scn := opt.Scenario
	scn.Slots = 25
	anyOpt.Scenario = scn
	anytime, err := experiments.RunAnytime(anyOpt)
	if err != nil {
		return err
	}
	if err := anytime.WriteChart(out, 60, 12); err != nil {
		return err
	}
	fmt.Fprintf(out, "```\n\n")

	fmt.Fprintf(out, "## Extension: auction supply vs data quality\n\n```\n")
	quality, err := experiments.RunQualitySweep(opt)
	if err != nil {
		return err
	}
	if err := quality.WriteTable(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "```\n\n")

	fmt.Fprintf(out, "Generated in %s.\n", time.Since(start).Round(time.Second))
	return nil
}
