package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestReportQuick generates a small-seed report and checks every
// section renders.
func TestReportQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(2, 3, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# dynacrowd reproduction report",
		"## Paper figures",
		"fig6", "fig9", "fig11",
		"Shape checks",
		"all mechanisms compared",
		"robustness across workload variants",
		"reserve-price profit curve",
		"anytime competitive ratio",
		"data quality",
		"Generated in",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Per-seed hard guarantees (competitive ratio, dominance, IR) must
	// hold at any seed count. The σ-ordering shape check is statistical
	// and legitimately noisy at 2 seeds, so FAIL lines are tolerated
	// here; the 20-seed runs behind EXPERIMENTS.md pass it.
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("hard guarantees violated:\n%s", out)
	}
	if strings.Contains(out, "FAIL") && !strings.Contains(out, "σ") {
		t.Fatalf("non-statistical shape check failed:\n%s", out)
	}
}
