package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunMarketSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := run(6, "online", 0.5, 15, 1, false, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"6 rounds of 15 slots", "online-greedy", "mean welfare/round", "σ drift"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "round    phones") {
		t.Fatal("verbose table printed without -verbose")
	}
}

func TestRunMarketVerbose(t *testing.T) {
	var buf bytes.Buffer
	if err := run(3, "offline", 0, 10, 2, true, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "offline-vcg") {
		t.Fatalf("mechanism missing:\n%s", out)
	}
	// Three per-round rows plus the header.
	if got := strings.Count(out, "\n"); got < 8 {
		t.Fatalf("verbose output too short (%d lines):\n%s", got, out)
	}
}

func TestRunMarketErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(3, "warble", 0.5, 10, 1, false, &buf); err == nil {
		t.Fatal("want unknown-mechanism error")
	}
	if err := run(0, "online", 0.5, 10, 1, false, &buf); err == nil {
		t.Fatal("want rounds error")
	}
	if err := run(3, "online", 2, 10, 1, false, &buf); err == nil {
		t.Fatal("want return-probability error")
	}
}

func TestVerdictBands(t *testing.T) {
	if v := verdict(5); !strings.Contains(v, "stable") {
		t.Fatalf("verdict(5) = %q", v)
	}
	if v := verdict(20); !strings.Contains(v, "mildly") {
		t.Fatalf("verdict(20) = %q", v)
	}
	if v := verdict(50); !strings.Contains(v, "UNSTABLE") {
		t.Fatalf("verdict(50) = %q", v)
	}
}
