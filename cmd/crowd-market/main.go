// Command crowd-market runs the auction round after round (the paper's
// §III-B deployment model) and reports long-run market behaviour:
// per-round welfare and overpayment, phone re-entry, and the stability
// statistic behind the paper's "stable even in the long run" claim.
//
// Usage:
//
//	crowd-market [flags]
//
//	-rounds n       number of consecutive rounds (default 20)
//	-mechanism m    online | offline (default online)
//	-return p       probability a losing phone retries next round (default 0.5)
//	-slots m        slots per round (default 50)
//	-seed n         randomness seed (default 1)
//	-verbose        print every round
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynacrowd/internal/core"
	"dynacrowd/internal/market"
	"dynacrowd/internal/workload"
)

func main() {
	rounds := flag.Int("rounds", 20, "number of consecutive rounds")
	mechName := flag.String("mechanism", "online", "online | offline")
	returnProb := flag.Float64("return", 0.5, "probability a loser retries next round")
	slots := flag.Int("slots", 50, "slots per round")
	seed := flag.Uint64("seed", 1, "randomness seed")
	verbose := flag.Bool("verbose", false, "print every round")
	flag.Parse()

	if err := run(*rounds, *mechName, *returnProb, *slots, *seed, *verbose, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "crowd-market:", err)
		os.Exit(1)
	}
}

func run(rounds int, mechName string, returnProb float64, slots int, seed uint64, verbose bool, out io.Writer) error {
	var mech core.Mechanism
	switch mechName {
	case "online":
		mech = &core.OnlineMechanism{}
	case "offline":
		mech = &core.OfflineMechanism{}
	default:
		return fmt.Errorf("unknown mechanism %q", mechName)
	}

	scn := workload.DefaultScenario()
	scn.Slots = core.Slot(slots)
	res, err := market.Run(market.Config{
		Rounds:            rounds,
		Scenario:          scn,
		Mechanism:         mech,
		Seed:              seed,
		ReturnProbability: returnProb,
	})
	if err != nil {
		return err
	}

	if verbose {
		fmt.Fprintf(out, "%5s %9s %7s %9s %11s %8s\n", "round", "phones", "return", "served", "welfare", "σ")
		for _, rec := range res.Rounds {
			m := rec.Metrics
			fmt.Fprintf(out, "%5d %9d %7d %6d/%-3d %11.1f %8.3f\n",
				rec.Round, m.Phones, rec.Returning, m.Served, m.Tasks, m.Welfare, m.OverpaymentRatio)
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintf(out, "market: %d rounds of %d slots, %s mechanism, return prob %.2f\n",
		rounds, slots, mech.Name(), returnProb)
	fmt.Fprintf(out, "mean welfare/round:    %.1f\n", res.MeanWelfare())
	fmt.Fprintf(out, "mean overpayment σ:    %.3f\n", res.MeanOverpayment())
	drift := res.OverpaymentDrift()
	rel := 0.0
	if m := res.MeanOverpayment(); m > 0 {
		rel = 100 * drift / m
	}
	fmt.Fprintf(out, "σ drift (1st vs 2nd half): %.4f (%.1f%% of mean) — %s\n",
		drift, rel, verdict(rel))
	return nil
}

func verdict(relPct float64) string {
	if relPct <= 10 {
		return "stable, matching the paper's long-run claim"
	}
	if relPct <= 25 {
		return "mildly drifting"
	}
	return "UNSTABLE"
}
