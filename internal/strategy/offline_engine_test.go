package strategy

import (
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// TestOfflineEnginesTruthfulUnderAudit runs the offline mechanism under
// the fast interval engine — not just the Hungarian oracle — through
// the exhaustive misreport sweep (cost scaling, arrival delay,
// departure advance over the full factor grid) on the paper's Fig. 4
// instance. Truthfulness and individual rationality must hold for the
// engine that actually ships as the default.
func TestOfflineEnginesTruthfulUnderAudit(t *testing.T) {
	in := paperInstance()
	for _, mech := range []core.Mechanism{
		&core.OfflineMechanism{}, // interval engine, the default
		&core.OfflineMechanism{Engine: core.HungarianOffline},
		&core.OfflineMechanism{Engine: core.SSPOffline},
	} {
		results, err := Audit(mech, in, AuditOptions{})
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		if phone, gain := MaxGain(results); gain > 1e-9 {
			t.Fatalf("%s: phone %d gains %g by misreporting (bid %+v)",
				mech.Name(), phone, gain, results[phone].BestBid)
		}
		for _, r := range results {
			// IR: truthful participation never loses money.
			if r.TruthfulUtility < -1e-9 {
				t.Fatalf("%s: phone %d has negative truthful utility %g",
					mech.Name(), r.Phone, r.TruthfulUtility)
			}
		}
	}
}

// TestOfflineIntervalEngineCampaign: a multi-seed audit campaign over
// generated workloads pins the fast engine's truthfulness beyond the
// single paper instance.
func TestOfflineIntervalEngineCampaign(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 7
	scn.PhoneRate = 2
	scn.TaskRate = 1.5
	gen := func(seed uint64) (*core.Instance, error) { return scn.Generate(seed) }

	res, err := AuditCampaign(&core.OfflineMechanism{}, gen, []uint64{1, 2, 3, 4, 5}, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 5 || res.PhonesAudited == 0 || res.ReportsSearched == 0 {
		t.Fatalf("campaign shape: %+v", res)
	}
	if !res.Truthful() {
		t.Fatalf("interval offline engine flagged by audit: %+v", res)
	}
}
