package strategy

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dynacrowd/internal/baseline"
	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// paperInstance mirrors the Fig. 4/5 reconstruction used across the
// test suites.
func paperInstance() *core.Instance {
	in := &core.Instance{Slots: 5, Value: 20}
	windows := [][2]core.Slot{{2, 5}, {1, 4}, {3, 5}, {4, 5}, {2, 2}, {3, 5}, {1, 3}}
	costs := []float64{3, 5, 11, 9, 4, 8, 6}
	for i := range windows {
		in.Bids = append(in.Bids, core.Bid{
			Phone: core.PhoneID(i), Arrival: windows[i][0], Departure: windows[i][1], Cost: costs[i],
		})
	}
	for k := 0; k < 5; k++ {
		in.Tasks = append(in.Tasks, core.Task{ID: core.TaskID(k), Arrival: core.Slot(k + 1)})
	}
	return in
}

func TestBehaviorFeasibility(t *testing.T) {
	rng := workload.NewRNG(1)
	truth := core.Bid{Phone: 3, Arrival: 2, Departure: 7, Cost: 10}
	behaviors := []Behavior{
		Truthful{},
		CostScale{Factor: 2},
		CostScale{Factor: 0.3},
		CostScale{Factor: -1},
		ArrivalDelay{Slots: 3},
		ArrivalDelay{Slots: 100},
		DepartureAdvance{Slots: 2},
		DepartureAdvance{Slots: 100},
		RandomMisreport{},
	}
	for _, b := range behaviors {
		for trial := 0; trial < 50; trial++ {
			r := b.Report(truth, rng)
			if r.Phone != truth.Phone {
				t.Fatalf("%s changed phone identity", b.Name())
			}
			if r.Arrival < truth.Arrival {
				t.Fatalf("%s reported early arrival %d < %d", b.Name(), r.Arrival, truth.Arrival)
			}
			if r.Departure > truth.Departure {
				t.Fatalf("%s reported late departure %d > %d", b.Name(), r.Departure, truth.Departure)
			}
			if r.Arrival > r.Departure {
				t.Fatalf("%s produced inverted window", b.Name())
			}
			if r.Cost < 0 {
				t.Fatalf("%s produced negative cost", b.Name())
			}
		}
	}
}

func TestBehaviorNames(t *testing.T) {
	if (Truthful{}).Name() != "truthful" {
		t.Fatal("truthful name")
	}
	if !strings.Contains((CostScale{Factor: 1.5}).Name(), "1.50") {
		t.Fatal("cost-scale name")
	}
	if !strings.Contains((ArrivalDelay{Slots: 2}).Name(), "2") {
		t.Fatal("arrival-delay name")
	}
	if !strings.Contains((DepartureAdvance{Slots: 3}).Name(), "3") {
		t.Fatal("departure-advance name")
	}
	if (RandomMisreport{}).Name() == "" {
		t.Fatal("random name")
	}
}

func TestApplyOnlyTouchesDeviants(t *testing.T) {
	truth := paperInstance()
	rng := workload.NewRNG(2)
	reported := Apply(truth, CostScale{Factor: 2}, []core.PhoneID{1, 3}, rng)
	for i := range truth.Bids {
		switch core.PhoneID(i) {
		case 1, 3:
			if reported.Bids[i].Cost != truth.Bids[i].Cost*2 {
				t.Fatalf("deviant %d not transformed", i)
			}
		default:
			if reported.Bids[i] != truth.Bids[i] {
				t.Fatalf("non-deviant %d modified", i)
			}
		}
	}
	// The truth must be untouched.
	if truth.Bids[1].Cost != 5 {
		t.Fatal("Apply mutated the truth")
	}
}

func TestAuditPhoneValidation(t *testing.T) {
	if _, err := AuditPhone(&core.OnlineMechanism{}, paperInstance(), 99, AuditOptions{}); err == nil {
		t.Fatal("want error for unknown phone")
	}
	bad := paperInstance()
	bad.Bids[0].Arrival = 0
	if _, err := AuditPhone(&core.OnlineMechanism{}, bad, 0, AuditOptions{}); err == nil {
		t.Fatal("want error for invalid instance")
	}
}

// TestAuditFindsNoGainForTruthfulMechanisms: the paper's two mechanisms
// survive the exhaustive audit on the Fig. 4 instance (Theorems 1, 4).
func TestAuditFindsNoGainForTruthfulMechanisms(t *testing.T) {
	in := paperInstance()
	for _, mech := range []core.Mechanism{&core.OnlineMechanism{}, &core.OfflineMechanism{}} {
		results, err := Audit(mech, in, AuditOptions{})
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		if len(results) != in.NumPhones() {
			t.Fatalf("%s: audited %d phones", mech.Name(), len(results))
		}
		phone, gain := MaxGain(results)
		if gain > 1e-9 {
			t.Fatalf("%s: phone %d gains %g by misreporting (bid %+v)",
				mech.Name(), phone, gain, results[phone].BestBid)
		}
		for _, r := range results {
			if r.ReportsSearched == 0 {
				t.Fatalf("%s: phone %d searched no reports", mech.Name(), r.Phone)
			}
		}
	}
}

// TestAuditExposesSecondPrice: the auditor automatically rediscovers the
// paper's Fig. 5 attack on the per-slot second-price baseline — phone 1
// (id 0) gains by delaying its reported arrival.
func TestAuditExposesSecondPrice(t *testing.T) {
	in := paperInstance()
	r, err := AuditPhone(&baseline.SecondPricePerSlot{}, in, 0, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Gain() < 4-1e-9 {
		t.Fatalf("auditor found gain %g, paper's attack yields 4", r.Gain())
	}
	if r.BestBid.Arrival < 4 {
		t.Fatalf("best attack %+v should delay arrival to slot ≥ 4", r.BestBid)
	}
}

// TestAuditRandomInstances: truthfulness holds for the paper mechanisms
// on random instances under the default factor grid.
func TestAuditRandomInstances(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 8
	scn.PhoneRate = 2
	scn.TaskRate = 1.5
	for seed := uint64(0); seed < 6; seed++ {
		in, err := scn.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		if in.NumPhones() == 0 {
			continue
		}
		for _, mech := range []core.Mechanism{&core.OnlineMechanism{}, &core.OfflineMechanism{}} {
			results, err := Audit(mech, in, AuditOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if phone, gain := MaxGain(results); gain > 1e-6 {
				t.Fatalf("seed %d %s: phone %d gains %g via %+v",
					seed, mech.Name(), phone, gain, results[phone].BestBid)
			}
		}
	}
}

func TestAuditWindowCap(t *testing.T) {
	in := paperInstance()
	r, err := AuditPhone(&core.OnlineMechanism{}, in, 0, AuditOptions{MaxWindowSpan: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := AuditPhone(&core.OnlineMechanism{}, in, 0, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ReportsSearched >= full.ReportsSearched {
		t.Fatalf("cap did not reduce search: %d vs %d", r.ReportsSearched, full.ReportsSearched)
	}
}

func TestMaxGainEmpty(t *testing.T) {
	phone, gain := MaxGain(nil)
	if phone != core.NoPhone || gain != 0 {
		t.Fatalf("MaxGain(nil) = %d,%g", phone, gain)
	}
}

// TestCostUnderstatementHurts: reporting below cost can only reduce (or
// keep) utility but never below what losing offers — sanity check that
// utilities stay coherent when deviants understate.
func TestCostUnderstatementHurts(t *testing.T) {
	in := paperInstance()
	rng := workload.NewRNG(3)
	reported := Apply(in, CostScale{Factor: 0.1}, []core.PhoneID{2}, rng)
	out, err := (&core.OnlineMechanism{}).Run(reported)
	if err != nil {
		t.Fatal(err)
	}
	// Phone 2 (cost 11) understates to 1.1 and now wins, but its payment
	// is a critical value computed from others' bids — if that is below
	// its real cost its utility is negative, the phenomenon truthfulness
	// protects against.
	u := out.Utility(2, in.Bids[2].Cost)
	truthOut, err := (&core.OnlineMechanism{}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	uTruth := truthOut.Utility(2, in.Bids[2].Cost)
	if u > uTruth+1e-9 {
		t.Fatalf("understatement profited: %g > %g", u, uTruth)
	}
}

func TestAuditGainAccessor(t *testing.T) {
	r := AuditResult{TruthfulUtility: 2, BestUtility: 5}
	if math.Abs(r.Gain()-3) > 1e-12 {
		t.Fatalf("Gain = %g", r.Gain())
	}
}

func TestAuditCampaign(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 6
	scn.PhoneRate = 1.5
	scn.TaskRate = 1
	gen := func(seed uint64) (*core.Instance, error) { return scn.Generate(seed) }
	seeds := []uint64{1, 2, 3}

	res, err := AuditCampaign(&core.OnlineMechanism{}, gen, seeds, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 3 || res.PhonesAudited == 0 || res.ReportsSearched == 0 {
		t.Fatalf("campaign shape: %+v", res)
	}
	if !res.Truthful() {
		t.Fatalf("online mechanism flagged: %+v", res)
	}

	spRes, err := AuditCampaign(&baseline.SecondPricePerSlot{}, gen, seeds, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if spRes.Truthful() {
		t.Fatal("second-price passed a multi-seed audit")
	}
	if spRes.WorstGain <= 0 || spRes.WorstPhone == core.NoPhone {
		t.Fatalf("worst case not recorded: %+v", spRes)
	}
}

func TestAuditCampaignPropagatesErrors(t *testing.T) {
	gen := func(uint64) (*core.Instance, error) { return nil, errGen }
	if _, err := AuditCampaign(&core.OnlineMechanism{}, gen, []uint64{1}, AuditOptions{}); err == nil {
		t.Fatal("want error")
	}
}

var errGen = errors.New("boom")
