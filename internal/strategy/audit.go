package strategy

import (
	"fmt"

	"dynacrowd/internal/core"
)

// AuditOptions bounds the misreport search space.
type AuditOptions struct {
	// CostFactors are the multipliers applied to the true cost; 1 (the
	// truthful report) is implicit. Nil selects DefaultCostFactors.
	CostFactors []float64
	// MaxWindowSpan caps the number of (arrival, departure) pairs tried
	// per phone; 0 means exhaustive over all nested windows. Phones with
	// long windows make the exhaustive audit quadratic in the span, so
	// large studies should cap it.
	MaxWindowSpan int
}

// DefaultCostFactors spans understatement through strong inflation.
var DefaultCostFactors = []float64{0, 0.5, 0.8, 0.9, 0.99, 1.01, 1.1, 1.25, 1.5, 2, 4}

// AuditResult is the outcome of the misreport search for one phone.
type AuditResult struct {
	Phone           core.PhoneID
	TruthfulUtility float64
	BestUtility     float64
	BestBid         core.Bid // the report achieving BestUtility
	ReportsSearched int
}

// Gain is the maximum utility improvement a misreport achieved; a value
// meaningfully above zero disproves truthfulness of the mechanism on
// this instance.
func (r AuditResult) Gain() float64 { return r.BestUtility - r.TruthfulUtility }

// AuditPhone exhaustively searches phone i's feasible misreports (nested
// windows × cost factors) for the report maximizing i's true utility,
// holding all other reports truthful.
func AuditPhone(mech core.Mechanism, truth *core.Instance, i core.PhoneID, opts AuditOptions) (AuditResult, error) {
	if int(i) < 0 || int(i) >= truth.NumPhones() {
		return AuditResult{}, fmt.Errorf("audit: no phone %d", i)
	}
	trueBid := truth.Bids[i]
	baseline, err := mech.Run(truth)
	if err != nil {
		return AuditResult{}, fmt.Errorf("audit: %w", err)
	}
	res := AuditResult{
		Phone:           i,
		TruthfulUtility: baseline.Utility(i, trueBid.Cost),
		BestBid:         trueBid,
	}
	res.BestUtility = res.TruthfulUtility

	factors := opts.CostFactors
	if factors == nil {
		factors = DefaultCostFactors
	}

	work := truth.Clone()
	tried := 0
	for a := trueBid.Arrival; a <= trueBid.Departure; a++ {
		for d := a; d <= trueBid.Departure; d++ {
			if opts.MaxWindowSpan > 0 && tried >= opts.MaxWindowSpan*len(factors) {
				break
			}
			for _, f := range factors {
				if f < 0 {
					continue
				}
				work.Bids[i] = core.Bid{Phone: i, Arrival: a, Departure: d, Cost: trueBid.Cost * f}
				out, err := mech.Run(work)
				if err != nil {
					return AuditResult{}, fmt.Errorf("audit: %w", err)
				}
				tried++
				if u := out.Utility(i, trueBid.Cost); u > res.BestUtility {
					res.BestUtility = u
					res.BestBid = work.Bids[i]
				}
			}
		}
	}
	res.ReportsSearched = tried
	return res, nil
}

// Audit runs AuditPhone for every phone and returns the per-phone
// results in PhoneID order.
func Audit(mech core.Mechanism, truth *core.Instance, opts AuditOptions) ([]AuditResult, error) {
	results := make([]AuditResult, 0, truth.NumPhones())
	for i := 0; i < truth.NumPhones(); i++ {
		r, err := AuditPhone(mech, truth, core.PhoneID(i), opts)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// MaxGain returns the largest misreport gain across audit results and
// the phone achieving it.
func MaxGain(results []AuditResult) (core.PhoneID, float64) {
	best := core.NoPhone
	var gain float64
	for _, r := range results {
		if g := r.Gain(); g > gain {
			gain = g
			best = r.Phone
		}
	}
	return best, gain
}

// CampaignResult aggregates audits across many generated instances.
type CampaignResult struct {
	Instances       int
	PhonesAudited   int
	ReportsSearched int
	// WorstGain is the largest misreport gain found anywhere, with the
	// instance seed and phone that produced it.
	WorstGain  float64
	WorstSeed  uint64
	WorstPhone core.PhoneID
}

// Truthful reports whether no profitable misreport was found.
func (r CampaignResult) Truthful() bool { return r.WorstGain <= 1e-9 }

// AuditCampaign audits the mechanism on every instance produced by
// gen(seed) for the given seeds — the statistical version of a
// single-instance audit, used to build confidence (or find rare
// counterexamples) across workloads.
func AuditCampaign(mech core.Mechanism, gen func(seed uint64) (*core.Instance, error), seeds []uint64, opts AuditOptions) (CampaignResult, error) {
	var res CampaignResult
	for _, seed := range seeds {
		in, err := gen(seed)
		if err != nil {
			return res, fmt.Errorf("audit campaign: %w", err)
		}
		results, err := Audit(mech, in, opts)
		if err != nil {
			return res, fmt.Errorf("audit campaign (seed %d): %w", seed, err)
		}
		res.Instances++
		res.PhonesAudited += len(results)
		for _, r := range results {
			res.ReportsSearched += r.ReportsSearched
			if g := r.Gain(); g > res.WorstGain {
				res.WorstGain = g
				res.WorstSeed = seed
				res.WorstPhone = r.Phone
			}
		}
	}
	return res, nil
}
