// Package strategy models strategic smartphone behaviour and audits
// mechanisms for truthfulness. A Behavior maps a phone's private truth to
// the bid it actually reports (always within the feasible misreport space:
// no early arrival, no late departure, non-negative cost). The Auditor
// searches that space for profitable deviations — the empirical
// counterpart of the paper's Theorems 1 and 4, and the tool that exposes
// the Fig. 5 counterexample in the second-price baseline automatically.
package strategy

import (
	"fmt"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// Behavior decides the bid a phone reports given its private truth.
// Implementations must return a feasible bid: arrival not before the
// true arrival, departure not after the true departure, cost ≥ 0.
type Behavior interface {
	// Name identifies the behaviour in reports.
	Name() string
	// Report returns the bid submitted for the given truth. rng supplies
	// randomness for stochastic behaviours.
	Report(truth core.Bid, rng *workload.RNG) core.Bid
}

// Truthful reports the private information unchanged.
type Truthful struct{}

// Name implements Behavior.
func (Truthful) Name() string { return "truthful" }

// Report implements Behavior.
func (Truthful) Report(truth core.Bid, _ *workload.RNG) core.Bid { return truth }

// CostScale multiplies the claimed cost by Factor (e.g. 1.5 = inflate
// 50%, 0.5 = understate). Factor must be ≥ 0; the window is truthful.
type CostScale struct {
	Factor float64
}

// Name implements Behavior.
func (b CostScale) Name() string { return fmt.Sprintf("cost-scale-%.2f", b.Factor) }

// Report implements Behavior.
func (b CostScale) Report(truth core.Bid, _ *workload.RNG) core.Bid {
	truth.Cost *= b.Factor
	if truth.Cost < 0 {
		truth.Cost = 0
	}
	return truth
}

// ArrivalDelay postpones the reported arrival by up to Slots slots
// (clamped to the true departure), as in the paper's Fig. 5 attack.
type ArrivalDelay struct {
	Slots core.Slot
}

// Name implements Behavior.
func (b ArrivalDelay) Name() string { return fmt.Sprintf("arrival-delay-%d", b.Slots) }

// Report implements Behavior.
func (b ArrivalDelay) Report(truth core.Bid, _ *workload.RNG) core.Bid {
	truth.Arrival += b.Slots
	if truth.Arrival > truth.Departure {
		truth.Arrival = truth.Departure
	}
	return truth
}

// DepartureAdvance moves the reported departure earlier by up to Slots
// slots (clamped to the reported arrival).
type DepartureAdvance struct {
	Slots core.Slot
}

// Name implements Behavior.
func (b DepartureAdvance) Name() string { return fmt.Sprintf("departure-advance-%d", b.Slots) }

// Report implements Behavior.
func (b DepartureAdvance) Report(truth core.Bid, _ *workload.RNG) core.Bid {
	truth.Departure -= b.Slots
	if truth.Departure < truth.Arrival {
		truth.Departure = truth.Arrival
	}
	return truth
}

// RandomMisreport draws a uniformly random feasible misreport: a window
// nested in the truth and a cost scaled by U[0.5, 2).
type RandomMisreport struct{}

// Name implements Behavior.
func (RandomMisreport) Name() string { return "random-misreport" }

// Report implements Behavior.
func (RandomMisreport) Report(truth core.Bid, rng *workload.RNG) core.Bid {
	span := int(truth.Departure - truth.Arrival + 1)
	a := truth.Arrival + core.Slot(rng.Intn(span))
	d := a + core.Slot(rng.Intn(int(truth.Departure-a)+1))
	return core.Bid{
		Phone:     truth.Phone,
		Arrival:   a,
		Departure: d,
		Cost:      truth.Cost * rng.Uniform(0.5, 2),
	}
}

// Apply builds the reported instance: phones listed in deviants use the
// behaviour, everyone else reports truthfully. The returned instance
// shares no storage with the truth.
func Apply(truth *core.Instance, b Behavior, deviants []core.PhoneID, rng *workload.RNG) *core.Instance {
	reported := truth.Clone()
	for _, i := range deviants {
		reported.Bids[i] = b.Report(truth.Bids[i], rng)
	}
	return reported
}
