// Package typed extends the paper's model to heterogeneous sensing.
// The paper assumes "each smartphone can provide all kinds of sensing
// services" (Section III-A); real fleets are not uniform — a phone
// without a barometer cannot serve a pressure-sensing task. This package
// generalizes both mechanisms to tasks with a Kind, phones with a
// capability set, and per-kind task values:
//
//   - OfflineMechanism stays an exact VCG auction: the bipartite
//     reduction only gains a capability constraint on edges, so
//     optimality, truthfulness, and individual rationality carry over
//     unchanged (capability misreports are one-sided, like time
//     misreports: a phone can hide a sensor but cannot fake one).
//   - OnlineMechanism keeps the paper's greedy slot-by-slot allocation
//     with capability filtering. The allocation remains monotone in a
//     phone's claimed cost (lowering a cost either leaves the run
//     untouched until the phone wins earlier, or changes nothing — see
//     the proof sketch on criticalCost), so Myerson payments still
//     exist; they are computed by binary search on the win/lose
//     boundary instead of the homogeneous case's closed form.
//
// The package is self-contained (its own Instance/Bid/Task carrying the
// kind information) and reuses internal/matching for the offline
// optimum. The test suite audits truthfulness of both generalized
// mechanisms the same way internal/strategy audits the originals.
package typed

import (
	"fmt"
	"math"
	"math/bits"

	"dynacrowd/internal/core"
)

// Kind is a sensing-task category (noise, air quality, imagery, ...).
// Kinds are small dense integers; at most 64 are supported so that a
// capability set fits one word.
type Kind uint8

// MaxKinds bounds the number of distinct kinds.
const MaxKinds = 64

// Capabilities is the set of kinds a phone can serve, as a bitmask.
type Capabilities uint64

// Caps builds a capability set.
func Caps(kinds ...Kind) Capabilities {
	var c Capabilities
	for _, k := range kinds {
		c |= 1 << k
	}
	return c
}

// Has reports whether the set contains kind k.
func (c Capabilities) Has(k Kind) bool { return c&(1<<k) != 0 }

// Count returns the number of kinds in the set.
func (c Capabilities) Count() int { return bits.OnesCount64(uint64(c)) }

// Task is a sensing task with a kind.
type Task struct {
	ID      core.TaskID
	Arrival core.Slot
	Kind    Kind
}

// Bid is a phone's bid: window, cost, and claimed capability set. As
// with arrival and departure, capability misreports are one-sided: a
// phone may withhold capabilities it has, but claiming a sensor it
// lacks means failing the task, which the platform verifies on
// delivery.
type Bid struct {
	Phone     core.PhoneID
	Arrival   core.Slot
	Departure core.Slot
	Cost      float64
	Caps      Capabilities
}

// Covers reports whether the bid's window contains slot t.
func (b Bid) Covers(t core.Slot) bool { return b.Arrival <= t && t <= b.Departure }

// Instance is one heterogeneous auction round.
type Instance struct {
	Slots core.Slot
	// Values[k] is the platform's value for completing a task of kind k.
	Values []float64
	Bids   []Bid
	Tasks  []Task
}

// Validate checks the structural invariants.
func (in *Instance) Validate() error {
	if in.Slots < 1 {
		return fmt.Errorf("typed: round length %d < 1", in.Slots)
	}
	if len(in.Values) == 0 || len(in.Values) > MaxKinds {
		return fmt.Errorf("typed: %d kinds outside [1,%d]", len(in.Values), MaxKinds)
	}
	for k, v := range in.Values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("typed: value %g for kind %d is not a non-negative finite number", v, k)
		}
	}
	for i, b := range in.Bids {
		if b.Phone != core.PhoneID(i) {
			return fmt.Errorf("typed: bid %d has phone id %d", i, b.Phone)
		}
		if b.Arrival < 1 || b.Departure > in.Slots || b.Arrival > b.Departure {
			return fmt.Errorf("typed: bid %d window [%d,%d] invalid", i, b.Arrival, b.Departure)
		}
		if b.Cost < 0 || math.IsNaN(b.Cost) || math.IsInf(b.Cost, 0) {
			return fmt.Errorf("typed: bid %d cost %g is not a non-negative finite number", i, b.Cost)
		}
		if b.Caps == 0 {
			return fmt.Errorf("typed: bid %d has no capabilities", i)
		}
	}
	var prev core.Slot
	for k, t := range in.Tasks {
		if t.ID != core.TaskID(k) {
			return fmt.Errorf("typed: task %d has id %d", k, t.ID)
		}
		if t.Arrival < 1 || t.Arrival > in.Slots {
			return fmt.Errorf("typed: task %d arrival %d outside round", k, t.Arrival)
		}
		if t.Arrival < prev {
			return fmt.Errorf("typed: task %d out of arrival order", k)
		}
		if int(t.Kind) >= len(in.Values) {
			return fmt.Errorf("typed: task %d kind %d has no value", k, t.Kind)
		}
		prev = t.Arrival
	}
	return nil
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Slots: in.Slots}
	out.Values = append([]float64(nil), in.Values...)
	out.Bids = append([]Bid(nil), in.Bids...)
	out.Tasks = append([]Task(nil), in.Tasks...)
	return out
}

// surplus returns the platform's gain from phone serving task, or ≤ 0
// when infeasible (outside window, missing capability, or at a loss).
func (in *Instance) surplus(task, phone int) float64 {
	t := in.Tasks[task]
	b := in.Bids[phone]
	if !b.Covers(t.Arrival) || !b.Caps.Has(t.Kind) {
		return 0
	}
	return in.Values[t.Kind] - b.Cost
}

// Outcome mirrors core.Outcome for the typed model.
type Outcome struct {
	// ByTask maps TaskID -> PhoneID (core.NoPhone when unserved).
	ByTask []core.PhoneID
	// Payments maps PhoneID -> payment (0 for losers).
	Payments []float64
	// Welfare is Σ (value(kind) − cost) over served tasks.
	Welfare float64
}

// Winners returns the phones that were allocated a task.
func (o *Outcome) Winners() []core.PhoneID {
	seen := make(map[core.PhoneID]bool)
	var w []core.PhoneID
	for _, p := range o.ByTask {
		if p != core.NoPhone && !seen[p] {
			seen[p] = true
			w = append(w, p)
		}
	}
	return w
}

// Utility returns phone i's utility given its real cost.
func (o *Outcome) Utility(i core.PhoneID, realCost float64) float64 {
	for _, p := range o.ByTask {
		if p == i {
			return o.Payments[i] - realCost
		}
	}
	return 0
}

// Validate checks outcome feasibility against the instance.
func (o *Outcome) Validate(in *Instance) error {
	if len(o.ByTask) != len(in.Tasks) || len(o.Payments) != len(in.Bids) {
		return fmt.Errorf("typed: outcome size mismatch")
	}
	used := make(map[core.PhoneID]core.TaskID)
	for k, p := range o.ByTask {
		if p == core.NoPhone {
			continue
		}
		if int(p) >= len(in.Bids) {
			return fmt.Errorf("typed: task %d assigned to unknown phone %d", k, p)
		}
		if prev, ok := used[p]; ok {
			return fmt.Errorf("typed: phone %d serves tasks %d and %d", p, prev, k)
		}
		used[p] = core.TaskID(k)
		if in.surplus(k, int(p)) <= 0 {
			return fmt.Errorf("typed: infeasible or unprofitable assignment task %d -> phone %d", k, p)
		}
	}
	return nil
}
