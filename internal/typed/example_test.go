package typed_test

import (
	"fmt"

	"dynacrowd/internal/core"
	"dynacrowd/internal/typed"
)

// ExampleOnlineMechanism_Run: heterogeneous sensing — a cheap phone
// without the right sensor loses to a capable one, and the winner's
// payment is its binary-searched critical value.
func ExampleOnlineMechanism_Run() {
	const (
		noise typed.Kind = 0
		air   typed.Kind = 1
	)
	in := &typed.Instance{
		Slots:  1,
		Values: []float64{10, 50}, // air readings are precious
		Bids: []typed.Bid{
			{Phone: 0, Arrival: 1, Departure: 1, Cost: 2, Caps: typed.Caps(noise)},
			{Phone: 1, Arrival: 1, Departure: 1, Cost: 9, Caps: typed.Caps(noise, air)},
		},
		Tasks: []typed.Task{{ID: 0, Arrival: 1, Kind: air}},
	}
	out, err := (&typed.OnlineMechanism{}).Run(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("air task -> phone %d\n", out.ByTask[0])
	fmt.Printf("phone 0 (no sensor) wins nothing: %v\n", out.ByTask[0] != core.PhoneID(0))
	fmt.Printf("winner paid %.0f (the air reserve: no rival is capable)\n", out.Payments[1])
	// Output:
	// air task -> phone 1
	// phone 0 (no sensor) wins nothing: true
	// winner paid 50 (the air reserve: no rival is capable)
}
