package typed

import (
	"math"
	"math/rand"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/matching"
)

const (
	kindNoise Kind = iota
	kindAir
	kindPhoto
)

// demoInstance: 3 kinds with different values, phones with partial
// capability sets.
func demoInstance() *Instance {
	return &Instance{
		Slots:  4,
		Values: []float64{20, 40, 30}, // noise, air, photo
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 4, Cost: 5, Caps: Caps(kindNoise, kindAir, kindPhoto)},
			{Phone: 1, Arrival: 1, Departure: 2, Cost: 3, Caps: Caps(kindNoise)},
			{Phone: 2, Arrival: 2, Departure: 4, Cost: 8, Caps: Caps(kindAir)},
			{Phone: 3, Arrival: 1, Departure: 4, Cost: 6, Caps: Caps(kindPhoto, kindNoise)},
		},
		Tasks: []Task{
			{ID: 0, Arrival: 1, Kind: kindNoise},
			{ID: 1, Arrival: 2, Kind: kindAir},
			{ID: 2, Arrival: 3, Kind: kindPhoto},
		},
	}
}

func TestCapabilities(t *testing.T) {
	c := Caps(kindNoise, kindPhoto)
	if !c.Has(kindNoise) || !c.Has(kindPhoto) || c.Has(kindAir) {
		t.Fatalf("caps = %b", c)
	}
	if c.Count() != 2 {
		t.Fatalf("count = %d", c.Count())
	}
	if Caps().Count() != 0 {
		t.Fatal("empty caps")
	}
}

func TestInstanceValidate(t *testing.T) {
	if err := demoInstance().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Instance){
		func(in *Instance) { in.Slots = 0 },
		func(in *Instance) { in.Values = nil },
		func(in *Instance) { in.Values[1] = -1 },
		func(in *Instance) { in.Bids[0].Phone = 9 },
		func(in *Instance) { in.Bids[0].Arrival = 0 },
		func(in *Instance) { in.Bids[0].Cost = -1 },
		func(in *Instance) { in.Bids[0].Caps = 0 },
		func(in *Instance) { in.Tasks[0].ID = 5 },
		func(in *Instance) { in.Tasks[0].Arrival = 9 },
		func(in *Instance) { in.Tasks[2].Kind = 7 },
		func(in *Instance) { in.Tasks[0].Arrival = 4 }, // out of order
	}
	for i, mut := range mutations {
		in := demoInstance()
		mut(in)
		if in.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSurplusRespectsCapabilityAndWindow(t *testing.T) {
	in := demoInstance()
	// Phone 1 (noise only) on the air task: no edge.
	if s := in.surplus(1, 1); s > 0 {
		t.Fatalf("capability violation has surplus %g", s)
	}
	// Phone 1 on the photo task in slot 3: outside window [1,2].
	if s := in.surplus(2, 1); s > 0 {
		t.Fatalf("window violation has surplus %g", s)
	}
	// Phone 0 on the air task: 40 − 5.
	if s := in.surplus(1, 0); s != 35 {
		t.Fatalf("surplus = %g, want 35", s)
	}
}

func runBoth(t *testing.T, in *Instance) (*Outcome, *Outcome) {
	t.Helper()
	on, err := (&OnlineMechanism{}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := on.Validate(in); err != nil {
		t.Fatalf("online outcome invalid: %v", err)
	}
	off, err := (&OfflineMechanism{}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := off.Validate(in); err != nil {
		t.Fatalf("offline outcome invalid: %v", err)
	}
	return on, off
}

func TestDemoAllocation(t *testing.T) {
	in := demoInstance()
	on, off := runBoth(t, in)

	// Online greedy: task 0 (noise, slot 1) -> phone 1 (cost 3);
	// task 1 (air, slot 2) -> phone 0 (cost 5 < phone 2's 8);
	// task 2 (photo, slot 3) -> phone 3 (phone 0 taken).
	want := []core.PhoneID{1, 0, 3}
	for k, p := range on.ByTask {
		if p != want[k] {
			t.Fatalf("online task %d -> phone %d, want %d", k, p, want[k])
		}
	}
	// Offline can do no worse.
	if off.Welfare < on.Welfare-1e-9 {
		t.Fatalf("offline %g < online %g", off.Welfare, on.Welfare)
	}
}

func TestOfflineRejectsInvalid(t *testing.T) {
	in := demoInstance()
	in.Bids[0].Caps = 0
	if _, err := (&OfflineMechanism{}).Run(in); err == nil {
		t.Fatal("want error")
	}
	if _, err := (&OnlineMechanism{}).Run(in); err == nil {
		t.Fatal("want error")
	}
	if _, err := (&OfflineMechanism{}).Welfare(in); err == nil {
		t.Fatal("want error")
	}
}

// randomTyped builds a random heterogeneous instance. equalValues makes
// all kinds worth the same (the regime where the 1/2-competitive bound
// still applies).
func randomTyped(rng *rand.Rand, equalValues bool) *Instance {
	kinds := 2 + rng.Intn(3)
	m := core.Slot(3 + rng.Intn(5))
	in := &Instance{Slots: m}
	for k := 0; k < kinds; k++ {
		if equalValues {
			in.Values = append(in.Values, 30)
		} else {
			in.Values = append(in.Values, 10+rng.Float64()*40)
		}
	}
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		a := core.Slot(1 + rng.Intn(int(m)))
		d := a + core.Slot(rng.Intn(int(m-a)+1))
		caps := Capabilities(0)
		for caps == 0 {
			for k := 0; k < kinds; k++ {
				if rng.Intn(2) == 0 {
					caps |= 1 << Kind(k)
				}
			}
		}
		in.Bids = append(in.Bids, Bid{
			Phone: core.PhoneID(i), Arrival: a, Departure: d,
			Cost: rng.Float64() * 45, Caps: caps,
		})
	}
	numTasks := rng.Intn(8)
	arr := make([]int, numTasks)
	for k := range arr {
		arr[k] = 1 + rng.Intn(int(m))
	}
	for i := 1; i < len(arr); i++ {
		for j := i; j > 0 && arr[j] < arr[j-1]; j-- {
			arr[j], arr[j-1] = arr[j-1], arr[j]
		}
	}
	for k, a := range arr {
		in.Tasks = append(in.Tasks, Task{ID: core.TaskID(k), Arrival: core.Slot(a), Kind: Kind(rng.Intn(kinds))})
	}
	return in
}

// TestOfflineOptimalTyped cross-checks against the brute-force matcher.
func TestOfflineOptimalTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	of := &OfflineMechanism{}
	for trial := 0; trial < 120; trial++ {
		in := randomTyped(rng, trial%2 == 0)
		out, err := of.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		oracle := matching.BruteForceMaxWeight(len(in.Tasks), len(in.Bids), in.surplus)
		if math.Abs(out.Welfare-oracle.Weight) > 1e-6 {
			t.Fatalf("trial %d: offline %g != oracle %g", trial, out.Welfare, oracle.Weight)
		}
	}
}

// TestOnlineAtMostOffline: greedy never beats the optimum.
func TestOnlineAtMostOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	for trial := 0; trial < 120; trial++ {
		in := randomTyped(rng, trial%2 == 0)
		on, off := runBoth(t, in)
		if on.Welfare > off.Welfare+1e-9 {
			t.Fatalf("trial %d: online %g > offline %g", trial, on.Welfare, off.Welfare)
		}
	}
}

// TestOnlineHalfCompetitiveEqualValues: with uniform task values the
// paper's 1/2 bound carries over to the typed greedy (exchange argument
// over the feasibility graph). With heterogeneous values it provably
// does NOT (a cheap phone can be burned on a low-value task), which
// TestHeterogeneousValuesBreakHalf demonstrates.
func TestOnlineHalfCompetitiveEqualValues(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	for trial := 0; trial < 200; trial++ {
		in := randomTyped(rng, true)
		on, off := runBoth(t, in)
		if on.Welfare < off.Welfare/2-1e-9 {
			t.Fatalf("trial %d: online %g < offline/2 = %g\n%+v", trial, on.Welfare, off.Welfare/2, in)
		}
	}
}

// TestHeterogeneousValuesBreakHalf pins the counterexample showing the
// competitive guarantee is value-homogeneity-dependent: one phone, a
// low-value task first, a high-value task later.
func TestHeterogeneousValuesBreakHalf(t *testing.T) {
	in := &Instance{
		Slots:  2,
		Values: []float64{10, 100}, // kind 0 cheap, kind 1 precious
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 2, Cost: 1, Caps: Caps(0, 1)},
		},
		Tasks: []Task{
			{ID: 0, Arrival: 1, Kind: 0},
			{ID: 1, Arrival: 2, Kind: 1},
		},
	}
	on, off := runBoth(t, in)
	if on.Welfare != 9 {
		t.Fatalf("online welfare %g, want 9 (burned on the cheap task)", on.Welfare)
	}
	if off.Welfare != 99 {
		t.Fatalf("offline welfare %g, want 99", off.Welfare)
	}
	if on.Welfare >= off.Welfare/2 {
		t.Fatal("counterexample lost its bite")
	}
}

// TestOnlineMonotoneInCost verifies the monotonicity lemma the critical
// payment rests on: a winner keeps winning at any lower cost.
func TestOnlineMonotoneInCost(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	for trial := 0; trial < 150; trial++ {
		in := randomTyped(rng, trial%2 == 0)
		out, err := (&OnlineMechanism{}).Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range out.Winners() {
			lower := in.Bids[i].Cost * rng.Float64()
			if !wins(in, i, lower) {
				t.Fatalf("trial %d: phone %d wins at %g but loses at %g", trial, i, in.Bids[i].Cost, lower)
			}
		}
	}
}

// TestCriticalCostBoundary: bidding just below the payment wins, just
// above loses — the Myerson property, now via binary search.
func TestCriticalCostBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(705))
	for trial := 0; trial < 80; trial++ {
		in := randomTyped(rng, trial%2 == 0)
		out, err := (&OnlineMechanism{}).Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range out.Winners() {
			p := out.Payments[i]
			if p < in.Bids[i].Cost-1e-9 {
				t.Fatalf("trial %d: payment %g below bid %g", trial, p, in.Bids[i].Cost)
			}
			if p > 2*criticalEps && !wins(in, i, p-10*criticalEps) {
				t.Fatalf("trial %d: phone %d loses just below its payment %g", trial, i, p)
			}
			if wins(in, i, p+10*criticalEps) {
				t.Fatalf("trial %d: phone %d still wins just above its payment %g", trial, i, p)
			}
		}
	}
}

// TestTypedOnlineTruthfulness audits cost and window misreports under
// the typed online mechanism.
func TestTypedOnlineTruthfulness(t *testing.T) {
	rng := rand.New(rand.NewSource(706))
	on := &OnlineMechanism{}
	for trial := 0; trial < 30; trial++ {
		in := randomTyped(rng, trial%2 == 0)
		truthOut, err := on.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range in.Bids {
			truth := in.Bids[i]
			uTruth := truthOut.Utility(core.PhoneID(i), truth.Cost)
			for a := truth.Arrival; a <= truth.Departure; a++ {
				for d := a; d <= truth.Departure; d++ {
					for _, f := range []float64{0, 0.5, 0.9, 1.2, 2} {
						alt := in.Clone()
						alt.Bids[i].Arrival = a
						alt.Bids[i].Departure = d
						alt.Bids[i].Cost = truth.Cost * f
						altOut, err := on.Run(alt)
						if err != nil {
							t.Fatal(err)
						}
						if u := altOut.Utility(core.PhoneID(i), truth.Cost); u > uTruth+1e-4 {
							t.Fatalf("trial %d: phone %d gains %g > %g via (%d,%d,%g)",
								trial, i, u, uTruth, a, d, alt.Bids[i].Cost)
						}
					}
				}
			}
		}
	}
}

// TestTypedCapabilityWithholdingNeverHelps: hiding a capability (the
// only feasible capability misreport) cannot raise utility.
func TestTypedCapabilityWithholdingNeverHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for trial := 0; trial < 60; trial++ {
		in := randomTyped(rng, trial%2 == 0)
		for _, mech := range []interface {
			Run(*Instance) (*Outcome, error)
		}{&OnlineMechanism{}, &OfflineMechanism{}} {
			truthOut, err := mech.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range in.Bids {
				truth := in.Bids[i]
				if truth.Caps.Count() < 2 {
					continue
				}
				uTruth := truthOut.Utility(core.PhoneID(i), truth.Cost)
				for k := Kind(0); int(k) < len(in.Values); k++ {
					if !truth.Caps.Has(k) {
						continue
					}
					alt := in.Clone()
					alt.Bids[i].Caps &^= 1 << k
					if alt.Bids[i].Caps == 0 {
						continue
					}
					altOut, err := mech.Run(alt)
					if err != nil {
						t.Fatal(err)
					}
					if u := altOut.Utility(core.PhoneID(i), truth.Cost); u > uTruth+1e-4 {
						t.Fatalf("trial %d: phone %d gains %g > %g by hiding kind %d", trial, i, u, uTruth, k)
					}
				}
			}
		}
	}
}

// TestTypedOfflineIR: truthful utilities non-negative under typed VCG.
func TestTypedOfflineIR(t *testing.T) {
	rng := rand.New(rand.NewSource(708))
	of := &OfflineMechanism{}
	for trial := 0; trial < 80; trial++ {
		in := randomTyped(rng, trial%2 == 0)
		out, err := of.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range in.Bids {
			if u := out.Utility(core.PhoneID(i), in.Bids[i].Cost); u < -1e-9 {
				t.Fatalf("trial %d: phone %d utility %g", trial, i, u)
			}
		}
	}
}

func TestOutcomeValidateRejects(t *testing.T) {
	in := demoInstance()
	out := &Outcome{
		ByTask:   []core.PhoneID{1, core.NoPhone, core.NoPhone},
		Payments: make([]float64, 4),
	}
	if err := out.Validate(in); err != nil {
		t.Fatal(err)
	}
	out.ByTask[1] = 1 // phone 1 twice
	if out.Validate(in) == nil {
		t.Fatal("double assignment accepted")
	}
	out.ByTask[1] = core.NoPhone
	out.ByTask[2] = 1 // phone 1 lacks photo capability and window
	if out.Validate(in) == nil {
		t.Fatal("infeasible assignment accepted")
	}
	out.ByTask = out.ByTask[:2]
	if out.Validate(in) == nil {
		t.Fatal("size mismatch accepted")
	}
}
