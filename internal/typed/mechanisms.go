package typed

import (
	"fmt"

	"dynacrowd/internal/core"
	"dynacrowd/internal/matching"
)

// OfflineMechanism is the VCG auction generalized to typed tasks: exact
// maximum weighted matching over capability-feasible edges, payments by
// externality. The proof obligations are identical to the homogeneous
// case because VCG truthfulness needs only an optimal allocation over
// reported types and one-sided misreport spaces.
type OfflineMechanism struct{}

// Name identifies the mechanism.
func (of *OfflineMechanism) Name() string { return "typed-offline-vcg" }

// Run executes the auction.
func (of *OfflineMechanism) Run(in *Instance) (*Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("typed offline: %w", err)
	}
	sv := matching.NewSolver(len(in.Tasks), len(in.Bids), in.surplus)
	res := sv.Result()
	out := &Outcome{
		ByTask:   make([]core.PhoneID, len(in.Tasks)),
		Payments: make([]float64, len(in.Bids)),
		Welfare:  res.Weight,
	}
	for k := range out.ByTask {
		out.ByTask[k] = core.NoPhone
	}
	for task, phone := range res.MatchLeft {
		if phone == matching.Unmatched {
			continue
		}
		out.ByTask[task] = core.PhoneID(phone)
	}
	for _, i := range out.Winners() {
		// p_i = ω*(B) + b_i − ω*(B₋ᵢ), via the O(s²) post-optimal query.
		out.Payments[i] = res.Weight + in.Bids[i].Cost - sv.WeightWithoutRight(int(i))
	}
	return out, nil
}

// Welfare returns the optimal social welfare (the typed ω*).
func (of *OfflineMechanism) Welfare(in *Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, fmt.Errorf("typed offline: %w", err)
	}
	return matching.MaxWeightMatching(len(in.Tasks), len(in.Bids), in.surplus).Weight, nil
}

// OnlineMechanism generalizes the paper's Algorithm 1/2 to typed tasks:
// tasks are processed in arrival order and each takes the cheapest
// currently active, still-free phone that is capable of its kind and
// profitable for it. Payments are each winner's critical cost, found by
// binary search on the win/lose boundary.
type OnlineMechanism struct{}

// Name identifies the mechanism.
func (on *OnlineMechanism) Name() string { return "typed-online-greedy" }

// Run executes the auction.
func (on *OnlineMechanism) Run(in *Instance) (*Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("typed online: %w", err)
	}
	byTask := allocate(in, core.NoPhone, 0)
	out := &Outcome{
		ByTask:   byTask,
		Payments: make([]float64, len(in.Bids)),
	}
	for k, p := range byTask {
		if p != core.NoPhone {
			out.Welfare += in.surplus(k, int(p))
		}
	}
	for _, i := range out.Winners() {
		out.Payments[i] = criticalCost(in, i)
	}
	return out, nil
}

// allocate runs the greedy allocation. If override targets a phone
// (≠ NoPhone), that phone's claimed cost is replaced by overrideCost —
// the probe used by the critical-cost search.
func allocate(in *Instance, override core.PhoneID, overrideCost float64) []core.PhoneID {
	byTask := make([]core.PhoneID, len(in.Tasks))
	taken := make([]bool, len(in.Bids))
	cost := func(i int) float64 {
		if core.PhoneID(i) == override {
			return overrideCost
		}
		return in.Bids[i].Cost
	}
	for k := range byTask {
		byTask[k] = core.NoPhone
		t := in.Tasks[k]
		best, bestCost := core.NoPhone, 0.0
		for i, b := range in.Bids {
			if taken[i] || !b.Covers(t.Arrival) || !b.Caps.Has(t.Kind) {
				continue
			}
			c := cost(i)
			if c >= in.Values[t.Kind] {
				continue // reserve price per kind
			}
			if best == core.NoPhone || c < bestCost || (c == bestCost && core.PhoneID(i) < best) {
				best, bestCost = core.PhoneID(i), c
			}
		}
		if best != core.NoPhone {
			byTask[k] = best
			taken[best] = true
		}
	}
	return byTask
}

// wins reports whether phone i wins some task when bidding cost c.
func wins(in *Instance, i core.PhoneID, c float64) bool {
	for _, p := range allocate(in, i, c) {
		if p == i {
			return true
		}
	}
	return false
}

// criticalCost binary-searches the win/lose threshold θ of winner i:
// i wins iff its claimed cost is below θ, so θ is the Myerson payment.
//
// Monotonicity argument (why θ exists): compare the greedy runs at costs
// b and b' < b with everything else fixed. Walk the tasks in processing
// order; the first task where the two runs pick different phones must
// pick i in the b' run (only i's cost changed, and only downward), at
// which point i has won. If no task ever differs, i wins in the b' run
// exactly where it won in the b run. Either way a win at b implies a win
// at every b' < b.
//
// The search brackets θ in [0, maxValue] and stops at an absolute width
// of criticalEps, then returns the lower end (pessimistic for the
// platform by at most criticalEps, never below the winner's bid, so
// individual rationality is preserved up to the same ε).
func criticalCost(in *Instance, i core.PhoneID) float64 {
	var hi float64
	for _, v := range in.Values {
		if v > hi {
			hi = v
		}
	}
	lo := in.Bids[i].Cost // i wins at its own bid
	if !wins(in, i, hi) {
		for hi-lo > criticalEps {
			mid := lo + (hi-lo)/2
			if wins(in, i, mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
	} else {
		lo = hi
	}
	return lo
}

// criticalEps is the payment resolution of the binary search. Costs in
// this codebase are O(10); 1e-6 is far below any meaningful money unit.
const criticalEps = 1e-6
