package typed

import (
	"fmt"

	"dynacrowd/internal/core"
)

// StreamBid is a typed bid submitted in the current slot; the claimed
// arrival is implicitly the slot of submission (no-early-arrival by
// construction, as in core.OnlineAuction).
type StreamBid struct {
	Departure core.Slot
	Cost      float64
	Caps      Capabilities
}

// StreamTask is a task announced in the current slot.
type StreamTask struct {
	Kind Kind
}

// SlotResult reports one slot of a typed streaming auction.
type SlotResult struct {
	Slot        core.Slot
	Joined      []core.PhoneID
	Assignments []core.Assignment
	Unserved    int
	Payments    []core.PaymentNotice
}

// OnlineAuction drives the typed online mechanism slot by slot,
// mirroring core.OnlineAuction for heterogeneous tasks: greedy
// capability-aware allocation as tasks are announced, binary-search
// critical payments finalized at each winner's reported departure. A
// completed run yields the same outcome as OnlineMechanism.Run on the
// equivalent batch instance.
type OnlineAuction struct {
	slots  core.Slot
	values []float64

	now   core.Slot
	bids  []Bid
	tasks []Task

	byTask []core.PhoneID
	wonAt  []core.Slot
	taken  []bool
}

// NewOnlineAuction starts a typed streaming round of m slots with the
// given per-kind values.
func NewOnlineAuction(m core.Slot, values []float64) (*OnlineAuction, error) {
	if m < 1 {
		return nil, fmt.Errorf("typed auction: round length %d < 1", m)
	}
	if len(values) == 0 || len(values) > MaxKinds {
		return nil, fmt.Errorf("typed auction: %d kinds outside [1,%d]", len(values), MaxKinds)
	}
	for k, v := range values {
		if v < 0 {
			return nil, fmt.Errorf("typed auction: negative value %g for kind %d", v, k)
		}
	}
	return &OnlineAuction{slots: m, values: append([]float64(nil), values...)}, nil
}

// Now returns the last processed slot.
func (oa *OnlineAuction) Now() core.Slot { return oa.now }

// Done reports whether the round is complete.
func (oa *OnlineAuction) Done() bool { return oa.now >= oa.slots }

// Step advances one slot: arriving bids join, announced tasks are
// allocated greedily (cheapest capable active free phone per task, in
// announcement order), and payments are finalized for departing winners.
func (oa *OnlineAuction) Step(arriving []StreamBid, announced []StreamTask) (*SlotResult, error) {
	if oa.Done() {
		return nil, fmt.Errorf("typed auction: round already complete (%d slots)", oa.slots)
	}
	t := oa.now + 1
	for _, sb := range arriving {
		if sb.Departure < t || sb.Departure > oa.slots {
			return nil, fmt.Errorf("typed auction: departure %d outside [%d,%d]", sb.Departure, t, oa.slots)
		}
		if sb.Cost < 0 {
			return nil, fmt.Errorf("typed auction: negative cost %g", sb.Cost)
		}
		if sb.Caps == 0 {
			return nil, fmt.Errorf("typed auction: bid has no capabilities")
		}
	}
	for _, st := range announced {
		if int(st.Kind) >= len(oa.values) {
			return nil, fmt.Errorf("typed auction: task kind %d has no value", st.Kind)
		}
	}
	oa.now = t
	res := &SlotResult{Slot: t}

	for _, sb := range arriving {
		id := core.PhoneID(len(oa.bids))
		oa.bids = append(oa.bids, Bid{
			Phone: id, Arrival: t, Departure: sb.Departure, Cost: sb.Cost, Caps: sb.Caps,
		})
		oa.wonAt = append(oa.wonAt, 0)
		oa.taken = append(oa.taken, false)
		res.Joined = append(res.Joined, id)
	}

	for _, st := range announced {
		id := core.TaskID(len(oa.tasks))
		oa.tasks = append(oa.tasks, Task{ID: id, Arrival: t, Kind: st.Kind})
		oa.byTask = append(oa.byTask, core.NoPhone)

		winner := core.NoPhone
		bestCost := 0.0
		for i, b := range oa.bids {
			if oa.taken[i] || !b.Covers(t) || !b.Caps.Has(st.Kind) || b.Cost >= oa.values[st.Kind] {
				continue
			}
			if winner == core.NoPhone || b.Cost < bestCost {
				winner, bestCost = core.PhoneID(i), b.Cost
			}
		}
		if winner == core.NoPhone {
			res.Unserved++
			continue
		}
		oa.byTask[id] = winner
		oa.wonAt[winner] = t
		oa.taken[winner] = true
		res.Assignments = append(res.Assignments, core.Assignment{Task: id, Phone: winner, Slot: t})
	}

	// Finalize payments for winners departing this slot. criticalCost
	// replays the greedy allocation over the accumulated instance; tasks
	// and bids arriving after a winner's departure cannot affect slots
	// up to it, so paying now equals paying at the end of the round.
	snapshot := oa.instance()
	for i := range oa.bids {
		if oa.bids[i].Departure != t || oa.wonAt[i] == 0 {
			continue
		}
		res.Payments = append(res.Payments, core.PaymentNotice{
			Phone:  core.PhoneID(i),
			Amount: criticalCost(snapshot, core.PhoneID(i)),
		})
	}
	return res, nil
}

func (oa *OnlineAuction) instance() *Instance {
	return &Instance{Slots: oa.slots, Values: oa.values, Bids: oa.bids, Tasks: oa.tasks}
}

// Instance returns a copy of the accumulated round.
func (oa *OnlineAuction) Instance() *Instance { return oa.instance().Clone() }

// Outcome assembles the round outcome so far.
func (oa *OnlineAuction) Outcome() *Outcome {
	in := oa.instance()
	out := &Outcome{
		ByTask:   append([]core.PhoneID(nil), oa.byTask...),
		Payments: make([]float64, len(oa.bids)),
	}
	for k, p := range oa.byTask {
		if p != core.NoPhone {
			out.Welfare += in.surplus(k, int(p))
		}
	}
	for _, i := range out.Winners() {
		out.Payments[i] = criticalCost(in, i)
	}
	return out
}
