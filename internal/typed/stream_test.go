package typed

import (
	"math"
	"math/rand"
	"testing"

	"dynacrowd/internal/core"
)

// replayTyped drives a typed streaming auction through a batch instance
// whose bids are grouped by arrival; returns the stream->original
// PhoneID permutation.
func replayTyped(t *testing.T, in *Instance) (*OnlineAuction, []core.PhoneID) {
	t.Helper()
	oa, err := NewOnlineAuction(in.Slots, in.Values)
	if err != nil {
		t.Fatal(err)
	}
	byArrival := make([][]int, in.Slots+1)
	for i, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], i)
	}
	tasksByArrival := make([][]StreamTask, in.Slots+1)
	for _, task := range in.Tasks {
		tasksByArrival[task.Arrival] = append(tasksByArrival[task.Arrival], StreamTask{Kind: task.Kind})
	}
	var perm []core.PhoneID
	for s := core.Slot(1); s <= in.Slots; s++ {
		var arriving []StreamBid
		for _, i := range byArrival[s] {
			arriving = append(arriving, StreamBid{
				Departure: in.Bids[i].Departure, Cost: in.Bids[i].Cost, Caps: in.Bids[i].Caps,
			})
			perm = append(perm, core.PhoneID(i))
		}
		if _, err := oa.Step(arriving, tasksByArrival[s]); err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
	}
	return oa, perm
}

// TestTypedStreamMatchesBatch: full equivalence against the batch typed
// mechanism on random instances (distinct costs make the permutation
// irrelevant to tiebreaks).
func TestTypedStreamMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	for trial := 0; trial < 60; trial++ {
		in := randomTyped(rng, trial%2 == 0)
		batch, err := (&OnlineMechanism{}).Run(in)
		if err != nil {
			t.Fatal(err)
		}
		oa, perm := replayTyped(t, in)
		stream := oa.Outcome()

		if math.Abs(stream.Welfare-batch.Welfare) > 1e-9 {
			t.Fatalf("trial %d: stream welfare %g != batch %g", trial, stream.Welfare, batch.Welfare)
		}
		for sid, orig := range perm {
			if math.Abs(stream.Payments[sid]-batch.Payments[orig]) > 1e-6 {
				t.Fatalf("trial %d: payment stream[%d]=%g != batch[%d]=%g",
					trial, sid, stream.Payments[sid], orig, batch.Payments[orig])
			}
		}
		for k := range batch.ByTask {
			want := batch.ByTask[k]
			got := stream.ByTask[k]
			if (want == core.NoPhone) != (got == core.NoPhone) {
				t.Fatalf("trial %d: task %d served-ness differs", trial, k)
			}
			if want != core.NoPhone && perm[got] != want {
				t.Fatalf("trial %d: task %d -> stream %d (orig %d), batch %d",
					trial, k, got, perm[got], want)
			}
		}
	}
}

// TestTypedStreamPaymentTiming: payments land exactly at departures.
func TestTypedStreamPaymentTiming(t *testing.T) {
	oa, err := NewOnlineAuction(3, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := oa.Step([]StreamBid{{Departure: 2, Cost: 4, Caps: Caps(0)}}, []StreamTask{{Kind: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 1 || len(res.Payments) != 0 {
		t.Fatalf("slot 1: %+v", res)
	}
	res, err = oa.Step(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The binary-search critical value converges to the reserve from
	// below, within criticalEps-scale resolution.
	if len(res.Payments) != 1 || math.Abs(res.Payments[0].Amount-10) > 1e-5 {
		t.Fatalf("slot 2 payments: %+v (want uncontested reserve ≈10)", res.Payments)
	}
}

func TestTypedStreamValidation(t *testing.T) {
	if _, err := NewOnlineAuction(0, []float64{10}); err == nil {
		t.Fatal("want slots error")
	}
	if _, err := NewOnlineAuction(3, nil); err == nil {
		t.Fatal("want kinds error")
	}
	if _, err := NewOnlineAuction(3, []float64{-1}); err == nil {
		t.Fatal("want value error")
	}

	oa, _ := NewOnlineAuction(2, []float64{10})
	if _, err := oa.Step([]StreamBid{{Departure: 9, Cost: 1, Caps: Caps(0)}}, nil); err == nil {
		t.Fatal("want departure error")
	}
	if _, err := oa.Step([]StreamBid{{Departure: 2, Cost: -1, Caps: Caps(0)}}, nil); err == nil {
		t.Fatal("want cost error")
	}
	if _, err := oa.Step([]StreamBid{{Departure: 2, Cost: 1}}, nil); err == nil {
		t.Fatal("want capability error")
	}
	if _, err := oa.Step(nil, []StreamTask{{Kind: 9}}); err == nil {
		t.Fatal("want kind error")
	}
	if oa.Now() != 0 {
		t.Fatal("failed steps consumed the clock")
	}
	for !oa.Done() {
		if _, err := oa.Step(nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := oa.Step(nil, nil); err == nil {
		t.Fatal("want round-complete error")
	}
}

// TestTypedStreamCapabilityFiltering: a task only goes to capable phones
// even when cheaper incapable ones are active.
func TestTypedStreamCapabilityFiltering(t *testing.T) {
	oa, _ := NewOnlineAuction(1, []float64{10, 20})
	res, err := oa.Step([]StreamBid{
		{Departure: 1, Cost: 1, Caps: Caps(0)}, // cheap, wrong kind
		{Departure: 1, Cost: 5, Caps: Caps(1)},
	}, []StreamTask{{Kind: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 1 || res.Assignments[0].Phone != 1 {
		t.Fatalf("assignments: %+v (want phone 1)", res.Assignments)
	}
}
