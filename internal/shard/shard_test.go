package shard

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// streamPlan splits a batch instance into per-slot deliveries. Workload
// instances are arrival-ordered, so stream IDs equal instance IDs.
func streamPlan(in *core.Instance) ([][]core.StreamBid, []int) {
	byArrival := make([][]core.StreamBid, in.Slots+1)
	for _, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], core.StreamBid{Departure: b.Departure, Cost: b.Cost})
	}
	return byArrival, in.TasksPerSlot()
}

func genInstance(t testing.TB, seed uint64) *core.Instance {
	t.Helper()
	scn := workload.DefaultScenario()
	scn.Slots = 30
	in, err := scn.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func sameNotices(a, b []core.PaymentNotice) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Phone != b[i].Phone || math.Float64bits(a[i].Amount) != math.Float64bits(b[i].Amount) {
			return false
		}
	}
	return true
}

func sameOutcome(t *testing.T, label string, want, got *core.Outcome) {
	t.Helper()
	if len(want.Allocation.ByTask) != len(got.Allocation.ByTask) {
		t.Fatalf("%s: task count %d != %d", label, len(got.Allocation.ByTask), len(want.Allocation.ByTask))
	}
	for k := range want.Allocation.ByTask {
		if want.Allocation.ByTask[k] != got.Allocation.ByTask[k] {
			t.Fatalf("%s: task %d winner %d != %d", label, k, got.Allocation.ByTask[k], want.Allocation.ByTask[k])
		}
	}
	for i := range want.Allocation.WonAt {
		if want.Allocation.WonAt[i] != got.Allocation.WonAt[i] {
			t.Fatalf("%s: phone %d winning slot %d != %d", label, i, got.Allocation.WonAt[i], want.Allocation.WonAt[i])
		}
	}
	if len(want.Payments) != len(got.Payments) {
		t.Fatalf("%s: payment vector %d != %d", label, len(got.Payments), len(want.Payments))
	}
	for i := range want.Payments {
		if math.Float64bits(want.Payments[i]) != math.Float64bits(got.Payments[i]) {
			t.Fatalf("%s: phone %d payment %v != %v (bitwise)", label, i, got.Payments[i], want.Payments[i])
		}
	}
	if math.Float64bits(want.Welfare) != math.Float64bits(got.Welfare) {
		t.Fatalf("%s: welfare %v != %v (bitwise)", label, got.Welfare, want.Welfare)
	}
}

// TestShardedStepParity drives the sharded and sequential engines
// through identical streams and requires every per-slot result —
// assignments, unserved counts, departure payments (bitwise floats) —
// to match, for several shard counts.
func TestShardedStepParity(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 8} {
		for seed := uint64(1); seed <= 5; seed++ {
			in := genInstance(t, seed)
			byArrival, perSlot := streamPlan(in)

			seq, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
			if err != nil {
				t.Fatal(err)
			}
			sh, err := New(shards, in.Slots, in.Value, in.AllocateAtLoss)
			if err != nil {
				t.Fatal(err)
			}
			seq.TrackDepartures(true)
			sh.TrackDepartures(true)

			label := fmt.Sprintf("s=%d seed=%d", shards, seed)
			for s := core.Slot(1); s <= in.Slots; s++ {
				want, err := seq.Step(byArrival[s], perSlot[s-1])
				if err != nil {
					t.Fatal(err)
				}
				got, err := sh.Step(byArrival[s], perSlot[s-1])
				if err != nil {
					t.Fatal(err)
				}
				if len(want.Joined) != len(got.Joined) || want.Unserved != got.Unserved {
					t.Fatalf("%s slot %d: joined/unserved mismatch: %+v vs %+v", label, s, got, want)
				}
				if len(want.Assignments) != len(got.Assignments) {
					t.Fatalf("%s slot %d: %d assignments != %d", label, s, len(got.Assignments), len(want.Assignments))
				}
				for k := range want.Assignments {
					if want.Assignments[k] != got.Assignments[k] {
						t.Fatalf("%s slot %d: assignment %d: %+v != %+v", label, s, k, got.Assignments[k], want.Assignments[k])
					}
				}
				if !sameNotices(want.Payments, got.Payments) {
					t.Fatalf("%s slot %d: payments %+v != %+v", label, s, got.Payments, want.Payments)
				}
				if len(want.Departed) != len(got.Departed) {
					t.Fatalf("%s slot %d: departed %v != %v", label, s, got.Departed, want.Departed)
				}
				for k := range want.Departed {
					if want.Departed[k] != got.Departed[k] {
						t.Fatalf("%s slot %d: departed %v != %v", label, s, got.Departed, want.Departed)
					}
				}
			}
			sameOutcome(t, label, seq.Outcome(), sh.Outcome())
		}
	}
}

// TestShardedDifferentialSweep is the exactness contract: across ≥200
// seeded rounds (52 seeds × shard counts 1, 2, 4, 8) the sharded
// mechanism's allocation, payment vector, and welfare are bit-identical
// to OnlineMechanism's on the same workload instances.
func TestShardedDifferentialSweep(t *testing.T) {
	const seeds = 52
	baseline := &core.OnlineMechanism{}
	rounds := 0
	for _, shards := range []int{1, 2, 4, 8} {
		mech := &Mechanism{Shards: shards}
		for seed := uint64(1); seed <= seeds; seed++ {
			in := genInstance(t, seed)
			want, err := baseline.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mech.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			sameOutcome(t, fmt.Sprintf("s=%d seed=%d", shards, seed), want, got)
			rounds++
		}
	}
	if rounds < 200 {
		t.Fatalf("differential sweep covered %d rounds, want >= 200", rounds)
	}
}

// TestShardedHeavyTrafficParity repeats the differential check on the
// heavy-traffic scenario (Zipf windows, bursty tasks) whose skewed
// shard occupancy stresses the merge's on-demand top-up path.
func TestShardedHeavyTrafficParity(t *testing.T) {
	scn := workload.HeavyTrafficQuick()
	baseline := &core.OnlineMechanism{}
	for _, shards := range []int{2, 4, 8} {
		mech := &Mechanism{Shards: shards}
		for seed := uint64(1); seed <= 8; seed++ {
			in, err := scn.Generate(seed)
			if err != nil {
				t.Fatal(err)
			}
			want, err := baseline.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mech.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			sameOutcome(t, fmt.Sprintf("heavy s=%d seed=%d", shards, seed), want, got)
		}
	}
}

// TestShardedSnapshotRestore checkpoints mid-round, restores with the
// same and with different shard counts (and across engines), finishes
// each restored auction on the identical remaining stream, and requires
// the final outcome to match the uninterrupted run bitwise.
func TestShardedSnapshotRestore(t *testing.T) {
	in := genInstance(t, 7)
	byArrival, perSlot := streamPlan(in)
	cut := in.Slots / 2

	run := func(t *testing.T, a core.Auction, from core.Slot) *core.Outcome {
		t.Helper()
		for s := from; s <= in.Slots; s++ {
			if _, err := a.Step(byArrival[s], perSlot[s-1]); err != nil {
				t.Fatal(err)
			}
		}
		return a.Outcome()
	}

	full, err := New(4, in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, full, 1)

	half, err := New(4, in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	for s := core.Slot(1); s <= cut; s++ {
		if _, err := half.Step(byArrival[s], perSlot[s-1]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := half.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{0, 1, 2, 8} {
		restored, err := Restore(snap, shards)
		if err != nil {
			t.Fatalf("restore with %d shards: %v", shards, err)
		}
		if restored.Now() != cut {
			t.Fatalf("restored clock %d, want %d", restored.Now(), cut)
		}
		sameOutcome(t, fmt.Sprintf("restore s=%d", shards), want, run(t, restored, cut+1))
	}

	// Cross-engine: the sequential engine restores a sharded snapshot...
	seq, err := core.RestoreOnlineAuction(snap)
	if err != nil {
		t.Fatalf("sequential restore of sharded snapshot: %v", err)
	}
	sameOutcome(t, "cross-restore sequential", want, run(t, seq, cut+1))

	// ...and the sharded engine restores a sequential snapshot.
	seqHalf, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	for s := core.Slot(1); s <= cut; s++ {
		if _, err := seqHalf.Step(byArrival[s], perSlot[s-1]); err != nil {
			t.Fatal(err)
		}
	}
	seqSnap, err := seqHalf.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	crossed, err := Restore(seqSnap, 4)
	if err != nil {
		t.Fatalf("sharded restore of sequential snapshot: %v", err)
	}
	sameOutcome(t, "cross-restore sharded", want, run(t, crossed, cut+1))
}

// TestShardedRejectsInvertedWindow is the regression test for the typed
// inverted-window rejection at every admission surface.
func TestShardedRejectsInvertedWindow(t *testing.T) {
	bad := core.Bid{Phone: 0, Arrival: 5, Departure: 2, Cost: 1}
	if err := bad.Validate(10); !errors.Is(err, core.ErrWindowInverted) {
		t.Fatalf("Validate: got %v, want ErrWindowInverted", err)
	}

	a, err := New(4, 10, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ { // advance to slot 5 so departure 2 inverts
		if _, err := a.Step(nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	_, err = a.Step([]core.StreamBid{{Departure: 2, Cost: 1}}, 0)
	if !errors.Is(err, core.ErrWindowInverted) {
		t.Fatalf("sharded Step: got %v, want ErrWindowInverted", err)
	}
	// The rejected batch must leave the auction untouched.
	if n := a.Instance().NumPhones(); n != 0 {
		t.Fatalf("rejected bid was admitted: %d phones", n)
	}

	oa, err := core.NewOnlineAuction(10, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if _, err := oa.Step(nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := oa.Step([]core.StreamBid{{Departure: 2, Cost: 1}}, 0); !errors.Is(err, core.ErrWindowInverted) {
		t.Fatalf("sequential Step: got %v, want ErrWindowInverted", err)
	}
}

// TestShardedConcurrentTraffic hammers a live coordinator with
// concurrent Submit traffic while it steps (run under -race via make
// race-hot). Outcomes are order-dependent on staged ties, so the test
// asserts engine invariants rather than a fixed allocation: every
// submitted bid is admitted exactly once, winners' payments are at
// least their claimed costs (individual rationality), and the final
// state is a valid instance.
func TestShardedConcurrentTraffic(t *testing.T) {
	const producers = 8
	const bidsEach = 40
	a, err := New(4, 20, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(p) + 1)
			for i := 0; i < bidsEach; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a.Submit(core.StreamBid{
					Departure: 20,
					Cost:      rng.Uniform(1, 40),
				})
			}
		}(p)
	}
	steps := 0
	for !a.Done() {
		if _, err := a.Step(nil, 2); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	close(stop)
	wg.Wait()
	if steps != 20 {
		t.Fatalf("stepped %d slots, want 20", steps)
	}

	in := a.Instance()
	if err := in.Validate(); err != nil {
		t.Fatalf("final instance invalid: %v", err)
	}
	out := a.Outcome()
	for i, pay := range out.Payments {
		if out.Allocation.WonAt[i] == 0 {
			if pay != 0 {
				t.Fatalf("loser %d paid %g", i, pay)
			}
			continue
		}
		if pay < in.Bids[i].Cost {
			t.Fatalf("winner %d paid %g below claimed cost %g", i, pay, in.Bids[i].Cost)
		}
	}
}

// TestShardedAuctionErrors covers the construction and step guards.
func TestShardedAuctionErrors(t *testing.T) {
	if _, err := New(0, 10, 30, false); err == nil {
		t.Fatal("want error for zero shards")
	}
	if _, err := New(2, 0, 30, false); err == nil {
		t.Fatal("want error for zero slots")
	}
	if _, err := New(2, 10, -1, false); err == nil {
		t.Fatal("want error for negative value")
	}
	a, err := New(2, 1, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Step(nil, -1); err == nil {
		t.Fatal("want error for negative task count")
	}
	if _, err := a.Step(nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Step(nil, 0); err == nil {
		t.Fatal("want error after round completes")
	}
}

// FuzzShardMerge feeds arbitrary bid/task streams to the sharded and
// sequential engines in lockstep and requires identical results — the
// fuzzing counterpart of the seeded differential sweep.
func FuzzShardMerge(f *testing.F) {
	f.Add(uint64(1), uint8(2), []byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Add(uint64(42), uint8(7), []byte{0, 0, 0, 255, 16, 32})
	f.Add(uint64(7), uint8(1), []byte{250, 250, 250, 250})
	f.Fuzz(func(t *testing.T, seed uint64, shardsByte uint8, script []byte) {
		shards := int(shardsByte)%8 + 1
		const m = core.Slot(12)
		seq, err := core.NewOnlineAuction(m, 30, false)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := New(shards, m, 30, false)
		if err != nil {
			t.Fatal(err)
		}
		rng := workload.NewRNG(seed)
		pos := 0
		next := func() int {
			if pos >= len(script) {
				return 0
			}
			b := int(script[pos])
			pos++
			return b
		}
		for s := core.Slot(1); s <= m; s++ {
			nBids := next() % 5
			arriving := make([]core.StreamBid, 0, nBids)
			for i := 0; i < nBids; i++ {
				dep := s + core.Slot(next()%4)
				if dep > m {
					dep = m
				}
				// A third of the costs collide exactly to exercise the
				// (cost, phone ID) tie-break across shard boundaries.
				var cost float64
				switch next() % 3 {
				case 0:
					cost = float64(next() % 8)
				default:
					cost = rng.Uniform(0, 40)
				}
				arriving = append(arriving, core.StreamBid{Departure: dep, Cost: cost})
			}
			nTasks := next() % 4
			want, err := seq.Step(arriving, nTasks)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.Step(arriving, nTasks)
			if err != nil {
				t.Fatal(err)
			}
			if want.Unserved != got.Unserved || len(want.Assignments) != len(got.Assignments) {
				t.Fatalf("slot %d: %+v != %+v", s, got, want)
			}
			for k := range want.Assignments {
				if want.Assignments[k] != got.Assignments[k] {
					t.Fatalf("slot %d assignment %d: %+v != %+v", s, k, got.Assignments[k], want.Assignments[k])
				}
			}
			if !sameNotices(want.Payments, got.Payments) {
				t.Fatalf("slot %d payments: %+v != %+v", s, got.Payments, want.Payments)
			}
		}
		wantOut, gotOut := seq.Outcome(), sh.Outcome()
		for i := range wantOut.Payments {
			if math.Float64bits(wantOut.Payments[i]) != math.Float64bits(gotOut.Payments[i]) {
				t.Fatalf("phone %d payment %v != %v", i, gotOut.Payments[i], wantOut.Payments[i])
			}
		}
	})
}
