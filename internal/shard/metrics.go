package shard

import (
	"strconv"

	"dynacrowd/internal/obs"
)

// Metrics is the sharded engine's observability bundle: per-shard pool
// depth and admission series plus coordinator merge instruments. All
// instruments are nil-safe, so a nil *Metrics (or a nil registry)
// disables instrumentation at zero cost.
type Metrics struct {
	// PoolDepth[s] is shard s's live pool size after each step
	// (dynacrowd_shard_pool_depth{shard="s"}).
	PoolDepth []*obs.Gauge
	// Admissions[s] counts bids routed to shard s
	// (dynacrowd_shard_admissions_total{shard="s"}).
	Admissions []*obs.Counter
	// MergeSeconds is the per-slot k-way merge latency, pre-pull
	// included (dynacrowd_shard_merge_seconds).
	MergeSeconds *obs.Histogram
	// MergePulled counts candidates surfaced to the coordinator
	// (dynacrowd_shard_merge_pulled_total); compare against the
	// allocation count to see the merge's over-pull overhead.
	MergePulled *obs.Counter
}

// NewMetrics registers the sharded engine's instruments for the given
// shard count. Registration is idempotent per (name, shard) pair, so
// consecutive rounds on one registry share series. A nil registry
// returns a usable all-no-op bundle.
func NewMetrics(r *obs.Registry, shards int) *Metrics {
	m := &Metrics{
		PoolDepth:  make([]*obs.Gauge, shards),
		Admissions: make([]*obs.Counter, shards),
		MergeSeconds: r.Histogram("dynacrowd_shard_merge_seconds",
			"Per-slot sharded top-k merge latency in seconds.", obs.LatencyBuckets),
		MergePulled: r.Counter("dynacrowd_shard_merge_pulled_total",
			"Candidates pulled from shard pools by the coordinator."),
	}
	for s := 0; s < shards; s++ {
		label := strconv.Itoa(s)
		m.PoolDepth[s] = r.Gauge("dynacrowd_shard_pool_depth",
			"Active-bid pool size per shard (including lazily deleted entries).", "shard", label)
		m.Admissions[s] = r.Counter("dynacrowd_shard_admissions_total",
			"Bids routed to each shard.", "shard", label)
	}
	return m
}
