package shard

import (
	"encoding/json"
	"fmt"

	"dynacrowd/internal/core"
)

// snapshot mirrors core's auction snapshot (format version 1) with an
// extra shard-count hint. Keeping the shape identical makes snapshots
// engine-portable: core.RestoreOnlineAuction restores a sharded
// snapshot (ignoring the hint) and Restore accepts a sequential one —
// the allocation is shard-count-independent, so either engine can
// continue the other's round.
type snapshot struct {
	Version        int            `json:"version"`
	Slots          core.Slot      `json:"slots"`
	Value          float64        `json:"value"`
	AllocateAtLoss bool           `json:"allocateAtLoss,omitempty"`
	Now            core.Slot      `json:"now"`
	Bids           []core.Bid     `json:"bids"`
	TaskArrivals   []core.Slot    `json:"taskArrivals"`
	ByTask         []core.PhoneID `json:"byTask"`
	WonAt          []core.Slot    `json:"wonAt"`
	Shards         int            `json:"shards,omitempty"`
	// Completions mirrors the sequential snapshot's lifecycle field (same
	// JSON key, so engine portability extends to lifecycle rounds). The
	// default log replays interleaved with the recorded slots; statuses
	// and issued payments restore verbatim afterwards.
	Completions *core.CompletionSnapshot `json:"completions,omitempty"`
}

const snapshotVersion = 1

// Snapshot serializes the auction's decision-relevant state. The pools
// and pricing side state are not stored; Restore rebuilds them by
// deterministic replay.
func (a *Auction) Snapshot() ([]byte, error) {
	snap := snapshot{
		Version:        snapshotVersion,
		Slots:          a.ledger.Slots(),
		Value:          a.ledger.Value(),
		AllocateAtLoss: a.ledger.AllocateAtLoss(),
		Now:            a.now,
		Bids:           a.ledger.Bids(),
		TaskArrivals:   a.ledger.TaskArrivals(),
		ByTask:         a.ledger.ByTask(),
		WonAt:          a.ledger.WonAtSlots(),
		Shards:         len(a.pools),
		Completions:    a.ledger.MarshalCompletions(),
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("sharded snapshot: %w", err)
	}
	return data, nil
}

// Restore reconstructs a sharded auction from a Snapshot (or from a
// sequential core snapshot — the formats are interchangeable). shards
// overrides the partitioning; 0 keeps the snapshot's own count
// (defaulting to 1 for sequential snapshots). The pools, the merge
// state, and the cascade pricing state are rebuilt by replaying each
// recorded slot through the real coordinator, and the replayed
// assignment is cross-checked against the stored one.
func Restore(data []byte, shards int) (*Auction, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("restore sharded auction: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("restore sharded auction: unsupported version %d (want %d)", snap.Version, snapshotVersion)
	}
	if shards <= 0 {
		shards = snap.Shards
		if shards <= 0 {
			shards = 1
		}
	}
	a, err := New(shards, snap.Slots, snap.Value, snap.AllocateAtLoss)
	if err != nil {
		return nil, fmt.Errorf("restore sharded auction: %w", err)
	}
	if snap.Now < 0 || snap.Now > snap.Slots {
		return nil, fmt.Errorf("restore sharded auction: clock %d outside round [0,%d]", snap.Now, snap.Slots)
	}
	if len(snap.WonAt) != len(snap.Bids) || len(snap.ByTask) != len(snap.TaskArrivals) {
		return nil, fmt.Errorf("restore sharded auction: inconsistent state sizes")
	}

	// Group the recorded stream back into per-slot deliveries. Bids were
	// appended in arrival order, so ID order within a slot is preserved
	// and the replay reassigns every phone its original ID.
	byArrival := make([][]core.StreamBid, snap.Slots+1)
	var prevArrival core.Slot
	for i, b := range snap.Bids {
		if b.Phone != core.PhoneID(i) {
			return nil, fmt.Errorf("restore sharded auction: bid %d has phone id %d", i, b.Phone)
		}
		if b.Arrival < prevArrival {
			return nil, fmt.Errorf("restore sharded auction: bid %d out of arrival order", i)
		}
		if b.Arrival > snap.Now {
			return nil, fmt.Errorf("restore sharded auction: bid %d arrives at %d, after clock %d", i, b.Arrival, snap.Now)
		}
		prevArrival = b.Arrival
		byArrival[b.Arrival] = append(byArrival[b.Arrival], core.StreamBid{Departure: b.Departure, Cost: b.Cost})
	}
	tasksAt := make([]int, snap.Slots+1)
	var prevTask core.Slot
	for k, arr := range snap.TaskArrivals {
		if arr < 1 || arr > snap.Now {
			return nil, fmt.Errorf("restore sharded auction: task %d arrival %d outside [1,%d]", k, arr, snap.Now)
		}
		if arr < prevTask {
			return nil, fmt.Errorf("restore sharded auction: task %d out of arrival order", k)
		}
		prevTask = arr
		tasksAt[arr]++
	}

	var defaults []core.CompletionEvent
	if snap.Completions != nil {
		a.TrackCompletions(true)
		defaults = snap.Completions.Log
	}
	a.replay = true
	li := 0
	for t := core.Slot(1); t <= snap.Now; t++ {
		if _, err := a.Step(byArrival[t], tasksAt[t]); err != nil {
			a.replay = false
			return nil, fmt.Errorf("restore sharded auction: replay slot %d: %w", t, err)
		}
		// Defaults mutate the winner set at a specific clock value; apply
		// each at the clock it originally happened so the re-allocation
		// scans see the state they saw live.
		for ; li < len(defaults) && defaults[li].Slot == t; li++ {
			if _, err := a.Default(defaults[li].Phone); err != nil {
				a.replay = false
				return nil, fmt.Errorf("restore sharded auction: replay default %d (phone %d at clock %d): %w",
					li, defaults[li].Phone, t, err)
			}
		}
	}
	a.replay = false
	if li != len(defaults) {
		return nil, fmt.Errorf("restore sharded auction: default log not in clock order (replayed %d of %d)", li, len(defaults))
	}

	// The replayed assignment must agree with the stored one; a mismatch
	// means the snapshot was tampered with or produced by different code.
	for k, p := range snap.ByTask {
		if got := a.ledger.TaskWinner(core.TaskID(k)); got != p {
			return nil, fmt.Errorf("restore sharded auction: task %d assignment %d disagrees with replay %d", k, p, got)
		}
	}
	for i, w := range snap.WonAt {
		if got := a.ledger.WonAt(core.PhoneID(i)); got != w {
			return nil, fmt.Errorf("restore sharded auction: phone %d winning slot %d disagrees with replay %d", i, w, got)
		}
	}
	if snap.Completions != nil {
		// Statuses, issued payments, and counters restore verbatim; the
		// replay above only rebuilt the allocation-side mutations.
		if err := a.ledger.RestoreCompletions(snap.Completions); err != nil {
			return nil, fmt.Errorf("restore sharded auction: %w", err)
		}
	}
	return a, nil
}
