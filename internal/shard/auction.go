package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/obs"
)

// Auction is the sharded counterpart of core.OnlineAuction: the same
// slot-by-slot interface (it implements core.Auction) over S
// partitioned bid pools. Admission, candidate pulls, and departure
// pricing fan out across the shards; per slot a coordinator k-way-
// merges the shards' cheapest candidates into the globally cheapest
// r_t winners with the sequential engine's exact (cost, phone ID)
// order, so allocations and payments are bit-identical to
// core.OnlineAuction for identical input.
//
// Like the sequential auction, Step is coordinator-single-threaded:
// one goroutine calls Step. Concurrent producers hand bids to a live
// coordinator through Submit, which stages them for the next Step.
type Auction struct {
	ledger *core.Ledger
	pools  []*pool

	engine  core.PaymentEngine
	pricers []*core.Pricer // one per shard: departures price in parallel
	out     *core.Pricer   // Outcome's whole-round pricer

	now             core.Slot
	metrics         *core.Metrics
	inst            *Metrics    // per-shard observability (nil disables)
	tracer          *obs.Tracer // merge trace events (nil disables)
	trackDepartures bool
	replay          bool // restoring: re-derive state, skip settlement

	// merge scratch, reused across slots.
	pulled  [][]core.PhoneID // per shard: candidates popped this slot, ascending
	taken   []int            // per shard: candidates consumed as winners
	heads   []int            // merge heap of shard indices, keyed by head candidate
	dep     []core.PhoneID   // departures gathered this slot
	notices [][]core.PaymentNotice

	mu     sync.Mutex // guards staged
	staged []core.StreamBid
}

// New creates a sharded auction of m slots with per-task value ν,
// partitioned across the given number of shards (≥ 1).
func New(shards int, m core.Slot, value float64, allocateAtLoss bool) (*Auction, error) {
	if shards < 1 {
		return nil, fmt.Errorf("sharded auction: shard count %d < 1", shards)
	}
	l, err := core.NewLedger(m, value, allocateAtLoss)
	if err != nil {
		return nil, fmt.Errorf("sharded auction: %w", err)
	}
	a := &Auction{
		ledger:  l,
		pools:   make([]*pool, shards),
		engine:  core.CascadePayments,
		pricers: make([]*core.Pricer, shards),
		pulled:  make([][]core.PhoneID, shards),
		taken:   make([]int, shards),
		notices: make([][]core.PaymentNotice, shards),
	}
	for s := range a.pools {
		a.pools[s] = newPool(l)
	}
	a.rebuildPricers()
	return a, nil
}

// Shards returns the shard count.
func (a *Auction) Shards() int { return len(a.pools) }

func (a *Auction) rebuildPricers() {
	for s := range a.pricers {
		a.pricers[s] = a.ledger.NewPricer(a.engine, a.metrics)
	}
	a.out = a.ledger.NewPricer(a.engine, a.metrics)
}

// SetPaymentEngine selects how winners are priced (nil: cascade). The
// engine may be switched between steps.
func (a *Auction) SetPaymentEngine(e core.PaymentEngine) {
	if e == nil {
		e = core.CascadePayments
	}
	a.engine = e
	a.rebuildPricers()
}

// SetMetrics instruments the hot path with the core latency histograms
// and engine counters, like core.OnlineAuction. Nil disables.
func (a *Auction) SetMetrics(m *core.Metrics) {
	a.metrics = m
	a.rebuildPricers()
}

// SetInstruments attaches the per-shard observability bundle (pool
// depth gauges, admission counters, merge latency). Nil disables.
func (a *Auction) SetInstruments(m *Metrics) {
	if m != nil && len(m.PoolDepth) != len(a.pools) {
		m = nil // shape mismatch: drop rather than mis-attribute
	}
	a.inst = m
}

// SetTracer emits a shard_merge trace event per allocated slot. Nil
// disables.
func (a *Auction) SetTracer(tr *obs.Tracer) { a.tracer = tr }

// TrackDepartures toggles SlotResult.Departed population.
func (a *Auction) TrackDepartures(on bool) { a.trackDepartures = on }

// TrackCompletions toggles the assignment lifecycle (see
// core.OnlineAuction.TrackCompletions; semantics and outcomes are
// bit-identical to the sequential engine's).
func (a *Auction) TrackCompletions(on bool) { a.ledger.TrackCompletions(on) }

// Complete marks phone p's assignment as delivered.
func (a *Auction) Complete(p core.PhoneID) error { return a.ledger.Complete(p) }

// Default marks phone p's assignment as failed, re-allocating its task
// to the next-cheapest eligible phone (see core.OnlineAuction.Default).
func (a *Auction) Default(p core.PhoneID) (*core.DefaultResult, error) {
	return a.ledger.DefaultWinner(p, a.now, a.out)
}

// Completion returns phone p's lifecycle view.
func (a *Auction) Completion(p core.PhoneID) core.CompletionState { return a.ledger.Completion(p) }

// CompletionCounts returns aggregate lifecycle outcomes.
func (a *Auction) CompletionCounts() core.CompletionCounts { return a.ledger.CompletionCounts() }

// Now returns the last processed slot (0 before the first Step).
func (a *Auction) Now() core.Slot { return a.now }

// Done reports whether all slots have been processed.
func (a *Auction) Done() bool { return a.now >= a.ledger.Slots() }

// Submit stages a bid for the next Step. Safe for concurrent use by
// any number of producer goroutines while the coordinator runs; staged
// bids join after that Step's `arriving` argument, in submission order.
func (a *Auction) Submit(sb core.StreamBid) {
	a.mu.Lock()
	a.staged = append(a.staged, sb)
	a.mu.Unlock()
}

// parallel reports whether fan-out phases should spawn goroutines.
// With one shard or one processor the phases run inline: the sharded
// engine then does the sequential engine's work with no scheduling
// overhead (the S=1 no-regression half of the benchmark contract).
func (a *Auction) parallel() bool {
	return len(a.pools) > 1 && runtime.GOMAXPROCS(0) > 1
}

// fanOut runs fn(s) for every shard, on goroutines when parallel.
func (a *Auction) fanOut(par bool, fn func(s int)) {
	if !par {
		for s := range a.pools {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	for s := 1; s < len(a.pools); s++ {
		wg.Add(1)
		go func(s int) { defer wg.Done(); fn(s) }(s)
	}
	fn(0)
	wg.Wait()
}

// Step advances the auction one slot: arriving bids (plus any staged
// Submissions) join, numTasks tasks are announced and allocated to the
// globally cheapest active phones, and payments are finalized for
// winners whose reported departure is the new slot. Semantics match
// core.OnlineAuction.Step exactly.
func (a *Auction) Step(arriving []core.StreamBid, numTasks int) (*core.SlotResult, error) {
	if a.Done() {
		return nil, fmt.Errorf("sharded auction: round already complete (%d slots)", a.ledger.Slots())
	}
	if numTasks < 0 {
		return nil, fmt.Errorf("sharded auction: negative task count %d", numTasks)
	}
	a.mu.Lock()
	if len(a.staged) > 0 {
		arriving = append(append([]core.StreamBid(nil), arriving...), a.staged...)
		a.staged = a.staged[:0]
	}
	a.mu.Unlock()

	t := a.now + 1
	// Validate every probe before admitting any, so a bad batch leaves
	// the auction untouched (same atomicity as the sequential engine).
	for k, sb := range arriving {
		probe := core.Bid{Phone: core.PhoneID(a.ledger.NumPhones() + k), Arrival: t, Departure: sb.Departure, Cost: sb.Cost}
		if err := probe.Validate(a.ledger.Slots()); err != nil {
			return nil, fmt.Errorf("sharded auction: %w", err)
		}
	}
	a.now = t
	res := &core.SlotResult{Slot: t}
	par := a.parallel()
	var start time.Time
	if a.metrics != nil || a.inst != nil {
		start = time.Now()
	}

	// Admission: IDs are assigned centrally (arrival order, like the
	// sequential engine), then each shard ingests its partition.
	perShard := make([][]core.PhoneID, len(a.pools))
	for _, sb := range arriving {
		id, err := a.ledger.AddBid(t, sb)
		if err != nil { // unreachable: probes validated above
			return nil, fmt.Errorf("sharded auction: %w", err)
		}
		res.Joined = append(res.Joined, id)
		s := shardOf(id, len(a.pools))
		perShard[s] = append(perShard[s], id)
	}
	a.fanOut(par && len(arriving) > 1, func(s int) {
		for _, id := range perShard[s] {
			a.pools[s].admit(id)
		}
		if a.inst != nil {
			a.inst.Admissions[s].Add(uint64(len(perShard[s])))
		}
	})

	a.allocate(t, numTasks, res, par)

	if a.inst != nil {
		for s, p := range a.pools {
			a.inst.PoolDepth[s].Set(int64(p.depth()))
		}
	}
	if a.metrics != nil {
		a.metrics.SlotAllocSeconds.Observe(time.Since(start).Seconds())
		start = time.Now()
	}

	a.settle(t, res, par)

	if a.metrics != nil {
		a.metrics.PaymentSeconds.Observe(time.Since(start).Seconds())
	}
	return res, nil
}

// allocate announces numTasks tasks in slot t and assigns each to the
// globally cheapest eligible phone via the k-way merge.
func (a *Auction) allocate(t core.Slot, numTasks int, res *core.SlotResult, par bool) {
	if numTasks == 0 {
		return
	}
	var start time.Time
	if a.inst != nil {
		start = time.Now()
	}
	// Pre-pull: each shard surfaces its cheapest candidates. The merge
	// needs at most numTasks winners plus one runner-up in total, so an
	// even split plus one covers the common case; the merge tops a shard
	// up on demand when its share of the winners is lopsided, so the
	// chunk size affects only parallelism, never the outcome.
	want := numTasks + 1
	chunk := want/len(a.pools) + 1
	a.fanOut(par, func(s int) {
		p := a.pools[s]
		buf := a.pulled[s][:0]
		for len(buf) < chunk {
			ph := p.popEligible(t)
			if ph == core.NoPhone {
				break
			}
			buf = append(buf, ph)
		}
		a.pulled[s] = buf
		a.taken[s] = 0
	})

	// Merge heap over the shards' head candidates, ordered by the same
	// (cost, phone ID) key every pool heap uses.
	a.heads = a.heads[:0]
	for s := range a.pools {
		if len(a.pulled[s]) > 0 {
			a.headsPush(s)
		}
	}
	for k := 0; k < numTasks; k++ {
		id := a.ledger.AddTask(t)
		if len(a.heads) == 0 {
			a.ledger.RecordUnserved(t)
			res.Unserved++
			continue
		}
		s := a.heads[0]
		winner := a.pulled[s][a.taken[s]]
		a.taken[s]++
		a.advanceHead(t)
		runner := core.NoPhone
		if len(a.heads) > 0 {
			top := a.heads[0]
			runner = a.pulled[top][a.taken[top]]
		}
		a.ledger.RecordWin(id, winner, runner, t)
		res.Assignments = append(res.Assignments, core.Assignment{Task: id, Phone: winner, Slot: t})
	}

	// Unconsumed candidates (including the surviving runner-up) return
	// to their pools; each shard's winners are a prefix of its pull, so
	// the suffix is exactly the survivors.
	pulledTotal := 0
	for s, p := range a.pools {
		pulledTotal += len(a.pulled[s])
		for _, ph := range a.pulled[s][a.taken[s]:] {
			p.push(ph)
		}
	}
	if a.inst != nil {
		a.inst.MergeSeconds.Observe(time.Since(start).Seconds())
		a.inst.MergePulled.Add(uint64(pulledTotal))
	}
	if a.tracer != nil && !a.replay {
		a.tracer.Emit(obs.Event{
			Time: time.Now(), Type: obs.EventShardMerge, Slot: int(t),
			Phone: -1, Task: -1,
			Detail: fmt.Sprintf("shards=%d tasks=%d pulled=%d assigned=%d",
				len(a.pools), numTasks, pulledTotal, len(res.Assignments)),
		})
	}
}

// headLess orders shards by their current head candidate.
func (a *Auction) headLess(sa, sb int) bool {
	pa := a.pulled[sa][a.taken[sa]]
	pb := a.pulled[sb][a.taken[sb]]
	ca, cb := a.ledger.Bid(pa).Cost, a.ledger.Bid(pb).Cost
	if ca != cb {
		return ca < cb
	}
	return pa < pb
}

func (a *Auction) headsPush(s int) {
	a.heads = append(a.heads, s)
	i := len(a.heads) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.headLess(a.heads[i], a.heads[parent]) {
			break
		}
		a.heads[i], a.heads[parent] = a.heads[parent], a.heads[i]
		i = parent
	}
}

// advanceHead moves the top shard past its consumed head: it tops the
// shard up from its pool when the pull buffer is exhausted (so the
// merge never sees a truncated shard), drops the shard when it is
// empty, and restores the heap order.
func (a *Auction) advanceHead(t core.Slot) {
	s := a.heads[0]
	if a.taken[s] >= len(a.pulled[s]) {
		if ph := a.pools[s].popEligible(t); ph != core.NoPhone {
			a.pulled[s] = append(a.pulled[s], ph)
		} else {
			last := len(a.heads) - 1
			a.heads[0] = a.heads[last]
			a.heads = a.heads[:last]
		}
	}
	a.headsFix()
}

// headsFix sifts heads[0] down after its key changed or was replaced.
func (a *Auction) headsFix() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(a.heads) && a.headLess(a.heads[l], a.heads[small]) {
			small = l
		}
		if r < len(a.heads) && a.headLess(a.heads[r], a.heads[small]) {
			small = r
		}
		if small == i {
			return
		}
		a.heads[i], a.heads[small] = a.heads[small], a.heads[i]
		i = small
	}
}

// settle finalizes payments for winners departing in slot t. Each
// shard prices its own departures with its own pricer (cascade pricing
// is read-only on the quiescent ledger), then the notices merge in
// ascending phone ID — the sequential engine's payout order.
func (a *Auction) settle(t core.Slot, res *core.SlotResult, par bool) {
	if a.replay {
		return // restore replays allocation only; payments were final
	}
	a.dep = a.dep[:0]
	for _, p := range a.pools {
		a.dep = append(a.dep, p.departing(t)...)
	}
	if len(a.dep) == 0 {
		return
	}
	sort.Slice(a.dep, func(i, j int) bool { return a.dep[i] < a.dep[j] })
	if a.trackDepartures {
		res.Departed = append(res.Departed, a.dep...)
	}

	priceShard := func(s int) {
		buf := a.notices[s][:0]
		for _, ph := range a.pools[s].departing(t) {
			if a.ledger.WonAt(ph) == 0 || !a.ledger.Payable(ph) {
				continue
			}
			amount := a.pricers[s].Price(ph)
			a.ledger.NotePaid(ph, amount, t) // distinct phones: race-free
			buf = append(buf, core.PaymentNotice{Phone: ph, Amount: amount})
		}
		a.notices[s] = buf
	}
	if par {
		a.fanOut(true, priceShard)
		for _, ns := range a.notices {
			res.Payments = append(res.Payments, ns...)
		}
		sort.Slice(res.Payments, func(i, j int) bool { return res.Payments[i].Phone < res.Payments[j].Phone })
		return
	}
	for _, ph := range a.dep {
		if a.ledger.WonAt(ph) == 0 || !a.ledger.Payable(ph) {
			continue
		}
		amount := a.pricers[0].Price(ph)
		a.ledger.NotePaid(ph, amount, t)
		res.Payments = append(res.Payments, core.PaymentNotice{Phone: ph, Amount: amount})
	}
}

// Outcome assembles the round outcome so far (allocation, payments for
// every current winner, welfare), identical to the sequential engine's.
func (a *Auction) Outcome() *core.Outcome { return a.ledger.Outcome(a.out) }

// Instance returns a copy of the bids and tasks accumulated so far.
func (a *Auction) Instance() *core.Instance { return a.ledger.Instance() }

var _ core.Auction = (*Auction)(nil)
