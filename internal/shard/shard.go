// Package shard is the sharded online-auction engine: the paper's
// slot-by-slot greedy mechanism (Section V) scaled out across S
// partitioned bid pools with bit-identical outcomes.
//
// Phones are partitioned across shards by a stable hash of their dense
// phone ID. Each shard owns the active-bid pool of its phones — a
// binary min-heap on (claimed cost, phone ID) with lazy deletion of
// departed entries — plus per-slot departure bookkeeping, and handles
// admission and candidate pulls for its partition concurrently. Per
// slot, the coordinator k-way-merges the shards' cheapest candidates to
// select the globally cheapest r_t winners.
//
// Exactness: the shards partition the sequential engine's single heap,
// and the merge consumes the per-shard heaps in the same total order
// (cost, then phone ID) the sequential heap pops in, so every winner,
// runner-up, unserved task, and therefore every cascade payment is
// bit-identical to core.OnlineAuction. docs/SHARDING.md spells the
// argument out; TestShardedDifferentialSweep enforces it.
package shard

import (
	"dynacrowd/internal/core"
)

// shardOf maps a phone to its shard with a stable integer hash
// (SplitMix64's finalizer). Stability matters: snapshots restore on a
// coordinator with any shard count, and the same phone must land in a
// pool whose heap order is a strict subsequence of the global order.
func shardOf(p core.PhoneID, shards int) int {
	x := uint64(p)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// pool is one shard's state: the active-bid min-heap of its partition
// plus per-slot departure lists. Pools are mutated only by their owning
// goroutine during a fan-out phase (or by the coordinator inline), and
// read cost data through the shared ledger, which is quiescent while
// any fan-out runs.
type pool struct {
	ledger *core.Ledger
	items  []core.PhoneID // min-heap on (cost, id)
	// byDeparture[t] lists this shard's phones reporting departure in
	// slot t (winners and losers alike), in admission = ascending ID
	// order. Settlement drains slot t's list once.
	byDeparture [][]core.PhoneID

	admitted uint64 // bids routed to this shard
	pooled   uint64 // admitted bids that entered the allocation pool
}

func newPool(l *core.Ledger) *pool {
	return &pool{ledger: l, byDeparture: make([][]core.PhoneID, l.Slots()+1)}
}

// admit registers phone p with the shard: departure bookkeeping always,
// a heap insert only if the bid clears the reserve (cost < ν unless the
// round allocates at a loss) — the same admission rule as the
// sequential engine.
func (s *pool) admit(p core.PhoneID) {
	b := s.ledger.Bid(p)
	s.byDeparture[b.Departure] = append(s.byDeparture[b.Departure], p)
	s.admitted++
	if s.ledger.AllocateAtLoss() || b.Cost < s.ledger.Value() {
		s.push(p)
		s.pooled++
	}
}

// departing returns this shard's phones reporting departure in slot t.
func (s *pool) departing(t core.Slot) []core.PhoneID { return s.byDeparture[t] }

func (s *pool) less(a, b core.PhoneID) bool {
	ca, cb := s.ledger.Bid(a).Cost, s.ledger.Bid(b).Cost
	if ca != cb {
		return ca < cb
	}
	return a < b
}

func (s *pool) push(p core.PhoneID) {
	s.items = append(s.items, p)
	i := len(s.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.items[i], s.items[parent]) {
			break
		}
		s.items[i], s.items[parent] = s.items[parent], s.items[i]
		i = parent
	}
}

func (s *pool) pop() core.PhoneID {
	top := s.items[0]
	last := len(s.items) - 1
	s.items[0] = s.items[last]
	s.items = s.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s.items) && s.less(s.items[l], s.items[small]) {
			small = l
		}
		if r < len(s.items) && s.less(s.items[r], s.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		s.items[i], s.items[small] = s.items[small], s.items[i]
		i = small
	}
	return top
}

// popEligible pops the shard's cheapest phone still active in slot t,
// permanently discarding departed entries on the way (lazy deletion: a
// departed phone can never become eligible again). Unassignable phones
// — re-allocated by a default while still pooled, or defaulted
// themselves — are discarded the same way; both states are terminal.
func (s *pool) popEligible(t core.Slot) core.PhoneID {
	for len(s.items) > 0 {
		p := s.pop()
		if s.ledger.Bid(p).Departure >= t && s.ledger.Assignable(p) {
			return p
		}
	}
	return core.NoPhone
}

// depth returns the current pool size (including lazily dead entries).
func (s *pool) depth() int { return len(s.items) }
