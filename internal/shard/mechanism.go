package shard

import (
	"fmt"

	"dynacrowd/internal/core"
)

// Mechanism adapts the sharded auction to core.Mechanism so sweeps and
// differential tests can run it against batch instances. Run streams
// the instance slot by slot through a fresh Auction — each bid joins in
// its arrival slot, tasks are announced per slot — and maps the outcome
// back to the instance's phone numbering. Safe for concurrent use
// (every Run builds its own auction).
type Mechanism struct {
	// Shards is the partition count (0 or negative: 1).
	Shards int
	// Payments selects the payment engine (nil: cascade).
	Payments core.PaymentEngine
}

// Name implements Mechanism.
func (sm *Mechanism) Name() string {
	name := fmt.Sprintf("sharded-greedy-s%d", sm.shards())
	if sm.Payments != nil {
		name += "+" + sm.Payments.Name()
	}
	return name
}

func (sm *Mechanism) shards() int {
	if sm.Shards < 1 {
		return 1
	}
	return sm.Shards
}

// Run implements Mechanism. For instances whose bids are arrival-
// ordered (every workload generator's output), phone IDs survive the
// streaming unchanged and the outcome is bit-identical to
// OnlineMechanism's; otherwise IDs are remapped through the delivery
// permutation, which preserves outcomes whenever costs are distinct.
func (sm *Mechanism) Run(in *core.Instance) (*core.Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("sharded mechanism: %w", err)
	}
	a, err := New(sm.shards(), in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		return nil, fmt.Errorf("sharded mechanism: %w", err)
	}
	if sm.Payments != nil {
		a.SetPaymentEngine(sm.Payments)
	}

	byArrival := make([][]int, in.Slots+1)
	for i, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], i)
	}
	perSlot := in.TasksPerSlot()
	perm := make([]core.PhoneID, 0, len(in.Bids)) // stream ID -> instance ID
	arriving := make([]core.StreamBid, 0, 8)
	for t := core.Slot(1); t <= in.Slots; t++ {
		arriving = arriving[:0]
		for _, i := range byArrival[t] {
			arriving = append(arriving, core.StreamBid{Departure: in.Bids[i].Departure, Cost: in.Bids[i].Cost})
			perm = append(perm, core.PhoneID(i))
		}
		if _, err := a.Step(arriving, perSlot[t-1]); err != nil {
			return nil, fmt.Errorf("sharded mechanism: slot %d: %w", t, err)
		}
	}

	got := a.Outcome()
	out := &core.Outcome{
		Allocation: core.NewAllocation(in.NumTasks(), in.NumPhones()),
		Payments:   make([]float64, in.NumPhones()),
	}
	for k, ph := range got.Allocation.ByTask {
		if ph != core.NoPhone {
			out.Allocation.Assign(core.TaskID(k), perm[ph], got.Allocation.WonAt[ph])
		}
	}
	for j, amount := range got.Payments {
		out.Payments[perm[j]] = amount
	}
	out.Welfare = out.Allocation.Welfare(in)
	return out, nil
}

var _ core.Mechanism = (*Mechanism)(nil)
