package shard

import (
	"errors"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// sameSlot requires two engines' slot results to agree bit-for-bit on
// everything the completion pipeline can perturb: assignments, unserved
// counts, and the full payment list (departure settlements plus any
// immediate replacement payments appended by a resolver).
func sameSlot(t *testing.T, label string, want, got *core.SlotResult) {
	t.Helper()
	if len(want.Assignments) != len(got.Assignments) {
		t.Fatalf("%s: %d assignments != %d", label, len(got.Assignments), len(want.Assignments))
	}
	for i := range want.Assignments {
		if want.Assignments[i] != got.Assignments[i] {
			t.Fatalf("%s: assignment %d: %+v != %+v", label, i, got.Assignments[i], want.Assignments[i])
		}
	}
	if want.Unserved != got.Unserved {
		t.Fatalf("%s: unserved %d != %d", label, got.Unserved, want.Unserved)
	}
	if !sameNotices(want.Payments, got.Payments) {
		t.Fatalf("%s: payments %+v != %+v", label, got.Payments, want.Payments)
	}
}

// TestShardCompletionParity drives the sequential and sharded engines
// through identical streams while the same realization script decides,
// slot by slot, which winners deliver and which default. Every slot
// result, the final outcome, and the lifecycle tallies must be
// bit-identical for every shard count.
func TestShardCompletionParity(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		in := genInstance(t, seed)
		rel, err := workload.ChaosModel().Realize(in, seed+100)
		if err != nil {
			t.Fatal(err)
		}
		byArrival, tasks := streamPlan(in)

		for _, shards := range []int{1, 2, 4, 8} {
			sh, err := New(shards, in.Slots, in.Value, false)
			if err != nil {
				t.Fatal(err)
			}
			sh.TrackCompletions(true)

			ref, errRef := core.NewOnlineAuction(in.Slots, in.Value, false)
			if errRef != nil {
				t.Fatal(errRef)
			}
			ref.TrackCompletions(true)

			for s := core.Slot(1); s <= in.Slots; s++ {
				label := "seed " + itoa(int(seed)) + " shards " + itoa(shards) + " slot " + itoa(int(s))
				want, err := ref.Step(byArrival[s], tasks[s-1])
				if err != nil {
					t.Fatal(err)
				}
				got, err := sh.Step(byArrival[s], tasks[s-1])
				if err != nil {
					t.Fatal(err)
				}
				// Resolve mutates the slot result (appends replacement
				// payments), so run it on both before comparing.
				wc, wd, err := rel.Resolve(ref, want)
				if err != nil {
					t.Fatal(err)
				}
				gc, gd, err := rel.Resolve(sh, got)
				if err != nil {
					t.Fatal(err)
				}
				if wc != gc || wd != gd {
					t.Fatalf("%s: resolved (%d completed, %d defaulted) != (%d, %d)", label, gc, gd, wc, wd)
				}
				sameSlot(t, label, want, got)
			}
			sameOutcome(t, "seed "+itoa(int(seed))+" shards "+itoa(shards), ref.Outcome(), sh.Outcome())
			if a, b := ref.CompletionCounts(), sh.CompletionCounts(); a != b {
				t.Fatalf("seed %d shards %d: counts %+v != %+v", seed, shards, b, a)
			}
			for i := 0; i < len(in.Bids); i++ {
				if a, b := ref.Completion(core.PhoneID(i)), sh.Completion(core.PhoneID(i)); a != b {
					t.Fatalf("seed %d shards %d: phone %d state %+v != %+v", seed, shards, i, b, a)
				}
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// FuzzShardCompletionOrder feeds arbitrary completion-event orderings —
// complete, default, or defer, applied in fuzzer-chosen order across
// the round — to the sequential and sharded engines simultaneously.
// Both must accept and reject the exact same operations and end in
// bit-identical states.
func FuzzShardCompletionOrder(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 0, 1})
	f.Add(uint64(7), []byte{2, 2, 2, 1, 1, 1, 0, 0})
	f.Add(uint64(42), []byte{1, 0, 2, 5, 9, 13, 77})
	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		in := genInstance(t, seed%16+1)
		byArrival, tasks := streamPlan(in)

		ref, err := core.NewOnlineAuction(in.Slots, in.Value, false)
		if err != nil {
			t.Fatal(err)
		}
		ref.TrackCompletions(true)
		sh, err := New(int(seed%7)+2, in.Slots, in.Value, false)
		if err != nil {
			t.Fatal(err)
		}
		sh.TrackCompletions(true)

		next := 0
		op := func() byte {
			if len(script) == 0 {
				return 0
			}
			b := script[next%len(script)]
			next++
			return b
		}
		// pending holds phones assigned but not yet resolved; the script
		// may come back to them slots later, exercising out-of-order and
		// cross-slot completion events.
		var pending []core.PhoneID

		apply := func(p core.PhoneID, b byte) {
			switch b % 3 {
			case 0: // complete on both; identical verdicts required
				e1 := ref.Complete(p)
				e2 := sh.Complete(p)
				if (e1 == nil) != (e2 == nil) || (e1 != nil && !errors.Is(e2, cause(e1))) {
					t.Fatalf("Complete(%d): sequential %v, sharded %v", p, e1, e2)
				}
			case 1: // default on both; replacement chains must agree
				d1, e1 := ref.Default(p)
				d2, e2 := sh.Default(p)
				if (e1 == nil) != (e2 == nil) || (e1 != nil && !errors.Is(e2, cause(e1))) {
					t.Fatalf("Default(%d): sequential %v, sharded %v", p, e1, e2)
				}
				if e1 == nil {
					if d1.Replacement != d2.Replacement || d1.Clawback != d2.Clawback || d1.Task != d2.Task {
						t.Fatalf("Default(%d): %+v != %+v", p, d2, d1)
					}
					if !sameNotices(d1.Payments, d2.Payments) {
						t.Fatalf("Default(%d) payments: %+v != %+v", p, d2.Payments, d1.Payments)
					}
					if d1.Replacement != core.NoPhone {
						pending = append(pending, d1.Replacement)
					}
				}
			default: // defer: leave the assignment open for a later byte
				pending = append(pending, p)
			}
		}

		for s := core.Slot(1); s <= in.Slots; s++ {
			want, err := ref.Step(byArrival[s], tasks[s-1])
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.Step(byArrival[s], tasks[s-1])
			if err != nil {
				t.Fatal(err)
			}
			sameSlot(t, "fuzz slot", want, got)
			for _, as := range want.Assignments {
				apply(as.Phone, op())
			}
			// Revisit one deferred phone per slot in fuzzer order.
			if len(pending) > 0 {
				idx := int(op()) % len(pending)
				p := pending[idx]
				pending = append(pending[:idx], pending[idx+1:]...)
				apply(p, op())
			}
		}
		sameOutcome(t, "fuzz outcome", ref.Outcome(), sh.Outcome())
		if a, b := ref.CompletionCounts(), sh.CompletionCounts(); a != b {
			t.Fatalf("fuzz counts: %+v != %+v", b, a)
		}
	})
}

// cause maps a lifecycle error to its typed sentinel so cross-engine
// verdicts can be compared with errors.Is.
func cause(err error) error {
	for _, sentinel := range []error{core.ErrAlreadyCompleted, core.ErrNotAssigned, core.ErrNotTracking} {
		if errors.Is(err, sentinel) {
			return sentinel
		}
	}
	return err
}
