package shard

import (
	"fmt"
	"sort"

	"dynacrowd/internal/core"
)

// Replica is the distributed deployment's state machine: a full mirror
// of the sharded auction (ledger + all S pools) driven by explicit
// replicated operations instead of Step. Both sides of the
// internal/dshard wire are built on it —
//
//   - a shard *server* holds one Replica per connection and serves
//     pull/top-up/price RPCs out of the pool it owns (shard index
//     Shard()), while mirroring every other mutation so cascade
//     pricing sees the full bid set;
//   - the *coordinator* holds one Replica as its local authoritative
//     state and applies every mutation locally before replicating it,
//     so its Snapshot is — at any instant, including mid-slot — exactly
//     the stream that reseeds a lost shard.
//
// Convergence argument: a Replica seeded by RestoreReplica (snapshot +
// deterministic replay) and a Replica that applied the same operations
// incrementally hold identical ledgers, and identical owned pools up to
// lazily-deleted entries that popEligible discards on contact. The
// allocation-relevant state is therefore identical, which is what the
// dshard differential and chaos-recovery tests pin.
//
// Replica is not safe for concurrent use; each connection (or the
// coordinator loop) owns one.
type Replica struct {
	a     *Auction
	shard int
}

// NewReplica creates an empty replica of an S-shard auction, owning
// partition shard (0 ≤ shard < shards).
func NewReplica(shard, shards int, m core.Slot, value float64, allocateAtLoss bool) (*Replica, error) {
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("replica: shard %d outside [0,%d)", shard, shards)
	}
	a, err := New(shards, m, value, allocateAtLoss)
	if err != nil {
		return nil, err
	}
	return &Replica{a: a, shard: shard}, nil
}

// RestoreReplica reconstructs a replica from an engine-portable v1
// snapshot by deterministic replay (see Restore). Mid-slot snapshots
// replay to the identical partial-slot state: bids admit before any
// allocation within a slot and the greedy winner prefix is determined
// by the recorded task count, so a snapshot taken between two wins of
// slot t rebuilds exactly those wins and a pool holding exactly the
// still-active non-winners.
func RestoreReplica(data []byte, shard, shards int) (*Replica, error) {
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("replica: shard %d outside [0,%d)", shard, shards)
	}
	a, err := Restore(data, shards)
	if err != nil {
		return nil, err
	}
	return &Replica{a: a, shard: shard}, nil
}

// ShardOf exposes the stable partition hash — the distributed
// coordinator uses it to route per-phone operations to owning shards.
func ShardOf(p core.PhoneID, shards int) int { return shardOf(p, shards) }

// Shard returns the partition this replica owns; Shards the partition
// count; Now the furthest slot any operation has named.
func (r *Replica) Shard() int       { return r.shard }
func (r *Replica) Shards() int      { return len(r.a.pools) }
func (r *Replica) Now() core.Slot   { return r.a.now }
func (r *Replica) Slots() core.Slot { return r.a.ledger.Slots() }

// NumPhones returns the number of admitted bids; Bid the recorded bid
// of phone p (which must be in range) — the coordinator's merge orders
// candidates by (Bid(p).Cost, p).
func (r *Replica) NumPhones() int              { return r.a.ledger.NumPhones() }
func (r *Replica) Bid(p core.PhoneID) core.Bid { return r.a.ledger.Bid(p) }

// Advance moves the clock to slot t with no other mutation. The
// coordinator calls it once per Step so empty slots (no arrivals,
// tasks, or departures) still consume a slot — the snapshot clock must
// match the round clock or a restore would replay short.
func (r *Replica) Advance(t core.Slot) error { return r.clock(t) }

// clock advances the replica clock to t; operations never run backwards.
func (r *Replica) clock(t core.Slot) error {
	if t < r.a.now {
		return fmt.Errorf("replica: operation at slot %d behind clock %d", t, r.a.now)
	}
	if t > r.a.ledger.Slots() {
		return fmt.Errorf("replica: slot %d outside round [1,%d]", t, r.a.ledger.Slots())
	}
	r.a.now = t
	return nil
}

// Admit replicates one admission: phone p (which must be the next dense
// ID — the coordinator assigns IDs in arrival order) arrives at slot
// arrival with the given departure and claimed cost. Every replica
// ledgers the bid; the pool of the phone's owning partition also admits
// it, exactly as Step's admission fan-out does.
func (r *Replica) Admit(p core.PhoneID, arrival, departure core.Slot, cost float64) error {
	if want := core.PhoneID(r.a.ledger.NumPhones()); p != want {
		return fmt.Errorf("replica: admit phone %d, want next dense id %d", p, want)
	}
	if err := r.clock(arrival); err != nil {
		return err
	}
	probe := core.Bid{Phone: p, Arrival: arrival, Departure: departure, Cost: cost}
	if err := probe.Validate(r.a.ledger.Slots()); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	id, err := r.a.ledger.AddBid(arrival, core.StreamBid{Departure: departure, Cost: cost})
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	r.a.pools[shardOf(id, len(r.a.pools))].admit(id)
	return nil
}

// Pull pops up to max of the owned pool's cheapest candidates still
// active in slot t, in ascending (cost, phone ID) order. Ownership of
// the popped phones transfers to the caller until PushBack.
func (r *Replica) Pull(t core.Slot, max int) ([]core.PhoneID, error) {
	if err := r.clock(t); err != nil {
		return nil, err
	}
	var out []core.PhoneID
	p := r.a.pools[r.shard]
	for len(out) < max {
		ph := p.popEligible(t)
		if ph == core.NoPhone {
			break
		}
		out = append(out, ph)
	}
	return out, nil
}

// PushBack returns an unconsumed pulled candidate to the owned pool.
func (r *Replica) PushBack(p core.PhoneID) error {
	if p < 0 || int(p) >= r.a.ledger.NumPhones() {
		return fmt.Errorf("replica: pushback of unknown phone %d", p)
	}
	if own := shardOf(p, len(r.a.pools)); own != r.shard {
		return fmt.Errorf("replica: pushback of phone %d owned by shard %d, not %d", p, own, r.shard)
	}
	r.a.pools[r.shard].push(p)
	return nil
}

// Win creates the next task of slot t and records winner (with runner
// as the pricing runner-up, core.NoPhone if none), returning the new
// task ID. This is the coordinator-side form; WinAt is the replicated
// form that verifies the ID instead.
func (r *Replica) Win(winner, runner core.PhoneID, t core.Slot) (core.TaskID, error) {
	if err := r.clock(t); err != nil {
		return 0, err
	}
	if winner < 0 || int(winner) >= r.a.ledger.NumPhones() {
		return 0, fmt.Errorf("replica: win by unknown phone %d", winner)
	}
	if runner != core.NoPhone && (runner < 0 || int(runner) >= r.a.ledger.NumPhones()) {
		return 0, fmt.Errorf("replica: runner-up %d unknown", runner)
	}
	id := r.a.ledger.AddTask(t)
	r.a.ledger.RecordWin(id, winner, runner, t)
	return id, nil
}

// WinAt replicates a Win, verifying the task ID assigned locally
// matches the coordinator's (wins replicate in task-ID order, so any
// divergence is a protocol error, not a race).
func (r *Replica) WinAt(task core.TaskID, winner, runner core.PhoneID, t core.Slot) error {
	id, err := r.Win(winner, runner, t)
	if err != nil {
		return err
	}
	if id != task {
		return fmt.Errorf("replica: win replicated as task %d but assigned id %d", task, id)
	}
	return nil
}

// Unserved records count tasks of slot t going unserved (the slot's
// trailing tasks once the merged candidate supply is exhausted).
func (r *Replica) Unserved(t core.Slot, count int) error {
	if err := r.clock(t); err != nil {
		return err
	}
	if count < 1 {
		return fmt.Errorf("replica: unserved count %d < 1", count)
	}
	for i := 0; i < count; i++ {
		r.a.ledger.AddTask(t)
		r.a.ledger.RecordUnserved(t)
	}
	return nil
}

// Price computes the critical-value payment of winner p from the
// replica's own cascade pricer. Read-only: the payment executes only
// when the coordinator replicates it back via Paid.
func (r *Replica) Price(p core.PhoneID) (float64, error) {
	if p < 0 || int(p) >= r.a.ledger.NumPhones() {
		return 0, fmt.Errorf("replica: price of unknown phone %d", p)
	}
	if r.a.ledger.WonAt(p) == 0 {
		return 0, fmt.Errorf("replica: price of non-winner phone %d", p)
	}
	return r.a.pricers[r.shard].Price(p), nil
}

// Paid replicates an executed payment at clock t.
func (r *Replica) Paid(p core.PhoneID, amount float64, t core.Slot) error {
	if p < 0 || int(p) >= r.a.ledger.NumPhones() {
		return fmt.Errorf("replica: payment to unknown phone %d", p)
	}
	if err := r.clock(t); err != nil {
		return err
	}
	r.a.ledger.NotePaid(p, amount, t)
	return nil
}

// Departing returns every phone (across all partitions) reporting
// departure in slot t, ascending by ID — the settlement scan order.
func (r *Replica) Departing(t core.Slot) []core.PhoneID {
	var out []core.PhoneID
	for _, p := range r.a.pools {
		out = append(out, p.departing(t)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WonAt and Payable expose the settlement filters (see core.Ledger).
func (r *Replica) WonAt(p core.PhoneID) core.Slot { return r.a.ledger.WonAt(p) }
func (r *Replica) Payable(p core.PhoneID) bool    { return r.a.ledger.Payable(p) }

// SetEngine selects the payment engine used for outcome assembly and
// default re-allocation pricing (nil: cascade). Replicated departure
// pricing always runs the cascade engine on the owning shard; every
// engine prices identically by the differential contract, so the mix
// stays bit-identical.
func (r *Replica) SetEngine(e core.PaymentEngine) { r.a.SetPaymentEngine(e) }

// Track toggles the completion lifecycle.
func (r *Replica) Track(on bool) { r.a.ledger.TrackCompletions(on) }

// Complete marks phone p's assignment delivered.
func (r *Replica) Complete(p core.PhoneID) error { return r.a.ledger.Complete(p) }

// Default marks phone p's assignment failed at clock t, re-allocating
// its task (see core.Ledger.DefaultWinner). Shard servers discard the
// result — the re-allocation is the replicated effect; the coordinator
// returns it to the platform.
func (r *Replica) Default(p core.PhoneID, t core.Slot) (*core.DefaultResult, error) {
	if err := r.clock(t); err != nil {
		return nil, err
	}
	return r.a.ledger.DefaultWinner(p, t, r.a.out)
}

// Outcome, Instance, Completion, and CompletionCounts expose the
// coordinator-side views (identical to Auction's).
func (r *Replica) Outcome() *core.Outcome                         { return r.a.Outcome() }
func (r *Replica) Instance() *core.Instance                       { return r.a.ledger.Instance() }
func (r *Replica) Completion(p core.PhoneID) core.CompletionState { return r.a.ledger.Completion(p) }
func (r *Replica) CompletionCounts() core.CompletionCounts        { return r.a.ledger.CompletionCounts() }

// Tracking reports whether the completion lifecycle is on.
func (r *Replica) Tracking() bool { return r.a.ledger.MarshalCompletions() != nil }

// Snapshot serializes the replica's full state in the engine-portable
// v1 format; this is the reseed stream for a lost shard.
func (r *Replica) Snapshot() ([]byte, error) { return r.a.Snapshot() }

// PoolDepth returns the owned pool's current size (including lazily
// dead entries), for observability.
func (r *Replica) PoolDepth() int { return r.a.pools[r.shard].depth() }
