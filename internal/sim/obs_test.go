package sim

import (
	"strings"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/obs"
	"dynacrowd/internal/workload"
)

// TestInstruments: installed instruments count rounds and replications,
// and the latency histogram observes once per mechanism execution.
func TestInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	ins := NewInstruments(reg)
	SetInstruments(ins)
	defer SetInstruments(nil)

	scn := workload.DefaultScenario()
	scn.Slots = 10
	mechs := []core.Mechanism{&core.OnlineMechanism{}, &core.OfflineMechanism{}}
	if _, err := Compare(scn, Seeds(7, 4), mechs, 2); err != nil {
		t.Fatal(err)
	}
	if got := ins.Rounds.Value(); got != 8 {
		t.Fatalf("rounds = %d, want 8 (2 mechanisms x 4 seeds)", got)
	}
	if got := ins.Replications.Value(); got != 4 {
		t.Fatalf("replications = %d, want 4", got)
	}
	if got := ins.RoundSeconds.Count(); got != 8 {
		t.Fatalf("latency observations = %d, want 8", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dynacrowd_sim_rounds_total 8") {
		t.Fatalf("scrape missing sim rounds counter:\n%s", b.String())
	}
}
