// Package sim runs auction rounds end to end: it draws workloads from a
// scenario, executes one or more mechanisms on identical instances, and
// aggregates the paper's metrics (social welfare, overpayment ratio,
// service rate) across many seeded replications, fanning the replications
// out over a worker pool.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// RoundMetrics captures one mechanism's result on one generated round.
type RoundMetrics struct {
	Seed      uint64
	Mechanism string

	Phones int // n
	Tasks  int // γ
	Served int // tasks allocated

	Welfare          float64 // ω (Definition 3)
	TotalPayment     float64
	TotalWinnerCost  float64
	OverpaymentRatio float64 // σ (Definition 11)

	Elapsed time.Duration
}

// RunRound generates the (scenario, seed) round and executes the
// mechanism on it.
func RunRound(scn workload.Scenario, seed uint64, mech core.Mechanism) (RoundMetrics, error) {
	in, err := scn.Generate(seed)
	if err != nil {
		return RoundMetrics{}, fmt.Errorf("sim: %w", err)
	}
	return RunInstance(in, seed, mech)
}

// RunInstance executes the mechanism on a prepared instance.
func RunInstance(in *core.Instance, seed uint64, mech core.Mechanism) (RoundMetrics, error) {
	start := time.Now()
	out, err := mech.Run(in)
	if err != nil {
		return RoundMetrics{}, fmt.Errorf("sim: %s: %w", mech.Name(), err)
	}
	elapsed := time.Since(start)
	noteRound(elapsed)
	return Metrics(in, seed, mech.Name(), out, elapsed), nil
}

// Metrics derives RoundMetrics from an already-computed outcome.
func Metrics(in *core.Instance, seed uint64, mechName string, out *core.Outcome, elapsed time.Duration) RoundMetrics {
	return RoundMetrics{
		Seed:             seed,
		Mechanism:        mechName,
		Phones:           in.NumPhones(),
		Tasks:            in.NumTasks(),
		Served:           out.Allocation.NumServed(),
		Welfare:          out.Welfare,
		TotalPayment:     out.TotalPayment(),
		TotalWinnerCost:  out.TotalWinnerCost(in),
		OverpaymentRatio: out.OverpaymentRatio(in),
		Elapsed:          elapsed,
	}
}

// Replication is the comparison result of all mechanisms on one seed.
type Replication struct {
	Seed    uint64
	Results []RoundMetrics // parallel to the mechanisms passed to Compare
}

// Compare runs every mechanism on the identical generated instance for
// each seed, replicating across a worker pool. Results are returned in
// seed order. workers ≤ 0 selects GOMAXPROCS.
//
// Mechanism values must be safe for concurrent use by multiple
// goroutines or stateless; all mechanisms in this module qualify.
func Compare(scn workload.Scenario, seeds []uint64, mechs []core.Mechanism, workers int) ([]Replication, error) {
	if len(mechs) == 0 {
		return nil, fmt.Errorf("sim: no mechanisms given")
	}
	if err := scn.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}

	reps := make([]Replication, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	next := make(chan int)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				seed := seeds[idx]
				in, err := scn.Generate(seed)
				if err != nil {
					errs[idx] = err
					continue
				}
				rep := Replication{Seed: seed}
				for _, mech := range mechs {
					m, err := RunInstance(in, seed, mech)
					if err != nil {
						errs[idx] = err
						break
					}
					rep.Results = append(rep.Results, m)
				}
				if len(rep.Results) == len(mechs) {
					noteReplication()
				}
				reps[idx] = rep
			}
		}()
	}
	for idx := range seeds {
		next <- idx
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	return reps, nil
}

// EngineMechs returns the online mechanism under each payment engine —
// incremental cascade (the default), the per-winner Algorithm 2 oracle,
// and the parallel oracle fan-out — for differential comparisons and
// engine benchmarks. All three produce identical outcomes.
func EngineMechs() []core.Mechanism {
	return []core.Mechanism{
		&core.OnlineMechanism{},
		&core.OnlineMechanism{Payments: core.OraclePayments},
		&core.OnlineMechanism{Payments: core.ParallelPayments(0)},
	}
}

// OfflineEngineMechs returns the offline mechanism under each engine —
// the interval augmenting-path fast path (the default), the dense
// Hungarian + dual-query oracle, and the generic flow and
// successive-shortest-path re-solve cross-checks — for differential
// comparisons and engine benchmarks. All engines produce the optimal
// welfare on every instance.
func OfflineEngineMechs() []core.Mechanism {
	return []core.Mechanism{
		&core.OfflineMechanism{},
		&core.OfflineMechanism{Engine: core.HungarianOffline},
		&core.OfflineMechanism{Engine: core.FlowOffline},
		&core.OfflineMechanism{Engine: core.SSPOffline},
	}
}

// Seeds returns n deterministic seeds derived from base, suitable for
// Compare. Distinct bases give disjoint-looking seed sets.
func Seeds(base uint64, n int) []uint64 {
	rng := workload.NewRNG(base)
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

// Column extracts one metric across replications for the mech-th
// mechanism, in seed order.
func Column(reps []Replication, mech int, f func(RoundMetrics) float64) []float64 {
	out := make([]float64, 0, len(reps))
	for _, r := range reps {
		out = append(out, f(r.Results[mech]))
	}
	return out
}

// Welfare and OverpaymentRatio are the two figure metrics as extractors
// for Column.
func Welfare(m RoundMetrics) float64          { return m.Welfare }
func OverpaymentRatio(m RoundMetrics) float64 { return m.OverpaymentRatio }

// ServiceRate is the fraction of tasks served.
func ServiceRate(m RoundMetrics) float64 {
	if m.Tasks == 0 {
		return 0
	}
	return float64(m.Served) / float64(m.Tasks)
}
