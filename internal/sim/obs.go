package sim

import (
	"sync/atomic"
	"time"

	"dynacrowd/internal/obs"
)

// Instruments bundles the simulator's observability hooks. (The name
// Metrics is already taken in this package by the RoundMetrics
// deriver.) A nil *Instruments is the disabled, allocation-free path.
type Instruments struct {
	// Rounds counts mechanism executions (one per mechanism per seed).
	Rounds *obs.Counter
	// RoundSeconds is the latency distribution of one mechanism run.
	RoundSeconds *obs.Histogram
	// Replications counts fully-compared seeds in Compare.
	Replications *obs.Counter
}

// NewInstruments registers the simulator instruments in reg. Nil
// registry returns nil (disabled). Registration is idempotent.
func NewInstruments(reg *obs.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		Rounds: reg.Counter("dynacrowd_sim_rounds_total",
			"Mechanism executions completed by the simulator."),
		RoundSeconds: reg.Histogram("dynacrowd_sim_round_seconds",
			"Latency of one mechanism execution on one generated instance.",
			obs.LatencyBuckets),
		Replications: reg.Counter("dynacrowd_sim_replications_total",
			"Seeds for which every mechanism was compared."),
	}
}

// instruments is the process-wide hook RunInstance/Compare report into;
// sweeps construct mechanisms deep inside worker pools, so a package
// default beats threading a handle through every call site.
var instruments atomic.Pointer[Instruments]

// SetInstruments installs (or, with nil, removes) the process-wide
// simulator instruments. Typically called once at startup.
func SetInstruments(ins *Instruments) { instruments.Store(ins) }

// noteRound/noteReplication are the nil-safe reporting hooks.
func noteRound(elapsed time.Duration) {
	if ins := instruments.Load(); ins != nil {
		ins.Rounds.Inc()
		ins.RoundSeconds.Observe(elapsed.Seconds())
	}
}

func noteReplication() {
	if ins := instruments.Load(); ins != nil {
		ins.Replications.Inc()
	}
}
