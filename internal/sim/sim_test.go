package sim

import (
	"math"
	"strings"
	"testing"

	"dynacrowd/internal/baseline"
	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// smallScenario keeps test rounds fast.
func smallScenario() workload.Scenario {
	s := workload.DefaultScenario()
	s.Slots = 15
	return s
}

func TestRunRoundPopulatesMetrics(t *testing.T) {
	m, err := RunRound(smallScenario(), 1, &core.OnlineMechanism{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mechanism != "online-greedy" || m.Seed != 1 {
		t.Fatalf("identity fields wrong: %+v", m)
	}
	if m.Phones == 0 || m.Tasks == 0 {
		t.Fatalf("degenerate round: %+v", m)
	}
	if m.Served > m.Tasks {
		t.Fatalf("served %d > tasks %d", m.Served, m.Tasks)
	}
	if m.TotalPayment < m.TotalWinnerCost-1e-9 {
		t.Fatalf("payment %g below winner cost %g (IR violated in aggregate)", m.TotalPayment, m.TotalWinnerCost)
	}
	if m.TotalWinnerCost > 0 {
		want := (m.TotalPayment - m.TotalWinnerCost) / m.TotalWinnerCost
		if math.Abs(m.OverpaymentRatio-want) > 1e-9 {
			t.Fatalf("overpayment ratio %g, want %g", m.OverpaymentRatio, want)
		}
	}
}

func TestRunRoundBadScenario(t *testing.T) {
	s := smallScenario()
	s.Slots = 0
	if _, err := RunRound(s, 1, &core.OnlineMechanism{}); err == nil {
		t.Fatal("want error")
	}
}

func TestRunInstanceMechanismError(t *testing.T) {
	in := &core.Instance{Slots: 0} // invalid; mechanism must reject
	if _, err := RunInstance(in, 0, &core.OnlineMechanism{}); err == nil {
		t.Fatal("want error")
	}
}

func TestSeedsDeterministic(t *testing.T) {
	a := Seeds(5, 10)
	b := Seeds(5, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
}

func TestCompareRunsAllMechanismsOnSameInstance(t *testing.T) {
	scn := smallScenario()
	mechs := []core.Mechanism{
		&core.OnlineMechanism{},
		&core.OfflineMechanism{},
		&baseline.SecondPricePerSlot{},
	}
	reps, err := Compare(scn, Seeds(1, 8), mechs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 8 {
		t.Fatalf("got %d replications, want 8", len(reps))
	}
	for _, rep := range reps {
		if len(rep.Results) != len(mechs) {
			t.Fatalf("replication has %d results", len(rep.Results))
		}
		on, off, sp := rep.Results[0], rep.Results[1], rep.Results[2]
		// Identical instance: same phone and task counts everywhere.
		if on.Phones != off.Phones || on.Tasks != off.Tasks || sp.Phones != on.Phones {
			t.Fatalf("mechanisms saw different instances: %+v", rep)
		}
		// Offline is optimal; online is at least half of it (Theorem 6).
		if off.Welfare < on.Welfare-1e-9 {
			t.Fatalf("seed %d: offline %g < online %g", rep.Seed, off.Welfare, on.Welfare)
		}
		if on.Welfare < off.Welfare/2-1e-9 {
			t.Fatalf("seed %d: competitive ratio violated", rep.Seed)
		}
		// Second-price shares the online allocation, hence its welfare.
		if math.Abs(sp.Welfare-on.Welfare) > 1e-9 {
			t.Fatalf("seed %d: second-price welfare %g != online %g", rep.Seed, sp.Welfare, on.Welfare)
		}
	}
}

func TestOfflineEngineMechsAgreeOnWelfare(t *testing.T) {
	mechs := OfflineEngineMechs()
	if len(mechs) != 4 {
		t.Fatalf("got %d engines, want 4", len(mechs))
	}
	reps, err := Compare(smallScenario(), Seeds(7, 6), mechs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		ref := rep.Results[0]
		for _, m := range rep.Results[1:] {
			// Every engine solves the same assignment LP to optimality, so
			// the welfare (and the total served count under distinct costs)
			// must agree exactly; payments may differ only on ties.
			if math.Abs(m.Welfare-ref.Welfare) > 1e-9 {
				t.Fatalf("seed %d: engine %q welfare %g != %q welfare %g",
					rep.Seed, m.Mechanism, m.Welfare, ref.Mechanism, ref.Welfare)
			}
			if m.TotalPayment < m.TotalWinnerCost-1e-9 {
				t.Fatalf("seed %d: engine %q aggregate IR violated", rep.Seed, m.Mechanism)
			}
		}
	}
}

func TestCompareDeterministicAcrossWorkerCounts(t *testing.T) {
	scn := smallScenario()
	mechs := []core.Mechanism{&core.OnlineMechanism{}}
	seq, err := Compare(scn, Seeds(2, 6), mechs, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compare(scn, Seeds(2, 6), mechs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Seed != par[i].Seed || seq[i].Results[0].Welfare != par[i].Results[0].Welfare {
			t.Fatalf("replication %d differs between worker counts", i)
		}
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Compare(smallScenario(), Seeds(1, 2), nil, 1); err == nil || !strings.Contains(err.Error(), "no mechanisms") {
		t.Fatalf("want no-mechanisms error, got %v", err)
	}
	bad := smallScenario()
	bad.MeanCost = -1
	if _, err := Compare(bad, Seeds(1, 2), []core.Mechanism{&core.OnlineMechanism{}}, 1); err == nil {
		t.Fatal("want scenario error")
	}
}

func TestCompareEmptySeeds(t *testing.T) {
	reps, err := Compare(smallScenario(), nil, []core.Mechanism{&core.OnlineMechanism{}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 0 {
		t.Fatal("want empty result")
	}
}

func TestColumnAndExtractors(t *testing.T) {
	reps := []Replication{
		{Seed: 1, Results: []RoundMetrics{{Welfare: 10, OverpaymentRatio: 0.5, Tasks: 4, Served: 2}}},
		{Seed: 2, Results: []RoundMetrics{{Welfare: 20, OverpaymentRatio: 0.7, Tasks: 0, Served: 0}}},
	}
	w := Column(reps, 0, Welfare)
	if len(w) != 2 || w[0] != 10 || w[1] != 20 {
		t.Fatalf("welfare column = %v", w)
	}
	o := Column(reps, 0, OverpaymentRatio)
	if o[0] != 0.5 || o[1] != 0.7 {
		t.Fatalf("overpayment column = %v", o)
	}
	s := Column(reps, 0, ServiceRate)
	if s[0] != 0.5 || s[1] != 0 {
		t.Fatalf("service rate column = %v", s)
	}
}
