package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var (
		c  *Counter
		fc *FloatCounter
		g  *Gauge
		fg *FloatGauge
		h  *Histogram
		r  *Registry
		o  *Observability
		tr *Tracer
	)
	c.Inc()
	c.Add(5)
	fc.Add(1.5)
	g.Set(3)
	g.Add(-1)
	fg.Set(2)
	fg.Add(1)
	h.Observe(0.1)
	if c.Value() != 0 || fc.Value() != 0 || g.Value() != 0 || fg.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x", "") != nil || r.Histogram("y", "", LatencyBuckets) != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
	tr.Emit(Event{Type: EventPayment})
	if tr.Recent(10) != nil || tr.Seq() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	o.Trace(Event{})
	if o.Reg() != nil {
		t.Fatal("nil observability must expose a nil registry")
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRendersPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.").Add(7)
	r.FloatCounter("app_paid_total", "Money out the door.").Add(12.5)
	r.Gauge("app_queue_depth", "Queued items.").Set(3)
	r.FloatGauge("app_round_welfare", "Welfare this round.").Set(41)
	r.GaugeFunc("app_live", "Live things.", func() float64 { return 2 })
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# HELP app_requests_total Requests served.\n# TYPE app_requests_total counter\napp_requests_total 7\n",
		"app_paid_total 12.5\n",
		"# TYPE app_queue_depth gauge\napp_queue_depth 3\n",
		"app_round_welfare 41\n",
		"app_live 2\n",
		"# TYPE app_latency_seconds histogram\n",
		"app_latency_seconds_bucket{le=\"0.1\"} 1\n",
		"app_latency_seconds_bucket{le=\"1\"} 2\n",
		"app_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"app_latency_seconds_sum 5.55\n",
		"app_latency_seconds_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\nfull output:\n%s", want, got)
		}
	}
}

func TestRegistryLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine_calls_total", "Engine calls.", "engine", "cascade").Add(2)
	r.Counter("engine_calls_total", "Engine calls.", "engine", "oracle").Inc()
	h := r.Histogram("op_seconds", "Op latency.", []float64{1}, "op", "tick")
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`engine_calls_total{engine="cascade"} 2`,
		`engine_calls_total{engine="oracle"} 1`,
		`op_seconds_bucket{op="tick",le="1"} 1`,
		`op_seconds_sum{op="tick"} 0.5`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\nfull output:\n%s", want, got)
		}
	}
	// HELP/TYPE headers are emitted once per family, not per label set.
	if n := strings.Count(got, "# TYPE engine_calls_total"); n != 1 {
		t.Errorf("TYPE header emitted %d times, want 1", n)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h")
	b := r.Counter("same_total", "h")
	if a != b {
		t.Fatal("re-registration must return the same instrument")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatal("instruments not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("same_total", "h")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "h", []float64{1, 2})
	h.Observe(1)           // on the boundary: le="1" is inclusive
	h.Observe(1.5)         // le="2"
	h.Observe(3)           // +Inf
	h.Observe(math.Inf(1)) // +Inf
	var sb strings.Builder
	r.WritePrometheus(&sb)
	got := sb.String()
	for _, want := range []string{
		`b_seconds_bucket{le="1"} 1`,
		`b_seconds_bucket{le="2"} 2`,
		`b_seconds_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

// TestRegistryConcurrentUse exercises registration, updates, and
// scrapes under the race detector.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "h")
			h := r.Histogram("conc_seconds", "h", LatencyBuckets)
			g := r.Gauge("conc_depth", "h")
			fc := r.FloatCounter("conc_paid_total", "h")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				g.Add(1)
				fc.Add(0.25)
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sb strings.Builder
			for i := 0; i < 50; i++ {
				sb.Reset()
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "h").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("conc_seconds", "h", LatencyBuckets).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
