package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// shutdownTimeout bounds how long Close waits for in-flight scrapes
// before severing connections.
const shutdownTimeout = 3 * time.Second

// HTTPServer is the live introspection endpoint:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       liveness probe ("ok")
//	/debug/rounds  JSON dump of the tracer's recent ring (?n= limit)
//	/debug/pprof/  the standard pprof handlers
//
// It serves on its own mux (nothing leaks onto http.DefaultServeMux)
// and shuts down gracefully with a deadline.
type HTTPServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// ListenHTTP starts an introspection server on addr ("127.0.0.1:0" for
// an ephemeral test port). reg and tr may be nil; the corresponding
// endpoints then serve empty output.
func ListenHTTP(addr string, reg *Registry, tr *Tracer) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/rounds", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Emitted     uint64  `json:"emitted"`
			RingDropped uint64  `json:"ringDropped"`
			SinkDropped uint64  `json:"sinkDropped"`
			Events      []Event `json:"events"`
		}{tr.Seq(), tr.RingDropped(), tr.SinkDropped(), tr.Recent(n)})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	h := &HTTPServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(h.done)
		h.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	return h, nil
}

// Addr returns the listening address.
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Close shuts the server down gracefully, waiting up to shutdownTimeout
// for in-flight requests, then severing what remains. It does not
// return until the serve goroutine has exited — no goroutine leaks
// under the race detector.
func (h *HTTPServer) Close() error {
	if h == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := h.srv.Shutdown(ctx)
	if err != nil {
		h.srv.Close() // deadline blown: sever
	}
	<-h.done
	return err
}
