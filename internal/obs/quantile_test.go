package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_test_seconds", "test", []float64{1, 2, 4, 8})

	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram must yield NaN")
	}

	// 100 observations uniform in (0, 1]: every quantile lands in the
	// first bucket, interpolated within [0, 1].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 of first bucket = %v, want 0.5", got)
	}

	// Another 100 in (2, 4]: the distribution is now half ≤1, half in
	// (2,4]; p75 interpolates at the (2,4] bucket's midpoint.
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0.75); math.Abs(got-3) > 1e-9 {
		t.Fatalf("p75 = %v, want 3", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want 0", got)
	}

	// Observations past the last bound land in the overflow bucket; the
	// quantile clamps to the last finite bound rather than inventing one.
	h2 := reg.Histogram("q_test_overflow_seconds", "test", []float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Fatalf("overflow p99 = %v, want last bound 2", got)
	}

	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Fatal("nil histogram must yield NaN")
	}
}
