// Package obs is dynacrowd's zero-dependency observability subsystem:
// a concurrent metrics registry rendered in Prometheus text exposition
// format, a structured auction-event tracer backed by a bounded
// lock-free ring buffer with pluggable sinks, and an optional HTTP
// introspection server (/metrics, /healthz, /debug/rounds, pprof).
//
// Every instrument method is safe on a nil receiver and does nothing,
// so instrumented hot paths stay allocation-free — and within
// measurement noise — when observability is disabled: callers hold
// plain instrument pointers and never branch on an "enabled" flag for
// counter updates. Only latency timing (which needs time.Now) should be
// gated on a nil check by the caller.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; all methods are nil-safe no-ops.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float metric (sums of
// payments, welfare). The zero value is ready to use.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v (CAS loop; contention on these is scrape-rare).
func (c *FloatCounter) Add(v float64) {
	if c == nil || v == 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current sum.
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable integer metric (queue depths, current slot).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a settable float metric (per-round welfare).
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta.
func (g *FloatGauge) Add(delta float64) {
	if g == nil || delta == 0 {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic hot paths. Bucket i
// counts observations ≤ bounds[i]; one extra bucket catches the +Inf
// tail. Rendered as a Prometheus histogram (cumulative buckets, _sum,
// _count).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    FloatCounter
	count  atomic.Uint64
}

// LatencyBuckets spans 1µs to 10s, the range of everything this module
// times: a cascade payment prices in microseconds, an offline Hungarian
// solve or a full figure sweep in seconds.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// Observe records v. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (~20) and the comparison loop
	// is branch-predictable; binary search only wins for >64 buckets.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution from the bucket counts, interpolating linearly inside
// the bucket the quantile falls in — the same estimate a Prometheus
// histogram_quantile() would give. Returns NaN with no observations.
// The snapshot is not atomic across buckets; under concurrent Observe
// traffic the estimate is approximate, which is all a bucketed
// histogram offers anyway.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate toward;
			// the last finite bound is the best (under)estimate.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// kind is the Prometheus metric type of a registry entry.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// entry is one registered time series.
type entry struct {
	name   string // metric family name
	labels string // rendered {k="v",...} suffix, "" if unlabeled
	help   string
	typ    kind
	inst   any // *Counter, *FloatCounter, *Gauge, *FloatGauge, *Histogram, or func() float64
}

// Registry is a concurrent collection of metrics. Registration takes a
// mutex; instrument updates are lock-free atomics. A nil Registry
// returns nil instruments, which are themselves no-ops, so an entire
// instrumentation layer can be disabled by wiring a nil registry.
//
// Registration is idempotent: registering an already-registered
// (name, labels) pair returns the existing instrument, so independent
// subsystems (or consecutive auction rounds) can share one registry.
// Re-registering the same name with a different instrument kind panics.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// renderLabels formats k/v pairs as a Prometheus label set, sorted by
// key for a canonical identity. Panics on an odd pair count (programmer
// error at registration time, never on a hot path).
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].k < pairs[b].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p.k, p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// register returns the instrument for (name, labels), creating it with
// mk on first registration.
func (r *Registry) register(name, help string, typ kind, labels []string, mk func() any) any {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, typ, e.typ))
		}
		return e.inst
	}
	e := &entry{name: name, labels: ls, help: help, typ: typ, inst: mk()}
	r.entries[key] = e
	return e.inst
}

// Counter registers (or fetches) a counter. labels are constant
// key/value pairs ("engine", "cascade").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, labels, func() any { return new(Counter) }).(*Counter)
}

// FloatCounter registers (or fetches) a float counter.
func (r *Registry) FloatCounter(name, help string, labels ...string) *FloatCounter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, labels, func() any { return new(FloatCounter) }).(*FloatCounter)
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, labels, func() any { return new(Gauge) }).(*Gauge)
}

// FloatGauge registers (or fetches) a float gauge.
func (r *Registry) FloatGauge(name, help string, labels ...string) *FloatGauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, labels, func() any { return new(FloatGauge) }).(*FloatGauge)
}

// Histogram registers (or fetches) a histogram with the given ascending
// upper bounds (LatencyBuckets fits everything this module times).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, labels, func() any {
		b := append([]float64(nil), bounds...)
		return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	}).(*Histogram)
}

// CounterFunc registers a counter whose value is produced by fn at
// scrape time — the bridge for counters that already live elsewhere as
// atomics (platform stats, pool hit counts) without double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, labels, func() any { return fn })
}

// GaugeFunc registers a gauge computed by fn at scrape time (queue
// depth, live connections).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, labels, func() any { return fn })
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return formatValue(v)
}

// formatValue formats with minimal digits while staying exact for integers.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered metric in text exposition
// format, sorted by name for stable scrapes. Safe to call concurrently
// with instrument updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].name != entries[b].name {
			return entries[a].name < entries[b].name
		}
		return entries[a].labels < entries[b].labels
	})

	var sb strings.Builder
	lastFamily := ""
	for _, e := range entries {
		if e.name != lastFamily {
			fmt.Fprintf(&sb, "# HELP %s %s\n", e.name, strings.ReplaceAll(e.help, "\n", " "))
			fmt.Fprintf(&sb, "# TYPE %s %s\n", e.name, e.typ)
			lastFamily = e.name
		}
		switch inst := e.inst.(type) {
		case *Counter:
			fmt.Fprintf(&sb, "%s%s %d\n", e.name, e.labels, inst.Value())
		case *FloatCounter:
			fmt.Fprintf(&sb, "%s%s %s\n", e.name, e.labels, fmtFloat(inst.Value()))
		case *Gauge:
			fmt.Fprintf(&sb, "%s%s %d\n", e.name, e.labels, inst.Value())
		case *FloatGauge:
			fmt.Fprintf(&sb, "%s%s %s\n", e.name, e.labels, fmtFloat(inst.Value()))
		case func() float64:
			fmt.Fprintf(&sb, "%s%s %s\n", e.name, e.labels, fmtFloat(inst()))
		case *Histogram:
			writeHistogram(&sb, e, inst)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeHistogram renders one histogram family member with cumulative
// le buckets. Bucket counts are read low-to-high after count, so the
// cumulative series a concurrent scrape sees is never decreasing.
func writeHistogram(sb *strings.Builder, e *entry, h *Histogram) {
	inner := strings.TrimSuffix(strings.TrimPrefix(e.labels, "{"), "}")
	sep := ""
	if inner != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket{%s%sle=%q} %d\n", e.name, inner, sep, fmtFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(sb, "%s_bucket{%s%sle=\"+Inf\"} %d\n", e.name, inner, sep, cum)
	fmt.Fprintf(sb, "%s_sum%s %s\n", e.name, e.labels, fmtFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", e.name, e.labels, cum)
}
