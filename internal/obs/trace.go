package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventType names a structured auction event.
type EventType string

// The auction event vocabulary. Producers (internal/platform) emit
// these; /debug/rounds and the JSONL sink expose them.
const (
	EventRoundOpen   EventType = "round_open"
	EventRoundClose  EventType = "round_close"
	EventBidAccepted EventType = "bid_accepted"
	EventBidRejected EventType = "bid_rejected"
	EventAllocation  EventType = "allocation"
	EventPayment     EventType = "payment"
	EventDeparture   EventType = "departure"
	EventSnapshot    EventType = "snapshot"
	EventRestore     EventType = "restore"
	// Completion-lifecycle events: a winner reported its task done, a
	// winner's completion deadline lapsed, its task was re-allocated to
	// a replacement, and an already-issued payment was revoked.
	EventTaskCompleted   EventType = "task_completed"
	EventWinnerDefaulted EventType = "winner_defaulted"
	EventReallocation    EventType = "task_reallocated"
	EventClawback        EventType = "clawback"
	// EventShardMerge is emitted by the sharded engine's coordinator
	// once per allocated slot, with pull/assignment counts in Detail.
	EventShardMerge EventType = "shard_merge"
	// EventShardRPC is emitted by the distributed coordinator
	// (internal/dshard) once per allocated slot, with per-slot RPC
	// round-trip and reseed counts in Detail.
	EventShardRPC EventType = "shard_rpc"
	// EventBudgetStage is emitted by the budgeted engine
	// (internal/budget) when a sampling-accept stage opens, with the
	// stage index, allowance, threshold, sample size, and reserved
	// spend in Detail (Amount carries the raw threshold).
	EventBudgetStage EventType = "budget_stage"
)

// Event is one structured trace record. Phone and Task are only
// meaningful for event types that concern a phone or task (IDs are
// 0-based, so their zero value is a real ID; consult Type).
type Event struct {
	Time    time.Time `json:"time"`
	Type    EventType `json:"type"`
	Round   int       `json:"round,omitempty"`
	Slot    int       `json:"slot,omitempty"`
	Phone   int       `json:"phone"`
	Task    int       `json:"task"`
	Cost    float64   `json:"cost,omitempty"`
	Amount  float64   `json:"amount,omitempty"`
	Welfare float64   `json:"welfare,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// Sink consumes trace events off the auction goroutine. WriteEvent is
// called from a single drainer goroutine per Tracer, so sinks need no
// internal locking against the tracer (only against their own readers).
type Sink interface {
	WriteEvent(*Event) error
	Close() error
}

// Tracer records auction events into a bounded lock-free ring buffer
// and forwards them to its sinks through a buffered channel. Emit never
// blocks: when the ring wraps, the oldest event is overwritten and the
// ring-dropped counter increments; when the sink channel is full, the
// event is kept in the ring but not forwarded, and the sink-dropped
// counter increments. A nil *Tracer is a no-op.
type Tracer struct {
	cells []atomic.Pointer[Event]
	mask  uint64

	head        atomic.Uint64 // events ever emitted
	ringDropped atomic.Uint64 // overwritten before a Recent could see them
	sinkDropped atomic.Uint64 // not forwarded because the channel was full

	sinks []Sink
	ch    chan *Event
	quit  chan struct{}
	done  chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// NewTracer creates a tracer whose ring holds the most recent
// `capacity` events (rounded up to a power of two; min 16). Sinks, if
// any, are drained by a background goroutine until Close.
func NewTracer(capacity int, sinks ...Sink) *Tracer {
	size := 16
	for size < capacity {
		size <<= 1
	}
	tr := &Tracer{
		cells: make([]atomic.Pointer[Event], size),
		mask:  uint64(size - 1),
		sinks: sinks,
	}
	if len(sinks) > 0 {
		tr.ch = make(chan *Event, size)
		tr.quit = make(chan struct{})
		tr.done = make(chan struct{})
		go tr.drain()
	}
	return tr
}

// Emit records ev, stamping Time if unset. Never blocks; nil-safe.
func (tr *Tracer) Emit(ev Event) {
	if tr == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	e := &ev
	seq := tr.head.Add(1) - 1
	if seq >= uint64(len(tr.cells)) {
		tr.ringDropped.Add(1)
	}
	tr.cells[seq&tr.mask].Store(e)
	if tr.ch != nil {
		select {
		case tr.ch <- e:
		default:
			tr.sinkDropped.Add(1)
		}
	}
}

// drain forwards ring events to the sinks until Close, then flushes
// whatever is still queued and closes the sinks.
func (tr *Tracer) drain() {
	defer close(tr.done)
	write := func(e *Event) {
		for _, s := range tr.sinks {
			s.WriteEvent(e) // a failing sink drops its own events
		}
	}
	for {
		select {
		case e := <-tr.ch:
			write(e)
		case <-tr.quit:
			for {
				select {
				case e := <-tr.ch:
					write(e)
				default:
					for _, s := range tr.sinks {
						if err := s.Close(); err != nil && tr.closeErr == nil {
							tr.closeErr = err
						}
					}
					return
				}
			}
		}
	}
}

// Seq returns the number of events ever emitted.
func (tr *Tracer) Seq() uint64 {
	if tr == nil {
		return 0
	}
	return tr.head.Load()
}

// RingDropped returns how many events were overwritten in the ring
// (oldest-first) before being dumpable.
func (tr *Tracer) RingDropped() uint64 {
	if tr == nil {
		return 0
	}
	return tr.ringDropped.Load()
}

// SinkDropped returns how many events were not forwarded to the sinks
// because the hand-off channel was full (the auction is never blocked
// on a slow sink).
func (tr *Tracer) SinkDropped() uint64 {
	if tr == nil {
		return 0
	}
	return tr.sinkDropped.Load()
}

// Recent returns up to n of the most recent events, oldest first.
// Reads race benignly with concurrent Emits: each cell swap is an
// atomic pointer store, so every returned event is complete, but an
// event overwritten mid-iteration appears as its newer replacement.
func (tr *Tracer) Recent(n int) []Event {
	if tr == nil || n <= 0 {
		return nil
	}
	head := tr.head.Load()
	avail := head
	if avail > uint64(len(tr.cells)) {
		avail = uint64(len(tr.cells))
	}
	if uint64(n) > avail {
		n = int(avail)
	}
	out := make([]Event, 0, n)
	for seq := head - uint64(n); seq < head; seq++ {
		if e := tr.cells[seq&tr.mask].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// Close stops the drainer after flushing queued events and closes the
// sinks. Events emitted concurrently with Close may or may not reach
// the sinks; the ring remains readable. Safe to call more than once.
func (tr *Tracer) Close() error {
	if tr == nil {
		return nil
	}
	tr.closeOnce.Do(func() {
		if tr.quit != nil {
			close(tr.quit)
			<-tr.done
		}
	})
	return tr.closeErr
}

// MemorySink collects events in memory, for tests.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
	closed bool
}

// WriteEvent implements Sink.
func (m *MemorySink) WriteEvent(e *Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, *e)
	return nil
}

// Close implements Sink.
func (m *MemorySink) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Events returns a copy of everything written so far.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Closed reports whether Close was called (i.e. the tracer flushed).
func (m *MemorySink) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// JSONLSink writes one JSON object per line. Writes are buffered;
// Close flushes and, if the underlying writer is an io.Closer, closes
// it too.
type JSONLSink struct {
	w   io.Writer
	buf *bufio.Writer
	enc *json.Encoder
}

// NewJSONLSink wraps w as a JSON-lines sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	buf := bufio.NewWriter(w)
	return &JSONLSink{w: w, buf: buf, enc: json.NewEncoder(buf)}
}

// WriteEvent implements Sink. json.Encoder terminates each event with
// a newline.
func (s *JSONLSink) WriteEvent(e *Event) error { return s.enc.Encode(e) }

// Close implements Sink.
func (s *JSONLSink) Close() error {
	err := s.buf.Flush()
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
