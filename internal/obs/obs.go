package obs

import "sync"

// Options configures New.
type Options struct {
	// Addr is the HTTP introspection listen address; "" disables the
	// HTTP server (the registry and tracer still work in-process).
	Addr string
	// RingSize caps the trace ring (rounded up to a power of two).
	// Zero means 4096.
	RingSize int
	// Sinks receive every traced event via the tracer's drainer
	// goroutine (e.g. a JSONL file). Closed by Observability.Close.
	Sinks []Sink
}

// Observability bundles one deployment's metrics registry, event
// tracer, and optional HTTP server, with a single graceful Close. A nil
// *Observability is fully inert: Reg() returns a nil registry (whose
// instruments are no-ops), Trace does nothing, Close does nothing —
// that is the allocation-free disabled path.
type Observability struct {
	Registry *Registry
	Tracer   *Tracer
	HTTP     *HTTPServer // nil unless Options.Addr was set

	closeOnce sync.Once
	closeErr  error
}

// New builds an Observability: a fresh registry, a tracer over the
// given sinks, self-describing trace metrics, and (if opt.Addr is set)
// a running HTTP server.
func New(opt Options) (*Observability, error) {
	ring := opt.RingSize
	if ring <= 0 {
		ring = 4096
	}
	reg := NewRegistry()
	tr := NewTracer(ring, opt.Sinks...)
	reg.CounterFunc("dynacrowd_trace_events_total",
		"Auction trace events emitted.",
		func() float64 { return float64(tr.Seq()) })
	reg.CounterFunc("dynacrowd_trace_ring_dropped_total",
		"Trace events overwritten in the ring before being dumped (oldest dropped first).",
		func() float64 { return float64(tr.RingDropped()) })
	reg.CounterFunc("dynacrowd_trace_sink_dropped_total",
		"Trace events not forwarded to sinks because the hand-off channel was full.",
		func() float64 { return float64(tr.SinkDropped()) })

	o := &Observability{Registry: reg, Tracer: tr}
	if opt.Addr != "" {
		h, err := ListenHTTP(opt.Addr, reg, tr)
		if err != nil {
			tr.Close()
			return nil, err
		}
		o.HTTP = h
	}
	return o, nil
}

// Reg returns the registry; nil-safe.
func (o *Observability) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Trace emits ev to the tracer; nil-safe, never blocks.
func (o *Observability) Trace(ev Event) {
	if o != nil {
		o.Tracer.Emit(ev)
	}
}

// Close stops the HTTP server (bounded by a deadline) and closes the
// tracer, flushing its sinks. Idempotent and nil-safe; the first error
// wins.
func (o *Observability) Close() error {
	if o == nil {
		return nil
	}
	o.closeOnce.Do(func() {
		if err := o.HTTP.Close(); err != nil {
			o.closeErr = err
		}
		if err := o.Tracer.Close(); err != nil && o.closeErr == nil {
			o.closeErr = err
		}
	})
	return o.closeErr
}
