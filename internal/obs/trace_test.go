package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestTracerRingOverflow pins the ring's overflow semantics: the ring
// keeps the newest `capacity` events, the oldest are dropped, and the
// dropped counter counts exactly the overwritten ones.
func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(16) // no sinks
	for i := 0; i < 40; i++ {
		tr.Emit(Event{Type: EventAllocation, Task: i})
	}
	if got := tr.Seq(); got != 40 {
		t.Fatalf("Seq = %d, want 40", got)
	}
	if got := tr.RingDropped(); got != 24 {
		t.Fatalf("RingDropped = %d, want 24 (40 emitted - 16 capacity)", got)
	}
	recent := tr.Recent(100)
	if len(recent) != 16 {
		t.Fatalf("Recent returned %d events, want the full ring of 16", len(recent))
	}
	for k, ev := range recent {
		if want := 24 + k; ev.Task != want {
			t.Fatalf("recent[%d].Task = %d, want %d (oldest dropped first)", k, ev.Task, want)
		}
	}
	if got := tr.Recent(4); len(got) != 4 || got[3].Task != 39 {
		t.Fatalf("Recent(4) = %+v, want the newest 4 ending at 39", got)
	}
}

func TestTracerStampsTime(t *testing.T) {
	tr := NewTracer(16)
	before := time.Now()
	tr.Emit(Event{Type: EventPayment})
	ev := tr.Recent(1)[0]
	if ev.Time.Before(before) || time.Since(ev.Time) > time.Minute {
		t.Fatalf("Emit did not stamp a sane time: %v", ev.Time)
	}
	explicit := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tr.Emit(Event{Type: EventPayment, Time: explicit})
	if got := tr.Recent(1)[0].Time; !got.Equal(explicit) {
		t.Fatalf("explicit time overwritten: %v", got)
	}
}

func TestTracerSinkDelivery(t *testing.T) {
	mem := &MemorySink{}
	tr := NewTracer(64, mem)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: EventBidAccepted, Phone: i})
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	evs := mem.Events()
	if len(evs) != 10 {
		t.Fatalf("sink saw %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Phone != i {
			t.Fatalf("sink event %d has phone %d", i, ev.Phone)
		}
	}
	if !mem.Closed() {
		t.Fatal("tracer Close must close its sinks")
	}
	if err := tr.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}

// blockingSink blocks every write until released, simulating a wedged
// file or pipe.
type blockingSink struct {
	release chan struct{}
	wrote   chan struct{} // signals the first write started
	once    sync.Once
}

func (b *blockingSink) WriteEvent(*Event) error {
	b.once.Do(func() { close(b.wrote) })
	<-b.release
	return nil
}
func (b *blockingSink) Close() error { return nil }

// TestTracerNeverBlocksOnSlowSink: a wedged sink must not stall Emit —
// events overflow the hand-off channel, the sink-dropped counter
// increments, and the ring still records everything.
func TestTracerNeverBlocksOnSlowSink(t *testing.T) {
	sink := &blockingSink{release: make(chan struct{}), wrote: make(chan struct{})}
	tr := NewTracer(16, sink) // channel capacity == ring size (16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// 1 being written (wedged) + 16 queued + the rest dropped.
		for i := 0; i < 100; i++ {
			tr.Emit(Event{Type: EventAllocation, Task: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a wedged sink")
	}
	<-sink.wrote
	if got := tr.SinkDropped(); got == 0 {
		t.Fatal("sink-dropped counter did not increment")
	}
	if got := tr.Seq(); got != 100 {
		t.Fatalf("ring Seq = %d, want all 100 recorded", got)
	}
	close(sink.release)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTracerConcurrentEmit exercises the lock-free ring under the race
// detector: concurrent emitters and readers.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Type: EventPayment, Phone: w, Task: i})
			}
		}(w)
	}
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, ev := range tr.Recent(64) {
					if ev.Type != EventPayment {
						t.Error("torn event read")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Seq(); got != 2000 {
		t.Fatalf("Seq = %d, want 2000", got)
	}
	if got := tr.RingDropped(); got != 2000-64 {
		t.Fatalf("RingDropped = %d, want %d", got, 2000-64)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(16, sink)
	tr.Emit(Event{Type: EventPayment, Phone: 3, Amount: 12.5, Slot: 7, Round: 1})
	tr.Emit(Event{Type: EventRoundClose, Round: 1, Welfare: 99})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var ev Event
	if err := json.Unmarshal(lines[0], &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventPayment || ev.Phone != 3 || ev.Amount != 12.5 || ev.Slot != 7 {
		t.Fatalf("decoded %+v", ev)
	}
}
