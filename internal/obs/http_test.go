package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHTTPServerEndpoints(t *testing.T) {
	o, err := New(Options{Addr: "127.0.0.1:0", RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	o.Registry.Counter("demo_total", "Demo.").Add(5)
	o.Trace(Event{Type: EventRoundOpen, Round: 1})
	o.Trace(Event{Type: EventPayment, Phone: 2, Amount: 30, Slot: 4, Round: 1})

	base := "http://" + o.HTTP.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"demo_total 5",
		"dynacrowd_trace_events_total 2",
		"dynacrowd_trace_ring_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/rounds?n=10")
	if code != http.StatusOK {
		t.Fatalf("/debug/rounds = %d", code)
	}
	var dump struct {
		Emitted uint64  `json:"emitted"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("bad /debug/rounds JSON: %v\n%s", err, body)
	}
	if dump.Emitted != 2 || len(dump.Events) != 2 {
		t.Fatalf("dump = %+v", dump)
	}
	if dump.Events[1].Type != EventPayment || dump.Events[1].Amount != 30 {
		t.Fatalf("dump events = %+v", dump.Events)
	}

	if code, _ := get(t, base+"/debug/rounds?n=junk"); code != http.StatusBadRequest {
		t.Fatalf("bad n accepted: %d", code)
	}
	if code, body := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

// TestHTTPServerCloseStopsServing verifies the graceful shutdown path:
// Close returns only after the serve goroutine has exited and the
// listener no longer accepts.
func TestHTTPServerCloseStopsServing(t *testing.T) {
	o, err := New(Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := o.HTTP.Addr()
	if code, _ := get(t, fmt.Sprintf("http://%s/healthz", addr)); code != http.StatusOK {
		t.Fatal("server not serving before Close")
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("server still serving after Close")
	}
	if err := o.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}
