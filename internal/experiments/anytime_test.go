package experiments

import "testing"

func TestRunAnytime(t *testing.T) {
	base := tinyBase()
	fig, err := RunAnytime(Options{Seeds: 4, BaseSeed: 11, Scenario: base})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(fig.Series))
	}
	ratio := fig.Series[0]
	if len(ratio.Points) == 0 {
		t.Fatal("no ratio points")
	}
	for _, p := range ratio.Points {
		if p.Summary.Mean < 0.5-1e-9 || p.Summary.Mean > 1+1e-9 {
			t.Fatalf("anytime ratio %.3f at slot %g outside [0.5, 1]", p.Summary.Mean, p.X)
		}
		// Per-seed worst case must also respect Theorem 6.
		if p.Summary.Min < 0.5-1e-9 {
			t.Fatalf("worst-case anytime ratio %.3f at slot %g below the guarantee", p.Summary.Min, p.X)
		}
	}
}

func TestRunAnytimePropagatesErrors(t *testing.T) {
	bad := tinyBase()
	bad.MeanCost = -1
	if _, err := RunAnytime(Options{Seeds: 2, Scenario: bad}); err == nil {
		t.Fatal("want error")
	}
}
