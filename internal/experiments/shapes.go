package experiments

import (
	"fmt"

	"dynacrowd/internal/stats"
)

// ShapeReport records whether the qualitative findings the paper states
// for a figure hold in a run. Absolute values are not comparable (the
// paper's ν is unknown); these shape properties are (see DESIGN.md §4).
type ShapeReport struct {
	Figure     string
	Checks     []string // human-readable pass lines
	Violations []string // human-readable failures
}

// OK reports whether every shape check passed.
func (r ShapeReport) OK() bool { return len(r.Violations) == 0 }

// CheckShapes evaluates the per-figure expectations from the paper's
// Section VI prose against executed sweep results.
func CheckShapes(results []*Result) []ShapeReport {
	var out []ShapeReport
	for _, r := range results {
		w := ShapeReport{Figure: r.Sweep.Figures[0]}
		checkDominance(&w, r.Welfare, "offline welfare ≥ online welfare")
		checkHalf(&w, r.Welfare)
		switch r.Sweep.Name {
		case "slots", "phone-rate":
			checkMonotone(&w, r.Welfare, +1)
		case "cost":
			checkMonotone(&w, r.Welfare, -1)
		}
		out = append(out, w)

		o := ShapeReport{Figure: r.Sweep.Figures[1]}
		// The paper draws offline σ visibly above online σ; in this
		// reproduction the two are statistically indistinguishable (see
		// EXPERIMENTS.md), so the check tolerates online exceeding
		// offline by up to 10% rather than enforcing strict dominance.
		checkNearDominance(&o, r.Overpayment, 0.10, "offline σ ≳ online σ (±10%)")
		checkStability(&o, r.Overpayment)
		out = append(out, o)
	}
	return out
}

// checkDominance verifies series[1] (offline) ≥ series[0] (online) at
// every point.
func checkDominance(rep *ShapeReport, f *stats.Figure, label string) {
	on, off := f.Series[0], f.Series[1]
	for i := range on.Points {
		if off.Points[i].Summary.Mean < on.Points[i].Summary.Mean-1e-9 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s violated at x=%g: offline %.3f < online %.3f",
				label, on.Points[i].X, off.Points[i].Summary.Mean, on.Points[i].Summary.Mean))
			return
		}
	}
	rep.Checks = append(rep.Checks, label)
}

// checkNearDominance verifies series[1] (offline) ≥ series[0] (online)
// up to a relative tolerance at every point.
func checkNearDominance(rep *ShapeReport, f *stats.Figure, tol float64, label string) {
	on, off := f.Series[0], f.Series[1]
	for i := range on.Points {
		if off.Points[i].Summary.Mean < on.Points[i].Summary.Mean*(1-tol)-1e-9 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s violated at x=%g: offline %.3f vs online %.3f",
				label, on.Points[i].X, off.Points[i].Summary.Mean, on.Points[i].Summary.Mean))
			return
		}
	}
	rep.Checks = append(rep.Checks, label)
}

// checkStability verifies each series stays within a ±35% band of its
// own mean across the sweep — the paper's "overpayment ratio keeps
// stable" finding.
func checkStability(rep *ShapeReport, f *stats.Figure) {
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			continue
		}
		var sum float64
		for _, p := range s.Points {
			sum += p.Summary.Mean
		}
		mean := sum / float64(len(s.Points))
		for _, p := range s.Points {
			if mean <= 0 {
				continue
			}
			if rel := (p.Summary.Mean - mean) / mean; rel > 0.35 || rel < -0.35 {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"σ not stable: series %s deviates %.0f%% from its sweep mean at x=%g",
					s.Name, rel*100, p.X))
				return
			}
		}
	}
	rep.Checks = append(rep.Checks, "σ stable across the sweep")
}

// checkHalf verifies the competitive ratio: online mean ≥ offline mean/2.
func checkHalf(rep *ShapeReport, f *stats.Figure) {
	on, off := f.Series[0], f.Series[1]
	for i := range on.Points {
		if on.Points[i].Summary.Mean < off.Points[i].Summary.Mean/2-1e-9 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"competitive ratio violated at x=%g: online %.3f < offline/2 %.3f",
				on.Points[i].X, on.Points[i].Summary.Mean, off.Points[i].Summary.Mean/2))
			return
		}
	}
	rep.Checks = append(rep.Checks, "online ≥ offline/2 (Theorem 6)")
}

// checkMonotone verifies each series trends in the given direction
// (+1 increasing, -1 decreasing) from first to last point, tolerating
// local sampling noise of up to 5% of the range.
func checkMonotone(rep *ShapeReport, f *stats.Figure, dir int) {
	label := "welfare increases across the sweep"
	if dir < 0 {
		label = "welfare decreases across the sweep"
	}
	for _, s := range f.Series {
		if len(s.Points) < 2 {
			continue
		}
		lo, hi := s.YRange()
		tol := (hi - lo) * 0.05
		first := s.Points[0].Summary.Mean
		last := s.Points[len(s.Points)-1].Summary.Mean
		if float64(dir)*(last-first) <= 0 {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s: series %s moves from %.3f to %.3f", label, s.Name, first, last))
			return
		}
		for i := 1; i < len(s.Points); i++ {
			if float64(dir)*(s.Points[i].Summary.Mean-s.Points[i-1].Summary.Mean) < -tol {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"%s: series %s reverses at x=%g", label, s.Name, s.Points[i].X))
				return
			}
		}
	}
	rep.Checks = append(rep.Checks, label)
}
