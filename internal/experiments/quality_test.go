package experiments

import "testing"

func TestRunQualitySweep(t *testing.T) {
	fig, err := RunQualitySweep(Options{Seeds: 3, BaseSeed: 9, Scenario: tinyBase()})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(fig.Series))
	}
	cov := fig.Series[0]
	if len(cov.Points) != 8 {
		t.Fatalf("coverage has %d points, want 8 (λ 0.25..2)", len(cov.Points))
	}
	// Coverage is a fraction and must not decrease from the scarcest to
	// the richest supply point.
	for _, p := range cov.Points {
		if p.Summary.Mean < 0 || p.Summary.Mean > 1 {
			t.Fatalf("coverage %g at λ=%g outside [0,1]", p.Summary.Mean, p.X)
		}
	}
	first := cov.Points[0].Summary.Mean
	last := cov.Points[len(cov.Points)-1].Summary.Mean
	if last <= first {
		t.Fatalf("coverage did not grow with supply: %g -> %g", first, last)
	}
}
