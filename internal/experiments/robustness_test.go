package experiments

import (
	"testing"

	"dynacrowd/internal/workload"
)

func TestRobustnessVariantsCoverDistributionsAndProfiles(t *testing.T) {
	vs := RobustnessVariants(workload.DefaultScenario())
	if len(vs) != 6 {
		t.Fatalf("got %d variants", len(vs))
	}
	costs := map[workload.CostDistribution]bool{}
	profiled := 0
	for _, v := range vs {
		costs[v.Scenario.Costs] = true
		if v.Phones != nil || v.Tasks != nil {
			profiled++
		}
	}
	if !costs[workload.CostUniform] || !costs[workload.CostExponential] || !costs[workload.CostNormal] {
		t.Fatal("cost distributions not covered")
	}
	if profiled < 3 {
		t.Fatalf("only %d profiled variants", profiled)
	}
}

func TestRunRobustnessHoldsCoreClaims(t *testing.T) {
	base := tinyBase()
	rows, err := RunRobustness(Options{Seeds: 6, BaseSeed: 4, Scenario: base})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if !row.CompetitiveOK {
			t.Errorf("%s: competitive ratio violated", row.Variant)
		}
		if !row.DominanceOK {
			t.Errorf("%s: offline below online", row.Variant)
		}
		if !row.IndividuallyRat {
			t.Errorf("%s: payments below costs", row.Variant)
		}
		if row.WorstRatio < 0.5 || row.WorstRatio > 1 {
			t.Errorf("%s: worst ratio %g outside [0.5,1]", row.Variant, row.WorstRatio)
		}
		if row.OnlineWelfare.N != 6 {
			t.Errorf("%s: %d samples", row.Variant, row.OnlineWelfare.N)
		}
	}
}

func TestRunRobustnessPropagatesErrors(t *testing.T) {
	bad := tinyBase()
	bad.MeanCost = -1
	if _, err := RunRobustness(Options{Seeds: 2, Scenario: bad}); err == nil {
		t.Fatal("want error")
	}
}
