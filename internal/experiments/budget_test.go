package experiments

import (
	"strings"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// smallBudgetOptions keeps the sweep cheap: counterfactual pricing
// re-runs the round O(log n) times per settled winner, so the test
// shrinks the default scenario instead of thinning seeds only.
func smallBudgetOptions() Options {
	scn := workload.DefaultScenario()
	scn.Slots = 12
	scn.PhoneRate = 3
	scn.TaskRate = 2
	return Options{Seeds: 3, BaseSeed: 7, Scenario: scn}
}

func TestRunBudgetSweep(t *testing.T) {
	opt := smallBudgetOptions()
	res, err := RunBudgetSweep(opt)
	if err != nil {
		t.Fatal(err)
	}

	// 3 sources × (1 unbudgeted row + 3 fractions × 2 engines).
	wantRows := 3 * (1 + len(BudgetFractions)*2)
	if len(res.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(res.Rows), wantRows)
	}
	// 3 sources × (unbudgeted + 2 engines) series.
	if got := len(res.Figure.Series); got != 9 {
		t.Fatalf("got %d figure series, want 9", got)
	}

	scenarios := map[string]bool{}
	for _, row := range res.Rows {
		scenarios[row.Scenario] = true
		if row.Budget == 0 { // unbudgeted reference
			if !strings.Contains(row.Mechanism, "online") {
				t.Errorf("unbudgeted row names %q", row.Mechanism)
			}
			continue
		}
		if row.Payment > row.Budget+1e-9 {
			t.Errorf("%s/%s paid %g over budget %g",
				row.Scenario, row.Mechanism, row.Payment, row.Budget)
		}
		if row.WelfarePerUnit < 0 {
			t.Errorf("%s/%s negative welfare per unit", row.Scenario, row.Mechanism)
		}
	}
	if len(scenarios) < 3 {
		t.Fatalf("sweep covered %d scenarios, want >= 3", len(scenarios))
	}

	// The binding budget (fraction 1/4) must not outspend the loose one
	// in welfare per unit by construction of the rows' denominators; at
	// minimum every budgeted row at the loosest fraction should buy some
	// welfare on these dense rounds.
	var looseWelfare int
	for _, row := range res.Rows {
		if row.Fraction == 1.0 && row.Welfare > 0 {
			looseWelfare++
		}
	}
	if looseWelfare == 0 {
		t.Fatal("no budgeted mechanism bought welfare at the loosest budget")
	}
}

func TestBudgetSourcesCoverZoo(t *testing.T) {
	srcs := BudgetSources(workload.DefaultScenario())
	if len(srcs) < 3 {
		t.Fatalf("want >= 3 sources, got %d", len(srcs))
	}
	seen := map[string]bool{}
	for _, src := range srcs {
		if seen[src.Name] {
			t.Fatalf("duplicate source %q", src.Name)
		}
		seen[src.Name] = true
		in, err := src.Gen(3)
		if err != nil {
			t.Fatalf("%s: %v", src.Name, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: generated invalid instance: %v", src.Name, err)
		}
		if in.Slots < 1 || len(in.Bids) == 0 {
			t.Fatalf("%s: degenerate instance (%d slots, %d bids)", src.Name, in.Slots, len(in.Bids))
		}
		var _ core.Slot = in.Slots
	}
}
