package experiments

import (
	"fmt"

	"dynacrowd/internal/budget"
	"dynacrowd/internal/core"
	"dynacrowd/internal/sim"
	"dynacrowd/internal/stats"
	"dynacrowd/internal/workload"
)

// BudgetSource names one workload-zoo generator for the budget sweep.
// sim.Compare only accepts the base Scenario type, so the budget sweep
// carries its own generator closure to range over the zoo.
type BudgetSource struct {
	Name string
	Gen  func(seed uint64) (*core.Instance, error)
}

// BudgetSources returns the workload-zoo scenarios the budget sweep
// covers: the paper's default round, the thinned heavy-traffic burst
// round, and a rush-hour phone-arrival mixture over the default round.
func BudgetSources(base workload.Scenario) []BudgetSource {
	heavy := workload.HeavyTrafficQuick()
	rush := workload.RushHourProfile{Peak: 3}
	return []BudgetSource{
		{Name: "default", Gen: base.Generate},
		{Name: "heavy-burst", Gen: heavy.Generate},
		{Name: "rush-hour", Gen: func(seed uint64) (*core.Instance, error) {
			return base.GenerateWithProfiles(seed, rush, workload.FlatProfile{})
		}},
	}
}

// BudgetFractions are the swept budget levels, as fractions of the
// unbudgeted online mechanism's mean total payment on the same
// scenario: 1/4 (strongly binding) to 1 (barely binding).
var BudgetFractions = []float64{0.25, 0.5, 1.0}

// BudgetRow is one (scenario, mechanism, budget) cell of the sweep,
// averaged across seeds. Budget is 0 for the unbudgeted reference; its
// WelfarePerUnit divides by what the mechanism actually paid, so every
// row answers "welfare bought per unit of money committed".
type BudgetRow struct {
	Scenario  string
	Mechanism string
	Budget    float64 // B, or 0 for the unbudgeted reference
	Fraction  float64 // B as a fraction of the unbudgeted mean payment

	Welfare        float64 // mean social welfare ω
	Payment        float64 // mean total payment
	ServiceRate    float64 // mean fraction of tasks served
	WelfarePerUnit float64 // mean welfare / budget (or / payment when B = 0)
}

// BudgetSweepResult is the executed welfare-per-budget comparison.
type BudgetSweepResult struct {
	Rows []BudgetRow
	// Figure plots welfare-per-unit against the budget fraction, one
	// series per (scenario, mechanism).
	Figure *stats.Figure
}

// RunBudgetSweep compares the budgeted engines against the unbudgeted
// online greedy across the workload zoo. For each scenario it first
// measures the unbudgeted mechanism's mean payment P, then runs both
// budget engines at B ∈ BudgetFractions·P on the identical instances,
// recording welfare, spend, and welfare-per-unit-committed.
func RunBudgetSweep(opt Options) (*BudgetSweepResult, error) {
	opt = opt.withDefaults()
	seeds := sim.Seeds(opt.BaseSeed, opt.Seeds)
	res := &BudgetSweepResult{
		Figure: &stats.Figure{
			Title:  "Welfare per unit budget vs budget fraction (extension)",
			XLabel: "budget as fraction of unbudgeted payment",
			YLabel: "welfare per unit committed ω/B",
		},
	}

	for _, src := range BudgetSources(opt.Scenario) {
		// Generate every seed's instance once; all mechanisms and budget
		// levels see the identical rounds.
		ins := make([]*core.Instance, len(seeds))
		for i, seed := range seeds {
			in, err := src.Gen(seed)
			if err != nil {
				return nil, fmt.Errorf("budget sweep: %s: %w", src.Name, err)
			}
			ins[i] = in
		}

		online := &core.OnlineMechanism{}
		ref, err := meanMetrics(ins, seeds, online)
		if err != nil {
			return nil, fmt.Errorf("budget sweep: %s: %w", src.Name, err)
		}
		if ref.Payment <= 0 {
			return nil, fmt.Errorf("budget sweep: %s: unbudgeted mechanism paid nothing; cannot scale budgets", src.Name)
		}
		refRow := ref
		refRow.Scenario = src.Name
		refRow.WelfarePerUnit = ref.Welfare / ref.Payment
		res.Rows = append(res.Rows, refRow)
		refSeries := res.Figure.AddSeries(src.Name + "/unbudgeted")

		engines := []budget.Engine{budget.StageSampling{}, budget.Frugal{Coverage: budget.DefaultCoverage}}
		series := make(map[string]*stats.Series, len(engines))
		for _, eng := range engines {
			series[eng.Name()] = res.Figure.AddSeries(src.Name + "/" + eng.Name())
		}

		for _, frac := range BudgetFractions {
			b := frac * ref.Payment
			// The unbudgeted reference replots at every fraction so the
			// figure shows the gap it leaves.
			refSamples := make([]float64, len(ins))
			for i := range refSamples {
				refSamples[i] = ref.Welfare / ref.Payment
			}
			refSeries.Add(frac, refSamples)

			for _, eng := range engines {
				mech := &budget.Mechanism{Budget: b, Engine: eng}
				row, samples, err := budgetPoint(ins, seeds, mech, b)
				if err != nil {
					return nil, fmt.Errorf("budget sweep: %s B=%g: %w", src.Name, b, err)
				}
				row.Scenario = src.Name
				row.Fraction = frac
				res.Rows = append(res.Rows, row)
				series[eng.Name()].Add(frac, samples)
			}
		}
	}
	return res, nil
}

// meanMetrics runs one mechanism over the prepared instances and
// averages the sweep metrics.
func meanMetrics(ins []*core.Instance, seeds []uint64, mech core.Mechanism) (BudgetRow, error) {
	row := BudgetRow{Mechanism: mech.Name()}
	for i, in := range ins {
		m, err := sim.RunInstance(in, seeds[i], mech)
		if err != nil {
			return row, err
		}
		row.Welfare += m.Welfare
		row.Payment += m.TotalPayment
		row.ServiceRate += sim.ServiceRate(m)
	}
	n := float64(len(ins))
	row.Welfare /= n
	row.Payment /= n
	row.ServiceRate /= n
	return row, nil
}

// budgetPoint runs one budgeted mechanism at budget b, checking the
// feasibility invariant on every round and returning the per-seed
// welfare-per-unit samples for the figure.
func budgetPoint(ins []*core.Instance, seeds []uint64, mech core.Mechanism, b float64) (BudgetRow, []float64, error) {
	row := BudgetRow{Mechanism: mech.Name(), Budget: b}
	samples := make([]float64, len(ins))
	for i, in := range ins {
		m, err := sim.RunInstance(in, seeds[i], mech)
		if err != nil {
			return row, nil, err
		}
		if m.TotalPayment > b+1e-9 {
			return row, nil, fmt.Errorf("%s paid %g over budget %g on seed %d",
				mech.Name(), m.TotalPayment, b, seeds[i])
		}
		row.Welfare += m.Welfare
		row.Payment += m.TotalPayment
		row.ServiceRate += sim.ServiceRate(m)
		samples[i] = m.Welfare / b
	}
	n := float64(len(ins))
	row.Welfare /= n
	row.Payment /= n
	row.ServiceRate /= n
	row.WelfarePerUnit = row.Welfare / b
	return row, samples, nil
}
