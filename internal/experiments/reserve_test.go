package experiments

import "testing"

func TestRunReserveSweep(t *testing.T) {
	fig, err := RunReserveSweep(Options{Seeds: 4, BaseSeed: 7, Scenario: tinyBase()})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("want 2 series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 9 {
			t.Fatalf("series %s has %d points, want 9 (ν̂/ν from 0.2 to 1.0)", s.Name, len(s.Points))
		}
	}
	// At the full reserve (ν̂ = ν), profit = welfare − overpayment ≥ 0
	// in expectation; and at very low reserves profit collapses toward 0
	// because almost nothing is served. Check the sweep is not constant.
	for _, s := range fig.Series {
		lo, hi := s.YRange()
		if hi-lo < 1e-9 {
			t.Fatalf("series %s is flat — the reserve had no effect", s.Name)
		}
	}
}

func TestRunReserveSweepPropagatesErrors(t *testing.T) {
	bad := tinyBase()
	bad.MeanCost = -1
	if _, err := RunReserveSweep(Options{Seeds: 2, Scenario: bad}); err == nil {
		t.Fatal("want error")
	}
}
