package experiments

import (
	"fmt"

	"dynacrowd/internal/baseline"
	"dynacrowd/internal/core"
	"dynacrowd/internal/sim"
	"dynacrowd/internal/stats"
)

// BaselineResult compares the paper's mechanisms against the reference
// mechanisms from internal/baseline across the slots sweep — an
// extension figure not in the paper, quantifying what truthfulness and
// optimal matching each cost or buy.
type BaselineResult struct {
	Welfare     *stats.Figure
	Overpayment *stats.Figure
}

// RunBaselines executes the comparison. Mechanism order: online,
// offline, second-price, first-price, random, greedy-by-cost,
// posted-price (at the reserve-optimal ν/2), adaptive-posted-price.
func RunBaselines(opt Options) (*BaselineResult, error) {
	opt = opt.withDefaults()
	mechs := []core.Mechanism{
		&core.OnlineMechanism{},
		&core.OfflineMechanism{},
		&baseline.SecondPricePerSlot{},
		&baseline.FirstPricePerSlot{},
		&baseline.Random{Seed: int64(opt.BaseSeed)},
		&baseline.GreedyByCost{},
		&baseline.PostedPrice{Price: opt.Scenario.Value / 2},
		&baseline.AdaptivePostedPrice{},
	}
	seeds := sim.Seeds(opt.BaseSeed, opt.Seeds)

	res := &BaselineResult{
		Welfare: &stats.Figure{
			Title:  "Social welfare vs number of slots m — all mechanisms (extension)",
			XLabel: "number of slots m", YLabel: "social welfare ω",
		},
		Overpayment: &stats.Figure{
			Title:  "Overpayment ratio vs number of slots m — all mechanisms (extension)",
			XLabel: "number of slots m", YLabel: "overpayment ratio σ",
		},
	}
	var wSeries, oSeries []*stats.Series
	for _, m := range mechs {
		wSeries = append(wSeries, res.Welfare.AddSeries(m.Name()))
		oSeries = append(oSeries, res.Overpayment.AddSeries(m.Name()))
	}

	for _, pt := range SlotsSweep(opt.Scenario).Points {
		reps, err := sim.Compare(pt.Scenario, seeds, mechs, opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("baselines at m=%g: %w", pt.X, err)
		}
		for mi := range mechs {
			wSeries[mi].Add(pt.X, sim.Column(reps, mi, sim.Welfare))
			oSeries[mi].Add(pt.X, sim.Column(reps, mi, sim.OverpaymentRatio))
		}
	}
	return res, nil
}
