package experiments

import (
	"strings"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/stats"
	"dynacrowd/internal/workload"
)

// tinyBase keeps test sweeps fast on one core.
func tinyBase() workload.Scenario {
	s := workload.DefaultScenario()
	s.Slots = 12
	s.PhoneRate = 3
	s.TaskRate = 1.5
	return s
}

// tinySweep trims a sweep to its first two points.
func tinySweep(sw Sweep) Sweep {
	sw.Points = sw.Points[:2]
	return sw
}

func TestSweepDefinitionsCoverPaperFigures(t *testing.T) {
	sweeps := Sweeps(workload.DefaultScenario())
	if len(sweeps) != 3 {
		t.Fatalf("got %d sweeps", len(sweeps))
	}
	want := map[string][2]float64{ // figure -> first/last x
		"slots":      {30, 80},
		"phone-rate": {4, 8},
		"cost":       {10, 50},
	}
	figures := map[string]bool{}
	for _, sw := range sweeps {
		r, ok := want[sw.Name]
		if !ok {
			t.Fatalf("unexpected sweep %q", sw.Name)
		}
		if sw.Points[0].X != r[0] || sw.Points[len(sw.Points)-1].X != r[1] {
			t.Fatalf("sweep %s spans [%g,%g], want [%g,%g]",
				sw.Name, sw.Points[0].X, sw.Points[len(sw.Points)-1].X, r[0], r[1])
		}
		figures[sw.Figures[0]] = true
		figures[sw.Figures[1]] = true
	}
	for _, id := range []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !figures[id] {
			t.Fatalf("paper figure %s not covered", id)
		}
	}
}

func TestSweepPointsPerturbOnlyTheirParameter(t *testing.T) {
	base := workload.DefaultScenario()
	for _, pt := range SlotsSweep(base).Points {
		s := pt.Scenario
		s.Slots = base.Slots
		if s != base {
			t.Fatalf("slots sweep changed more than m: %+v", pt.Scenario)
		}
	}
	for _, pt := range PhoneRateSweep(base).Points {
		s := pt.Scenario
		s.PhoneRate = base.PhoneRate
		if s != base {
			t.Fatalf("rate sweep changed more than λ: %+v", pt.Scenario)
		}
	}
	for _, pt := range CostSweep(base).Points {
		s := pt.Scenario
		s.MeanCost = base.MeanCost
		if s != base {
			t.Fatalf("cost sweep changed more than c̄: %+v", pt.Scenario)
		}
	}
}

func TestRunSweepSmall(t *testing.T) {
	sw := tinySweep(SlotsSweep(tinyBase()))
	res, err := RunSweep(sw, Options{Seeds: 4, BaseSeed: 3, Scenario: tinyBase()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Welfare.Series) != 2 || len(res.Overpayment.Series) != 2 {
		t.Fatal("figures must hold online and offline series")
	}
	for _, s := range res.Welfare.Series {
		if len(s.Points) != len(sw.Points) {
			t.Fatalf("series %s has %d points, want %d", s.Name, len(s.Points), len(sw.Points))
		}
		for _, p := range s.Points {
			if p.Summary.N != 4 {
				t.Fatalf("point at x=%g has %d samples", p.X, p.Summary.N)
			}
		}
	}
	if len(res.Replications) != len(sw.Points) {
		t.Fatal("raw replications missing")
	}
	// Offline dominates online at every point.
	on, off := res.Welfare.Series[0], res.Welfare.Series[1]
	for i := range on.Points {
		if off.Points[i].Summary.Mean < on.Points[i].Summary.Mean-1e-9 {
			t.Fatalf("offline below online at x=%g", on.Points[i].X)
		}
	}
}

func TestRunSweepPropagatesErrors(t *testing.T) {
	sw := tinySweep(SlotsSweep(tinyBase()))
	sw.Points[0].Scenario.MeanCost = -1
	if _, err := RunSweep(sw, Options{Seeds: 2}); err == nil {
		t.Fatal("want error")
	}
}

func TestFigureByID(t *testing.T) {
	res := &Result{Sweep: SlotsSweep(tinyBase())}
	res.Welfare = &stats.Figure{Title: "w"}
	res.Overpayment = &stats.Figure{Title: "o"}
	all := []*Result{res}
	f, err := FigureByID(all, "fig6")
	if err != nil || f.Title != "w" {
		t.Fatalf("fig6 lookup: %v %v", f, err)
	}
	f, err = FigureByID(all, "fig9")
	if err != nil || f.Title != "o" {
		t.Fatalf("fig9 lookup: %v %v", f, err)
	}
	if _, err := FigureByID(all, "fig99"); err == nil {
		t.Fatal("want unknown-figure error")
	}
}

func TestCheckShapesOnRealRun(t *testing.T) {
	base := tinyBase()
	var results []*Result
	for _, sw := range []Sweep{
		{Name: "slots", XLabel: "m", Figures: [2]string{"fig6", "fig9"},
			Points: []Point{slotPoint(base, 10), slotPoint(base, 20)}},
	} {
		r, err := RunSweep(sw, Options{Seeds: 12, BaseSeed: 5, Scenario: base})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	reports := CheckShapes(results)
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, rep := range reports {
		if !rep.OK() {
			t.Fatalf("%s shape violations: %v", rep.Figure, rep.Violations)
		}
		if len(rep.Checks) == 0 {
			t.Fatalf("%s ran no checks", rep.Figure)
		}
	}
}

func slotPoint(base workload.Scenario, m int) Point {
	s := base
	s.Slots = core.Slot(m)
	return Point{X: float64(m), Scenario: s}
}

// TestCheckShapesFlagsViolations feeds a fabricated inverted result.
func TestCheckShapesFlagsViolations(t *testing.T) {
	r := &Result{Sweep: Sweep{Name: "slots", Figures: [2]string{"fig6", "fig9"}}}
	r.Welfare = fabricated([][2]float64{{10, 5}, {20, 9}})           // offline below online
	r.Overpayment = fabricated([][2]float64{{0.5, 0.9}, {0.5, 0.9}}) // fine
	reports := CheckShapes([]*Result{r})
	if reports[0].OK() {
		t.Fatal("inverted welfare not flagged")
	}
	if !reports[1].OK() {
		t.Fatalf("valid overpayment flagged: %v", reports[1].Violations)
	}
	if !strings.Contains(reports[0].Violations[0], "offline") {
		t.Fatalf("violation text unclear: %q", reports[0].Violations[0])
	}
}

// fabricated builds a two-series figure from (online, offline) means at
// x = 1, 2, ...
func fabricated(points [][2]float64) *stats.Figure {
	f := &stats.Figure{}
	on := f.AddSeries("online")
	off := f.AddSeries("offline")
	for i, p := range points {
		on.Add(float64(i+1), []float64{p[0]})
		off.Add(float64(i+1), []float64{p[1]})
	}
	return f
}
