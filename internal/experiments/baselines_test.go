package experiments

import (
	"testing"
)

func TestRunBaselinesSmall(t *testing.T) {
	base := tinyBase()
	res, err := RunBaselines(Options{Seeds: 3, BaseSeed: 2, Scenario: base})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Welfare.Series) != 8 || len(res.Overpayment.Series) != 8 {
		t.Fatalf("want 8 series, got %d/%d", len(res.Welfare.Series), len(res.Overpayment.Series))
	}
	names := map[string]bool{}
	for _, s := range res.Welfare.Series {
		names[s.Name] = true
	}
	for _, want := range []string{
		"online-greedy", "offline-vcg", "second-price-per-slot",
		"first-price-per-slot", "random", "greedy-by-cost",
		"posted-price-15", "adaptive-posted-price",
	} {
		if !names[want] {
			t.Fatalf("missing series %q", want)
		}
	}
	// Offline dominates everything; first-price has zero overpayment.
	off := res.Welfare.Series[1]
	for si, s := range res.Welfare.Series {
		for pi := range s.Points {
			if s.Points[pi].Summary.Mean > off.Points[pi].Summary.Mean+1e-9 {
				t.Fatalf("series %d beats the optimum at point %d", si, pi)
			}
		}
	}
	for _, p := range res.Overpayment.Series[3].Points { // first-price
		if p.Summary.Mean != 0 {
			t.Fatalf("first-price overpayment %g != 0", p.Summary.Mean)
		}
	}
}

func TestRunBaselinesPropagatesErrors(t *testing.T) {
	bad := tinyBase()
	bad.MeanCost = -1
	if _, err := RunBaselines(Options{Seeds: 2, Scenario: bad}); err == nil {
		t.Fatal("want error")
	}
}
