package experiments

import (
	"fmt"

	"dynacrowd/internal/core"
	"dynacrowd/internal/sim"
	"dynacrowd/internal/stats"
)

// RunReserveSweep studies a knob the paper leaves on the table: the
// platform may *declare* a reserve ν̂ below its true per-task value ν.
// A lower reserve caps every payment (critical values and VCG pivots
// never exceed ν̂) at the price of leaving tasks whose cheapest capable
// phone costs ≥ ν̂ unserved. The platform's profit at true value ν is
//
//	profit(ν̂) = ν·served(ν̂) − payments(ν̂),
//
// and the sweep traces it for both mechanisms, exposing the interior
// optimum. Phone-side truthfulness is unaffected: the mechanisms are
// truthful for any fixed declared value.
func RunReserveSweep(opt Options) (*stats.Figure, error) {
	opt = opt.withDefaults()
	trueValue := opt.Scenario.Value
	seeds := sim.Seeds(opt.BaseSeed, opt.Seeds)

	fig := &stats.Figure{
		Title:  fmt.Sprintf("Platform profit vs declared reserve ν̂ (true ν = %g) — extension", trueValue),
		XLabel: "declared reserve ν̂", YLabel: "platform profit",
	}
	sOn := fig.AddSeries("online")
	sOff := fig.AddSeries("offline")

	mechs := []core.Mechanism{&core.OnlineMechanism{}, &core.OfflineMechanism{}}
	for frac := 0.2; frac <= 1.001; frac += 0.1 {
		declared := trueValue * frac
		scn := opt.Scenario
		scn.Value = declared
		reps, err := sim.Compare(scn, seeds, mechs, opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("reserve sweep at ν̂=%g: %w", declared, err)
		}
		profit := func(m sim.RoundMetrics) float64 {
			return trueValue*float64(m.Served) - m.TotalPayment
		}
		sOn.Add(declared, sim.Column(reps, mechOnline, profit))
		sOff.Add(declared, sim.Column(reps, mechOffline, profit))
	}
	return fig, nil
}
