package experiments

import (
	"fmt"

	"dynacrowd/internal/core"
	"dynacrowd/internal/sim"
	"dynacrowd/internal/stats"
	"dynacrowd/internal/workload"
)

// RobustnessVariant is one workload perturbation: a cost distribution
// and/or time-varying arrival profiles replacing the paper's stationary
// uniform setup.
type RobustnessVariant struct {
	Name     string
	Scenario workload.Scenario
	Phones   workload.RateProfile // nil = flat
	Tasks    workload.RateProfile // nil = flat
}

// RobustnessVariants returns the perturbations checked by the
// robustness experiment: the paper's conclusions (offline ≥ online ≥
// offline/2; payments ≥ costs; σ stable) should not depend on the
// distributional choices its evaluation leaves unstated.
func RobustnessVariants(base workload.Scenario) []RobustnessVariant {
	exp := base
	exp.Costs = workload.CostExponential
	norm := base
	norm.Costs = workload.CostNormal
	return []RobustnessVariant{
		{Name: "paper (uniform, flat)", Scenario: base},
		{Name: "exponential costs", Scenario: exp},
		{Name: "normal costs", Scenario: norm},
		{Name: "diurnal phones", Scenario: base, Phones: workload.DiurnalProfile{Amplitude: 0.8}},
		{Name: "rush-hour tasks", Scenario: base, Tasks: workload.RushHourProfile{Peak: 3}},
		{Name: "rush phones+tasks", Scenario: base,
			Phones: workload.RushHourProfile{Peak: 3}, Tasks: workload.RushHourProfile{Peak: 3}},
	}
}

// RobustnessRow summarizes one variant.
type RobustnessRow struct {
	Variant         string
	OnlineWelfare   stats.Summary
	OfflineWelfare  stats.Summary
	OnlineSigma     stats.Summary
	OfflineSigma    stats.Summary
	WorstRatio      float64 // min over seeds of online/offline welfare
	SigmaTTest      stats.TTestResult
	CompetitiveOK   bool // every seed ≥ 1/2
	DominanceOK     bool // offline ≥ online on every seed
	IndividuallyRat bool // payments ≥ winner costs on every seed/mech
}

// RunRobustness executes every variant and evaluates the paper's core
// claims under each.
func RunRobustness(opt Options) ([]RobustnessRow, error) {
	opt = opt.withDefaults()
	seeds := sim.Seeds(opt.BaseSeed, opt.Seeds)
	var rows []RobustnessRow
	for _, v := range RobustnessVariants(opt.Scenario) {
		row := RobustnessRow{Variant: v.Name, WorstRatio: 1, CompetitiveOK: true, DominanceOK: true, IndividuallyRat: true}
		var wOn, wOff, sOn, sOff []float64
		for _, seed := range seeds {
			in, err := v.Scenario.GenerateWithProfiles(seed, v.Phones, v.Tasks)
			if err != nil {
				return nil, fmt.Errorf("robustness %q: %w", v.Name, err)
			}
			on, err := sim.RunInstance(in, seed, &core.OnlineMechanism{})
			if err != nil {
				return nil, err
			}
			off, err := sim.RunInstance(in, seed, &core.OfflineMechanism{})
			if err != nil {
				return nil, err
			}
			wOn = append(wOn, on.Welfare)
			wOff = append(wOff, off.Welfare)
			sOn = append(sOn, on.OverpaymentRatio)
			sOff = append(sOff, off.OverpaymentRatio)
			if off.Welfare > 0 {
				if r := on.Welfare / off.Welfare; r < row.WorstRatio {
					row.WorstRatio = r
				}
			}
			if on.Welfare < off.Welfare/2-1e-9 {
				row.CompetitiveOK = false
			}
			if off.Welfare < on.Welfare-1e-9 {
				row.DominanceOK = false
			}
			if on.TotalPayment < on.TotalWinnerCost-1e-9 || off.TotalPayment < off.TotalWinnerCost-1e-9 {
				row.IndividuallyRat = false
			}
		}
		row.OnlineWelfare = stats.Summarize(wOn)
		row.OfflineWelfare = stats.Summarize(wOff)
		row.OnlineSigma = stats.Summarize(sOn)
		row.OfflineSigma = stats.Summarize(sOff)
		row.SigmaTTest = stats.WelchTTest(sOn, sOff)
		rows = append(rows, row)
	}
	return rows, nil
}
