// Package experiments defines and runs the paper's evaluation (Section
// VI): three parameter sweeps — round length m (Figs. 6, 9), smartphone
// arrival rate λ (Figs. 7, 10), and average real cost c̄ (Figs. 8, 11) —
// each measuring social welfare and overpayment ratio for the online and
// offline mechanisms on identical workloads. Every paper figure is one
// (sweep, metric) pair; a sweep run therefore regenerates two figures at
// once.
package experiments

import (
	"fmt"

	"dynacrowd/internal/core"
	"dynacrowd/internal/sim"
	"dynacrowd/internal/stats"
	"dynacrowd/internal/workload"
)

// Options controls sweep execution.
type Options struct {
	// Seeds is the number of replications per sweep point (default 20).
	Seeds int
	// BaseSeed derives the replication seeds (default 1).
	BaseSeed uint64
	// Workers bounds parallelism (≤ 0: GOMAXPROCS).
	Workers int
	// Scenario is the baseline configuration each sweep perturbs
	// (zero value: workload.DefaultScenario).
	Scenario workload.Scenario
	// Online substitutes an alternative implementation for the paper's
	// online mechanism in every sweep (nil: core.OnlineMechanism). The
	// sharded engine plugs in here; any substitute must produce the
	// same outcomes as the sequential mechanism for the figures to stay
	// comparable.
	Online core.Mechanism
	// Offline substitutes an alternative implementation for the paper's
	// offline VCG benchmark (nil: core.OfflineMechanism under its
	// default interval engine). Used to pin figures to a specific
	// core.OfflineEngine; all engines produce the same welfare, so this
	// is a performance/differential knob only.
	Offline core.Mechanism
}

func (o Options) withDefaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = 20
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Scenario == (workload.Scenario{}) {
		o.Scenario = workload.DefaultScenario()
	}
	return o
}

// Point is one swept position: the x coordinate and the scenario to run.
type Point struct {
	X        float64
	Scenario workload.Scenario
}

// Sweep is a named list of scenario points over one swept parameter.
type Sweep struct {
	Name    string // "slots", "phone-rate", "cost"
	XLabel  string
	Figures [2]string // paper figure IDs: [welfare, overpayment]
	Points  []Point
}

// SlotsSweep varies the number of slots m (paper Figs. 6 and 9).
func SlotsSweep(base workload.Scenario) Sweep {
	sw := Sweep{Name: "slots", XLabel: "number of slots m", Figures: [2]string{"fig6", "fig9"}}
	for m := 30; m <= 80; m += 10 {
		s := base
		s.Slots = core.Slot(m)
		sw.Points = append(sw.Points, Point{X: float64(m), Scenario: s})
	}
	return sw
}

// PhoneRateSweep varies the smartphone arrival rate λ (Figs. 7 and 10).
func PhoneRateSweep(base workload.Scenario) Sweep {
	sw := Sweep{Name: "phone-rate", XLabel: "arrival rate λ of smartphones", Figures: [2]string{"fig7", "fig10"}}
	for l := 4; l <= 8; l++ {
		s := base
		s.PhoneRate = float64(l)
		sw.Points = append(sw.Points, Point{X: float64(l), Scenario: s})
	}
	return sw
}

// CostSweep varies the average real cost c̄ (Figs. 8 and 11).
func CostSweep(base workload.Scenario) Sweep {
	sw := Sweep{Name: "cost", XLabel: "average of real costs", Figures: [2]string{"fig8", "fig11"}}
	for c := 10; c <= 50; c += 10 {
		s := base
		s.MeanCost = float64(c)
		sw.Points = append(sw.Points, Point{X: float64(c), Scenario: s})
	}
	return sw
}

// Result is one executed sweep: both metric figures plus the raw
// replications for further analysis.
type Result struct {
	Sweep       Sweep
	Welfare     *stats.Figure
	Overpayment *stats.Figure
	ServiceRate *stats.Figure
	// Replications[pointIdx] holds the per-seed comparisons at that point
	// (mechanism order: online, offline).
	Replications [][]sim.Replication
}

// mechanisms returns the two paper mechanisms in figure order,
// honouring the Online and Offline overrides.
func (o Options) mechanisms() []core.Mechanism {
	online := o.Online
	if online == nil {
		online = &core.OnlineMechanism{}
	}
	offline := o.Offline
	if offline == nil {
		offline = &core.OfflineMechanism{}
	}
	return []core.Mechanism{online, offline}
}

const (
	mechOnline = iota
	mechOffline
)

// RunSweep executes every point of the sweep and assembles the figures.
func RunSweep(sw Sweep, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	seeds := sim.Seeds(opt.BaseSeed, opt.Seeds)

	res := &Result{
		Sweep: sw,
		Welfare: &stats.Figure{
			Title:  fmt.Sprintf("Social welfare vs %s (%s)", sw.XLabel, sw.Figures[0]),
			XLabel: sw.XLabel, YLabel: "social welfare ω",
		},
		Overpayment: &stats.Figure{
			Title:  fmt.Sprintf("Overpayment ratio vs %s (%s)", sw.XLabel, sw.Figures[1]),
			XLabel: sw.XLabel, YLabel: "overpayment ratio σ",
		},
		ServiceRate: &stats.Figure{
			Title:  fmt.Sprintf("Service rate vs %s (extension)", sw.XLabel),
			XLabel: sw.XLabel, YLabel: "fraction of tasks served",
		},
	}
	wOn, wOff := res.Welfare.AddSeries("online"), res.Welfare.AddSeries("offline")
	oOn, oOff := res.Overpayment.AddSeries("online"), res.Overpayment.AddSeries("offline")
	sOn, sOff := res.ServiceRate.AddSeries("online"), res.ServiceRate.AddSeries("offline")

	for _, pt := range sw.Points {
		reps, err := sim.Compare(pt.Scenario, seeds, opt.mechanisms(), opt.Workers)
		if err != nil {
			return nil, fmt.Errorf("sweep %s at %g: %w", sw.Name, pt.X, err)
		}
		res.Replications = append(res.Replications, reps)
		wOn.Add(pt.X, sim.Column(reps, mechOnline, sim.Welfare))
		wOff.Add(pt.X, sim.Column(reps, mechOffline, sim.Welfare))
		oOn.Add(pt.X, sim.Column(reps, mechOnline, sim.OverpaymentRatio))
		oOff.Add(pt.X, sim.Column(reps, mechOffline, sim.OverpaymentRatio))
		sOn.Add(pt.X, sim.Column(reps, mechOnline, sim.ServiceRate))
		sOff.Add(pt.X, sim.Column(reps, mechOffline, sim.ServiceRate))
	}
	return res, nil
}

// Sweeps returns the paper's three sweeps against the given base
// scenario.
func Sweeps(base workload.Scenario) []Sweep {
	return []Sweep{SlotsSweep(base), PhoneRateSweep(base), CostSweep(base)}
}

// FigureByID resolves a paper figure ID ("fig6".."fig11") from executed
// sweep results.
func FigureByID(results []*Result, id string) (*stats.Figure, error) {
	for _, r := range results {
		if r.Sweep.Figures[0] == id {
			return r.Welfare, nil
		}
		if r.Sweep.Figures[1] == id {
			return r.Overpayment, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown figure %q", id)
}

// RunAll executes all three sweeps.
func RunAll(opt Options) ([]*Result, error) {
	opt = opt.withDefaults()
	var out []*Result
	for _, sw := range Sweeps(opt.Scenario) {
		r, err := RunSweep(sw, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
