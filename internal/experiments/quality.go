package experiments

import (
	"fmt"

	"dynacrowd/internal/core"
	"dynacrowd/internal/sensing"
	"dynacrowd/internal/stats"
)

// RunQualitySweep connects the auction to the application (Fig. 1,
// end to end): a fixed portfolio of sensing queries is auctioned under
// increasing phone supply, and the figure reports the *data-plane*
// outcome — query coverage — next to the auction's service rate. It
// shows how market thickness becomes map quality, the step the paper's
// evaluation stops short of.
func RunQualitySweep(opt Options) (*stats.Figure, error) {
	opt = opt.withDefaults()
	scn := opt.Scenario
	scn.Slots = 24 // hourly sampling windows

	queries := []sensing.Query{
		{ID: 0, Region: "Riverside", From: 1, To: 24},
		{ID: 1, Region: "Old Town", From: 7, To: 19},
		{ID: 2, Region: "University", From: 9, To: 17},
		{ID: 3, Region: "Docklands", From: 1, To: 12},
		{ID: 4, Region: "Market Square", From: 13, To: 24},
	}

	fig := &stats.Figure{
		Title:  "Query coverage vs phone arrival rate λ (sensing extension)",
		XLabel: "arrival rate λ of smartphones", YLabel: "fraction",
	}
	coverage := fig.AddSeries("query coverage")
	rmse := fig.AddSeries("rmse/10 (scaled)")

	for lambda := 0.25; lambda <= 2.001; lambda += 0.25 {
		var covs, errs []float64
		for s := 0; s < opt.Seeds; s++ {
			seed := opt.BaseSeed + uint64(s)
			supply := scn
			supply.PhoneRate = lambda
			in, err := supply.Generate(seed)
			if err != nil {
				return nil, fmt.Errorf("quality sweep: %w", err)
			}
			truth := sensing.NewGroundTruth(seed^0xabcdef, 1.5)
			res, err := sensing.RunCampaign(scn.Slots, scn.Value, queries, in.Bids, &core.OnlineMechanism{}, truth)
			if err != nil {
				return nil, fmt.Errorf("quality sweep at λ=%g: %w", lambda, err)
			}
			covs = append(covs, res.MeanCoverage)
			errs = append(errs, res.MeanRMSE/10)
		}
		coverage.Add(lambda, covs)
		rmse.Add(lambda, errs)
	}
	return fig, nil
}
