package experiments

import (
	"fmt"

	"dynacrowd/internal/core"
	"dynacrowd/internal/stats"
)

// RunAnytime traces the online mechanism's welfare slot by slot against
// the clairvoyant optimum of the same prefix (bids and tasks that have
// arrived so far) — the "anytime" view of Theorem 6: how far below the
// best-possible the deployed mechanism sits at every instant, not just
// at the end of the round. The offline prefix optimum is recomputed per
// slot, so the run is O(m) Hungarian solves; use moderate m.
func RunAnytime(opt Options) (*stats.Figure, error) {
	opt = opt.withDefaults()
	seeds := make([]uint64, opt.Seeds)
	for i := range seeds {
		seeds[i] = opt.BaseSeed + uint64(i)
	}

	fig := &stats.Figure{
		Title:  "Anytime competitive ratio: online welfare / prefix optimum per slot (extension)",
		XLabel: "slot", YLabel: "welfare ratio",
	}
	ratio := fig.AddSeries("online/optimal")
	guarantee := fig.AddSeries("guarantee")

	m := opt.Scenario.Slots
	perSlot := make([][]float64, m+1)

	for _, seed := range seeds {
		in, err := opt.Scenario.Generate(seed)
		if err != nil {
			return nil, fmt.Errorf("anytime: %w", err)
		}
		oa, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
		if err != nil {
			return nil, err
		}
		tasks := in.TasksPerSlot()
		byArrival := make([][]core.StreamBid, in.Slots+1)
		for _, b := range in.Bids {
			byArrival[b.Arrival] = append(byArrival[b.Arrival], core.StreamBid{Departure: b.Departure, Cost: b.Cost})
		}
		of := &core.OfflineMechanism{}
		for t := core.Slot(1); t <= in.Slots; t++ {
			if _, err := oa.Step(byArrival[t], tasks[t-1]); err != nil {
				return nil, err
			}
			prefix := oa.Instance() // bids and tasks seen so far
			opt, err := of.Welfare(prefix)
			if err != nil {
				return nil, err
			}
			online := oa.Outcome().Welfare
			if opt > 0 {
				perSlot[t] = append(perSlot[t], online/opt)
			}
		}
	}
	for t := core.Slot(1); t <= m; t++ {
		if len(perSlot[t]) == 0 {
			continue
		}
		ratio.Add(float64(t), perSlot[t])
		guarantee.Add(float64(t), []float64{0.5})
	}
	return fig, nil
}
