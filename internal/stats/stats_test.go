package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatal("empty CI must be 0")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.StdDev != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// Sample {2,4,4,4,5,5,7,9}: mean 5, sample variance 32/7.
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean = %g, want 5", s.Mean)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	wantCI := 1.96 * want / math.Sqrt(8)
	if math.Abs(s.CI95()-wantCI) > 1e-12 {
		t.Fatalf("ci = %g, want %g", s.CI95(), wantCI)
	}
	if !strings.Contains(s.String(), "5.000") {
		t.Fatalf("String() = %q", s.String())
	}
}

// TestSummarizeProperties: mean within [min,max]; stddev ≥ 0; invariant
// under permutation.
func TestSummarizeProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 || s.StdDev < 0 {
			return false
		}
		rng.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		s2 := Summarize(xs)
		return math.Abs(s.Mean-s2.Mean) < 1e-9 && math.Abs(s.StdDev-s2.StdDev) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %g", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %g", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestSeriesAddAndRange(t *testing.T) {
	var s Series
	s.Add(1, []float64{10, 12})
	s.Add(2, []float64{20})
	s.Add(3, []float64{5, 5, 5})
	lo, hi := s.YRange()
	if lo != 5 || hi != 20 {
		t.Fatalf("YRange = %g,%g want 5,20", lo, hi)
	}
	var empty Series
	lo, hi = empty.YRange()
	if lo != 0 || hi != 0 {
		t.Fatal("empty range must be 0,0")
	}
}

func buildFigure() *Figure {
	f := &Figure{Title: "Social welfare vs slots", XLabel: "m", YLabel: "welfare"}
	on := f.AddSeries("online")
	off := f.AddSeries("offline")
	for _, m := range []float64{30, 40, 50} {
		on.Add(m, []float64{m * 10, m*10 + 2})
		off.Add(m, []float64{m * 12, m*12 + 2})
	}
	return f
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFigure().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Social welfare vs slots", "m", "online", "offline", "30", "50", "±"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestWriteChart(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFigure().WriteChart(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatalf("chart missing series glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend: o=online x=offline") {
		t.Fatalf("chart missing legend:\n%s", out)
	}
	// The offline series dominates online, so the top row should contain
	// an 'x' and the bottom row an 'o'.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "x") {
		t.Fatalf("top row should hold the max (offline):\n%s", out)
	}
}

func TestWriteChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	f := &Figure{Title: "empty"}
	if err := f.WriteChart(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty figure must say so")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFigure().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if lines[0] != "m,online_mean,online_ci95,offline_mean,offline_ci95" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "30,") {
		t.Fatalf("first row = %q", lines[1])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 4 {
			t.Fatalf("row %q has %d commas, want 4", line, got)
		}
	}
}

func TestChartSingletonRanges(t *testing.T) {
	f := &Figure{Title: "flat", XLabel: "x", YLabel: "y"}
	s := f.AddSeries("s")
	s.Add(5, []float64{1})
	var buf bytes.Buffer
	if err := f.WriteChart(&buf, 20, 6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "o") {
		t.Fatal("single point must still render")
	}
}
