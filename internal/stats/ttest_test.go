package stats

import (
	"math"
	"math/rand"
	"testing"
)

func normalSample(rng *rand.Rand, n int, mean, sd float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mean + sd*rng.NormFloat64()
	}
	return xs
}

func TestWelchDetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := normalSample(rng, 50, 10, 1)
	b := normalSample(rng, 50, 12, 1)
	res := WelchTTest(a, b)
	if !res.Distinguishable(0.05) {
		t.Fatalf("clear difference not detected: %+v", res)
	}
	if res.T >= 0 {
		t.Fatalf("sign wrong: mean(a) < mean(b) should give negative t, got %g", res.T)
	}
}

func TestWelchAcceptsEqualMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rejections := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		a := normalSample(rng, 30, 5, 2)
		b := normalSample(rng, 30, 5, 2)
		if WelchTTest(a, b).Distinguishable(0.05) {
			rejections++
		}
	}
	// Under the null, ~5% false rejections; allow a wide band.
	if rejections > 15 {
		t.Fatalf("rejected equal means %d/%d times", rejections, trials)
	}
}

func TestWelchUnequalVariances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := normalSample(rng, 40, 10, 0.5)
	b := normalSample(rng, 12, 10.1, 8)
	res := WelchTTest(a, b)
	// High-variance small sample: must NOT claim a difference.
	if res.Distinguishable(0.05) {
		t.Fatalf("overconfident under unequal variance: %+v", res)
	}
	if res.DF <= 0 || math.IsNaN(res.DF) {
		t.Fatalf("bad degrees of freedom %g", res.DF)
	}
}

func TestWelchDegenerateInputs(t *testing.T) {
	if res := WelchTTest(nil, []float64{1, 2}); res.P != 1 {
		t.Fatalf("tiny samples must be indistinguishable, got %+v", res)
	}
	if res := WelchTTest([]float64{3, 3, 3}, []float64{3, 3, 3}); res.P != 1 {
		t.Fatalf("identical constant samples: %+v", res)
	}
	res := WelchTTest([]float64{3, 3, 3}, []float64{4, 4, 4})
	if res.P != 0 || !math.IsInf(res.T, 1) && !math.IsInf(res.T, -1) {
		t.Fatalf("distinct constant samples: %+v", res)
	}
}

func TestNormalCDFAnchors(t *testing.T) {
	for _, tc := range []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
	} {
		if got := normalCDF(tc.x); math.Abs(got-tc.want) > 1e-3 {
			t.Fatalf("Φ(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}
