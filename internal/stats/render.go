package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Figure is a set of series over the same swept parameter — the in-memory
// form of one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries appends a named series and returns it for population.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// WriteTable renders the figure as an aligned ASCII table: one row per
// swept value, one "mean ± ci" column per series.
func (f *Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for i := range f.xValues() {
		row := []string{trimFloat(f.xValues()[i])}
		for _, s := range f.Series {
			if i < len(s.Points) {
				row = append(row, s.Points[i].Summary.String())
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[c]))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
		if ri == 0 {
			if _, err := fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*(len(widths)-1))); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteChart renders the figure as an ASCII line chart (mean values),
// one glyph per series, with the y-axis auto-scaled across all series.
func (f *Figure) WriteChart(w io.Writer, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	xs := f.xValues()
	if len(xs) == 0 || len(f.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", f.Title)
		return err
	}
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		lo, hi := s.YRange()
		yLo = math.Min(yLo, lo)
		yHi = math.Max(yHi, hi)
	}
	if yHi == yLo {
		yHi = yLo + 1
	}
	xLo, xHi := xs[0], xs[len(xs)-1]
	if xHi == xLo {
		xHi = xLo + 1
	}

	glyphs := []byte{'o', 'x', '+', '*', '#', '@'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			col := int(math.Round((p.X - xLo) / (xHi - xLo) * float64(width-1)))
			row := height - 1 - int(math.Round((p.Summary.Mean-yLo)/(yHi-yLo)*float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = g
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8s", trimFloat(yHi))
		case height - 1:
			label = fmt.Sprintf("%8s", trimFloat(yLo))
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s  %-*s%s  (%s)\n", "", width-len(trimFloat(xHi)), trimFloat(xLo), trimFloat(xHi), f.XLabel); err != nil {
		return err
	}
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%8s  legend: %s; y=%s\n", "", strings.Join(legend, " "), f.YLabel)
	return err
}

// WriteCSV emits the figure as CSV: x, then mean and ci95 per series.
func (f *Figure) WriteCSV(w io.Writer) error {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name+"_mean", s.Name+"_ci95")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	xs := f.xValues()
	for i := range xs {
		row := []string{trimFloat(xs[i])}
		for _, s := range f.Series {
			if i < len(s.Points) {
				row = append(row,
					fmt.Sprintf("%.6g", s.Points[i].Summary.Mean),
					fmt.Sprintf("%.6g", s.Points[i].Summary.CI95()))
			} else {
				row = append(row, "", "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// xValues returns the swept values of the longest series.
func (f *Figure) xValues() []float64 {
	var xs []float64
	for _, s := range f.Series {
		if len(s.Points) > len(xs) {
			xs = xs[:0]
			for _, p := range s.Points {
				xs = append(xs, p.X)
			}
		}
	}
	return xs
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
