package stats

import "math"

// TTestResult is the outcome of Welch's two-sample t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value (normal approximation to the t CDF)
}

// WelchTTest compares the means of two independent samples without
// assuming equal variances. The experiment harness uses it to decide
// whether two mechanisms' metrics are statistically distinguishable
// (e.g. the online vs offline overpayment ratios in EXPERIMENTS.md).
// The p-value uses the normal approximation, which is accurate to a few
// percent for the ≥ 20-sample runs the harness performs; callers with
// tiny samples should treat P as indicative.
func WelchTTest(a, b []float64) TTestResult {
	sa, sb := Summarize(a), Summarize(b)
	if sa.N < 2 || sb.N < 2 {
		return TTestResult{P: 1}
	}
	va := sa.StdDev * sa.StdDev / float64(sa.N)
	vb := sb.StdDev * sb.StdDev / float64(sb.N)
	if va+vb == 0 {
		if sa.Mean == sb.Mean {
			return TTestResult{P: 1}
		}
		return TTestResult{T: math.Inf(1), P: 0}
	}
	t := (sa.Mean - sb.Mean) / math.Sqrt(va+vb)
	df := (va + vb) * (va + vb) /
		(va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	p := 2 * (1 - normalCDF(math.Abs(t)))
	return TTestResult{T: t, DF: df, P: p}
}

// Distinguishable reports whether the test rejects equal means at the
// given significance level (e.g. 0.05).
func (r TTestResult) Distinguishable(alpha float64) bool { return r.P < alpha }

// normalCDF is Φ(x) via the complementary error function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
