// Package stats provides the descriptive statistics and lightweight
// rendering used by the experiment harness: per-point sample summaries
// (mean, deviation, 95% confidence interval), labelled series keyed by a
// swept parameter, and ASCII table / chart / CSV output so every paper
// figure can be regenerated without a plotting stack.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1)
	Min    float64
	Max    float64
}

// Summarize computes a Summary of the given observations. An empty input
// yields the zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean, using the normal approximation (sample counts in the harness are
// ≥ 20, where the t correction is negligible).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci95".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.CI95())
}

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It sorts a copy of the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Point is one swept-parameter position in a series with its sample
// summary across seeds.
type Point struct {
	X       float64
	Summary Summary
}

// Series is a named line in a figure: one Point per swept value.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point summarizing the samples at x.
func (s *Series) Add(x float64, samples []float64) {
	s.Points = append(s.Points, Point{X: x, Summary: Summarize(samples)})
}

// YRange returns the min and max of mean values across the series.
func (s *Series) YRange() (lo, hi float64) {
	if len(s.Points) == 0 {
		return 0, 0
	}
	lo, hi = s.Points[0].Summary.Mean, s.Points[0].Summary.Mean
	for _, p := range s.Points[1:] {
		if p.Summary.Mean < lo {
			lo = p.Summary.Mean
		}
		if p.Summary.Mean > hi {
			hi = p.Summary.Mean
		}
	}
	return lo, hi
}
