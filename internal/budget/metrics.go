package budget

import (
	"dynacrowd/internal/obs"
)

// Metrics is the budgeted engine's observability bundle. All
// instruments are nil-safe, so a nil *Metrics (or a nil registry)
// disables instrumentation at zero cost.
type Metrics struct {
	// Remaining is the uncommitted budget B − reserved
	// (dynacrowd_budget_remaining).
	Remaining *obs.FloatGauge
	// Stage is the current stage index, 1..K
	// (dynacrowd_budget_stage).
	Stage *obs.Gauge
	// StageThreshold is the current stage's raw full-sample threshold
	// (dynacrowd_budget_stage_threshold).
	StageThreshold *obs.FloatGauge
	// Wins counts budget-gated task assignments
	// (dynacrowd_budget_wins_total).
	Wins *obs.Counter
	// ThresholdRejects counts tasks left unserved because the cheapest
	// phone's bid exceeded its stage threshold
	// (dynacrowd_budget_gate_rejects_total{gate="threshold"}).
	ThresholdRejects *obs.Counter
	// AllowanceRejects counts tasks left unserved because the stage's
	// cumulative allowance could not cover another reserve
	// (dynacrowd_budget_gate_rejects_total{gate="allowance"}).
	AllowanceRejects *obs.Counter
}

// NewMetrics registers the budgeted engine's instruments. Registration
// is idempotent, so consecutive rounds on one registry share series. A
// nil registry returns a usable all-no-op bundle.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Remaining: r.FloatGauge("dynacrowd_budget_remaining",
			"Uncommitted round budget (B minus reserved payment caps)."),
		Stage: r.Gauge("dynacrowd_budget_stage",
			"Current sampling-accept stage index (1..K)."),
		StageThreshold: r.FloatGauge("dynacrowd_budget_stage_threshold",
			"Current stage's raw posted-price threshold (full sample)."),
		Wins: r.Counter("dynacrowd_budget_wins_total",
			"Task assignments that cleared the budget gates."),
		ThresholdRejects: r.Counter("dynacrowd_budget_gate_rejects_total",
			"Tasks left unserved by a budget gate.", "gate", "threshold"),
		AllowanceRejects: r.Counter("dynacrowd_budget_gate_rejects_total",
			"Tasks left unserved by a budget gate.", "gate", "allowance"),
	}
}
