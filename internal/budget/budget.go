// Package budget implements budget-feasible online mechanisms for the
// paper's dynamic-smartphone auction: the platform holds a hard budget
// B for the round, and total payments must never exceed it.
//
// The mechanism family follows the multiple-stage sampling-accept
// design of Zhao–Li–Ma ("OMG: How Much Should I Pay Bob in Truthful
// Online Mobile Crowdsourced Sensing?", arXiv:1306.5677) and the frugal
// variant of Zhao–Ma–Liu ("Frugal Online Incentive Mechanisms for
// Mobile Crowd Sensing", arXiv:1404.2399): the round's m slots are cut
// into K = ⌈log₂ m⌉ + 1 geometric stages whose lengths double, stage k
// may spend at most the cumulative allowance C_k = B·2^{k−K} (so the
// spend rate is uniform ≈ B/m per slot and C_K = B exactly), and each
// stage posts a price threshold re-estimated from the costs observed in
// all earlier stages. A task is assigned to the cheapest active phone
// only if that phone's bid clears the stage threshold and reserving the
// threshold keeps the cumulative spend within C_k; the winner is later
// paid its exact counterfactual critical value — the supremum of the
// reports with which it would still win, found by deterministic re-runs
// of the allocation — capped at the reserved threshold, at its reported
// departure.
//
// Three report-independence devices make the family survive the
// exhaustive strategy audit (internal/strategy) that the unbudgeted
// mechanism passes:
//
//   - Exclude-self sampling: the threshold gating phone i is computed
//     on the observed-cost sample with i's own cost removed, so i's
//     report never moves its own gate.
//   - Non-increasing effective thresholds: the gate applied in stage k
//     is min over j ≤ k of the raw stage thresholds, so delaying a
//     reported arrival into a later stage can never buy a higher
//     payment cap.
//   - Threshold reserves: the budget gate commits the full cap (not the
//     bid) per winner, so whether the budget admits a win is
//     independent of the winner's own cost report, and Σ payments ≤
//     Σ caps ≤ C_K = B holds unconditionally.
//
// budget.Auction implements core.Auction over a core.Ledger, so the
// cascade payment engine, the platform, snapshots, and the sim/audit
// harnesses all run unchanged; budget.Mechanism adapts it to
// core.Mechanism for batch instances. docs/BUDGET.md is the usage page
// and docs/THEORY.md §7 the argument sketch.
package budget

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dynacrowd/internal/core"
)

// ErrInvalidBudget reports a round budget that is not a positive finite
// number. NaN and ±Inf compare false against every threshold, so
// without the explicit rejection they would silently disable every
// budget gate; matchable via errors.Is at config, platform, and CLI
// parse time.
var ErrInvalidBudget = errors.New("budget must be a positive finite number")

// ValidateBudget checks that b is usable as a hard round budget.
func ValidateBudget(b float64) error {
	if math.IsNaN(b) || math.IsInf(b, 0) || b <= 0 {
		return fmt.Errorf("budget: %w (got %g)", ErrInvalidBudget, b)
	}
	return nil
}

// Engine estimates a stage's posted-price threshold from the costs
// observed in earlier stages. Implementations must be pure functions of
// their arguments: snapshot restore replays the round through the same
// engine and relies on bit-identical thresholds.
type Engine interface {
	// Name is a short stable identifier ("stage", "frugal"), used in
	// mechanism names and snapshots.
	Name() string
	// Threshold returns the raw stage threshold given the stage's
	// cumulative spend allowance C_k, the per-task value ν, and the
	// ascending sample of costs observed before the stage (with the
	// gated phone's own cost excluded). An empty sample must return a
	// non-binding threshold (ν): with no density information the stage
	// posts the maximum IR price and lets the allowance gate pace
	// spending.
	Threshold(allowance, value float64, sample []float64) float64
}

// StageSampling is the OMG-style density-threshold engine: the
// proportional-share rule of Singer's budget-feasible mechanisms,
// applied per stage. With the sample sorted ascending it finds the
// largest i with c_(i) ≤ C_k/i — the deepest prefix of the observed
// cost distribution the allowance could pay a uniform price to — and
// posts C_k/i, capped at ν.
type StageSampling struct{}

// Name implements Engine.
func (StageSampling) Name() string { return "stage" }

// Threshold implements Engine.
func (StageSampling) Threshold(allowance, value float64, sample []float64) float64 {
	if len(sample) == 0 {
		return value
	}
	share := allowance // i = 0 fallback: post the full allowance
	for i := 1; i <= len(sample); i++ {
		if sample[i-1] > allowance/float64(i) {
			break
		}
		share = allowance / float64(i)
	}
	return math.Min(value, share)
}

// DefaultCoverage is the Frugal engine's default coverage target.
const DefaultCoverage = 0.9

// Frugal targets minimal total payment for a coverage target rather
// than welfare-max under budget: it posts the Coverage-quantile of the
// observed cost distribution, so roughly a Coverage fraction of phones
// clear the gate at (close to) the lowest uniform price that admits
// them. The allowance still caps spending through the reserve gate; the
// quantile keeps the per-winner price near the cost floor.
type Frugal struct {
	// Coverage is the target acceptance quantile in (0, 1];
	// 0 selects DefaultCoverage.
	Coverage float64
}

// Name implements Engine.
func (Frugal) Name() string { return "frugal" }

func (f Frugal) coverage() float64 {
	if f.Coverage <= 0 || f.Coverage > 1 {
		return DefaultCoverage
	}
	return f.Coverage
}

// Threshold implements Engine.
func (f Frugal) Threshold(allowance, value float64, sample []float64) float64 {
	if len(sample) == 0 {
		return value
	}
	q := int(math.Ceil(f.coverage() * float64(len(sample))))
	if q < 1 {
		q = 1
	}
	if q > len(sample) {
		q = len(sample)
	}
	return math.Min(value, math.Min(allowance, sample[q-1]))
}

// EngineByName resolves an engine identifier: "" or "stage" selects
// StageSampling, "frugal" the Frugal engine at DefaultCoverage.
func EngineByName(name string) (Engine, error) {
	switch name {
	case "", "stage":
		return StageSampling{}, nil
	case "frugal":
		return Frugal{}, nil
	default:
		return nil, fmt.Errorf("budget: unknown engine %q (want stage or frugal)", name)
	}
}

// NumStages returns K = ⌈log₂ m⌉ + 1, the stage count of an m-slot
// round.
func NumStages(m core.Slot) int {
	k := 1
	for span := core.Slot(1); span < m; span <<= 1 {
		k++
	}
	return k
}

// stageEnd returns e_k = ⌈m·2^{k−K}⌉, the last slot of stage k. Stage k
// covers slots (e_{k−1}, e_k]; e_K = m.
func stageEnd(m core.Slot, k, stages int) core.Slot {
	div := core.Slot(1) << (stages - k)
	return (m + div - 1) / div
}

// allowanceAt returns C_k = B·2^{k−K}, the cumulative spend cap through
// stage k (C_K = B).
func allowanceAt(budget float64, k, stages int) float64 {
	return budget / float64(uint64(1)<<(stages-k))
}

// mergeSorted merges an ascending sample with an unsorted batch of
// newly observed costs into a fresh ascending slice.
func mergeSorted(sorted, batch []float64) []float64 {
	out := make([]float64, 0, len(sorted)+len(batch))
	out = append(out, sorted...)
	out = append(out, batch...)
	sort.Float64s(out[len(sorted):])
	if len(sorted) > 0 && len(batch) > 0 {
		sort.Float64s(out) // two sorted runs; sort keeps it simple and O(n log n)
	}
	return out
}
