package budget

import (
	"fmt"
	"sort"

	"dynacrowd/internal/core"
)

// Mechanism adapts the budgeted auction to core.Mechanism so sweeps,
// audits, and differential tests can run it against batch instances.
// Run streams the instance slot by slot through a fresh Auction — each
// bid joins in its arrival slot, tasks are announced per slot — and
// maps the outcome back to the instance's phone numbering. Safe for
// concurrent use (every Run builds its own auction).
type Mechanism struct {
	// Budget is the hard round budget B (validated by Run).
	Budget float64
	// Engine selects the threshold estimator (nil: StageSampling).
	Engine Engine
}

// Name implements core.Mechanism.
func (m *Mechanism) Name() string {
	eng := m.Engine
	if eng == nil {
		eng = StageSampling{}
	}
	return fmt.Sprintf("budget-%s-B%g", eng.Name(), m.Budget)
}

// Run implements core.Mechanism. For instances whose bids are arrival-
// ordered (every workload generator's output), phone IDs survive the
// streaming unchanged; otherwise IDs are remapped through the delivery
// permutation.
func (m *Mechanism) Run(in *core.Instance) (*core.Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("budget mechanism: %w", err)
	}
	a, err := New(in.Slots, in.Value, in.AllocateAtLoss, m.Budget, m.Engine)
	if err != nil {
		return nil, fmt.Errorf("budget mechanism: %w", err)
	}
	return streamInstance(a, in)
}

// streamInstance replays a batch instance slot by slot through any
// core.Auction and maps the outcome back to instance phone IDs.
func streamInstance(a core.Auction, in *core.Instance) (*core.Outcome, error) {
	byArrival := make([][]int, in.Slots+1)
	for i, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], i)
	}
	perSlot := in.TasksPerSlot()
	perm := make([]core.PhoneID, 0, len(in.Bids)) // stream ID -> instance ID
	arriving := make([]core.StreamBid, 0, 8)
	for t := core.Slot(1); t <= in.Slots; t++ {
		arriving = arriving[:0]
		for _, i := range byArrival[t] {
			arriving = append(arriving, core.StreamBid{Departure: in.Bids[i].Departure, Cost: in.Bids[i].Cost})
			perm = append(perm, core.PhoneID(i))
		}
		if _, err := a.Step(arriving, perSlot[t-1]); err != nil {
			return nil, fmt.Errorf("budget mechanism: slot %d: %w", t, err)
		}
	}

	got := a.Outcome()
	out := &core.Outcome{
		Allocation: core.NewAllocation(in.NumTasks(), in.NumPhones()),
		Payments:   make([]float64, in.NumPhones()),
	}
	for k, ph := range got.Allocation.ByTask {
		if ph != core.NoPhone {
			out.Allocation.Assign(core.TaskID(k), perm[ph], got.Allocation.WonAt[ph])
		}
	}
	for j, amount := range got.Payments {
		out.Payments[perm[j]] = amount
	}
	out.Welfare = out.Allocation.Welfare(in)
	return out, nil
}

var _ core.Mechanism = (*Mechanism)(nil)

// NaiveTruncated is the strawman the Fig-5-style counterexample test
// knocks down: run the paper's unbudgeted online mechanism, then pay
// winners in settlement order (departure slot, then phone ID) until the
// budget runs out — the last affordable winner gets the remainder,
// everyone after gets nothing. It is budget-feasible but NOT truthful
// (a phone facing a truncated payment below its cost gains by inflating
// its cost past ν to stay out of the auction) and violates individual
// rationality. TestNaiveTruncatedNotTruthful exhibits the directed
// instance.
type NaiveTruncated struct {
	// Budget is the hard round budget B (validated by Run).
	Budget float64
}

// Name implements core.Mechanism.
func (m *NaiveTruncated) Name() string { return fmt.Sprintf("naive-truncated-B%g", m.Budget) }

// Run implements core.Mechanism.
func (m *NaiveTruncated) Run(in *core.Instance) (*core.Outcome, error) {
	if err := ValidateBudget(m.Budget); err != nil {
		return nil, err
	}
	base := &core.OnlineMechanism{}
	out, err := base.Run(in)
	if err != nil {
		return nil, fmt.Errorf("naive truncated: %w", err)
	}
	winners := out.Allocation.Winners()
	sort.Slice(winners, func(x, y int) bool {
		dx, dy := in.Bids[winners[x]].Departure, in.Bids[winners[y]].Departure
		if dx != dy {
			return dx < dy
		}
		return winners[x] < winners[y]
	})
	remaining := m.Budget
	for _, i := range winners {
		pay := out.Payments[i]
		if pay > remaining {
			pay = remaining
		}
		out.Payments[i] = pay
		remaining -= pay
	}
	return out, nil
}

var _ core.Mechanism = (*NaiveTruncated)(nil)
