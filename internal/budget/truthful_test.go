package budget

import (
	"fmt"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/strategy"
	"dynacrowd/internal/workload"
)

// counterexample is the directed Fig-5-style instance on which the
// naive budget-truncated greedy fails truthfulness and IR: three phones
// whose unbudgeted critical payments are all ν (each is pivotal under
// task scarcity), with a budget that covers only part of the bill.
// Truncation pays in settlement order, so the last winner is paid less
// than its cost — and can escape the loss by inflating its reported
// cost past ν, a profitable misreport.
//
//	m = 2, ν = 30, B = 40
//	phone 0: window [1,2], cost 4
//	phone 1: window [1,2], cost 5
//	phone 2: window [2,2], cost 8
//	tasks: two in slot 1, one in slot 2
func counterexample() *core.Instance {
	return &core.Instance{
		Slots: 2,
		Value: 30,
		Bids: []core.Bid{
			{Phone: 0, Arrival: 1, Departure: 2, Cost: 4},
			{Phone: 1, Arrival: 1, Departure: 2, Cost: 5},
			{Phone: 2, Arrival: 2, Departure: 2, Cost: 8},
		},
		Tasks: []core.Task{
			{ID: 0, Arrival: 1},
			{ID: 1, Arrival: 1},
			{ID: 2, Arrival: 2},
		},
	}
}

const counterexampleBudget = 40

func TestNaiveTruncatedNotTruthful(t *testing.T) {
	in := counterexample()
	naive := &NaiveTruncated{Budget: counterexampleBudget}

	out, err := naive.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the unbudgeted payments really exceed the budget (every
	// winner is pivotal, so each is owed the reserve ν = 30).
	base, err := (&core.OnlineMechanism{}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := base.TotalPayment(); got <= counterexampleBudget {
		t.Fatalf("counterexample mis-built: unbudgeted bill %g fits budget %d", got, counterexampleBudget)
	}
	if got := out.TotalPayment(); got > counterexampleBudget+1e-9 {
		t.Fatalf("naive truncation overspent: %g > %d", got, counterexampleBudget)
	}

	// IR violation: the last winner in settlement order is paid below its
	// cost.
	if u := out.Utility(2, in.Bids[2].Cost); u >= 0 {
		t.Fatalf("expected an IR violation for phone 2, utility %g", u)
	}

	// Truthfulness violation: phone 2 gains by inflating its cost past ν
	// (it stays out of the auction and avoids the truncated payment).
	res, err := strategy.AuditPhone(naive, in, 2, strategy.AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gain() <= 1e-9 {
		t.Fatalf("naive truncated greedy passed the audit it was built to fail: %+v", res)
	}
	if res.BestBid.Cost <= in.Value {
		t.Fatalf("expected the profitable deviation to flee the auction (cost > ν), got %+v", res.BestBid)
	}
}

// TestBudgetEnginesPassCounterexample asserts both budget engines are
// truthful, IR, and budget-feasible on the exact instance that breaks
// the naive truncation.
func TestBudgetEnginesPassCounterexample(t *testing.T) {
	in := counterexample()
	for _, eng := range []Engine{StageSampling{}, Frugal{}} {
		t.Run(eng.Name(), func(t *testing.T) {
			mech := &Mechanism{Budget: counterexampleBudget, Engine: eng}
			out, err := mech.Run(in)
			if err != nil {
				t.Fatal(err)
			}
			if got := out.TotalPayment(); got > counterexampleBudget+1e-9 {
				t.Fatalf("budget violated: %g > %d", got, counterexampleBudget)
			}
			for i := range in.Bids {
				if u := out.Utility(core.PhoneID(i), in.Bids[i].Cost); u < -1e-9 {
					t.Fatalf("IR violated for phone %d: utility %g", i, u)
				}
			}
			results, err := strategy.Audit(mech, in, strategy.AuditOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if ph, gain := strategy.MaxGain(results); gain > 1e-9 {
				t.Fatalf("phone %d gains %g by misreporting", ph, gain)
			}
		})
	}
}

// feasibilityMech wraps a budgeted mechanism and fails the run if any
// outcome — including every misreport outcome the audit explores —
// breaks budget feasibility (Σ payments ≤ B) or reported-cost IR
// (winners paid at least their claimed cost).
type feasibilityMech struct {
	inner  core.Mechanism
	budget float64
	runs   int
}

func (f *feasibilityMech) Name() string { return f.inner.Name() + "+feasibility" }

func (f *feasibilityMech) Run(in *core.Instance) (*core.Outcome, error) {
	out, err := f.inner.Run(in)
	if err != nil {
		return nil, err
	}
	f.runs++
	if got := out.TotalPayment(); got > f.budget+1e-9 {
		return nil, fmt.Errorf("budget feasibility violated: paid %g of budget %g", got, f.budget)
	}
	for _, i := range out.Allocation.Winners() {
		if out.Payments[i] < in.Bids[i].Cost-1e-9 {
			return nil, fmt.Errorf("reported-cost IR violated: phone %d paid %g for claimed cost %g",
				i, out.Payments[i], in.Bids[i].Cost)
		}
	}
	return out, nil
}

// TestBudgetAuditCampaign is the budget-audit gate (make budget-audit):
// a 5-seed exhaustive misreport campaign over both engines at a binding
// and a loose budget, with budget feasibility and IR asserted on every
// single run the audit performs.
func TestBudgetAuditCampaign(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 6
	scn.PhoneRate = 1.5
	scn.TaskRate = 1
	gen := func(seed uint64) (*core.Instance, error) { return scn.Generate(seed) }
	seeds := []uint64{1, 2, 3, 4, 5}

	for _, eng := range []Engine{StageSampling{}, Frugal{}} {
		for _, budget := range []float64{25, 120} {
			name := fmt.Sprintf("%s-B%g", eng.Name(), budget)
			t.Run(name, func(t *testing.T) {
				mech := &feasibilityMech{inner: &Mechanism{Budget: budget, Engine: eng}, budget: budget}
				res, err := strategy.AuditCampaign(mech, gen, seeds, strategy.AuditOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Instances != len(seeds) || res.PhonesAudited == 0 || res.ReportsSearched == 0 {
					t.Fatalf("campaign shape: %+v", res)
				}
				if !res.Truthful() {
					t.Fatalf("budget mechanism %s failed the audit: worst gain %g (seed %d phone %d)",
						name, res.WorstGain, res.WorstSeed, res.WorstPhone)
				}
				if mech.runs == 0 {
					t.Fatal("feasibility wrapper never ran")
				}
				t.Logf("%s: %d instances, %d phones, %d reports, %d feasibility-checked runs, worst gain %g",
					name, res.Instances, res.PhonesAudited, res.ReportsSearched, mech.runs, res.WorstGain)
			})
		}
	}
}
