package budget

import (
	"encoding/json"
	"fmt"

	"dynacrowd/internal/core"
)

// snapshotVersion matches the engine-portable v1 format of
// core.OnlineAuction snapshots; the budget section is an additive
// extension (unknown-field-tolerant decoders ignore it).
const snapshotVersion = 1

// budgetSection carries the budgeted engine's configuration. The
// dynamic state (stage, samples, thresholds, reserves, caps) is not
// stored: restore rebuilds it by replaying the round through the same
// deterministic engine, and the stored assignment doubles as an
// integrity check — exactly the core snapshot contract.
type budgetSection struct {
	Budget   float64 `json:"budget"`
	Engine   string  `json:"engine"`
	Coverage float64 `json:"coverage,omitempty"` // frugal only
}

// auctionSnapshot mirrors core's v1 auctionSnapshot field for field
// (the platform's checkpoint files stay engine-portable) plus the
// budget section.
type auctionSnapshot struct {
	Version        int            `json:"version"`
	Slots          core.Slot      `json:"slots"`
	Value          float64        `json:"value"`
	AllocateAtLoss bool           `json:"allocateAtLoss,omitempty"`
	Now            core.Slot      `json:"now"`
	Bids           []core.Bid     `json:"bids"`
	TaskArrivals   []core.Slot    `json:"taskArrivals"`
	ByTask         []core.PhoneID `json:"byTask"`
	WonAt          []core.Slot    `json:"wonAt"`
	Budget         *budgetSection `json:"budget,omitempty"`
}

// Snapshot serializes the auction's full state so a platform can
// checkpoint mid-round (mid-stage) and resume after a crash. The
// snapshot is self-contained JSON; restore with Restore.
func (a *Auction) Snapshot() ([]byte, error) {
	sec := &budgetSection{Budget: a.budget, Engine: a.eng.Name()}
	if f, ok := a.eng.(Frugal); ok {
		sec.Coverage = f.coverage()
	}
	snap := auctionSnapshot{
		Version:        snapshotVersion,
		Slots:          a.ledger.Slots(),
		Value:          a.ledger.Value(),
		AllocateAtLoss: a.ledger.AllocateAtLoss(),
		Now:            a.now,
		Bids:           a.ledger.Bids(),
		TaskArrivals:   a.ledger.TaskArrivals(),
		ByTask:         a.ledger.ByTask(),
		WonAt:          a.ledger.WonAtSlots(),
		Budget:         sec,
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("budget snapshot: %w", err)
	}
	return data, nil
}

// Restore reconstructs a budgeted auction from a Snapshot by replaying
// the recorded bids and tasks slot by slot through a fresh auction with
// the stored engine configuration. The replay is deterministic (stage
// boundaries, samples, thresholds, and reserves are pure functions of
// the input stream), so the restored auction continues the round —
// including the current stage's threshold state — exactly as the
// original would have; the stored assignment is cross-checked against
// the replay.
func Restore(data []byte) (*Auction, error) {
	var snap auctionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("restore budget auction: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("restore budget auction: unsupported version %d (want %d)", snap.Version, snapshotVersion)
	}
	if snap.Budget == nil {
		return nil, fmt.Errorf("restore budget auction: snapshot has no budget section (unbudgeted engine?)")
	}
	eng, err := EngineByName(snap.Budget.Engine)
	if err != nil {
		return nil, fmt.Errorf("restore budget auction: %w", err)
	}
	if f, ok := eng.(Frugal); ok && snap.Budget.Coverage > 0 {
		f.Coverage = snap.Budget.Coverage
		eng = f
	}
	a, err := New(snap.Slots, snap.Value, snap.AllocateAtLoss, snap.Budget.Budget, eng)
	if err != nil {
		return nil, fmt.Errorf("restore budget auction: %w", err)
	}
	if snap.Now < 0 || snap.Now > snap.Slots {
		return nil, fmt.Errorf("restore budget auction: clock %d outside round [0,%d]", snap.Now, snap.Slots)
	}
	if len(snap.WonAt) != len(snap.Bids) || len(snap.ByTask) != len(snap.TaskArrivals) {
		return nil, fmt.Errorf("restore budget auction: inconsistent state sizes")
	}
	for i, b := range snap.Bids {
		if b.Phone != core.PhoneID(i) {
			return nil, fmt.Errorf("restore budget auction: bid %d has phone id %d", i, b.Phone)
		}
		if err := b.Validate(snap.Slots); err != nil {
			return nil, fmt.Errorf("restore budget auction: %w", err)
		}
		if b.Arrival > snap.Now {
			return nil, fmt.Errorf("restore budget auction: bid %d arrives at %d, after clock %d", i, b.Arrival, snap.Now)
		}
	}
	var prev core.Slot
	for k, arrival := range snap.TaskArrivals {
		if arrival < 1 || arrival > snap.Now {
			return nil, fmt.Errorf("restore budget auction: task %d arrival %d outside [1,%d]", k, arrival, snap.Now)
		}
		if arrival < prev {
			return nil, fmt.Errorf("restore budget auction: task %d out of arrival order", k)
		}
		prev = arrival
	}

	// Replay: identical input stream => identical stage state, gates,
	// reserves, and caps. Settlement is skipped (payments are recomputed
	// deterministically by Outcome/Step once live again).
	a.replay = true
	bi, ti := 0, 0
	var arriving []core.StreamBid
	for t := core.Slot(1); t <= snap.Now; t++ {
		arriving = arriving[:0]
		for ; bi < len(snap.Bids) && snap.Bids[bi].Arrival == t; bi++ {
			arriving = append(arriving, core.StreamBid{Departure: snap.Bids[bi].Departure, Cost: snap.Bids[bi].Cost})
		}
		tasks := 0
		for ; ti < len(snap.TaskArrivals) && snap.TaskArrivals[ti] == t; ti++ {
			tasks++
		}
		if _, err := a.Step(arriving, tasks); err != nil {
			return nil, fmt.Errorf("restore budget auction: replay slot %d: %w", t, err)
		}
	}
	a.replay = false
	if bi != len(snap.Bids) {
		return nil, fmt.Errorf("restore budget auction: bids not in arrival order (replayed %d of %d)", bi, len(snap.Bids))
	}

	// The replayed assignment must agree with the stored one; a mismatch
	// means the snapshot was tampered with or produced by different code.
	byTask := a.ledger.ByTask()
	for k, p := range snap.ByTask {
		if byTask[k] != p {
			return nil, fmt.Errorf("restore budget auction: task %d assignment %d disagrees with replay %d", k, p, byTask[k])
		}
	}
	wonAt := a.ledger.WonAtSlots()
	for i, w := range snap.WonAt {
		if wonAt[i] != w {
			return nil, fmt.Errorf("restore budget auction: phone %d winning slot %d disagrees with replay %d", i, w, wonAt[i])
		}
	}
	return a, nil
}
