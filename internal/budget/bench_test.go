package budget_test

import (
	"fmt"
	"testing"

	"dynacrowd/internal/budget"
	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// BenchmarkBudgetedSlot measures per-round throughput of the budgeted
// engines on the paper's default workload at a binding and a loose
// budget, against the unbudgeted sequential engine as the baseline.
// The budgeted engines pay exact counterfactual critical values —
// each settled winner re-runs the observed round O(log n) times — so
// the interesting number is how far that pricing sits from the
// baseline at realistic round sizes. Recorded into BENCH_PR10.json by
// `make budget-bench`.
func BenchmarkBudgetedSlot(b *testing.B) {
	scn := workload.DefaultScenario()
	in, err := scn.Generate(2)
	if err != nil {
		b.Fatal(err)
	}
	perSlot := in.TasksPerSlot()
	byArrival := make([][]core.StreamBid, in.Slots+1)
	for _, bid := range in.Bids {
		byArrival[bid.Arrival] = append(byArrival[bid.Arrival], core.StreamBid{
			Departure: bid.Departure, Cost: bid.Cost,
		})
	}
	run := func(b *testing.B, boot func() (core.Auction, error)) {
		b.Helper()
		var paid, welfare float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := boot()
			if err != nil {
				b.Fatal(err)
			}
			for t := core.Slot(1); t <= in.Slots; t++ {
				if _, err := a.Step(byArrival[t], perSlot[t-1]); err != nil {
					b.Fatal(err)
				}
			}
			out := a.Outcome()
			paid, welfare = out.TotalPayment(), out.Welfare
		}
		b.ReportMetric(float64(in.Slots), "slots/op")
		b.ReportMetric(float64(len(in.Bids)), "bids/op")
		b.ReportMetric(paid, "paid/op")
		b.ReportMetric(welfare, "welfare/op")
	}

	b.Run("engine=unbudgeted", func(b *testing.B) {
		run(b, func() (core.Auction, error) {
			return core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
		})
	})
	for _, engName := range []string{"stage", "frugal"} {
		eng, err := budget.EngineByName(engName)
		if err != nil {
			b.Fatal(err)
		}
		for _, bud := range []float64{200, 2000} {
			b.Run(fmt.Sprintf("engine=%s/budget=%g", engName, bud), func(b *testing.B) {
				run(b, func() (core.Auction, error) {
					return budget.New(in.Slots, in.Value, in.AllocateAtLoss, bud, eng)
				})
			})
		}
	}
}
