package budget

import (
	"bytes"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// driveTo streams instance slots (1..upTo] into a fresh auction.
func driveTo(t testing.TB, in *core.Instance, budget float64, eng Engine, upTo core.Slot) *Auction {
	t.Helper()
	a, err := New(in.Slots, in.Value, in.AllocateAtLoss, budget, eng)
	if err != nil {
		t.Fatal(err)
	}
	byArrival := make([][]int, in.Slots+1)
	for i, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], i)
	}
	perSlot := in.TasksPerSlot()
	for slot := core.Slot(1); slot <= upTo; slot++ {
		var arriving []core.StreamBid
		for _, i := range byArrival[slot] {
			arriving = append(arriving, core.StreamBid{Departure: in.Bids[i].Departure, Cost: in.Bids[i].Cost})
		}
		if _, err := a.Step(arriving, perSlot[slot-1]); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// finish drives the remaining slots of in through a.
func finish(t testing.TB, a *Auction, in *core.Instance) *core.Outcome {
	t.Helper()
	byArrival := make([][]int, in.Slots+1)
	for i, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], i)
	}
	perSlot := in.TasksPerSlot()
	for slot := a.Now() + 1; slot <= in.Slots; slot++ {
		var arriving []core.StreamBid
		for _, i := range byArrival[slot] {
			arriving = append(arriving, core.StreamBid{Departure: in.Bids[i].Departure, Cost: in.Bids[i].Cost})
		}
		if _, err := a.Step(arriving, perSlot[slot-1]); err != nil {
			t.Fatal(err)
		}
	}
	return a.Outcome()
}

// TestSnapshotRoundTrip checkpoints mid-round — mid-stage — restores,
// and checks (a) the restored auction re-snapshots bit-identically and
// (b) finishing the round from the restore matches finishing the
// original, payments included.
func TestSnapshotRoundTrip(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 20
	scn.PhoneRate = 3
	scn.TaskRate = 2
	for _, eng := range []Engine{StageSampling{}, Frugal{Coverage: 0.75}} {
		for seed := uint64(1); seed <= 4; seed++ {
			in, err := scn.Generate(seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, cut := range []core.Slot{0, 1, 9, 20} { // 9 is mid-stage for m=20 (ends 1,2,3,5,10,20)
				orig := driveTo(t, in, 55, eng, cut)
				snap, err := orig.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				restored, err := Restore(snap)
				if err != nil {
					t.Fatalf("%s seed %d cut %d: %v", eng.Name(), seed, cut, err)
				}
				if restored.Now() != cut {
					t.Fatalf("restored clock %d, want %d", restored.Now(), cut)
				}
				if s, _ := restored.Stage(); func() int { v, _ := orig.Stage(); return v }() != s {
					t.Fatalf("restored stage %d disagrees", s)
				}
				if restored.Reserved() != orig.Reserved() {
					t.Fatalf("restored reserve %g, want %g", restored.Reserved(), orig.Reserved())
				}
				snap2, err := restored.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(snap, snap2) {
					t.Fatalf("%s seed %d cut %d: re-snapshot differs\n%s\n%s", eng.Name(), seed, cut, snap, snap2)
				}
				a, b := finish(t, orig, in), finish(t, restored, in)
				if a.Welfare != b.Welfare || a.TotalPayment() != b.TotalPayment() {
					t.Fatalf("%s seed %d cut %d: futures diverge: welfare %g vs %g, paid %g vs %g",
						eng.Name(), seed, cut, a.Welfare, b.Welfare, a.TotalPayment(), b.TotalPayment())
				}
				for i := range a.Payments {
					if a.Payments[i] != b.Payments[i] {
						t.Fatalf("%s seed %d cut %d: phone %d paid %g vs %g",
							eng.Name(), seed, cut, i, a.Payments[i], b.Payments[i])
					}
				}
			}
		}
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	in, err := workload.DefaultScenario().Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	a := driveTo(t, in, 100, nil, 10)
	good, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(find, repl string) []byte {
		return bytes.Replace(good, []byte(find), []byte(repl), 1)
	}
	cases := map[string][]byte{
		"not json":          []byte("{"),
		"bad version":       mutate(`"version":1`, `"version":9`),
		"no budget section": mutate(`"budget":{`, `"nobudget":{`),
		"bad engine":        mutate(`"engine":"stage"`, `"engine":"simplex"`),
		"bad budget value":  mutate(`"budget":{"budget":100`, `"budget":{"budget":-4`),
	}
	for name, data := range cases {
		if _, err := Restore(data); err == nil {
			t.Errorf("%s: restore accepted corrupt snapshot", name)
		}
	}
}

// FuzzBudgetSnapshot drives a fuzzer-shaped round partway, round-trips
// it through Snapshot/Restore, and requires a bit-identical
// re-snapshot plus an identical remaining round.
func FuzzBudgetSnapshot(f *testing.F) {
	f.Add(uint64(1), uint64(7), 40.0, true, uint8(10))
	f.Add(uint64(2), uint64(3), 5.0, false, uint8(1))
	f.Add(uint64(3), uint64(9), 500.0, true, uint8(19))
	f.Fuzz(func(t *testing.T, seed, shape uint64, budget float64, stage bool, cutRaw uint8) {
		if err := ValidateBudget(budget); err != nil {
			t.Skip()
		}
		scn := workload.DefaultScenario()
		scn.Slots = 20
		scn.PhoneRate = 1 + float64(shape%5)
		scn.TaskRate = 1 + float64(shape%3)
		in, err := scn.Generate(seed)
		if err != nil {
			t.Skip()
		}
		var eng Engine = StageSampling{}
		if !stage {
			eng = Frugal{}
		}
		cut := core.Slot(cutRaw) % (scn.Slots + 1)
		orig := driveTo(t, in, budget, eng, cut)
		snap, err := orig.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(snap)
		if err != nil {
			t.Fatalf("restore of own snapshot: %v", err)
		}
		snap2, err := restored.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, snap2) {
			t.Fatalf("re-snapshot differs:\n%s\n%s", snap, snap2)
		}
		a, b := finish(t, orig, in), finish(t, restored, in)
		if a.TotalPayment() != b.TotalPayment() || a.TotalPayment() > budget+1e-9 {
			t.Fatalf("post-restore payments %g vs %g (budget %g)", a.TotalPayment(), b.TotalPayment(), budget)
		}
	})
}
