package budget

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/obs"
)

// ErrCompletionsUnsupported reports an attempt to use the assignment
// lifecycle (Complete/Default) on a budgeted auction. Composing
// completion-driven re-allocation with threshold reserves is future
// work; the platform rejects the combination at config time.
var ErrCompletionsUnsupported = errors.New("budget: completion lifecycle is not supported on budgeted auctions")

// Auction drives the budgeted online mechanism slot by slot. It
// implements core.Auction, so the platform hosts it interchangeably
// with the unbudgeted engines; allocation decisions are recorded into a
// core.Ledger and winners are paid their exact counterfactual critical
// value (see criticalValue), capped per winner at the stage threshold
// reserved for it.
//
// Like the other engines, an Auction is coordinator-single-threaded:
// one goroutine calls Step.
type Auction struct {
	ledger *core.Ledger
	budget float64
	eng    Engine
	stages int // K

	payEngine core.PaymentEngine
	pricer    *core.Pricer

	now   core.Slot
	stage int // current stage, 0 before the first Step

	pool        poolHeap
	byDeparture [][]core.PhoneID

	// arrivalStage[i] is the stage phone i's bid arrived in; stageCosts[k]
	// the costs observed during stage k; samples[k] the ascending merge of
	// stageCosts[1..k-1], built once when stage k opens.
	arrivalStage []int
	stageCosts   [][]float64
	samples      [][]float64
	rawThr       []float64 // full-sample raw threshold per opened stage

	reserved float64   // Σ committed caps; never exceeds the budget
	capAt    []float64 // per phone: payment cap reserved at win (0: no win)

	// Counterfactual critical-value cache: critVal[i] is valid while the
	// clock still reads critNow[i]. settled[i] marks executed payments,
	// which Outcome treats as final.
	critVal []float64
	critNow []core.Slot
	settled []bool

	trackDepartures bool
	replay          bool // restoring: re-derive state, skip settlement
	metrics         *core.Metrics
	inst            *Metrics    // budget observability (nil disables)
	tracer          *obs.Tracer // budget_stage events (nil disables)

	excl []float64 // exclude-self scratch
}

// New creates a budgeted auction of m slots with per-task value ν and
// round budget B. A nil engine selects StageSampling.
func New(m core.Slot, value float64, allocateAtLoss bool, budget float64, eng Engine) (*Auction, error) {
	if err := ValidateBudget(budget); err != nil {
		return nil, err
	}
	l, err := core.NewLedger(m, value, allocateAtLoss)
	if err != nil {
		return nil, fmt.Errorf("budget auction: %w", err)
	}
	if eng == nil {
		eng = StageSampling{}
	}
	stages := NumStages(m)
	a := &Auction{
		ledger:      l,
		budget:      budget,
		eng:         eng,
		stages:      stages,
		payEngine:   core.CascadePayments,
		byDeparture: make([][]core.PhoneID, m+1),
		stageCosts:  make([][]float64, stages+1),
		samples:     make([][]float64, stages+1),
		rawThr:      make([]float64, stages+1),
	}
	a.pool.ledger = l
	a.pricer = l.NewPricer(a.payEngine, nil)
	return a, nil
}

// Budget returns the round budget B.
func (a *Auction) Budget() float64 { return a.budget }

// Reserved returns the cumulative spend committed so far (Σ caps of the
// winners selected so far). Payments never exceed it.
func (a *Auction) Reserved() float64 { return a.reserved }

// Remaining returns the uncommitted budget B − Reserved().
func (a *Auction) Remaining() float64 { return a.budget - a.reserved }

// Engine returns the threshold engine.
func (a *Auction) Engine() Engine { return a.eng }

// Stage returns the current stage index (1-based; 0 before the first
// Step) and the stage count K.
func (a *Auction) Stage() (stage, stages int) { return a.stage, a.stages }

// BudgetExhausted reports whether the round's budget is fully
// committed: no further win can be reserved. The platform surfaces it
// as a typed bid rejection.
func (a *Auction) BudgetExhausted() bool {
	return a.Remaining() <= 1e-12*a.budget
}

// SetPaymentEngine implements core.Auction. Budgeted payments are
// exact counterfactual critical values (see criticalValue), so the
// engine choice does not alter them; it is retained for the hosting
// platform's pricer plumbing (nil: cascade).
func (a *Auction) SetPaymentEngine(e core.PaymentEngine) {
	if e == nil {
		e = core.CascadePayments
	}
	a.payEngine = e
	a.pricer = a.ledger.NewPricer(e, a.metrics)
}

// SetMetrics instruments the hot path with the core latency histograms
// (nil disables).
func (a *Auction) SetMetrics(m *core.Metrics) {
	a.metrics = m
	a.pricer = a.ledger.NewPricer(a.payEngine, m)
}

// SetInstruments attaches the budget observability bundle (remaining
// gauge, stage/threshold gauges, gate counters). Nil disables.
func (a *Auction) SetInstruments(m *Metrics) { a.inst = m }

// SetTracer emits a budget_stage trace event at each stage opening.
// Nil disables.
func (a *Auction) SetTracer(tr *obs.Tracer) { a.tracer = tr }

// TrackDepartures toggles SlotResult.Departed population.
func (a *Auction) TrackDepartures(on bool) { a.trackDepartures = on }

// TrackCompletions is unsupported on budgeted auctions and ignored; see
// ErrCompletionsUnsupported. The platform rejects Budget together with
// CompletionDeadline at config validation, so it never calls this.
func (a *Auction) TrackCompletions(bool) {}

// Complete implements core.Auction; always ErrCompletionsUnsupported.
func (a *Auction) Complete(core.PhoneID) error { return ErrCompletionsUnsupported }

// Default implements core.Auction; always ErrCompletionsUnsupported.
func (a *Auction) Default(core.PhoneID) (*core.DefaultResult, error) {
	return nil, ErrCompletionsUnsupported
}

// Completion returns phone p's lifecycle view (always the zero value).
func (a *Auction) Completion(p core.PhoneID) core.CompletionState { return a.ledger.Completion(p) }

// CompletionCounts returns aggregate lifecycle outcomes (always zero).
func (a *Auction) CompletionCounts() core.CompletionCounts { return a.ledger.CompletionCounts() }

// Now returns the last processed slot (0 before the first Step).
func (a *Auction) Now() core.Slot { return a.now }

// Done reports whether all slots have been processed.
func (a *Auction) Done() bool { return a.now >= a.ledger.Slots() }

// openStages advances the stage clock to cover slot t, building each
// newly opened stage's sample and raw threshold.
func (a *Auction) openStages(t core.Slot) {
	for a.stage < a.stages && (a.stage == 0 || stageEnd(a.ledger.Slots(), a.stage, a.stages) < t) {
		a.stage++
		k := a.stage
		if k == 1 {
			a.samples[k] = nil
		} else {
			a.samples[k] = mergeSorted(a.samples[k-1], a.stageCosts[k-1])
		}
		a.rawThr[k] = a.eng.Threshold(allowanceAt(a.budget, k, a.stages), a.ledger.Value(), a.samples[k])
		if a.inst != nil {
			a.inst.Stage.Set(int64(k))
			a.inst.StageThreshold.Set(a.rawThr[k])
			a.inst.Remaining.Set(a.Remaining())
		}
		if a.tracer != nil && !a.replay {
			a.tracer.Emit(obs.Event{
				Time: time.Now(), Type: obs.EventBudgetStage, Slot: int(t),
				Phone: -1, Task: -1, Amount: a.rawThr[k],
				Detail: fmt.Sprintf("stage=%d/%d allowance=%.4g threshold=%.4g sample=%d reserved=%.4g",
					k, a.stages, allowanceAt(a.budget, k, a.stages), a.rawThr[k], len(a.samples[k]), a.reserved),
			})
		}
	}
}

// effThreshold returns the gate applied to phone i in the current
// stage: the running minimum over stages j ≤ stage of the raw
// thresholds, each recomputed on the stage sample with i's own cost
// excluded wherever it appears. The result is independent of i's
// report (exclusion removes the cost; arrivals of others fix the
// samples) and non-increasing in the stage, so a delayed arrival can
// never buy a higher cap.
func (a *Auction) effThreshold(i core.PhoneID) float64 {
	c := a.ledger.Bid(i).Cost
	arrived := a.arrivalStage[i]
	eff := math.Inf(1)
	for j := 1; j <= a.stage; j++ {
		thr := a.rawThr[j]
		if arrived < j { // i's cost is in stage j's sample: re-estimate without it
			thr = a.eng.Threshold(allowanceAt(a.budget, j, a.stages), a.ledger.Value(), a.exclude(a.samples[j], c))
		}
		if thr < eff {
			eff = thr
		}
	}
	return eff
}

// exclude returns sample with one instance of cost c removed, reusing
// the auction's scratch buffer.
func (a *Auction) exclude(sample []float64, c float64) []float64 {
	idx := sort.SearchFloat64s(sample, c)
	if idx >= len(sample) || sample[idx] != c {
		return sample // not present (cost mutated externally); fail open
	}
	a.excl = append(a.excl[:0], sample[:idx]...)
	a.excl = append(a.excl, sample[idx+1:]...)
	return a.excl
}

// Step advances the auction one slot: arriving bids join (and enter the
// stage samples), numTasks tasks are announced and gated through the
// stage threshold and the cumulative allowance, and payments are
// finalized for winners departing this slot at their threshold-capped
// critical value.
func (a *Auction) Step(arriving []core.StreamBid, numTasks int) (*core.SlotResult, error) {
	if a.Done() {
		return nil, fmt.Errorf("budget auction: round already complete (%d slots)", a.ledger.Slots())
	}
	if numTasks < 0 {
		return nil, fmt.Errorf("budget auction: negative task count %d", numTasks)
	}
	t := a.now + 1
	for k, sb := range arriving {
		probe := core.Bid{Phone: core.PhoneID(a.ledger.NumPhones() + k), Arrival: t, Departure: sb.Departure, Cost: sb.Cost}
		if err := probe.Validate(a.ledger.Slots()); err != nil {
			return nil, fmt.Errorf("budget auction: %w", err)
		}
	}
	a.now = t
	a.openStages(t)
	res := &core.SlotResult{Slot: t}
	var start time.Time
	if a.metrics != nil {
		start = time.Now()
	}

	for _, sb := range arriving {
		id, err := a.ledger.AddBid(t, sb)
		if err != nil { // unreachable: probes validated above
			return nil, fmt.Errorf("budget auction: %w", err)
		}
		res.Joined = append(res.Joined, id)
		a.arrivalStage = append(a.arrivalStage, a.stage)
		a.stageCosts[a.stage] = append(a.stageCosts[a.stage], sb.Cost)
		a.capAt = append(a.capAt, 0)
		a.critVal = append(a.critVal, 0)
		a.critNow = append(a.critNow, 0)
		a.settled = append(a.settled, false)
		a.byDeparture[sb.Departure] = append(a.byDeparture[sb.Departure], id)
		// Same reserve-price admission as the unbudgeted engines.
		if a.ledger.AllocateAtLoss() || sb.Cost < a.ledger.Value() {
			a.pool.push(id)
		}
	}

	allowance := allowanceAt(a.budget, a.stage, a.stages)
	for k := 0; k < numTasks; k++ {
		id := a.ledger.AddTask(t)
		winner := a.pool.popEligible(t)
		if winner == core.NoPhone {
			a.ledger.RecordUnserved(t)
			res.Unserved++
			continue
		}
		eff := a.effThreshold(winner)
		if a.ledger.Bid(winner).Cost > eff {
			// Posted-price gate. Effective thresholds never increase, so the
			// phone can never clear a later gate either: discard it (like the
			// heap's lazy deletion) and leave the task unserved rather than
			// skipping to a pricier phone, which would let a high report
			// steer tasks to rivals and muddy the critical-value boundary.
			a.ledger.RecordUnserved(t)
			res.Unserved++
			if a.inst != nil {
				a.inst.ThresholdRejects.Inc()
			}
			continue
		}
		if a.reserved+eff > allowance {
			// Allowance gate: the stage's cumulative tranche cannot cover the
			// cap. Later stages have larger allowances, so the phone returns
			// to the pool; the task goes unserved.
			a.pool.push(winner)
			a.ledger.RecordUnserved(t)
			res.Unserved++
			if a.inst != nil {
				a.inst.AllowanceRejects.Inc()
			}
			continue
		}
		runner := a.pool.peekEligible(t)
		a.ledger.RecordWin(id, winner, runner, t)
		a.capAt[winner] = eff
		a.reserved += eff
		res.Assignments = append(res.Assignments, core.Assignment{Task: id, Phone: winner, Slot: t})
		if a.inst != nil {
			a.inst.Wins.Inc()
			a.inst.Remaining.Set(a.Remaining())
		}
	}

	if a.metrics != nil {
		a.metrics.SlotAllocSeconds.Observe(time.Since(start).Seconds())
		start = time.Now()
	}

	a.settle(t, res)

	if a.metrics != nil {
		a.metrics.PaymentSeconds.Observe(time.Since(start).Seconds())
	}
	return res, nil
}

// settle finalizes payments for winners departing in slot t at their
// exact counterfactual critical value, capped at the reserved stage
// threshold.
func (a *Auction) settle(t core.Slot, res *core.SlotResult) {
	if a.replay {
		return // restore replays allocation only; payments are deterministic
	}
	for _, ph := range a.byDeparture[t] {
		if a.trackDepartures {
			res.Departed = append(res.Departed, ph)
		}
		if a.ledger.WonAt(ph) == 0 {
			continue
		}
		amount := a.criticalValue(ph)
		a.settled[ph] = true
		a.ledger.NotePaid(ph, amount, t)
		res.Payments = append(res.Payments, core.PaymentNotice{Phone: ph, Amount: amount})
	}
}

// criticalValue computes winner i's payment: the supremum of the
// reported costs with which i would still win a task, capped at the
// stage threshold reserved for it (so Σ payments ≤ Σ caps ≤ B).
//
// The unbudgeted cascade critical value is wrong here: the allowance
// gate makes win/lose depend on heap pop ORDER, so a phone that
// truthfully loses only because a pricier-threshold rival drained the
// stage allowance could underbid, pop first, and collect a cascade
// payment above the true boundary. The only bid-independent quantity
// that prices the full mechanism — both gates, stage layout, pop order
// — is the counterfactual: re-run the round's deterministic allocation
// with i's report replaced and find where win flips to lose.
//
// The win/lose boundary is always a comparison against a report-
// independent quantity: another phone's cost (heap order, cascade
// chains), a stage threshold recomputed without i (both gates), or the
// reserve ν (pool admission). The candidate grid {0, other phones'
// costs, cap, ν} therefore brackets the boundary; a binary search finds
// the bracketing pair and a midpoint probe decides whether the win set
// is closed (pay the winning grid point) or half-open with the
// boundary at the losing point (pay that supremum).
//
// The computation is truncated at i's departure slot: nothing past it
// can change whether i wins, and keeping later arrivals out of the
// grid makes the payment a pure function of i's observation window —
// the same value whether it is computed at settlement or after a
// snapshot restore re-derives it at round end (FuzzBudgetSnapshot
// caught an end-of-round grid refining the bracketing pair around an
// algebraic threshold boundary and shifting the settled amount).
func (a *Auction) criticalValue(i core.PhoneID) float64 {
	if a.critNow[i] == a.now {
		return a.critVal[i]
	}
	cap := a.capAt[i]
	bids := a.ledger.Bids()
	arrivals := a.ledger.TaskArrivals()
	until := bids[i].Departure
	if until > a.now {
		until = a.now
	}

	grid := make([]float64, 0, len(bids)+2)
	grid = append(grid, 0, cap, a.ledger.Value())
	for j := range bids {
		if core.PhoneID(j) != i && bids[j].Arrival <= until {
			grid = append(grid, bids[j].Cost)
		}
	}
	sort.Float64s(grid)
	uniq := grid[:1]
	for _, g := range grid[1:] {
		if g != uniq[len(uniq)-1] {
			uniq = append(uniq, g)
		}
	}
	grid = uniq

	// Winning is monotone: a lower report pops earlier against weakly
	// higher stage thresholds (effective thresholds only decay) and the
	// gates never prefer a pricier report. Binary-search the first
	// losing grid point.
	lose := sort.Search(len(grid), func(k int) bool {
		return !a.winsWithBid(bids, arrivals, until, i, grid[k])
	})
	var amount float64
	switch lose {
	case 0:
		// No winning grid point. Unreachable for a real winner (its own
		// cost wins and 0 ≤ cost); pay the cap so IR cannot break.
		amount = cap
	case len(grid):
		// Every candidate wins, including ν: i is pivotal at the reserve.
		amount = a.ledger.Value()
	default:
		gWin, gLose := grid[lose-1], grid[lose]
		if a.winsWithBid(bids, arrivals, until, i, (gWin+gLose)/2) {
			amount = gLose // half-open win set: the supremum is the losing point
		} else {
			amount = gWin
		}
	}
	amount = math.Min(cap, amount)
	a.critVal[i], a.critNow[i] = amount, a.now
	return amount
}

// winsWithBid re-runs the round observed through slot `until` through a
// fresh allocation-only auction with phone i's reported cost replaced
// by b, and reports whether i wins a task. The replay is deterministic
// and covers the full mechanism: stage layout, exclude-self
// thresholds, both gates, and heap order.
func (a *Auction) winsWithBid(bids []core.Bid, arrivals []core.Slot, until core.Slot, i core.PhoneID, b float64) bool {
	cf, err := New(a.ledger.Slots(), a.ledger.Value(), a.ledger.AllocateAtLoss(), a.budget, a.eng)
	if err != nil { // unreachable: the live auction was built with these
		return false
	}
	cf.replay = true
	bi, ti := 0, 0
	var arriving []core.StreamBid
	for t := core.Slot(1); t <= until; t++ {
		arriving = arriving[:0]
		for ; bi < len(bids) && bids[bi].Arrival == t; bi++ {
			c := bids[bi].Cost
			if core.PhoneID(bi) == i {
				c = b
			}
			arriving = append(arriving, core.StreamBid{Departure: bids[bi].Departure, Cost: c})
		}
		tasks := 0
		for ; ti < len(arrivals) && arrivals[ti] == t; ti++ {
			tasks++
		}
		if _, err := cf.Step(arriving, tasks); err != nil {
			return false // unreachable: the live round accepted this stream
		}
	}
	return cf.ledger.WonAt(i) != 0
}

// Outcome assembles the round outcome so far: the ledger's allocation
// with every winner paid its threshold-capped counterfactual critical
// value. Executed (settled) payments are final — the ledger's own
// executed-amount store only runs with the completion lifecycle, which
// budgeted auctions don't support, so the auction keeps its own record.
// Total payments never exceed the budget.
func (a *Auction) Outcome() *core.Outcome {
	out := a.ledger.Outcome(a.pricer)
	for i := range out.Payments {
		ph := core.PhoneID(i)
		if a.ledger.WonAt(ph) == 0 {
			continue
		}
		if a.settled[i] {
			out.Payments[i] = a.critVal[i]
			continue
		}
		out.Payments[i] = a.criticalValue(ph)
	}
	return out
}

// Instance returns a copy of the bids and tasks accumulated so far.
func (a *Auction) Instance() *core.Instance { return a.ledger.Instance() }

var _ core.Auction = (*Auction)(nil)

// poolHeap is the active-bid pool: a binary min-heap on (claimed cost,
// phone ID) with lazy deletion of departed and unassignable entries —
// the same order and semantics as the sequential engine's heap.
type poolHeap struct {
	ledger *core.Ledger
	items  []core.PhoneID
}

func (h *poolHeap) less(a, b core.PhoneID) bool {
	ca, cb := h.ledger.Bid(a).Cost, h.ledger.Bid(b).Cost
	if ca != cb {
		return ca < cb
	}
	return a < b
}

func (h *poolHeap) push(p core.PhoneID) {
	h.items = append(h.items, p)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *poolHeap) pop() core.PhoneID {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.less(h.items[l], h.items[small]) {
			small = l
		}
		if r < len(h.items) && h.less(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// popEligible pops the cheapest phone active in slot t that can still
// take a task, permanently discarding departed or assigned entries.
func (h *poolHeap) popEligible(t core.Slot) core.PhoneID {
	for len(h.items) > 0 {
		p := h.pop()
		if h.ledger.Bid(p).Departure >= t && h.ledger.Assignable(p) {
			return p
		}
	}
	return core.NoPhone
}

// peekEligible reports the phone popEligible would return next,
// discarding dead entries but leaving the survivor in place.
func (h *poolHeap) peekEligible(t core.Slot) core.PhoneID {
	for len(h.items) > 0 {
		p := h.items[0]
		if h.ledger.Bid(p).Departure >= t && h.ledger.Assignable(p) {
			return p
		}
		h.pop()
	}
	return core.NoPhone
}
