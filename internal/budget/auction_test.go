package budget

import (
	"errors"
	"math"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/obs"
	"dynacrowd/internal/workload"
)

func TestValidateBudget(t *testing.T) {
	for _, b := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1, -0.0} {
		if err := ValidateBudget(b); !errors.Is(err, ErrInvalidBudget) {
			t.Errorf("ValidateBudget(%g) = %v, want ErrInvalidBudget", b, err)
		}
		if _, err := New(10, 30, false, b, nil); !errors.Is(err, ErrInvalidBudget) {
			t.Errorf("New with budget %g = %v, want ErrInvalidBudget", b, err)
		}
		mech := &Mechanism{Budget: b}
		if _, err := mech.Run(counterexample()); !errors.Is(err, ErrInvalidBudget) {
			t.Errorf("Mechanism.Run with budget %g = %v, want ErrInvalidBudget", b, err)
		}
		naive := &NaiveTruncated{Budget: b}
		if _, err := naive.Run(counterexample()); !errors.Is(err, ErrInvalidBudget) {
			t.Errorf("NaiveTruncated.Run with budget %g = %v, want ErrInvalidBudget", b, err)
		}
	}
	for _, b := range []float64{1e-9, 1, 1e12} {
		if err := ValidateBudget(b); err != nil {
			t.Errorf("ValidateBudget(%g) = %v, want nil", b, err)
		}
	}
}

func TestEngineByName(t *testing.T) {
	for name, want := range map[string]string{"": "stage", "stage": "stage", "frugal": "frugal"} {
		eng, err := EngineByName(name)
		if err != nil || eng.Name() != want {
			t.Errorf("EngineByName(%q) = %v, %v; want %s", name, eng, err, want)
		}
	}
	if _, err := EngineByName("hungarian"); err == nil {
		t.Error("EngineByName accepted an unknown engine")
	}
}

func TestStageLayout(t *testing.T) {
	// m=50 (Table I): K=7, stage ends 1,2,4,7,13,25,50, allowances
	// B/64 .. B, every slot covered exactly once.
	if got := NumStages(50); got != 7 {
		t.Fatalf("NumStages(50) = %d, want 7", got)
	}
	wantEnds := []core.Slot{1, 2, 4, 7, 13, 25, 50}
	for k := 1; k <= 7; k++ {
		if got := stageEnd(50, k, 7); got != wantEnds[k-1] {
			t.Errorf("stageEnd(50,%d) = %d, want %d", k, got, wantEnds[k-1])
		}
	}
	if got := allowanceAt(64, 7, 7); got != 64 {
		t.Errorf("allowanceAt(64, K, K) = %g, want the full budget", got)
	}
	if got := allowanceAt(64, 1, 7); got != 1 {
		t.Errorf("allowanceAt(64, 1, 7) = %g, want 1", got)
	}
	// Degenerate single-slot round: one stage holding the whole budget.
	if got := NumStages(1); got != 1 {
		t.Errorf("NumStages(1) = %d, want 1", got)
	}
	if got := stageEnd(1, 1, 1); got != 1 {
		t.Errorf("stageEnd(1,1,1) = %d, want 1", got)
	}
}

func TestThresholdEngines(t *testing.T) {
	// Empty samples must be non-binding (ν): the allowance gate paces
	// spending until density information exists.
	for _, eng := range []Engine{StageSampling{}, Frugal{}} {
		if got := eng.Threshold(10, 30, nil); got != 30 {
			t.Errorf("%s: empty-sample threshold %g, want ν=30", eng.Name(), got)
		}
	}
	// Proportional share: sample {1,2,4,20}, allowance 12 → deepest
	// prefix with c_(i) ≤ 12/i is i=3 (4 ≤ 4), so post 4.
	if got := (StageSampling{}).Threshold(12, 30, []float64{1, 2, 4, 20}); got != 4 {
		t.Errorf("StageSampling share = %g, want 4", got)
	}
	// The posted share never exceeds ν.
	if got := (StageSampling{}).Threshold(1000, 30, []float64{1}); got != 30 {
		t.Errorf("StageSampling cap = %g, want ν=30", got)
	}
	// Frugal: 0.9-quantile of ten costs is the 9th order statistic.
	sample := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := (Frugal{}).Threshold(100, 30, sample); got != 9 {
		t.Errorf("Frugal quantile = %g, want 9", got)
	}
	if got := (Frugal{Coverage: 0.5}).Threshold(100, 30, sample); got != 5 {
		t.Errorf("Frugal median = %g, want 5", got)
	}
	// Frugal is allowance-capped too.
	if got := (Frugal{}).Threshold(4, 30, sample); got != 4 {
		t.Errorf("Frugal allowance cap = %g, want 4", got)
	}
}

func TestCompletionsUnsupported(t *testing.T) {
	a, err := New(5, 30, false, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Complete(0); !errors.Is(err, ErrCompletionsUnsupported) {
		t.Errorf("Complete = %v, want ErrCompletionsUnsupported", err)
	}
	if _, err := a.Default(0); !errors.Is(err, ErrCompletionsUnsupported) {
		t.Errorf("Default = %v, want ErrCompletionsUnsupported", err)
	}
}

func TestStepErrors(t *testing.T) {
	a, err := New(2, 30, false, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Step(nil, -1); err == nil {
		t.Error("negative task count accepted")
	}
	if _, err := a.Step([]core.StreamBid{{Departure: 99, Cost: 5}}, 0); err == nil {
		t.Error("departure beyond the round accepted")
	}
	if _, err := a.Step(nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Step(nil, 0); err != nil {
		t.Fatal(err)
	}
	if !a.Done() {
		t.Fatal("round should be complete")
	}
	if _, err := a.Step(nil, 0); err == nil {
		t.Error("Step after the round accepted")
	}
}

// TestBudgetInvariantsRandom runs both engines over random rounds at
// several budgets and asserts the structural invariants on every
// outcome: Σ payments ≤ B, payments within [cost, reserved cap],
// Reserved ≥ Σ payments, and welfare consistency.
func TestBudgetInvariantsRandom(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 20
	scn.PhoneRate = 3
	scn.TaskRate = 2
	for _, engName := range []string{"stage", "frugal"} {
		eng, err := EngineByName(engName)
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []float64{5, 60, 1e6} {
			for seed := uint64(1); seed <= 8; seed++ {
				in, err := scn.Generate(seed)
				if err != nil {
					t.Fatal(err)
				}
				a, err := New(in.Slots, in.Value, in.AllocateAtLoss, budget, eng)
				if err != nil {
					t.Fatal(err)
				}
				out, err := streamInstance(a, in)
				if err != nil {
					t.Fatal(err)
				}
				if got := out.TotalPayment(); got > budget+1e-9 {
					t.Fatalf("%s B=%g seed %d: paid %g > budget", engName, budget, seed, got)
				}
				if got := out.TotalPayment(); got > a.Reserved()+1e-9 {
					t.Fatalf("%s B=%g seed %d: paid %g > reserved %g", engName, budget, seed, got, a.Reserved())
				}
				if a.Reserved() > budget+1e-9 {
					t.Fatalf("%s B=%g seed %d: reserved %g > budget", engName, budget, seed, a.Reserved())
				}
				for _, i := range out.Allocation.Winners() {
					if out.Payments[i] < in.Bids[i].Cost-1e-9 {
						t.Fatalf("%s B=%g seed %d: phone %d paid %g below cost %g",
							engName, budget, seed, i, out.Payments[i], in.Bids[i].Cost)
					}
					if out.Payments[i] > in.Value+1e-9 {
						t.Fatalf("%s B=%g seed %d: phone %d paid %g above ν", engName, budget, seed, i, out.Payments[i])
					}
				}
				for i := range in.Bids {
					if out.Allocation.WonAt[i] == 0 && out.Payments[i] != 0 {
						t.Fatalf("%s B=%g seed %d: loser %d paid %g", engName, budget, seed, i, out.Payments[i])
					}
				}
			}
		}
	}
}

// TestBudgetGatesAndInstruments drives a directed round through both
// gates and checks the observability bundle and the stage trace events.
func TestBudgetGatesAndInstruments(t *testing.T) {
	// m=4 → K=3, stage ends 1,2,4. B=8 → allowances 2,4,8.
	a, err := New(4, 30, false, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	a.SetInstruments(NewMetrics(reg))
	tr := obs.NewTracer(64)
	a.SetTracer(tr)

	// Slot 1 (stage 1, allowance 2, empty sample → threshold ν=30):
	// reserving ν breaches the allowance, so the task goes unserved and
	// the cheap phone stays pooled. The cost-2 phone departs immediately,
	// contributing only its sample point.
	if _, err := a.Step([]core.StreamBid{{Departure: 4, Cost: 1}, {Departure: 1, Cost: 2}}, 1); err != nil {
		t.Fatal(err)
	}
	if got := a.Reserved(); got != 0 {
		t.Fatalf("allowance gate leaked a reserve: %g", got)
	}
	// Slot 2 (stage 2, allowance 4, sample {1,2}): the cost-1 phone wins
	// with its exclude-self cap min(30, 4/1) = 4; the arriving cost-9
	// phone exceeds its full-sample threshold min(30, 4/2) = 2 and is
	// discarded.
	if _, err := a.Step([]core.StreamBid{{Departure: 4, Cost: 9}}, 2); err != nil {
		t.Fatal(err)
	}
	if got := a.Reserved(); got != 4 {
		t.Fatalf("reserved %g after the stage-2 win, want 4", got)
	}
	if _, err := a.Step(nil, 0); err != nil {
		t.Fatal(err)
	}
	res, err := a.Step(nil, 0) // slot 4: both phones depart
	if err != nil {
		t.Fatal(err)
	}

	m := a.inst
	if got := m.Wins.Value(); got != 1 {
		t.Errorf("wins counter %d, want 1", got)
	}
	if got := m.AllowanceRejects.Value(); got != 1 {
		t.Errorf("allowance rejects %d, want 1", got)
	}
	if got := m.ThresholdRejects.Value(); got < 1 {
		t.Errorf("threshold rejects %d, want ≥ 1", got)
	}
	if got := m.Remaining.Value(); got != 4 {
		t.Errorf("remaining gauge %g, want 4", got)
	}
	if got := m.Stage.Value(); got < 2 {
		t.Errorf("stage gauge %d, want ≥ 2", got)
	}

	var stageEvents int
	for _, ev := range tr.Recent(64) {
		if ev.Type == obs.EventBudgetStage {
			stageEvents++
		}
	}
	if stageEvents != 3 {
		t.Errorf("budget_stage events %d, want one per stage (3)", stageEvents)
	}

	// The winner departs in slot 4 and is paid at most its cap.
	if len(res.Payments) != 1 {
		t.Fatalf("payments at departure: %+v", res.Payments)
	}
	if got := res.Payments[0].Amount; got > 4+1e-9 || got < 1 {
		t.Errorf("settled payment %g outside [cost, cap] = [1, 4]", got)
	}
	out := a.Outcome()
	if out.Payments[0] != res.Payments[0].Amount {
		t.Errorf("outcome payment %g disagrees with the settled notice %g", out.Payments[0], res.Payments[0].Amount)
	}
}

// TestBudgetExhausted pins the typed exhaustion signal the platform
// surfaces as a bid rejection.
func TestBudgetExhausted(t *testing.T) {
	// One slot, one stage, allowance = B. A single cheap phone wins with
	// the empty-sample cap min(ν, ·) = ν = B, committing the full budget.
	a, err := New(1, 30, false, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.BudgetExhausted() {
		t.Fatal("fresh auction reports exhaustion")
	}
	if _, err := a.Step([]core.StreamBid{{Departure: 1, Cost: 2}}, 1); err != nil {
		t.Fatal(err)
	}
	if !a.BudgetExhausted() {
		t.Fatalf("full reserve left Remaining %g but not exhausted", a.Remaining())
	}
}

// TestMechanismNames pins the mechanism naming used by sweeps and docs.
func TestMechanismNames(t *testing.T) {
	if got := (&Mechanism{Budget: 40}).Name(); got != "budget-stage-B40" {
		t.Errorf("default name %q", got)
	}
	if got := (&Mechanism{Budget: 2.5, Engine: Frugal{}}).Name(); got != "budget-frugal-B2.5" {
		t.Errorf("frugal name %q", got)
	}
	if got := (&NaiveTruncated{Budget: 40}).Name(); got != "naive-truncated-B40" {
		t.Errorf("naive name %q", got)
	}
}
