package matching

import "math"

// MaxWeightMatching computes a maximum weight matching between numLeft
// left vertices and numRight right vertices using the O(s³) Hungarian
// algorithm, where s = max(numLeft, numRight). Only strictly positive
// weights are matched; vertices may remain unmatched.
//
// The matching is found by reducing to a square assignment problem:
// the weight matrix is padded to s×s with zero entries, the assignment
// problem minimizing Σ(-w) is solved with dual potentials, and pairs
// joined through non-positive entries are discarded.
func MaxWeightMatching(numLeft, numRight int, w WeightFunc) Result {
	return NewSolver(numLeft, numRight, w).Result()
}

// Solver solves a max-weight matching instance and retains the optimal
// dual potentials, enabling O(s²) post-optimal queries. The offline VCG
// mechanism uses WeightWithoutRight to price each winner without
// re-solving from scratch.
type Solver struct {
	numLeft, numRight int
	s                 int         // square size
	cost              [][]float64 // padded s×s minimization matrix (-w clamped)
	u, v              []float64   // optimal potentials (1-based)
	p                 []int       // p[j]: row matched to column j (1-based)
	weight            float64     // optimal matching weight

	// scratch buffers reused across queries
	qu, qv []float64
	qp     []int
	minv   []float64
	used   []bool
	way    []int
}

// NewSolver builds and solves the instance.
func NewSolver(numLeft, numRight int, w WeightFunc) *Solver {
	s := numLeft
	if numRight > s {
		s = numRight
	}
	sv := &Solver{numLeft: numLeft, numRight: numRight, s: s}
	if s == 0 {
		return sv
	}
	sv.cost = make([][]float64, s)
	flat := make([]float64, s*s)
	for i := range sv.cost {
		sv.cost[i], flat = flat[:s:s], flat[s:]
		if i >= numLeft {
			continue
		}
		for j := 0; j < numRight; j++ {
			if wt := w(i, j); wt > 0 {
				sv.cost[i][j] = -wt
			}
		}
	}

	sv.u = make([]float64, s+1)
	sv.v = make([]float64, s+1)
	sv.p = make([]int, s+1)
	sv.minv = make([]float64, s+1)
	sv.used = make([]bool, s+1)
	sv.way = make([]int, s+1)

	for i := 1; i <= s; i++ {
		assignRow(sv.cost, nil, sv.u, sv.v, sv.p, sv.minv, sv.used, sv.way, i, s)
	}
	sv.weight = -matchedCost(sv.cost, nil, sv.p, s)
	return sv
}

// Weight returns the optimal matching weight.
func (sv *Solver) Weight() float64 { return sv.weight }

// Result extracts the matching in the package's Result form.
func (sv *Solver) Result() Result {
	res := Result{MatchLeft: make([]int, sv.numLeft)}
	for i := range res.MatchLeft {
		res.MatchLeft[i] = Unmatched
	}
	for j := 1; j <= sv.s; j++ {
		i := sv.p[j] - 1
		if i < 0 || i >= sv.numLeft || j-1 >= sv.numRight {
			continue
		}
		if c := sv.cost[i][j-1]; c < 0 {
			res.MatchLeft[i] = j - 1
			res.Weight += -c
		}
	}
	return res
}

// MatchedLeftOf returns the left vertex matched to right vertex j, or
// Unmatched (padding pairs and non-positive edges count as unmatched).
func (sv *Solver) MatchedLeftOf(j int) int {
	if j < 0 || j >= sv.numRight {
		return Unmatched
	}
	i := sv.p[j+1] - 1
	if i < 0 || i >= sv.numLeft || sv.cost[i][j] >= 0 {
		return Unmatched
	}
	return i
}

// WeightWithoutRight returns the optimal matching weight of the instance
// with right vertex j removed, in O(s²): removing a right vertex is
// equivalent to zeroing its cost column (turning it into padding). The
// retained optimal duals stay feasible after lowering v[j] to restore
// column feasibility, the previously matched row is freed, and a single
// Hungarian augmentation re-optimizes. An unmatched j leaves the optimum
// unchanged. The solver itself is not modified.
func (sv *Solver) WeightWithoutRight(j int) float64 {
	if sv.MatchedLeftOf(j) == Unmatched {
		return sv.weight
	}
	s := sv.s
	if sv.qu == nil {
		sv.qu = make([]float64, s+1)
		sv.qv = make([]float64, s+1)
		sv.qp = make([]int, s+1)
	}
	copy(sv.qu, sv.u)
	copy(sv.qv, sv.v)
	copy(sv.qp, sv.p)

	col := j + 1
	removed := []int{col}
	// Restore dual feasibility on the zeroed column: need -u[i] - v[col] ≥ 0.
	minV := math.Inf(1)
	for i := 1; i <= s; i++ {
		if nv := -sv.qu[i]; nv < minV {
			minV = nv
		}
	}
	if sv.qv[col] > minV {
		sv.qv[col] = minV
	}
	freedRow := sv.qp[col]
	sv.qp[col] = 0
	assignRow(sv.cost, removed, sv.qu, sv.qv, sv.qp, sv.minv, sv.used, sv.way, freedRow, s)
	return -matchedCost(sv.cost, removed, sv.qp, s)
}

// costAt reads the effective minimization cost of (row, col), 1-based,
// honoring removed columns (treated as zero padding).
func costAt(cost [][]float64, removed []int, i, j int) float64 {
	for _, r := range removed {
		if r == j {
			return 0
		}
	}
	return cost[i-1][j-1]
}

func matchedCost(cost [][]float64, removed []int, p []int, s int) float64 {
	var total float64
	for j := 1; j <= s; j++ {
		if p[j] != 0 {
			total += costAt(cost, removed, p[j], j)
		}
	}
	return total
}

// assignRow runs one iteration of the O(s³) shortest-augmenting-path
// Hungarian algorithm: it matches row i0 while keeping the duals (u, v)
// feasible and all previously matched edges tight, so the resulting
// matching is optimal for the currently matched row set. Internally
// 1-based with a virtual row/column 0, following the standard
// presentation.
func assignRow(cost [][]float64, removed []int, u, v []float64, p []int, minv []float64, used []bool, way []int, i0Row, s int) {
	p[0] = i0Row
	j0 := 0
	for j := 0; j <= s; j++ {
		minv[j] = math.Inf(1)
		used[j] = false
	}
	for {
		used[j0] = true
		i0 := p[j0]
		delta := math.Inf(1)
		j1 := 0
		for j := 1; j <= s; j++ {
			if used[j] {
				continue
			}
			cur := costAt(cost, removed, i0, j) - u[i0] - v[j]
			if cur < minv[j] {
				minv[j] = cur
				way[j] = j0
			}
			if minv[j] < delta {
				delta = minv[j]
				j1 = j
			}
		}
		for j := 0; j <= s; j++ {
			if used[j] {
				u[p[j]] += delta
				v[j] -= delta
			} else {
				minv[j] -= delta
			}
		}
		j0 = j1
		if p[j0] == 0 {
			break
		}
	}
	// Unwind the alternating path, flipping matched edges.
	for j0 != 0 {
		j1 := way[j0]
		p[j0] = p[j1]
		j0 = j1
	}
}
