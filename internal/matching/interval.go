package matching

import "sort"

// IntervalItem is one candidate in an interval-capacity assignment
// problem: the item may occupy any one slot of its inclusive window
// [Lo, Hi] (slots are 1-based), contributing Weight if placed. Items
// whose weight is not strictly positive (including NaN) are never
// placed, matching the package-wide convention that non-positive edges
// are absent. Windows are clamped to [1, numSlots]; an item whose
// clamped window is empty is never placed.
type IntervalItem struct {
	Lo, Hi int
	Weight float64
}

// IntervalAssignment is the result of SolveInterval: a maximum-weight
// placement of items into slot capacities, plus the solver state needed
// to answer substitute (VCG sensitivity) queries without re-solving.
//
// The problem is the offline auction's bipartite matching collapsed
// along its special structure: every task of a slot is interchangeable
// and an item's weight does not depend on which task it serves, so the
// feasible item sets form a transversal matroid over the items and the
// weight-ordered augmenting-path greedy below is exact. SolveInterval
// is the successive-shortest-augmenting-path solver specialized to this
// structure: because every edge incident to an item carries the same
// weight, the cheapest augmenting path for the heaviest unplaced item
// is any augmenting path, found by one BFS over the sparse interval
// adjacency. See docs/THEORY.md §6 for the optimality and payment
// proofs.
type IntervalAssignment struct {
	// SlotOf maps each item to its assigned slot, or Unmatched.
	SlotOf []int
	// Weight is the total weight of placed items.
	Weight float64

	numSlots int
	items    []IntervalItem // windows clamped to [1, numSlots]
	order    []int          // placeable items, weight-descending

	free      []int   // slot -> remaining capacity
	winnersAt [][]int // slot -> items currently placed there
	posInSlot []int   // item -> its index in winnersAt[SlotOf[item]]

	// BFS scratch, version-stamped so augmentations never re-clear.
	visited  []int
	fromSlot []int
	fromItem []int
	ver      int
	queue    []int
}

// SolveInterval places items into slots to maximize total weight.
// capacity must have length numSlots+1 and is indexed 1-based
// (capacity[0] is ignored); capacity[t] is the number of items slot t
// can hold. Items are processed in weight-descending order (index
// ascending on ties, so the result is deterministic); each is placed
// via a BFS augmenting path that may displace already-placed items
// within their own windows. By the matroid greedy theorem the final
// placement is optimal. Worst case O(n·m·w̄) for n items, m slots and
// mean window w̄; near-linear on the short-window instances the
// workload generators produce.
func SolveInterval(numSlots int, capacity []int, items []IntervalItem) *IntervalAssignment {
	a := &IntervalAssignment{
		SlotOf:    make([]int, len(items)),
		numSlots:  numSlots,
		items:     make([]IntervalItem, len(items)),
		free:      make([]int, numSlots+1),
		winnersAt: make([][]int, numSlots+1),
		posInSlot: make([]int, len(items)),
		visited:   make([]int, numSlots+1),
		fromSlot:  make([]int, numSlots+1),
		fromItem:  make([]int, numSlots+1),
	}
	copy(a.free[1:], capacity[1:])
	for i, it := range items {
		a.SlotOf[i] = Unmatched
		if it.Lo < 1 {
			it.Lo = 1
		}
		if it.Hi > numSlots {
			it.Hi = numSlots
		}
		a.items[i] = it
		if it.Weight > 0 && it.Lo <= it.Hi {
			a.order = append(a.order, i)
		}
	}
	sort.SliceStable(a.order, func(x, y int) bool {
		return a.items[a.order[x]].Weight > a.items[a.order[y]].Weight
	})
	for _, i := range a.order {
		if a.augment(i) {
			a.Weight += a.items[i].Weight
		}
	}
	return a
}

// augment tries to place item via a displacement chain: BFS over slots,
// where slot t expands to every slot in the window of an item currently
// placed at t (that item can move there, freeing t). Reaching a slot
// with spare capacity wins; the chain is then unwound, moving each
// displaced item one hop and finally seating the new item.
func (a *IntervalAssignment) augment(item int) bool {
	a.ver++
	q := a.queue[:0]
	it := a.items[item]
	for t := it.Lo; t <= it.Hi; t++ {
		a.visited[t] = a.ver
		a.fromItem[t] = -1
		q = append(q, t)
	}
	for qi := 0; qi < len(q); qi++ {
		t := q[qi]
		if a.free[t] > 0 {
			for a.fromItem[t] != -1 {
				moved, from := a.fromItem[t], a.fromSlot[t]
				a.remove(moved, from)
				a.place(moved, t)
				t = from
			}
			a.place(item, t)
			a.queue = q
			return true
		}
		for _, w := range a.winnersAt[t] {
			ww := a.items[w]
			for v := ww.Lo; v <= ww.Hi; v++ {
				if a.visited[v] != a.ver {
					a.visited[v] = a.ver
					a.fromItem[v] = w
					a.fromSlot[v] = t
					q = append(q, v)
				}
			}
		}
	}
	a.queue = q
	return false
}

func (a *IntervalAssignment) place(item, t int) {
	a.SlotOf[item] = t
	a.posInSlot[item] = len(a.winnersAt[t])
	a.winnersAt[t] = append(a.winnersAt[t], item)
	a.free[t]--
}

func (a *IntervalAssignment) remove(item, t int) {
	ws := a.winnersAt[t]
	p := a.posInSlot[item]
	last := len(ws) - 1
	ws[p] = ws[last]
	a.posInSlot[ws[p]] = p
	a.winnersAt[t] = ws[:last]
	a.free[t]++
}

// SubstituteWeights returns, for every placed item i, the weight of the
// heaviest unplaced item that could take over i's seat — i.e. the best
// j with (placed set − i + j) feasible — or 0 when no such item exists.
// Unplaced items map to 0. By the matroid deletion-exchange theorem the
// optimum without i is exactly Weight − w_i + SubstituteWeights()[i],
// which is what turns this query into a VCG payment (docs/THEORY.md
// §6): removing i frees one capacity unit at its slot, and j can claim
// that unit iff the slot lies in the displacement closure of j's
// window. No path to an originally-free slot can exist (it would
// contradict optimality of the placement), so the slot test is exact.
//
// Each placed item's window contains its own slot, so the displacement
// closure of any slot is a contiguous interval [L(t), R(t)]; the best
// substitute per slot is then found by painting losers' closure
// intervals heaviest-first with a union-find skip. O(m²) worst case in
// the closure fixpoint (m slots), near-linear when windows are short.
func (a *IntervalAssignment) SubstituteWeights() []float64 {
	sub := make([]float64, len(a.items))
	m := a.numSlots

	// One-step displacement hull per slot: the union of windows of the
	// items placed there (plus the slot itself).
	jLo := make([]int, m+1)
	jHi := make([]int, m+1)
	for t := 1; t <= m; t++ {
		jLo[t], jHi[t] = t, t
	}
	for i, t := range a.SlotOf {
		if t == Unmatched {
			continue
		}
		if a.items[i].Lo < jLo[t] {
			jLo[t] = a.items[i].Lo
		}
		if a.items[i].Hi > jHi[t] {
			jHi[t] = a.items[i].Hi
		}
	}

	// Displacement closure per slot: the smallest interval containing t
	// that is closed under the one-step hulls of its member slots. Each
	// fixpoint iteration scans exactly one newly admitted slot.
	L := make([]int, m+1)
	R := make([]int, m+1)
	for t := 1; t <= m; t++ {
		lo, hi := t, t
		l, r := jLo[t], jHi[t]
		for lo > l || hi < r {
			var s int
			if lo > l {
				lo--
				s = lo
			} else {
				hi++
				s = hi
			}
			if jLo[s] < l {
				l = jLo[s]
			}
			if jHi[s] > r {
				r = jHi[s]
			}
		}
		L[t], R[t] = l, r
	}

	// Paint each loser's coverage interval heaviest-first; nxt is a
	// union-find "next unpainted slot ≥ t" so every slot is painted at
	// most once, by its heaviest covering loser.
	paint := make([]float64, m+1)
	painted := make([]bool, m+1)
	nxt := make([]int, m+2)
	for t := range nxt {
		nxt[t] = t
	}
	find := func(t int) int {
		for nxt[t] != t {
			nxt[t] = nxt[nxt[t]]
			t = nxt[t]
		}
		return t
	}
	for _, j := range a.order { // weight-descending
		if a.SlotOf[j] != Unmatched {
			continue
		}
		it := a.items[j]
		covL, covR := m+1, 0
		for t := it.Lo; t <= it.Hi; t++ {
			if L[t] < covL {
				covL = L[t]
			}
			if R[t] > covR {
				covR = R[t]
			}
		}
		for t := find(covL); t <= covR; t = find(t + 1) {
			paint[t] = it.Weight
			painted[t] = true
			nxt[t] = t + 1
		}
	}
	for i, t := range a.SlotOf {
		if t != Unmatched && painted[t] {
			sub[i] = paint[t]
		}
	}
	return sub
}
