package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func denseWeights(m [][]float64) WeightFunc {
	return func(l, r int) float64 { return m[l][r] }
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestMaxWeightMatchingEmpty(t *testing.T) {
	for _, tc := range []struct{ l, r int }{{0, 0}, {0, 5}, {5, 0}} {
		res := MaxWeightMatching(tc.l, tc.r, func(int, int) float64 { return 1 })
		if res.Weight != 0 || res.Size() != 0 {
			t.Errorf("(%d,%d): want empty matching, got weight %g size %d", tc.l, tc.r, res.Weight, res.Size())
		}
		if len(res.MatchLeft) != tc.l {
			t.Errorf("(%d,%d): MatchLeft length %d", tc.l, tc.r, len(res.MatchLeft))
		}
	}
}

func TestMaxWeightMatchingSingleEdge(t *testing.T) {
	res := MaxWeightMatching(1, 1, func(int, int) float64 { return 7 })
	if res.Weight != 7 || res.MatchLeft[0] != 0 {
		t.Fatalf("got %+v, want weight 7 match [0]", res)
	}
}

func TestMaxWeightMatchingSkipsNonPositive(t *testing.T) {
	w := [][]float64{
		{-3, 0},
		{0, -1},
	}
	res := MaxWeightMatching(2, 2, denseWeights(w))
	if res.Weight != 0 || res.Size() != 0 {
		t.Fatalf("non-positive edges must stay unmatched, got %+v", res)
	}
}

func TestMaxWeightMatchingPrefersWeightOverCardinality(t *testing.T) {
	// Matching both pairs yields 1+1=2; matching only (0,1) yields 10.
	w := [][]float64{
		{1, 10},
		{0, 1},
	}
	res := MaxWeightMatching(2, 2, denseWeights(w))
	if !almostEqual(res.Weight, 10) {
		t.Fatalf("want weight 10 (drop cardinality), got %g (%v)", res.Weight, res.MatchLeft)
	}
	if res.MatchLeft[0] != 1 || res.MatchLeft[1] != Unmatched {
		t.Fatalf("want [1, Unmatched], got %v", res.MatchLeft)
	}
}

func TestMaxWeightMatchingClassic(t *testing.T) {
	// Known 3x3 assignment instance: optimum picks diag-ish 9+8+7=24?
	w := [][]float64{
		{9, 2, 7},
		{6, 4, 3},
		{5, 8, 1},
	}
	// Exhaustively: (0,0)+(1,2)+(2,1)=9+3+8=20; (0,0)+(1,1)+(2,2)=14;
	// (0,2)+(1,0)+(2,1)=7+6+8=21; best is 21.
	res := MaxWeightMatching(3, 3, denseWeights(w))
	oracle := BruteForceMaxWeight(3, 3, denseWeights(w))
	if !almostEqual(res.Weight, oracle.Weight) {
		t.Fatalf("hungarian %g != brute force %g", res.Weight, oracle.Weight)
	}
	if !almostEqual(res.Weight, 21) {
		t.Fatalf("want 21, got %g", res.Weight)
	}
}

func TestMaxWeightMatchingRectangular(t *testing.T) {
	// More lefts than rights and vice versa.
	w := [][]float64{
		{5, 1},
		{4, 2},
		{3, 9},
	}
	res := MaxWeightMatching(3, 2, denseWeights(w))
	oracle := BruteForceMaxWeight(3, 2, denseWeights(w))
	if !almostEqual(res.Weight, oracle.Weight) {
		t.Fatalf("hungarian %g != oracle %g", res.Weight, oracle.Weight)
	}
	if !res.Verify(3, 2, denseWeights(w)) {
		t.Fatalf("invalid matching %+v", res)
	}

	wt := [][]float64{{5, 4, 3}, {1, 2, 9}}
	res2 := MaxWeightMatching(2, 3, denseWeights(wt))
	oracle2 := BruteForceMaxWeight(2, 3, denseWeights(wt))
	if !almostEqual(res2.Weight, oracle2.Weight) {
		t.Fatalf("hungarian %g != oracle %g", res2.Weight, oracle2.Weight)
	}
}

func randomMatrix(rng *rand.Rand, l, r int, density float64, lo, hi float64) [][]float64 {
	m := make([][]float64, l)
	for i := range m {
		m[i] = make([]float64, r)
		for j := range m[i] {
			if rng.Float64() < density {
				m[i][j] = lo + rng.Float64()*(hi-lo)
			}
		}
	}
	return m
}

// TestSolversAgreeRandom cross-checks all four solvers — Hungarian,
// SPFA flow, successive-shortest-path, brute force — on random
// instances of increasing size (brute force only where tractable).
func TestSolversAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		l := 1 + rng.Intn(7)
		r := 1 + rng.Intn(7)
		m := randomMatrix(rng, l, r, 0.6, -2, 10)
		w := denseWeights(m)
		b := BruteForceMaxWeight(l, r, w)
		for name, solve := range solvers() {
			res := solve(l, r, w)
			if !almostEqual(res.Weight, b.Weight) {
				t.Fatalf("trial %d (%dx%d): %s %g != brute %g\nmatrix %v", trial, l, r, name, res.Weight, b.Weight, m)
			}
			if !res.Verify(l, r, w) {
				t.Fatalf("trial %d: %s produced invalid matching %+v", trial, name, res)
			}
		}
	}
}

// solvers returns every generic max-weight matcher in the package, for
// the agreement sweeps.
func solvers() map[string]func(int, int, WeightFunc) Result {
	return map[string]func(int, int, WeightFunc) Result{
		"hungarian": MaxWeightMatching,
		"flow":      MaxWeightMatchingFlow,
		"ssp":       MaxWeightMatchingSSP,
	}
}

// TestSolversAgreeLarger cross-checks Hungarian vs flow vs ssp on sizes
// beyond brute-force reach.
func TestSolversAgreeLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		l := 10 + rng.Intn(40)
		r := 10 + rng.Intn(40)
		m := randomMatrix(rng, l, r, 0.3, 0, 100)
		w := denseWeights(m)
		h := MaxWeightMatching(l, r, w)
		if !h.Verify(l, r, w) {
			t.Fatalf("trial %d: invalid hungarian matching", trial)
		}
		for name, solve := range solvers() {
			res := solve(l, r, w)
			if !almostEqual(h.Weight, res.Weight) {
				t.Fatalf("trial %d (%dx%d): hungarian %g != %s %g", trial, l, r, h.Weight, name, res.Weight)
			}
			if !res.Verify(l, r, w) {
				t.Fatalf("trial %d: %s produced invalid matching", trial, name)
			}
		}
	}
}

// TestSolversIgnoreNaNWeights: a NaN edge weight means "no usable edge"
// for every solver (NaN > 0 is false), and Verify rejects any matching
// that claims one. Regression for the offline engines, whose weight
// functions must never let a poisoned cost select an edge.
func TestSolversIgnoreNaNWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		l := 1 + rng.Intn(6)
		r := 1 + rng.Intn(6)
		m := randomMatrix(rng, l, r, 0.7, 0, 10)
		clean := make([][]float64, l)
		for i := range m {
			clean[i] = append([]float64(nil), m[i]...)
			for j := range m[i] {
				if rng.Float64() < 0.25 {
					m[i][j] = math.NaN() // poisoned: must behave as absent
					clean[i][j] = 0
				}
			}
		}
		want := BruteForceMaxWeight(l, r, denseWeights(clean)).Weight
		for name, solve := range solvers() {
			res := solve(l, r, denseWeights(m))
			if !almostEqual(res.Weight, want) || math.IsNaN(res.Weight) {
				t.Fatalf("trial %d: %s with NaN edges = %g, want %g", trial, name, res.Weight, want)
			}
			if !res.Verify(l, r, denseWeights(m)) {
				t.Fatalf("trial %d: %s matched a NaN edge: %+v", trial, name, res)
			}
		}
	}
	// Verify itself must reject a matching asserting a NaN edge.
	nanW := func(int, int) float64 { return math.NaN() }
	if (Result{MatchLeft: []int{0}, Weight: 1}).Verify(1, 1, nanW) {
		t.Fatal("Verify accepted a NaN-weight edge")
	}
}

// TestSolversRectangularTasksExceedPhones: regression for the offline
// reduction with more tasks (left) than phones (right) — and the
// transpose — where column-padded solvers must leave the surplus side
// unmatched rather than misindex.
func TestSolversRectangularTasksExceedPhones(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shapes := [][2]int{{9, 3}, {3, 9}, {12, 1}, {1, 12}, {7, 2}}
	for trial, shape := range shapes {
		l, r := shape[0], shape[1]
		m := randomMatrix(rng, l, r, 0.8, -1, 10)
		w := denseWeights(m)
		want := BruteForceMaxWeight(l, r, w).Weight
		for name, solve := range solvers() {
			res := solve(l, r, w)
			if !almostEqual(res.Weight, want) {
				t.Fatalf("shape %d (%dx%d): %s %g != brute %g", trial, l, r, name, res.Weight, want)
			}
			if !res.Verify(l, r, w) {
				t.Fatalf("shape %d: %s invalid matching %+v", trial, name, res)
			}
			if got := res.Size(); got > l || got > r {
				t.Fatalf("shape %d: %s matched %d pairs on a %dx%d graph", trial, name, got, l, r)
			}
		}
	}
}

// TestMatchingMonotoneInWeights: raising one matched-candidate weight
// never lowers the optimum (property of max-weight matching exploited by
// the VCG analysis).
func TestMatchingMonotoneInWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		r2 := rand.New(rand.NewSource(seed))
		l := 1 + r2.Intn(6)
		r := 1 + r2.Intn(6)
		m := randomMatrix(r2, l, r, 0.7, 0, 10)
		base := MaxWeightMatching(l, r, denseWeights(m)).Weight
		i := r2.Intn(l)
		j := r2.Intn(r)
		m[i][j] += 5
		raised := MaxWeightMatching(l, r, denseWeights(m)).Weight
		return raised >= base-1e-9
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMatchingSubsetBound: removing a right vertex can only lower the
// optimum, and by at most the maximum single edge weight incident to it.
func TestMatchingSubsetBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		l := 1 + rng.Intn(6)
		r := 2 + rng.Intn(5)
		m := randomMatrix(rng, l, r, 0.7, 0, 10)
		w := denseWeights(m)
		full := MaxWeightMatching(l, r, w).Weight
		drop := rng.Intn(r)
		maskW := func(a, b int) float64 {
			if b == drop {
				return 0
			}
			return m[a][b]
		}
		reduced := MaxWeightMatching(l, r, maskW).Weight
		if reduced > full+1e-9 {
			t.Fatalf("removing a vertex increased optimum: %g > %g", reduced, full)
		}
		var maxEdge float64
		for i := 0; i < l; i++ {
			if m[i][drop] > maxEdge {
				maxEdge = m[i][drop]
			}
		}
		if full-reduced > maxEdge+1e-9 {
			t.Fatalf("optimum dropped %g, more than max incident edge %g", full-reduced, maxEdge)
		}
	}
}

func TestMaxCardinality(t *testing.T) {
	tests := []struct {
		name string
		l, r int
		adj  [][]int
		want int
	}{
		{"empty", 0, 0, nil, 0},
		{"no edges", 3, 3, [][]int{{}, {}, {}}, 0},
		{"perfect", 3, 3, [][]int{{0}, {1}, {2}}, 3},
		{"contention", 3, 1, [][]int{{0}, {0}, {0}}, 1},
		{"augmenting path needed", 2, 2, [][]int{{0, 1}, {0}}, 2},
		{"classic", 4, 4, [][]int{{0, 1}, {0}, {1, 2}, {2}}, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			match, size := MaxCardinality(tc.l, tc.r, tc.adj)
			if size != tc.want {
				t.Fatalf("size = %d, want %d (match %v)", size, tc.want, match)
			}
			seen := map[int]bool{}
			got := 0
			for l, r := range match {
				if r == Unmatched {
					continue
				}
				got++
				if seen[r] {
					t.Fatalf("right vertex %d matched twice", r)
				}
				seen[r] = true
				ok := false
				for _, cand := range tc.adj[l] {
					if cand == r {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("matched non-edge (%d,%d)", l, r)
				}
			}
			if got != size {
				t.Fatalf("reported size %d != matched pairs %d", size, got)
			}
		})
	}
}

// TestMaxCardinalityAgreesWithWeighted: with unit weights, the weighted
// optimum equals the maximum cardinality.
func TestMaxCardinalityAgreesWithWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		l := 1 + rng.Intn(12)
		r := 1 + rng.Intn(12)
		adj := make([][]int, l)
		present := make(map[[2]int]bool)
		for i := range adj {
			for j := 0; j < r; j++ {
				if rng.Float64() < 0.3 {
					adj[i] = append(adj[i], j)
					present[[2]int{i, j}] = true
				}
			}
		}
		_, size := MaxCardinality(l, r, adj)
		unit := func(a, b int) float64 {
			if present[[2]int{a, b}] {
				return 1
			}
			return 0
		}
		res := MaxWeightMatching(l, r, unit)
		if int(res.Weight+0.5) != size {
			t.Fatalf("trial %d: cardinality %d != weighted optimum %g", trial, size, res.Weight)
		}
	}
}

func TestResultMatchRight(t *testing.T) {
	res := Result{MatchLeft: []int{2, Unmatched, 0}}
	right := res.MatchRight(3)
	want := []int{2, Unmatched, 0}
	for j := range want {
		if right[j] != want[j] {
			t.Fatalf("MatchRight = %v, want %v", right, want)
		}
	}
}

func TestResultVerifyRejects(t *testing.T) {
	w := func(int, int) float64 { return 1 }
	cases := []struct {
		name string
		res  Result
	}{
		{"double use", Result{MatchLeft: []int{0, 0}, Weight: 2}},
		{"out of range", Result{MatchLeft: []int{5}, Weight: 1}},
		{"wrong weight", Result{MatchLeft: []int{0}, Weight: 3}},
		{"wrong length", Result{MatchLeft: []int{0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.res.Verify(2, 2, w) {
				t.Fatal("Verify accepted an invalid matching")
			}
		})
	}
}

func BenchmarkMatchers(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	for _, size := range []int{20, 60, 120} {
		m := randomMatrix(rng, size, size, 0.5, 0, 100)
		w := denseWeights(m)
		b.Run("hungarian/"+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MaxWeightMatching(size, size, w)
			}
		})
		b.Run("flow/"+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MaxWeightMatchingFlow(size, size, w)
			}
		})
		b.Run("ssp/"+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MaxWeightMatchingSSP(size, size, w)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
