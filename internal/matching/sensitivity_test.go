package matching

import (
	"math"
	"math/rand"
	"testing"
)

// naiveWithoutRight recomputes the optimum from scratch with right
// vertex j masked out — the O(s³) oracle for WeightWithoutRight.
func naiveWithoutRight(l, r int, w WeightFunc, j int) float64 {
	masked := func(a, b int) float64 {
		if b == j {
			return 0
		}
		return w(a, b)
	}
	return MaxWeightMatching(l, r, masked).Weight
}

func TestWeightWithoutRightSmall(t *testing.T) {
	m := [][]float64{
		{9, 2, 7},
		{6, 4, 3},
		{5, 8, 1},
	}
	w := denseWeights(m)
	sv := NewSolver(3, 3, w)
	for j := 0; j < 3; j++ {
		got := sv.WeightWithoutRight(j)
		want := naiveWithoutRight(3, 3, w, j)
		if !almostEqual(got, want) {
			t.Errorf("WeightWithoutRight(%d) = %g, want %g", j, got, want)
		}
	}
	// The solver must stay intact across queries.
	if !almostEqual(sv.Weight(), 21) {
		t.Fatalf("solver weight mutated to %g", sv.Weight())
	}
}

func TestWeightWithoutRightRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 120; trial++ {
		l := 1 + rng.Intn(10)
		r := 1 + rng.Intn(10)
		m := randomMatrix(rng, l, r, 0.6, -2, 20)
		w := denseWeights(m)
		sv := NewSolver(l, r, w)

		if !almostEqual(sv.Weight(), MaxWeightMatching(l, r, w).Weight) {
			t.Fatalf("trial %d: solver weight %g != one-shot weight", trial, sv.Weight())
		}
		for j := 0; j < r; j++ {
			got := sv.WeightWithoutRight(j)
			want := naiveWithoutRight(l, r, w, j)
			if !almostEqual(got, want) {
				t.Fatalf("trial %d: WeightWithoutRight(%d) = %g, want %g\nmatrix %v", trial, j, got, want, m)
			}
		}
		// Repeat a query to confirm scratch state isolation.
		if r > 0 {
			a := sv.WeightWithoutRight(0)
			b := sv.WeightWithoutRight(0)
			if !almostEqual(a, b) {
				t.Fatalf("trial %d: repeated query differs: %g vs %g", trial, a, b)
			}
		}
	}
}

func TestWeightWithoutRightRectangularLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	for trial := 0; trial < 10; trial++ {
		l := 20 + rng.Intn(20)
		r := 20 + rng.Intn(40)
		m := randomMatrix(rng, l, r, 0.4, 0, 100)
		w := denseWeights(m)
		sv := NewSolver(l, r, w)
		for probe := 0; probe < 10; probe++ {
			j := rng.Intn(r)
			got := sv.WeightWithoutRight(j)
			want := naiveWithoutRight(l, r, w, j)
			if !almostEqual(got, want) {
				t.Fatalf("trial %d probe %d: WeightWithoutRight(%d) = %g, want %g", trial, probe, j, got, want)
			}
		}
	}
}

func TestMatchedLeftOf(t *testing.T) {
	w := denseWeights([][]float64{{5, 0}, {0, 3}})
	sv := NewSolver(2, 2, w)
	if got := sv.MatchedLeftOf(0); got != 0 {
		t.Fatalf("MatchedLeftOf(0) = %d, want 0", got)
	}
	if got := sv.MatchedLeftOf(1); got != 1 {
		t.Fatalf("MatchedLeftOf(1) = %d, want 1", got)
	}
	if got := sv.MatchedLeftOf(-1); got != Unmatched {
		t.Fatal("out-of-range j must be Unmatched")
	}
	if got := sv.MatchedLeftOf(5); got != Unmatched {
		t.Fatal("out-of-range j must be Unmatched")
	}

	// A right vertex with only non-positive edges stays unmatched.
	w2 := denseWeights([][]float64{{5, -1}})
	sv2 := NewSolver(1, 2, w2)
	if got := sv2.MatchedLeftOf(1); got != Unmatched {
		t.Fatalf("MatchedLeftOf(negative edge) = %d, want Unmatched", got)
	}
	if got := sv2.WeightWithoutRight(1); !almostEqual(got, 5) {
		t.Fatalf("removing unmatched vertex changed weight to %g", got)
	}
}

func TestSolverEmpty(t *testing.T) {
	sv := NewSolver(0, 0, func(int, int) float64 { return 1 })
	if sv.Weight() != 0 {
		t.Fatal("empty solver has nonzero weight")
	}
	res := sv.Result()
	if len(res.MatchLeft) != 0 || res.Weight != 0 {
		t.Fatal("empty solver produced a matching")
	}
}

func BenchmarkVCGPriceAllWinners(b *testing.B) {
	rng := rand.New(rand.NewSource(603))
	for _, size := range []int{60, 120, 240} {
		m := randomMatrix(rng, size, size, 0.5, 0, 100)
		w := denseWeights(m)
		b.Run("incremental/"+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sv := NewSolver(size, size, w)
				for j := 0; j < size; j++ {
					sv.WeightWithoutRight(j)
				}
			}
		})
		b.Run("naive/"+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NewSolver(size, size, w)
				for j := 0; j < size; j++ {
					naiveWithoutRight(size, size, w, j)
				}
			}
		})
	}
}

// TestDualFeasibilityAfterSolve is a white-box check of the invariant
// the O(s²) VCG query rests on: after a full solve, the potentials are
// dual-feasible (reduced costs ≥ 0) and every matched edge is tight.
func TestDualFeasibilityAfterSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	for trial := 0; trial < 50; trial++ {
		l := 1 + rng.Intn(12)
		r := 1 + rng.Intn(12)
		m := randomMatrix(rng, l, r, 0.5, 0, 50)
		sv := NewSolver(l, r, denseWeights(m))
		s := sv.s
		const eps = 1e-9
		for i := 1; i <= s; i++ {
			for j := 1; j <= s; j++ {
				red := costAt(sv.cost, nil, i, j) - sv.u[i] - sv.v[j]
				if red < -eps {
					t.Fatalf("trial %d: reduced cost %g < 0 at (%d,%d)", trial, red, i, j)
				}
				if sv.p[j] == i && (red > eps || red < -eps) {
					t.Fatalf("trial %d: matched edge (%d,%d) not tight: %g", trial, i, j, red)
				}
			}
		}
		// Duality: Σu + Σv equals the matched cost (strong duality for
		// the assignment LP).
		var duals, primal float64
		for i := 1; i <= s; i++ {
			duals += sv.u[i]
		}
		for j := 1; j <= s; j++ {
			duals += sv.v[j]
			if sv.p[j] != 0 {
				primal += costAt(sv.cost, nil, sv.p[j], j)
			}
		}
		if math.Abs(duals-primal) > 1e-6 {
			t.Fatalf("trial %d: duality gap %g", trial, duals-primal)
		}
	}
}
