package matching

// Network is a general min-cost-flow network for the allocation
// problems that outgrow plain bipartite matching (e.g. the multi-task
// capacity extension, where a phone serves up to κ tasks, one per
// slot). Edges carry integer capacities and float64 costs; MaxProfit
// pushes flow along negative-cost augmenting paths until none remains,
// which maximizes Σ(−cost) over the flow — "profit" — without forcing
// maximum flow.
type Network struct {
	g *flowGraph
}

// EdgeID identifies an edge for post-solve flow queries.
type EdgeID int

// NewNetwork creates a network with the given node count. Node indices
// are 0..nodes-1; the caller designates source and sink when solving.
func NewNetwork(nodes int) *Network {
	return &Network{g: newFlowGraph(nodes)}
}

// AddEdge adds a directed edge with the given capacity and per-unit
// cost, returning its ID.
func (n *Network) AddEdge(from, to, capacity int, cost float64) EdgeID {
	id := EdgeID(len(n.g.edges))
	n.g.addEdge(from, to, capacity, cost)
	return id
}

// MaxProfit repeatedly augments one unit along the cheapest residual
// path from src to snk while that path has negative cost. It returns
// the number of units pushed and the total profit Σ(−cost).
func (n *Network) MaxProfit(src, snk int) (flow int, profit float64) {
	for {
		cost, ok := n.g.augment(src, snk)
		if !ok || cost >= 0 {
			return flow, profit
		}
		flow++
		profit += -cost
	}
}

// Flow returns the units currently routed through the edge.
func (n *Network) Flow(e EdgeID) int {
	fwd := n.g.edges[e]
	rev := n.g.edges[e^1]
	// Forward edges are created at even indices; their residual twin
	// holds the pushed flow as capacity.
	if e%2 == 0 {
		return rev.cap
	}
	return fwd.cap
}
