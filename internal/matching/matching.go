// Package matching provides bipartite matching algorithms used as the
// optimization substrate for the offline auction mechanism.
//
// The central entry point is MaxWeightMatching, which computes a maximum
// weight bipartite matching in O(s³) time (s = max side size) using the
// Hungarian algorithm with dual potentials (Kuhn 1955; the O(n³) variant
// of Edmonds–Karp 1972 / Tomizawa 1971 cited by the paper). Two
// independent implementations — a successive-shortest-path min-cost-flow
// solver and an exhaustive brute-force solver — are provided as
// cross-checking oracles for tests and ablation benchmarks.
//
// All solvers share a convention: only strictly positive-weight edges are
// ever matched. Leaving a vertex unmatched is always permitted, so edges
// with weight ≤ 0 can never improve a maximum weight matching and are
// treated as absent.
package matching

// Unmatched is the sentinel value in matching arrays for an unmatched
// left vertex.
const Unmatched = -1

// WeightFunc reports the weight of the edge between left vertex l and
// right vertex r. A return value ≤ 0 means "no usable edge".
type WeightFunc func(l, r int) float64

// Result is a bipartite matching together with its total weight.
type Result struct {
	// MatchLeft maps each left vertex to its matched right vertex, or
	// Unmatched.
	MatchLeft []int
	// Weight is the sum of weights of matched edges.
	Weight float64
}

// MatchRight derives the inverse map: right vertex -> left vertex or
// Unmatched.
func (r Result) MatchRight(numRight int) []int {
	m := make([]int, numRight)
	for j := range m {
		m[j] = Unmatched
	}
	for l, j := range r.MatchLeft {
		if j != Unmatched {
			m[j] = l
		}
	}
	return m
}

// Size returns the number of matched edges.
func (r Result) Size() int {
	n := 0
	for _, j := range r.MatchLeft {
		if j != Unmatched {
			n++
		}
	}
	return n
}

// Verify checks internal consistency of the matching: every matched right
// vertex is used at most once, indices are in range, and the recorded
// weight equals the recomputed sum. It returns false on any violation.
func (r Result) Verify(numLeft, numRight int, w WeightFunc) bool {
	if len(r.MatchLeft) != numLeft {
		return false
	}
	seen := make([]bool, numRight)
	var total float64
	for l, j := range r.MatchLeft {
		if j == Unmatched {
			continue
		}
		if j < 0 || j >= numRight || seen[j] {
			return false
		}
		seen[j] = true
		// !(wt > 0) rather than wt <= 0 so NaN weights (for which every
		// comparison is false) are rejected, not summed.
		wt := w(l, j)
		if !(wt > 0) {
			return false
		}
		total += wt
	}
	const eps = 1e-6
	return total-r.Weight < eps && r.Weight-total < eps
}
