package matching_test

import (
	"fmt"

	"dynacrowd/internal/matching"
)

// ExampleMaxWeightMatching finds the best assignment of two tasks to
// three phones; only positive-surplus pairs are ever matched.
func ExampleMaxWeightMatching() {
	// weights[task][phone]: surplus of giving the task to the phone.
	weights := [][]float64{
		{4, 9, 0},  // task 0: phone 1 is best
		{8, 7, -2}, // task 1: phone 0 is best; phone 2 infeasible
	}
	res := matching.MaxWeightMatching(2, 3, func(task, phone int) float64 {
		return weights[task][phone]
	})
	fmt.Printf("total surplus: %.0f\n", res.Weight)
	for task, phone := range res.MatchLeft {
		fmt.Printf("task %d -> phone %d\n", task, phone)
	}
	// Output:
	// total surplus: 17
	// task 0 -> phone 1
	// task 1 -> phone 0
}

// ExampleSolver_WeightWithoutRight prices a winner VCG-style: the
// optimum with and without the phone, via an O(s²) post-optimal query
// instead of a second full solve.
func ExampleSolver_WeightWithoutRight() {
	weights := [][]float64{
		{4, 9},
		{8, 7},
	}
	sv := matching.NewSolver(2, 2, func(t, p int) float64 { return weights[t][p] })
	fmt.Printf("optimum: %.0f\n", sv.Weight())
	fmt.Printf("without phone 1: %.0f\n", sv.WeightWithoutRight(1))
	// Output:
	// optimum: 17
	// without phone 1: 8
}
