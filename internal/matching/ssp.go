package matching

import "math"

// MaxWeightMatchingSSP computes a maximum weight bipartite matching by
// successive shortest augmenting paths over the min-cost-flow reduction
// (edge cost −w), with Johnson vertex potentials maintained across
// augmentations so every phase is a Dijkstra over non-negative reduced
// costs — no Bellman–Ford after the initial potential seeding. It stops
// as soon as the cheapest augmenting path has non-negative real cost,
// i.e. when adding another edge can no longer increase total weight.
//
// This is a third independent implementation alongside the Hungarian
// solver and the SPFA flow solver, used by the solver-agreement tests
// and as a generic backend for the offline mechanism's differential
// battery. Dense Dijkstra: O(min(L,R)·(L·R)).
func MaxWeightMatchingSSP(numLeft, numRight int, w WeightFunc) Result {
	res := Result{MatchLeft: make([]int, numLeft)}
	for i := range res.MatchLeft {
		res.MatchLeft[i] = Unmatched
	}
	if numLeft == 0 || numRight == 0 {
		return res
	}

	// Sparse adjacency over the strictly positive edges (NaN and ≤ 0
	// weights are absent by the package convention). Initial potentials
	// piR[r] = −max incident weight make every reduced forward cost
	// −w + piL − piR = (maxw − w) ≥ 0, replacing the usual Bellman–Ford
	// seeding pass.
	adjR := make([][]int32, numLeft)
	adjW := make([][]float64, numLeft)
	piL := make([]float64, numLeft)
	piR := make([]float64, numRight)
	hasEdge := false
	for l := 0; l < numLeft; l++ {
		for r := 0; r < numRight; r++ {
			if wt := w(l, r); wt > 0 {
				adjR[l] = append(adjR[l], int32(r))
				adjW[l] = append(adjW[l], wt)
				if -wt < piR[r] {
					piR[r] = -wt
				}
				hasEdge = true
			}
		}
	}
	if !hasEdge {
		return res
	}

	matchR := make([]int, numRight)
	matchW := make([]float64, numRight) // weight of r's matched edge
	for j := range matchR {
		matchR[j] = Unmatched
	}

	distL := make([]float64, numLeft)
	distR := make([]float64, numRight)
	doneL := make([]bool, numLeft)
	doneR := make([]bool, numRight)
	parentR := make([]int, numRight)  // left vertex whose edge reached r
	parentW := make([]float64, numRight)

	for {
		// Multi-source Dijkstra from every unmatched left vertex. An
		// unmatched left vertex keeps potential 0 forever (its distance
		// is always 0 and the update below adds min(dist, cap)), so all
		// sources start at the same real offset.
		for l := range distL {
			distL[l] = math.Inf(1)
			doneL[l] = false
			if res.MatchLeft[l] == Unmatched {
				distL[l] = 0
			}
		}
		for r := range distR {
			distR[r] = math.Inf(1)
			doneR[r] = false
			parentR[r] = -1
		}
		for {
			best := math.Inf(1)
			bl, br := -1, -1
			for l := 0; l < numLeft; l++ {
				if !doneL[l] && distL[l] < best {
					best, bl, br = distL[l], l, -1
				}
			}
			for r := 0; r < numRight; r++ {
				if !doneR[r] && distR[r] < best {
					best, bl, br = distR[r], -1, r
				}
			}
			if bl == -1 && br == -1 {
				break
			}
			if br == -1 {
				doneL[bl] = true
				for k, r32 := range adjR[bl] {
					r := int(r32)
					if doneR[r] || res.MatchLeft[bl] == r {
						continue
					}
					rc := -adjW[bl][k] + piL[bl] - piR[r]
					if nd := distL[bl] + rc; nd < distR[r] {
						distR[r] = nd
						parentR[r] = bl
						parentW[r] = adjW[bl][k]
					}
				}
			} else {
				doneR[br] = true
				if l := matchR[br]; l != Unmatched && !doneL[l] {
					// Residual (backward) edge along the matched pair.
					rc := matchW[br] + piR[br] - piL[l]
					if nd := distR[br] + rc; nd < distL[l] {
						distL[l] = nd
					}
				}
			}
		}

		// The cheapest augmentation in real cost: sources have potential
		// 0, so real(path to r) = distR[r] + piR[r].
		target := -1
		bestReal := math.Inf(1)
		for r := 0; r < numRight; r++ {
			if matchR[r] != Unmatched || math.IsInf(distR[r], 1) {
				continue
			}
			if real := distR[r] + piR[r]; real < bestReal {
				bestReal = real
				target = r
			}
		}
		if target == -1 || bestReal >= 0 {
			break
		}

		// Potential update: π[v] += min(dist[v], dist[target]) keeps all
		// residual reduced costs non-negative and makes the chosen path
		// tight. math.Min maps unreached (Inf) vertices to the cap.
		dcap := distR[target]
		for l := range piL {
			piL[l] += math.Min(distL[l], dcap)
		}
		for r := range piR {
			piR[r] += math.Min(distR[r], dcap)
		}

		// Augment: alternate matched edges back to a source.
		for r := target; ; {
			l := parentR[r]
			prev := res.MatchLeft[l]
			res.MatchLeft[l] = r
			matchR[r] = l
			matchW[r] = parentW[r]
			if prev == Unmatched {
				break
			}
			r = prev
		}
		res.Weight += -bestReal
	}
	return res
}
