package matching

import "math"

// MaxWeightMatchingFlow computes a maximum weight matching by reduction
// to min-cost flow, augmenting unit flow along the most-negative-cost
// path (SPFA / Bellman–Ford with a queue) until no negative-cost
// augmenting path remains. It is asymptotically slower than the Hungarian
// solver and exists as an independent cross-check implementation.
func MaxWeightMatchingFlow(numLeft, numRight int, w WeightFunc) Result {
	res := Result{MatchLeft: make([]int, numLeft)}
	for i := range res.MatchLeft {
		res.MatchLeft[i] = Unmatched
	}
	if numLeft == 0 || numRight == 0 {
		return res
	}

	g := newFlowGraph(2 + numLeft + numRight)
	src := 0
	snk := 1 + numLeft + numRight
	left := func(i int) int { return 1 + i }
	right := func(j int) int { return 1 + numLeft + j }

	for i := 0; i < numLeft; i++ {
		g.addEdge(src, left(i), 1, 0)
		for j := 0; j < numRight; j++ {
			if wt := w(i, j); wt > 0 {
				g.addEdge(left(i), right(j), 1, -wt)
			}
		}
	}
	for j := 0; j < numRight; j++ {
		g.addEdge(right(j), snk, 1, 0)
	}

	for {
		cost, ok := g.augment(src, snk)
		if !ok || cost >= 0 {
			break
		}
		res.Weight += -cost
	}

	// Recover the matching from saturated left->right edges.
	for i := 0; i < numLeft; i++ {
		for _, eid := range g.adj[left(i)] {
			e := &g.edges[eid]
			if e.to >= right(0) && e.to < right(numRight) && e.cap == 0 && e.cost != 0 {
				res.MatchLeft[i] = e.to - right(0)
			}
		}
	}
	return res
}

type flowEdge struct {
	to   int
	cap  int
	cost float64
}

type flowGraph struct {
	adj   [][]int // node -> edge ids (pairs: edge i and i^1 are duals)
	edges []flowEdge
}

func newFlowGraph(n int) *flowGraph {
	return &flowGraph{adj: make([][]int, n)}
}

func (g *flowGraph) addEdge(from, to, cap int, cost float64) {
	g.adj[from] = append(g.adj[from], len(g.edges))
	g.edges = append(g.edges, flowEdge{to: to, cap: cap, cost: cost})
	g.adj[to] = append(g.adj[to], len(g.edges))
	g.edges = append(g.edges, flowEdge{to: from, cap: 0, cost: -cost})
}

// augment finds the cheapest src->snk path in the residual graph and
// pushes one unit of flow along it. It returns the path cost and whether
// a path exists. The path is found with SPFA, which tolerates the
// negative residual costs that arise from the -w edge weights.
func (g *flowGraph) augment(src, snk int) (float64, bool) {
	n := len(g.adj)
	dist := make([]float64, n)
	inq := make([]bool, n)
	prevEdge := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	inq[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inq[u] = false
		for _, eid := range g.adj[u] {
			e := g.edges[eid]
			if e.cap <= 0 {
				continue
			}
			if nd := dist[u] + e.cost; nd < dist[e.to]-1e-12 {
				dist[e.to] = nd
				prevEdge[e.to] = eid
				if !inq[e.to] {
					inq[e.to] = true
					queue = append(queue, e.to)
				}
			}
		}
	}
	if math.IsInf(dist[snk], 1) {
		return 0, false
	}
	if dist[snk] >= 0 {
		return dist[snk], true
	}
	for v := snk; v != src; {
		eid := prevEdge[v]
		g.edges[eid].cap--
		g.edges[eid^1].cap++
		v = g.edges[eid^1].to
	}
	return dist[snk], true
}
