package matching

// BruteForceMaxWeight computes a maximum weight matching by exhaustive
// search over all assignments of left vertices. It is exponential in
// numLeft and intended only as a test oracle for small instances
// (numLeft ≤ ~10).
func BruteForceMaxWeight(numLeft, numRight int, w WeightFunc) Result {
	best := Result{MatchLeft: make([]int, numLeft)}
	for i := range best.MatchLeft {
		best.MatchLeft[i] = Unmatched
	}
	cur := make([]int, numLeft)
	for i := range cur {
		cur[i] = Unmatched
	}
	usedRight := make([]bool, numRight)

	var rec func(l int, weight float64)
	rec = func(l int, weight float64) {
		if l == numLeft {
			if weight > best.Weight {
				best.Weight = weight
				copy(best.MatchLeft, cur)
			}
			return
		}
		// Option 1: leave l unmatched.
		cur[l] = Unmatched
		rec(l+1, weight)
		// Option 2: match l to any free right vertex via a positive edge.
		for j := 0; j < numRight; j++ {
			if usedRight[j] {
				continue
			}
			wt := w(l, j)
			if wt <= 0 {
				continue
			}
			usedRight[j] = true
			cur[l] = j
			rec(l+1, weight+wt)
			cur[l] = Unmatched
			usedRight[j] = false
		}
	}
	rec(0, 0)
	return best
}
