package matching

import (
	"math"
	"math/rand"
	"testing"
)

// randomIntervalCase draws one interval-assignment instance. Variants
// stress different regimes: 0 = mixed uniform, 1 = tie-heavy integer
// weights, 2 = degenerate single-slot windows, 3 = dense full-range
// windows with scarce capacity.
func randomIntervalCase(rng *rand.Rand, variant int) (int, []int, []IntervalItem) {
	numSlots := 1 + rng.Intn(8)
	capacity := make([]int, numSlots+1)
	for t := 1; t <= numSlots; t++ {
		capacity[t] = rng.Intn(3)
	}
	items := make([]IntervalItem, rng.Intn(13))
	for i := range items {
		lo := 1 + rng.Intn(numSlots)
		hi := lo + rng.Intn(numSlots-lo+1)
		var wt float64
		switch variant % 4 {
		case 0:
			wt = rng.Float64()*12 - 2 // some non-positive
		case 1:
			wt = float64(rng.Intn(4)) // heavy ties, zeros included
		case 2:
			hi = lo // singleton windows
			wt = rng.Float64() * 5
		default:
			lo, hi = 1, numSlots
			wt = 1 + rng.Float64()*4
		}
		items[i] = IntervalItem{Lo: lo, Hi: hi, Weight: wt}
	}
	return numSlots, capacity, items
}

// expandInterval turns an interval instance into an explicit bipartite
// graph (items × capacity units) for cross-checking against the generic
// solvers.
func expandInterval(numSlots int, capacity []int, items []IntervalItem) (int, int, WeightFunc) {
	var unitSlot []int
	for t := 1; t <= numSlots; t++ {
		for k := 0; k < capacity[t]; k++ {
			unitSlot = append(unitSlot, t)
		}
	}
	w := func(l, r int) float64 {
		it := items[l]
		if !(it.Weight > 0) || unitSlot[r] < it.Lo || unitSlot[r] > it.Hi {
			return 0
		}
		return it.Weight
	}
	return len(items), len(unitSlot), w
}

// checkIntervalFeasible asserts the placement respects windows and
// capacities and that Weight equals the recomputed sum.
func checkIntervalFeasible(t *testing.T, numSlots int, capacity []int, items []IntervalItem, a *IntervalAssignment) {
	t.Helper()
	used := make([]int, numSlots+1)
	var total float64
	for i, slot := range a.SlotOf {
		if slot == Unmatched {
			continue
		}
		it := items[i]
		if !(it.Weight > 0) {
			t.Fatalf("item %d placed with weight %v", i, it.Weight)
		}
		if slot < it.Lo || slot > it.Hi || slot < 1 || slot > numSlots {
			t.Fatalf("item %d placed at %d outside window [%d,%d]", i, slot, it.Lo, it.Hi)
		}
		used[slot]++
		total += it.Weight
	}
	for s := 1; s <= numSlots; s++ {
		if used[s] > capacity[s] {
			t.Fatalf("slot %d holds %d items, capacity %d", s, used[s], capacity[s])
		}
	}
	if !almostEqual(total, a.Weight) {
		t.Fatalf("recorded weight %g, placed sum %g", a.Weight, total)
	}
}

// TestSolveIntervalMatchesHungarian: the specialized solver and the
// dense Hungarian solver agree on optimal weight across every variant.
func TestSolveIntervalMatchesHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 300; trial++ {
		numSlots, capacity, items := randomIntervalCase(rng, trial)
		a := SolveInterval(numSlots, capacity, items)
		checkIntervalFeasible(t, numSlots, capacity, items, a)
		nl, nr, w := expandInterval(numSlots, capacity, items)
		want := MaxWeightMatching(nl, nr, w).Weight
		if !almostEqual(a.Weight, want) {
			t.Fatalf("trial %d: interval weight %g, hungarian %g (slots=%d items=%v cap=%v)",
				trial, a.Weight, want, numSlots, items, capacity)
		}
	}
}

// TestSolveIntervalSubstitutes pins the deletion-exchange payment
// identity: for every placed item i, the optimum without i equals
// Weight − w_i + SubstituteWeights()[i], verified against a literal
// re-solve. The substitute can never outweigh the item it replaces
// (that is what makes the derived VCG payment individually rational).
func TestSolveIntervalSubstitutes(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 200; trial++ {
		numSlots, capacity, items := randomIntervalCase(rng, trial)
		a := SolveInterval(numSlots, capacity, items)
		sub := a.SubstituteWeights()
		for i, slot := range a.SlotOf {
			if slot == Unmatched {
				if sub[i] != 0 {
					t.Fatalf("trial %d: unplaced item %d has substitute %g", trial, i, sub[i])
				}
				continue
			}
			if sub[i] > items[i].Weight+1e-9 {
				t.Fatalf("trial %d: substitute %g outweighs item %d (%g)", trial, sub[i], i, items[i].Weight)
			}
			without := make([]IntervalItem, len(items))
			copy(without, items)
			without[i].Weight = 0 // weight ≤ 0 ⇒ never placed
			resolved := SolveInterval(numSlots, capacity, without)
			want := a.Weight - items[i].Weight + sub[i]
			if !almostEqual(resolved.Weight, want) {
				t.Fatalf("trial %d item %d: re-solve without = %g, greedy−w+sub = %g (sub %g, items %v cap %v)",
					trial, i, resolved.Weight, want, sub[i], items, capacity)
			}
		}
	}
}

func TestSolveIntervalEdgeCases(t *testing.T) {
	t.Run("no items", func(t *testing.T) {
		a := SolveInterval(3, []int{0, 1, 1, 1}, nil)
		if a.Weight != 0 || len(a.SlotOf) != 0 {
			t.Fatalf("empty instance: %+v", a)
		}
		if s := a.SubstituteWeights(); len(s) != 0 {
			t.Fatalf("substitutes on empty instance: %v", s)
		}
	})
	t.Run("non-positive and NaN weights", func(t *testing.T) {
		items := []IntervalItem{
			{Lo: 1, Hi: 2, Weight: 0},
			{Lo: 1, Hi: 2, Weight: -3},
			{Lo: 1, Hi: 2, Weight: math.NaN()},
			{Lo: 1, Hi: 2, Weight: 4},
		}
		a := SolveInterval(2, []int{0, 1, 1}, items)
		if a.Weight != 4 || a.SlotOf[3] == Unmatched {
			t.Fatalf("positive item not placed alone: %+v", a)
		}
		for i := 0; i < 3; i++ {
			if a.SlotOf[i] != Unmatched {
				t.Fatalf("item %d with weight %v placed", i, items[i].Weight)
			}
		}
	})
	t.Run("window clamped to round", func(t *testing.T) {
		items := []IntervalItem{{Lo: -5, Hi: 99, Weight: 2}, {Lo: 4, Hi: 3, Weight: 2}}
		a := SolveInterval(3, []int{0, 1, 0, 0}, items)
		if a.SlotOf[0] != 1 || a.SlotOf[1] != Unmatched || a.Weight != 2 {
			t.Fatalf("clamping wrong: %+v", a)
		}
	})
	t.Run("displacement chain", func(t *testing.T) {
		// Heaviest first takes slot 1; the next two force it to walk:
		// item 0 [1,3], item 1 [1,1], item 2 [1,2], all capacity 1.
		items := []IntervalItem{
			{Lo: 1, Hi: 3, Weight: 5},
			{Lo: 1, Hi: 1, Weight: 4},
			{Lo: 1, Hi: 2, Weight: 3},
		}
		a := SolveInterval(3, []int{0, 1, 1, 1}, items)
		if a.Weight != 12 {
			t.Fatalf("chain weight %g, want 12", a.Weight)
		}
		if a.SlotOf[1] != 1 || a.SlotOf[2] != 2 || a.SlotOf[0] != 3 {
			t.Fatalf("chain placement %v", a.SlotOf)
		}
	})
	t.Run("pivotal item has no substitute", func(t *testing.T) {
		a := SolveInterval(1, []int{0, 1}, []IntervalItem{{Lo: 1, Hi: 1, Weight: 3}})
		if sub := a.SubstituteWeights(); sub[0] != 0 {
			t.Fatalf("uncontested substitute %g, want 0", sub[0])
		}
	})
	t.Run("substitute via displacement", func(t *testing.T) {
		// Loser 2 [1,1] cannot sit at slot 2 directly, but replacing
		// winner 1 works because winner 0 at slot 1 can shift to 2.
		items := []IntervalItem{
			{Lo: 1, Hi: 2, Weight: 5},
			{Lo: 1, Hi: 2, Weight: 4},
			{Lo: 1, Hi: 1, Weight: 2},
		}
		a := SolveInterval(2, []int{0, 1, 1}, items)
		sub := a.SubstituteWeights()
		for i := 0; i < 2; i++ {
			if sub[i] != 2 {
				t.Fatalf("winner %d substitute %g, want 2 (slots %v)", i, sub[i], a.SlotOf)
			}
		}
	})
}

// FuzzIntervalSolver drives the interval engine against the Hungarian
// solver and the substitute identity on arbitrary seeds.
func FuzzIntervalSolver(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed))
	}
	f.Fuzz(func(t *testing.T, seed int64, variant uint8) {
		rng := rand.New(rand.NewSource(seed))
		numSlots, capacity, items := randomIntervalCase(rng, int(variant))
		a := SolveInterval(numSlots, capacity, items)
		checkIntervalFeasible(t, numSlots, capacity, items, a)
		nl, nr, w := expandInterval(numSlots, capacity, items)
		if want := MaxWeightMatching(nl, nr, w).Weight; !almostEqual(a.Weight, want) {
			t.Fatalf("interval %g vs hungarian %g", a.Weight, want)
		}
		sub := a.SubstituteWeights()
		for i, slot := range a.SlotOf {
			if slot == Unmatched {
				continue
			}
			without := make([]IntervalItem, len(items))
			copy(without, items)
			without[i].Weight = 0
			if got, want := SolveInterval(numSlots, capacity, without).Weight, a.Weight-items[i].Weight+sub[i]; !almostEqual(got, want) {
				t.Fatalf("item %d: re-solve %g, identity %g", i, got, want)
			}
		}
	})
}

func BenchmarkSolveInterval(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const numSlots = 200
	capacity := make([]int, numSlots+1)
	for t := 1; t <= numSlots; t++ {
		capacity[t] = 3
	}
	items := make([]IntervalItem, 2000)
	for i := range items {
		lo := 1 + rng.Intn(numSlots)
		hi := lo + rng.Intn(6)
		items[i] = IntervalItem{Lo: lo, Hi: hi, Weight: rng.Float64() * 10}
	}
	b.Run("solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SolveInterval(numSlots, capacity, items)
		}
	})
	b.Run("solve+substitutes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SolveInterval(numSlots, capacity, items).SubstituteWeights()
		}
	})
}
