package matching

// MaxCardinality computes a maximum cardinality bipartite matching using
// the Hopcroft–Karp algorithm in O(E·√V). adj[l] lists the right vertices
// adjacent to left vertex l. It returns the left->right matching and its
// size. The platform uses it for fast feasibility probes (how many tasks
// are serviceable at all), and it serves as an ablation point against the
// weighted solvers.
func MaxCardinality(numLeft, numRight int, adj [][]int) ([]int, int) {
	const inf = int(^uint(0) >> 1)
	matchL := make([]int, numLeft)
	matchR := make([]int, numRight)
	for i := range matchL {
		matchL[i] = Unmatched
	}
	for j := range matchR {
		matchR[j] = Unmatched
	}
	dist := make([]int, numLeft)
	queue := make([]int, 0, numLeft)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < numLeft; l++ {
			if matchL[l] == Unmatched {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range adj[l] {
				l2 := matchR[r]
				if l2 == Unmatched {
					found = true
				} else if dist[l2] == inf {
					dist[l2] = dist[l] + 1
					queue = append(queue, l2)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range adj[l] {
			l2 := matchR[r]
			if l2 == Unmatched || (dist[l2] == dist[l]+1 && dfs(l2)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	size := 0
	for bfs() {
		for l := 0; l < numLeft; l++ {
			if matchL[l] == Unmatched && dfs(l) {
				size++
			}
		}
	}
	return matchL, size
}
