package matching

import (
	"math"
	"testing"
)

// TestNetworkSimpleTransport: 2 sources of profit, capacity limits.
//
//	src -> a (cap 2) -> snk, profit 5 per unit
//	src -> b (cap 1) -> snk, profit 3 per unit
func TestNetworkSimpleTransport(t *testing.T) {
	net := NewNetwork(4)
	const (
		src = 0
		a   = 1
		b   = 2
		snk = 3
	)
	ea := net.AddEdge(src, a, 2, 0)
	net.AddEdge(a, snk, 2, -5)
	eb := net.AddEdge(src, b, 1, 0)
	net.AddEdge(b, snk, 1, -3)

	flow, profit := net.MaxProfit(src, snk)
	if flow != 3 {
		t.Fatalf("flow = %d, want 3", flow)
	}
	if math.Abs(profit-13) > 1e-9 {
		t.Fatalf("profit = %g, want 13", profit)
	}
	if net.Flow(ea) != 2 || net.Flow(eb) != 1 {
		t.Fatalf("edge flows = %d, %d", net.Flow(ea), net.Flow(eb))
	}
}

// TestNetworkStopsAtZeroProfit: a positive-cost path is never taken
// even if capacity remains.
func TestNetworkStopsAtZeroProfit(t *testing.T) {
	net := NewNetwork(3)
	e1 := net.AddEdge(0, 1, 5, 0)
	net.AddEdge(1, 2, 5, 2) // costs money
	flow, profit := net.MaxProfit(0, 2)
	if flow != 0 || profit != 0 {
		t.Fatalf("flow %d profit %g, want 0/0", flow, profit)
	}
	if net.Flow(e1) != 0 {
		t.Fatal("flow recorded on unused edge")
	}
}

// TestNetworkPrefersCheaperRoute: with a shared capacity bottleneck,
// the more profitable route is chosen.
func TestNetworkPrefersCheaperRoute(t *testing.T) {
	// src -> mid (cap 1); mid -> snk via two edges with profits 10, 4.
	net := NewNetwork(3)
	net.AddEdge(0, 1, 1, 0)
	good := net.AddEdge(1, 2, 1, -10)
	bad := net.AddEdge(1, 2, 1, -4)
	flow, profit := net.MaxProfit(0, 2)
	if flow != 1 || math.Abs(profit-10) > 1e-9 {
		t.Fatalf("flow %d profit %g, want 1/10", flow, profit)
	}
	if net.Flow(good) != 1 || net.Flow(bad) != 0 {
		t.Fatal("took the worse route")
	}
}

// TestNetworkReroutes: optimality may require undoing an earlier
// augmentation through a residual edge.
func TestNetworkReroutes(t *testing.T) {
	// Classic rerouting diamond:
	//   src -> x (cap 1), src -> y (cap 1)
	//   x -> a profit 10 (cap 1), x -> b profit 9 (cap 1)
	//   y -> a profit 8  (cap 1)
	//   a -> snk (cap 1), b -> snk (cap 1)
	// Greedy first path: x->a (10). Second: y->a blocked (a full), so
	// optimal total needs x->b and y->a: 9 + 8 = 17 > 10.
	net := NewNetwork(6)
	const (
		src = 0
		x   = 1
		y   = 2
		a   = 3
		b   = 4
		snk = 5
	)
	net.AddEdge(src, x, 1, 0)
	net.AddEdge(src, y, 1, 0)
	net.AddEdge(x, a, 1, -10)
	net.AddEdge(x, b, 1, -9)
	net.AddEdge(y, a, 1, -8)
	net.AddEdge(a, snk, 1, 0)
	net.AddEdge(b, snk, 1, 0)

	flow, profit := net.MaxProfit(src, snk)
	if flow != 2 || math.Abs(profit-17) > 1e-9 {
		t.Fatalf("flow %d profit %g, want 2/17 (requires rerouting)", flow, profit)
	}
}
