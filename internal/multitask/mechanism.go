package multitask

import (
	"fmt"

	"dynacrowd/internal/core"
	"dynacrowd/internal/matching"
)

// OfflineMechanism is the VCG auction for the capacity-extended model.
// Winning-bid determination is an exact min-cost flow:
//
//	source → task (cap 1) → (phone, slot) availability (cap 1)
//	       → phone (cap κ) → sink
//
// with cost −(ν − b) on profitable task edges; pushing flow while the
// cheapest augmenting path is negative yields the welfare-maximizing
// allocation. Payments are Clarke pivots with the winner's full
// incurred cost. One re-solve per winner prices the round; the flow is
// small (O(γ) augmentations over O(nγ) edges), so no incremental trick
// is needed at the paper's scales.
type OfflineMechanism struct{}

// Name identifies the mechanism.
func (of *OfflineMechanism) Name() string { return "multitask-offline-vcg" }

// Run executes the auction.
func (of *OfflineMechanism) Run(in *Instance) (*Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("multitask offline: %w", err)
	}
	byTask, welfare := solve(in, core.NoPhone)
	out := &Outcome{
		ByTask:   byTask,
		Served:   make([]int, len(in.Bids)),
		Payments: make([]float64, len(in.Bids)),
		Welfare:  welfare,
	}
	for _, p := range byTask {
		if p != core.NoPhone {
			out.Served[p]++
		}
	}
	for i := range in.Bids {
		if out.Served[i] == 0 {
			continue
		}
		_, without := solve(in, core.PhoneID(i))
		out.Payments[i] = welfare + float64(out.Served[i])*in.Bids[i].Cost - without
	}
	return out, nil
}

// Welfare returns ω* for the instance.
func (of *OfflineMechanism) Welfare(in *Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, fmt.Errorf("multitask offline: %w", err)
	}
	_, w := solve(in, core.NoPhone)
	return w, nil
}

// solve builds and runs the flow network, optionally excluding one
// phone. It returns the task assignment and the optimal welfare.
func solve(in *Instance, skip core.PhoneID) ([]core.PhoneID, float64) {
	numTasks := len(in.Tasks)
	numPhones := len(in.Bids)

	// Distinct arrival slots, for (phone, slot) availability nodes.
	slotIndex := make(map[core.Slot]int)
	var slots []core.Slot
	for _, t := range in.Tasks {
		if _, ok := slotIndex[t.Arrival]; !ok {
			slotIndex[t.Arrival] = len(slots)
			slots = append(slots, t.Arrival)
		}
	}

	// Node layout: src | tasks | (phone × slot) | phones | snk.
	src := 0
	taskNode := func(k int) int { return 1 + k }
	psNode := func(i, s int) int { return 1 + numTasks + i*len(slots) + s }
	phoneNode := func(i int) int { return 1 + numTasks + numPhones*len(slots) + i }
	snk := 1 + numTasks + numPhones*len(slots) + numPhones

	net := matching.NewNetwork(snk + 1)
	type taskEdge struct {
		id    matching.EdgeID
		task  int
		phone core.PhoneID
	}
	var taskEdges []taskEdge

	for k := range in.Tasks {
		net.AddEdge(src, taskNode(k), 1, 0)
	}
	for i, b := range in.Bids {
		if core.PhoneID(i) == skip {
			continue
		}
		surplus := in.Value - b.Cost
		if surplus <= 0 {
			continue
		}
		net.AddEdge(phoneNode(i), snk, b.Capacity, 0)
		for s, slot := range slots {
			if !b.Covers(slot) {
				continue
			}
			net.AddEdge(psNode(i, s), phoneNode(i), 1, 0)
			for k, t := range in.Tasks {
				if t.Arrival != slot {
					continue
				}
				id := net.AddEdge(taskNode(k), psNode(i, s), 1, -surplus)
				taskEdges = append(taskEdges, taskEdge{id: id, task: k, phone: core.PhoneID(i)})
			}
		}
	}

	_, welfare := net.MaxProfit(src, snk)

	byTask := make([]core.PhoneID, numTasks)
	for k := range byTask {
		byTask[k] = core.NoPhone
	}
	for _, e := range taskEdges {
		if net.Flow(e.id) > 0 {
			byTask[e.task] = e.phone
		}
	}
	return byTask, welfare
}
