package multitask

import (
	"math"
	"math/rand"
	"testing"

	"dynacrowd/internal/core"
)

func demoInstance() *Instance {
	return &Instance{
		Slots: 4, Value: 20,
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 4, Cost: 4, Capacity: 3},
			{Phone: 1, Arrival: 1, Departure: 2, Cost: 2, Capacity: 1},
			{Phone: 2, Arrival: 3, Departure: 4, Cost: 9, Capacity: 2},
		},
		Tasks: []core.Task{
			{ID: 0, Arrival: 1}, {ID: 1, Arrival: 1},
			{ID: 2, Arrival: 2}, {ID: 3, Arrival: 3}, {ID: 4, Arrival: 4},
		},
	}
}

func TestInstanceValidate(t *testing.T) {
	if err := demoInstance().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Instance){
		func(in *Instance) { in.Slots = 0 },
		func(in *Instance) { in.Value = -1 },
		func(in *Instance) { in.Bids[0].Phone = 7 },
		func(in *Instance) { in.Bids[0].Arrival = 0 },
		func(in *Instance) { in.Bids[0].Cost = -1 },
		func(in *Instance) { in.Bids[0].Capacity = 0 },
		func(in *Instance) { in.Tasks[0].ID = 3 },
		func(in *Instance) { in.Tasks[0].Arrival = 5 },
		func(in *Instance) { in.Tasks[0].Arrival = 4 }, // order
	}
	for i, mut := range mutations {
		in := demoInstance()
		mut(in)
		if in.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func runOffline(t *testing.T, in *Instance) *Outcome {
	t.Helper()
	out, err := (&OfflineMechanism{}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(in); err != nil {
		t.Fatalf("outcome invalid: %v", err)
	}
	return out
}

// TestDemoAllocation: capacity lets phone 0 take several tasks but only
// one per slot; all five tasks are served.
//
// Optimal: slot 1 has two tasks — phone 0 and phone 1 take one each
// (costs 4, 2). Slot 2: phone 0 is busy-capable again (capacity 3) →
// task 2 to phone 0. Slots 3, 4: phone 0 has capacity left for one more
// (used 2 of 3) → one of tasks 3/4 to phone 0, the other to phone 2.
// Welfare = 5·20 − (4·3 + 2 + 9) = 100 − 23 = 77.
func TestDemoAllocation(t *testing.T) {
	out := runOffline(t, demoInstance())
	if got := out.Welfare; math.Abs(got-77) > 1e-9 {
		t.Fatalf("welfare = %g, want 77", got)
	}
	if out.Served[0] != 3 || out.Served[1] != 1 || out.Served[2] != 1 {
		t.Fatalf("served = %v, want [3 1 1]", out.Served)
	}
}

// TestCapacityOneMatchesCore: with κ = 1 everywhere the extension is
// exactly the paper's offline mechanism.
func TestCapacityOneMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	for trial := 0; trial < 60; trial++ {
		mt, classic := randomPair(rng, 1)
		out := runOffline(t, mt)
		coreOut, err := (&core.OfflineMechanism{}).Run(classic)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out.Welfare-coreOut.Welfare) > 1e-6 {
			t.Fatalf("trial %d: multitask %g != core %g", trial, out.Welfare, coreOut.Welfare)
		}
		for i := range out.Payments {
			if math.Abs(out.Payments[i]-coreOut.Payments[i]) > 1e-6 {
				// Degenerate ties can flip equal-welfare winners; accept
				// only when both runs agree the phone won/lost.
				won := out.Served[i] > 0
				coreWon := coreOut.Allocation.ByPhone[i] != core.NoTask
				if won == coreWon {
					t.Fatalf("trial %d: payment[%d] %g != %g", trial, i, out.Payments[i], coreOut.Payments[i])
				}
			}
		}
	}
}

// randomPair builds a random multitask instance with the given fixed
// capacity and, when capacity == 1, the equivalent core instance.
func randomPair(rng *rand.Rand, capacity int) (*Instance, *core.Instance) {
	m := core.Slot(3 + rng.Intn(5))
	mt := &Instance{Slots: m, Value: 30}
	classic := &core.Instance{Slots: m, Value: 30}
	n := 1 + rng.Intn(7)
	for i := 0; i < n; i++ {
		a := core.Slot(1 + rng.Intn(int(m)))
		d := a + core.Slot(rng.Intn(int(m-a)+1))
		cost := rng.Float64() * 35
		cap := capacity
		if capacity <= 0 {
			cap = 1 + rng.Intn(3)
		}
		mt.Bids = append(mt.Bids, Bid{Phone: core.PhoneID(i), Arrival: a, Departure: d, Cost: cost, Capacity: cap})
		classic.Bids = append(classic.Bids, core.Bid{Phone: core.PhoneID(i), Arrival: a, Departure: d, Cost: cost})
	}
	numTasks := rng.Intn(8)
	arr := make([]int, numTasks)
	for k := range arr {
		arr[k] = 1 + rng.Intn(int(m))
	}
	for i := 1; i < len(arr); i++ {
		for j := i; j > 0 && arr[j] < arr[j-1]; j-- {
			arr[j], arr[j-1] = arr[j-1], arr[j]
		}
	}
	for k, a := range arr {
		task := core.Task{ID: core.TaskID(k), Arrival: core.Slot(a)}
		mt.Tasks = append(mt.Tasks, task)
		classic.Tasks = append(classic.Tasks, task)
	}
	return mt, classic
}

// bruteForce exhaustively assigns tasks to phones under window, slot,
// and capacity constraints, maximizing welfare — the oracle.
func bruteForce(in *Instance) float64 {
	used := make([]int, len(in.Bids))
	slotUsed := make(map[[2]int]bool)
	var rec func(k int) float64
	rec = func(k int) float64 {
		if k == len(in.Tasks) {
			return 0
		}
		best := rec(k + 1) // leave task k unserved
		slot := in.Tasks[k].Arrival
		for i, b := range in.Bids {
			if used[i] >= b.Capacity || !b.Covers(slot) || slotUsed[[2]int{i, int(slot)}] {
				continue
			}
			surplus := in.Value - b.Cost
			if surplus <= 0 {
				continue
			}
			used[i]++
			slotUsed[[2]int{i, int(slot)}] = true
			if v := surplus + rec(k+1); v > best {
				best = v
			}
			used[i]--
			slotUsed[[2]int{i, int(slot)}] = false
		}
		return best
	}
	return rec(0)
}

// TestOfflineOptimalVsBruteForce cross-checks the flow solution.
func TestOfflineOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	for trial := 0; trial < 80; trial++ {
		in, _ := randomPair(rng, 0) // random capacities 1..3
		out := runOffline(t, in)
		want := bruteForce(in)
		if math.Abs(out.Welfare-want) > 1e-6 {
			t.Fatalf("trial %d: flow %g != brute force %g\n%+v", trial, out.Welfare, want, in)
		}
	}
}

// TestHigherCapacityNeverHurtsWelfare: raising one phone's capacity can
// only raise the optimum.
func TestHigherCapacityNeverHurtsWelfare(t *testing.T) {
	rng := rand.New(rand.NewSource(803))
	of := &OfflineMechanism{}
	for trial := 0; trial < 60; trial++ {
		in, _ := randomPair(rng, 0)
		base, err := of.Welfare(in)
		if err != nil {
			t.Fatal(err)
		}
		up := in.Clone()
		up.Bids[rng.Intn(len(up.Bids))].Capacity += 2
		raised, err := of.Welfare(up)
		if err != nil {
			t.Fatal(err)
		}
		if raised < base-1e-9 {
			t.Fatalf("trial %d: capacity raise lowered welfare %g -> %g", trial, base, raised)
		}
	}
}

// TestMultitaskIR: truthful utilities non-negative (per-task cost times
// served count never exceeds the payment).
func TestMultitaskIR(t *testing.T) {
	rng := rand.New(rand.NewSource(804))
	for trial := 0; trial < 60; trial++ {
		in, _ := randomPair(rng, 0)
		out := runOffline(t, in)
		for i := range in.Bids {
			if u := out.Utility(core.PhoneID(i), in.Bids[i].Cost); u < -1e-9 {
				t.Fatalf("trial %d: phone %d utility %g", trial, i, u)
			}
		}
	}
}

// TestMultitaskTruthfulness audits cost misreports and capacity
// understatement under the capacity-extended VCG.
func TestMultitaskTruthfulness(t *testing.T) {
	rng := rand.New(rand.NewSource(805))
	of := &OfflineMechanism{}
	for trial := 0; trial < 25; trial++ {
		in, _ := randomPair(rng, 0)
		truthOut := runOffline(t, in)
		for i := range in.Bids {
			truth := in.Bids[i]
			uTruth := truthOut.Utility(core.PhoneID(i), truth.Cost)
			for _, f := range []float64{0, 0.5, 0.9, 1.1, 1.5, 3} {
				alt := in.Clone()
				alt.Bids[i].Cost = truth.Cost * f
				altOut, err := of.Run(alt)
				if err != nil {
					t.Fatal(err)
				}
				if u := altOut.Utility(core.PhoneID(i), truth.Cost); u > uTruth+1e-6 {
					t.Fatalf("trial %d: phone %d gains %g > %g at cost factor %g", trial, i, u, uTruth, f)
				}
			}
			for dc := 1; dc < truth.Capacity; dc++ {
				alt := in.Clone()
				alt.Bids[i].Capacity = truth.Capacity - dc
				altOut, err := of.Run(alt)
				if err != nil {
					t.Fatal(err)
				}
				if u := altOut.Utility(core.PhoneID(i), truth.Cost); u > uTruth+1e-6 {
					t.Fatalf("trial %d: phone %d gains %g > %g by hiding capacity", trial, i, u, uTruth)
				}
			}
		}
	}
}

func TestMechanismRejectsInvalid(t *testing.T) {
	in := demoInstance()
	in.Bids[0].Capacity = 0
	if _, err := (&OfflineMechanism{}).Run(in); err == nil {
		t.Fatal("want error")
	}
	if _, err := (&OfflineMechanism{}).Welfare(in); err == nil {
		t.Fatal("want error")
	}
}

func TestOutcomeValidateRejects(t *testing.T) {
	in := demoInstance()
	out := runOffline(t, in)
	out.ByTask[0] = 2 // phone 2 window [3,4] cannot serve slot 1
	if out.Validate(in) == nil {
		t.Fatal("window violation accepted")
	}
}
