// Package multitask extends the paper's model with phone capacities.
// The paper's constraint (5) allocates each smartphone at most one task
// per round; real phones can often serve several tasks while idle. Here
// phone i declares a capacity κ_i and may serve up to κ_i tasks inside
// its active window — at most one per slot — each at its per-task cost.
// κ = 1 for every phone recovers the paper's model exactly (tested).
//
// The offline mechanism generalizes cleanly: winning-bid determination
// becomes a min-cost-flow problem (tasks → phone-slot availability →
// phone capacity), still optimal and polynomial, and VCG payments keep
// their form with the winner's full incurred cost:
//
//	p_i = ω*(B) + used_i·b_i − ω*(B₋ᵢ).
//
// Truthfulness carries over because VCG only requires an exactly optimal
// allocation and one-sided misreport spaces (a phone can understate its
// capacity or window, not overstate them; costs are unrestricted and
// priced out by the externality). The online mechanism is deliberately
// NOT generalized: per-unit critical values for multi-unit online
// supply are an open design problem the paper does not address.
package multitask

import (
	"fmt"
	"math"

	"dynacrowd/internal/core"
)

// Bid is a capacity-annotated bid: window, per-task cost, and the
// maximum number of tasks the phone will serve this round.
type Bid struct {
	Phone     core.PhoneID
	Arrival   core.Slot
	Departure core.Slot
	Cost      float64
	Capacity  int
}

// Covers reports whether the bid's window contains slot t.
func (b Bid) Covers(t core.Slot) bool { return b.Arrival <= t && t <= b.Departure }

// Instance is one capacity-extended auction round.
type Instance struct {
	Slots core.Slot
	Value float64
	Bids  []Bid
	Tasks []core.Task
}

// Validate checks structural invariants.
func (in *Instance) Validate() error {
	if in.Slots < 1 {
		return fmt.Errorf("multitask: round length %d < 1", in.Slots)
	}
	if in.Value < 0 || math.IsNaN(in.Value) || math.IsInf(in.Value, 0) {
		return fmt.Errorf("multitask: value %g is not a non-negative finite number", in.Value)
	}
	for i, b := range in.Bids {
		if b.Phone != core.PhoneID(i) {
			return fmt.Errorf("multitask: bid %d has phone id %d", i, b.Phone)
		}
		if b.Arrival < 1 || b.Departure > in.Slots || b.Arrival > b.Departure {
			return fmt.Errorf("multitask: bid %d window [%d,%d] invalid", i, b.Arrival, b.Departure)
		}
		if b.Cost < 0 || math.IsNaN(b.Cost) || math.IsInf(b.Cost, 0) {
			return fmt.Errorf("multitask: bid %d cost %g is not a non-negative finite number", i, b.Cost)
		}
		if b.Capacity < 1 {
			return fmt.Errorf("multitask: bid %d capacity %d < 1", i, b.Capacity)
		}
	}
	var prev core.Slot
	for k, t := range in.Tasks {
		if t.ID != core.TaskID(k) {
			return fmt.Errorf("multitask: task %d has id %d", k, t.ID)
		}
		if t.Arrival < 1 || t.Arrival > in.Slots {
			return fmt.Errorf("multitask: task %d arrival outside round", k)
		}
		if t.Arrival < prev {
			return fmt.Errorf("multitask: task %d out of arrival order", k)
		}
		prev = t.Arrival
	}
	return nil
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Slots: in.Slots, Value: in.Value}
	out.Bids = append([]Bid(nil), in.Bids...)
	out.Tasks = append([]core.Task(nil), in.Tasks...)
	return out
}

// Outcome is the result of a capacity-extended auction.
type Outcome struct {
	// ByTask maps TaskID -> PhoneID (core.NoPhone when unserved).
	ByTask []core.PhoneID
	// Served[i] is the number of tasks phone i serves.
	Served []int
	// Payments maps PhoneID -> total payment.
	Payments []float64
	// Welfare is Σ (ν − b_i) over served tasks.
	Welfare float64
}

// Utility returns phone i's utility given its real per-task cost.
func (o *Outcome) Utility(i core.PhoneID, realCost float64) float64 {
	if o.Served[i] == 0 {
		return 0
	}
	return o.Payments[i] - float64(o.Served[i])*realCost
}

// Validate checks outcome feasibility: mirror consistency, windows,
// capacities, and the one-task-per-phone-per-slot rule.
func (o *Outcome) Validate(in *Instance) error {
	if len(o.ByTask) != len(in.Tasks) || len(o.Served) != len(in.Bids) || len(o.Payments) != len(in.Bids) {
		return fmt.Errorf("multitask: outcome size mismatch")
	}
	served := make([]int, len(in.Bids))
	slotUse := make(map[[2]int]bool) // (phone, slot) -> used
	for k, p := range o.ByTask {
		if p == core.NoPhone {
			continue
		}
		if int(p) >= len(in.Bids) {
			return fmt.Errorf("multitask: task %d assigned to unknown phone %d", k, p)
		}
		b := in.Bids[p]
		slot := in.Tasks[k].Arrival
		if !b.Covers(slot) {
			return fmt.Errorf("multitask: phone %d serves slot %d outside window", p, slot)
		}
		key := [2]int{int(p), int(slot)}
		if slotUse[key] {
			return fmt.Errorf("multitask: phone %d serves two tasks in slot %d", p, slot)
		}
		slotUse[key] = true
		served[p]++
		if served[p] > b.Capacity {
			return fmt.Errorf("multitask: phone %d exceeds capacity %d", p, b.Capacity)
		}
	}
	for i := range served {
		if served[i] != o.Served[i] {
			return fmt.Errorf("multitask: Served[%d] = %d, recomputed %d", i, o.Served[i], served[i])
		}
	}
	return nil
}
