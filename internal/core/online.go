package core

import "fmt"

// OnlineMechanism is the paper's Section V auction for the practical case
// where bids and tasks are revealed slot by slot. Allocation is greedy
// (Algorithm 1): in each slot the newly arrived tasks go to the cheapest
// currently active, still-unallocated phones. Payment is the critical
// value (Algorithm 2): re-run the greedy allocation without the winner's
// bid and pay the maximum claimed cost among phones allocated between the
// winner's winning slot and its reported departure, floored at the
// winner's own claimed cost.
//
// The allocation rule is monotone and the payment equals each winner's
// critical value, so the mechanism is truthful (Theorem 4) and
// individually rational (Theorem 5); the allocation is 1/2-competitive
// against the offline optimum (Theorem 6).
//
// Reserve price: when Instance.AllocateAtLoss is false (the default),
// bids with cost ≥ ν never win, and a winner whose removal would leave a
// task unserved is paid the reserve ν (its critical value under the
// reserve). When AllocateAtLoss is true the paper's unbounded-scarcity
// case is capped at max(ν, b_i); the paper implicitly assumes phones are
// abundant, so this cap is a documented boundary-condition choice.
type OnlineMechanism struct{}

// Name implements Mechanism.
func (on *OnlineMechanism) Name() string { return "online-greedy" }

// Run implements Mechanism by driving the greedy allocator across the
// whole round and then computing critical-value payments for each winner.
func (on *OnlineMechanism) Run(in *Instance) (*Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("online mechanism: %w", err)
	}
	byTask, _, _ := runGreedy(in, NoPhone, in.Slots)

	alloc := NewAllocation(in.NumTasks(), in.NumPhones())
	for k, p := range byTask {
		if p != NoPhone {
			alloc.Assign(TaskID(k), p, in.Tasks[k].Arrival)
		}
	}

	out := &Outcome{
		Allocation: alloc,
		Payments:   make([]float64, in.NumPhones()),
		Welfare:    alloc.Welfare(in),
	}
	for _, i := range alloc.Winners() {
		out.Payments[i] = criticalPayment(in, i, alloc.WonAt[i])
	}
	return out, nil
}

// slotReport records what the greedy allocator did in one slot.
type slotReport struct {
	winners       int     // tasks served this slot
	unserved      int     // tasks left unserved this slot
	maxWinnerCost float64 // highest claimed cost among this slot's winners
}

// runGreedy executes Algorithm 1 on the instance, optionally skipping one
// phone's bid (skip = NoPhone to include everyone), through slot upTo.
// It returns the task assignment (by task index), the slot each phone won
// in (0 if it didn't), and per-slot reports (1-based, reports[0] unused).
func runGreedy(in *Instance, skip PhoneID, upTo Slot) ([]PhoneID, []Slot, []slotReport) {
	byTask := make([]PhoneID, in.NumTasks())
	for k := range byTask {
		byTask[k] = NoPhone
	}
	wonAt := make([]Slot, in.NumPhones())
	reports := make([]slotReport, upTo+1)

	// Group eligible phones by claimed arrival slot. Bids priced at or
	// above the per-task value ν can never yield positive welfare and are
	// excluded unless the instance allocates at a loss (reserve price).
	arrivals := make([][]PhoneID, in.Slots+1)
	for i, b := range in.Bids {
		if PhoneID(i) == skip {
			continue
		}
		if !in.AllocateAtLoss && b.Cost >= in.Value {
			continue
		}
		arrivals[b.Arrival] = append(arrivals[b.Arrival], PhoneID(i))
	}

	h := costHeap{bids: in.Bids}
	ti := 0
	for t := Slot(1); t <= upTo; t++ {
		for _, p := range arrivals[t] {
			h.push(p)
		}
		for ; ti < len(in.Tasks) && in.Tasks[ti].Arrival == t; ti++ {
			winner := NoPhone
			for h.len() > 0 {
				p := h.pop()
				if in.Bids[p].Departure < t {
					continue // departed; drop permanently
				}
				winner = p
				break
			}
			if winner == NoPhone {
				reports[t].unserved++
				continue
			}
			byTask[ti] = winner
			wonAt[winner] = t
			reports[t].winners++
			if c := in.Bids[winner].Cost; c > reports[t].maxWinnerCost {
				reports[t].maxWinnerCost = c
			}
		}
	}
	return byTask, wonAt, reports
}

// criticalPayment implements Algorithm 2: the payment to winner i (who
// won in slot won) is the maximum claimed cost among phones that the
// greedy allocation selects in slots [won, d̃_i] when i's bid is removed,
// floored at b_i. A slot in that window with an unserved task means i's
// bid was pivotal there, so its critical value is the reserve ν.
func criticalPayment(in *Instance, i PhoneID, won Slot) float64 {
	d := in.Bids[i].Departure
	_, _, reports := runGreedy(in, i, d)
	p := in.Bids[i].Cost
	for t := won; t <= d; t++ {
		cand := reports[t].maxWinnerCost
		if reports[t].unserved > 0 {
			cand = in.Value
		}
		if cand > p {
			p = cand
		}
	}
	return p
}

// costHeap is a binary min-heap of phone IDs ordered by (claimed cost,
// phone ID). The deterministic ID tiebreak keeps runs reproducible.
type costHeap struct {
	bids  []Bid
	items []PhoneID
}

func (h *costHeap) len() int { return len(h.items) }

func (h *costHeap) less(a, b PhoneID) bool {
	if h.bids[a].Cost != h.bids[b].Cost {
		return h.bids[a].Cost < h.bids[b].Cost
	}
	return a < b
}

func (h *costHeap) push(p PhoneID) {
	h.items = append(h.items, p)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *costHeap) pop() PhoneID {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.less(h.items[l], h.items[small]) {
			small = l
		}
		if r < len(h.items) && h.less(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
