package core

import (
	"fmt"
	"time"
)

// OnlineMechanism is the paper's Section V auction for the practical case
// where bids and tasks are revealed slot by slot. Allocation is greedy
// (Algorithm 1): in each slot the newly arrived tasks go to the cheapest
// currently active, still-unallocated phones. Payment is the critical
// value (Algorithm 2): the maximum claimed cost among the phones the
// greedy allocation would select between the winner's winning slot and
// its reported departure if the winner's bid were removed, floored at
// the winner's own claimed cost.
//
// The allocation rule is monotone and the payment equals each winner's
// critical value, so the mechanism is truthful (Theorem 4) and
// individually rational (Theorem 5); the allocation is 1/2-competitive
// against the offline optimum (Theorem 6).
//
// Payments are computed by a PaymentEngine. The default incremental
// cascade engine prices all winners from the single baseline run
// (docs/THEORY.md §5); the literal per-winner re-run of Algorithm 2 is
// available as OraclePayments, and ParallelPayments fans the re-runs out
// over a worker pool. All engines return bit-identical payments.
//
// Reserve price: when Instance.AllocateAtLoss is false (the default),
// bids with cost ≥ ν never win, and a winner whose removal would leave a
// task unserved is paid the reserve ν (its critical value under the
// reserve). When AllocateAtLoss is true the paper's unbounded-scarcity
// case is capped at max(ν, b_i); the paper implicitly assumes phones are
// abundant, so this cap is a documented boundary-condition choice.
type OnlineMechanism struct {
	// Payments selects the critical-value payment engine. Nil uses the
	// incremental CascadePayments engine.
	Payments PaymentEngine
	// Metrics instruments Run (latency histograms, engine counters).
	// Nil falls back to the process default installed with
	// SetDefaultMetrics; if that is nil too, instrumentation is off and
	// the hot path stays allocation-free.
	Metrics *Metrics
}

// Name implements Mechanism. Explicitly configured engines are suffixed
// ("online-greedy+oracle") so ablation tables stay distinguishable.
func (on *OnlineMechanism) Name() string {
	if on.Payments != nil {
		return "online-greedy+" + on.Payments.Name()
	}
	return "online-greedy"
}

func (on *OnlineMechanism) engine() PaymentEngine {
	if on.Payments != nil {
		return on.Payments
	}
	return CascadePayments
}

// Run implements Mechanism by driving the greedy allocator across the
// whole round and then pricing every winner with the payment engine.
// The hot path reuses pooled scratch (arrivals index, allocation pool,
// cascade state), so steady-state runs allocate only the returned
// Outcome. Safe for concurrent use.
func (on *OnlineMechanism) Run(in *Instance) (*Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("online mechanism: %w", err)
	}
	met := on.Metrics
	if met == nil {
		met = defaultMetrics.Load()
	}
	var start time.Time
	if met != nil {
		start = time.Now()
	}
	scratchPoolGets.Add(1)
	sc := mechPool.Get().(*mechScratch)
	defer mechPool.Put(sc)
	sc.idx.build(in)

	// The baseline greedy writes winners straight into the outcome's
	// allocation arrays; only the cascade side state is pooled.
	alloc := NewAllocation(in.NumTasks(), in.NumPhones())
	run := &sc.run
	run.byTask = alloc.ByTask
	run.phoneTask = alloc.ByPhone
	run.wonAt = alloc.WonAt
	run.runnerUp = resize(run.runnerUp, in.NumTasks())
	run.resetSlots(in.Slots)
	sc.heap = runBaseline(in, &sc.idx, run, sc.heap, in.Slots)

	if met != nil {
		met.SlotAllocSeconds.Observe(time.Since(start).Seconds())
		start = time.Now()
	}

	out := &Outcome{
		Allocation: alloc,
		Payments:   make([]float64, in.NumPhones()),
		Welfare:    alloc.Welfare(in),
	}
	sc.q.in, sc.q.run, sc.q.idx, sc.q.m = in, run, &sc.idx, met
	on.engine().priceAll(&sc.q, out.Payments)
	if met != nil {
		met.PaymentSeconds.Observe(time.Since(start).Seconds())
	}

	// Unhook the escaping outcome and instance before pooling the scratch.
	sc.q.in, sc.q.run, sc.q.idx, sc.q.m = nil, nil, nil, nil
	run.byTask, run.phoneTask, run.wonAt = nil, nil, nil
	return out, nil
}

// costHeap is a binary min-heap of phone IDs ordered by (claimed cost,
// phone ID). The deterministic ID tiebreak keeps runs reproducible.
type costHeap struct {
	bids  []Bid
	items []PhoneID
}

func (h *costHeap) len() int { return len(h.items) }

func (h *costHeap) less(a, b PhoneID) bool {
	if h.bids[a].Cost != h.bids[b].Cost {
		return h.bids[a].Cost < h.bids[b].Cost
	}
	return a < b
}

func (h *costHeap) push(p PhoneID) {
	h.items = append(h.items, p)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *costHeap) pop() PhoneID {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.less(h.items[l], h.items[small]) {
			small = l
		}
		if r < len(h.items) && h.less(h.items[r], h.items[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// popEligible pops the cheapest phone still active in slot t,
// permanently discarding departed entries on the way (lazy deletion: a
// departed phone can never become eligible again).
func (h *costHeap) popEligible(t Slot) PhoneID {
	for h.len() > 0 {
		p := h.pop()
		if h.bids[p].Departure >= t {
			return p
		}
	}
	return NoPhone
}

// peekEligible reports the phone popEligible would return next,
// discarding departed entries but leaving the survivor in place.
func (h *costHeap) peekEligible(t Slot) PhoneID {
	for h.len() > 0 {
		if p := h.items[0]; h.bids[p].Departure >= t {
			return p
		}
		h.pop()
	}
	return NoPhone
}
