package core

import (
	"errors"
	"math"
	"testing"
)

// stepOne is a test helper: advance the auction one slot with the given
// arrivals and task count, failing the test on error.
func stepOne(t *testing.T, oa *OnlineAuction, arriving []StreamBid, tasks int) *SlotResult {
	t.Helper()
	res, err := oa.Step(arriving, tasks)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCompletionTypedErrors exercises every validation surface of the
// lifecycle API: each misuse is rejected with the matching typed error
// and the auction state is left undisturbed.
func TestCompletionTypedErrors(t *testing.T) {
	oa, err := NewOnlineAuction(3, 30, false)
	if err != nil {
		t.Fatal(err)
	}

	// Tracking off: lifecycle calls are typed rejections, not panics.
	if err := oa.Complete(0); !errors.Is(err, ErrNotTracking) {
		t.Fatalf("Complete with tracking off: %v, want ErrNotTracking", err)
	}
	if _, err := oa.Default(0); !errors.Is(err, ErrNotTracking) {
		t.Fatalf("Default with tracking off: %v, want ErrNotTracking", err)
	}

	oa.TrackCompletions(true)
	// Unknown phone IDs (no bids yet).
	if err := oa.Complete(5); !errors.Is(err, ErrNotAssigned) {
		t.Fatalf("Complete unknown phone: %v, want ErrNotAssigned", err)
	}
	if _, err := oa.Default(-1); !errors.Is(err, ErrNotAssigned) {
		t.Fatalf("Default negative phone: %v, want ErrNotAssigned", err)
	}

	// Slot 1: phone 0 (cost 5) wins the task; phone 1 (cost 7) stands by.
	res := stepOne(t, oa, []StreamBid{{Departure: 3, Cost: 5}, {Departure: 3, Cost: 7}}, 1)
	if len(res.Assignments) != 1 || res.Assignments[0].Phone != 0 {
		t.Fatalf("unexpected slot-1 assignments: %+v", res.Assignments)
	}

	// A loser has no live assignment.
	if err := oa.Complete(1); !errors.Is(err, ErrNotAssigned) {
		t.Fatalf("Complete non-winner: %v, want ErrNotAssigned", err)
	}
	if _, err := oa.Default(1); !errors.Is(err, ErrNotAssigned) {
		t.Fatalf("Default non-winner: %v, want ErrNotAssigned", err)
	}

	// Complete once: fine. Twice: ErrAlreadyCompleted. Defaulting a
	// delivered task: ErrAlreadyCompleted too.
	if err := oa.Complete(0); err != nil {
		t.Fatalf("first Complete: %v", err)
	}
	if err := oa.Complete(0); !errors.Is(err, ErrAlreadyCompleted) {
		t.Fatalf("second Complete: %v, want ErrAlreadyCompleted", err)
	}
	if _, err := oa.Default(0); !errors.Is(err, ErrAlreadyCompleted) {
		t.Fatalf("Default after Complete: %v, want ErrAlreadyCompleted", err)
	}

	// Default the replacement-eligible phone 1 after it wins, then hit
	// the defaulted-phone surfaces.
	res = stepOne(t, oa, nil, 1) // slot 2: phone 1 wins the new task
	if len(res.Assignments) != 1 || res.Assignments[0].Phone != 1 {
		t.Fatalf("unexpected slot-2 assignments: %+v", res.Assignments)
	}
	if _, err := oa.Default(1); err != nil {
		t.Fatalf("Default live winner: %v", err)
	}
	if err := oa.Complete(1); !errors.Is(err, ErrNotAssigned) {
		t.Fatalf("Complete after Default: %v, want ErrNotAssigned", err)
	}
	if _, err := oa.Default(1); !errors.Is(err, ErrNotAssigned) {
		t.Fatalf("double Default: %v, want ErrNotAssigned", err)
	}

	// The misuses above must not have perturbed the tallies.
	counts := oa.CompletionCounts()
	if counts.Completed != 1 || counts.Defaulted != 1 {
		t.Fatalf("counts after error gauntlet: %+v", counts)
	}
}

// TestDefaultReallocatesAndPricesReplacement: a defaulted winner's task
// moves to the next-cheapest eligible bidder, which is then paid its own
// critical value; the defaulted phone nets zero.
func TestDefaultReallocatesAndPricesReplacement(t *testing.T) {
	oa, err := NewOnlineAuction(3, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	oa.TrackCompletions(true)

	// Slot 1: costs 5 < 7 < 9, one task. Phone 0 wins.
	bids := []StreamBid{{Departure: 3, Cost: 5}, {Departure: 3, Cost: 7}, {Departure: 3, Cost: 9}}
	res := stepOne(t, oa, bids, 1)
	if len(res.Assignments) != 1 || res.Assignments[0].Phone != 0 {
		t.Fatalf("slot 1 assignments: %+v", res.Assignments)
	}

	dr, err := oa.Default(0)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Replacement != 1 {
		t.Fatalf("replacement %d, want next-cheapest phone 1", dr.Replacement)
	}
	if dr.Clawback != 0 {
		t.Fatalf("clawback %g for a never-paid winner", dr.Clawback)
	}
	if len(dr.Payments) != 0 {
		t.Fatalf("immediate payments %+v for an undeparted replacement", dr.Payments)
	}
	if st := oa.Completion(1); st.Status != StatusAssigned || st.Task != dr.Task {
		t.Fatalf("replacement state %+v", st)
	}

	// Play the round out; the replacement settles at its departure.
	stepOne(t, oa, nil, 0)
	res = stepOne(t, oa, nil, 0)
	var paid float64
	for _, p := range res.Payments {
		if p.Phone == 1 {
			paid = p.Amount
		}
	}
	// Phone 1's critical value with phone 0 defaulted: the next eligible
	// competitor is phone 2 at cost 9.
	if paid != 9 {
		t.Fatalf("replacement paid %g, want its critical value 9", paid)
	}
	out := oa.Outcome()
	if out.Payments[0] != 0 {
		t.Fatalf("defaulted phone paid %g in the outcome", out.Payments[0])
	}
	if out.Payments[1] != 9 {
		t.Fatalf("outcome pays replacement %g, want 9", out.Payments[1])
	}
	counts := oa.CompletionCounts()
	if counts.Defaulted != 1 || counts.Reallocated != 1 || counts.Unreplaced != 0 || counts.Clawbacks != 0 {
		t.Fatalf("counts: %+v", counts)
	}
}

// TestDefaultAfterPaymentClawsBack: a winner paid at its departure and
// defaulted afterwards owes the payment back; a replacement drafted
// after its own departure is paid immediately.
func TestDefaultAfterPaymentClawsBack(t *testing.T) {
	oa, err := NewOnlineAuction(3, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	oa.TrackCompletions(true)

	// Slot 1: phone 0 (cost 5, departs slot 1) wins and settles at once;
	// phone 1 (cost 7, departs slot 2) is the future replacement.
	res := stepOne(t, oa, []StreamBid{{Departure: 1, Cost: 5}, {Departure: 2, Cost: 7}}, 1)
	if len(res.Payments) != 1 || res.Payments[0].Phone != 0 {
		t.Fatalf("slot 1 payments: %+v", res.Payments)
	}
	issued := res.Payments[0].Amount
	if issued <= 0 {
		t.Fatalf("issued payment %g", issued)
	}

	// Slot 2 passes; phone 1 departs unassigned (not yet a winner).
	stepOne(t, oa, nil, 0)

	// The paid winner now defaults: clawback equals the issued amount,
	// and the replacement — already departed — is paid immediately.
	dr, err := oa.Default(0)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Clawback != issued {
		t.Fatalf("clawback %g, want issued amount %g", dr.Clawback, issued)
	}
	if dr.Replacement != 1 {
		t.Fatalf("replacement %d, want phone 1", dr.Replacement)
	}
	if len(dr.Payments) != 1 || dr.Payments[0].Phone != 1 {
		t.Fatalf("immediate replacement payment missing: %+v", dr.Payments)
	}

	out := oa.Outcome()
	if out.Payments[0] != 0 {
		t.Fatalf("defaulted phone nets %g in the outcome", out.Payments[0])
	}
	if math.Abs(out.Payments[1]-dr.Payments[0].Amount) > 1e-12 {
		t.Fatalf("outcome pays replacement %g, issued %g", out.Payments[1], dr.Payments[0].Amount)
	}
	counts := oa.CompletionCounts()
	if counts.Clawbacks != 1 {
		t.Fatalf("counts: %+v", counts)
	}
	if st := oa.Completion(0); st.Status != StatusDefaulted || st.Paid != issued {
		t.Fatalf("defaulted state %+v", st)
	}
}

// TestDefaultWithoutReplacementUnserves: when no eligible bidder
// remains, the task goes unserved and is counted as unreplaced.
func TestDefaultWithoutReplacementUnserves(t *testing.T) {
	oa, err := NewOnlineAuction(2, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	oa.TrackCompletions(true)
	stepOne(t, oa, []StreamBid{{Departure: 2, Cost: 5}}, 1)
	dr, err := oa.Default(0)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Replacement != NoPhone {
		t.Fatalf("replacement %d from an empty pool", dr.Replacement)
	}
	counts := oa.CompletionCounts()
	if counts.Unreplaced != 1 || counts.Reallocated != 0 {
		t.Fatalf("counts: %+v", counts)
	}
	out := oa.Outcome()
	if out.Allocation.NumServed() != 0 {
		t.Fatalf("served %d after the only winner defaulted", out.Allocation.NumServed())
	}
}

// TestReserveRespectedOnReallocation: a standby bidder at or above the
// platform's per-task value is not drafted as a replacement unless the
// instance allocates at a loss.
func TestReserveRespectedOnReallocation(t *testing.T) {
	oa, err := NewOnlineAuction(2, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	oa.TrackCompletions(true)
	// Phone 1's cost equals ν: reserve-priced out of the re-allocation.
	stepOne(t, oa, []StreamBid{{Departure: 2, Cost: 5}, {Departure: 2, Cost: 10}}, 1)
	dr, err := oa.Default(0)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Replacement != NoPhone {
		t.Fatalf("reserve-priced phone drafted as replacement (cost 10, ν=10)")
	}

	// With AllocateAtLoss the same standby is eligible.
	loss, err := NewOnlineAuction(2, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	loss.TrackCompletions(true)
	if _, err := loss.Step([]StreamBid{{Departure: 2, Cost: 5}, {Departure: 2, Cost: 10}}, 1); err != nil {
		t.Fatal(err)
	}
	dr, err = loss.Default(0)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Replacement != 1 {
		t.Fatalf("replacement %d, want reserve-exempt phone 1", dr.Replacement)
	}
}

// TestCompletionSnapshotRoundTrip: a round with completions, defaults,
// and clawbacks snapshots and restores losslessly — statuses, issued
// payments, counters, and the outcome all survive, and the restored
// auction keeps playing identically.
func TestCompletionSnapshotRoundTrip(t *testing.T) {
	build := func() *OnlineAuction {
		oa, err := NewOnlineAuction(6, 30, false)
		if err != nil {
			t.Fatal(err)
		}
		oa.TrackCompletions(true)
		return oa
	}
	oa := build()

	// Slot 1: three bidders, two tasks. Slot 2: two more bidders, one task.
	stepOne(t, oa, []StreamBid{
		{Departure: 2, Cost: 4}, {Departure: 4, Cost: 6}, {Departure: 5, Cost: 11},
	}, 2)
	if err := oa.Complete(0); err != nil {
		t.Fatal(err)
	}
	stepOne(t, oa, []StreamBid{{Departure: 3, Cost: 8}, {Departure: 6, Cost: 9}}, 1)
	// Phone 1 defaults at clock 2: its task re-allocates.
	if _, err := oa.Default(1); err != nil {
		t.Fatal(err)
	}
	stepOne(t, oa, nil, 1) // slot 3
	// Phone 3 was paid at its slot-3 departure if it won; default 3 if
	// live, otherwise default the slot-3 winner to stir the pot.
	if st := oa.Completion(3); st.Status == StatusAssigned {
		if _, err := oa.Default(3); err != nil {
			t.Fatal(err)
		}
	}

	data, err := oa.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	re, err := RestoreOnlineAuction(data)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := re.CompletionCounts(), oa.CompletionCounts(); got != want {
		t.Fatalf("restored counts %+v, want %+v", got, want)
	}
	for i := 0; i < oa.Instance().NumPhones(); i++ {
		if got, want := re.Completion(PhoneID(i)), oa.Completion(PhoneID(i)); got != want {
			t.Fatalf("phone %d state %+v, want %+v", i, got, want)
		}
	}
	a, b := oa.Outcome(), re.Outcome()
	if a.Welfare != b.Welfare {
		t.Fatalf("welfare %g != restored %g", a.Welfare, b.Welfare)
	}
	for i := range a.Payments {
		if a.Payments[i] != b.Payments[i] {
			t.Fatalf("payment[%d] %g != restored %g", i, a.Payments[i], b.Payments[i])
		}
	}

	// Both continue identically: same steps, same default, same outcome.
	for _, x := range []*OnlineAuction{oa, re} {
		stepOne(t, x, []StreamBid{{Departure: 6, Cost: 3}}, 1)
		stepOne(t, x, nil, 0)
		stepOne(t, x, nil, 0)
	}
	a, b = oa.Outcome(), re.Outcome()
	for i := range a.Payments {
		if a.Payments[i] != b.Payments[i] {
			t.Fatalf("post-restore payment[%d] %g != %g", i, a.Payments[i], b.Payments[i])
		}
	}
	if a.Welfare != b.Welfare {
		t.Fatalf("post-restore welfare %g != %g", a.Welfare, b.Welfare)
	}
}

// TestCompletionDisabledStepAllocFree guards the satellite requirement:
// with tracking off, the lifecycle additions cost the slot path nothing.
func TestCompletionDisabledStepAllocFree(t *testing.T) {
	oa, err := NewOnlineAuction(1<<20, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	// Prime: one standing bid pool, no arrivals or payments in the
	// measured steps, reusing the caller-owned arrival slice.
	if _, err := oa.Step([]StreamBid{{Departure: 1 << 20, Cost: 5}, {Departure: 1 << 20, Cost: 7}}, 0); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := oa.Step(nil, 0); err != nil {
			t.Fatal(err)
		}
	})
	// The engine's own slot path allocates only the SlotResult.
	if avg > 1 {
		t.Fatalf("tracking-off Step allocates %.1f objects per slot", avg)
	}
}
