package core

import (
	"fmt"

	"dynacrowd/internal/matching"
)

// OfflineMechanism is the paper's Section IV auction: all bids and task
// arrivals are known before allocation. Winning-bid determination is an
// exact maximum weighted bipartite matching (tasks × phones, edge weight
// ν − b_i when the phone's claimed window covers the task's arrival
// slot). Payments are VCG: a winner is paid its externality,
//
//	p_i = ω*(B) + b_i − ω*(B₋ᵢ),
//
// and losers are paid zero. The mechanism is truthful in all three bid
// dimensions (Theorem 1), individually rational (Theorem 2), and
// welfare-optimal.
//
// The algorithm is selected by Engine. The default IntervalOffline
// engine solves the matching by weight-ordered augmenting paths over
// the instance's interval structure and derives every payment from one
// substitute-weight sweep — near-linear, against the oracle engines'
// cubic solves (see OfflineEngine and docs/THEORY.md §6).
type OfflineMechanism struct {
	// Engine selects the solve/payment backend; nil means the fast
	// IntervalOffline engine. HungarianOffline is the literal
	// Hungarian+VCG oracle kept for differential testing.
	Engine OfflineEngine
	// Matcher is the legacy backend seam: a non-nil matcher overrides
	// Engine, computing the allocation with the given function and
	// pricing each winner by a full re-solve without it. Kept for
	// ablation benchmarks and tests that inject a specific solver.
	Matcher func(numLeft, numRight int, w matching.WeightFunc) matching.Result
}

// Name implements Mechanism.
func (of *OfflineMechanism) Name() string { return "offline-vcg" }

func (of *OfflineMechanism) engine() OfflineEngine {
	if of.Matcher != nil {
		return matcherOfflineEngine{name: "custom", match: of.Matcher}
	}
	if of.Engine != nil {
		return of.Engine
	}
	return IntervalOffline
}

// weightFunc builds the bipartite edge-weight function for an instance:
// tasks on the left, phones on the right, weight ν − b when the phone is
// active in the task's slot (Section IV-B). Non-edges and unprofitable
// edges are ≤ 0 and thus never matched.
func weightFunc(in *Instance) matching.WeightFunc {
	return func(task, phone int) float64 {
		b := in.Bids[phone]
		if !b.Covers(in.Tasks[task].Arrival) {
			return 0
		}
		return in.Value - b.Cost
	}
}

// Run implements Mechanism. It validates the instance and delegates to
// the selected engine for the optimal allocation and VCG payments.
func (of *OfflineMechanism) Run(in *Instance) (*Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("offline mechanism: %w", err)
	}
	return of.engine().run(in)
}

// Welfare computes only the optimal social welfare of the instance,
// skipping payment computation. It is the ω*(·) oracle used by tests and
// by the online mechanism's competitive-ratio evaluation.
func (of *OfflineMechanism) Welfare(in *Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, fmt.Errorf("offline welfare: %w", err)
	}
	return of.engine().welfare(in), nil
}
