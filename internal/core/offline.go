package core

import (
	"fmt"

	"dynacrowd/internal/matching"
)

// OfflineMechanism is the paper's Section IV auction: all bids and task
// arrivals are known before allocation. Winning-bid determination is an
// exact maximum weighted bipartite matching (tasks × phones, edge weight
// ν − b_i when the phone's claimed window covers the task's arrival
// slot), computed by the Hungarian algorithm in O((n+γ)³). Payments are
// VCG: a winner is paid its externality,
//
//	p_i = ω*(B) + b_i − ω*(B₋ᵢ),
//
// and losers are paid zero. The mechanism is truthful in all three bid
// dimensions (Theorem 1), individually rational (Theorem 2), and
// welfare-optimal.
type OfflineMechanism struct {
	// Matcher selects the matching backend; nil means the Hungarian
	// solver. Exposed so ablation benchmarks can swap in the min-cost-flow
	// solver.
	Matcher func(numLeft, numRight int, w matching.WeightFunc) matching.Result
}

// Name implements Mechanism.
func (of *OfflineMechanism) Name() string { return "offline-vcg" }

func (of *OfflineMechanism) matcher() func(int, int, matching.WeightFunc) matching.Result {
	if of.Matcher != nil {
		return of.Matcher
	}
	return matching.MaxWeightMatching
}

// weightFunc builds the bipartite edge-weight function for an instance:
// tasks on the left, phones on the right, weight ν − b when the phone is
// active in the task's slot (Section IV-B). Non-edges and unprofitable
// edges are ≤ 0 and thus never matched.
func weightFunc(in *Instance) matching.WeightFunc {
	return func(task, phone int) float64 {
		b := in.Bids[phone]
		if !b.Covers(in.Tasks[task].Arrival) {
			return 0
		}
		return in.Value - b.Cost
	}
}

// Run implements Mechanism. It validates the instance, computes the
// optimal allocation, and derives VCG payments. With the default
// Hungarian backend, each winner's ω*(B₋ᵢ) is an O((n+γ)²) post-optimal
// dual query on the solved matching rather than a fresh O((n+γ)³) solve;
// with a custom Matcher it falls back to one reduced matching per winner.
func (of *OfflineMechanism) Run(in *Instance) (*Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("offline mechanism: %w", err)
	}

	if of.Matcher == nil {
		sv := matching.NewSolver(in.NumTasks(), in.NumPhones(), weightFunc(in))
		alloc := NewAllocation(in.NumTasks(), in.NumPhones())
		res := sv.Result()
		for task, phone := range res.MatchLeft {
			if phone == matching.Unmatched {
				continue
			}
			alloc.Assign(TaskID(task), PhoneID(phone), in.Tasks[task].Arrival)
		}
		out := &Outcome{
			Allocation: alloc,
			Payments:   make([]float64, in.NumPhones()),
			Welfare:    res.Weight,
		}
		// VCG: p_i = ω*(B) + b_i − ω*(B₋ᵢ).
		for _, i := range alloc.Winners() {
			out.Payments[i] = res.Weight + in.Bids[i].Cost - sv.WeightWithoutRight(int(i))
		}
		return out, nil
	}

	match := of.matcher()
	alloc, welfare := of.solve(in, match)
	out := &Outcome{
		Allocation: alloc,
		Payments:   make([]float64, in.NumPhones()),
		Welfare:    welfare,
	}
	// VCG payments: for each winner i, re-solve without i. weightFunc
	// indexes bids positionally, so it applies unchanged to the reduced
	// instance.
	for _, i := range alloc.Winners() {
		reduced := in.WithoutPhone(i)
		wWithout := match(len(reduced.Tasks), len(reduced.Bids), weightFunc(reduced)).Weight
		out.Payments[i] = welfare + in.Bids[i].Cost - wWithout
	}
	return out, nil
}

// Welfare computes only the optimal social welfare of the instance,
// skipping payment computation. It is the ω*(·) oracle used by tests and
// by the online mechanism's competitive-ratio evaluation.
func (of *OfflineMechanism) Welfare(in *Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, fmt.Errorf("offline welfare: %w", err)
	}
	_, w := of.solve(in, of.matcher())
	return w, nil
}

func (of *OfflineMechanism) solve(in *Instance, match func(int, int, matching.WeightFunc) matching.Result) (*Allocation, float64) {
	res := match(in.NumTasks(), in.NumPhones(), weightFunc(in))
	alloc := NewAllocation(in.NumTasks(), in.NumPhones())
	for task, phone := range res.MatchLeft {
		if phone == matching.Unmatched {
			continue
		}
		alloc.Assign(TaskID(task), PhoneID(phone), in.Tasks[task].Arrival)
	}
	return alloc, res.Weight
}
