package core

import (
	"math"
	"math/rand"
	"testing"

	"dynacrowd/internal/matching"
)

func mustRun(t *testing.T, m Mechanism, in *Instance) *Outcome {
	t.Helper()
	out, err := m.Run(in)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	if err := out.Allocation.Validate(in); err != nil {
		t.Fatalf("%s produced infeasible allocation: %v", m.Name(), err)
	}
	return out
}

func TestOfflineName(t *testing.T) {
	if got := (&OfflineMechanism{}).Name(); got != "offline-vcg" {
		t.Fatalf("Name = %q", got)
	}
}

func TestOfflineRejectsInvalidInstance(t *testing.T) {
	in := paperInstance()
	in.Bids[0].Arrival = 0
	if _, err := (&OfflineMechanism{}).Run(in); err == nil {
		t.Fatal("want validation error")
	}
	if _, err := (&OfflineMechanism{}).Welfare(in); err == nil {
		t.Fatal("want validation error from Welfare")
	}
}

// TestOfflinePaperInstance: on the Fig. 4 instance the offline optimum
// serves all five tasks, choosing the feasible phone set with minimum
// total cost (it beats the greedy walkthrough by using phone 5 in slot 2
// and saving phone 1 for slot 4); the brute-force oracle pins the value.
func TestOfflinePaperInstance(t *testing.T) {
	in := paperInstance()
	of := &OfflineMechanism{}
	out := mustRun(t, of, in)

	oracle := matching.BruteForceMaxWeight(in.NumTasks(), in.NumPhones(), weightFunc(in))
	if math.Abs(out.Welfare-oracle.Weight) > 1e-9 {
		t.Fatalf("offline welfare %g != brute-force optimum %g", out.Welfare, oracle.Weight)
	}
	if out.Allocation.NumServed() != 5 {
		t.Fatalf("served %d tasks, want 5", out.Allocation.NumServed())
	}
}

// TestOfflineOptimalVsBruteForce cross-checks the Hungarian-backed
// allocation against the exhaustive oracle on many random instances.
func TestOfflineOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	of := &OfflineMechanism{}
	for trial := 0; trial < 150; trial++ {
		in := randomInstance(rng, 7, 7, 6, 50)
		out := mustRun(t, of, in)
		oracle := matching.BruteForceMaxWeight(in.NumTasks(), in.NumPhones(), weightFunc(in))
		if math.Abs(out.Welfare-oracle.Weight) > 1e-6 {
			t.Fatalf("trial %d: welfare %g != optimum %g\ninstance: %+v", trial, out.Welfare, oracle.Weight, in)
		}
	}
}

// TestOfflineVCGPaymentsManual verifies the VCG formula on a tiny
// hand-computed instance.
//
// m=1, ν=10, one task in slot 1, two phones both active [1,1] with costs
// 2 and 5. Optimum: phone 0 wins, ω* = 8. Without phone 0: ω*(B₋₀) = 5.
// p₀ = 8 + 2 − 5 = 5 (phone 0 is paid its opponent's bid — VCG reduces
// to second price here). Phone 1 loses, p₁ = 0.
func TestOfflineVCGPaymentsManual(t *testing.T) {
	in := &Instance{
		Slots: 1, Value: 10,
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 1, Cost: 2},
			{Phone: 1, Arrival: 1, Departure: 1, Cost: 5},
		},
		Tasks: []Task{{ID: 0, Arrival: 1}},
	}
	out := mustRun(t, &OfflineMechanism{}, in)
	if out.Allocation.ByTask[0] != 0 {
		t.Fatalf("task went to phone %d, want 0", out.Allocation.ByTask[0])
	}
	if out.Payments[0] != 5 || out.Payments[1] != 0 {
		t.Fatalf("payments = %v, want [5 0]", out.Payments)
	}
	if out.Welfare != 8 {
		t.Fatalf("welfare = %g, want 8", out.Welfare)
	}
}

// TestOfflineVCGPaymentUncontested: a single phone with no competition is
// paid its full marginal contribution ν (the welfare the system loses
// without it, plus its own cost): p = (ν−b) + b − 0 = ν.
func TestOfflineVCGPaymentUncontested(t *testing.T) {
	in := &Instance{
		Slots: 3, Value: 10,
		Bids:  []Bid{{Phone: 0, Arrival: 1, Departure: 3, Cost: 4}},
		Tasks: []Task{{ID: 0, Arrival: 2}},
	}
	out := mustRun(t, &OfflineMechanism{}, in)
	if out.Payments[0] != 10 {
		t.Fatalf("payment = %g, want 10", out.Payments[0])
	}
}

// TestOfflineSkipsUnprofitable: a phone whose claimed cost exceeds ν must
// not be allocated; a task with only such phones stays unserved.
func TestOfflineSkipsUnprofitable(t *testing.T) {
	in := &Instance{
		Slots: 1, Value: 10,
		Bids:  []Bid{{Phone: 0, Arrival: 1, Departure: 1, Cost: 15}},
		Tasks: []Task{{ID: 0, Arrival: 1}},
	}
	out := mustRun(t, &OfflineMechanism{}, in)
	if out.Allocation.ByTask[0] != NoPhone {
		t.Fatal("unprofitable phone was allocated")
	}
	if out.Welfare != 0 || out.Payments[0] != 0 {
		t.Fatalf("welfare %g payments %v, want zeros", out.Welfare, out.Payments)
	}
}

// TestOfflineWindowRespected: phones are never matched to tasks outside
// their active window even when that forfeits welfare.
func TestOfflineWindowRespected(t *testing.T) {
	in := &Instance{
		Slots: 4, Value: 10,
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 2, Cost: 1},
			{Phone: 1, Arrival: 3, Departure: 4, Cost: 1},
		},
		Tasks: []Task{{ID: 0, Arrival: 1}, {ID: 1, Arrival: 2}},
	}
	out := mustRun(t, &OfflineMechanism{}, in)
	if out.Allocation.ByPhone[1] != NoTask {
		t.Fatal("phone 1 allocated outside its window")
	}
	if out.Allocation.NumServed() != 1 {
		t.Fatalf("served %d, want 1 (phone 0 can cover only one task)", out.Allocation.NumServed())
	}
}

// TestOfflineIndividualRationality (Theorem 2): with truthful bids,
// utility = payment − real cost ≥ 0 for every phone.
func TestOfflineIndividualRationality(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	of := &OfflineMechanism{}
	for trial := 0; trial < 80; trial++ {
		in := randomInstance(rng, 10, 10, 8, 40)
		out := mustRun(t, of, in)
		for i := range in.Bids {
			u := out.Utility(PhoneID(i), in.Bids[i].Cost)
			if u < -1e-9 {
				t.Fatalf("trial %d: phone %d has negative utility %g", trial, i, u)
			}
		}
	}
}

// TestOfflineLosersPaidNothing: non-winners receive zero payment.
func TestOfflineLosersPaidNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	of := &OfflineMechanism{}
	for trial := 0; trial < 50; trial++ {
		in := randomInstance(rng, 10, 6, 8, 40)
		out := mustRun(t, of, in)
		for i, task := range out.Allocation.ByPhone {
			if task == NoTask && out.Payments[i] != 0 {
				t.Fatalf("trial %d: loser %d paid %g", trial, i, out.Payments[i])
			}
		}
	}
}

// TestOfflinePaymentAtLeastBid: winners are paid at least their claimed
// cost (VCG payment ≥ bid follows from ω*(B) ≥ ω*(B₋ᵢ) + (ν−bᵢ) − ν...
// concretely p_i − b_i = ω*(B) − ω*(B₋ᵢ) ≥ 0).
func TestOfflinePaymentAtLeastBid(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	of := &OfflineMechanism{}
	for trial := 0; trial < 80; trial++ {
		in := randomInstance(rng, 10, 10, 8, 40)
		out := mustRun(t, of, in)
		for _, i := range out.Allocation.Winners() {
			if out.Payments[i] < in.Bids[i].Cost-1e-9 {
				t.Fatalf("trial %d: winner %d paid %g < bid %g", trial, i, out.Payments[i], in.Bids[i].Cost)
			}
		}
	}
}

// TestOfflineMatcherSwap: the flow-based matcher must produce the same
// welfare and payments as the Hungarian default.
func TestOfflineMatcherSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	hung := &OfflineMechanism{}
	flow := &OfflineMechanism{Matcher: matching.MaxWeightMatchingFlow}
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 8, 8, 6, 40)
		a := mustRun(t, hung, in)
		b := mustRun(t, flow, in)
		if math.Abs(a.Welfare-b.Welfare) > 1e-6 {
			t.Fatalf("trial %d: welfare %g vs %g", trial, a.Welfare, b.Welfare)
		}
		// Payments can differ only if the optima differ; VCG payments are
		// uniquely determined by the welfare values, not the matching.
		for i := range a.Payments {
			if math.Abs(a.Payments[i]-b.Payments[i]) > 1e-6 {
				// Tie between optimal matchings can legitimately flip a
				// winner; only flag when the winner sets agree.
				if a.Allocation.ByPhone[i] != NoTask && b.Allocation.ByPhone[i] != NoTask {
					t.Fatalf("trial %d: payment[%d] %g vs %g", trial, i, a.Payments[i], b.Payments[i])
				}
			}
		}
	}
}

// TestOfflineWelfareMatchesOutcome: the reported Welfare field equals the
// allocation's recomputed welfare.
func TestOfflineWelfareMatchesOutcome(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	of := &OfflineMechanism{}
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 10, 10, 8, 40)
		out := mustRun(t, of, in)
		if math.Abs(out.Welfare-out.Allocation.Welfare(in)) > 1e-9 {
			t.Fatalf("trial %d: Welfare %g != recomputed %g", trial, out.Welfare, out.Allocation.Welfare(in))
		}
	}
}

// TestOfflineIgnoresAllocateAtLoss: a maximum weight matching never uses
// a non-positive edge, so the offline mechanism never allocates at a
// loss even when the instance permits it (the flag only changes the
// online greedy's behaviour).
func TestOfflineIgnoresAllocateAtLoss(t *testing.T) {
	in := &Instance{
		Slots: 1, Value: 10, AllocateAtLoss: true,
		Bids:  []Bid{{Phone: 0, Arrival: 1, Departure: 1, Cost: 15}},
		Tasks: []Task{{ID: 0, Arrival: 1}},
	}
	out := mustRun(t, &OfflineMechanism{}, in)
	if out.Allocation.ByTask[0] != NoPhone {
		t.Fatal("offline allocated at a loss")
	}
}
