package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickInstance derives a valid instance from arbitrary quick-generated
// integers, exercising the full shape space.
func quickInstance(seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	return randomInstance(rng, 10, 10, 2+Slot(rng.Intn(8)), 20+rng.Float64()*40)
}

// TestQuickAllocationMirrors: for any instance and either mechanism,
// ByTask and ByPhone stay mutual inverses.
func TestQuickAllocationMirrors(t *testing.T) {
	prop := func(seed int64, useOffline bool) bool {
		in := quickInstance(seed)
		var mech Mechanism = &OnlineMechanism{}
		if useOffline {
			mech = &OfflineMechanism{}
		}
		out, err := mech.Run(in)
		if err != nil {
			return false
		}
		for k, p := range out.Allocation.ByTask {
			if p != NoPhone && out.Allocation.ByPhone[p] != TaskID(k) {
				return false
			}
		}
		for i, k := range out.Allocation.ByPhone {
			if k != NoTask && out.Allocation.ByTask[k] != PhoneID(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWelfareDecomposition: welfare always equals served·ν − total
// winner cost.
func TestQuickWelfareDecomposition(t *testing.T) {
	prop := func(seed int64, useOffline bool) bool {
		in := quickInstance(seed)
		var mech Mechanism = &OnlineMechanism{}
		if useOffline {
			mech = &OfflineMechanism{}
		}
		out, err := mech.Run(in)
		if err != nil {
			return false
		}
		want := float64(out.Allocation.NumServed())*in.Value - out.TotalWinnerCost(in)
		return math.Abs(out.Welfare-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWithoutPhoneShrinksWelfare: removing any phone never raises
// the offline optimum (the fact VCG payments' non-negativity rests on).
func TestQuickWithoutPhoneShrinksWelfare(t *testing.T) {
	of := &OfflineMechanism{}
	prop := func(seed int64, pick uint8) bool {
		in := quickInstance(seed)
		if in.NumPhones() == 0 {
			return true
		}
		full, err := of.Welfare(in)
		if err != nil {
			return false
		}
		victim := PhoneID(int(pick) % in.NumPhones())
		reduced := in.WithoutPhone(victim)
		// Renumber for Validate-ability, preserving window/cost data.
		for i := range reduced.Bids {
			reduced.Bids[i].Phone = PhoneID(i)
		}
		partial, err := of.Welfare(reduced)
		if err != nil {
			return false
		}
		return partial <= full+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAddingTaskGrowsWelfare: appending one more task at the last
// slot never lowers the optimum.
func TestQuickAddingTaskGrowsWelfare(t *testing.T) {
	of := &OfflineMechanism{}
	prop := func(seed int64) bool {
		in := quickInstance(seed)
		base, err := of.Welfare(in)
		if err != nil {
			return false
		}
		grown := in.Clone()
		grown.Tasks = append(grown.Tasks, Task{ID: TaskID(len(grown.Tasks)), Arrival: grown.Slots})
		more, err := of.Welfare(grown)
		if err != nil {
			return false
		}
		return more >= base-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPaymentsDominateWelfareSplit: for both mechanisms, total
// payment lies between total winner cost (IR for the phones) and
// served·ν under the default no-loss policy (weak budget sanity: the
// platform never pays more than the gross value it receives).
func TestQuickPaymentsDominateWelfareSplit(t *testing.T) {
	prop := func(seed int64, useOffline bool) bool {
		in := quickInstance(seed)
		var mech Mechanism = &OnlineMechanism{}
		if useOffline {
			mech = &OfflineMechanism{}
		}
		out, err := mech.Run(in)
		if err != nil {
			return false
		}
		paid := out.TotalPayment()
		if paid < out.TotalWinnerCost(in)-1e-9 {
			return false
		}
		gross := float64(out.Allocation.NumServed()) * in.Value
		return paid <= gross+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneEquality: Clone produces structurally equal instances
// that evolve independently.
func TestQuickCloneEquality(t *testing.T) {
	prop := func(seed int64) bool {
		in := quickInstance(seed)
		c := in.Clone()
		if len(c.Bids) != len(in.Bids) || len(c.Tasks) != len(in.Tasks) {
			return false
		}
		for i := range in.Bids {
			if c.Bids[i] != in.Bids[i] {
				return false
			}
		}
		if len(c.Bids) > 0 {
			c.Bids[0].Cost++
			if in.Bids[0].Cost == c.Bids[0].Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
