// Package core implements the paper's primary contribution: two truthful
// reverse-auction mechanisms for mobile crowdsourcing with dynamic
// smartphones (Feng et al., ICDCS 2014).
//
// Time is divided into unit slots 1..m forming one auction round. Sensing
// tasks arrive at random slots; each task completes within a single slot,
// is worth a fixed value ν to the platform, and may be assigned to at most
// one smartphone. A smartphone is active over a window [a, d] of slots,
// incurs a private cost c per task, and may serve at most one task per
// round. Smartphones bid (ã, d̃, b) where ã ≥ a, d̃ ≤ d (no early-arrival,
// no late-departure) and b is the claimed cost.
//
// The package provides:
//
//   - OfflineMechanism: optimal task allocation via maximum weighted
//     bipartite matching (Hungarian algorithm) with VCG payments.
//     Truthful, individually rational, welfare-optimal.
//   - OnlineMechanism: slot-by-slot greedy allocation with critical-value
//     payments. Truthful, individually rational, 1/2-competitive.
//
// Both satisfy the auction-theoretic properties proved in the paper
// (Theorems 1-7); the test suite audits them on randomized instances.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Slot indexes a time slot within a round. Slots are 1-based: the first
// slot of a round is 1 and the last is the round length m. Slot 0 is the
// zero value and never a valid slot.
type Slot int

// PhoneID identifies a smartphone within a round. IDs are dense indexes
// 0..n-1 assigned by the platform at registration.
type PhoneID int

// TaskID identifies a sensing task within a round. IDs are dense indexes
// 0..γ-1 in arrival order (ties within a slot are ordered by submission).
type TaskID int

// NoPhone and NoTask are sentinel values meaning "unassigned".
const (
	NoPhone PhoneID = -1
	NoTask  TaskID  = -1
)

// Task is a sensing task submitted to the platform. Tasks arrive at the
// beginning of their arrival slot and must be served within that slot
// (the paper's τ_{j,k}: the k-th task arriving in slot j).
type Task struct {
	ID      TaskID
	Arrival Slot
}

// Bid is a smartphone's sealed bid B_i = (ã_i, d̃_i, b_i): the claimed
// active window [Arrival, Departure] and the claimed per-task cost.
// A bid admits serving any task whose arrival slot falls inside the
// claimed window.
type Bid struct {
	Phone     PhoneID
	Arrival   Slot    // ã: first slot the phone claims to be active
	Departure Slot    // d̃: last slot the phone claims to be active
	Cost      float64 // b: claimed cost for completing one task
}

// Covers reports whether the bid's claimed active window contains slot t.
func (b Bid) Covers(t Slot) bool { return b.Arrival <= t && t <= b.Departure }

// ErrWindowInverted reports a bid whose claimed window is inverted
// (ã > d̃). Such a bid covers no slot at all, so without an explicit
// rejection it would be admitted and then silently never allocated;
// Validate and every admission path (OnlineAuction.Step, Ledger.AddBid,
// the sharded engine) reject it with this error instead, matchable via
// errors.Is.
var ErrWindowInverted = errors.New("claimed window inverted: arrival after departure")

// Validate checks structural sanity of the bid against a round of m slots.
func (b Bid) Validate(m Slot) error {
	switch {
	case b.Phone < 0:
		return fmt.Errorf("bid: negative phone id %d", b.Phone)
	case b.Arrival > b.Departure:
		return fmt.Errorf("bid %d: %w (window [%d,%d])", b.Phone, ErrWindowInverted, b.Arrival, b.Departure)
	case b.Arrival < 1 || b.Departure > m:
		return fmt.Errorf("bid %d: window [%d,%d] outside round [1,%d]", b.Phone, b.Arrival, b.Departure, m)
	case b.Cost < 0 || math.IsNaN(b.Cost) || math.IsInf(b.Cost, 0):
		return fmt.Errorf("bid %d: cost %g is not a non-negative finite number", b.Phone, b.Cost)
	}
	return nil
}

// Instance is one complete auction round: the round length, the per-task
// value, the submitted bids, and the task arrivals.
//
// Bids are indexed by PhoneID: Bids[i].Phone must equal PhoneID(i).
// Tasks are indexed by TaskID in arrival order: Tasks[k].ID == TaskID(k)
// and arrivals are non-decreasing.
type Instance struct {
	Slots Slot    // m: number of slots in the round
	Value float64 // ν: platform value for one completed task
	Bids  []Bid
	Tasks []Task

	// AllocateAtLoss, when true, permits assigning a task to a phone whose
	// claimed cost exceeds Value (negative task utility). The paper's
	// online equivalence argument ("all the sensing tasks are to be
	// allocated") implicitly assumes every task is worth allocating; the
	// default (false) only makes profitable assignments, which both
	// mechanisms' truthfulness proofs tolerate.
	AllocateAtLoss bool
}

// NumPhones returns n, the number of participating smartphones.
func (in *Instance) NumPhones() int { return len(in.Bids) }

// NumTasks returns γ, the number of sensing tasks.
func (in *Instance) NumTasks() int { return len(in.Tasks) }

// Validate checks the structural invariants of the instance.
func (in *Instance) Validate() error {
	if in.Slots < 1 {
		return fmt.Errorf("instance: round length %d < 1", in.Slots)
	}
	if in.Value < 0 || math.IsNaN(in.Value) || math.IsInf(in.Value, 0) {
		return fmt.Errorf("instance: task value %g is not a non-negative finite number", in.Value)
	}
	for i, b := range in.Bids {
		if b.Phone != PhoneID(i) {
			return fmt.Errorf("instance: bid %d has phone id %d, want %d", i, b.Phone, i)
		}
		if err := b.Validate(in.Slots); err != nil {
			return err
		}
	}
	var prev Slot
	for k, t := range in.Tasks {
		if t.ID != TaskID(k) {
			return fmt.Errorf("instance: task %d has id %d, want %d", k, t.ID, k)
		}
		if t.Arrival < 1 || t.Arrival > in.Slots {
			return fmt.Errorf("instance: task %d arrives at slot %d outside [1,%d]", k, t.Arrival, in.Slots)
		}
		if t.Arrival < prev {
			return fmt.Errorf("instance: task %d arrival %d out of order (prev %d)", k, t.Arrival, prev)
		}
		prev = t.Arrival
	}
	return nil
}

// TasksPerSlot returns the arrival vector R = (r_1, ..., r_m): the number
// of tasks arriving in each slot.
func (in *Instance) TasksPerSlot() []int {
	r := make([]int, in.Slots+1) // index 0 unused
	for _, t := range in.Tasks {
		r[t.Arrival]++
	}
	return r[1:]
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{Slots: in.Slots, Value: in.Value, AllocateAtLoss: in.AllocateAtLoss}
	out.Bids = append([]Bid(nil), in.Bids...)
	out.Tasks = append([]Task(nil), in.Tasks...)
	return out
}

// WithoutPhone returns a copy of the instance with phone i's bid removed.
// The remaining bids keep their original PhoneIDs, so the copy is NOT a
// valid argument to Validate; it is used internally for VCG/critical-value
// payment computations, which only need window/cost data.
func (in *Instance) WithoutPhone(i PhoneID) *Instance {
	out := &Instance{Slots: in.Slots, Value: in.Value, AllocateAtLoss: in.AllocateAtLoss}
	out.Bids = make([]Bid, 0, len(in.Bids)-1)
	for _, b := range in.Bids {
		if b.Phone != i {
			out.Bids = append(out.Bids, b)
		}
	}
	out.Tasks = append([]Task(nil), in.Tasks...)
	return out
}

// Assignment records that a task was allocated to a phone in a slot.
type Assignment struct {
	Task  TaskID
	Phone PhoneID
	Slot  Slot // the slot the task is served in (== the task's arrival slot)
}

// Allocation is the outcome of winning-bid determination: a partial
// matching between tasks and phones.
type Allocation struct {
	// ByTask maps TaskID -> PhoneID (NoPhone if the task is unserved).
	ByTask []PhoneID
	// ByPhone maps PhoneID -> TaskID (NoTask if the phone lost).
	ByPhone []TaskID
	// WonAt maps PhoneID -> slot its task is served in (0 if it lost).
	WonAt []Slot
}

// NewAllocation returns an empty allocation for γ tasks and n phones.
func NewAllocation(numTasks, numPhones int) *Allocation {
	a := &Allocation{
		ByTask:  make([]PhoneID, numTasks),
		ByPhone: make([]TaskID, numPhones),
		WonAt:   make([]Slot, numPhones),
	}
	for k := range a.ByTask {
		a.ByTask[k] = NoPhone
	}
	for i := range a.ByPhone {
		a.ByPhone[i] = NoTask
	}
	return a
}

// Assign records task k being served by phone i in slot t.
func (a *Allocation) Assign(k TaskID, i PhoneID, t Slot) {
	a.ByTask[k] = i
	a.ByPhone[i] = k
	a.WonAt[i] = t
}

// Winners returns the IDs of phones that were allocated a task, in
// ascending order.
func (a *Allocation) Winners() []PhoneID {
	var w []PhoneID
	for i, k := range a.ByPhone {
		if k != NoTask {
			w = append(w, PhoneID(i))
		}
	}
	return w
}

// NumServed returns the number of tasks that received a phone.
func (a *Allocation) NumServed() int {
	n := 0
	for _, p := range a.ByTask {
		if p != NoPhone {
			n++
		}
	}
	return n
}

// Assignments returns the explicit assignment list, ordered by task ID.
func (a *Allocation) Assignments() []Assignment {
	out := make([]Assignment, 0, len(a.ByTask))
	for k, p := range a.ByTask {
		if p != NoPhone {
			out = append(out, Assignment{Task: TaskID(k), Phone: p, Slot: a.WonAt[p]})
		}
	}
	return out
}

// Welfare returns the social welfare of the allocation for the given
// instance, Σ (ν − b_i) over served tasks (Definition 3), computed on the
// claimed costs in the instance's bids. When bids are truthful this equals
// the paper's real-cost social welfare.
func (a *Allocation) Welfare(in *Instance) float64 {
	var w float64
	for _, p := range a.ByTask {
		if p != NoPhone {
			w += in.Value - in.Bids[p].Cost
		}
	}
	return w
}

// Validate checks the allocation against the instance's feasibility
// constraints: consistency of the two index maps, window containment
// (constraint (6)), and one-task-per-phone (constraint (5)).
func (a *Allocation) Validate(in *Instance) error {
	if len(a.ByTask) != in.NumTasks() || len(a.ByPhone) != in.NumPhones() {
		return errors.New("allocation: size mismatch with instance")
	}
	for k, p := range a.ByTask {
		if p == NoPhone {
			continue
		}
		if int(p) >= len(a.ByPhone) {
			return fmt.Errorf("allocation: task %d assigned to unknown phone %d", k, p)
		}
		if a.ByPhone[p] != TaskID(k) {
			return fmt.Errorf("allocation: task %d -> phone %d but phone %d -> task %d", k, p, p, a.ByPhone[p])
		}
		arrive := in.Tasks[k].Arrival
		if a.WonAt[p] != arrive {
			return fmt.Errorf("allocation: task %d served in slot %d, arrives in slot %d", k, a.WonAt[p], arrive)
		}
		if !in.Bids[p].Covers(arrive) {
			return fmt.Errorf("allocation: phone %d serves slot %d outside window [%d,%d]",
				p, arrive, in.Bids[p].Arrival, in.Bids[p].Departure)
		}
	}
	for i, k := range a.ByPhone {
		if k == NoTask {
			continue
		}
		if int(k) >= len(a.ByTask) || a.ByTask[k] != PhoneID(i) {
			return fmt.Errorf("allocation: phone %d -> task %d not mirrored", i, k)
		}
	}
	return nil
}

// Outcome is the complete result of running a mechanism on an instance:
// the allocation, the per-phone payments, and summary metrics.
type Outcome struct {
	Allocation *Allocation
	// Payments maps PhoneID -> payment. Losers are paid 0.
	Payments []float64
	// Welfare is Σ (ν − b_i) over served tasks, on claimed costs.
	Welfare float64
}

// TotalPayment returns the sum of all payments made by the platform.
func (o *Outcome) TotalPayment() float64 {
	var s float64
	for _, p := range o.Payments {
		s += p
	}
	return s
}

// TotalWinnerCost returns Σ b_i over winning bids.
func (o *Outcome) TotalWinnerCost(in *Instance) float64 {
	var s float64
	for _, i := range o.Allocation.Winners() {
		s += in.Bids[i].Cost
	}
	return s
}

// OverpaymentRatio returns σ = Σ(p_i − c_i) / Σ c_i over winners
// (Definition 11), computed against the costs in the given bids (pass the
// truthful instance to measure against real costs). It returns 0 when no
// phone won or total winner cost is zero.
func (o *Outcome) OverpaymentRatio(in *Instance) float64 {
	var pay, cost float64
	for _, i := range o.Allocation.Winners() {
		pay += o.Payments[i]
		cost += in.Bids[i].Cost
	}
	if cost == 0 {
		return 0
	}
	return (pay - cost) / cost
}

// Utility returns phone i's utility under this outcome given its real cost:
// payment − realCost if it won, else 0 (Definition 1).
func (o *Outcome) Utility(i PhoneID, realCost float64) float64 {
	if o.Allocation.ByPhone[i] == NoTask {
		return 0
	}
	return o.Payments[i] - realCost
}

// Mechanism is a complete auction mechanism: an allocation rule plus a
// payment rule, executed on one round.
type Mechanism interface {
	// Name returns a short identifier ("offline-vcg", "online-greedy", ...).
	Name() string
	// Run executes the mechanism on the instance and returns the outcome.
	// The instance is not modified.
	Run(in *Instance) (*Outcome, error)
}

// sortBidsByCost sorts phone IDs by (claimed cost, phone ID) ascending.
// The deterministic ID tiebreak keeps mechanism runs reproducible.
func sortBidsByCost(in *Instance, ids []PhoneID) {
	sort.Slice(ids, func(x, y int) bool {
		bx, by := in.Bids[ids[x]], in.Bids[ids[y]]
		if bx.Cost != by.Cost {
			return bx.Cost < by.Cost
		}
		return ids[x] < ids[y]
	})
}
