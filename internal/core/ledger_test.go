package core

import (
	"errors"
	"math"
	"testing"
)

// TestValidateInvertedWindowTyped is the regression test for the typed
// inverted-window rejection: Validate must report ã > d̃ as
// ErrWindowInverted (matchable with errors.Is) rather than folding it
// into the generic out-of-range message, at every admission surface.
func TestValidateInvertedWindowTyped(t *testing.T) {
	bad := Bid{Phone: 0, Arrival: 4, Departure: 2, Cost: 1}
	err := bad.Validate(10)
	if !errors.Is(err, ErrWindowInverted) {
		t.Fatalf("Validate: got %v, want ErrWindowInverted", err)
	}

	// Instance validation surfaces the same typed error.
	in := &Instance{Slots: 10, Value: 30, Bids: []Bid{bad}}
	if err := in.Validate(); !errors.Is(err, ErrWindowInverted) {
		t.Fatalf("Instance.Validate: got %v, want ErrWindowInverted", err)
	}

	// Ledger admission rejects and does not admit.
	l, err := NewLedger(10, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddBid(4, StreamBid{Departure: 2, Cost: 1}); !errors.Is(err, ErrWindowInverted) {
		t.Fatalf("Ledger.AddBid: got %v, want ErrWindowInverted", err)
	}
	if l.NumPhones() != 0 {
		t.Fatalf("rejected bid admitted: %d phones", l.NumPhones())
	}

	// A window that is merely out of range keeps the generic error.
	outside := Bid{Phone: 0, Arrival: 2, Departure: 99, Cost: 1}
	if err := outside.Validate(10); err == nil || errors.Is(err, ErrWindowInverted) {
		t.Fatalf("out-of-range window misclassified: %v", err)
	}
}

func TestNewLedgerValidation(t *testing.T) {
	if _, err := NewLedger(0, 30, false); err == nil {
		t.Fatal("want error for zero slots")
	}
	if _, err := NewLedger(5, -1, false); err == nil {
		t.Fatal("want error for negative value")
	}
}

// TestLedgerMirrorsOnlineAuction rebuilds an OnlineAuction round
// decision-by-decision through the Ledger API and checks that the
// Pricer prices every winner to the same floats — the contract the
// sharded engine is built on.
func TestLedgerMirrorsOnlineAuction(t *testing.T) {
	in := &Instance{
		Slots: 6, Value: 30,
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 3, Cost: 5},
			{Phone: 1, Arrival: 1, Departure: 6, Cost: 12},
			{Phone: 2, Arrival: 2, Departure: 4, Cost: 5},  // ties phone 0's cost
			{Phone: 3, Arrival: 2, Departure: 2, Cost: 40}, // reserve-priced
			{Phone: 4, Arrival: 3, Departure: 6, Cost: 8},
			{Phone: 5, Arrival: 4, Departure: 6, Cost: 29},
		},
		Tasks: []Task{
			{ID: 0, Arrival: 1},
			{ID: 1, Arrival: 2},
			{ID: 2, Arrival: 2},
			{ID: 3, Arrival: 4},
			{ID: 4, Arrival: 5},
		},
	}
	byArrival := make([][]StreamBid, in.Slots+1)
	for _, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], StreamBid{Departure: b.Departure, Cost: b.Cost})
	}
	perSlot := in.TasksPerSlot()

	oa, err := NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the sequential engine through the Ledger: a single global
	// heap plays the allocator, the Ledger records its decisions.
	var h costHeap
	for s := Slot(1); s <= in.Slots; s++ {
		for _, sb := range byArrival[s] {
			id, err := l.AddBid(s, sb)
			if err != nil {
				t.Fatal(err)
			}
			if l.AllocateAtLoss() || sb.Cost < l.Value() {
				h.bids = l.Bids() // refresh the view after growth
				h.push(id)
			}
		}
		h.bids = l.Bids()
		for k := 0; k < perSlot[s-1]; k++ {
			id := l.AddTask(s)
			winner := h.popEligible(s)
			if winner == NoPhone {
				l.RecordUnserved(s)
				continue
			}
			l.RecordWin(id, winner, h.peekEligible(s), s)
		}
		if _, err := oa.Step(byArrival[s], perSlot[s-1]); err != nil {
			t.Fatal(err)
		}
	}

	for _, engine := range []PaymentEngine{CascadePayments, OraclePayments} {
		oa.SetPaymentEngine(engine)
		want := oa.Outcome()
		got := l.Outcome(l.NewPricer(engine, nil))
		for k := range want.Allocation.ByTask {
			if want.Allocation.ByTask[k] != got.Allocation.ByTask[k] {
				t.Fatalf("%s: task %d winner %d != %d", engine.Name(), k, got.Allocation.ByTask[k], want.Allocation.ByTask[k])
			}
		}
		for i := range want.Payments {
			if math.Float64bits(want.Payments[i]) != math.Float64bits(got.Payments[i]) {
				t.Fatalf("%s: phone %d payment %v != %v", engine.Name(), i, got.Payments[i], want.Payments[i])
			}
		}
		if want.Welfare != got.Welfare {
			t.Fatalf("%s: welfare %v != %v", engine.Name(), got.Welfare, want.Welfare)
		}
	}

	// Bulk accessors feed snapshots; they must match the live state.
	byTask, wonAt := l.ByTask(), l.WonAtSlots()
	for k := range byTask {
		if byTask[k] != l.TaskWinner(TaskID(k)) {
			t.Fatalf("ByTask[%d] = %d != %d", k, byTask[k], l.TaskWinner(TaskID(k)))
		}
	}
	for i := range wonAt {
		if wonAt[i] != l.WonAt(PhoneID(i)) {
			t.Fatalf("WonAtSlots[%d] = %d != %d", i, wonAt[i], l.WonAt(PhoneID(i)))
		}
	}
}
