package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestOnlineName(t *testing.T) {
	if got := (&OnlineMechanism{}).Name(); got != "online-greedy" {
		t.Fatalf("Name = %q", got)
	}
}

func TestOnlineRejectsInvalidInstance(t *testing.T) {
	in := paperInstance()
	in.Tasks[0].Arrival = 0
	if _, err := (&OnlineMechanism{}).Run(in); err == nil {
		t.Fatal("want validation error")
	}
}

// TestPaperFig4 replays the paper's Fig. 4 walkthrough exactly:
// greedy winners are phones 2,1,7,6,4 (1-based) in slots 1..5.
func TestPaperFig4(t *testing.T) {
	in := paperInstance()
	out := mustRun(t, &OnlineMechanism{}, in)

	// 1-based paper phones -> 0-based ids.
	wantWinners := []PhoneID{1, 0, 6, 5, 3}
	for k, want := range wantWinners {
		if got := out.Allocation.ByTask[k]; got != want {
			t.Fatalf("slot %d task went to phone %d, want %d (paper phone %d)", k+1, got, want, want+1)
		}
	}
	if got := out.Allocation.WonAt[6]; got != 3 {
		t.Fatalf("paper phone 7 won at slot %d, want 3", got)
	}
}

// TestPaperPaymentExample replays Section V-C's worked payment: phone 1
// (id 0) wins in slot 2; without it the tasks in slots 2..5 go to phones
// 5,7,6,4 with costs 4,6,8,9, so its payment is 9.
func TestPaperPaymentExample(t *testing.T) {
	in := paperInstance()
	out := mustRun(t, &OnlineMechanism{}, in)
	if got := out.Payments[0]; got != 9 {
		t.Fatalf("payment to paper phone 1 = %g, want 9", got)
	}
}

// TestOnlinePaymentsAreCriticalValues: bidding just below the computed
// payment still wins; bidding just above loses. This is the definition of
// the critical value (Definition 9) and the heart of Theorem 4.
func TestOnlinePaymentsAreCriticalValues(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	on := &OnlineMechanism{}
	const eps = 1e-6
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 8, 8, 6, 50)
		out := mustRun(t, on, in)
		for _, i := range out.Allocation.Winners() {
			p := out.Payments[i]

			below := in.Clone()
			below.Bids[i].Cost = p - eps
			if below.Bids[i].Cost < 0 {
				continue
			}
			outBelow := mustRun(t, on, below)
			if outBelow.Allocation.ByPhone[i] == NoTask {
				t.Fatalf("trial %d: phone %d bidding %g (just below critical %g) lost", trial, i, below.Bids[i].Cost, p)
			}

			above := in.Clone()
			above.Bids[i].Cost = p + eps
			outAbove := mustRun(t, on, above)
			if outAbove.Allocation.ByPhone[i] != NoTask {
				t.Fatalf("trial %d: phone %d bidding %g (just above critical %g) still won", trial, i, above.Bids[i].Cost, p)
			}
		}
	}
}

// TestOnlineMonotonicity (Definition 10): a winner still wins with a
// lower cost or a wider window.
func TestOnlineMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	on := &OnlineMechanism{}
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 8, 8, 6, 50)
		out := mustRun(t, on, in)
		for _, i := range out.Allocation.Winners() {
			alt := in.Clone()
			b := &alt.Bids[i]
			if b.Arrival > 1 && rng.Intn(2) == 0 {
				b.Arrival--
			}
			if b.Departure < alt.Slots && rng.Intn(2) == 0 {
				b.Departure++
			}
			b.Cost *= rng.Float64()
			outAlt := mustRun(t, on, alt)
			if outAlt.Allocation.ByPhone[i] == NoTask {
				t.Fatalf("trial %d: winner %d lost after improving its bid (%+v -> %+v)",
					trial, i, in.Bids[i], alt.Bids[i])
			}
		}
	}
}

// TestOnlineIndividualRationality (Theorem 5).
func TestOnlineIndividualRationality(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	on := &OnlineMechanism{}
	for trial := 0; trial < 80; trial++ {
		in := randomInstance(rng, 10, 10, 8, 40)
		out := mustRun(t, on, in)
		for i := range in.Bids {
			if u := out.Utility(PhoneID(i), in.Bids[i].Cost); u < -1e-9 {
				t.Fatalf("trial %d: phone %d negative utility %g", trial, i, u)
			}
		}
	}
}

// TestOnlineCompetitiveRatio (Theorem 6): online welfare ≥ 1/2 of the
// offline optimum on every random instance tried.
func TestOnlineCompetitiveRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	on := &OnlineMechanism{}
	of := &OfflineMechanism{}
	for trial := 0; trial < 150; trial++ {
		in := randomInstance(rng, 12, 12, 8, 50)
		outOn := mustRun(t, on, in)
		optimal, err := of.Welfare(in)
		if err != nil {
			t.Fatal(err)
		}
		if outOn.Welfare < optimal/2-1e-9 {
			t.Fatalf("trial %d: online welfare %g < half of optimum %g\ninstance %+v", trial, outOn.Welfare, optimal, in)
		}
		if outOn.Welfare > optimal+1e-9 {
			t.Fatalf("trial %d: online welfare %g exceeds optimum %g", trial, outOn.Welfare, optimal)
		}
	}
}

// TestOnlineGreedyPicksCheapest: within one slot the cheapest active
// phones win.
func TestOnlineGreedyPicksCheapest(t *testing.T) {
	in := &Instance{
		Slots: 1, Value: 100,
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 1, Cost: 30},
			{Phone: 1, Arrival: 1, Departure: 1, Cost: 10},
			{Phone: 2, Arrival: 1, Departure: 1, Cost: 20},
		},
		Tasks: []Task{{ID: 0, Arrival: 1}, {ID: 1, Arrival: 1}},
	}
	out := mustRun(t, &OnlineMechanism{}, in)
	if out.Allocation.ByPhone[1] == NoTask || out.Allocation.ByPhone[2] == NoTask {
		t.Fatalf("cheapest two phones should win: %v", out.Allocation.ByPhone)
	}
	if out.Allocation.ByPhone[0] != NoTask {
		t.Fatal("most expensive phone should lose")
	}
	// Critical value for both winners is phone 0's cost (the bid that
	// would replace them).
	if out.Payments[1] != 30 || out.Payments[2] != 30 {
		t.Fatalf("payments = %v, want 30 for both winners", out.Payments)
	}
}

// TestOnlineReservePrice: without AllocateAtLoss, a phone bidding ≥ ν
// never wins and a sole winner's payment is capped at ν.
func TestOnlineReservePrice(t *testing.T) {
	in := &Instance{
		Slots: 1, Value: 10,
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 1, Cost: 4},
			{Phone: 1, Arrival: 1, Departure: 1, Cost: 12},
		},
		Tasks: []Task{{ID: 0, Arrival: 1}, {ID: 1, Arrival: 1}},
	}
	out := mustRun(t, &OnlineMechanism{}, in)
	if out.Allocation.ByPhone[1] != NoTask {
		t.Fatal("phone above reserve won")
	}
	if out.Allocation.ByPhone[0] == NoTask {
		t.Fatal("profitable phone lost")
	}
	// Without phone 0, its task is unserved, so the critical value is ν.
	if out.Payments[0] != 10 {
		t.Fatalf("payment = %g, want reserve 10", out.Payments[0])
	}
}

// TestOnlineAllocateAtLoss: with the paper's implicit all-tasks-allocated
// behaviour enabled, expensive phones do win.
func TestOnlineAllocateAtLoss(t *testing.T) {
	in := &Instance{
		Slots: 1, Value: 10, AllocateAtLoss: true,
		Bids:  []Bid{{Phone: 0, Arrival: 1, Departure: 1, Cost: 12}},
		Tasks: []Task{{ID: 0, Arrival: 1}},
	}
	out := mustRun(t, &OnlineMechanism{}, in)
	if out.Allocation.ByPhone[0] == NoTask {
		t.Fatal("phone should win when allocating at a loss")
	}
	// Scarcity cap: paid max(ν, b) = 12 so IR still holds.
	if out.Payments[0] != 12 {
		t.Fatalf("payment = %g, want 12", out.Payments[0])
	}
}

// TestOnlineDepartureRespected: a phone is not allocated after its
// reported departure even if it is the cheapest ever seen.
func TestOnlineDepartureRespected(t *testing.T) {
	in := &Instance{
		Slots: 2, Value: 100,
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 1, Cost: 1},
			{Phone: 1, Arrival: 1, Departure: 2, Cost: 50},
		},
		// No task in slot 1; one task in slot 2.
		Tasks: []Task{{ID: 0, Arrival: 2}},
	}
	out := mustRun(t, &OnlineMechanism{}, in)
	if got := out.Allocation.ByTask[0]; got != 1 {
		t.Fatalf("task went to phone %d, want 1 (phone 0 departed)", got)
	}
}

// TestOnlineWelfareConsistency: reported welfare equals recomputed.
func TestOnlineWelfareConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	on := &OnlineMechanism{}
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 10, 10, 8, 40)
		out := mustRun(t, on, in)
		if math.Abs(out.Welfare-out.Allocation.Welfare(in)) > 1e-9 {
			t.Fatalf("trial %d: welfare mismatch", trial)
		}
	}
}

// TestOnlineTimeTruthfulness: reporting a narrower window (later arrival
// or earlier departure — the only feasible time misreports) never raises
// utility. This is the paper's key novelty over cost-only auctions.
func TestOnlineTimeTruthfulness(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	on := &OnlineMechanism{}
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 8, 8, 6, 50)
		truthful := mustRun(t, on, in)
		for i := range in.Bids {
			trueBid := in.Bids[i]
			uTruth := truthful.Utility(PhoneID(i), trueBid.Cost)
			for a := trueBid.Arrival; a <= trueBid.Departure; a++ {
				for d := a; d <= trueBid.Departure; d++ {
					if a == trueBid.Arrival && d == trueBid.Departure {
						continue
					}
					alt := in.Clone()
					alt.Bids[i].Arrival = a
					alt.Bids[i].Departure = d
					outAlt := mustRun(t, on, alt)
					if u := outAlt.Utility(PhoneID(i), trueBid.Cost); u > uTruth+1e-9 {
						t.Fatalf("trial %d: phone %d gains %g > %g by reporting window [%d,%d] instead of [%d,%d]",
							trial, i, u, uTruth, a, d, trueBid.Arrival, trueBid.Departure)
					}
				}
			}
		}
	}
}

// TestOnlineCostTruthfulness: misreporting the cost never raises utility.
func TestOnlineCostTruthfulness(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	on := &OnlineMechanism{}
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 8, 8, 6, 50)
		truthful := mustRun(t, on, in)
		for i := range in.Bids {
			trueCost := in.Bids[i].Cost
			uTruth := truthful.Utility(PhoneID(i), trueCost)
			for _, factor := range []float64{0, 0.25, 0.5, 0.8, 0.95, 1.05, 1.3, 2, 5} {
				alt := in.Clone()
				alt.Bids[i].Cost = trueCost * factor
				outAlt := mustRun(t, on, alt)
				if u := outAlt.Utility(PhoneID(i), trueCost); u > uTruth+1e-9 {
					t.Fatalf("trial %d: phone %d gains %g > %g by claiming cost %g (real %g)",
						trial, i, u, uTruth, alt.Bids[i].Cost, trueCost)
				}
			}
		}
	}
}
