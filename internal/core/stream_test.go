package core

import (
	"math"
	"math/rand"
	"testing"
)

// replayStream drives an OnlineAuction through a batch instance,
// delivering each bid in its arrival slot. Stream PhoneIDs are assigned
// in delivery order, which may differ from the instance's numbering; the
// returned perm maps stream ID -> original PhoneID. (Greedy tiebreaks use
// IDs, so equivalence tests rely on instances with distinct costs.)
func replayStream(t *testing.T, in *Instance) (*OnlineAuction, []*SlotResult, []PhoneID) {
	t.Helper()
	oa, err := NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
	if err != nil {
		t.Fatal(err)
	}
	byArrival := make([][]int, in.Slots+1)
	for i, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], i)
	}
	perSlot := in.TasksPerSlot()
	var results []*SlotResult
	var perm []PhoneID
	for s := Slot(1); s <= in.Slots; s++ {
		var arriving []StreamBid
		for _, i := range byArrival[s] {
			arriving = append(arriving, StreamBid{Departure: in.Bids[i].Departure, Cost: in.Bids[i].Cost})
			perm = append(perm, PhoneID(i))
		}
		res, err := oa.Step(arriving, perSlot[s-1])
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		results = append(results, res)
	}
	return oa, results, perm
}

func TestNewOnlineAuctionValidation(t *testing.T) {
	if _, err := NewOnlineAuction(0, 10, false); err == nil {
		t.Fatal("want error for zero slots")
	}
	if _, err := NewOnlineAuction(5, -1, false); err == nil {
		t.Fatal("want error for negative value")
	}
}

func TestOnlineAuctionStepErrors(t *testing.T) {
	oa, err := NewOnlineAuction(1, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oa.Step(nil, -1); err == nil {
		t.Fatal("want error for negative task count")
	}
	// A failed Step must not consume the slot or register state.
	if oa.Now() != 0 {
		t.Fatalf("failed Step advanced the clock to %d", oa.Now())
	}
	for !oa.Done() {
		if _, err := oa.Step(nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := oa.Step(nil, 0); err == nil {
		t.Fatal("want error stepping past the round end")
	}
	if _, err := oa.Step([]StreamBid{{Departure: 99, Cost: 1}}, 0); err == nil {
		t.Fatal("want error for bid departing after round end")
	}
}

func TestOnlineAuctionRejectsBadBid(t *testing.T) {
	oa, _ := NewOnlineAuction(5, 10, false)
	if _, err := oa.Step([]StreamBid{{Departure: 3, Cost: -1}}, 0); err == nil {
		t.Fatal("want error for negative cost")
	}
}

// TestStreamMatchesBatchPaper: the streaming driver reproduces the batch
// online outcome on the paper instance, including payment timing.
func TestStreamMatchesBatchPaper(t *testing.T) {
	in := paperInstance()
	batch := mustRun(t, &OnlineMechanism{}, in)
	oa, results, perm := replayStream(t, in)

	streamOut := oa.Outcome()
	if math.Abs(streamOut.Welfare-batch.Welfare) > 1e-9 {
		t.Fatalf("stream welfare %g != batch %g", streamOut.Welfare, batch.Welfare)
	}
	for sid := range streamOut.Payments {
		orig := perm[sid]
		if math.Abs(streamOut.Payments[sid]-batch.Payments[orig]) > 1e-9 {
			t.Fatalf("payment[stream %d = phone %d]: stream %g != batch %g",
				sid, orig, streamOut.Payments[sid], batch.Payments[orig])
		}
	}

	// Payments must be issued exactly in each winner's departure slot.
	paid := make(map[PhoneID]Slot) // keyed by original PhoneID
	for _, res := range results {
		for _, p := range res.Payments {
			paid[perm[p.Phone]] = res.Slot
		}
	}
	for _, i := range batch.Allocation.Winners() {
		if paid[i] != in.Bids[i].Departure {
			t.Fatalf("phone %d paid in slot %d, want departure slot %d", i, paid[i], in.Bids[i].Departure)
		}
	}
}

// TestStreamMatchesBatchRandom: full equivalence on random instances.
func TestStreamMatchesBatchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	on := &OnlineMechanism{}
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 12, 12, 8, 50)
		in.AllocateAtLoss = trial%3 == 0
		batch := mustRun(t, on, in)
		oa, _, _ := replayStream(t, in)
		stream := oa.Outcome()

		if math.Abs(stream.Welfare-batch.Welfare) > 1e-9 {
			t.Fatalf("trial %d: welfare %g != %g", trial, stream.Welfare, batch.Welfare)
		}
		for i := range batch.Payments {
			if math.Abs(stream.Payments[i]-batch.Payments[i]) > 1e-9 {
				t.Fatalf("trial %d: payment[%d] %g != %g", trial, i, stream.Payments[i], batch.Payments[i])
			}
		}
		for k := range batch.Allocation.ByTask {
			if stream.Allocation.ByTask[k] != batch.Allocation.ByTask[k] {
				t.Fatalf("trial %d: task %d assigned to %d (stream) vs %d (batch)",
					trial, k, stream.Allocation.ByTask[k], batch.Allocation.ByTask[k])
			}
		}
	}
}

// TestStreamPaymentTotalsMatchOutcome: the sum of PaymentNotices over the
// round equals the outcome's winner payments.
func TestStreamPaymentTotalsMatchOutcome(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng, 10, 10, 8, 50)
		oa, results, _ := replayStream(t, in)
		var noticed float64
		for _, res := range results {
			for _, p := range res.Payments {
				noticed += p.Amount
			}
		}
		if out := oa.Outcome(); math.Abs(noticed-out.TotalPayment()) > 1e-9 {
			t.Fatalf("trial %d: notices %g != outcome total %g", trial, noticed, out.TotalPayment())
		}
	}
}

// TestStreamInstanceSnapshot: the accumulated instance round-trips
// through the batch mechanism to the same outcome.
func TestStreamInstanceSnapshot(t *testing.T) {
	in := paperInstance()
	oa, _, _ := replayStream(t, in)
	snap := oa.Instance()
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	if len(snap.Bids) != len(in.Bids) || len(snap.Tasks) != len(in.Tasks) {
		t.Fatalf("snapshot sizes %d/%d, want %d/%d", len(snap.Bids), len(snap.Tasks), len(in.Bids), len(in.Tasks))
	}
	batch := mustRun(t, &OnlineMechanism{}, snap)
	if batch.Welfare != oa.Outcome().Welfare {
		t.Fatal("snapshot does not reproduce the stream outcome")
	}
}

// TestStreamJoinedIDsDense: stream-assigned IDs are dense and ordered.
func TestStreamJoinedIDsDense(t *testing.T) {
	oa, _ := NewOnlineAuction(3, 10, false)
	res, err := oa.Step([]StreamBid{{Departure: 2, Cost: 1}, {Departure: 3, Cost: 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Joined) != 2 || res.Joined[0] != 0 || res.Joined[1] != 1 {
		t.Fatalf("Joined = %v, want [0 1]", res.Joined)
	}
	res2, err := oa.Step([]StreamBid{{Departure: 3, Cost: 3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Joined) != 1 || res2.Joined[0] != 2 {
		t.Fatalf("Joined = %v, want [2]", res2.Joined)
	}
}

// TestStreamUnservedReported: tasks with no available phone are counted.
func TestStreamUnservedReported(t *testing.T) {
	oa, _ := NewOnlineAuction(2, 10, false)
	res, err := oa.Step(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unserved != 2 {
		t.Fatalf("Unserved = %d, want 2", res.Unserved)
	}
}
