package core

import (
	"fmt"
	"time"
)

// StreamBid is a bid submitted by a phone joining in the current slot.
// Its claimed arrival is implicitly the current slot, so the no-early-
// arrival constraint is enforced structurally rather than by trust.
type StreamBid struct {
	Departure Slot    // d̃: claimed last active slot
	Cost      float64 // b: claimed per-task cost
}

// PaymentNotice is a finalized payment to a departing winner. Payments
// are executed in the winner's reported departure slot, as the paper
// specifies (late payment is what removes the incentive to misreport an
// early departure).
type PaymentNotice struct {
	Phone  PhoneID
	Amount float64
}

// SlotResult reports everything the online auction did in one slot.
type SlotResult struct {
	Slot        Slot
	Joined      []PhoneID // IDs assigned to this slot's arriving bids, in input order
	Assignments []Assignment
	Unserved    int // tasks that arrived this slot and found no phone
	Payments    []PaymentNotice
	// Departed lists every phone whose reported departure is this slot
	// (winners and losers alike). Only populated when departure
	// tracking is enabled (TrackDepartures); the platform's tracer
	// uses it to emit departure events.
	Departed []PhoneID
}

// OnlineAuction drives the online mechanism slot by slot, the way the
// real platform experiences a round: phones join and submit bids in their
// arrival slot, tasks are announced per slot, winners are determined
// immediately, and payments are finalized at each winner's reported
// departure slot. A completed OnlineAuction yields the same allocation
// and payments as OnlineMechanism.Run on the equivalent batch instance.
//
// The auction retains the incremental pricing state of the greedy run
// (per-task runner-ups, per-slot winner-cost tables), so a departure is
// priced by a cascade walk over that state instead of re-simulating the
// round from a snapshot — the platform's per-slot hot path stays
// O(window + cascade) per departing winner.
type OnlineAuction struct {
	slots          Slot
	value          float64
	allocateAtLoss bool
	engine         PaymentEngine

	now   Slot // last processed slot (0 before the first Step)
	bids  []Bid
	tasks []Task

	metrics         *Metrics // nil disables instrumentation
	trackDepartures bool

	heap costHeap
	run  greedyRun   // winners plus retained cascade pricing state
	comp completions // assignment lifecycle (off by default)

	inst Instance     // reusable pricing view over bids/tasks
	q    paymentQuery // reusable pricing scratch
}

// NewOnlineAuction creates a round of m slots with per-task value ν.
func NewOnlineAuction(m Slot, value float64, allocateAtLoss bool) (*OnlineAuction, error) {
	if m < 1 {
		return nil, fmt.Errorf("online auction: round length %d < 1", m)
	}
	if value < 0 {
		return nil, fmt.Errorf("online auction: negative task value %g", value)
	}
	oa := &OnlineAuction{slots: m, value: value, allocateAtLoss: allocateAtLoss, engine: CascadePayments}
	oa.run.resetSlots(m)
	return oa, nil
}

// SetPaymentEngine selects how winners are priced. The default
// CascadePayments prices from the retained incremental state;
// OraclePayments and ParallelPayments replay Algorithm 2 against the
// accumulated instance. All engines yield identical payments, so the
// engine may be switched between steps.
func (oa *OnlineAuction) SetPaymentEngine(e PaymentEngine) {
	if e == nil {
		e = CascadePayments
	}
	oa.engine = e
}

// SetMetrics instruments the auction's Step hot path (slot-allocation
// and payment latency histograms, engine invocation counters). Nil
// (the default) disables instrumentation at zero cost. Set before the
// first Step; the auction is not safe for concurrent use anyway.
func (oa *OnlineAuction) SetMetrics(m *Metrics) { oa.metrics = m }

// TrackDepartures makes Step populate SlotResult.Departed with every
// phone whose reported departure is the processed slot. Off by default:
// the extra appends are only worth paying when a tracer consumes them.
func (oa *OnlineAuction) TrackDepartures(on bool) { oa.trackDepartures = on }

// TrackCompletions toggles the assignment lifecycle (see completion.go):
// when on, every assignment must be resolved via Complete or Default,
// defaulted winners are paid nothing, and their tasks are re-allocated
// in place. Enable before the first Step; enabling mid-round adopts
// current winners as assigned, but winners already paid before enabling
// carry no recorded payment to claw back. Off by default, at zero cost
// to the hot path.
func (oa *OnlineAuction) TrackCompletions(on bool) {
	oa.comp.enabled = on
	if !on {
		return
	}
	oa.comp.grow(len(oa.bids))
	for i, task := range oa.run.phoneTask {
		if task != NoTask && oa.comp.status[i] == StatusNone {
			oa.comp.status[i] = StatusAssigned
		}
	}
}

// Complete marks phone p's assignment as delivered. It returns
// ErrAlreadyCompleted for a duplicate report, ErrNotAssigned when p has
// no live assignment, and ErrNotTracking when the lifecycle is off.
func (oa *OnlineAuction) Complete(p PhoneID) error { return oa.comp.complete(p) }

// Default marks phone p's assignment as failed: p is paid nothing (any
// issued payment is reported as a clawback), and its task is re-allocated
// to the next-cheapest eligible phone, which is priced at its own
// critical value under the post-default state. Errors mirror Complete.
func (oa *OnlineAuction) Default(p PhoneID) (*DefaultResult, error) {
	if !oa.comp.enabled {
		return nil, ErrNotTracking
	}
	q := oa.pricer()
	return defaultWinner(q.in, &oa.run, &oa.comp, p, oa.now, func(r PhoneID) float64 {
		return oa.engine.price(q, r)
	})
}

// Completion returns phone p's lifecycle view (zero value while
// tracking is off or for unknown phones).
func (oa *OnlineAuction) Completion(p PhoneID) CompletionState {
	return oa.comp.state(&oa.run, p)
}

// CompletionCounts returns aggregate lifecycle outcomes.
func (oa *OnlineAuction) CompletionCounts() CompletionCounts { return oa.comp.counts }

// Now returns the last processed slot (0 before the first Step).
func (oa *OnlineAuction) Now() Slot { return oa.now }

// Done reports whether all m slots have been processed.
func (oa *OnlineAuction) Done() bool { return oa.now >= oa.slots }

// Step advances the auction one slot: the given bids join (their claimed
// arrival is the new slot), numTasks tasks are announced and greedily
// allocated, and payments are finalized for winners whose reported
// departure is the new slot.
func (oa *OnlineAuction) Step(arriving []StreamBid, numTasks int) (*SlotResult, error) {
	if oa.Done() {
		return nil, fmt.Errorf("online auction: round already complete (%d slots)", oa.slots)
	}
	if numTasks < 0 {
		return nil, fmt.Errorf("online auction: negative task count %d", numTasks)
	}
	t := oa.now + 1
	for k, sb := range arriving {
		probe := Bid{Phone: PhoneID(len(oa.bids) + k), Arrival: t, Departure: sb.Departure, Cost: sb.Cost}
		if err := probe.Validate(oa.slots); err != nil {
			return nil, fmt.Errorf("online auction: %w", err)
		}
	}
	oa.now = t
	res := &SlotResult{Slot: t}
	var start time.Time
	if oa.metrics != nil {
		start = time.Now()
	}

	for _, sb := range arriving {
		id := PhoneID(len(oa.bids))
		bid := Bid{Phone: id, Arrival: t, Departure: sb.Departure, Cost: sb.Cost}
		oa.bids = append(oa.bids, bid)
		oa.run.wonAt = append(oa.run.wonAt, 0)
		oa.run.phoneTask = append(oa.run.phoneTask, NoTask)
		res.Joined = append(res.Joined, id)
		// Reserve price: bids that can never yield positive welfare are
		// recorded (they may still depart, and auditors may inspect them)
		// but never enter the allocation pool.
		if oa.allocateAtLoss || sb.Cost < oa.value {
			oa.heap.bids = oa.bids
			oa.heap.push(id)
		}
	}
	oa.heap.bids = oa.bids
	oa.comp.grow(len(oa.bids))

	for k := 0; k < numTasks; k++ {
		id := TaskID(len(oa.tasks))
		oa.tasks = append(oa.tasks, Task{ID: id, Arrival: t})
		oa.run.byTask = append(oa.run.byTask, NoPhone)
		oa.run.runnerUp = append(oa.run.runnerUp, NoPhone)
		winner := oa.popUsable(t)
		if winner == NoPhone {
			oa.run.unserved[t]++
			res.Unserved++
			continue
		}
		oa.run.byTask[id] = winner
		oa.run.phoneTask[winner] = id
		oa.run.wonAt[winner] = t
		oa.run.noteWinner(t, winner, oa.bids[winner].Cost)
		oa.comp.markAssigned(winner)
		oa.run.runnerUp[id] = oa.peekUsable(t)
		res.Assignments = append(res.Assignments, Assignment{Task: id, Phone: winner, Slot: t})
	}

	if oa.metrics != nil {
		oa.metrics.SlotAllocSeconds.Observe(time.Since(start).Seconds())
		start = time.Now()
	}

	// Finalize payments for winners departing this slot, priced from the
	// retained incremental state. The cascade only looks at slots ≤ t,
	// and every bid or task that will arrive later is invisible to those
	// slots, so paying now equals paying at end of round.
	q := oa.pricer()
	for i := range oa.bids {
		if oa.bids[i].Departure != t {
			continue
		}
		if oa.trackDepartures {
			res.Departed = append(res.Departed, PhoneID(i))
		}
		if oa.run.wonAt[i] == 0 || !oa.comp.payable(PhoneID(i)) {
			continue
		}
		amount := oa.engine.price(q, PhoneID(i))
		oa.comp.markPaid(PhoneID(i), amount, t)
		res.Payments = append(res.Payments, PaymentNotice{Phone: PhoneID(i), Amount: amount})
	}
	if oa.metrics != nil {
		oa.metrics.PaymentSeconds.Observe(time.Since(start).Seconds())
	}
	return res, nil
}

// popUsable pops the cheapest phone eligible in slot t that can still
// take a task. The lifecycle adds two terminal skip conditions on top
// of the heap's departed-phone lazy deletion: re-allocated winners
// (drafted by a default while still pooled) and defaulted phones.
// Both are permanent, so discarding is safe; with tracking off neither
// triggers and the path is unchanged.
func (oa *OnlineAuction) popUsable(t Slot) PhoneID {
	for {
		p := oa.heap.popEligible(t)
		if p == NoPhone || (oa.run.phoneTask[p] == NoTask && !oa.comp.blocked(p)) {
			return p
		}
	}
}

// peekUsable reports the phone popUsable would return next, discarding
// unusable entries but leaving the survivor in place.
func (oa *OnlineAuction) peekUsable(t Slot) PhoneID {
	for {
		p := oa.heap.peekEligible(t)
		if p == NoPhone || (oa.run.phoneTask[p] == NoTask && !oa.comp.blocked(p)) {
			return p
		}
		oa.heap.pop()
	}
}

// pricer refreshes the reusable payment query over the current state.
// The arrivals index (only the oracle engines need one) is invalidated
// so it is rebuilt at most once per pricing batch.
func (oa *OnlineAuction) pricer() *paymentQuery {
	oa.inst = Instance{
		Slots:          oa.slots,
		Value:          oa.value,
		Bids:           oa.bids,
		Tasks:          oa.tasks,
		AllocateAtLoss: oa.allocateAtLoss,
	}
	oa.q.in, oa.q.run, oa.q.idx, oa.q.m = &oa.inst, &oa.run, nil, oa.metrics
	return &oa.q
}

// instance materializes the bids and tasks seen so far as an Instance.
func (oa *OnlineAuction) instance() *Instance {
	return &Instance{
		Slots:          oa.slots,
		Value:          oa.value,
		Bids:           oa.bids,
		Tasks:          oa.tasks,
		AllocateAtLoss: oa.allocateAtLoss,
	}
}

// Outcome assembles the full round outcome. It is valid once Done()
// (earlier calls return the partial state: allocations so far, payments
// recomputed for all current winners).
func (oa *OnlineAuction) Outcome() *Outcome {
	in := oa.instance()
	alloc := NewAllocation(len(oa.tasks), len(oa.bids))
	for k, p := range oa.run.byTask {
		if p != NoPhone {
			alloc.Assign(TaskID(k), p, oa.tasks[k].Arrival)
		}
	}
	out := &Outcome{
		Allocation: alloc,
		Payments:   make([]float64, len(oa.bids)),
		Welfare:    alloc.Welfare(in),
	}
	q := oa.pricer()
	for i, task := range oa.run.phoneTask {
		if task == NoTask {
			continue
		}
		// An executed payment is final: later defaults in overlapping
		// slots may shift the recomputed cascade value, but the amount
		// actually issued at departure is what the outcome owes.
		if amount, ok := oa.comp.settled(PhoneID(i)); ok {
			out.Payments[i] = amount
			continue
		}
		out.Payments[i] = oa.engine.price(q, PhoneID(i))
	}
	return out
}

// Instance returns a copy of the bids and tasks accumulated so far,
// e.g. to compare the online outcome against the offline optimum.
func (oa *OnlineAuction) Instance() *Instance { return oa.instance().Clone() }
