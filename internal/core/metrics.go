package core

import (
	"sync/atomic"

	"dynacrowd/internal/obs"
)

// Metrics bundles the instruments the mechanism hot paths report into.
// A nil *Metrics disables all instrumentation at zero cost: counter
// updates go through nil-safe obs instruments, and the latency timers
// (the only part that costs anything — time.Now) are gated on a nil
// check. Create one with NewMetrics; the metric catalog is documented
// in docs/OBSERVABILITY.md.
type Metrics struct {
	// SlotAllocSeconds times one greedy allocation unit: a streaming
	// Step's allocation phase, or a batch run's full baseline pass.
	SlotAllocSeconds *obs.Histogram
	// PaymentSeconds times one critical-value pricing batch: a Step's
	// departing-winner payments, or a batch run's priceAll.
	PaymentSeconds *obs.Histogram
	// CascadeCalls / OracleCalls count per-winner payment computations
	// by engine (ParallelPayments re-runs count as oracle, labeled
	// "parallel").
	CascadeCalls  *obs.Counter
	OracleCalls   *obs.Counter
	ParallelCalls *obs.Counter
}

// NewMetrics registers the core auction instruments in reg and returns
// the bundle. Registration is idempotent, so auctions sharing a
// registry (e.g. consecutive platform rounds) share counters. A nil
// registry returns nil, the disabled path.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		SlotAllocSeconds: reg.Histogram("dynacrowd_core_slot_alloc_seconds",
			"Latency of one greedy allocation unit: a streaming slot's allocation phase or a batch baseline pass.",
			obs.LatencyBuckets),
		PaymentSeconds: reg.Histogram("dynacrowd_core_payment_seconds",
			"Latency of one critical-value pricing batch (departing winners of a slot, or a full round's priceAll).",
			obs.LatencyBuckets),
		CascadeCalls: reg.Counter("dynacrowd_core_engine_invocations_total",
			"Per-winner critical-value payment computations by engine.",
			"engine", "cascade"),
		OracleCalls: reg.Counter("dynacrowd_core_engine_invocations_total",
			"Per-winner critical-value payment computations by engine.",
			"engine", "oracle"),
		ParallelCalls: reg.Counter("dynacrowd_core_engine_invocations_total",
			"Per-winner critical-value payment computations by engine.",
			"engine", "parallel"),
	}
	reg.CounterFunc("dynacrowd_core_scratch_pool_gets_total",
		"Pooled mechanism scratch checkouts (OnlineMechanism.Run invocations).",
		func() float64 { return float64(scratchPoolGets.Load()) })
	reg.CounterFunc("dynacrowd_core_scratch_pool_misses_total",
		"Scratch checkouts that had to allocate a fresh working set (pool cold or under concurrent pressure).",
		func() float64 { return float64(scratchPoolMisses.Load()) })
	return m
}

// noteCascade/noteOracle/noteParallel are the nil-safe engine-counter
// hooks the payment engines call per priced winner.
func (m *Metrics) noteCascade() {
	if m != nil {
		m.CascadeCalls.Inc()
	}
}

func (m *Metrics) noteOracle() {
	if m != nil {
		m.OracleCalls.Inc()
	}
}

func (m *Metrics) noteParallel(n int) {
	if m != nil {
		m.ParallelCalls.Add(uint64(n))
	}
}

// scratchPoolGets / scratchPoolMisses tally mechPool traffic process-
// wide. They are plain atomics (not registry instruments) because the
// pool is package-global: the counters are always maintained, and
// NewMetrics bridges them into any registry via CounterFunc without
// double accounting.
var (
	scratchPoolGets   atomic.Uint64
	scratchPoolMisses atomic.Uint64
)

// defaultMetrics instruments OnlineMechanism values that have no
// explicit Metrics field set — the process-wide hook commands use when
// mechanisms are constructed deep inside sweeps.
var defaultMetrics atomic.Pointer[Metrics]

// SetDefaultMetrics installs the process-wide default instrument bundle
// used by OnlineMechanism.Run when the mechanism's Metrics field is
// nil. Pass nil to disable. Typically called once at startup (it is
// safe, but pointless, to call concurrently with running mechanisms).
func SetDefaultMetrics(m *Metrics) { defaultMetrics.Store(m) }
