package core_test

import (
	"fmt"

	"dynacrowd/internal/core"
)

// The paper's Fig. 4 instance: seven phones with private windows and
// costs, five slots, one task per slot, each task worth ν = 20.
func fig4() *core.Instance {
	windows := [][2]core.Slot{{2, 5}, {1, 4}, {3, 5}, {4, 5}, {2, 2}, {3, 5}, {1, 3}}
	costs := []float64{3, 5, 11, 9, 4, 8, 6}
	in := &core.Instance{Slots: 5, Value: 20}
	for i := range windows {
		in.Bids = append(in.Bids, core.Bid{
			Phone: core.PhoneID(i), Arrival: windows[i][0], Departure: windows[i][1], Cost: costs[i],
		})
	}
	for k := 0; k < 5; k++ {
		in.Tasks = append(in.Tasks, core.Task{ID: core.TaskID(k), Arrival: core.Slot(k + 1)})
	}
	return in
}

// ExampleOnlineMechanism_Run reproduces the paper's Section V
// walkthrough: greedy winners 2,1,7,6,4 (paper numbering) and phone 1's
// critical payment of 9.
func ExampleOnlineMechanism_Run() {
	out, err := (&core.OnlineMechanism{}).Run(fig4())
	if err != nil {
		panic(err)
	}
	for k, phone := range out.Allocation.ByTask {
		fmt.Printf("slot %d -> paper phone %d\n", k+1, phone+1)
	}
	fmt.Printf("paper phone 1 is paid %.0f\n", out.Payments[0])
	// Output:
	// slot 1 -> paper phone 2
	// slot 2 -> paper phone 1
	// slot 3 -> paper phone 7
	// slot 4 -> paper phone 6
	// slot 5 -> paper phone 4
	// paper phone 1 is paid 9
}

// ExampleOfflineMechanism_Run shows the clairvoyant optimum on the same
// instance: it reshuffles assignments (phone 5 serves slot 2, freeing
// phone 1 for slot 4) and gains 5 welfare over the online run.
func ExampleOfflineMechanism_Run() {
	in := fig4()
	online, _ := (&core.OnlineMechanism{}).Run(in)
	offline, _ := (&core.OfflineMechanism{}).Run(in)
	fmt.Printf("online welfare  %.0f\n", online.Welfare)
	fmt.Printf("offline welfare %.0f\n", offline.Welfare)
	// Output:
	// online welfare  69
	// offline welfare 74
}

// ExampleOnlineAuction drives the online mechanism the way a live
// platform does: slot by slot, with payments finalized at departures.
func ExampleOnlineAuction() {
	auction, _ := core.NewOnlineAuction(2, 10, false)

	// Slot 1: two phones join, one task arrives; the cheaper phone wins.
	res, _ := auction.Step([]core.StreamBid{
		{Departure: 1, Cost: 3},
		{Departure: 2, Cost: 7},
	}, 1)
	fmt.Printf("slot 1: task -> phone %d\n", res.Assignments[0].Phone)
	// The winner departs after slot 1, so it is paid immediately — the
	// critical value is its rival's claimed cost.
	fmt.Printf("slot 1: phone %d paid %.0f\n", res.Payments[0].Phone, res.Payments[0].Amount)

	res, _ = auction.Step(nil, 1)
	fmt.Printf("slot 2: task -> phone %d\n", res.Assignments[0].Phone)
	// Output:
	// slot 1: task -> phone 0
	// slot 1: phone 0 paid 7
	// slot 2: task -> phone 1
}
