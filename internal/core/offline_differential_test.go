package core

import (
	"math"
	"math/rand"
	"testing"
)

// randomOfflineInstance draws one differential-test instance. Variants
// stress the regimes the fast engine's tie-breaking and interval logic
// must survive: 0 = mixed uniform windows/costs (some above ν), 1 =
// tie-heavy integer costs on a tiny grid, 2 = degenerate single-slot
// windows with task pile-ups, 3 = dense full-round windows with scarce
// tasks.
func randomOfflineInstance(rng *rand.Rand, variant int) *Instance {
	m := Slot(2 + rng.Intn(9))
	switch variant % 4 {
	case 0:
		return randomInstance(rng, 18, 18, m, 10)
	case 1:
		in := &Instance{Slots: m, Value: 6}
		n := 1 + rng.Intn(14)
		for i := 0; i < n; i++ {
			a := Slot(1 + rng.Intn(int(m)))
			d := a + Slot(rng.Intn(int(m-a)+1))
			in.Bids = append(in.Bids, Bid{
				Phone: PhoneID(i), Arrival: a, Departure: d,
				Cost: float64(1 + rng.Intn(5)), // ties everywhere, some ≥ ν
			})
		}
		sortBidsByArrival(in)
		addSortedTasks(in, rng, rng.Intn(12))
		return in
	case 2:
		in := &Instance{Slots: m, Value: 8}
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			a := Slot(1 + rng.Intn(int(m)))
			in.Bids = append(in.Bids, Bid{
				Phone: PhoneID(i), Arrival: a, Departure: a, // one-slot windows
				Cost: 1 + rng.Float64()*9,
			})
		}
		sortBidsByArrival(in)
		// Pile the tasks onto few slots so capacities contend.
		numTasks := rng.Intn(10)
		hot := Slot(1 + rng.Intn(int(m)))
		arr := make([]int, numTasks)
		for k := range arr {
			if rng.Intn(2) == 0 {
				arr[k] = int(hot)
			} else {
				arr[k] = 1 + rng.Intn(int(m))
			}
		}
		insertTasks(in, arr)
		return in
	default:
		in := &Instance{Slots: m, Value: 12}
		n := 1 + rng.Intn(16)
		for i := 0; i < n; i++ {
			in.Bids = append(in.Bids, Bid{
				Phone: PhoneID(i), Arrival: 1, Departure: m, // full-round windows
				Cost: rng.Float64() * 14,
			})
		}
		addSortedTasks(in, rng, rng.Intn(6))
		return in
	}
}

func sortBidsByArrival(in *Instance) {
	b := in.Bids
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j].Arrival < b[j-1].Arrival; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
	for i := range b {
		b[i].Phone = PhoneID(i)
	}
}

func addSortedTasks(in *Instance, rng *rand.Rand, numTasks int) {
	arr := make([]int, numTasks)
	for k := range arr {
		arr[k] = 1 + rng.Intn(int(in.Slots))
	}
	insertTasks(in, arr)
}

func insertTasks(in *Instance, arr []int) {
	for i := 1; i < len(arr); i++ {
		for j := i; j > 0 && arr[j] < arr[j-1]; j-- {
			arr[j], arr[j-1] = arr[j-1], arr[j]
		}
	}
	for k, a := range arr {
		in.Tasks = append(in.Tasks, Task{ID: TaskID(k), Arrival: Slot(a)})
	}
}

// assertOfflineAgreement checks two offline outcomes for the VCG
// agreement contract: equal optimal welfare, each allocation's realized
// value equal to its reported welfare, and payment agreement that is
// robust to tie-breaking. When both engines allocate phone i its
// payments must match exactly; when only one does, the other optimum
// excludes i, so ω*(B₋ᵢ) = ω*(B) and the VCG payment must equal i's own
// bid; losers in both are paid zero. Individual rationality (p_i ≥ b_i)
// is asserted for every winner.
func assertOfflineAgreement(t *testing.T, tag string, in *Instance, nameA, nameB string, a, b *Outcome) {
	t.Helper()
	const eps = 1e-9
	if math.Abs(a.Welfare-b.Welfare) > eps {
		t.Fatalf("%s: welfare %s=%g %s=%g", tag, nameA, a.Welfare, nameB, b.Welfare)
	}
	if v := a.Allocation.Welfare(in); math.Abs(v-a.Welfare) > eps {
		t.Fatalf("%s: %s allocation value %g != reported welfare %g", tag, nameA, v, a.Welfare)
	}
	if v := b.Allocation.Welfare(in); math.Abs(v-b.Welfare) > eps {
		t.Fatalf("%s: %s allocation value %g != reported welfare %g", tag, nameB, v, b.Welfare)
	}
	if err := a.Allocation.Validate(in); err != nil {
		t.Fatalf("%s: %s allocation invalid: %v", tag, nameA, err)
	}
	if err := b.Allocation.Validate(in); err != nil {
		t.Fatalf("%s: %s allocation invalid: %v", tag, nameB, err)
	}
	for i := range in.Bids {
		pa, pb := a.Payments[i], b.Payments[i]
		aw := a.Allocation.ByPhone[i] != NoTask
		bw := b.Allocation.ByPhone[i] != NoTask
		switch {
		case aw && bw:
			if math.Abs(pa-pb) > eps {
				t.Fatalf("%s: phone %d paid %s=%g %s=%g (bid %+v)", tag, i, nameA, pa, nameB, pb, in.Bids[i])
			}
		case aw != bw:
			// The engines picked different optima, so an optimum without
			// phone i exists: ω*(B₋ᵢ) = ω*(B) and VCG pays exactly the bid.
			p := pa
			if bw {
				p = pb
			}
			if math.Abs(p-in.Bids[i].Cost) > eps {
				t.Fatalf("%s: optional winner %d paid %g, want its bid %g", tag, i, p, in.Bids[i].Cost)
			}
		default:
			if pa != 0 || pb != 0 {
				t.Fatalf("%s: loser %d paid %s=%g %s=%g", tag, i, nameA, pa, nameB, pb)
			}
		}
		if aw && pa < in.Bids[i].Cost-eps {
			t.Fatalf("%s: %s violates IR for phone %d: paid %g < bid %g", tag, nameA, i, pa, in.Bids[i].Cost)
		}
		if bw && pb < in.Bids[i].Cost-eps {
			t.Fatalf("%s: %s violates IR for phone %d: paid %g < bid %g", tag, nameB, i, pb, in.Bids[i].Cost)
		}
	}
}

// TestOfflineDifferentialSweep is the offline analog of the online
// engines' 208-round sweep: 240 seeded instances across mixed-density,
// tie-heavy, and degenerate-window regimes, asserting the fast interval
// engine against the Hungarian+VCG oracle on every one (and the generic
// flow/ssp re-solve engines on a rotating subset). `make check` greps
// for this test's PASS line, so it must never be skipped or renamed
// without updating the Makefile gate.
func TestOfflineDifferentialSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	fast := &OfflineMechanism{} // interval engine, the default
	oracle := &OfflineMechanism{Engine: HungarianOffline}
	flow := &OfflineMechanism{Engine: FlowOffline}
	ssp := &OfflineMechanism{Engine: SSPOffline}

	for trial := 0; trial < 240; trial++ {
		in := randomOfflineInstance(rng, trial)
		tag := itoaTrial(trial)
		fastOut := mustRun(t, fast, in)
		oracleOut := mustRun(t, oracle, in)
		assertOfflineAgreement(t, tag, in, "interval", "hungarian", fastOut, oracleOut)
		switch trial % 4 {
		case 0:
			assertOfflineAgreement(t, tag, in, "interval", "flow", fastOut, mustRun(t, flow, in))
		case 2:
			assertOfflineAgreement(t, tag, in, "interval", "ssp", fastOut, mustRun(t, ssp, in))
		}
		// Welfare() must agree with Run() for the default engine.
		w, err := fast.Welfare(in)
		if err != nil {
			t.Fatalf("%s: welfare: %v", tag, err)
		}
		if math.Abs(w-fastOut.Welfare) > 1e-9 {
			t.Fatalf("%s: Welfare()=%g, Run().Welfare=%g", tag, w, fastOut.Welfare)
		}
	}
}

func itoaTrial(n int) string {
	if n == 0 {
		return "trial 0"
	}
	buf := [8]byte{}
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return "trial " + string(buf[i:])
}

// FuzzOfflineVCG cross-checks the fast engine against the Hungarian+VCG
// oracle — welfare, allocation value, payments, and the IR identity
// p_i ≥ b_i — on arbitrary seeded instances. Run short via
// `make fuzz-smoke`.
func FuzzOfflineVCG(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed, uint8(seed))
	}
	fast := &OfflineMechanism{}
	oracle := &OfflineMechanism{Engine: HungarianOffline}
	f.Fuzz(func(t *testing.T, seed int64, variant uint8) {
		rng := rand.New(rand.NewSource(seed))
		in := randomOfflineInstance(rng, int(variant))
		fastOut, err := fast.Run(in)
		if err != nil {
			t.Fatalf("interval: %v", err)
		}
		oracleOut, err := oracle.Run(in)
		if err != nil {
			t.Fatalf("hungarian: %v", err)
		}
		assertOfflineAgreement(t, "fuzz", in, "interval", "hungarian", fastOut, oracleOut)
	})
}
