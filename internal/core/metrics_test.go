package core

import (
	"testing"

	"dynacrowd/internal/obs"
)

// TestRunInstrumentation: an instrumented batch run observes both
// latency phases and counts one cascade invocation per winner.
func TestRunInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	in := &Instance{
		Slots: 3, Value: 10,
		Bids: []Bid{
			{Phone: 0, Arrival: 1, Departure: 2, Cost: 3},
			{Phone: 1, Arrival: 1, Departure: 3, Cost: 4},
			{Phone: 2, Arrival: 2, Departure: 3, Cost: 5},
		},
		Tasks: []Task{{ID: 0, Arrival: 1}, {ID: 1, Arrival: 2}},
	}
	mech := &OnlineMechanism{Metrics: m}
	out, err := mech.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	winners := len(out.Allocation.Winners())
	if winners == 0 {
		t.Fatal("test instance produced no winners")
	}
	if got := m.CascadeCalls.Value(); got != uint64(winners) {
		t.Fatalf("cascade invocations = %d, want %d (one per winner)", got, winners)
	}
	if m.SlotAllocSeconds.Count() != 1 || m.PaymentSeconds.Count() != 1 {
		t.Fatalf("latency observations alloc=%d payment=%d, want 1 each",
			m.SlotAllocSeconds.Count(), m.PaymentSeconds.Count())
	}
	// The oracle engine books under its own label.
	oracle := &OnlineMechanism{Payments: OraclePayments, Metrics: m}
	if _, err := oracle.Run(in); err != nil {
		t.Fatal(err)
	}
	if got := m.OracleCalls.Value(); got != uint64(winners) {
		t.Fatalf("oracle invocations = %d, want %d", got, winners)
	}
}

// TestStreamingInstrumentationAndDepartures: SetMetrics times every
// Step, and TrackDepartures reports departing losers and winners alike.
func TestStreamingInstrumentationAndDepartures(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	oa, err := NewOnlineAuction(3, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	oa.SetMetrics(m)
	oa.TrackDepartures(true)

	// Slot 1: two bids arrive, one task — phone 0 (cheaper) wins.
	res, err := oa.Step([]StreamBid{{Departure: 1, Cost: 2}, {Departure: 2, Cost: 5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Phone 0 wins and departs in slot 1.
	if len(res.Departed) != 1 || res.Departed[0] != 0 {
		t.Fatalf("slot 1 departed = %v, want [0]", res.Departed)
	}
	if len(res.Payments) != 1 {
		t.Fatalf("slot 1 payments = %v", res.Payments)
	}
	// Slot 2: no tasks; phone 1 departs without having won.
	res, err = oa.Step(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Departed) != 1 || res.Departed[0] != 1 {
		t.Fatalf("slot 2 departed = %v, want the losing phone [1]", res.Departed)
	}
	if len(res.Payments) != 0 {
		t.Fatalf("loser was paid: %v", res.Payments)
	}
	if got := m.SlotAllocSeconds.Count(); got != 2 {
		t.Fatalf("alloc latency observations = %d, want 2 (one per Step)", got)
	}
	// Untracked auctions must not pay for the Departed list.
	oa2, _ := NewOnlineAuction(3, 10, false)
	res, err = oa2.Step([]StreamBid{{Departure: 1, Cost: 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed != nil {
		t.Fatalf("departure tracking on by default: %v", res.Departed)
	}
}

// TestDefaultMetricsFallback: SetDefaultMetrics instruments mechanisms
// with no explicit Metrics field.
func TestDefaultMetricsFallback(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	SetDefaultMetrics(m)
	defer SetDefaultMetrics(nil)
	in := &Instance{
		Slots: 2, Value: 10,
		Bids:  []Bid{{Phone: 0, Arrival: 1, Departure: 2, Cost: 3}},
		Tasks: []Task{{ID: 0, Arrival: 1}},
	}
	if _, err := (&OnlineMechanism{}).Run(in); err != nil {
		t.Fatal(err)
	}
	if m.CascadeCalls.Value() == 0 {
		t.Fatal("default metrics not picked up by Run")
	}
}
