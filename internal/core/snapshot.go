package core

import (
	"encoding/json"
	"fmt"
)

// snapshotVersion guards the checkpoint format.
const snapshotVersion = 1

// auctionSnapshot is the serialized state of an OnlineAuction. Only
// decision-relevant state is stored; the allocation pool is rebuilt on
// restore (the greedy heap pops by (cost, id) with deterministic
// tiebreaks, so pop order — and therefore every future decision — is
// independent of the heap's internal layout).
type auctionSnapshot struct {
	Version        int       `json:"version"`
	Slots          Slot      `json:"slots"`
	Value          float64   `json:"value"`
	AllocateAtLoss bool      `json:"allocateAtLoss,omitempty"`
	Now            Slot      `json:"now"`
	Bids           []Bid     `json:"bids"`
	TaskArrivals   []Slot    `json:"taskArrivals"`
	ByTask         []PhoneID `json:"byTask"`
	WonAt          []Slot    `json:"wonAt"`
}

// Snapshot serializes the auction's full state so a platform can
// checkpoint mid-round and resume after a crash. The snapshot is
// self-contained JSON; restore with RestoreOnlineAuction.
func (oa *OnlineAuction) Snapshot() ([]byte, error) {
	snap := auctionSnapshot{
		Version:        snapshotVersion,
		Slots:          oa.slots,
		Value:          oa.value,
		AllocateAtLoss: oa.allocateAtLoss,
		Now:            oa.now,
		Bids:           oa.bids,
		ByTask:         oa.byTask,
		WonAt:          oa.wonAt,
	}
	for _, t := range oa.tasks {
		snap.TaskArrivals = append(snap.TaskArrivals, t.Arrival)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("auction snapshot: %w", err)
	}
	return data, nil
}

// RestoreOnlineAuction reconstructs an auction from a Snapshot. The
// restored auction continues the round exactly as the original would
// have: identical future allocations and payments for identical future
// input.
func RestoreOnlineAuction(data []byte) (*OnlineAuction, error) {
	var snap auctionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("restore auction: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("restore auction: unsupported version %d (want %d)", snap.Version, snapshotVersion)
	}
	oa, err := NewOnlineAuction(snap.Slots, snap.Value, snap.AllocateAtLoss)
	if err != nil {
		return nil, fmt.Errorf("restore auction: %w", err)
	}
	if snap.Now < 0 || snap.Now > snap.Slots {
		return nil, fmt.Errorf("restore auction: clock %d outside round [0,%d]", snap.Now, snap.Slots)
	}
	if len(snap.WonAt) != len(snap.Bids) || len(snap.ByTask) != len(snap.TaskArrivals) {
		return nil, fmt.Errorf("restore auction: inconsistent state sizes")
	}
	oa.now = snap.Now
	oa.bids = snap.Bids
	oa.wonAt = snap.WonAt
	oa.byTask = snap.ByTask
	for i, b := range snap.Bids {
		if b.Phone != PhoneID(i) {
			return nil, fmt.Errorf("restore auction: bid %d has phone id %d", i, b.Phone)
		}
		if err := b.Validate(snap.Slots); err != nil {
			return nil, fmt.Errorf("restore auction: %w", err)
		}
		if b.Arrival > snap.Now {
			return nil, fmt.Errorf("restore auction: bid %d arrives at %d, after clock %d", i, b.Arrival, snap.Now)
		}
	}
	var prev Slot
	for k, arrival := range snap.TaskArrivals {
		if arrival < 1 || arrival > snap.Now {
			return nil, fmt.Errorf("restore auction: task %d arrival %d outside [1,%d]", k, arrival, snap.Now)
		}
		if arrival < prev {
			return nil, fmt.Errorf("restore auction: task %d out of arrival order", k)
		}
		prev = arrival
		oa.tasks = append(oa.tasks, Task{ID: TaskID(k), Arrival: arrival})
	}
	for k, p := range snap.ByTask {
		if p == NoPhone {
			continue
		}
		if int(p) >= len(snap.Bids) {
			return nil, fmt.Errorf("restore auction: task %d assigned to unknown phone %d", k, p)
		}
		if snap.WonAt[p] != snap.TaskArrivals[k] {
			return nil, fmt.Errorf("restore auction: task %d slot %d disagrees with winner slot %d",
				k, snap.TaskArrivals[k], snap.WonAt[p])
		}
	}

	// Rebuild the allocation pool: every phone that has not won, has not
	// passed its departure, and clears the reserve re-enters the heap.
	// Phones the original auction lazily discarded re-enter too; they
	// are re-discarded on their first pop, which leaves behaviour
	// unchanged.
	oa.heap.bids = oa.bids
	for i, b := range oa.bids {
		switch {
		case oa.wonAt[i] != 0: // already allocated
		case b.Departure <= snap.Now: // departed
		case !oa.allocateAtLoss && b.Cost >= oa.value: // priced out by the reserve
		default:
			oa.heap.push(PhoneID(i))
		}
	}
	return oa, nil
}
