package core

import (
	"encoding/json"
	"fmt"
)

// snapshotVersion guards the checkpoint format.
const snapshotVersion = 1

// auctionSnapshot is the serialized state of an OnlineAuction. Only
// decision-relevant state is stored; the allocation pool and the
// incremental pricing state (runner-ups, per-slot winner-cost tables)
// are rebuilt on restore by replaying the greedy allocation, which is
// deterministic: the heap pops by (cost, id), so the replay reproduces
// every past decision exactly and the stored assignment doubles as an
// integrity check.
type auctionSnapshot struct {
	Version        int       `json:"version"`
	Slots          Slot      `json:"slots"`
	Value          float64   `json:"value"`
	AllocateAtLoss bool      `json:"allocateAtLoss,omitempty"`
	Now            Slot      `json:"now"`
	Bids           []Bid     `json:"bids"`
	TaskArrivals   []Slot    `json:"taskArrivals"`
	ByTask         []PhoneID `json:"byTask"`
	WonAt          []Slot    `json:"wonAt"`
}

// Snapshot serializes the auction's full state so a platform can
// checkpoint mid-round and resume after a crash. The snapshot is
// self-contained JSON; restore with RestoreOnlineAuction.
func (oa *OnlineAuction) Snapshot() ([]byte, error) {
	snap := auctionSnapshot{
		Version:        snapshotVersion,
		Slots:          oa.slots,
		Value:          oa.value,
		AllocateAtLoss: oa.allocateAtLoss,
		Now:            oa.now,
		Bids:           oa.bids,
		ByTask:         oa.run.byTask,
		WonAt:          oa.run.wonAt,
	}
	for _, t := range oa.tasks {
		snap.TaskArrivals = append(snap.TaskArrivals, t.Arrival)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("auction snapshot: %w", err)
	}
	return data, nil
}

// RestoreOnlineAuction reconstructs an auction from a Snapshot. The
// restored auction continues the round exactly as the original would
// have: identical future allocations and payments for identical future
// input.
func RestoreOnlineAuction(data []byte) (*OnlineAuction, error) {
	var snap auctionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("restore auction: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("restore auction: unsupported version %d (want %d)", snap.Version, snapshotVersion)
	}
	oa, err := NewOnlineAuction(snap.Slots, snap.Value, snap.AllocateAtLoss)
	if err != nil {
		return nil, fmt.Errorf("restore auction: %w", err)
	}
	if snap.Now < 0 || snap.Now > snap.Slots {
		return nil, fmt.Errorf("restore auction: clock %d outside round [0,%d]", snap.Now, snap.Slots)
	}
	if len(snap.WonAt) != len(snap.Bids) || len(snap.ByTask) != len(snap.TaskArrivals) {
		return nil, fmt.Errorf("restore auction: inconsistent state sizes")
	}
	oa.now = snap.Now
	oa.bids = snap.Bids
	for i, b := range snap.Bids {
		if b.Phone != PhoneID(i) {
			return nil, fmt.Errorf("restore auction: bid %d has phone id %d", i, b.Phone)
		}
		if err := b.Validate(snap.Slots); err != nil {
			return nil, fmt.Errorf("restore auction: %w", err)
		}
		if b.Arrival > snap.Now {
			return nil, fmt.Errorf("restore auction: bid %d arrives at %d, after clock %d", i, b.Arrival, snap.Now)
		}
	}
	var prev Slot
	for k, arrival := range snap.TaskArrivals {
		if arrival < 1 || arrival > snap.Now {
			return nil, fmt.Errorf("restore auction: task %d arrival %d outside [1,%d]", k, arrival, snap.Now)
		}
		if arrival < prev {
			return nil, fmt.Errorf("restore auction: task %d out of arrival order", k)
		}
		prev = arrival
		oa.tasks = append(oa.tasks, Task{ID: TaskID(k), Arrival: arrival})
	}
	for k, p := range snap.ByTask {
		if p == NoPhone {
			continue
		}
		if p < 0 || int(p) >= len(snap.Bids) {
			return nil, fmt.Errorf("restore auction: task %d assigned to unknown phone %d", k, p)
		}
		if snap.WonAt[p] != snap.TaskArrivals[k] {
			return nil, fmt.Errorf("restore auction: task %d slot %d disagrees with winner slot %d",
				k, snap.TaskArrivals[k], snap.WonAt[p])
		}
	}

	// Replay the greedy allocation over the restored bids and tasks. This
	// rebuilds everything the snapshot does not carry — the live heap, the
	// per-task runner-ups, and the per-slot winner-cost tables the cascade
	// engine prices from — and reproduces the original pool exactly
	// (phones the original auction lazily discarded re-enter and are
	// re-discarded on their first pop, which leaves behaviour unchanged).
	in := oa.instance()
	var idx arrivalsIndex
	idx.build(in)
	oa.run.initRound(len(oa.bids), len(oa.tasks), oa.slots)
	oa.heap.bids = oa.bids
	oa.heap.items = runBaseline(in, &idx, &oa.run, nil, snap.Now)

	// The replayed assignment must agree with the stored one; a mismatch
	// means the snapshot was tampered with or produced by different code.
	for k, p := range snap.ByTask {
		if oa.run.byTask[k] != p {
			return nil, fmt.Errorf("restore auction: task %d assignment %d disagrees with replay %d",
				k, p, oa.run.byTask[k])
		}
	}
	for i, w := range snap.WonAt {
		if oa.run.wonAt[i] != w {
			return nil, fmt.Errorf("restore auction: phone %d winning slot %d disagrees with replay %d",
				i, w, oa.run.wonAt[i])
		}
	}
	return oa, nil
}
