package core

import (
	"encoding/json"
	"fmt"
)

// snapshotVersion guards the checkpoint format.
const snapshotVersion = 1

// auctionSnapshot is the serialized state of an OnlineAuction. Only
// decision-relevant state is stored; the allocation pool and the
// incremental pricing state (runner-ups, per-slot winner-cost tables)
// are rebuilt on restore by replaying the greedy allocation, which is
// deterministic: the heap pops by (cost, id), so the replay reproduces
// every past decision exactly and the stored assignment doubles as an
// integrity check.
type auctionSnapshot struct {
	Version        int       `json:"version"`
	Slots          Slot      `json:"slots"`
	Value          float64   `json:"value"`
	AllocateAtLoss bool      `json:"allocateAtLoss,omitempty"`
	Now            Slot      `json:"now"`
	Bids           []Bid     `json:"bids"`
	TaskArrivals   []Slot    `json:"taskArrivals"`
	ByTask         []PhoneID `json:"byTask"`
	WonAt          []Slot    `json:"wonAt"`
	// Completions carries the assignment lifecycle when tracking is on.
	// Its default log is replayed on restore interleaved with the greedy
	// slots (a default mutates the winner set and pricing tables at a
	// specific clock value), after which statuses and issued payments are
	// restored verbatim. Absent for pre-lifecycle snapshots, which keep
	// the fast replay path.
	Completions *CompletionSnapshot `json:"completions,omitempty"`
}

// Snapshot serializes the auction's full state so a platform can
// checkpoint mid-round and resume after a crash. The snapshot is
// self-contained JSON; restore with RestoreOnlineAuction.
func (oa *OnlineAuction) Snapshot() ([]byte, error) {
	snap := auctionSnapshot{
		Version:        snapshotVersion,
		Slots:          oa.slots,
		Value:          oa.value,
		AllocateAtLoss: oa.allocateAtLoss,
		Now:            oa.now,
		Bids:           oa.bids,
		ByTask:         oa.run.byTask,
		WonAt:          oa.run.wonAt,
		Completions:    oa.comp.marshal(),
	}
	for _, t := range oa.tasks {
		snap.TaskArrivals = append(snap.TaskArrivals, t.Arrival)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("auction snapshot: %w", err)
	}
	return data, nil
}

// RestoreOnlineAuction reconstructs an auction from a Snapshot. The
// restored auction continues the round exactly as the original would
// have: identical future allocations and payments for identical future
// input.
func RestoreOnlineAuction(data []byte) (*OnlineAuction, error) {
	var snap auctionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("restore auction: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("restore auction: unsupported version %d (want %d)", snap.Version, snapshotVersion)
	}
	oa, err := NewOnlineAuction(snap.Slots, snap.Value, snap.AllocateAtLoss)
	if err != nil {
		return nil, fmt.Errorf("restore auction: %w", err)
	}
	if snap.Now < 0 || snap.Now > snap.Slots {
		return nil, fmt.Errorf("restore auction: clock %d outside round [0,%d]", snap.Now, snap.Slots)
	}
	if len(snap.WonAt) != len(snap.Bids) || len(snap.ByTask) != len(snap.TaskArrivals) {
		return nil, fmt.Errorf("restore auction: inconsistent state sizes")
	}
	oa.now = snap.Now
	oa.bids = snap.Bids
	for i, b := range snap.Bids {
		if b.Phone != PhoneID(i) {
			return nil, fmt.Errorf("restore auction: bid %d has phone id %d", i, b.Phone)
		}
		if err := b.Validate(snap.Slots); err != nil {
			return nil, fmt.Errorf("restore auction: %w", err)
		}
		if b.Arrival > snap.Now {
			return nil, fmt.Errorf("restore auction: bid %d arrives at %d, after clock %d", i, b.Arrival, snap.Now)
		}
	}
	var prev Slot
	for k, arrival := range snap.TaskArrivals {
		if arrival < 1 || arrival > snap.Now {
			return nil, fmt.Errorf("restore auction: task %d arrival %d outside [1,%d]", k, arrival, snap.Now)
		}
		if arrival < prev {
			return nil, fmt.Errorf("restore auction: task %d out of arrival order", k)
		}
		prev = arrival
		oa.tasks = append(oa.tasks, Task{ID: TaskID(k), Arrival: arrival})
	}
	for k, p := range snap.ByTask {
		if p == NoPhone {
			continue
		}
		if p < 0 || int(p) >= len(snap.Bids) {
			return nil, fmt.Errorf("restore auction: task %d assigned to unknown phone %d", k, p)
		}
		if snap.WonAt[p] != snap.TaskArrivals[k] {
			return nil, fmt.Errorf("restore auction: task %d slot %d disagrees with winner slot %d",
				k, snap.TaskArrivals[k], snap.WonAt[p])
		}
	}

	if snap.Completions != nil && len(snap.Completions.Log) > 0 {
		// Defaults mutated the winner set and pricing tables at specific
		// clock values, so the flat greedy replay below cannot reproduce
		// the stored state. Re-run the round slot by slot through Step,
		// applying each logged default at the clock it happened.
		if err := oa.restageWithDefaults(snap.Completions.Log); err != nil {
			return nil, fmt.Errorf("restore auction: %w", err)
		}
	} else {
		// Replay the greedy allocation over the restored bids and tasks. This
		// rebuilds everything the snapshot does not carry — the live heap, the
		// per-task runner-ups, and the per-slot winner-cost tables the cascade
		// engine prices from — and reproduces the original pool exactly
		// (phones the original auction lazily discarded re-enter and are
		// re-discarded on their first pop, which leaves behaviour unchanged).
		in := oa.instance()
		var idx arrivalsIndex
		idx.build(in)
		oa.run.initRound(len(oa.bids), len(oa.tasks), oa.slots)
		oa.heap.bids = oa.bids
		oa.heap.items = runBaseline(in, &idx, &oa.run, nil, snap.Now)
	}

	// The replayed assignment must agree with the stored one; a mismatch
	// means the snapshot was tampered with or produced by different code.
	for k, p := range snap.ByTask {
		if oa.run.byTask[k] != p {
			return nil, fmt.Errorf("restore auction: task %d assignment %d disagrees with replay %d",
				k, p, oa.run.byTask[k])
		}
	}
	for i, w := range snap.WonAt {
		if oa.run.wonAt[i] != w {
			return nil, fmt.Errorf("restore auction: phone %d winning slot %d disagrees with replay %d",
				i, w, oa.run.wonAt[i])
		}
	}
	if snap.Completions != nil {
		// Statuses, issued payments, and counters restore verbatim; the
		// replay above only rebuilt the allocation-side mutations.
		if err := oa.comp.restoreFrom(snap.Completions, len(oa.bids)); err != nil {
			return nil, fmt.Errorf("restore auction: %w", err)
		}
	}
	return oa, nil
}

// restageWithDefaults rebuilds the allocation state by re-running the
// restored round through Step with completion tracking on, replaying
// each logged default at the auction clock it originally happened so
// the re-allocation scans see the same state they saw live.
func (oa *OnlineAuction) restageWithDefaults(log []CompletionEvent) error {
	re, err := NewOnlineAuction(oa.slots, oa.value, oa.allocateAtLoss)
	if err != nil {
		return err
	}
	re.TrackCompletions(true)
	bi, ti, li := 0, 0, 0
	var arriving []StreamBid
	for t := Slot(1); t <= oa.now; t++ {
		arriving = arriving[:0]
		for ; bi < len(oa.bids) && oa.bids[bi].Arrival == t; bi++ {
			arriving = append(arriving, StreamBid{Departure: oa.bids[bi].Departure, Cost: oa.bids[bi].Cost})
		}
		tasks := 0
		for ; ti < len(oa.tasks) && oa.tasks[ti].Arrival == t; ti++ {
			tasks++
		}
		if _, err := re.Step(arriving, tasks); err != nil {
			return err
		}
		for ; li < len(log) && log[li].Slot == t; li++ {
			if _, err := re.Default(log[li].Phone); err != nil {
				return fmt.Errorf("default log entry %d (phone %d at clock %d): %w", li, log[li].Phone, t, err)
			}
		}
	}
	if bi != len(oa.bids) {
		return fmt.Errorf("bids not in arrival order (replayed %d of %d)", bi, len(oa.bids))
	}
	if li != len(log) {
		return fmt.Errorf("default log not in clock order (replayed %d of %d)", li, len(log))
	}
	oa.heap = re.heap
	oa.run = re.run
	oa.comp = re.comp
	return nil
}
