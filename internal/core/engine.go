package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// PaymentEngine computes the online mechanism's critical-value payments
// (Algorithm 2) for the winners of a baseline greedy run. All engines
// produce bit-identical payments; they differ only in cost:
//
//   - CascadePayments derives every payment from the baseline run plus
//     per-task runner-up state in O(window + cascade) per winner — no
//     greedy re-runs. This is the default.
//   - OraclePayments is the literal Algorithm 2: one full greedy re-run
//     per winner. It is kept as the reference oracle the differential
//     and fuzz tests check the cascade engine against.
//   - ParallelPayments fans the oracle re-runs out over a worker pool —
//     a safety valve for large rounds where the incremental path is
//     disabled.
//
// Engines are stateless and safe for concurrent use; the per-call
// scratch lives in the paymentQuery each caller owns.
type PaymentEngine interface {
	// Name returns a short identifier ("cascade", "oracle", "parallel").
	Name() string
	// price returns winner i's critical payment.
	price(q *paymentQuery, i PhoneID) float64
	// priceAll fills pay[i] for every winner of the baseline run.
	priceAll(q *paymentQuery, pay []float64)
}

// The package-level engine instances. CascadePayments is the default
// used by OnlineMechanism and OnlineAuction when none is selected.
var (
	CascadePayments PaymentEngine = cascadeEngine{}
	OraclePayments  PaymentEngine = oracleEngine{}
)

// ParallelPayments returns an engine that prices winners with Algorithm 2
// re-runs fanned out over `workers` goroutines (≤ 0 selects GOMAXPROCS).
func ParallelPayments(workers int) PaymentEngine {
	return &parallelEngine{workers: workers}
}

// resize returns s with length n and every element zeroed, reusing the
// backing array when capacity allows.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// greedyRun is the outcome of one baseline greedy pass (Algorithm 1)
// plus the side state the cascade engine prices from: each task's
// runner-up at assignment time and per-slot winner-cost and unserved
// tables. Slot-indexed slices are 1-based with index 0 unused.
type greedyRun struct {
	byTask    []PhoneID // task -> winner (NoPhone if unserved)
	phoneTask []TaskID  // phone -> its won task (NoTask if it lost)
	wonAt     []Slot    // phone -> winning slot (0 if it lost)
	runnerUp  []PhoneID // task -> next-cheapest eligible phone when assigned

	unserved []int32   // slot -> tasks left unserved
	max1     []float64 // slot -> highest winner cost
	max1p    []PhoneID // slot -> phone holding max1 (NoPhone if none)
	max2     []float64 // slot -> second-highest winner cost
}

// resetSlots (re)sizes and clears the per-slot tables for an m-slot round.
func (g *greedyRun) resetSlots(m Slot) {
	n := int(m) + 1
	g.unserved = resize(g.unserved, n)
	g.max1 = resize(g.max1, n)
	g.max2 = resize(g.max2, n)
	g.max1p = resize(g.max1p, n)
	for i := range g.max1p {
		g.max1p[i] = NoPhone
	}
}

// initRound (re)sizes the per-phone and per-task state with sentinel
// entries, reusing capacity. Callers that alias these slices to an
// Allocation's arrays skip this and rely on NewAllocation's sentinels.
func (g *greedyRun) initRound(numPhones, numTasks int, m Slot) {
	g.byTask = resize(g.byTask, numTasks)
	for i := range g.byTask {
		g.byTask[i] = NoPhone
	}
	g.phoneTask = resize(g.phoneTask, numPhones)
	for i := range g.phoneTask {
		g.phoneTask[i] = NoTask
	}
	g.wonAt = resize(g.wonAt, numPhones)
	g.runnerUp = resize(g.runnerUp, numTasks)
	g.resetSlots(m)
}

// noteWinner updates slot t's top-2 winner-cost table with phone p's
// cost c. The ">=" keeps max2 correct when costs tie.
func (g *greedyRun) noteWinner(t Slot, p PhoneID, c float64) {
	if c >= g.max1[t] {
		g.max2[t] = g.max1[t]
		g.max1[t], g.max1p[t] = c, p
	} else if c > g.max2[t] {
		g.max2[t] = c
	}
}

// maxExcluding returns the highest winner cost in slot t when phone p's
// win there is discounted.
func (g *greedyRun) maxExcluding(t Slot, p PhoneID) float64 {
	if g.max1p[t] == p {
		return g.max2[t]
	}
	return g.max1[t]
}

// arrivalsIndex groups the phones admitted to the allocation pool by
// claimed arrival slot, CSR-style (one flat array plus offsets), with
// reserve-priced bids (cost ≥ ν, unless AllocateAtLoss) filtered out at
// build time. Built once per instance and shared read-only by every
// greedy pass — the baseline and all oracle re-runs.
type arrivalsIndex struct {
	start  []int32 // len m+2; slot t's phones are phones[start[t]:start[t+1]]
	phones []PhoneID
	cursor []int32 // build scratch
}

func (ix *arrivalsIndex) build(in *Instance) {
	m := int(in.Slots)
	ix.start = resize(ix.start, m+2)
	eligible := 0
	for _, b := range in.Bids {
		if !in.AllocateAtLoss && b.Cost >= in.Value {
			continue
		}
		ix.start[b.Arrival+1]++
		eligible++
	}
	for t := 1; t <= m+1; t++ {
		ix.start[t] += ix.start[t-1]
	}
	ix.phones = resize(ix.phones, eligible)
	ix.cursor = resize(ix.cursor, m+1)
	copy(ix.cursor, ix.start[:m+1])
	for i, b := range in.Bids {
		if !in.AllocateAtLoss && b.Cost >= in.Value {
			continue
		}
		ix.phones[ix.cursor[b.Arrival]] = PhoneID(i)
		ix.cursor[b.Arrival]++
	}
}

func (ix *arrivalsIndex) at(t Slot) []PhoneID {
	return ix.phones[ix.start[t]:ix.start[t+1]]
}

// runBaseline executes Algorithm 1 over slots [1, upTo], recording the
// winners plus the cascade side state. heapBuf is reused storage for
// the allocation pool; the (possibly grown) storage is returned so the
// caller can keep it — for the streaming auction it still holds the
// live pool.
func runBaseline(in *Instance, idx *arrivalsIndex, run *greedyRun, heapBuf []PhoneID, upTo Slot) []PhoneID {
	h := costHeap{bids: in.Bids, items: heapBuf[:0]}
	ti := 0
	for t := Slot(1); t <= upTo; t++ {
		for _, p := range idx.at(t) {
			h.push(p)
		}
		for ; ti < len(in.Tasks) && in.Tasks[ti].Arrival == t; ti++ {
			winner := h.popEligible(t)
			if winner == NoPhone {
				run.unserved[t]++
				run.runnerUp[ti] = NoPhone
				continue
			}
			run.byTask[ti] = winner
			run.phoneTask[winner] = TaskID(ti)
			run.wonAt[winner] = t
			run.noteWinner(t, winner, in.Bids[winner].Cost)
			run.runnerUp[ti] = h.peekEligible(t)
		}
	}
	return h.items
}

// slotFix is one slot's counterfactual payment candidate along a
// winner's replacement cascade.
type slotFix struct {
	slot Slot
	cand float64
}

// cascadePayment prices winner i from the baseline run alone.
//
// Removing i's bid leaves the greedy allocation unchanged except along a
// replacement cascade: the counterfactual pool always equals the
// baseline pool minus one "debt" phone (initially i), so the two runs
// diverge exactly at the tasks the baseline assigns to the current debt,
// where the counterfactual instead picks that task's recorded runner-up
// — which becomes the new debt. The cascade is absorbed when a runner-up
// never wins in the baseline, or leaves a task unserved when there is no
// runner-up at all (i was pivotal: the critical value is the reserve ν).
// See docs/THEORY.md §5 for the full equivalence argument.
//
// fixes is reusable scratch; the (possibly grown) slice is returned.
func cascadePayment(in *Instance, run *greedyRun, i PhoneID, fixes []slotFix) (float64, []slotFix) {
	bids := in.Bids
	won := run.wonAt[i]
	dep := bids[i].Departure
	pay := bids[i].Cost
	fixes = fixes[:0]

	tau := run.phoneTask[i]
	debt := i
	for tau != NoTask {
		t := in.Tasks[tau].Arrival
		if t > dep {
			break // Algorithm 2 only inspects slots up to i's departure
		}
		// Walk every cascade step landing in slot t: the slot's winner
		// multiset loses the first debt and gains the last runner-up.
		firstOut := debt
		r := run.runnerUp[tau]
		for r != NoPhone {
			next := run.phoneTask[r]
			if next == NoTask || in.Tasks[next].Arrival != t {
				break
			}
			debt, tau = r, next
			r = run.runnerUp[tau]
		}
		var cand float64
		switch {
		case r == NoPhone:
			cand = in.Value // task tau goes unserved without i: reserve
			tau = NoTask    // cascade absorbed
		case run.unserved[t] > 0:
			cand = in.Value // Algorithm 2 prices any short slot at ν
			debt, tau = r, run.phoneTask[r]
		default:
			cand = run.maxExcluding(t, firstOut)
			if c := bids[r].Cost; c > cand {
				cand = c
			}
			debt, tau = r, run.phoneTask[r]
		}
		fixes = append(fixes, slotFix{slot: t, cand: cand})
	}

	// Window max over [won, dep]: cascade slots use their counterfactual
	// candidate, every other slot is identical to the baseline.
	fi := 0
	for t := won; t <= dep; t++ {
		var cand float64
		switch {
		case fi < len(fixes) && fixes[fi].slot == t:
			cand = fixes[fi].cand
			fi++
		case run.unserved[t] > 0:
			cand = in.Value
		default:
			cand = run.max1[t]
		}
		if cand > pay {
			pay = cand
		}
	}
	return pay, fixes
}

// oracleScratch holds the reusable buffers of one Algorithm 2 re-run.
type oracleScratch struct {
	heap     []PhoneID
	unserved []int32
	maxCost  []float64
}

// oracleCritical is the literal Algorithm 2: re-run the greedy
// allocation without winner i through its reported departure and pay the
// maximum claimed cost among the phones allocated in [won, departure]
// (ν for any slot with an unserved task), floored at i's own bid.
func oracleCritical(in *Instance, idx *arrivalsIndex, i PhoneID, won Slot, sc *oracleScratch) float64 {
	d := in.Bids[i].Departure
	sc.unserved = resize(sc.unserved, int(d)+1)
	sc.maxCost = resize(sc.maxCost, int(d)+1)
	h := costHeap{bids: in.Bids, items: sc.heap[:0]}
	ti := 0
	for t := Slot(1); t <= d; t++ {
		for _, p := range idx.at(t) {
			if p == i {
				continue
			}
			h.push(p)
		}
		for ; ti < len(in.Tasks) && in.Tasks[ti].Arrival == t; ti++ {
			w := h.popEligible(t)
			if w == NoPhone {
				sc.unserved[t]++
				continue
			}
			if c := in.Bids[w].Cost; c > sc.maxCost[t] {
				sc.maxCost[t] = c
			}
		}
	}
	sc.heap = h.items
	pay := in.Bids[i].Cost
	for t := won; t <= d; t++ {
		cand := sc.maxCost[t]
		if sc.unserved[t] > 0 {
			cand = in.Value
		}
		if cand > pay {
			pay = cand
		}
	}
	return pay
}

// paymentQuery carries what the engines price from — the instance, the
// baseline run, and reusable scratch. Not safe for concurrent use; each
// concurrent caller owns its own query.
type paymentQuery struct {
	in  *Instance
	run *greedyRun
	idx *arrivalsIndex // nil until an oracle engine needs one
	m   *Metrics       // nil disables engine instrumentation

	idxBuf arrivalsIndex
	fixes  []slotFix
	osc    oracleScratch
}

// index returns the arrivals index, building it on first use (the
// streaming auction prices cascades without ever needing one).
func (q *paymentQuery) index() *arrivalsIndex {
	if q.idx == nil {
		q.idxBuf.build(q.in)
		q.idx = &q.idxBuf
	}
	return q.idx
}

type cascadeEngine struct{}

func (cascadeEngine) Name() string { return "cascade" }

func (cascadeEngine) price(q *paymentQuery, i PhoneID) float64 {
	q.m.noteCascade()
	var pay float64
	pay, q.fixes = cascadePayment(q.in, q.run, i, q.fixes)
	return pay
}

func (e cascadeEngine) priceAll(q *paymentQuery, pay []float64) {
	for i, task := range q.run.phoneTask {
		if task != NoTask {
			pay[i] = e.price(q, PhoneID(i))
		}
	}
}

type oracleEngine struct{}

func (oracleEngine) Name() string { return "oracle" }

func (oracleEngine) price(q *paymentQuery, i PhoneID) float64 {
	q.m.noteOracle()
	return oracleCritical(q.in, q.index(), i, q.run.wonAt[i], &q.osc)
}

func (e oracleEngine) priceAll(q *paymentQuery, pay []float64) {
	for i, task := range q.run.phoneTask {
		if task != NoTask {
			pay[i] = e.price(q, PhoneID(i))
		}
	}
}

type parallelEngine struct{ workers int }

func (e *parallelEngine) Name() string { return "parallel" }

func (e *parallelEngine) price(q *paymentQuery, i PhoneID) float64 {
	return oracleEngine{}.price(q, i)
}

func (e *parallelEngine) priceAll(q *paymentQuery, pay []float64) {
	var winners []PhoneID
	for i, task := range q.run.phoneTask {
		if task != NoTask {
			winners = append(winners, PhoneID(i))
		}
	}
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(winners) {
		workers = len(winners)
	}
	if workers <= 1 {
		oracleEngine{}.priceAll(q, pay)
		return
	}
	q.m.noteParallel(len(winners))
	idx := q.index() // shared read-only across workers
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc oracleScratch
			for {
				k := int(next.Add(1)) - 1
				if k >= len(winners) {
					return
				}
				i := winners[k]
				pay[i] = oracleCritical(q.in, idx, i, q.run.wonAt[i], &sc)
			}
		}()
	}
	wg.Wait()
}

// mechScratch is the pooled per-run working set of OnlineMechanism: the
// arrivals index, greedy pool, cascade side state, and payment scratch.
// Pooling makes repeated and concurrent Run calls (sim fans replications
// out over a worker pool) allocation-free on the hot path after warm-up.
type mechScratch struct {
	idx  arrivalsIndex
	heap []PhoneID
	run  greedyRun
	q    paymentQuery
}

var mechPool = sync.Pool{New: func() any {
	scratchPoolMisses.Add(1)
	return new(mechScratch)
}}
