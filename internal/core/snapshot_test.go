package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// driveSlots advances an auction through instance slots [from, to].
func driveSlots(t *testing.T, oa *OnlineAuction, in *Instance, from, to Slot) {
	t.Helper()
	perSlot := in.TasksPerSlot()
	byArrival := make([][]StreamBid, in.Slots+1)
	for _, b := range in.Bids {
		byArrival[b.Arrival] = append(byArrival[b.Arrival], StreamBid{Departure: b.Departure, Cost: b.Cost})
	}
	for s := from; s <= to; s++ {
		if _, err := oa.Step(byArrival[s], perSlot[s-1]); err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
	}
}

// TestSnapshotResumeMatchesUninterrupted: checkpoint mid-round, restore,
// finish — outcome identical to never having stopped.
func TestSnapshotResumeMatchesUninterrupted(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 14, 14, 10, 50)
		if in.Slots < 2 {
			continue
		}
		cut := Slot(1 + rng.Intn(int(in.Slots-1)))

		whole, err := NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
		if err != nil {
			t.Fatal(err)
		}
		driveSlots(t, whole, in, 1, in.Slots)

		first, err := NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
		if err != nil {
			t.Fatal(err)
		}
		driveSlots(t, first, in, 1, cut)
		data, err := first.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := RestoreOnlineAuction(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if resumed.Now() != cut {
			t.Fatalf("restored clock %d, want %d", resumed.Now(), cut)
		}
		driveSlots(t, resumed, in, cut+1, in.Slots)

		a, b := whole.Outcome(), resumed.Outcome()
		if math.Abs(a.Welfare-b.Welfare) > 1e-9 {
			t.Fatalf("trial %d (cut %d): welfare %g != %g", trial, cut, a.Welfare, b.Welfare)
		}
		for i := range a.Payments {
			if math.Abs(a.Payments[i]-b.Payments[i]) > 1e-9 {
				t.Fatalf("trial %d (cut %d): payment[%d] %g != %g", trial, cut, i, a.Payments[i], b.Payments[i])
			}
		}
		for k := range a.Allocation.ByTask {
			if a.Allocation.ByTask[k] != b.Allocation.ByTask[k] {
				t.Fatalf("trial %d (cut %d): task %d differs", trial, cut, k)
			}
		}
	}
}

func TestSnapshotAtRoundBoundaries(t *testing.T) {
	oa, err := NewOnlineAuction(3, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot before any step.
	data, err := oa.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RestoreOnlineAuction(data)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Now() != 0 || fresh.Done() {
		t.Fatal("fresh restore wrong state")
	}
	// Snapshot after the final slot.
	for !oa.Done() {
		if _, err := oa.Step(nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	data, err = oa.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	done, err := RestoreOnlineAuction(data)
	if err != nil {
		t.Fatal(err)
	}
	if !done.Done() {
		t.Fatal("finished round restored as unfinished")
	}
	if _, err := done.Step(nil, 0); err == nil {
		t.Fatal("restored finished round accepted a step")
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	oa, _ := NewOnlineAuction(5, 10, false)
	if _, err := oa.Step([]StreamBid{{Departure: 3, Cost: 2}}, 1); err != nil {
		t.Fatal(err)
	}
	good, err := oa.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(f func(map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := map[string][]byte{
		"not json":      []byte("{nope"),
		"wrong version": corrupt(func(m map[string]any) { m["version"] = 99 }),
		"bad clock":     corrupt(func(m map[string]any) { m["now"] = 9 }),
		"future bid": corrupt(func(m map[string]any) {
			bids := m["bids"].([]any)
			bids[0].(map[string]any)["Arrival"] = 4
		}),
		"task after clock": corrupt(func(m map[string]any) { m["taskArrivals"] = []any{5.0} }),
		"size mismatch":    corrupt(func(m map[string]any) { m["wonAt"] = []any{} }),
		"bad assignment": corrupt(func(m map[string]any) {
			m["byTask"] = []any{7.0}
		}),
	}
	for name, data := range cases {
		if _, err := RestoreOnlineAuction(data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

// TestSnapshotRoundTripStable: snapshot -> restore -> snapshot yields
// an equivalent document.
func TestSnapshotRoundTripStable(t *testing.T) {
	oa, _ := NewOnlineAuction(6, 20, false)
	if _, err := oa.Step([]StreamBid{{Departure: 4, Cost: 3}, {Departure: 6, Cost: 8}}, 1); err != nil {
		t.Fatal(err)
	}
	a, err := oa.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreOnlineAuction(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("snapshot changed across restore:\n%s\n%s", a, b)
	}
}
