package core

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzMechanismInvariants generates a random instance from the fuzzed
// seed and checks every cross-mechanism invariant at once:
//
//  1. both allocations are feasible,
//  2. offline welfare ≥ online welfare ≥ offline/2,
//  3. losers are paid zero, winners at least their bid,
//  4. truthful utilities are non-negative,
//  5. reported welfare matches the allocation.
func FuzzMechanismInvariants(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 12, 12, 8, 50)
		in.AllocateAtLoss = seed%5 == 0

		on, err := (&OnlineMechanism{}).Run(in)
		if err != nil {
			t.Fatalf("online: %v", err)
		}
		off, err := (&OfflineMechanism{}).Run(in)
		if err != nil {
			t.Fatalf("offline: %v", err)
		}
		for name, out := range map[string]*Outcome{"online": on, "offline": off} {
			if err := out.Allocation.Validate(in); err != nil {
				t.Fatalf("%s allocation: %v", name, err)
			}
			if math.Abs(out.Welfare-out.Allocation.Welfare(in)) > 1e-9 {
				t.Fatalf("%s welfare mismatch", name)
			}
			for i, task := range out.Allocation.ByPhone {
				if task == NoTask {
					if out.Payments[i] != 0 {
						t.Fatalf("%s: loser %d paid %g", name, i, out.Payments[i])
					}
					continue
				}
				if out.Payments[i] < in.Bids[i].Cost-1e-9 {
					t.Fatalf("%s: winner %d paid %g < bid %g", name, i, out.Payments[i], in.Bids[i].Cost)
				}
				if u := out.Utility(PhoneID(i), in.Bids[i].Cost); u < -1e-9 {
					t.Fatalf("%s: winner %d negative utility %g", name, i, u)
				}
			}
		}
		if !in.AllocateAtLoss {
			if off.Welfare < on.Welfare-1e-9 {
				t.Fatalf("offline %g < online %g", off.Welfare, on.Welfare)
			}
			if on.Welfare < off.Welfare/2-1e-9 {
				t.Fatalf("competitive ratio violated: %g < %g/2", on.Welfare, off.Welfare)
			}
		}
	})
}

// FuzzCriticalPayments differentially tests the incremental cascade
// payment engine (and the parallel fan-out) against the literal
// Algorithm 2 per-winner re-run on fuzz-seeded instances, demanding
// bit-identical payments — the engines take maxima over the same stored
// floats, so exact equality is the specification, not a tolerance.
func FuzzCriticalPayments(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(2))
	f.Add(int64(-13))
	f.Add(int64(777))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 14, 14, 8, 50)
		in.AllocateAtLoss = seed%2 == 0

		ref, err := (&OnlineMechanism{Payments: OraclePayments}).Run(in)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		for _, engine := range []PaymentEngine{CascadePayments, ParallelPayments(3)} {
			out, err := (&OnlineMechanism{Payments: engine}).Run(in)
			if err != nil {
				t.Fatalf("%s: %v", engine.Name(), err)
			}
			for i := range ref.Payments {
				if out.Payments[i] != ref.Payments[i] {
					t.Fatalf("%s: phone %d paid %v, oracle %v (atLoss=%v)",
						engine.Name(), i, out.Payments[i], ref.Payments[i], in.AllocateAtLoss)
				}
			}
		}
	})
}

// FuzzStreamEquivalence replays fuzz-seeded instances through the
// streaming driver and checks it matches the batch mechanism.
func FuzzStreamEquivalence(f *testing.F) {
	f.Add(int64(3))
	f.Add(int64(99))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 10, 10, 6, 40)
		batch, err := (&OnlineMechanism{}).Run(in)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
		if err != nil {
			t.Fatal(err)
		}
		perSlot := in.TasksPerSlot()
		bi := 0
		for s := Slot(1); s <= in.Slots; s++ {
			var arriving []StreamBid
			for ; bi < len(in.Bids) && in.Bids[bi].Arrival == s; bi++ {
				arriving = append(arriving, StreamBid{Departure: in.Bids[bi].Departure, Cost: in.Bids[bi].Cost})
			}
			if _, err := oa.Step(arriving, perSlot[s-1]); err != nil {
				t.Fatal(err)
			}
		}
		stream := oa.Outcome()
		if math.Abs(stream.Welfare-batch.Welfare) > 1e-9 {
			t.Fatalf("stream welfare %g != batch %g", stream.Welfare, batch.Welfare)
		}
		for i := range batch.Payments {
			if math.Abs(stream.Payments[i]-batch.Payments[i]) > 1e-9 {
				t.Fatalf("payment[%d]: %g != %g", i, stream.Payments[i], batch.Payments[i])
			}
		}
	})
}
