package core

import (
	"errors"
	"fmt"
	"sort"
)

// This file adds the unreliable-winner lifecycle to the online engines.
// The paper assumes a phone that wins a slot performs its task; real
// dynamic smartphones no-show, arrive late, or vanish mid-task. With
// completion tracking enabled, every assignment must be resolved:
//
//	assigned ──Complete──> completed   (winner delivered; payment stands)
//	assigned ──Default───> defaulted   (winner failed; payment clawed back,
//	                                    task re-allocated in place)
//
// A default releases the task and re-assigns it to the next-cheapest
// eligible bidder still present — the same phone the Ledger's runner-up
// record would name unless that phone has itself won, defaulted, or is
// reserve-priced, in which case the scan continues down the cost order.
// The replacement is priced at its own critical value under the
// post-default state; the defaulted phone nets zero (any payment already
// issued at its departure is reported as a clawback). Tracking is off by
// default and the disabled path is allocation-free.

// CompletionStatus is the lifecycle state of a phone's assignment.
type CompletionStatus int8

// Lifecycle states. StatusNone covers phones that never won (and all
// phones while tracking is disabled).
const (
	StatusNone      CompletionStatus = iota // no live or past assignment
	StatusAssigned                          // won a task, outcome pending
	StatusCompleted                         // delivered its task
	StatusDefaulted                         // failed its task; pays nothing
)

// String implements fmt.Stringer.
func (s CompletionStatus) String() string {
	switch s {
	case StatusNone:
		return "none"
	case StatusAssigned:
		return "assigned"
	case StatusCompleted:
		return "completed"
	case StatusDefaulted:
		return "defaulted"
	default:
		return fmt.Sprintf("CompletionStatus(%d)", int8(s))
	}
}

// Typed lifecycle errors, matchable via errors.Is at every validation
// surface (the engines, the Ledger, and the platform's protocol layer).
var (
	// ErrAlreadyCompleted rejects a duplicate completion report, or a
	// default of a task that was already delivered.
	ErrAlreadyCompleted = errors.New("task already completed")
	// ErrNotAssigned rejects a completion or default for a phone with no
	// live assignment: it never won, its ID is unknown, or it already
	// defaulted.
	ErrNotAssigned = errors.New("phone has no live assignment")
	// ErrNotTracking rejects lifecycle calls while completion tracking
	// is disabled.
	ErrNotTracking = errors.New("completion tracking disabled")
)

// CompletionEvent records one default for snapshot replay: phone Phone
// defaulted while the auction clock stood at Slot. Completions do not
// mutate allocation state, so only defaults need to be replayed.
type CompletionEvent struct {
	Phone PhoneID `json:"phone"`
	Slot  Slot    `json:"slot"`
}

// CompletionCounts aggregates lifecycle outcomes for observability.
type CompletionCounts struct {
	Completed   uint64 `json:"completed"`
	Defaulted   uint64 `json:"defaulted"`
	Reallocated uint64 `json:"reallocated"` // defaults whose task found a replacement
	Unreplaced  uint64 `json:"unreplaced"`  // defaults whose task went unserved
	Clawbacks   uint64 `json:"clawbacks"`   // defaults after a payment had been issued
}

// CompletionState is one phone's lifecycle view.
type CompletionState struct {
	Status CompletionStatus
	Task   TaskID  // current assignment (NoTask if none, incl. after default)
	Slot   Slot    // the assignment's slot (0 if none)
	Paid   float64 // amount issued (clawed back if Status == StatusDefaulted)
	PaidAt Slot    // auction clock when the payment was issued (0 if never)
}

// CompletionSnapshot is the serialized tracker state embedded in both
// engines' snapshots.
type CompletionSnapshot struct {
	Statuses []CompletionStatus `json:"statuses"`
	Paid     []float64          `json:"paid,omitempty"`
	PaidAt   []Slot             `json:"paidAt,omitempty"`
	Log      []CompletionEvent  `json:"log,omitempty"`
	Counts   CompletionCounts   `json:"counts"`
}

// DefaultResult reports everything a Default did.
type DefaultResult struct {
	Phone       PhoneID // the defaulted winner
	Task        TaskID  // the task it abandoned
	Slot        Slot    // the task's slot
	Replacement PhoneID // new winner (NoPhone if the task goes unserved)
	// Clawback is the payment previously issued to the defaulted phone,
	// now owed back to the platform (0 if it had not been paid yet).
	Clawback float64
	// Payments holds the replacement's payment when it has already
	// departed by the time it is drafted (it must be paid immediately —
	// its departure slot's settlement has already run).
	Payments []PaymentNotice
}

// completions is the lifecycle tracker shared by OnlineAuction and
// Ledger. All slices are indexed by PhoneID and grown lazily; when
// disabled every method is a cheap no-op so the tracking-off hot path
// stays allocation-free.
type completions struct {
	enabled bool
	status  []CompletionStatus
	paid    []float64
	paidAt  []Slot
	log     []CompletionEvent
	counts  CompletionCounts
}

// grow extends the per-phone arrays to cover n phones.
func (c *completions) grow(n int) {
	if !c.enabled || len(c.status) >= n {
		return
	}
	for len(c.status) < n {
		c.status = append(c.status, StatusNone)
		c.paid = append(c.paid, 0)
		c.paidAt = append(c.paidAt, 0)
	}
}

// blocked reports that p may never be allocated (again): it holds or
// held an assignment. Pool pop paths use it to skip re-allocated
// winners and defaulted phones left behind in the heaps.
func (c *completions) blocked(p PhoneID) bool {
	return c.enabled && c.status[p] != StatusNone
}

// markAssigned notes that p won a task.
func (c *completions) markAssigned(p PhoneID) {
	if c.enabled {
		c.status[p] = StatusAssigned
	}
}

// payable reports whether a departing winner should be paid: with
// tracking off every winner is; with tracking on, defaulted phones are
// not (their wonAt is cleared too, so this is a second line of defense).
func (c *completions) payable(p PhoneID) bool {
	return !c.enabled || c.status[p] == StatusAssigned || c.status[p] == StatusCompleted
}

// markPaid records an issued payment so the outcome reports the amount
// actually executed (later defaults in overlapping slots may shift the
// recomputed cascade value, but an executed payment does not move).
func (c *completions) markPaid(p PhoneID, amount float64, now Slot) {
	if c.enabled {
		c.paid[p] = amount
		c.paidAt[p] = now
	}
}

// settled returns the issued payment for p, if one was executed.
func (c *completions) settled(p PhoneID) (float64, bool) {
	if !c.enabled || c.paidAt[p] == 0 {
		return 0, false
	}
	return c.paid[p], true
}

// complete transitions p from assigned to completed.
func (c *completions) complete(p PhoneID) error {
	if !c.enabled {
		return ErrNotTracking
	}
	if p < 0 || int(p) >= len(c.status) {
		return fmt.Errorf("complete: unknown phone %d: %w", p, ErrNotAssigned)
	}
	switch c.status[p] {
	case StatusAssigned:
		c.status[p] = StatusCompleted
		c.counts.Completed++
		return nil
	case StatusCompleted:
		return fmt.Errorf("complete: phone %d: %w", p, ErrAlreadyCompleted)
	default:
		return fmt.Errorf("complete: phone %d (status %v): %w", p, c.status[p], ErrNotAssigned)
	}
}

// marshal copies the tracker state for a snapshot (nil when tracking is
// off, so pre-lifecycle snapshots are byte-identical to version 1).
func (c *completions) marshal() *CompletionSnapshot {
	if !c.enabled {
		return nil
	}
	return &CompletionSnapshot{
		Statuses: append([]CompletionStatus(nil), c.status...),
		Paid:     append([]float64(nil), c.paid...),
		PaidAt:   append([]Slot(nil), c.paidAt...),
		Log:      append([]CompletionEvent(nil), c.log...),
		Counts:   c.counts,
	}
}

// restoreFrom overwrites the tracker with snapshot state. The default
// log is expected to have been replayed already (it rebuilt the
// allocation-side mutations); statuses, issued payments, and counters
// are restored verbatim.
func (c *completions) restoreFrom(snap *CompletionSnapshot, numPhones int) error {
	if len(snap.Statuses) != numPhones {
		return fmt.Errorf("completions: %d statuses for %d phones", len(snap.Statuses), numPhones)
	}
	if len(snap.Paid) != 0 && len(snap.Paid) != numPhones {
		return fmt.Errorf("completions: %d paid amounts for %d phones", len(snap.Paid), numPhones)
	}
	if len(snap.PaidAt) != len(snap.Paid) {
		return fmt.Errorf("completions: paid/paidAt length mismatch")
	}
	c.enabled = true
	c.status = append(c.status[:0], snap.Statuses...)
	c.paid = resize(c.paid, numPhones)
	c.paidAt = resize(c.paidAt, numPhones)
	copy(c.paid, snap.Paid)
	copy(c.paidAt, snap.PaidAt)
	c.log = append(c.log[:0], snap.Log...)
	c.counts = snap.Counts
	return nil
}

// state assembles p's lifecycle view.
func (c *completions) state(run *greedyRun, p PhoneID) CompletionState {
	st := CompletionState{Task: NoTask}
	if !c.enabled || p < 0 || int(p) >= len(c.status) {
		return st
	}
	st.Status = c.status[p]
	if task := run.phoneTask[p]; task != NoTask {
		st.Task = task
		st.Slot = run.wonAt[p]
	}
	st.Paid = c.paid[p]
	st.PaidAt = c.paidAt[p]
	return st
}

// rebuildSlotWinners recomputes slot t's top-2 winner-cost table from
// the slot's current winners after a default mutated the winner set.
// Tasks are stored in arrival order, so the slot's tasks form one
// contiguous range.
func rebuildSlotWinners(in *Instance, run *greedyRun, t Slot) {
	run.max1[t], run.max2[t], run.max1p[t] = 0, 0, NoPhone
	lo := sort.Search(len(in.Tasks), func(i int) bool { return in.Tasks[i].Arrival >= t })
	for k := lo; k < len(in.Tasks) && in.Tasks[k].Arrival == t; k++ {
		if p := run.byTask[k]; p != NoPhone {
			run.noteWinner(t, p, in.Bids[p].Cost)
		}
	}
}

// defaultWinner is the shared default + in-slot re-allocation step. It
// marks p defaulted, releases its task, drafts the cheapest eligible
// replacement (scanning the full bid list generalizes the recorded
// runner-up: nothing cheaper than the runner-up can be eligible unless
// it has itself won or defaulted since), refreshes the slot's pricing
// tables, and prices the replacement immediately when it has already
// departed. The price callback must evaluate the caller's payment
// engine against the post-mutation state.
func defaultWinner(in *Instance, run *greedyRun, c *completions, p PhoneID, now Slot, price func(PhoneID) float64) (*DefaultResult, error) {
	if !c.enabled {
		return nil, ErrNotTracking
	}
	if p < 0 || int(p) >= len(c.status) {
		return nil, fmt.Errorf("default: unknown phone %d: %w", p, ErrNotAssigned)
	}
	switch c.status[p] {
	case StatusAssigned:
	case StatusCompleted:
		return nil, fmt.Errorf("default: phone %d: %w", p, ErrAlreadyCompleted)
	default:
		return nil, fmt.Errorf("default: phone %d (status %v): %w", p, c.status[p], ErrNotAssigned)
	}

	k := run.phoneTask[p]
	t := in.Tasks[k].Arrival
	res := &DefaultResult{Phone: p, Task: k, Slot: t, Replacement: NoPhone}
	c.status[p] = StatusDefaulted
	c.counts.Defaulted++
	c.log = append(c.log, CompletionEvent{Phone: p, Slot: now})
	if c.paidAt[p] != 0 {
		res.Clawback = c.paid[p]
		c.counts.Clawbacks++
	}
	run.phoneTask[p] = NoTask
	run.wonAt[p] = 0
	run.byTask[k] = NoPhone

	// Replacement scan: cheapest and second-cheapest phones that cover
	// slot t, have no assignment history, and clear the reserve price.
	// (cost, id) ordering matches the allocation heap, so both engines
	// draft the same phone from identical state.
	best, second := NoPhone, NoPhone
	for i := range in.Bids {
		r := PhoneID(i)
		b := &in.Bids[i]
		if !b.Covers(t) || run.phoneTask[r] != NoTask || c.status[r] != StatusNone {
			continue
		}
		if !in.AllocateAtLoss && b.Cost >= in.Value {
			continue
		}
		switch {
		case best == NoPhone || b.Cost < in.Bids[best].Cost || (b.Cost == in.Bids[best].Cost && r < best):
			best, second = r, best
		case second == NoPhone || b.Cost < in.Bids[second].Cost || (b.Cost == in.Bids[second].Cost && r < second):
			second = r
		}
	}
	if best == NoPhone {
		run.unserved[t]++
		run.runnerUp[k] = NoPhone
		rebuildSlotWinners(in, run, t)
		c.counts.Unreplaced++
		return res, nil
	}
	run.byTask[k] = best
	run.phoneTask[best] = k
	run.wonAt[best] = t
	run.runnerUp[k] = second
	c.status[best] = StatusAssigned
	rebuildSlotWinners(in, run, t)
	c.counts.Reallocated++
	res.Replacement = best
	if in.Bids[best].Departure <= now {
		amount := price(best)
		c.markPaid(best, amount, now)
		res.Payments = append(res.Payments, PaymentNotice{Phone: best, Amount: amount})
	}
	return res, nil
}
