package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// paperInstance reconstructs the worked example of the paper's Fig. 4/5:
// seven phones, five slots, one task per slot. Phone numbering in the
// paper is 1-based; PhoneID i here is paper phone i+1.
//
//	phone 1: [2,5] cost 3    phone 5: [2,2] cost 4
//	phone 2: [1,4] cost 5    phone 6: [3,5] cost 8
//	phone 3: [3,5] cost 11   phone 7: [1,3] cost 6
//	phone 4: [4,5] cost 9
//
// This reproduces every number quoted in the paper: greedy winners
// 2,1,7,6,4 in slots 1..5; phone 1's critical payment 9; the per-slot
// second-price payments 6 and 4; and the Fig. 5(b) arrival-delay gain.
func paperInstance() *Instance {
	in := &Instance{Slots: 5, Value: 20}
	windows := [][2]Slot{{2, 5}, {1, 4}, {3, 5}, {4, 5}, {2, 2}, {3, 5}, {1, 3}}
	costs := []float64{3, 5, 11, 9, 4, 8, 6}
	for i := range windows {
		in.Bids = append(in.Bids, Bid{
			Phone: PhoneID(i), Arrival: windows[i][0], Departure: windows[i][1], Cost: costs[i],
		})
	}
	for k := 0; k < 5; k++ {
		in.Tasks = append(in.Tasks, Task{ID: TaskID(k), Arrival: Slot(k + 1)})
	}
	return in
}

func TestBidCovers(t *testing.T) {
	b := Bid{Arrival: 3, Departure: 5}
	for _, tc := range []struct {
		slot Slot
		want bool
	}{{2, false}, {3, true}, {4, true}, {5, true}, {6, false}} {
		if got := b.Covers(tc.slot); got != tc.want {
			t.Errorf("Covers(%d) = %v, want %v", tc.slot, got, tc.want)
		}
	}
}

func TestBidValidate(t *testing.T) {
	cases := []struct {
		name    string
		bid     Bid
		wantErr string
	}{
		{"ok", Bid{Phone: 0, Arrival: 1, Departure: 10, Cost: 5}, ""},
		{"negative phone", Bid{Phone: -2, Arrival: 1, Departure: 2}, "negative phone"},
		{"arrival zero", Bid{Phone: 0, Arrival: 0, Departure: 2}, "outside round"},
		{"departure past m", Bid{Phone: 0, Arrival: 1, Departure: 11}, "outside round"},
		{"inverted window", Bid{Phone: 0, Arrival: 5, Departure: 2}, "after departure"},
		{"negative cost", Bid{Phone: 0, Arrival: 1, Departure: 2, Cost: -1}, "non-negative finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.bid.Validate(10)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want contains %q", err, tc.wantErr)
			}
		})
	}
}

func TestInstanceValidate(t *testing.T) {
	good := paperInstance()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}

	t.Run("bad round length", func(t *testing.T) {
		in := &Instance{Slots: 0}
		if in.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("misnumbered bid", func(t *testing.T) {
		in := paperInstance()
		in.Bids[3].Phone = 9
		if in.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("misnumbered task", func(t *testing.T) {
		in := paperInstance()
		in.Tasks[2].ID = 7
		if in.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("task out of order", func(t *testing.T) {
		in := paperInstance()
		in.Tasks[0].Arrival = 4
		if in.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("task outside round", func(t *testing.T) {
		in := paperInstance()
		in.Tasks[4].Arrival = 9
		if in.Validate() == nil {
			t.Fatal("want error")
		}
	})
	t.Run("negative value", func(t *testing.T) {
		in := paperInstance()
		in.Value = -1
		if in.Validate() == nil {
			t.Fatal("want error")
		}
	})
}

func TestTasksPerSlot(t *testing.T) {
	in := paperInstance()
	r := in.TasksPerSlot()
	if len(r) != 5 {
		t.Fatalf("len = %d, want 5", len(r))
	}
	for i, v := range r {
		if v != 1 {
			t.Fatalf("r[%d] = %d, want 1", i, v)
		}
	}
}

func TestInstanceCloneIndependent(t *testing.T) {
	in := paperInstance()
	c := in.Clone()
	c.Bids[0].Cost = 99
	c.Tasks[0].Arrival = 5
	if in.Bids[0].Cost == 99 || in.Tasks[0].Arrival == 5 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestWithoutPhone(t *testing.T) {
	in := paperInstance()
	r := in.WithoutPhone(2)
	if len(r.Bids) != 6 {
		t.Fatalf("len = %d, want 6", len(r.Bids))
	}
	for _, b := range r.Bids {
		if b.Phone == 2 {
			t.Fatal("phone 2 still present")
		}
	}
	if len(in.Bids) != 7 {
		t.Fatal("original modified")
	}
}

func TestAllocationBookkeeping(t *testing.T) {
	a := NewAllocation(3, 4)
	if a.NumServed() != 0 || len(a.Winners()) != 0 {
		t.Fatal("fresh allocation not empty")
	}
	a.Assign(1, 2, 5)
	a.Assign(0, 3, 1)
	if a.NumServed() != 2 {
		t.Fatalf("NumServed = %d, want 2", a.NumServed())
	}
	w := a.Winners()
	if len(w) != 2 || w[0] != 2 || w[1] != 3 {
		t.Fatalf("Winners = %v, want [2 3]", w)
	}
	as := a.Assignments()
	if len(as) != 2 || as[0] != (Assignment{Task: 0, Phone: 3, Slot: 1}) || as[1] != (Assignment{Task: 1, Phone: 2, Slot: 5}) {
		t.Fatalf("Assignments = %v", as)
	}
}

func TestAllocationValidate(t *testing.T) {
	in := paperInstance()
	a := NewAllocation(5, 7)
	a.Assign(0, 1, 1) // phone 2 (id 1) serves task 0 in slot 1: window [1,4] ok
	if err := a.Validate(in); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}

	t.Run("outside window", func(t *testing.T) {
		b := NewAllocation(5, 7)
		b.Assign(0, 3, 1) // phone 4 (id 3) has window [4,5]
		if b.Validate(in) == nil {
			t.Fatal("want window violation")
		}
	})
	t.Run("wrong slot", func(t *testing.T) {
		b := NewAllocation(5, 7)
		b.Assign(0, 1, 2) // task 0 arrives in slot 1, not 2
		if b.Validate(in) == nil {
			t.Fatal("want slot mismatch")
		}
	})
	t.Run("size mismatch", func(t *testing.T) {
		b := NewAllocation(4, 7)
		if b.Validate(in) == nil {
			t.Fatal("want size mismatch")
		}
	})
	t.Run("unmirrored maps", func(t *testing.T) {
		b := NewAllocation(5, 7)
		b.ByTask[0] = 1 // set one side only
		if b.Validate(in) == nil {
			t.Fatal("want mirror violation")
		}
	})
}

func TestOutcomeAccessors(t *testing.T) {
	in := paperInstance()
	a := NewAllocation(5, 7)
	a.Assign(0, 1, 1)
	a.Assign(1, 0, 2)
	out := &Outcome{Allocation: a, Payments: make([]float64, 7), Welfare: a.Welfare(in)}
	out.Payments[1] = 6
	out.Payments[0] = 9

	if got := out.TotalPayment(); got != 15 {
		t.Fatalf("TotalPayment = %g, want 15", got)
	}
	// Winner costs: phone 0 cost 3, phone 1 cost 5.
	if got := out.TotalWinnerCost(in); got != 8 {
		t.Fatalf("TotalWinnerCost = %g, want 8", got)
	}
	// σ = (15-8)/8.
	if got := out.OverpaymentRatio(in); got < 0.874 || got > 0.876 {
		t.Fatalf("OverpaymentRatio = %g, want 0.875", got)
	}
	// Welfare = (20-3)+(20-5) = 32.
	if out.Welfare != 32 {
		t.Fatalf("Welfare = %g, want 32", out.Welfare)
	}
	if got := out.Utility(0, 3); got != 6 {
		t.Fatalf("Utility(winner) = %g, want 6", got)
	}
	if got := out.Utility(4, 100); got != 0 {
		t.Fatalf("Utility(loser) = %g, want 0", got)
	}
}

func TestOverpaymentRatioNoWinners(t *testing.T) {
	in := paperInstance()
	out := &Outcome{Allocation: NewAllocation(5, 7), Payments: make([]float64, 7)}
	if got := out.OverpaymentRatio(in); got != 0 {
		t.Fatalf("OverpaymentRatio with no winners = %g, want 0", got)
	}
}

// randomInstance generates a structurally valid instance for property
// tests: bids ordered by arrival slot, tasks in arrival order.
func randomInstance(rng *rand.Rand, maxPhones, maxTasks int, m Slot, value float64) *Instance {
	in := &Instance{Slots: m, Value: value}
	n := 1 + rng.Intn(maxPhones)
	type win struct {
		a, d Slot
		c    float64
	}
	wins := make([]win, n)
	for i := range wins {
		a := Slot(1 + rng.Intn(int(m)))
		d := a + Slot(rng.Intn(int(m-a)+1))
		wins[i] = win{a, d, rng.Float64() * value * 1.2}
	}
	// Sort by arrival so streaming replays assign the same IDs.
	for i := 1; i < len(wins); i++ {
		for j := i; j > 0 && wins[j].a < wins[j-1].a; j-- {
			wins[j], wins[j-1] = wins[j-1], wins[j]
		}
	}
	for i, w := range wins {
		in.Bids = append(in.Bids, Bid{Phone: PhoneID(i), Arrival: w.a, Departure: w.d, Cost: w.c})
	}
	numTasks := rng.Intn(maxTasks + 1)
	arr := make([]int, numTasks)
	for k := range arr {
		arr[k] = 1 + rng.Intn(int(m))
	}
	for i := 1; i < len(arr); i++ {
		for j := i; j > 0 && arr[j] < arr[j-1]; j-- {
			arr[j], arr[j-1] = arr[j-1], arr[j]
		}
	}
	for k, a := range arr {
		in.Tasks = append(in.Tasks, Task{ID: TaskID(k), Arrival: Slot(a)})
	}
	return in
}

// TestValidateRejectsNonFiniteNumbers: NaN and ±Inf costs or values
// would poison cost ordering (every comparison with NaN is false), so
// validation must refuse them outright.
func TestValidateRejectsNonFiniteNumbers(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := Bid{Phone: 0, Arrival: 1, Departure: 2, Cost: bad}
		if b.Validate(5) == nil {
			t.Errorf("bid cost %v accepted", bad)
		}
		in := paperInstance()
		in.Value = bad
		if in.Validate() == nil {
			t.Errorf("instance value %v accepted", bad)
		}
	}
}
