package core

import (
	"fmt"
)

// Auction is the method set shared by the slot-by-slot auction engines:
// the sequential OnlineAuction and the sharded engine (internal/shard).
// The platform hosts either through this interface; all implementations
// produce bit-identical allocations and payments for identical input.
type Auction interface {
	// Step advances the auction one slot (see OnlineAuction.Step).
	Step(arriving []StreamBid, numTasks int) (*SlotResult, error)
	// Now returns the last processed slot (0 before the first Step).
	Now() Slot
	// Done reports whether all slots have been processed.
	Done() bool
	// Outcome assembles the round outcome so far.
	Outcome() *Outcome
	// Instance returns a copy of the accumulated bids and tasks.
	Instance() *Instance
	// Snapshot serializes the auction state for checkpoint/restore.
	Snapshot() ([]byte, error)
	// SetPaymentEngine selects how winners are priced (nil: cascade).
	SetPaymentEngine(PaymentEngine)
	// SetMetrics instruments the hot path (nil disables).
	SetMetrics(*Metrics)
	// TrackDepartures toggles SlotResult.Departed population.
	TrackDepartures(bool)
	// TrackCompletions toggles the assignment lifecycle (completion.go).
	TrackCompletions(bool)
	// Complete marks a winner's assignment delivered.
	Complete(PhoneID) error
	// Default marks a winner's assignment failed, re-allocating its task.
	Default(PhoneID) (*DefaultResult, error)
	// Completion returns one phone's lifecycle view.
	Completion(PhoneID) CompletionState
	// CompletionCounts returns aggregate lifecycle outcomes.
	CompletionCounts() CompletionCounts
}

var _ Auction = (*OnlineAuction)(nil)

// Ledger is the round state of a greedy run assembled by an external
// allocator — the bids and tasks seen so far plus the cascade side
// state (per-task runner-ups, per-slot winner-cost tables) the payment
// engines price from. It is the bridge the sharded engine
// (internal/shard) uses to stay bit-identical to OnlineAuction: as long
// as the external allocator records exactly the decisions the
// sequential greedy would make (RecordWin with the same winners and
// runner-ups, RecordUnserved for the same tasks), every PaymentEngine
// prices its winners to the same floats as the sequential run.
//
// A Ledger is not safe for concurrent mutation; concurrent read-only
// pricing through independent Pricers is safe between mutations.
type Ledger struct {
	inst Instance
	run  greedyRun
	comp completions // assignment lifecycle (off by default)
	// epoch counts structural growth (AddBid/AddTask). Pricers use it to
	// refresh their instance view and invalidate cached arrival indexes.
	epoch uint64
}

// NewLedger creates the ledger of an m-slot round with per-task value ν.
func NewLedger(m Slot, value float64, allocateAtLoss bool) (*Ledger, error) {
	if m < 1 {
		return nil, fmt.Errorf("ledger: round length %d < 1", m)
	}
	if value < 0 {
		return nil, fmt.Errorf("ledger: negative task value %g", value)
	}
	l := &Ledger{inst: Instance{Slots: m, Value: value, AllocateAtLoss: allocateAtLoss}}
	l.run.resetSlots(m)
	return l, nil
}

// Slots returns the round length m.
func (l *Ledger) Slots() Slot { return l.inst.Slots }

// Value returns the per-task value ν.
func (l *Ledger) Value() float64 { return l.inst.Value }

// AllocateAtLoss reports whether bids with cost ≥ ν may win.
func (l *Ledger) AllocateAtLoss() bool { return l.inst.AllocateAtLoss }

// NumPhones returns the number of admitted bids.
func (l *Ledger) NumPhones() int { return len(l.inst.Bids) }

// NumTasks returns the number of announced tasks.
func (l *Ledger) NumTasks() int { return len(l.inst.Tasks) }

// Bid returns phone i's admitted bid.
func (l *Ledger) Bid(i PhoneID) Bid { return l.inst.Bids[i] }

// WonAt returns the slot phone i won in (0 if it has not won).
func (l *Ledger) WonAt(i PhoneID) Slot { return l.run.wonAt[i] }

// TaskWinner returns the phone assigned to task k (NoPhone if unserved).
func (l *Ledger) TaskWinner(k TaskID) PhoneID { return l.run.byTask[k] }

// Bids returns a copy of the admitted bids in ID order.
func (l *Ledger) Bids() []Bid { return append([]Bid(nil), l.inst.Bids...) }

// TaskArrivals returns each task's arrival slot in ID order.
func (l *Ledger) TaskArrivals() []Slot {
	out := make([]Slot, len(l.inst.Tasks))
	for k, t := range l.inst.Tasks {
		out[k] = t.Arrival
	}
	return out
}

// ByTask returns a copy of the task -> winner table (NoPhone entries
// for unserved tasks).
func (l *Ledger) ByTask() []PhoneID { return append([]PhoneID(nil), l.run.byTask...) }

// WonAtSlots returns a copy of the phone -> winning-slot table (0
// entries for losers).
func (l *Ledger) WonAtSlots() []Slot { return append([]Slot(nil), l.run.wonAt...) }

// AddBid admits a bid arriving in slot `arrival` and returns its dense
// phone ID. The bid is validated (including the typed ErrWindowInverted
// rejection); an invalid bid is not admitted.
func (l *Ledger) AddBid(arrival Slot, sb StreamBid) (PhoneID, error) {
	id := PhoneID(len(l.inst.Bids))
	b := Bid{Phone: id, Arrival: arrival, Departure: sb.Departure, Cost: sb.Cost}
	if err := b.Validate(l.inst.Slots); err != nil {
		return NoPhone, err
	}
	l.inst.Bids = append(l.inst.Bids, b)
	l.run.phoneTask = append(l.run.phoneTask, NoTask)
	l.run.wonAt = append(l.run.wonAt, 0)
	l.comp.grow(len(l.inst.Bids))
	l.epoch++
	return id, nil
}

// AddTask announces a task arriving in slot t and returns its dense
// task ID. Tasks must be added in non-decreasing arrival order.
func (l *Ledger) AddTask(t Slot) TaskID {
	id := TaskID(len(l.inst.Tasks))
	l.inst.Tasks = append(l.inst.Tasks, Task{ID: id, Arrival: t})
	l.run.byTask = append(l.run.byTask, NoPhone)
	l.run.runnerUp = append(l.run.runnerUp, NoPhone)
	l.epoch++
	return id
}

// RecordWin records task k being assigned to `winner` in slot t, with
// `runnerUp` the next-cheapest eligible phone at assignment time
// (NoPhone if none) — exactly the state the sequential greedy would
// have recorded, which is what keeps cascade payments identical.
func (l *Ledger) RecordWin(k TaskID, winner, runnerUp PhoneID, t Slot) {
	l.run.byTask[k] = winner
	l.run.phoneTask[winner] = k
	l.run.wonAt[winner] = t
	l.run.noteWinner(t, winner, l.inst.Bids[winner].Cost)
	l.comp.markAssigned(winner)
	l.run.runnerUp[k] = runnerUp
}

// Assignable reports whether phone i may still be drafted for a task:
// it holds no assignment and (with the lifecycle on) has never won or
// defaulted. Allocators use it to skip phones a default re-allocated
// while they were still pooled.
func (l *Ledger) Assignable(i PhoneID) bool {
	return l.run.phoneTask[i] == NoTask && !l.comp.blocked(i)
}

// TrackCompletions toggles the assignment lifecycle (see
// OnlineAuction.TrackCompletions for semantics).
func (l *Ledger) TrackCompletions(on bool) {
	l.comp.enabled = on
	if !on {
		return
	}
	l.comp.grow(len(l.inst.Bids))
	for i, task := range l.run.phoneTask {
		if task != NoTask && l.comp.status[i] == StatusNone {
			l.comp.status[i] = StatusAssigned
		}
	}
}

// Complete marks phone p's assignment as delivered (see
// OnlineAuction.Complete for the error contract).
func (l *Ledger) Complete(p PhoneID) error { return l.comp.complete(p) }

// DefaultWinner marks phone p's assignment as failed at auction clock
// `now` and re-allocates its task (see OnlineAuction.Default). The
// replacement, if drafted after its own departure, is priced with pr.
func (l *Ledger) DefaultWinner(p PhoneID, now Slot, pr *Pricer) (*DefaultResult, error) {
	if !l.comp.enabled {
		return nil, ErrNotTracking
	}
	res, err := defaultWinner(&l.inst, &l.run, &l.comp, p, now, pr.Price)
	if err == nil {
		l.epoch++
	}
	return res, err
}

// Payable reports whether departing winner i should be paid (false for
// defaulted phones; always true with the lifecycle off).
func (l *Ledger) Payable(i PhoneID) bool { return l.comp.payable(i) }

// NotePaid records a payment issued to winner i at auction clock `now`
// so the outcome reports executed amounts. Concurrent calls for
// distinct phones are safe between mutations.
func (l *Ledger) NotePaid(i PhoneID, amount float64, now Slot) { l.comp.markPaid(i, amount, now) }

// Completion returns phone p's lifecycle view.
func (l *Ledger) Completion(p PhoneID) CompletionState { return l.comp.state(&l.run, p) }

// CompletionCounts returns aggregate lifecycle outcomes.
func (l *Ledger) CompletionCounts() CompletionCounts { return l.comp.counts }

// MarshalCompletions copies the lifecycle state for a snapshot (nil
// while tracking is off).
func (l *Ledger) MarshalCompletions() *CompletionSnapshot { return l.comp.marshal() }

// RestoreCompletions overwrites the lifecycle state from a snapshot.
// The caller must already have replayed the snapshot's default log
// through DefaultWinner so the allocation-side mutations are in place.
func (l *Ledger) RestoreCompletions(snap *CompletionSnapshot) error {
	return l.comp.restoreFrom(snap, len(l.inst.Bids))
}

// RecordUnserved records that a task arriving in slot t found no
// eligible phone. (The task keeps its NoPhone assignment and NoPhone
// runner-up from AddTask.)
func (l *Ledger) RecordUnserved(t Slot) { l.run.unserved[t]++ }

// view returns an Instance header over the live backing arrays (not a
// clone; do not hand to callers that may outlive a mutation).
func (l *Ledger) view() Instance { return l.inst }

// Instance returns a deep copy of the bids and tasks recorded so far.
func (l *Ledger) Instance() *Instance {
	in := l.inst
	return in.Clone()
}

// Outcome assembles the allocation recorded so far and prices every
// current winner with the given pricer.
func (l *Ledger) Outcome(p *Pricer) *Outcome {
	alloc := NewAllocation(l.NumTasks(), l.NumPhones())
	for k, ph := range l.run.byTask {
		if ph != NoPhone {
			alloc.Assign(TaskID(k), ph, l.inst.Tasks[k].Arrival)
		}
	}
	out := &Outcome{
		Allocation: alloc,
		Payments:   make([]float64, l.NumPhones()),
		Welfare:    alloc.Welfare(&l.inst),
	}
	for i, task := range l.run.phoneTask {
		if task == NoTask {
			continue
		}
		// Executed payments are final (see OnlineAuction.Outcome).
		if amount, ok := l.comp.settled(PhoneID(i)); ok {
			out.Payments[i] = amount
			continue
		}
		out.Payments[i] = p.Price(PhoneID(i))
	}
	return out
}

// Pricer computes critical-value payments for a ledger's winners with a
// fixed engine. Each Pricer owns its scratch, so several Pricers may
// price the same quiescent ledger concurrently (the sharded engine
// prices departures shard-parallel); a Pricer itself is not safe for
// concurrent use.
type Pricer struct {
	ledger *Ledger
	engine PaymentEngine
	m      *Metrics
	view   Instance
	epoch  uint64
	fresh  bool
	q      paymentQuery
}

// NewPricer creates a pricer over the ledger. A nil engine selects
// CascadePayments; metrics may be nil.
func (l *Ledger) NewPricer(engine PaymentEngine, m *Metrics) *Pricer {
	if engine == nil {
		engine = CascadePayments
	}
	return &Pricer{ledger: l, engine: engine, m: m}
}

// Engine returns the pricer's payment engine.
func (p *Pricer) Engine() PaymentEngine { return p.engine }

// Price returns winner i's critical-value payment under the ledger's
// current state. The oracle engines' arrivals index is cached across
// calls and rebuilt only after the ledger has grown.
func (p *Pricer) Price(i PhoneID) float64 {
	l := p.ledger
	if !p.fresh || p.epoch != l.epoch {
		p.view = l.view()
		p.q.idx = nil
		p.epoch = l.epoch
		p.fresh = true
	}
	p.q.in = &p.view
	p.q.run = &l.run
	p.q.m = p.m
	return p.engine.price(&p.q, i)
}
