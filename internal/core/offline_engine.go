package core

import (
	"fmt"

	"dynacrowd/internal/matching"
)

// OfflineEngine selects how OfflineMechanism computes the optimal
// allocation and the VCG payments. Mirroring PaymentEngine, every
// engine produces the optimal welfare and — up to tie-breaking among
// equal-weight optima — the same payments; they differ only in cost:
//
//   - IntervalOffline exploits the instance's interval structure: tasks
//     within a slot are interchangeable and edge weights depend only on
//     the phone, so allocation is a weight-ordered augmenting-path
//     greedy over slot capacities and every ω*(B₋ᵢ) follows from one
//     substitute query instead of a re-solve (docs/THEORY.md §6).
//     Near-linear in practice; the default.
//   - HungarianOffline is the literal dense O((n+γ)³) Hungarian solve
//     with O((n+γ)²) post-optimal dual queries per winner — the
//     differential oracle the fast engine is pinned against.
//   - FlowOffline and SSPOffline run the generic min-cost-flow and
//     successive-shortest-path matchers with one full re-solve per
//     winner — slow, independent cross-checks for the test battery.
//
// Engines are stateless and safe for concurrent use.
type OfflineEngine interface {
	// Name returns a short identifier ("interval", "hungarian", ...).
	Name() string
	// run computes the welfare-optimal allocation and VCG payments for a
	// validated instance.
	run(in *Instance) (*Outcome, error)
	// welfare computes only ω*(B) for a validated instance.
	welfare(in *Instance) float64
}

// The package-level engine instances. IntervalOffline is the default
// used by OfflineMechanism when none is selected.
var (
	IntervalOffline  OfflineEngine = intervalOfflineEngine{}
	HungarianOffline OfflineEngine = hungarianOfflineEngine{}
	FlowOffline      OfflineEngine = matcherOfflineEngine{name: "flow", match: matching.MaxWeightMatchingFlow}
	SSPOffline       OfflineEngine = matcherOfflineEngine{name: "ssp", match: matching.MaxWeightMatchingSSP}
)

// OfflineEngineByName resolves a CLI/config engine name. The empty
// string selects the default (interval) engine.
func OfflineEngineByName(name string) (OfflineEngine, error) {
	switch name {
	case "", "interval":
		return IntervalOffline, nil
	case "hungarian":
		return HungarianOffline, nil
	case "flow":
		return FlowOffline, nil
	case "ssp":
		return SSPOffline, nil
	default:
		return nil, fmt.Errorf("unknown offline engine %q (want interval, hungarian, flow, or ssp)", name)
	}
}

// intervalOfflineEngine is the fast path: it collapses the tasks×phones
// matching into the interval-capacity problem matching.SolveInterval
// solves (phones are items with window [arrival, departure] and weight
// ν − b; slot capacities are the per-slot task counts) and prices every
// winner from one substitute-weight sweep:
//
//	p_i = ω*(B) + b_i − ω*(B₋ᵢ) = ν − w(best substitute)   (ν if none).
type intervalOfflineEngine struct{}

func (intervalOfflineEngine) Name() string { return "interval" }

func offlineItems(in *Instance) []matching.IntervalItem {
	items := make([]matching.IntervalItem, len(in.Bids))
	for i, b := range in.Bids {
		items[i] = matching.IntervalItem{Lo: int(b.Arrival), Hi: int(b.Departure), Weight: in.Value - b.Cost}
	}
	return items
}

func (intervalOfflineEngine) solve(in *Instance) *matching.IntervalAssignment {
	m := int(in.Slots)
	capacity := make([]int, m+1)
	for _, tk := range in.Tasks {
		capacity[tk.Arrival]++
	}
	return matching.SolveInterval(m, capacity, offlineItems(in))
}

func (e intervalOfflineEngine) run(in *Instance) (*Outcome, error) {
	asg := e.solve(in)

	// Tasks are arrival-sorted (Validate), so slot t's tasks occupy the
	// contiguous index range [start[t], start[t+1]); hand them out to
	// that slot's winners in phone-id order.
	m := int(in.Slots)
	start := make([]int, m+2)
	for _, tk := range in.Tasks {
		start[int(tk.Arrival)+1]++
	}
	for t := 1; t <= m+1; t++ {
		start[t] += start[t-1]
	}
	alloc := NewAllocation(in.NumTasks(), in.NumPhones())
	cursor := start
	for i, t := range asg.SlotOf {
		if t == matching.Unmatched {
			continue
		}
		task := cursor[t]
		cursor[t]++
		alloc.Assign(TaskID(task), PhoneID(i), Slot(t))
	}

	out := &Outcome{
		Allocation: alloc,
		Payments:   make([]float64, in.NumPhones()),
		Welfare:    asg.Weight,
	}
	sub := asg.SubstituteWeights()
	for i, t := range asg.SlotOf {
		if t != matching.Unmatched {
			out.Payments[i] = in.Value - sub[i]
		}
	}
	return out, nil
}

func (e intervalOfflineEngine) welfare(in *Instance) float64 {
	return e.solve(in).Weight
}

// hungarianOfflineEngine is the PR-seed algorithm kept verbatim as the
// differential oracle: dense Hungarian solve, then each winner's
// ω*(B₋ᵢ) as a post-optimal dual query on the solved matching.
type hungarianOfflineEngine struct{}

func (hungarianOfflineEngine) Name() string { return "hungarian" }

func (hungarianOfflineEngine) run(in *Instance) (*Outcome, error) {
	sv := matching.NewSolver(in.NumTasks(), in.NumPhones(), weightFunc(in))
	alloc := NewAllocation(in.NumTasks(), in.NumPhones())
	res := sv.Result()
	for task, phone := range res.MatchLeft {
		if phone == matching.Unmatched {
			continue
		}
		alloc.Assign(TaskID(task), PhoneID(phone), in.Tasks[task].Arrival)
	}
	out := &Outcome{
		Allocation: alloc,
		Payments:   make([]float64, in.NumPhones()),
		Welfare:    res.Weight,
	}
	// VCG: p_i = ω*(B) + b_i − ω*(B₋ᵢ).
	for _, i := range alloc.Winners() {
		out.Payments[i] = res.Weight + in.Bids[i].Cost - sv.WeightWithoutRight(int(i))
	}
	return out, nil
}

func (hungarianOfflineEngine) welfare(in *Instance) float64 {
	return matching.MaxWeightMatching(in.NumTasks(), in.NumPhones(), weightFunc(in)).Weight
}

// matcherOfflineEngine adapts any generic matcher into an engine: one
// solve for the allocation and one reduced re-solve per winner for its
// payment. This is the legacy Matcher seam and the flow/ssp
// cross-checks.
type matcherOfflineEngine struct {
	name  string
	match func(numLeft, numRight int, w matching.WeightFunc) matching.Result
}

func (e matcherOfflineEngine) Name() string { return e.name }

func (e matcherOfflineEngine) run(in *Instance) (*Outcome, error) {
	alloc, welfare := solveWithMatcher(in, e.match)
	out := &Outcome{
		Allocation: alloc,
		Payments:   make([]float64, in.NumPhones()),
		Welfare:    welfare,
	}
	// VCG payments: for each winner i, re-solve without i. weightFunc
	// indexes bids positionally, so it applies unchanged to the reduced
	// instance.
	for _, i := range alloc.Winners() {
		reduced := in.WithoutPhone(i)
		wWithout := e.match(len(reduced.Tasks), len(reduced.Bids), weightFunc(reduced)).Weight
		out.Payments[i] = welfare + in.Bids[i].Cost - wWithout
	}
	return out, nil
}

func (e matcherOfflineEngine) welfare(in *Instance) float64 {
	return e.match(in.NumTasks(), in.NumPhones(), weightFunc(in)).Weight
}

func solveWithMatcher(in *Instance, match func(int, int, matching.WeightFunc) matching.Result) (*Allocation, float64) {
	res := match(in.NumTasks(), in.NumPhones(), weightFunc(in))
	alloc := NewAllocation(in.NumTasks(), in.NumPhones())
	for task, phone := range res.MatchLeft {
		if phone == matching.Unmatched {
			continue
		}
		alloc.Assign(TaskID(task), PhoneID(phone), in.Tasks[task].Arrival)
	}
	return alloc, res.Weight
}
