package core_test

import (
	"fmt"
	"sync"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// engines returns the mechanism under every payment engine. The first
// entry is the incremental cascade default; the rest replay Algorithm 2.
func engines() []*core.OnlineMechanism {
	return []*core.OnlineMechanism{
		{},
		{Payments: core.OraclePayments},
		{Payments: core.ParallelPayments(0)},
		{Payments: core.ParallelPayments(2)},
	}
}

// TestCascadeMatchesOracleSweep is the differential acceptance gate: on
// 200+ seeded rounds spanning scarcity regimes and both reserve-price
// modes, every engine must produce bit-identical payments (and identical
// allocations) to the literal per-winner Algorithm 2 re-run.
func TestCascadeMatchesOracleSweep(t *testing.T) {
	mechs := engines()
	rounds := 0
	for _, slots := range []core.Slot{25, 50} {
		for _, phoneRate := range []float64{2, 6} {
			for _, taskRate := range []float64{3, 6} {
				for _, atLoss := range []bool{false, true} {
					scn := workload.DefaultScenario()
					scn.Slots = slots
					scn.PhoneRate = phoneRate
					scn.TaskRate = taskRate
					scn.AllocateAtLoss = atLoss
					name := fmt.Sprintf("m=%d/phones=%g/tasks=%g/atLoss=%v", slots, phoneRate, taskRate, atLoss)
					t.Run(name, func(t *testing.T) {
						for seed := uint64(1); seed <= 13; seed++ {
							in, err := scn.Generate(seed)
							if err != nil {
								t.Fatalf("generate seed %d: %v", seed, err)
							}
							ref, err := mechs[1].Run(in) // oracle
							if err != nil {
								t.Fatalf("oracle seed %d: %v", seed, err)
							}
							for _, mech := range mechs {
								out, err := mech.Run(in)
								if err != nil {
									t.Fatalf("%s seed %d: %v", mech.Name(), seed, err)
								}
								if out.Welfare != ref.Welfare {
									t.Fatalf("%s seed %d: welfare %g, oracle %g", mech.Name(), seed, out.Welfare, ref.Welfare)
								}
								for i := range ref.Payments {
									if out.Payments[i] != ref.Payments[i] {
										t.Fatalf("%s seed %d: phone %d paid %v, oracle %v",
											mech.Name(), seed, i, out.Payments[i], ref.Payments[i])
									}
								}
								for k := range ref.Allocation.ByTask {
									if out.Allocation.ByTask[k] != ref.Allocation.ByTask[k] {
										t.Fatalf("%s seed %d: task %d -> %d, oracle %d",
											mech.Name(), seed, k, out.Allocation.ByTask[k], ref.Allocation.ByTask[k])
									}
								}
							}
							rounds++
						}
					})
				}
			}
		}
	}
	if testing.Verbose() {
		t.Logf("compared %d rounds across %d engines", rounds, len(mechs))
	}
}

// TestPivotalWinnerPaysReserve: a winner whose removal leaves a task
// unserved is pivotal, and its critical value is the reserve ν.
func TestPivotalWinnerPaysReserve(t *testing.T) {
	in := &core.Instance{
		Slots: 3,
		Value: 30,
		Bids: []core.Bid{
			{Phone: 0, Arrival: 1, Departure: 2, Cost: 10},
		},
		Tasks: []core.Task{{ID: 0, Arrival: 1}},
	}
	for _, mech := range engines() {
		out, err := mech.Run(in)
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		if out.Payments[0] != 30 {
			t.Errorf("%s: pivotal winner paid %v, want reserve 30", mech.Name(), out.Payments[0])
		}
	}
}

// TestAtLossReserveUndercutsMax pins the AllocateAtLoss corner where a
// pivotal slot's reserve candidate ν is LOWER than the slot's remaining
// winner cost: Algorithm 2 prices an unserved slot at ν outright, it
// does not take a max with the surviving winners. Both phones win at a
// loss; removing either leaves one task unserved, so each one's slot
// candidate is ν=30 — below the other's cost — and the payment falls
// back to the winner's own bid.
func TestAtLossReserveUndercutsMax(t *testing.T) {
	in := &core.Instance{
		Slots: 2,
		Value: 30,
		Bids: []core.Bid{
			{Phone: 0, Arrival: 1, Departure: 1, Cost: 50},
			{Phone: 1, Arrival: 1, Departure: 1, Cost: 40},
		},
		Tasks:          []core.Task{{ID: 0, Arrival: 1}, {ID: 1, Arrival: 1}},
		AllocateAtLoss: true,
	}
	for _, mech := range engines() {
		out, err := mech.Run(in)
		if err != nil {
			t.Fatalf("%s: %v", mech.Name(), err)
		}
		if out.Payments[0] != 50 || out.Payments[1] != 40 {
			t.Errorf("%s: payments %v, want [50 40]", mech.Name(), out.Payments)
		}
	}
}

// TestEngineNames pins the mechanism naming scheme ablation tables key on.
func TestEngineNames(t *testing.T) {
	want := map[string]string{
		"":         "online-greedy",
		"cascade":  "online-greedy+cascade",
		"oracle":   "online-greedy+oracle",
		"parallel": "online-greedy+parallel",
	}
	for _, mech := range []*core.OnlineMechanism{
		{},
		{Payments: core.CascadePayments},
		{Payments: core.OraclePayments},
		{Payments: core.ParallelPayments(4)},
	} {
		key := ""
		if mech.Payments != nil {
			key = mech.Payments.Name()
		}
		if got := mech.Name(); got != want[key] {
			t.Errorf("Name() = %q, want %q", got, want[key])
		}
	}
}

// TestMechanismConcurrentUse hammers shared mechanism values from many
// goroutines (the sim package does exactly this), exercising the pooled
// scratch reuse under the race detector.
func TestMechanismConcurrentUse(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 25
	mechs := engines()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seed := uint64(1); seed <= 8; seed++ {
				in, err := scn.Generate(seed)
				if err != nil {
					errs <- err
					return
				}
				ref, err := mechs[1].Run(in)
				if err != nil {
					errs <- err
					return
				}
				mech := mechs[g%len(mechs)]
				out, err := mech.Run(in)
				if err != nil {
					errs <- err
					return
				}
				for i := range ref.Payments {
					if out.Payments[i] != ref.Payments[i] {
						errs <- fmt.Errorf("%s seed %d: phone %d paid %v, oracle %v",
							mech.Name(), seed, i, out.Payments[i], ref.Payments[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStreamEnginesAgree drives the streaming auction once per engine
// over the same input and checks the finalized payments agree slot by
// slot — the streaming cascade prices from retained state while the
// oracle replays the accumulated instance, so this crosses the two
// pricing paths at every departure.
func TestStreamEnginesAgree(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 30
	for seed := uint64(1); seed <= 5; seed++ {
		in, err := scn.Generate(seed)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		byArrival := make(map[core.Slot][]core.StreamBid)
		for _, b := range in.Bids {
			byArrival[b.Arrival] = append(byArrival[b.Arrival], core.StreamBid{Departure: b.Departure, Cost: b.Cost})
		}
		tasksAt := make(map[core.Slot]int)
		for _, task := range in.Tasks {
			tasksAt[task.Arrival]++
		}
		run := func(e core.PaymentEngine) map[core.PhoneID]float64 {
			oa, err := core.NewOnlineAuction(in.Slots, in.Value, in.AllocateAtLoss)
			if err != nil {
				t.Fatalf("auction: %v", err)
			}
			oa.SetPaymentEngine(e)
			paid := make(map[core.PhoneID]float64)
			for !oa.Done() {
				res, err := oa.Step(byArrival[oa.Now()+1], tasksAt[oa.Now()+1])
				if err != nil {
					t.Fatalf("step: %v", err)
				}
				for _, p := range res.Payments {
					paid[p.Phone] = p.Amount
				}
			}
			return paid
		}
		cascade := run(nil)
		oracle := run(core.OraclePayments)
		if len(cascade) != len(oracle) {
			t.Fatalf("seed %d: cascade paid %d phones, oracle %d", seed, len(cascade), len(oracle))
		}
		for p, amt := range oracle {
			if cascade[p] != amt {
				t.Fatalf("seed %d: phone %d cascade %v, oracle %v", seed, p, cascade[p], amt)
			}
		}
	}
}
