// Package market runs the reverse auction the way the paper describes
// its deployment: "executed round by round" (Section III-B). Each round
// is one mechanism execution; smartphones whose bids fail may re-enter
// later rounds (with a fresh active window but their intrinsic cost),
// modelling users who try again the next time their phone is idle.
//
// The package exists to study the long-run behaviour the paper claims in
// Section VI ("the mobile crowdsourcing system is stable even in the
// long run"): per-round welfare and overpayment under a persistent phone
// population.
package market

import (
	"fmt"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/sim"
	"dynacrowd/internal/workload"
)

// Config parameterizes a multi-round market simulation.
type Config struct {
	// Rounds is the number of consecutive auction rounds to run.
	Rounds int
	// Scenario generates each round's fresh arrivals (Table I model).
	Scenario workload.Scenario
	// Mechanism sells each round's tasks (nil: the online mechanism).
	Mechanism core.Mechanism
	// Seed drives all randomness (workload and re-entry).
	Seed uint64
	// ReturnProbability is the chance that a phone whose bid failed
	// re-enters the next round, keeping its intrinsic cost but drawing a
	// fresh active window. 0 disables carry-over; 1 means every loser
	// retries once more.
	ReturnProbability float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rounds < 1 {
		return fmt.Errorf("market: rounds %d < 1", c.Rounds)
	}
	if c.ReturnProbability < 0 || c.ReturnProbability > 1 {
		return fmt.Errorf("market: return probability %g outside [0,1]", c.ReturnProbability)
	}
	return c.Scenario.Validate()
}

// RoundRecord is the outcome of one market round.
type RoundRecord struct {
	Round     int // 1-based
	Returning int // phones carried over from the previous round
	Metrics   sim.RoundMetrics
}

// Result is a completed market simulation.
type Result struct {
	Rounds []RoundRecord
}

// MeanWelfare returns the average per-round social welfare.
func (r *Result) MeanWelfare() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	var s float64
	for _, rec := range r.Rounds {
		s += rec.Metrics.Welfare
	}
	return s / float64(len(r.Rounds))
}

// MeanOverpayment returns the average per-round overpayment ratio.
func (r *Result) MeanOverpayment() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	var s float64
	for _, rec := range r.Rounds {
		s += rec.Metrics.OverpaymentRatio
	}
	return s / float64(len(r.Rounds))
}

// OverpaymentDrift returns the absolute difference between the mean
// overpayment ratio of the first and second halves of the run — the
// stability statistic behind the paper's long-run claim. Small drift
// (relative to the mean) means the market neither inflates nor
// collapses as rounds accumulate.
func (r *Result) OverpaymentDrift() float64 {
	n := len(r.Rounds)
	if n < 2 {
		return 0
	}
	half := n / 2
	var a, b float64
	for i := 0; i < half; i++ {
		a += r.Rounds[i].Metrics.OverpaymentRatio
	}
	for i := half; i < n; i++ {
		b += r.Rounds[i].Metrics.OverpaymentRatio
	}
	a /= float64(half)
	b /= float64(n - half)
	if a > b {
		return a - b
	}
	return b - a
}

// Run executes the market simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mech := cfg.Mechanism
	if mech == nil {
		mech = &core.OnlineMechanism{}
	}
	rng := workload.NewRNG(cfg.Seed)

	res := &Result{}
	var carried []float64 // intrinsic costs of returning phones
	for round := 1; round <= cfg.Rounds; round++ {
		in, err := cfg.Scenario.Generate(rng.Uint64())
		if err != nil {
			return nil, err
		}
		returning := len(carried)
		in = withReturningPhones(in, carried, rng, cfg.Scenario)

		start := time.Now()
		out, err := mech.Run(in)
		if err != nil {
			return nil, fmt.Errorf("market: round %d: %w", round, err)
		}
		res.Rounds = append(res.Rounds, RoundRecord{
			Round:     round,
			Returning: returning,
			Metrics:   sim.Metrics(in, cfg.Seed, mech.Name(), out, time.Since(start)),
		})

		// Decide who retries next round.
		carried = carried[:0]
		for i, task := range out.Allocation.ByPhone {
			if task == core.NoTask && rng.Float64() < cfg.ReturnProbability {
				carried = append(carried, in.Bids[i].Cost)
			}
		}
	}
	return res, nil
}

// withReturningPhones merges carried-over phones (fresh windows, kept
// costs) into a generated round, preserving the bids-sorted-by-arrival
// invariant and dense PhoneIDs.
func withReturningPhones(in *core.Instance, costs []float64, rng *workload.RNG, scn workload.Scenario) *core.Instance {
	if len(costs) == 0 {
		return in
	}
	merged := in.Clone()
	bids := merged.Bids
	for _, cost := range costs {
		arrive := core.Slot(1 + rng.Intn(int(scn.Slots)))
		length := rng.UniformInt(1, 2*scn.MeanActiveLength-1)
		depart := arrive + core.Slot(length) - 1
		if depart > scn.Slots {
			depart = scn.Slots
		}
		bids = append(bids, core.Bid{Arrival: arrive, Departure: depart, Cost: cost})
	}
	// Stable re-sort by arrival, then renumber densely.
	for i := 1; i < len(bids); i++ {
		for j := i; j > 0 && bids[j].Arrival < bids[j-1].Arrival; j-- {
			bids[j], bids[j-1] = bids[j-1], bids[j]
		}
	}
	for i := range bids {
		bids[i].Phone = core.PhoneID(i)
	}
	merged.Bids = bids
	return merged
}
