package market

import (
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

func smallScenario() workload.Scenario {
	s := workload.DefaultScenario()
	s.Slots = 12
	s.PhoneRate = 3
	s.TaskRate = 2
	return s
}

func TestConfigValidate(t *testing.T) {
	good := Config{Rounds: 3, Scenario: smallScenario(), ReturnProbability: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Rounds: 0, Scenario: smallScenario()},
		{Rounds: 2, Scenario: smallScenario(), ReturnProbability: -0.1},
		{Rounds: 2, Scenario: smallScenario(), ReturnProbability: 1.5},
		{Rounds: 2, Scenario: workload.Scenario{}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := Run(c); err == nil {
			t.Errorf("case %d: Run accepted invalid config", i)
		}
	}
}

func TestRunProducesAllRounds(t *testing.T) {
	res, err := Run(Config{Rounds: 8, Scenario: smallScenario(), Seed: 1, ReturnProbability: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 8 {
		t.Fatalf("got %d rounds", len(res.Rounds))
	}
	for i, rec := range res.Rounds {
		if rec.Round != i+1 {
			t.Fatalf("round %d numbered %d", i, rec.Round)
		}
		if rec.Metrics.Mechanism != "online-greedy" {
			t.Fatalf("default mechanism = %q", rec.Metrics.Mechanism)
		}
		if rec.Metrics.Phones == 0 {
			t.Fatalf("round %d saw no phones", rec.Round)
		}
	}
	if res.Rounds[0].Returning != 0 {
		t.Fatal("first round cannot have returning phones")
	}
}

func TestReturningPhonesFlow(t *testing.T) {
	// With ReturnProbability 1 every loser re-enters; later rounds must
	// report carried-over phones (the workload always produces losers at
	// these rates: ~36 phones for ~24 tasks).
	res, err := Run(Config{Rounds: 5, Scenario: smallScenario(), Seed: 2, ReturnProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, rec := range res.Rounds[1:] {
		total += rec.Returning
	}
	if total == 0 {
		t.Fatal("no phones ever returned despite probability 1")
	}
	// And with probability 0, nobody ever returns.
	res0, err := Run(Config{Rounds: 5, Scenario: smallScenario(), Seed: 2, ReturnProbability: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res0.Rounds {
		if rec.Returning != 0 {
			t.Fatal("phones returned despite probability 0")
		}
	}
}

func TestReturningPhonesIncreasePopulation(t *testing.T) {
	with, err := Run(Config{Rounds: 6, Scenario: smallScenario(), Seed: 3, ReturnProbability: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range with.Rounds[1:] {
		if rec.Returning > 0 && rec.Metrics.Phones <= rec.Returning {
			t.Fatalf("round %d: %d phones but %d returning", rec.Round, rec.Metrics.Phones, rec.Returning)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Rounds: 4, Scenario: smallScenario(), Seed: 7, ReturnProbability: 0.7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		if a.Rounds[i].Metrics.Welfare != b.Rounds[i].Metrics.Welfare {
			t.Fatal("same seed diverged")
		}
	}
}

func TestAggregates(t *testing.T) {
	empty := &Result{}
	if empty.MeanWelfare() != 0 || empty.MeanOverpayment() != 0 || empty.OverpaymentDrift() != 0 {
		t.Fatal("empty result aggregates must be zero")
	}

	res, err := Run(Config{Rounds: 10, Scenario: smallScenario(), Seed: 4, ReturnProbability: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanWelfare() <= 0 {
		t.Fatalf("mean welfare %g", res.MeanWelfare())
	}
	if res.MeanOverpayment() <= 0 {
		t.Fatalf("mean overpayment %g", res.MeanOverpayment())
	}
}

// TestLongRunStability reproduces the paper's Section VI claim: the
// overpayment ratio stays stable over many rounds (no drift between the
// first and second half of a 30-round market).
func TestLongRunStability(t *testing.T) {
	scn := workload.DefaultScenario()
	scn.Slots = 25 // half scale keeps the test fast
	res, err := Run(Config{Rounds: 30, Scenario: scn, Seed: 5, ReturnProbability: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	drift := res.OverpaymentDrift()
	mean := res.MeanOverpayment()
	if drift > 0.25*mean {
		t.Fatalf("overpayment drifted %.3f against mean %.3f (> 25%%)", drift, mean)
	}
}

func TestOfflineMechanismInMarket(t *testing.T) {
	res, err := Run(Config{
		Rounds:    3,
		Scenario:  smallScenario(),
		Seed:      6,
		Mechanism: &core.OfflineMechanism{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Rounds {
		if rec.Metrics.Mechanism != "offline-vcg" {
			t.Fatalf("mechanism = %q", rec.Metrics.Mechanism)
		}
	}
}

// TestMergedInstancesValid: the carry-over merge preserves instance
// invariants (dense IDs, arrival-sorted bids).
func TestMergedInstancesValid(t *testing.T) {
	scn := smallScenario()
	rng := workload.NewRNG(9)
	in, err := scn.Generate(11)
	if err != nil {
		t.Fatal(err)
	}
	merged := withReturningPhones(in, []float64{3, 17, 9}, rng, scn)
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged instance invalid: %v", err)
	}
	if merged.NumPhones() != in.NumPhones()+3 {
		t.Fatalf("merged %d phones, want %d", merged.NumPhones(), in.NumPhones()+3)
	}
	for i := 1; i < len(merged.Bids); i++ {
		if merged.Bids[i].Arrival < merged.Bids[i-1].Arrival {
			t.Fatal("merged bids out of arrival order")
		}
	}
	// The original instance must be untouched.
	if err := in.Validate(); err != nil {
		t.Fatal("original instance corrupted")
	}
}
