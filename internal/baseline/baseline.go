// Package baseline implements reference mechanisms the paper compares
// against or rules out, used by benchmarks and by the truthfulness test
// suite as negative controls:
//
//   - SecondPricePerSlot: the natural per-slot second-price auction the
//     paper's Section V-C proves untruthful (a phone can gain by delaying
//     its reported arrival — Fig. 5).
//   - FirstPricePerSlot: greedy allocation paying each winner its own
//     claimed cost (pay-as-bid; untruthful in cost).
//   - Random: uniform random allocation among active phones, pay-as-bid.
//   - GreedyByCost: an offline heuristic that scans phones by ascending
//     cost and assigns each to any still-open task in its window; cheaper
//     than the Hungarian optimum but suboptimal.
//
// All types implement core.Mechanism.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"dynacrowd/internal/core"
	"dynacrowd/internal/stats"
)

// slotPool drives the shared slot-by-slot scaffolding: it calls allocate
// once per slot with the IDs of the active, still-free, eligible phones
// (sorted by ascending claimed cost) and the indices of the tasks arriving
// that slot. allocate returns the chosen phone for each task (or NoPhone).
func slotPool(in *core.Instance, allocate func(t core.Slot, active []core.PhoneID, tasks []core.TaskID) []core.PhoneID) (*core.Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	alloc := core.NewAllocation(in.NumTasks(), in.NumPhones())
	taken := make([]bool, in.NumPhones())
	ti := 0
	for t := core.Slot(1); t <= in.Slots; t++ {
		var tasks []core.TaskID
		for ; ti < len(in.Tasks) && in.Tasks[ti].Arrival == t; ti++ {
			tasks = append(tasks, core.TaskID(ti))
		}
		if len(tasks) == 0 {
			continue
		}
		var active []core.PhoneID
		for i, b := range in.Bids {
			if taken[i] || !b.Covers(t) {
				continue
			}
			if !in.AllocateAtLoss && b.Cost >= in.Value {
				continue
			}
			active = append(active, core.PhoneID(i))
		}
		sort.Slice(active, func(x, y int) bool {
			bx, by := in.Bids[active[x]], in.Bids[active[y]]
			if bx.Cost != by.Cost {
				return bx.Cost < by.Cost
			}
			return active[x] < active[y]
		})
		chosen := allocate(t, active, tasks)
		if len(chosen) != len(tasks) {
			return nil, fmt.Errorf("baseline: allocate returned %d phones for %d tasks", len(chosen), len(tasks))
		}
		for k, p := range chosen {
			if p == core.NoPhone {
				continue
			}
			alloc.Assign(tasks[k], p, t)
			taken[p] = true
		}
	}
	return alloc, nil
}

// SecondPricePerSlot allocates greedily like the online mechanism but
// pays each slot's winners the first losing claimed cost in that slot
// (the (r_t+1)-th cheapest active bid), or the reserve ν when the slot
// had no losing bid. The paper shows this payment rule is NOT
// time-truthful: delaying a reported arrival into a slot with weaker
// competition can raise the payment (Fig. 5).
type SecondPricePerSlot struct{}

// Name implements core.Mechanism.
func (s *SecondPricePerSlot) Name() string { return "second-price-per-slot" }

// Run implements core.Mechanism.
func (s *SecondPricePerSlot) Run(in *core.Instance) (*core.Outcome, error) {
	payments := make([]float64, in.NumPhones())
	alloc, err := slotPool(in, func(t core.Slot, active []core.PhoneID, tasks []core.TaskID) []core.PhoneID {
		chosen := make([]core.PhoneID, len(tasks))
		clearing := in.Value // price when competition is exhausted
		if len(active) > len(tasks) {
			clearing = in.Bids[active[len(tasks)]].Cost
		}
		for k := range tasks {
			if k < len(active) {
				chosen[k] = active[k]
				payments[active[k]] = clearing
			} else {
				chosen[k] = core.NoPhone
			}
		}
		return chosen
	})
	if err != nil {
		return nil, fmt.Errorf("second-price: %w", err)
	}
	return &core.Outcome{Allocation: alloc, Payments: payments, Welfare: alloc.Welfare(in)}, nil
}

// FirstPricePerSlot allocates greedily and pays each winner its own
// claimed cost (pay-as-bid). Truthful phones earn zero utility, so in
// practice phones shade bids upward; it serves as the overpayment floor.
type FirstPricePerSlot struct{}

// Name implements core.Mechanism.
func (f *FirstPricePerSlot) Name() string { return "first-price-per-slot" }

// Run implements core.Mechanism.
func (f *FirstPricePerSlot) Run(in *core.Instance) (*core.Outcome, error) {
	payments := make([]float64, in.NumPhones())
	alloc, err := slotPool(in, func(t core.Slot, active []core.PhoneID, tasks []core.TaskID) []core.PhoneID {
		chosen := make([]core.PhoneID, len(tasks))
		for k := range tasks {
			if k < len(active) {
				chosen[k] = active[k]
				payments[active[k]] = in.Bids[active[k]].Cost
			} else {
				chosen[k] = core.NoPhone
			}
		}
		return chosen
	})
	if err != nil {
		return nil, fmt.Errorf("first-price: %w", err)
	}
	return &core.Outcome{Allocation: alloc, Payments: payments, Welfare: alloc.Welfare(in)}, nil
}

// Random allocates each slot's tasks to uniformly random eligible phones
// and pays claimed costs. It bounds the welfare loss of ignoring prices.
type Random struct {
	// Seed makes runs reproducible; the zero value is a valid seed.
	Seed int64
}

// Name implements core.Mechanism.
func (r *Random) Name() string { return "random" }

// Run implements core.Mechanism.
func (r *Random) Run(in *core.Instance) (*core.Outcome, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	payments := make([]float64, in.NumPhones())
	alloc, err := slotPool(in, func(t core.Slot, active []core.PhoneID, tasks []core.TaskID) []core.PhoneID {
		rng.Shuffle(len(active), func(x, y int) { active[x], active[y] = active[y], active[x] })
		chosen := make([]core.PhoneID, len(tasks))
		for k := range tasks {
			if k < len(active) {
				chosen[k] = active[k]
				payments[active[k]] = in.Bids[active[k]].Cost
			} else {
				chosen[k] = core.NoPhone
			}
		}
		return chosen
	})
	if err != nil {
		return nil, fmt.Errorf("random: %w", err)
	}
	return &core.Outcome{Allocation: alloc, Payments: payments, Welfare: alloc.Welfare(in)}, nil
}

// GreedyByCost is an offline heuristic: scan all bids in ascending cost
// order and give each phone the earliest still-open task inside its
// window. It runs in O(n log n + nγ) instead of the Hungarian O((n+γ)³)
// and is the ablation point for "how much does optimal matching buy".
// Winners are paid their claimed costs.
type GreedyByCost struct{}

// Name implements core.Mechanism.
func (g *GreedyByCost) Name() string { return "greedy-by-cost" }

// Run implements core.Mechanism.
func (g *GreedyByCost) Run(in *core.Instance) (*core.Outcome, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("greedy-by-cost: %w", err)
	}
	order := make([]core.PhoneID, in.NumPhones())
	for i := range order {
		order[i] = core.PhoneID(i)
	}
	sort.Slice(order, func(x, y int) bool {
		bx, by := in.Bids[order[x]], in.Bids[order[y]]
		if bx.Cost != by.Cost {
			return bx.Cost < by.Cost
		}
		return order[x] < order[y]
	})
	alloc := core.NewAllocation(in.NumTasks(), in.NumPhones())
	payments := make([]float64, in.NumPhones())
	for _, i := range order {
		b := in.Bids[i]
		if !in.AllocateAtLoss && b.Cost >= in.Value {
			continue
		}
		for k, task := range in.Tasks {
			if alloc.ByTask[k] != core.NoPhone || !b.Covers(task.Arrival) {
				continue
			}
			alloc.Assign(core.TaskID(k), i, task.Arrival)
			payments[i] = b.Cost
			break
		}
	}
	return &core.Outcome{Allocation: alloc, Payments: payments, Welfare: alloc.Welfare(in)}, nil
}

// PostedPrice is the classic take-it-or-leave-it mechanism: the platform
// posts a fixed per-task price P; each slot, arriving tasks go to
// active phones whose claimed cost is at most P — rationed by phone ID
// (arrival order), NOT by reported cost — and every winner is paid
// exactly P.
//
// The rationing rule matters: allocating to the *cheapest* eligible
// phones would make the allocation depend on the reports and reopen a
// misreport channel (underbid to jump the queue at no payment risk —
// this package's tests demonstrate the attack against that variant).
// With report-independent rationing the report only controls
// eligibility, so claiming b ≠ c either forfeits a profitable trade or
// buys an unprofitable one: truthful. The price of this simplicity is
// welfare (phones between P and ν never serve) and overpayment pinned
// at P for every winner; the baseline experiments use it to anchor that
// trade-off.
type PostedPrice struct {
	// Price is the posted per-task payment P. Only phones with claimed
	// cost ≤ P are eligible; each winner is paid P.
	Price float64
}

// Name implements core.Mechanism.
func (p *PostedPrice) Name() string { return fmt.Sprintf("posted-price-%g", p.Price) }

// Run implements core.Mechanism.
func (p *PostedPrice) Run(in *core.Instance) (*core.Outcome, error) {
	if p.Price < 0 {
		return nil, fmt.Errorf("posted-price: negative price %g", p.Price)
	}
	payments := make([]float64, in.NumPhones())
	alloc, err := slotPool(in, func(t core.Slot, active []core.PhoneID, tasks []core.TaskID) []core.PhoneID {
		// Report-independent rationing: eligible phones in ID (arrival)
		// order, regardless of how cheap they claim to be.
		eligible := make([]core.PhoneID, 0, len(active))
		for _, phone := range active {
			if in.Bids[phone].Cost <= p.Price {
				eligible = append(eligible, phone)
			}
		}
		sort.Slice(eligible, func(x, y int) bool { return eligible[x] < eligible[y] })
		chosen := make([]core.PhoneID, len(tasks))
		for k := range chosen {
			if k < len(eligible) {
				chosen[k] = eligible[k]
				payments[eligible[k]] = p.Price
			} else {
				chosen[k] = core.NoPhone
			}
		}
		return chosen
	})
	if err != nil {
		return nil, fmt.Errorf("posted-price: %w", err)
	}
	return &core.Outcome{Allocation: alloc, Payments: payments, Welfare: alloc.Welfare(in)}, nil
}

// AdaptivePostedPrice removes PostedPrice's clairvoyance: it treats the
// first ObserveFraction of the round as observation-only (no
// allocations), posts the median cost of the *sample* scaled by Markup,
// and then runs a PostedPrice market for the rest of the round.
//
// Choosing the sample is where truthfulness lives or dies, and in the
// dynamic-arrival model both obvious choices fail (this package's tests
// document the attacks):
//
//   - sampling every bid seen during the window lets a phone that can
//     still win later inflate its observed bid to raise its own price;
//   - excluding sampled phones by *reported arrival* is escaped by the
//     legal arrival-delay misreport (report ã just past the window).
//
// The robust rule keyed to the one-sided misreport space: the sample is
// the bids whose *reported departure* lies inside the observation
// window. Such phones can never win (sales only start after the window,
// when their reported availability has ended), so their reports cannot
// buy them anything; and since departures can only be advanced, a phone
// that could win cannot be forced into the sample, while joining it
// voluntarily just forfeits the round. Every potential buyer therefore
// faces a price its own report cannot move. Rationing among eligible
// phones is by ID, as in PostedPrice.
type AdaptivePostedPrice struct {
	// ObserveFraction of the round is observation-only (default 0.2 when
	// zero; must stay in (0, 1)).
	ObserveFraction float64
	// Markup scales the observed median into the posted price
	// (default 1.5 when zero).
	Markup float64
}

// Name implements core.Mechanism.
func (a *AdaptivePostedPrice) Name() string { return "adaptive-posted-price" }

func (a *AdaptivePostedPrice) params() (float64, float64) {
	frac, markup := a.ObserveFraction, a.Markup
	if frac == 0 {
		frac = 0.2
	}
	if markup == 0 {
		markup = 1.5
	}
	return frac, markup
}

// Run implements core.Mechanism.
func (a *AdaptivePostedPrice) Run(in *core.Instance) (*core.Outcome, error) {
	frac, markup := a.params()
	if frac <= 0 || frac >= 1 {
		return nil, fmt.Errorf("adaptive-posted-price: observe fraction %g outside (0,1)", frac)
	}
	if markup <= 0 {
		return nil, fmt.Errorf("adaptive-posted-price: non-positive markup %g", markup)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("adaptive-posted-price: %w", err)
	}
	observeUntil := core.Slot(float64(in.Slots) * frac)

	var observed []float64
	for _, b := range in.Bids {
		if b.Departure <= observeUntil {
			observed = append(observed, b.Cost)
		}
	}
	price := in.Value / 2 // fallback when nothing was observed
	if len(observed) > 0 {
		price = stats.Quantile(observed, 0.5) * markup
	}
	if price > in.Value {
		price = in.Value
	}

	payments := make([]float64, in.NumPhones())
	alloc, err := slotPool(in, func(t core.Slot, active []core.PhoneID, tasks []core.TaskID) []core.PhoneID {
		chosen := make([]core.PhoneID, len(tasks))
		for k := range chosen {
			chosen[k] = core.NoPhone
		}
		if t <= observeUntil {
			return chosen // observation phase: tasks go unserved
		}
		eligible := make([]core.PhoneID, 0, len(active))
		for _, phone := range active {
			// Sampled phones need no explicit exclusion: a reported
			// departure inside the observation window means the phone is
			// no longer active in any selling slot.
			if in.Bids[phone].Cost <= price {
				eligible = append(eligible, phone)
			}
		}
		sort.Slice(eligible, func(x, y int) bool { return eligible[x] < eligible[y] })
		for k := range chosen {
			if k < len(eligible) {
				chosen[k] = eligible[k]
				payments[eligible[k]] = price
			}
		}
		return chosen
	})
	if err != nil {
		return nil, fmt.Errorf("adaptive-posted-price: %w", err)
	}
	return &core.Outcome{Allocation: alloc, Payments: payments, Welfare: alloc.Welfare(in)}, nil
}
