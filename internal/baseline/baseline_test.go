package baseline

import (
	"math/rand"
	"testing"

	"dynacrowd/internal/core"
)

// paperInstance mirrors core's reconstruction of the paper's Fig. 4/5
// example (see core package tests for the derivation).
func paperInstance() *core.Instance {
	in := &core.Instance{Slots: 5, Value: 20}
	windows := [][2]core.Slot{{2, 5}, {1, 4}, {3, 5}, {4, 5}, {2, 2}, {3, 5}, {1, 3}}
	costs := []float64{3, 5, 11, 9, 4, 8, 6}
	for i := range windows {
		in.Bids = append(in.Bids, core.Bid{
			Phone: core.PhoneID(i), Arrival: windows[i][0], Departure: windows[i][1], Cost: costs[i],
		})
	}
	for k := 0; k < 5; k++ {
		in.Tasks = append(in.Tasks, core.Task{ID: core.TaskID(k), Arrival: core.Slot(k + 1)})
	}
	return in
}

func run(t *testing.T, m core.Mechanism, in *core.Instance) *core.Outcome {
	t.Helper()
	out, err := m.Run(in)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	if err := out.Allocation.Validate(in); err != nil {
		t.Fatalf("%s produced infeasible allocation: %v", m.Name(), err)
	}
	return out
}

func TestNames(t *testing.T) {
	for _, tc := range []struct {
		m    core.Mechanism
		want string
	}{
		{&SecondPricePerSlot{}, "second-price-per-slot"},
		{&FirstPricePerSlot{}, "first-price-per-slot"},
		{&Random{}, "random"},
		{&GreedyByCost{}, "greedy-by-cost"},
	} {
		if got := tc.m.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestAllRejectInvalidInstance(t *testing.T) {
	bad := paperInstance()
	bad.Bids[0].Arrival = 0
	for _, m := range []core.Mechanism{
		&SecondPricePerSlot{}, &FirstPricePerSlot{}, &Random{}, &GreedyByCost{},
	} {
		if _, err := m.Run(bad); err == nil {
			t.Errorf("%s accepted an invalid instance", m.Name())
		}
	}
}

// TestSecondPricePaperFig5a replays Fig. 5(a): with truthful reports,
// phone 2 (paper numbering) wins slot 1 and is paid 6; phone 1 wins
// slot 2 and is paid 4.
func TestSecondPricePaperFig5a(t *testing.T) {
	in := paperInstance()
	out := run(t, &SecondPricePerSlot{}, in)
	if out.Allocation.ByTask[0] != 1 {
		t.Fatalf("slot 1 winner = phone %d, want 1 (paper phone 2)", out.Allocation.ByTask[0])
	}
	if out.Payments[1] != 6 {
		t.Fatalf("paper phone 2 paid %g, want 6", out.Payments[1])
	}
	if out.Allocation.ByTask[1] != 0 {
		t.Fatalf("slot 2 winner = phone %d, want 0 (paper phone 1)", out.Allocation.ByTask[1])
	}
	if out.Payments[0] != 4 {
		t.Fatalf("paper phone 1 paid %g, want 4", out.Payments[0])
	}
}

// TestPaperFig5SecondPriceUntruthful reproduces the paper's
// counterexample: under the per-slot second-price rule, paper phone 1
// (real window [2,5], cost 3) raises its utility from 1 to 5 by delaying
// its reported arrival to slot 4.
func TestPaperFig5SecondPriceUntruthful(t *testing.T) {
	in := paperInstance()
	sp := &SecondPricePerSlot{}
	truthful := run(t, sp, in)
	uTruth := truthful.Utility(0, 3)
	if uTruth != 1 {
		t.Fatalf("truthful utility = %g, want 1 (paid 4, cost 3)", uTruth)
	}

	delayed := in.Clone()
	delayed.Bids[0].Arrival = 4
	delayed.Bids[0].Departure = 5
	outDelayed := run(t, sp, delayed)
	if got := outDelayed.Payments[0]; got != 8 {
		t.Fatalf("delayed payment = %g, want 8", got)
	}
	uDelayed := outDelayed.Utility(0, 3)
	if uDelayed != 5 {
		t.Fatalf("delayed utility = %g, want 5", uDelayed)
	}
	if uDelayed <= uTruth {
		t.Fatal("counterexample vanished: delaying did not increase utility")
	}
}

// randomInstance mirrors the core test generator.
func randomInstance(rng *rand.Rand, maxPhones, maxTasks int, m core.Slot, value float64) *core.Instance {
	in := &core.Instance{Slots: m, Value: value}
	n := 1 + rng.Intn(maxPhones)
	for i := 0; i < n; i++ {
		a := core.Slot(1 + rng.Intn(int(m)))
		d := a + core.Slot(rng.Intn(int(m-a)+1))
		in.Bids = append(in.Bids, core.Bid{Phone: core.PhoneID(i), Arrival: a, Departure: d, Cost: rng.Float64() * value * 1.2})
	}
	numTasks := rng.Intn(maxTasks + 1)
	arr := make([]int, numTasks)
	for k := range arr {
		arr[k] = 1 + rng.Intn(int(m))
	}
	for i := 1; i < len(arr); i++ {
		for j := i; j > 0 && arr[j] < arr[j-1]; j-- {
			arr[j], arr[j-1] = arr[j-1], arr[j]
		}
	}
	for k, a := range arr {
		in.Tasks = append(in.Tasks, core.Task{ID: core.TaskID(k), Arrival: core.Slot(a)})
	}
	return in
}

// TestSecondPriceAllocationMatchesOnline: second-price uses the same
// greedy allocation as the online mechanism, so welfare must match.
func TestSecondPriceAllocationMatchesOnline(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	on := &core.OnlineMechanism{}
	sp := &SecondPricePerSlot{}
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 10, 10, 8, 50)
		a := run(t, on, in)
		b := run(t, sp, in)
		if a.Welfare != b.Welfare {
			t.Fatalf("trial %d: online welfare %g != second-price welfare %g", trial, a.Welfare, b.Welfare)
		}
	}
}

// TestSecondPricePaysAtLeastBid: winners never receive less than their
// claimed cost (the clearing price is the first losing bid or reserve).
func TestSecondPricePaysAtLeastBid(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	sp := &SecondPricePerSlot{}
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 10, 10, 8, 50)
		out := run(t, sp, in)
		for _, i := range out.Allocation.Winners() {
			if out.Payments[i] < in.Bids[i].Cost-1e-9 {
				t.Fatalf("trial %d: winner %d paid %g < bid %g", trial, i, out.Payments[i], in.Bids[i].Cost)
			}
		}
	}
}

// TestFirstPriceZeroOverpayment: pay-as-bid yields zero overpayment on
// truthful bids by construction.
func TestFirstPriceZeroOverpayment(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	fp := &FirstPricePerSlot{}
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 10, 10, 8, 50)
		out := run(t, fp, in)
		if got := out.OverpaymentRatio(in); got > 1e-9 || got < -1e-9 {
			t.Fatalf("trial %d: overpayment ratio %g, want 0", trial, got)
		}
	}
}

// TestRandomDeterministicPerSeed: the same seed reproduces the outcome,
// different seeds may differ.
func TestRandomDeterministicPerSeed(t *testing.T) {
	in := paperInstance()
	a := run(t, &Random{Seed: 7}, in)
	b := run(t, &Random{Seed: 7}, in)
	for k := range a.Allocation.ByTask {
		if a.Allocation.ByTask[k] != b.Allocation.ByTask[k] {
			t.Fatal("same seed produced different allocations")
		}
	}
}

// TestRandomWelfareAtMostOptimal: random never beats the VCG optimum.
func TestRandomWelfareAtMostOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	of := &core.OfflineMechanism{}
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 10, 10, 8, 50)
		r := run(t, &Random{Seed: int64(trial)}, in)
		opt, err := of.Welfare(in)
		if err != nil {
			t.Fatal(err)
		}
		if r.Welfare > opt+1e-9 {
			t.Fatalf("trial %d: random welfare %g beats optimum %g", trial, r.Welfare, opt)
		}
	}
}

// TestGreedyByCostBetweenHalfAndOptimal: the cost-ordered greedy is also
// within [opt/2, opt] (it is a maximal matching in the exchange-argument
// sense on profitable edges).
func TestGreedyByCostBetweenHalfAndOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	of := &core.OfflineMechanism{}
	g := &GreedyByCost{}
	for trial := 0; trial < 60; trial++ {
		in := randomInstance(rng, 10, 10, 8, 50)
		out := run(t, g, in)
		opt, err := of.Welfare(in)
		if err != nil {
			t.Fatal(err)
		}
		if out.Welfare > opt+1e-9 {
			t.Fatalf("trial %d: greedy welfare %g beats optimum %g", trial, out.Welfare, opt)
		}
		if out.Welfare < opt/2-1e-9 {
			t.Fatalf("trial %d: greedy welfare %g below half of optimum %g", trial, out.Welfare, opt)
		}
	}
}

// TestScarcityLeavesTasksUnserved: with one phone and three tasks, every
// baseline serves exactly one task.
func TestScarcityLeavesTasksUnserved(t *testing.T) {
	in := &core.Instance{
		Slots: 3, Value: 10,
		Bids: []core.Bid{{Phone: 0, Arrival: 1, Departure: 3, Cost: 2}},
		Tasks: []core.Task{
			{ID: 0, Arrival: 1}, {ID: 1, Arrival: 2}, {ID: 2, Arrival: 3},
		},
	}
	for _, m := range []core.Mechanism{
		&SecondPricePerSlot{}, &FirstPricePerSlot{}, &Random{}, &GreedyByCost{},
	} {
		out := run(t, m, in)
		if out.Allocation.NumServed() != 1 {
			t.Errorf("%s served %d tasks, want 1", m.Name(), out.Allocation.NumServed())
		}
	}
}

// TestPostedPriceEligibility: only phones at or below the posted price
// win, and all winners are paid exactly the price.
func TestPostedPriceEligibility(t *testing.T) {
	in := &core.Instance{
		Slots: 1, Value: 100,
		Bids: []core.Bid{
			{Phone: 0, Arrival: 1, Departure: 1, Cost: 5},
			{Phone: 1, Arrival: 1, Departure: 1, Cost: 15},
			{Phone: 2, Arrival: 1, Departure: 1, Cost: 9},
		},
		Tasks: []core.Task{{ID: 0, Arrival: 1}, {ID: 1, Arrival: 1}, {ID: 2, Arrival: 1}},
	}
	out := run(t, &PostedPrice{Price: 10}, in)
	if out.Allocation.ByPhone[1] != core.NoTask {
		t.Fatal("phone above the posted price won")
	}
	if (&PostedPrice{Price: 10}).Name() != "posted-price-10" {
		t.Fatal("name")
	}
	for _, i := range []core.PhoneID{0, 2} {
		if out.Allocation.ByPhone[i] == core.NoTask {
			t.Fatalf("eligible phone %d lost", i)
		}
		if out.Payments[i] != 10 {
			t.Fatalf("phone %d paid %g, want the posted 10", i, out.Payments[i])
		}
	}
	if out.Allocation.NumServed() != 2 {
		t.Fatalf("served %d, want 2 (one task must starve)", out.Allocation.NumServed())
	}
}

// TestPostedPriceTruthful: the exhaustive auditor finds no profitable
// misreport under a posted price.
func TestPostedPriceTruthful(t *testing.T) {
	in := paperInstance()
	mech := &PostedPrice{Price: 8}
	truthOut := run(t, mech, in)
	for i := range in.Bids {
		trueBid := in.Bids[i]
		uTruth := truthOut.Utility(core.PhoneID(i), trueBid.Cost)
		for a := trueBid.Arrival; a <= trueBid.Departure; a++ {
			for d := a; d <= trueBid.Departure; d++ {
				for _, f := range []float64{0, 0.5, 0.9, 1.2, 2} {
					alt := in.Clone()
					alt.Bids[i] = core.Bid{Phone: core.PhoneID(i), Arrival: a, Departure: d, Cost: trueBid.Cost * f}
					outAlt := run(t, mech, alt)
					if u := outAlt.Utility(core.PhoneID(i), trueBid.Cost); u > uTruth+1e-9 {
						t.Fatalf("phone %d gains %g > %g via (%d,%d,%g)", i, u, uTruth, a, d, alt.Bids[i].Cost)
					}
				}
			}
		}
	}
}

// TestPostedPriceWelfareBelowOptimal and price validation.
func TestPostedPriceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(506))
	of := &core.OfflineMechanism{}
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 10, 10, 8, 50)
		out := run(t, &PostedPrice{Price: 20}, in)
		opt, err := of.Welfare(in)
		if err != nil {
			t.Fatal(err)
		}
		if out.Welfare > opt+1e-9 {
			t.Fatalf("trial %d: posted price beat the optimum", trial)
		}
	}
	if _, err := (&PostedPrice{Price: -1}).Run(paperInstance()); err == nil {
		t.Fatal("want negative-price error")
	}
}

// TestPostedPriceCostRationingWouldBeUntruthful documents why PostedPrice
// rations by ID: under cheapest-first rationing, paper phone 5 (window
// [2,2], cost 4) gains by underbidding to jump ahead of phone 1 in
// slot 2 — the exact attack the auditor found against that variant.
func TestPostedPriceCostRationingWouldBeUntruthful(t *testing.T) {
	in := paperInstance()
	mech := &PostedPrice{Price: 8}
	truthOut := run(t, mech, in)
	// Under ID rationing phone 0 (paper phone 1, ID below 4) is served
	// in slot 2 whether or not phone 4 underbids, so phone 4 has nothing
	// to gain:
	lie := in.Clone()
	lie.Bids[4].Cost = 0
	lieOut := run(t, mech, lie)
	uTruth := truthOut.Utility(4, in.Bids[4].Cost)
	uLie := lieOut.Utility(4, in.Bids[4].Cost)
	if uLie > uTruth+1e-9 {
		t.Fatalf("underbidding still profits: %g > %g", uLie, uTruth)
	}
}

// TestAdaptivePostedPriceObservesThenSells: tasks in the observation
// window starve; afterwards eligible phones win at the learned price.
func TestAdaptivePostedPriceObservesThenSells(t *testing.T) {
	in := &core.Instance{
		Slots: 10, Value: 100,
		Bids: []core.Bid{
			{Phone: 0, Arrival: 1, Departure: 2, Cost: 10},  // sampled (departs in window)
			{Phone: 1, Arrival: 3, Departure: 10, Cost: 12}, // buyer, eligible at price 15
			{Phone: 2, Arrival: 3, Departure: 10, Cost: 40}, // buyer, priced out
		},
		Tasks: []core.Task{
			{ID: 0, Arrival: 1}, // observation window (slots 1-2): starves
			{ID: 1, Arrival: 5},
			{ID: 2, Arrival: 6},
			{ID: 3, Arrival: 7},
		},
	}
	out := run(t, &AdaptivePostedPrice{}, in)
	if out.Allocation.ByTask[0] != core.NoPhone {
		t.Fatal("observation-window task was served")
	}
	// Learned price = median(10) × 1.5 = 15. Phone 1 serves one task at
	// the learned price; phone 2 is priced out; the rest starve.
	if out.Allocation.ByTask[1] != 1 {
		t.Fatalf("allocation: %v", out.Allocation.ByTask)
	}
	if out.Allocation.ByPhone[0] != core.NoTask {
		t.Fatal("sampled phone won")
	}
	if out.Allocation.ByPhone[2] != core.NoTask {
		t.Fatal("priced-out phone won")
	}
	if out.Payments[1] != 15 {
		t.Fatalf("phone 1 paid %g, want learned price 15", out.Payments[1])
	}
}

// TestAdaptivePostedPriceValidation.
func TestAdaptivePostedPriceValidation(t *testing.T) {
	in := paperInstance()
	if _, err := (&AdaptivePostedPrice{ObserveFraction: 1.5}).Run(in); err == nil {
		t.Fatal("want fraction error")
	}
	if _, err := (&AdaptivePostedPrice{Markup: -1}).Run(in); err == nil {
		t.Fatal("want markup error")
	}
	bad := paperInstance()
	bad.Bids[0].Arrival = 0
	if _, err := (&AdaptivePostedPrice{}).Run(bad); err == nil {
		t.Fatal("want instance error")
	}
}

// TestAdaptivePostedPriceTruthful: exhaustive audit over the paper
// instance finds no profitable misreport.
func TestAdaptivePostedPriceTruthful(t *testing.T) {
	in := paperInstance()
	mech := &AdaptivePostedPrice{ObserveFraction: 0.3, Markup: 1.4}
	truthOut := run(t, mech, in)
	for i := range in.Bids {
		trueBid := in.Bids[i]
		uTruth := truthOut.Utility(core.PhoneID(i), trueBid.Cost)
		for a := trueBid.Arrival; a <= trueBid.Departure; a++ {
			for d := a; d <= trueBid.Departure; d++ {
				for _, f := range []float64{0, 0.5, 0.9, 1.2, 3} {
					alt := in.Clone()
					alt.Bids[i] = core.Bid{Phone: core.PhoneID(i), Arrival: a, Departure: d, Cost: trueBid.Cost * f}
					outAlt := run(t, mech, alt)
					if u := outAlt.Utility(core.PhoneID(i), trueBid.Cost); u > uTruth+1e-9 {
						t.Fatalf("phone %d gains %g > %g via (%d,%d,%g)", i, u, uTruth, a, d, alt.Bids[i].Cost)
					}
				}
			}
		}
	}
}

// TestAdaptivePostedPriceCapsAtValue: the learned price never exceeds ν.
func TestAdaptivePostedPriceCapsAtValue(t *testing.T) {
	in := &core.Instance{
		Slots: 4, Value: 10,
		Bids: []core.Bid{
			{Phone: 0, Arrival: 1, Departure: 1, Cost: 9}, // sampled: 9 × 1.5 = 13.5 > ν
			{Phone: 1, Arrival: 2, Departure: 4, Cost: 8},
		},
		Tasks: []core.Task{{ID: 0, Arrival: 3}},
	}
	out := run(t, &AdaptivePostedPrice{ObserveFraction: 0.25, Markup: 1.5}, in)
	for _, i := range out.Allocation.Winners() {
		if out.Payments[i] > 10+1e-9 {
			t.Fatalf("payment %g exceeds ν", out.Payments[i])
		}
	}
}
