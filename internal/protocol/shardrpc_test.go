package protocol

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"testing"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
)

// TestShardRPCValidate drives every rejection arm of the distributed
// RPC vocabulary: a coordinator or shard server must never accept a
// frame whose fields could corrupt replica state.
func TestShardRPCValidate(t *testing.T) {
	bad := []Message{
		{Type: TypeShardJoin, Shard: 0, Shards: 0},
		{Type: TypeShardJoin, Shard: -1, Shards: 4},
		{Type: TypeShardJoin, Shard: 4, Shards: 4},
		{Type: TypeShardJoin, Shard: 0, Shards: MaxShards + 1},
		{Type: TypeShardSnapshot, Count: -1},
		{Type: TypeShardSnapshot, Count: 0, Data: strings.Repeat("A", MaxSnapshotChunk+1)},
		{Type: TypeShardAdmit, Phone: -1, Slot: 1, Departure: 1},
		{Type: TypeShardAdmit, Phone: 0, Slot: 0, Departure: 1},
		{Type: TypeShardAdmit, Phone: 0, Slot: 3, Departure: 2},
		{Type: TypeShardAdmit, Phone: 0, Slot: 1, Departure: 2, Cost: -1},
		{Type: TypePull, Slot: 0, Count: 1},
		{Type: TypePull, Slot: 1, Count: 0},
		{Type: TypePull, Slot: 1, Count: MaxPullBatch + 1},
		{Type: TypeTopup, Slot: 1, Count: -3},
		{Type: TypeCands, Slot: 0, Count: 0},
		{Type: TypeCands, Slot: 1, Count: -1},
		{Type: TypeCands, Slot: 1, Count: MaxPullBatch + 1},
		{Type: TypeCand, Phone: -1},
		{Type: TypePushback, Phone: -2},
		{Type: TypePrice, Phone: -1},
		{Type: TypeShardComplete, Phone: -1},
		{Type: TypeShardWin, Task: -1, Phone: 0, Slot: 1},
		{Type: TypeShardWin, Task: 0, Phone: -1, Slot: 1},
		{Type: TypeShardWin, Task: 0, Phone: 0, Runner: core.NoPhone - 1, Slot: 1},
		{Type: TypeShardWin, Task: 0, Phone: 0, Slot: 0},
		{Type: TypeShardUnserved, Slot: 0, Count: 1},
		{Type: TypeShardUnserved, Slot: 1, Count: 0},
		{Type: TypeShardPaid, Phone: -1, Slot: 1},
		{Type: TypeShardPaid, Phone: 0, Slot: 0},
		{Type: TypeShardTrack, Count: 2},
		{Type: TypeShardTrack, Count: -1},
	}
	for _, m := range bad {
		m := m
		if err := m.Validate(); err == nil {
			t.Errorf("Validate accepted bad %+v", m)
		}
	}
	good := []Message{
		{Type: TypeShardJoin, Shard: 0, Shards: 1},
		{Type: TypeShardJoin, Shard: MaxShards - 1, Shards: MaxShards},
		{Type: TypeShardSnapshot, Count: 0},
		{Type: TypeShardAdmit, Phone: 0, Slot: 1, Departure: 1, Cost: 0},
		{Type: TypePull, Slot: 1, Count: MaxPullBatch},
		{Type: TypeCands, Slot: 1, Count: 0},
		{Type: TypeShardWin, Task: 0, Phone: 0, Runner: core.NoPhone, Slot: 1},
		{Type: TypeShardUnserved, Slot: 1, Count: 1},
		{Type: TypeShardPaid, Phone: 0, Slot: 1, Amount: 0},
		{Type: TypeShardTrack, Count: 1},
	}
	for _, m := range good {
		m := m
		if err := m.Validate(); err != nil {
			t.Errorf("Validate rejected good %+v: %v", m, err)
		}
	}
}

// TestShardRPCBinaryRejects covers the malformed-frame space specific
// to the new fixed layouts: wrong body sizes and non-finite floats must
// be rejected at decode/validate time, never half-parsed.
func TestShardRPCBinaryRejects(t *testing.T) {
	frame := func(code uint8, body []byte) []byte {
		b := binary.LittleEndian.AppendUint32(nil, uint32(1+len(body)))
		b = append(b, code)
		return append(b, body...)
	}
	nanBits := func() []byte {
		b := binary.LittleEndian.AppendUint64(nil, 1)                  // phone
		b = binary.LittleEndian.AppendUint64(b, 1)                     // arrival
		b = binary.LittleEndian.AppendUint64(b, 1)                     // departure
		return binary.LittleEndian.AppendUint64(b, 0x7ff8000000000001) // NaN cost
	}()
	cases := []struct {
		name string
		raw  []byte
	}{
		{"admit short body", frame(codeShardAdmit, make([]byte, 31))},
		{"admit long body", frame(codeShardAdmit, make([]byte, 33))},
		{"admit zero arrival", frame(codeShardAdmit, make([]byte, 32))},
		{"admit nan cost", frame(codeShardAdmit, nanBits)},
		{"pull short body", frame(codePull, make([]byte, 16))},
		{"pull zero count", frame(codePull, append(binary.LittleEndian.AppendUint64(nil, 1), make([]byte, 16)...))},
		{"cands long body", frame(codeCands, make([]byte, 25))},
		{"cand short body", frame(codeCand, make([]byte, 4))},
		{"win short body", frame(codeShardWin, make([]byte, 24))},
		{"win zero slot", frame(codeShardWin, make([]byte, 32))},
		{"unserved zero count", frame(codeShardUnserved, append(binary.LittleEndian.AppendUint64(nil, 1), make([]byte, 8)...))},
		{"price long body", frame(codePrice, make([]byte, 17))},
		{"paid zero slot", frame(codeShardPaid, make([]byte, 24))},
		{"default short body", frame(codeShardDefault, make([]byte, 8))},
		{"track bad count json", frame(codeShardTrack, []byte(`{"type":"shard-track","count":7}`))},
		{"join code/type mismatch", frame(codeShardJoin, []byte(`{"type":"ack"}`))},
		{"snapshot garbage json", frame(codeShardSnapshot, []byte("{nope"))},
	}
	for _, tc := range cases {
		r := NewReader(bytes.NewReader(tc.raw))
		r.SetFormat(FormatBinary)
		if m, err := r.Receive(); err == nil {
			t.Errorf("%s: want error, got %+v", tc.name, m)
		}
	}
}

// FuzzShardRPCFrame is FuzzBinaryFrame's twin for the distributed RPC
// vocabulary: arbitrary bytes through the binary reader must never
// panic; every accepted message must Validate, survive dual-format
// re-encode/re-decode unchanged, and arrive identically when the same
// stream is delivered in arbitrary chaos-conn chunk sizes.
func FuzzShardRPCFrame(f *testing.F) {
	frame := func(m *Message) []byte {
		b, err := AppendFrame(nil, m, FormatBinary)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	admit := frame(&Message{Type: TypeShardAdmit, Phone: 3, Slot: 2, Departure: 8, Cost: 5.5})
	pull := frame(&Message{Type: TypePull, Slot: 2, Count: 4, Seq: 9})
	cands := frame(&Message{Type: TypeCands, Slot: 2, Count: 2, Seq: 9})
	cand := frame(&Message{Type: TypeCand, Phone: 6})
	win := frame(&Message{Type: TypeShardWin, Task: 1, Phone: 6, Runner: core.NoPhone, Slot: 2})
	price := frame(&Message{Type: TypePrice, Phone: 6, Seq: 30})
	join := frame(&Message{Type: TypeShardJoin, Shard: 1, Shards: 4})
	snap := frame(&Message{Type: TypeShardSnapshot, Count: 1, Data: "eyJ2ZXJzaW9uIjoxfQ=="})
	f.Add(append(append([]byte{}, admit...), pull...), uint8(3))
	f.Add(append(append(append([]byte{}, cands...), cand...), cand...), uint8(1))
	f.Add(append(append([]byte{}, win...), price...), uint8(5))
	f.Add(append(append([]byte{}, join...), snap...), uint8(2))
	f.Add(admit[:len(admit)-3], uint8(4))                     // truncated payload
	f.Add(pull[:3], uint8(2))                                 // torn header
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, codePull}, uint8(4)) // oversized length
	f.Add(frame(&Message{Type: TypeShardTrack, Count: 1}), uint8(6))
	f.Add(frame(&Message{Type: TypeTopup, Slot: 9, Count: 1, Seq: 2}), uint8(3))
	f.Add(frame(&Message{Type: TypePushback, Phone: 11}), uint8(1))
	f.Add(frame(&Message{Type: TypeShardPaid, Phone: 2, Amount: 7.25, Slot: 5}), uint8(2))
	f.Add(frame(&Message{Type: TypeShardUnserved, Slot: 5, Count: 3}), uint8(3))
	f.Add(frame(&Message{Type: TypeShardDefault, Phone: 2, Slot: 5}), uint8(2))
	f.Add(frame(&Message{Type: TypeShardComplete, Phone: 2}), uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		r := NewReader(bytes.NewReader(data))
		r.SetFormat(FormatBinary)
		var accepted []Message
		for len(accepted) < 64 {
			m, err := r.Receive()
			if err != nil {
				break // EOF or malformed input — both fine
			}
			accepted = append(accepted, *m)
		}
		for i := range accepted {
			m := &accepted[i]
			if err := m.Validate(); err != nil {
				t.Fatalf("accepted invalid message %+v: %v", m, err)
			}
			for _, format := range []Format{FormatBinary, FormatJSON} {
				enc, err := AppendFrame(nil, m, format)
				if err != nil {
					t.Fatalf("re-encode (%s) of %+v: %v", format, m, err)
				}
				rr := NewReader(bytes.NewReader(enc))
				rr.SetFormat(format)
				back, err := rr.Receive()
				if err != nil {
					t.Fatalf("re-decode (%s) of %+v: %v", format, m, err)
				}
				if *back != *m {
					t.Fatalf("%s round trip changed message: %+v -> %+v", format, m, back)
				}
			}
		}

		// Segmentation independence under a chunking chaos conn, exactly
		// as FuzzBinaryFrame proves for the agent vocabulary.
		if len(data) == 0 || len(data) > 4096 {
			return
		}
		server, client := net.Pipe()
		defer server.Close()
		go func() {
			defer client.Close()
			cc := chaos.WrapConn(client, chaos.Plan{ChunkBytes: int(chunk%7) + 1}, 1)
			cc.Write(data)
		}()
		cr := NewReader(server)
		cr.SetFormat(FormatBinary)
		for i := range accepted {
			m, err := cr.Receive()
			if err != nil {
				t.Fatalf("chunked delivery lost message %d: %v", i, err)
			}
			if *m != accepted[i] {
				t.Fatalf("chunked delivery changed message %d: %+v -> %+v", i, accepted[i], m)
			}
		}
		if m, err := cr.Receive(); err == nil && len(accepted) < 64 {
			t.Fatalf("chunked delivery invented message %+v", m)
		}
	})
}
