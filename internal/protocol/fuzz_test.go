package protocol

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"dynacrowd/internal/chaos"
)

// FuzzReceive feeds arbitrary bytes through the wire reader: it must
// never panic, and every message it accepts must satisfy Validate and
// survive a re-encode/re-decode round trip.
func FuzzReceive(f *testing.F) {
	f.Add([]byte(`{"type":"hello"}` + "\n"))
	f.Add([]byte(`{"type":"bid","name":"a","duration":3,"cost":1.5}` + "\n"))
	f.Add([]byte(`{"type":"state","slot":1,"slots":50,"value":30}` + "\n"))
	f.Add([]byte(`{"type":"payment","phone":2,"amount":9.25,"slot":7}` + "\n"))
	f.Add([]byte("\n\n{\"type\":\"ack\"}\n"))
	f.Add([]byte(`{nope`))
	f.Add([]byte(strings.Repeat("x", 1024)))
	f.Add([]byte{0x00, 0xff, 0x7b})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded: the stream is finite anyway
			m, err := r.Receive()
			if err != nil {
				return // EOF or malformed input — both fine
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("Receive returned invalid message %+v: %v", m, err)
			}
			var buf bytes.Buffer
			if err := NewWriter(&buf).Send(m); err != nil {
				t.Fatalf("re-encode of %+v: %v", m, err)
			}
			back, err := NewReader(&buf).Receive()
			if err != nil {
				t.Fatalf("re-decode of %+v: %v", m, err)
			}
			if *back != *m {
				t.Fatalf("round trip changed message: %+v -> %+v", m, back)
			}
		}
	})
}

// FuzzBinaryFrame feeds arbitrary bytes through the binary-framed
// reader. Three properties must hold:
//
//  1. No panic, ever; torn, oversized, and truncated frames are
//     rejected with errors, never misparsed.
//  2. Every accepted message satisfies Validate, survives a binary
//     re-encode/re-decode round trip, and decodes identically through
//     the JSON framing — the two framings share one value space.
//  3. Delivery is segmentation-independent: the same byte stream
//     chunked into arbitrary Read-sized fragments by a chaos conn
//     yields the same accepted prefix of messages.
func FuzzBinaryFrame(f *testing.F) {
	frame := func(m *Message) []byte {
		b, err := AppendFrame(nil, m, FormatBinary)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	slot := frame(&Message{Type: TypeSlot, Slot: 7})
	bid := frame(&Message{Type: TypeBid, Name: "phone-a", Duration: 3, Cost: 12.5})
	assign := frame(&Message{Type: TypeAssign, Phone: 2, Task: 9, Slot: 4})
	payment := frame(&Message{Type: TypePayment, Phone: 2, Amount: 27.25, Slot: 5})
	f.Add(append(append([]byte{}, slot...), bid...), uint8(3))
	f.Add(append(append([]byte{}, assign...), payment...), uint8(1))
	f.Add(slot[:len(slot)-2], uint8(5))             // truncated payload
	f.Add(slot[:2], uint8(2))                       // torn header
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1}, uint8(4)) // oversized length
	f.Add([]byte{0, 0, 0, 0}, uint8(1))             // zero length
	f.Add([]byte{9, 0, 0, 0, 200, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(6)) // unknown code
	f.Add([]byte(`{"type":"slot","slot":1}`+"\n"), uint8(3))         // JSON fed to binary reader

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		r := NewReader(bytes.NewReader(data))
		r.SetFormat(FormatBinary)
		var accepted []Message
		for len(accepted) < 64 {
			m, err := r.Receive()
			if err != nil {
				break // EOF or malformed input — both fine
			}
			accepted = append(accepted, *m)
		}
		for i := range accepted {
			m := &accepted[i]
			if err := m.Validate(); err != nil {
				t.Fatalf("accepted invalid message %+v: %v", m, err)
			}
			for _, format := range []Format{FormatBinary, FormatJSON} {
				enc, err := AppendFrame(nil, m, format)
				if err != nil {
					t.Fatalf("re-encode (%s) of %+v: %v", format, m, err)
				}
				rr := NewReader(bytes.NewReader(enc))
				rr.SetFormat(format)
				back, err := rr.Receive()
				if err != nil {
					t.Fatalf("re-decode (%s) of %+v: %v", format, m, err)
				}
				if *back != *m {
					t.Fatalf("%s round trip changed message: %+v -> %+v", format, m, back)
				}
			}
		}

		// Same bytes, delivered through a chaos conn that splits every
		// write into tiny chunks: frame reassembly must accept the
		// identical message sequence regardless of segmentation. Large
		// inputs are skipped — tiny chunks over net.Pipe cost a
		// goroutine handoff per chunk, and segmentation bugs show up
		// within a few frames anyway.
		if len(data) == 0 || len(data) > 4096 {
			return
		}
		server, client := net.Pipe()
		defer server.Close()
		go func() {
			defer client.Close()
			cc := chaos.WrapConn(client, chaos.Plan{ChunkBytes: int(chunk%7) + 1}, 1)
			cc.Write(data)
		}()
		cr := NewReader(server)
		cr.SetFormat(FormatBinary)
		for i := range accepted {
			m, err := cr.Receive()
			if err != nil {
				t.Fatalf("chunked delivery lost message %d: %v", i, err)
			}
			if *m != accepted[i] {
				t.Fatalf("chunked delivery changed message %d: %+v -> %+v", i, accepted[i], m)
			}
		}
		if m, err := cr.Receive(); err == nil && len(accepted) < 64 {
			t.Fatalf("chunked delivery invented message %+v", m)
		}
	})
}
