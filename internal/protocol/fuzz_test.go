package protocol

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReceive feeds arbitrary bytes through the wire reader: it must
// never panic, and every message it accepts must satisfy Validate and
// survive a re-encode/re-decode round trip.
func FuzzReceive(f *testing.F) {
	f.Add([]byte(`{"type":"hello"}` + "\n"))
	f.Add([]byte(`{"type":"bid","name":"a","duration":3,"cost":1.5}` + "\n"))
	f.Add([]byte(`{"type":"state","slot":1,"slots":50,"value":30}` + "\n"))
	f.Add([]byte(`{"type":"payment","phone":2,"amount":9.25,"slot":7}` + "\n"))
	f.Add([]byte("\n\n{\"type\":\"ack\"}\n"))
	f.Add([]byte(`{nope`))
	f.Add([]byte(strings.Repeat("x", 1024)))
	f.Add([]byte{0x00, 0xff, 0x7b})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded: the stream is finite anyway
			m, err := r.Receive()
			if err != nil {
				return // EOF or malformed input — both fine
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("Receive returned invalid message %+v: %v", m, err)
			}
			var buf bytes.Buffer
			if err := NewWriter(&buf).Send(m); err != nil {
				t.Fatalf("re-encode of %+v: %v", m, err)
			}
			back, err := NewReader(&buf).Receive()
			if err != nil {
				t.Fatalf("re-decode of %+v: %v", m, err)
			}
			if *back != *m {
				t.Fatalf("round trip changed message: %+v -> %+v", m, back)
			}
		}
	})
}
