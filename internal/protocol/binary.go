package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"dynacrowd/internal/core"
)

// Format selects the wire framing of a Reader or Writer.
type Format uint8

const (
	// FormatJSON is the default: newline-delimited JSON objects.
	FormatJSON Format = iota
	// FormatBinary is the negotiated compact framing:
	//
	//	[u32 LE frame length N][u8 type code][N-1 body bytes]
	//
	// The length covers the code byte plus the body. Hot message types
	// (slot, assign, payment, bid) use fixed little-endian layouts; all
	// other types carry their JSON object as the body, so the two
	// framings can never disagree about a cold message's content.
	//
	// Fixed layouts (all integers i64 LE, floats IEEE-754 bits LE):
	//
	//	slot:    slot(8)                              body =  8 bytes
	//	assign:  phone(8) task(8) slot(8)             body = 24 bytes
	//	payment: phone(8) amount(8) slot(8)           body = 24 bytes
	//	bid:     duration(8) cost(8) nameLen(u16 LE)  body = 18+nameLen
	//	         name(nameLen)
	FormatBinary
)

// Wire names used in hello/state negotiation (Message.Wire).
const (
	WireJSON   = "json"
	WireBinary = "binary"
)

// FormatByName maps a Message.Wire value to a Format. The empty string
// is the JSON default.
func FormatByName(name string) (Format, error) {
	switch name {
	case "", WireJSON:
		return FormatJSON, nil
	case WireBinary:
		return FormatBinary, nil
	default:
		return FormatJSON, fmt.Errorf("protocol: unknown wire format %q", name)
	}
}

func (f Format) String() string {
	switch f {
	case FormatJSON:
		return WireJSON
	case FormatBinary:
		return WireBinary
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// MaxFrameBytes bounds a binary frame's length field (code byte + body),
// matching the JSON line bound so neither framing can smuggle a larger
// message than the other.
const MaxFrameBytes = MaxLineBytes

// Binary type codes, one per message type. Codes are wire contract:
// never renumber, only append.
const (
	codeHello    uint8 = 1
	codeState    uint8 = 2
	codeBid      uint8 = 3
	codeAck      uint8 = 4
	codeWelcome  uint8 = 5
	codeSlot     uint8 = 6
	codeAssign   uint8 = 7
	codePayment  uint8 = 8
	codeEnd      uint8 = 9
	codeRound    uint8 = 10
	codeResume   uint8 = 11
	codeError    uint8 = 12
	codeComplete uint8 = 13
	codeClawback uint8 = 14

	// Distributed-shard RPC codes (PR 9). Hot layouts (integers i64 LE,
	// floats IEEE-754 bits LE) — everything the per-slot merge and the
	// departure pricing fan-out touch; join/snapshot/track are cold
	// (JSON body):
	//
	//	shard-admit:    phone(8) arrival(8) departure(8) cost(8)  32 bytes
	//	pull/topup:     slot(8) count(8) seq(8)                   24 bytes
	//	shard-cands:    slot(8) count(8) seq(8)                   24 bytes
	//	cand:           phone(8)                                   8 bytes
	//	pushback:       phone(8)                                   8 bytes
	//	shard-win:      task(8) phone(8) runner(8) slot(8)        32 bytes
	//	shard-unserved: slot(8) count(8)                          16 bytes
	//	price:          phone(8) seq(8)                           16 bytes
	//	shard-paid:     phone(8) amount(8) slot(8)                24 bytes
	//	shard-default:  phone(8) slot(8)                          16 bytes
	//	shard-complete: phone(8)                                   8 bytes
	codeShardJoin     uint8 = 15
	codeShardSnapshot uint8 = 16
	codeShardAdmit    uint8 = 17
	codePull          uint8 = 18
	codeTopup         uint8 = 19
	codeCands         uint8 = 20
	codeCand          uint8 = 21
	codePushback      uint8 = 22
	codeShardWin      uint8 = 23
	codeShardUnserved uint8 = 24
	codePrice         uint8 = 25
	codeShardPaid     uint8 = 26
	codeShardDefault  uint8 = 27
	codeShardComplete uint8 = 28
	codeShardTrack    uint8 = 29
)

var typeToCode = map[string]uint8{
	TypeHello:    codeHello,
	TypeState:    codeState,
	TypeBid:      codeBid,
	TypeAck:      codeAck,
	TypeWelcome:  codeWelcome,
	TypeSlot:     codeSlot,
	TypeAssign:   codeAssign,
	TypePayment:  codePayment,
	TypeEnd:      codeEnd,
	TypeRound:    codeRound,
	TypeResume:   codeResume,
	TypeError:    codeError,
	TypeComplete: codeComplete,
	TypeClawback: codeClawback,

	TypeShardJoin:     codeShardJoin,
	TypeShardSnapshot: codeShardSnapshot,
	TypeShardAdmit:    codeShardAdmit,
	TypePull:          codePull,
	TypeTopup:         codeTopup,
	TypeCands:         codeCands,
	TypeCand:          codeCand,
	TypePushback:      codePushback,
	TypeShardWin:      codeShardWin,
	TypeShardUnserved: codeShardUnserved,
	TypePrice:         codePrice,
	TypeShardPaid:     codeShardPaid,
	TypeShardDefault:  codeShardDefault,
	TypeShardComplete: codeShardComplete,
	TypeShardTrack:    codeShardTrack,
}

var codeToType = func() [30]string {
	var t [30]string
	for name, code := range typeToCode {
		t[code] = name
	}
	return t
}()

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// appendBinaryFrame appends m's binary frame to dst. The length prefix
// is back-patched after the body is known.
func appendBinaryFrame(dst []byte, m *Message) ([]byte, error) {
	code, ok := typeToCode[m.Type]
	if !ok {
		return dst, fmt.Errorf("protocol: encode: unknown message type %q", m.Type)
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, code)
	switch m.Type {
	case TypeSlot:
		dst = appendU64(dst, uint64(m.Slot))
	case TypeAssign:
		dst = appendU64(dst, uint64(m.Phone))
		dst = appendU64(dst, uint64(m.Task))
		dst = appendU64(dst, uint64(m.Slot))
	case TypePayment:
		dst = appendU64(dst, uint64(m.Phone))
		dst = appendU64(dst, math.Float64bits(m.Amount))
		dst = appendU64(dst, uint64(m.Slot))
	case TypeBid:
		if len(m.Name) > MaxNameBytes {
			return dst[:lenAt], fmt.Errorf("protocol: encode bid: name %d bytes exceeds limit %d", len(m.Name), MaxNameBytes)
		}
		dst = appendU64(dst, uint64(m.Duration))
		dst = appendU64(dst, math.Float64bits(m.Cost))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Name)))
		dst = append(dst, m.Name...)
	case TypeShardAdmit:
		dst = appendU64(dst, uint64(m.Phone))
		dst = appendU64(dst, uint64(m.Slot))
		dst = appendU64(dst, uint64(m.Departure))
		dst = appendU64(dst, math.Float64bits(m.Cost))
	case TypePull, TypeTopup:
		dst = appendU64(dst, uint64(m.Slot))
		dst = appendU64(dst, uint64(m.Count))
		dst = appendU64(dst, m.Seq)
	case TypeCands:
		dst = appendU64(dst, uint64(m.Slot))
		dst = appendU64(dst, uint64(m.Count))
		dst = appendU64(dst, m.Seq)
	case TypeCand, TypePushback, TypeShardComplete:
		dst = appendU64(dst, uint64(m.Phone))
	case TypeShardWin:
		dst = appendU64(dst, uint64(m.Task))
		dst = appendU64(dst, uint64(m.Phone))
		dst = appendU64(dst, uint64(m.Runner))
		dst = appendU64(dst, uint64(m.Slot))
	case TypeShardUnserved:
		dst = appendU64(dst, uint64(m.Slot))
		dst = appendU64(dst, uint64(m.Count))
	case TypePrice:
		dst = appendU64(dst, uint64(m.Phone))
		dst = appendU64(dst, m.Seq)
	case TypeShardPaid:
		dst = appendU64(dst, uint64(m.Phone))
		dst = appendU64(dst, math.Float64bits(m.Amount))
		dst = appendU64(dst, uint64(m.Slot))
	case TypeShardDefault:
		dst = appendU64(dst, uint64(m.Phone))
		dst = appendU64(dst, uint64(m.Slot))
	default:
		b, err := json.Marshal(m)
		if err != nil {
			return dst[:lenAt], fmt.Errorf("protocol: encode %s: %w", m.Type, err)
		}
		dst = append(dst, b...)
	}
	n := len(dst) - lenAt - 4 // code byte + body
	if n > MaxFrameBytes {
		return dst[:lenAt], fmt.Errorf("protocol: encode %s: frame %d bytes exceeds %d", m.Type, n, MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(n))
	return dst, nil
}

// decodeBinaryPayload decodes a frame payload (code byte + body, length
// prefix already stripped) into *m, which the caller has zeroed.
func decodeBinaryPayload(payload []byte, m *Message) error {
	code := payload[0]
	body := payload[1:]
	if int(code) >= len(codeToType) || codeToType[code] == "" {
		return fmt.Errorf("protocol: binary frame: unknown type code %d", code)
	}
	typ := codeToType[code]
	switch typ {
	case TypeSlot:
		if len(body) != 8 {
			return fmt.Errorf("protocol: slot frame body %d bytes, want 8", len(body))
		}
		m.Type = TypeSlot
		m.Slot = core.Slot(binary.LittleEndian.Uint64(body))
	case TypeAssign:
		if len(body) != 24 {
			return fmt.Errorf("protocol: assign frame body %d bytes, want 24", len(body))
		}
		m.Type = TypeAssign
		m.Phone = core.PhoneID(binary.LittleEndian.Uint64(body))
		m.Task = core.TaskID(binary.LittleEndian.Uint64(body[8:]))
		m.Slot = core.Slot(binary.LittleEndian.Uint64(body[16:]))
	case TypePayment:
		if len(body) != 24 {
			return fmt.Errorf("protocol: payment frame body %d bytes, want 24", len(body))
		}
		m.Type = TypePayment
		m.Phone = core.PhoneID(binary.LittleEndian.Uint64(body))
		m.Amount = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		m.Slot = core.Slot(binary.LittleEndian.Uint64(body[16:]))
	case TypeBid:
		if len(body) < 18 {
			return fmt.Errorf("protocol: bid frame body %d bytes, want >= 18", len(body))
		}
		nameLen := int(binary.LittleEndian.Uint16(body[16:]))
		if len(body) != 18+nameLen {
			return fmt.Errorf("protocol: bid frame body %d bytes, want %d for name length %d", len(body), 18+nameLen, nameLen)
		}
		m.Type = TypeBid
		m.Duration = core.Slot(binary.LittleEndian.Uint64(body))
		m.Cost = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		m.Name = string(body[18:])
	case TypeShardAdmit:
		if len(body) != 32 {
			return fmt.Errorf("protocol: shard-admit frame body %d bytes, want 32", len(body))
		}
		m.Type = TypeShardAdmit
		m.Phone = core.PhoneID(binary.LittleEndian.Uint64(body))
		m.Slot = core.Slot(binary.LittleEndian.Uint64(body[8:]))
		m.Departure = core.Slot(binary.LittleEndian.Uint64(body[16:]))
		m.Cost = math.Float64frombits(binary.LittleEndian.Uint64(body[24:]))
	case TypePull, TypeTopup, TypeCands:
		if len(body) != 24 {
			return fmt.Errorf("protocol: %s frame body %d bytes, want 24", typ, len(body))
		}
		m.Type = typ
		m.Slot = core.Slot(binary.LittleEndian.Uint64(body))
		m.Count = int(int64(binary.LittleEndian.Uint64(body[8:])))
		m.Seq = binary.LittleEndian.Uint64(body[16:])
	case TypeCand, TypePushback, TypeShardComplete:
		if len(body) != 8 {
			return fmt.Errorf("protocol: %s frame body %d bytes, want 8", typ, len(body))
		}
		m.Type = typ
		m.Phone = core.PhoneID(binary.LittleEndian.Uint64(body))
	case TypeShardWin:
		if len(body) != 32 {
			return fmt.Errorf("protocol: shard-win frame body %d bytes, want 32", len(body))
		}
		m.Type = TypeShardWin
		m.Task = core.TaskID(binary.LittleEndian.Uint64(body))
		m.Phone = core.PhoneID(binary.LittleEndian.Uint64(body[8:]))
		m.Runner = core.PhoneID(binary.LittleEndian.Uint64(body[16:]))
		m.Slot = core.Slot(binary.LittleEndian.Uint64(body[24:]))
	case TypeShardUnserved:
		if len(body) != 16 {
			return fmt.Errorf("protocol: shard-unserved frame body %d bytes, want 16", len(body))
		}
		m.Type = TypeShardUnserved
		m.Slot = core.Slot(binary.LittleEndian.Uint64(body))
		m.Count = int(int64(binary.LittleEndian.Uint64(body[8:])))
	case TypePrice:
		if len(body) != 16 {
			return fmt.Errorf("protocol: price frame body %d bytes, want 16", len(body))
		}
		m.Type = TypePrice
		m.Phone = core.PhoneID(binary.LittleEndian.Uint64(body))
		m.Seq = binary.LittleEndian.Uint64(body[8:])
	case TypeShardPaid:
		if len(body) != 24 {
			return fmt.Errorf("protocol: shard-paid frame body %d bytes, want 24", len(body))
		}
		m.Type = TypeShardPaid
		m.Phone = core.PhoneID(binary.LittleEndian.Uint64(body))
		m.Amount = math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
		m.Slot = core.Slot(binary.LittleEndian.Uint64(body[16:]))
	case TypeShardDefault:
		if len(body) != 16 {
			return fmt.Errorf("protocol: shard-default frame body %d bytes, want 16", len(body))
		}
		m.Type = TypeShardDefault
		m.Phone = core.PhoneID(binary.LittleEndian.Uint64(body))
		m.Slot = core.Slot(binary.LittleEndian.Uint64(body[8:]))
	default:
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(m); err != nil {
			return fmt.Errorf("protocol: %s frame: malformed JSON body: %w", typ, err)
		}
		if m.Type != typ {
			return fmt.Errorf("protocol: frame code says %s but JSON body says %q", typ, m.Type)
		}
	}
	return nil
}
