// Package protocol defines the wire format between the crowdsourcing
// platform server and smartphone agents. Two framings share one flat
// Message vocabulary:
//
//   - JSON (the default): newline-delimited JSON objects, trivial to
//     debug with netcat, strict about unknown fields and types.
//   - Binary (negotiated): length-prefixed frames with fixed layouts
//     for the hot messages (slot, assign, payment, bid), built for the
//     platform's per-tick fan-out to very large agent populations. See
//     binary.go for the layout and docs/PLATFORM.md for the spec.
//
// A connection always starts in JSON. An agent opts into binary by
// sending hello{wire:"binary"}; the platform's state reply echoes
// wire:"binary" and is the last JSON message either side sends — both
// directions switch immediately after it. An agent that requests the
// upgrade must not send anything else until the state reply arrives.
//
// Conversation (agent-initiated messages left, platform replies right):
//
//	hello{wire?}           -> state{slot, slots, value, wire?, budget?}
//	bid{name, duration,    -> ack (bid queued for the next slot tick)
//	    cost}              -> welcome{phone, slot(=arrival), departure}
//	                          ... at the next slot tick, or error{...} if a
//	                          budgeted round has already committed its full
//	                          budget (the bid could never be paid)
//	                       <- slot{slot}           every tick
//	                       <- assign{phone, task, slot}  if the bid wins
//	                       <- payment{phone, amount, slot} at departure
//	                       <- end{welfare, payments, round, budget?} after
//	                          each round's last slot
//	                       <- round{round} when a multi-round platform opens
//	                          the next round (agents may bid again)
//	resume{phone, round}   -> replay of the phone's standing: welcome, its
//	                          assignment, its payment or clawback if any,
//	                          and end if the round is over — so an agent
//	                          that lost its TCP connection mid-round
//	                          re-attaches to its admitted bid and still
//	                          learns its critical-value payment (or that it
//	                          was defaulted). A resume naming a finished
//	                          round is answered with round{current} instead
//	                          (the phone-ID namespace restarted; bid again).
//	complete{phone, task,  -> ack, or error{...} naming the typed core
//	         round}           rejection (already completed / not assigned)
//	                          without disturbing the round. Only meaningful
//	                          when the platform runs a completion deadline;
//	                          a winner that never completes is defaulted
//	                          when its deadline lapses:
//	                       <- clawback{phone, amount, slot} payment revoked
//	                          (amount 0 if none had been issued)
//
// Bids carry a duration (number of slots the phone stays active,
// starting at the slot in which the platform admits the bid) rather than
// an absolute departure slot, so agents cannot race the slot clock into
// claiming an earlier arrival — the no-early-arrival constraint is
// enforced by construction, mirroring core.OnlineAuction.
package protocol

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"unicode/utf8"

	"dynacrowd/internal/core"
)

// Message types.
const (
	TypeHello   = "hello"
	TypeState   = "state"
	TypeBid     = "bid"
	TypeAck     = "ack"
	TypeWelcome = "welcome"
	TypeSlot    = "slot"
	TypeAssign  = "assign"
	TypePayment = "payment"
	TypeEnd     = "end"
	TypeRound   = "round"
	TypeResume  = "resume"
	TypeError   = "error"
	// TypeComplete is an agent's report that it performed its assigned
	// task; TypeClawback is the platform's notice that a defaulted
	// winner's payment is revoked.
	TypeComplete = "complete"
	TypeClawback = "clawback"
)

// Distributed-shard RPC vocabulary (internal/dshard): the coordinator
// <-> shard-server conversation that runs the online mechanism's k-way
// top-k merge across processes. Same framing rules as the agent
// vocabulary — JSON by default, fixed binary layouts after a
// hello/state upgrade. See docs/DISTRIBUTED.md for the full flow.
const (
	// TypeShardJoin (coordinator -> shard) resets the connection's
	// replica and names the shard's partition index out of the total
	// shard count. It is always followed by a shard-snapshot stream
	// that seeds the replica; the shard replies with ack{seq:0}.
	TypeShardJoin = "shard-join"
	// TypeShardSnapshot (coordinator -> shard) carries one chunk of the
	// engine-portable v1 snapshot as base64 data; Count is the number
	// of chunks still to come, so Count == 0 marks the final chunk, at
	// which point the shard restores by deterministic replay and
	// replies ack{seq:0} (or error).
	TypeShardSnapshot = "shard-snapshot"
	// TypeShardAdmit (coordinator -> shard, fire-and-forget) replicates
	// one admitted bid: dense phone ID, arrival slot, departure, cost.
	// Every shard ledgers it; the partition owner also pools it.
	TypeShardAdmit = "shard-admit"
	// TypePull and TypeTopup (coordinator -> shard, request) pop up to
	// Count of the shard pool's cheapest still-active candidates for
	// the named slot. Topup is the mid-merge refill variant — identical
	// semantics, counted separately. The reply is a shard-cands header
	// followed by that many cand messages.
	TypePull  = "pull"
	TypeTopup = "topup"
	// TypeCands (shard -> coordinator) heads a pull/topup reply: Count
	// cand messages follow for the named slot; Seq echoes the shard's
	// applied-message counter for divergence detection.
	TypeCands = "shard-cands"
	// TypeCand (shard -> coordinator) carries one candidate phone.
	TypeCand = "cand"
	// TypePushback (coordinator -> shard, fire-and-forget) returns one
	// unconsumed candidate to its owning shard's pool after the merge.
	TypePushback = "pushback"
	// TypeShardWin (coordinator -> shard, fire-and-forget) replicates
	// one allocation decision: task, winner, runner-up (NoPhone if
	// none), and the slot. Tasks are created in coordinator merge
	// order, so wins arrive in ascending task-ID order within a slot.
	TypeShardWin = "shard-win"
	// TypeShardUnserved (coordinator -> shard, fire-and-forget)
	// replicates the slot's trailing unserved task count.
	TypeShardUnserved = "shard-unserved"
	// TypePrice (coordinator -> shard, request) asks the owning shard
	// to price a departing winner at its critical value; the reply is a
	// payment message.
	TypePrice = "price"
	// TypeShardPaid (coordinator -> shard, fire-and-forget) replicates
	// an executed payment so replica clawback state stays exact.
	TypeShardPaid = "shard-paid"
	// TypeShardDefault and TypeShardComplete (coordinator -> shard,
	// fire-and-forget) replicate completion-lifecycle transitions at
	// the named clock; TypeShardTrack toggles the lifecycle (Count is
	// 0 or 1).
	TypeShardDefault  = "shard-default"
	TypeShardComplete = "shard-complete"
	TypeShardTrack    = "shard-track"
)

// MaxPullBatch bounds a pull/topup request (and the echoed shard-cands
// count): large enough for any real per-slot demand, small enough that
// a corrupted count cannot convince a peer to stream forever.
const MaxPullBatch = 1 << 20

// MaxShards bounds the shard-join fan-out width.
const MaxShards = 1 << 12

// MaxSnapshotChunk bounds one shard-snapshot chunk's base64 payload so
// the frame (plus JSON envelope) stays inside MaxFrameBytes.
const MaxSnapshotChunk = 48 * 1024

// MaxLineBytes bounds a single wire message; longer lines abort the
// connection (defense against unframed garbage). Binary frames obey the
// same bound (MaxFrameBytes).
const MaxLineBytes = 64 * 1024

// MaxNameBytes bounds a bid's human-readable label. The whole-message
// bound alone would let one field monopolize the frame; a kilobyte-scale
// name is always hostile.
const MaxNameBytes = 4096

// MaxDuration bounds a bid's claimed duration. The platform clamps
// departures to the round length anyway; the bound exists so that
// arrival+duration arithmetic can never overflow the Slot integer and
// slip past that clamp as a negative departure.
const MaxDuration = core.Slot(1) << 30

// Message is the single wire envelope. Which fields are meaningful
// depends on Type; the zero value of unused fields is omitted.
type Message struct {
	Type string `json:"type"`

	// Agent fields.
	Name     string    `json:"name,omitempty"`     // bid: human-readable agent label
	Duration core.Slot `json:"duration,omitempty"` // bid: active slots from admission
	Cost     float64   `json:"cost,omitempty"`     // bid: claimed per-task cost

	// Platform fields (Phone and Round also appear on the agent-sent
	// resume message, naming the admitted bid to re-attach).
	Phone     core.PhoneID `json:"phone,omitempty"`     // welcome/assign/payment/resume
	Slot      core.Slot    `json:"slot,omitempty"`      // state/welcome/slot/assign/payment
	Slots     core.Slot    `json:"slots,omitempty"`     // state: round length
	Value     float64      `json:"value,omitempty"`     // state: per-task value ν
	Departure core.Slot    `json:"departure,omitempty"` // welcome: admitted window end
	Task      core.TaskID  `json:"task,omitempty"`      // assign
	Amount    float64      `json:"amount,omitempty"`    // payment
	Welfare   float64      `json:"welfare,omitempty"`   // end
	Payments  float64      `json:"payments,omitempty"`  // end: total paid
	Budget    float64      `json:"budget,omitempty"`    // state/end: round budget B (0: unbudgeted)
	Round     int          `json:"round,omitempty"`     // state/welcome/end/round/resume: round number (1-based)
	Error     string       `json:"error,omitempty"`     // error
	// Wire negotiates the framing: on hello it is the format the agent
	// requests ("json", "binary", or empty for the JSON default); on
	// state it is the format in effect immediately after that reply.
	Wire string `json:"wire,omitempty"`

	// Distributed-shard RPC fields (scalars only: Message stays
	// comparable so differential tests can use struct equality).
	Shard  int          `json:"shard,omitempty"`  // shard-join: partition index
	Shards int          `json:"shards,omitempty"` // shard-join: total partitions
	Count  int          `json:"count,omitempty"`  // pull/topup/shard-cands/shard-unserved/shard-track/shard-snapshot
	Runner core.PhoneID `json:"runner,omitempty"` // shard-win: runner-up (core.NoPhone if none)
	Seq    uint64       `json:"seq,omitempty"`    // request/reply: applied-message counter echo
	Data   string       `json:"data,omitempty"`   // shard-snapshot: base64 chunk
}

// Validate checks type-specific structural requirements of inbound
// (agent-sent) messages; platform-sent messages are trusted locally.
func (m *Message) Validate() error {
	switch m.Type {
	case TypeHello:
		if _, err := FormatByName(m.Wire); err != nil {
			return err
		}
		return nil
	case TypeBid:
		if m.Duration < 1 {
			return fmt.Errorf("protocol: bid duration %d < 1", m.Duration)
		}
		if m.Duration > MaxDuration {
			return fmt.Errorf("protocol: bid duration %d exceeds limit %d", m.Duration, MaxDuration)
		}
		// NaN and ±Inf compare false against every threshold, so an
		// explicit finiteness check is required: a NaN cost would pass
		// `cost < 0` and then poison the greedy cost ordering.
		if math.IsNaN(m.Cost) || math.IsInf(m.Cost, 0) {
			return fmt.Errorf("protocol: non-finite bid cost %g", m.Cost)
		}
		if m.Cost < 0 {
			return fmt.Errorf("protocol: negative bid cost %g", m.Cost)
		}
		if len(m.Name) > MaxNameBytes {
			return fmt.Errorf("protocol: bid name %d bytes exceeds limit %d", len(m.Name), MaxNameBytes)
		}
		// The binary framing carries names as raw bytes; JSON cannot
		// represent invalid UTF-8, so rejecting it here keeps the two
		// framings' value spaces identical.
		if !utf8.ValidString(m.Name) {
			return fmt.Errorf("protocol: bid name is not valid UTF-8")
		}
		return nil
	case TypeResume:
		if m.Phone < 0 {
			return fmt.Errorf("protocol: resume phone %d < 0", m.Phone)
		}
		if m.Round < 1 {
			return fmt.Errorf("protocol: resume round %d < 1", m.Round)
		}
		return nil
	case TypeComplete:
		if m.Phone < 0 {
			return fmt.Errorf("protocol: complete phone %d < 0", m.Phone)
		}
		if m.Task < 0 {
			return fmt.Errorf("protocol: complete task %d < 0", m.Task)
		}
		if m.Round < 1 {
			return fmt.Errorf("protocol: complete round %d < 1", m.Round)
		}
		return nil
	case TypePayment, TypeClawback:
		// Platform-originated in the agent conversation, but the frames
		// also travel coordinator->shard and shard->coordinator in the
		// distributed deployment, so the float must be finite: a NaN
		// amount would poison replica payment state and cannot survive a
		// JSON re-encode anyway.
		if !finite(m.Amount) {
			return fmt.Errorf("protocol: non-finite %s amount %g", m.Type, m.Amount)
		}
		return nil
	case TypeState:
		if !finite(m.Value) {
			return fmt.Errorf("protocol: non-finite state value %g", m.Value)
		}
		if !finite(m.Budget) || m.Budget < 0 {
			return fmt.Errorf("protocol: invalid state budget %g", m.Budget)
		}
		return nil
	case TypeEnd:
		if !finite(m.Welfare) || !finite(m.Payments) {
			return fmt.Errorf("protocol: non-finite end totals (welfare %g, payments %g)", m.Welfare, m.Payments)
		}
		if !finite(m.Budget) || m.Budget < 0 {
			return fmt.Errorf("protocol: invalid end budget %g", m.Budget)
		}
		return nil
	case TypeShardJoin:
		if m.Shards < 1 || m.Shards > MaxShards {
			return fmt.Errorf("protocol: shard-join shards %d outside [1, %d]", m.Shards, MaxShards)
		}
		if m.Shard < 0 || m.Shard >= m.Shards {
			return fmt.Errorf("protocol: shard-join shard %d outside [0, %d)", m.Shard, m.Shards)
		}
		return nil
	case TypeShardSnapshot:
		if m.Count < 0 {
			return fmt.Errorf("protocol: shard-snapshot count %d < 0", m.Count)
		}
		if len(m.Data) > MaxSnapshotChunk {
			return fmt.Errorf("protocol: shard-snapshot chunk %d bytes exceeds limit %d", len(m.Data), MaxSnapshotChunk)
		}
		return nil
	case TypeShardAdmit:
		if m.Phone < 0 {
			return fmt.Errorf("protocol: shard-admit phone %d < 0", m.Phone)
		}
		if m.Slot < 1 {
			return fmt.Errorf("protocol: shard-admit arrival %d < 1", m.Slot)
		}
		if m.Departure < m.Slot {
			return fmt.Errorf("protocol: shard-admit departure %d before arrival %d", m.Departure, m.Slot)
		}
		if !finite(m.Cost) || m.Cost < 0 {
			return fmt.Errorf("protocol: shard-admit cost %g not finite and non-negative", m.Cost)
		}
		return nil
	case TypePull, TypeTopup:
		if m.Slot < 1 {
			return fmt.Errorf("protocol: %s slot %d < 1", m.Type, m.Slot)
		}
		if m.Count < 1 || m.Count > MaxPullBatch {
			return fmt.Errorf("protocol: %s count %d outside [1, %d]", m.Type, m.Count, MaxPullBatch)
		}
		return nil
	case TypeCands:
		if m.Slot < 1 {
			return fmt.Errorf("protocol: shard-cands slot %d < 1", m.Slot)
		}
		if m.Count < 0 || m.Count > MaxPullBatch {
			return fmt.Errorf("protocol: shard-cands count %d outside [0, %d]", m.Count, MaxPullBatch)
		}
		return nil
	case TypeCand, TypePushback, TypePrice, TypeShardComplete:
		if m.Phone < 0 {
			return fmt.Errorf("protocol: %s phone %d < 0", m.Type, m.Phone)
		}
		return nil
	case TypeShardWin:
		if m.Task < 0 {
			return fmt.Errorf("protocol: shard-win task %d < 0", m.Task)
		}
		if m.Phone < 0 {
			return fmt.Errorf("protocol: shard-win phone %d < 0", m.Phone)
		}
		if m.Runner < core.NoPhone {
			return fmt.Errorf("protocol: shard-win runner %d < %d", m.Runner, core.NoPhone)
		}
		if m.Slot < 1 {
			return fmt.Errorf("protocol: shard-win slot %d < 1", m.Slot)
		}
		return nil
	case TypeShardUnserved:
		if m.Slot < 1 {
			return fmt.Errorf("protocol: shard-unserved slot %d < 1", m.Slot)
		}
		if m.Count < 1 || m.Count > MaxPullBatch {
			return fmt.Errorf("protocol: shard-unserved count %d outside [1, %d]", m.Count, MaxPullBatch)
		}
		return nil
	case TypeShardPaid:
		if m.Phone < 0 {
			return fmt.Errorf("protocol: shard-paid phone %d < 0", m.Phone)
		}
		if m.Slot < 1 {
			return fmt.Errorf("protocol: shard-paid slot %d < 1", m.Slot)
		}
		if !finite(m.Amount) {
			return fmt.Errorf("protocol: non-finite shard-paid amount %g", m.Amount)
		}
		return nil
	case TypeShardDefault:
		if m.Phone < 0 {
			return fmt.Errorf("protocol: shard-default phone %d < 0", m.Phone)
		}
		if m.Slot < 1 {
			return fmt.Errorf("protocol: shard-default slot %d < 1", m.Slot)
		}
		return nil
	case TypeShardTrack:
		if m.Count != 0 && m.Count != 1 {
			return fmt.Errorf("protocol: shard-track count %d not 0 or 1", m.Count)
		}
		return nil
	case TypeAck, TypeWelcome, TypeSlot, TypeAssign, TypeRound, TypeError:
		return nil
	case "":
		return fmt.Errorf("protocol: missing message type")
	default:
		return fmt.Errorf("protocol: unknown message type %q", m.Type)
	}
}

// finite reports whether f is neither NaN nor ±Inf.
func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// AppendFrame appends m's wire encoding in format f to dst and returns
// the extended slice. This is how pre-encoded frames are built once and
// shared across many connections (see Writer.SendEncoded); Writer.Send
// uses it internally with a reusable scratch buffer.
func AppendFrame(dst []byte, m *Message, f Format) ([]byte, error) {
	switch f {
	case FormatJSON:
		b, err := json.Marshal(m)
		if err != nil {
			return dst, fmt.Errorf("protocol: encode %s: %w", m.Type, err)
		}
		dst = append(dst, b...)
		return append(dst, '\n'), nil
	case FormatBinary:
		return appendBinaryFrame(dst, m)
	default:
		return dst, fmt.Errorf("protocol: unknown format %d", f)
	}
}

// Writer frames messages onto a stream. Writer is not safe for
// concurrent use; callers serialize (the platform holds one per
// connection under its own writer goroutine). A Writer starts in JSON;
// SetFormat switches the framing of subsequent sends.
type Writer struct {
	bw      *bufio.Writer
	format  Format
	scratch []byte // reused across Send calls: steady-state sends allocate nothing
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// SetFormat switches the framing of subsequent Send calls. The caller
// owns the negotiation ordering (see the package comment).
func (w *Writer) SetFormat(f Format) { w.format = f }

// Format returns the current framing.
func (w *Writer) Format() Format { return w.format }

// Send writes one message and flushes.
func (w *Writer) Send(m *Message) error {
	if err := w.Queue(m); err != nil {
		return err
	}
	return w.Flush()
}

// SendEncoded writes a frame already encoded by AppendFrame (in the
// Writer's current format — the caller guarantees the match) and
// flushes. Zero-allocation: this is the fan-out hot path, where one
// encoded broadcast frame is shared by every session.
func (w *Writer) SendEncoded(frame []byte) error {
	if err := w.QueueEncoded(frame); err != nil {
		return err
	}
	return w.Flush()
}

// Queue stages m in the write buffer without flushing. Callers that
// drain a backlog (the platform's session writers) queue every pending
// message and flush once — write coalescing: one syscall (or one pipe
// handoff) carries the whole batch. An overfull buffer still writes
// through on its own.
func (w *Writer) Queue(m *Message) error {
	b, err := AppendFrame(w.scratch[:0], m, w.format)
	if err != nil {
		return err
	}
	w.scratch = b[:0]
	if _, err := w.bw.Write(b); err != nil {
		return fmt.Errorf("protocol: send %s: %w", m.Type, err)
	}
	return nil
}

// QueueEncoded stages a pre-encoded frame without flushing; see Queue.
func (w *Writer) QueueEncoded(frame []byte) error {
	if len(frame) == 0 {
		return nil
	}
	if _, err := w.bw.Write(frame); err != nil {
		return fmt.Errorf("protocol: send frame: %w", err)
	}
	return nil
}

// Flush writes the staged bytes through to the connection.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("protocol: flush: %w", err)
	}
	return nil
}

// Reader parses messages off a stream. A Reader starts in JSON
// (newline-delimited) mode; SetFormat switches to binary frames while
// preserving any bytes already buffered, so a stream may negotiate
// formats mid-connection. Not safe for concurrent use.
type Reader struct {
	br      *bufio.Reader
	format  Format
	payload []byte // reused line/frame buffer; steady-state reads allocate nothing
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 4096)}
}

// SetFormat switches the framing of subsequent Receive calls. Buffered
// bytes carry over, so the switch may follow a JSON message that was
// already read from the same burst.
func (r *Reader) SetFormat(f Format) { r.format = f }

// Format returns the current framing.
func (r *Reader) Format() Format { return r.format }

// Receive reads the next message. It returns io.EOF at a clean end of
// stream and a descriptive error for malformed input.
func (r *Reader) Receive() (*Message, error) {
	m := new(Message)
	if err := r.ReceiveInto(m); err != nil {
		return nil, err
	}
	return m, nil
}

// ReceiveInto reads the next message into *m, overwriting it. This is
// the allocation-free read path: with binary framing, steady-state
// receives of the hot message types perform no allocations at all.
func (r *Reader) ReceiveInto(m *Message) error {
	*m = Message{}
	var err error
	if r.format == FormatBinary {
		err = r.receiveBinary(m)
	} else {
		err = r.receiveJSON(m)
	}
	if err != nil {
		return err
	}
	return m.Validate()
}

func (r *Reader) receiveJSON(m *Message) error {
	for {
		line, err := r.readLine()
		if err != nil {
			return err
		}
		if len(line) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(m); err != nil {
			return fmt.Errorf("protocol: malformed message: %w", err)
		}
		return nil
	}
}

// readLine accumulates the next newline-terminated line into the reused
// payload buffer, stripping the terminator (and a preceding CR, for
// telnet-style peers). A final unterminated line before EOF is returned
// as a line, matching bufio.Scanner's behavior.
func (r *Reader) readLine() ([]byte, error) {
	r.payload = r.payload[:0]
	for {
		chunk, err := r.br.ReadSlice('\n')
		r.payload = append(r.payload, chunk...)
		if len(r.payload) > MaxLineBytes+1 {
			return nil, fmt.Errorf("protocol: read: message exceeds %d bytes", MaxLineBytes)
		}
		switch {
		case err == nil:
			line := r.payload[:len(r.payload)-1] // strip '\n'
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return line, nil
		case errors.Is(err, bufio.ErrBufferFull):
			continue
		case errors.Is(err, io.EOF):
			if len(r.payload) == 0 {
				return nil, io.EOF
			}
			return r.payload, nil
		default:
			return nil, fmt.Errorf("protocol: read: %w", err)
		}
	}
}

func (r *Reader) receiveBinary(m *Message) error {
	// Peek+Discard keeps the header inside the bufio buffer — a local
	// [4]byte passed through io.ReadFull's interface would escape and
	// cost one allocation per message.
	hdr, err := r.br.Peek(4)
	if err != nil {
		if errors.Is(err, io.EOF) {
			if len(hdr) == 0 {
				return io.EOF // clean end of stream at a frame boundary
			}
			return fmt.Errorf("protocol: torn frame header (%d of 4 bytes): %w", len(hdr), io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("protocol: read frame header: %w", err)
	}
	n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if _, err := r.br.Discard(4); err != nil {
		return fmt.Errorf("protocol: read frame header: %w", err)
	}
	if n < 1 || n > MaxFrameBytes {
		return fmt.Errorf("protocol: binary frame length %d outside [1, %d]", n, MaxFrameBytes)
	}
	if cap(r.payload) < n {
		r.payload = make([]byte, n)
	}
	buf := r.payload[:n]
	if k, err := io.ReadFull(r.br, buf); err != nil {
		return fmt.Errorf("protocol: torn binary frame (%d of %d payload bytes): %w", k, n, err)
	}
	return decodeBinaryPayload(buf, m)
}
