// Package protocol defines the wire format between the crowdsourcing
// platform server and smartphone agents: newline-delimited JSON messages
// over TCP, one flat Message struct discriminated by Type. A flat tagged
// message keeps the framing trivial to debug with netcat while remaining
// strict: unknown fields and unknown types are rejected.
//
// Conversation (agent-initiated messages left, platform replies right):
//
//	hello                  -> state{slot, slots, value}
//	bid{name, duration,    -> ack (bid queued for the next slot tick)
//	    cost}              -> welcome{phone, slot(=arrival), departure}
//	                          ... at the next slot tick
//	                       <- slot{slot}           every tick
//	                       <- assign{phone, task, slot}  if the bid wins
//	                       <- payment{phone, amount, slot} at departure
//	                       <- end{welfare, payments, round} after each round's
//	                          last slot
//	                       <- round{round} when a multi-round platform opens
//	                          the next round (agents may bid again)
//	resume{phone, round}   -> replay of the phone's standing: welcome, its
//	                          assignment, its payment or clawback if any,
//	                          and end if the round is over — so an agent
//	                          that lost its TCP connection mid-round
//	                          re-attaches to its admitted bid and still
//	                          learns its critical-value payment (or that it
//	                          was defaulted). A resume naming a finished
//	                          round is answered with round{current} instead
//	                          (the phone-ID namespace restarted; bid again).
//	complete{phone, task,  -> ack, or error{...} naming the typed core
//	         round}           rejection (already completed / not assigned)
//	                          without disturbing the round. Only meaningful
//	                          when the platform runs a completion deadline;
//	                          a winner that never completes is defaulted
//	                          when its deadline lapses:
//	                       <- clawback{phone, amount, slot} payment revoked
//	                          (amount 0 if none had been issued)
//
// Bids carry a duration (number of slots the phone stays active,
// starting at the slot in which the platform admits the bid) rather than
// an absolute departure slot, so agents cannot race the slot clock into
// claiming an earlier arrival — the no-early-arrival constraint is
// enforced by construction, mirroring core.OnlineAuction.
package protocol

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dynacrowd/internal/core"
)

// Message types.
const (
	TypeHello   = "hello"
	TypeState   = "state"
	TypeBid     = "bid"
	TypeAck     = "ack"
	TypeWelcome = "welcome"
	TypeSlot    = "slot"
	TypeAssign  = "assign"
	TypePayment = "payment"
	TypeEnd     = "end"
	TypeRound   = "round"
	TypeResume  = "resume"
	TypeError   = "error"
	// TypeComplete is an agent's report that it performed its assigned
	// task; TypeClawback is the platform's notice that a defaulted
	// winner's payment is revoked.
	TypeComplete = "complete"
	TypeClawback = "clawback"
)

// MaxLineBytes bounds a single wire message; longer lines abort the
// connection (defense against unframed garbage).
const MaxLineBytes = 64 * 1024

// MaxDuration bounds a bid's claimed duration. The platform clamps
// departures to the round length anyway; the bound exists so that
// arrival+duration arithmetic can never overflow the Slot integer and
// slip past that clamp as a negative departure.
const MaxDuration = core.Slot(1) << 30

// Message is the single wire envelope. Which fields are meaningful
// depends on Type; the zero value of unused fields is omitted.
type Message struct {
	Type string `json:"type"`

	// Agent fields.
	Name     string    `json:"name,omitempty"`     // bid: human-readable agent label
	Duration core.Slot `json:"duration,omitempty"` // bid: active slots from admission
	Cost     float64   `json:"cost,omitempty"`     // bid: claimed per-task cost

	// Platform fields (Phone and Round also appear on the agent-sent
	// resume message, naming the admitted bid to re-attach).
	Phone     core.PhoneID `json:"phone,omitempty"`     // welcome/assign/payment/resume
	Slot      core.Slot    `json:"slot,omitempty"`      // state/welcome/slot/assign/payment
	Slots     core.Slot    `json:"slots,omitempty"`     // state: round length
	Value     float64      `json:"value,omitempty"`     // state: per-task value ν
	Departure core.Slot    `json:"departure,omitempty"` // welcome: admitted window end
	Task      core.TaskID  `json:"task,omitempty"`      // assign
	Amount    float64      `json:"amount,omitempty"`    // payment
	Welfare   float64      `json:"welfare,omitempty"`   // end
	Payments  float64      `json:"payments,omitempty"`  // end: total paid
	Round     int          `json:"round,omitempty"`     // state/welcome/end/round/resume: round number (1-based)
	Error     string       `json:"error,omitempty"`     // error
}

// Validate checks type-specific structural requirements of inbound
// (agent-sent) messages; platform-sent messages are trusted locally.
func (m *Message) Validate() error {
	switch m.Type {
	case TypeHello:
		return nil
	case TypeBid:
		if m.Duration < 1 {
			return fmt.Errorf("protocol: bid duration %d < 1", m.Duration)
		}
		if m.Duration > MaxDuration {
			return fmt.Errorf("protocol: bid duration %d exceeds limit %d", m.Duration, MaxDuration)
		}
		// NaN and ±Inf compare false against every threshold, so an
		// explicit finiteness check is required: a NaN cost would pass
		// `cost < 0` and then poison the greedy cost ordering.
		if math.IsNaN(m.Cost) || math.IsInf(m.Cost, 0) {
			return fmt.Errorf("protocol: non-finite bid cost %g", m.Cost)
		}
		if m.Cost < 0 {
			return fmt.Errorf("protocol: negative bid cost %g", m.Cost)
		}
		return nil
	case TypeResume:
		if m.Phone < 0 {
			return fmt.Errorf("protocol: resume phone %d < 0", m.Phone)
		}
		if m.Round < 1 {
			return fmt.Errorf("protocol: resume round %d < 1", m.Round)
		}
		return nil
	case TypeComplete:
		if m.Phone < 0 {
			return fmt.Errorf("protocol: complete phone %d < 0", m.Phone)
		}
		if m.Task < 0 {
			return fmt.Errorf("protocol: complete task %d < 0", m.Task)
		}
		if m.Round < 1 {
			return fmt.Errorf("protocol: complete round %d < 1", m.Round)
		}
		return nil
	case TypeState, TypeAck, TypeWelcome, TypeSlot, TypeAssign, TypePayment, TypeEnd, TypeRound, TypeError, TypeClawback:
		return nil
	case "":
		return fmt.Errorf("protocol: missing message type")
	default:
		return fmt.Errorf("protocol: unknown message type %q", m.Type)
	}
}

// Writer frames messages onto a stream. Writer is not safe for
// concurrent use; callers serialize (the platform holds one per
// connection under its own lock).
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Send writes one message and flushes.
func (w *Writer) Send(m *Message) error {
	if err := w.enc.Encode(m); err != nil {
		return fmt.Errorf("protocol: send %s: %w", m.Type, err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("protocol: flush: %w", err)
	}
	return nil
}

// Reader parses newline-delimited messages off a stream.
type Reader struct {
	s *bufio.Scanner
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 4096), MaxLineBytes)
	return &Reader{s: s}
}

// Receive reads the next message. It returns io.EOF at a clean end of
// stream and a descriptive error for malformed input.
func (r *Reader) Receive() (*Message, error) {
	for {
		if !r.s.Scan() {
			if err := r.s.Err(); err != nil {
				return nil, fmt.Errorf("protocol: read: %w", err)
			}
			return nil, io.EOF
		}
		line := r.s.Bytes()
		if len(line) == 0 {
			continue
		}
		var m Message
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("protocol: malformed message: %w", err)
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
		return &m, nil
	}
}
