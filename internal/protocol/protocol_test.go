package protocol

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dynacrowd/internal/core"
)

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []*Message{
		{Type: TypeHello},
		{Type: TypeState, Slot: 3, Slots: 50, Value: 30},
		{Type: TypeBid, Name: "phone-a", Duration: 5, Cost: 12.5},
		{Type: TypeAck},
		{Type: TypeWelcome, Phone: 7, Slot: 4, Departure: 8},
		{Type: TypeSlot, Slot: 9},
		{Type: TypeAssign, Phone: 7, Task: 2, Slot: 9},
		{Type: TypePayment, Phone: 7, Amount: 19.25, Slot: 11},
		{Type: TypeEnd, Welfare: 812.5, Payments: 1100},
		{Type: TypeResume, Phone: 7, Round: 2},
		{Type: TypeError, Error: "boom"},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, m := range msgs {
		if err := w.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range msgs {
		got, err := r.Receive()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if *got != *want {
			t.Fatalf("message %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Receive(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF at stream end, got %v", err)
	}
}

func TestReceiveSkipsBlankLines(t *testing.T) {
	r := NewReader(strings.NewReader("\n\n{\"type\":\"hello\"}\n"))
	m, err := r.Receive()
	if err != nil || m.Type != TypeHello {
		t.Fatalf("got %+v, %v", m, err)
	}
}

func TestReceiveRejects(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"not json", "{nope\n"},
		{"unknown field", `{"type":"hello","extra":1}` + "\n"},
		{"unknown type", `{"type":"warble"}` + "\n"},
		{"missing type", `{"slot":3}` + "\n"},
		{"bad bid duration", `{"type":"bid","cost":5}` + "\n"},
		{"negative bid cost", `{"type":"bid","duration":2,"cost":-4}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewReader(strings.NewReader(tc.line)).Receive(); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestReceiveOversizedLine(t *testing.T) {
	line := `{"type":"bid","duration":1,"cost":1,"name":"` + strings.Repeat("x", MaxLineBytes) + `"}`
	if _, err := NewReader(strings.NewReader(line + "\n")).Receive(); err == nil {
		t.Fatal("want error for oversized message")
	}
}

func TestValidateTable(t *testing.T) {
	good := []Message{
		{Type: TypeHello},
		{Type: TypeBid, Duration: 1},
		{Type: TypeBid, Duration: 10, Cost: 3},
		{Type: TypeBid, Duration: MaxDuration, Cost: 3},
		{Type: TypeEnd},
		{Type: TypeResume, Phone: 0, Round: 1},
		{Type: TypeResume, Phone: 12, Round: 3},
	}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", m, err)
		}
	}
	bad := []Message{
		{},
		{Type: "nonsense"},
		{Type: TypeBid},
		{Type: TypeBid, Duration: -1},
		{Type: TypeBid, Duration: 1, Cost: -0.5},
		{Type: TypeResume, Phone: -1, Round: 1},
		{Type: TypeResume, Phone: 0, Round: 0},
		{Type: TypeResume, Phone: 0, Round: -2},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v accepted", m)
		}
	}
}

// TestValidateRejectsHostileBids: table tests for the bid fields an
// adversarial agent could weaponize — non-finite costs poison the
// greedy cost ordering (NaN compares false against every threshold),
// and durations near the integer limit overflow the departure
// arithmetic past the round-length clamp.
func TestValidateRejectsHostileBids(t *testing.T) {
	cases := []struct {
		name string
		m    Message
	}{
		{"NaN cost", Message{Type: TypeBid, Duration: 2, Cost: math.NaN()}},
		{"+Inf cost", Message{Type: TypeBid, Duration: 2, Cost: math.Inf(1)}},
		{"-Inf cost", Message{Type: TypeBid, Duration: 2, Cost: math.Inf(-1)}},
		{"duration past limit", Message{Type: TypeBid, Duration: MaxDuration + 1, Cost: 1}},
		{"overflowing duration", Message{Type: TypeBid, Duration: core.Slot(math.MaxInt64), Cost: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.m.Validate(); err == nil {
				t.Fatalf("%+v accepted", tc.m)
			}
		})
	}
	// The wire layer rejects them too (NaN/Inf are not valid JSON
	// numbers, so they already fail to encode; a hostile peer would
	// hand-craft the line instead).
	for _, line := range []string{
		`{"type":"bid","duration":2,"cost":1e999}`,
		`{"type":"bid","duration":9223372036854775807,"cost":1}`,
	} {
		if _, err := NewReader(strings.NewReader(line + "\n")).Receive(); err == nil {
			t.Fatalf("wire accepted %s", line)
		}
	}
}

// TestWireRoundTripProperty fuzzes bid payloads through the framing.
func TestWireRoundTripProperty(t *testing.T) {
	prop := func(name string, duration uint8, costCents uint32) bool {
		if strings.ContainsAny(name, "\n\r") {
			name = strings.NewReplacer("\n", "", "\r", "").Replace(name)
		}
		m := &Message{
			Type:     TypeBid,
			Name:     name,
			Duration: core.Slot(1 + int(duration)&0x3f), // keep small and positive
			Cost:     float64(costCents) / 100,
		}
		var buf bytes.Buffer
		if err := NewWriter(&buf).Send(m); err != nil {
			return false
		}
		got, err := NewReader(&buf).Receive()
		if err != nil {
			return false
		}
		return *got == *m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
