package protocol

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"dynacrowd/internal/core"
)

// sampleMessages covers every message type with representative field
// values (hot types exercise their fixed layouts, cold types their
// JSON-in-frame carriage).
func sampleMessages() []Message {
	return []Message{
		{Type: TypeHello, Wire: WireBinary},
		{Type: TypeState, Slot: 3, Slots: 20, Value: 30.5, Round: 2, Wire: WireBinary},
		{Type: TypeBid, Name: "phone-7", Duration: 5, Cost: 12.25},
		{Type: TypeBid, Name: "", Duration: 1, Cost: 0},
		{Type: TypeAck},
		{Type: TypeWelcome, Phone: 4, Slot: 2, Departure: 6, Round: 1},
		{Type: TypeSlot, Slot: 9},
		{Type: TypeSlot, Slot: 0},
		{Type: TypeAssign, Phone: 11, Task: 3, Slot: 7},
		{Type: TypePayment, Phone: 11, Amount: 27.75, Slot: 8},
		{Type: TypePayment, Phone: 2, Amount: 0, Slot: 1},
		{Type: TypeEnd, Welfare: 120.5, Payments: 88.25, Round: 3},
		{Type: TypeRound, Round: 4},
		{Type: TypeResume, Phone: 5, Round: 2},
		{Type: TypeError, Error: "bid rejected: window closed"},
		{Type: TypeComplete, Phone: 5, Task: 1, Round: 2},
		{Type: TypeClawback, Phone: 5, Amount: 13.5, Slot: 9},

		// Distributed-shard RPC vocabulary (PR 9).
		{Type: TypeShardJoin, Shard: 2, Shards: 4},
		{Type: TypeShardSnapshot, Count: 3, Data: "eyJ2ZXJzaW9uIjoxfQ=="},
		{Type: TypeShardSnapshot, Count: 0, Data: ""},
		{Type: TypeShardAdmit, Phone: 7, Slot: 2, Departure: 9, Cost: 4.25},
		{Type: TypePull, Slot: 3, Count: 5, Seq: 17},
		{Type: TypeTopup, Slot: 3, Count: 2, Seq: 18},
		{Type: TypeCands, Slot: 3, Count: 0, Seq: 18},
		{Type: TypeCands, Slot: 3, Count: 4, Seq: 19},
		{Type: TypeCand, Phone: 12},
		{Type: TypePushback, Phone: 12},
		{Type: TypeShardWin, Task: 6, Phone: 3, Runner: core.NoPhone, Slot: 4},
		{Type: TypeShardWin, Task: 7, Phone: 0, Runner: 9, Slot: 4},
		{Type: TypeShardUnserved, Slot: 4, Count: 2},
		{Type: TypePrice, Phone: 3, Seq: 40},
		{Type: TypeShardPaid, Phone: 3, Amount: 18.5, Slot: 9},
		{Type: TypeShardDefault, Phone: 3, Slot: 6},
		{Type: TypeShardComplete, Phone: 4},
		{Type: TypeShardTrack, Count: 1},
		{Type: TypeShardTrack, Count: 0},
	}
}

func TestBinaryRoundTripAllTypes(t *testing.T) {
	for _, want := range sampleMessages() {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.SetFormat(FormatBinary)
		if err := w.Send(&want); err != nil {
			t.Fatalf("send %s: %v", want.Type, err)
		}
		r := NewReader(&buf)
		r.SetFormat(FormatBinary)
		got, err := r.Receive()
		if err != nil {
			t.Fatalf("receive %s: %v", want.Type, err)
		}
		if *got != want {
			t.Errorf("round trip %s: got %+v want %+v", want.Type, got, want)
		}
		if _, err := r.Receive(); err != io.EOF {
			t.Errorf("after %s: want io.EOF, got %v", want.Type, err)
		}
	}
}

// TestBinaryMatchesJSONDecode proves the two framings agree: every
// sample message encoded in binary decodes to the same Message a JSON
// round trip produces.
func TestBinaryMatchesJSONDecode(t *testing.T) {
	for _, m := range sampleMessages() {
		viaJSON := roundTrip(t, m, FormatJSON)
		viaBin := roundTrip(t, m, FormatBinary)
		if viaJSON != viaBin {
			t.Errorf("%s: json %+v != binary %+v", m.Type, viaJSON, viaBin)
		}
	}
}

func roundTrip(t *testing.T, m Message, f Format) Message {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetFormat(f)
	if err := w.Send(&m); err != nil {
		t.Fatalf("%v send %s: %v", f, m.Type, err)
	}
	r := NewReader(&buf)
	r.SetFormat(f)
	got, err := r.Receive()
	if err != nil {
		t.Fatalf("%v receive %s: %v", f, m.Type, err)
	}
	return *got
}

// TestMidStreamFormatSwitch exercises the negotiation shape: a JSON
// hello and state, then binary frames on the same stream, all written
// into one buffer before the reader starts — the reader must not
// over-read past the JSON line it consumes.
func TestMidStreamFormatSwitch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Send(&Message{Type: TypeHello, Wire: WireBinary}); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(&Message{Type: TypeState, Slots: 20, Value: 30, Round: 1, Wire: WireBinary}); err != nil {
		t.Fatal(err)
	}
	w.SetFormat(FormatBinary)
	for slot := core.Slot(1); slot <= 3; slot++ {
		if err := w.Send(&Message{Type: TypeSlot, Slot: slot}); err != nil {
			t.Fatal(err)
		}
	}

	r := NewReader(&buf)
	m, err := r.Receive()
	if err != nil || m.Type != TypeHello {
		t.Fatalf("hello: %+v, %v", m, err)
	}
	m, err = r.Receive()
	if err != nil || m.Type != TypeState || m.Wire != WireBinary {
		t.Fatalf("state: %+v, %v", m, err)
	}
	r.SetFormat(FormatBinary)
	for slot := core.Slot(1); slot <= 3; slot++ {
		m, err = r.Receive()
		if err != nil || m.Type != TypeSlot || m.Slot != slot {
			t.Fatalf("slot %d: %+v, %v", slot, m, err)
		}
	}
	if _, err := r.Receive(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestBinaryRejects(t *testing.T) {
	frame := func(code uint8, body []byte) []byte {
		b := binary.LittleEndian.AppendUint32(nil, uint32(1+len(body)))
		b = append(b, code)
		return append(b, body...)
	}
	cases := []struct {
		name string
		raw  []byte
	}{
		{"zero length", []byte{0, 0, 0, 0}},
		{"oversized length", binary.LittleEndian.AppendUint32(nil, MaxFrameBytes+1)},
		{"huge length", []byte{0xff, 0xff, 0xff, 0xff}},
		{"truncated header", []byte{5, 0}},
		{"truncated payload", []byte{10, 0, 0, 0, codeSlot, 1, 2}},
		{"unknown code", frame(200, nil)},
		{"code zero", frame(0, nil)},
		{"slot short body", frame(codeSlot, make([]byte, 4))},
		{"slot long body", frame(codeSlot, make([]byte, 12))},
		{"assign short body", frame(codeAssign, make([]byte, 23))},
		{"payment long body", frame(codePayment, make([]byte, 25))},
		{"bid too short", frame(codeBid, make([]byte, 17))},
		{"bid name length lies", frame(codeBid, append(make([]byte, 16), 0xff, 0x00))},
		{"bid zero duration", frame(codeBid, make([]byte, 18))},
		{"cold type garbage json", frame(codeEnd, []byte("{nope"))},
		{"cold type unknown field", frame(codeEnd, []byte(`{"type":"end","bogus":1}`))},
		{"cold type code mismatch", frame(codeEnd, []byte(`{"type":"ack"}`))},
		{"nan bid cost", frame(codeBid, func() []byte {
			b := binary.LittleEndian.AppendUint64(nil, 1)               // duration
			b = binary.LittleEndian.AppendUint64(b, 0x7ff8000000000001) // NaN bits
			return binary.LittleEndian.AppendUint16(b, 0)
		}())},
	}
	for _, tc := range cases {
		r := NewReader(bytes.NewReader(tc.raw))
		r.SetFormat(FormatBinary)
		if m, err := r.Receive(); err == nil {
			t.Errorf("%s: want error, got %+v", tc.name, m)
		} else if err == io.EOF && tc.name != "truncated header" {
			// A truncated header is indistinguishable from a clean close
			// only when zero bytes arrive; everything else must produce a
			// descriptive error, not bare EOF.
			t.Errorf("%s: want descriptive error, got bare io.EOF", tc.name)
		}
	}
}

func TestBinaryFrameEOFAtBoundary(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	r.SetFormat(FormatBinary)
	if _, err := r.Receive(); err != io.EOF {
		t.Fatalf("want io.EOF at clean boundary, got %v", err)
	}
}

func TestFormatByName(t *testing.T) {
	for name, want := range map[string]Format{"": FormatJSON, WireJSON: FormatJSON, WireBinary: FormatBinary} {
		got, err := FormatByName(name)
		if err != nil || got != want {
			t.Errorf("FormatByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := FormatByName("msgpack"); err == nil {
		t.Error("FormatByName(msgpack): want error")
	}
	if (&Message{Type: TypeHello, Wire: "msgpack"}).Validate() == nil {
		t.Error("hello with unknown wire must fail Validate")
	}
}

// TestReceiveIntoAllocFree pins the binary hot-path read at zero
// allocations per message once the payload buffer is warm.
func TestReceiveIntoAllocFree(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SetFormat(FormatBinary)
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.Send(&Message{Type: TypeSlot, Slot: core.Slot(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.SetFormat(FormatBinary)
	var m Message
	if err := r.ReceiveInto(&m); err != nil { // warm the payload buffer
		t.Fatal(err)
	}
	// AllocsPerRun invokes the function runs+1 times (one warmup), so
	// leave headroom in the message count.
	avg := testing.AllocsPerRun(n-10, func() {
		if err := r.ReceiveInto(&m); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("binary ReceiveInto allocs/msg = %v, want 0", avg)
	}
}

// TestSendAllocFree pins the binary hot-path write at zero allocations
// per message once the scratch buffer is warm.
func TestSendAllocFree(t *testing.T) {
	w := NewWriter(io.Discard)
	w.SetFormat(FormatBinary)
	m := &Message{Type: TypeSlot, Slot: 42}
	if err := w.Send(m); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := w.Send(m); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("binary Send allocs/msg = %v, want 0", avg)
	}
}

func benchmarkSend(b *testing.B, f Format, m *Message) {
	w := NewWriter(io.Discard)
	w.SetFormat(f)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Send(m); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkReceive(b *testing.B, f Format, m *Message) {
	frame, err := AppendFrame(nil, m, f)
	if err != nil {
		b.Fatal(err)
	}
	// A looping reader replays the one frame forever without reallocating.
	r := NewReader(&loopReader{frame: frame})
	r.SetFormat(f)
	var out Message
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.ReceiveInto(&out); err != nil {
			b.Fatal(err)
		}
	}
}

type loopReader struct {
	frame []byte
	off   int
}

func (l *loopReader) Read(p []byte) (int, error) {
	n := copy(p, l.frame[l.off:])
	l.off = (l.off + n) % len(l.frame)
	return n, nil
}

func BenchmarkWireSlot(b *testing.B) {
	m := &Message{Type: TypeSlot, Slot: 17}
	b.Run("json/send", func(b *testing.B) { benchmarkSend(b, FormatJSON, m) })
	b.Run("binary/send", func(b *testing.B) { benchmarkSend(b, FormatBinary, m) })
	b.Run("json/recv", func(b *testing.B) { benchmarkReceive(b, FormatJSON, m) })
	b.Run("binary/recv", func(b *testing.B) { benchmarkReceive(b, FormatBinary, m) })
}

func BenchmarkWireBid(b *testing.B) {
	m := &Message{Type: TypeBid, Name: "agent-12345", Duration: 5, Cost: 23.75}
	b.Run("json/send", func(b *testing.B) { benchmarkSend(b, FormatJSON, m) })
	b.Run("binary/send", func(b *testing.B) { benchmarkSend(b, FormatBinary, m) })
	b.Run("json/recv", func(b *testing.B) { benchmarkReceive(b, FormatJSON, m) })
	b.Run("binary/recv", func(b *testing.B) { benchmarkReceive(b, FormatBinary, m) })
}
