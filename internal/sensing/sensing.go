// Package sensing is the application layer of the paper's Fig. 1: end
// users submit *sensing queries* ("noise level in Old Town every hour
// from 9 to 17"), the platform decomposes them into the per-slot tasks
// the auction mechanisms allocate, winning phones deliver readings, and
// the platform aggregates the readings back into per-query answers.
//
// The package closes the loop the paper's evaluation leaves open: it
// measures how auction-level metrics (service rate, welfare) translate
// into application-level data quality (coverage and aggregation error
// against a synthetic ground truth).
package sensing

import (
	"fmt"
	"math"
	"sort"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// QueryID identifies a sensing query.
type QueryID int

// Query is one end-user request: sample a region once per slot over a
// window.
type Query struct {
	ID     QueryID
	Region string    // free-form location label ("Old Town")
	From   core.Slot // first slot to sample, inclusive
	To     core.Slot // last slot to sample, inclusive
}

// Validate checks the query against a round of m slots.
func (q Query) Validate(m core.Slot) error {
	if q.Region == "" {
		return fmt.Errorf("sensing: query %d has no region", q.ID)
	}
	if q.From < 1 || q.To > m || q.From > q.To {
		return fmt.Errorf("sensing: query %d window [%d,%d] invalid for %d slots", q.ID, q.From, q.To, m)
	}
	return nil
}

// Plan maps queries to auction tasks: one task per (query, slot) sample,
// in slot order (the order core.Instance requires), and remembers which
// task answers which query.
type Plan struct {
	Queries []Query
	Tasks   []core.Task
	// Origin[k] is the query that task k samples for.
	Origin []QueryID
	// SlotOf[k] is task k's sample slot (== Tasks[k].Arrival).
	SlotOf []core.Slot
}

// NewPlan decomposes the queries for a round of m slots.
func NewPlan(m core.Slot, queries []Query) (*Plan, error) {
	p := &Plan{Queries: append([]Query(nil), queries...)}
	type sample struct {
		q    QueryID
		slot core.Slot
	}
	var samples []sample
	for _, q := range queries {
		if err := q.Validate(m); err != nil {
			return nil, err
		}
		for t := q.From; t <= q.To; t++ {
			samples = append(samples, sample{q: q.ID, slot: t})
		}
	}
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].slot < samples[j].slot })
	for k, s := range samples {
		p.Tasks = append(p.Tasks, core.Task{ID: core.TaskID(k), Arrival: s.slot})
		p.Origin = append(p.Origin, s.q)
		p.SlotOf = append(p.SlotOf, s.slot)
	}
	return p, nil
}

// Instance builds the auction round for the plan given the supply-side
// bids and the per-sample value ν.
func (p *Plan) Instance(m core.Slot, value float64, bids []core.Bid) *core.Instance {
	return &core.Instance{
		Slots: m,
		Value: value,
		Bids:  append([]core.Bid(nil), bids...),
		Tasks: append([]core.Task(nil), p.Tasks...),
	}
}

// Reading is one delivered measurement.
type Reading struct {
	Task  core.TaskID
	Query QueryID
	Slot  core.Slot
	Phone core.PhoneID
	Value float64
}

// GroundTruth synthesizes the phenomenon being sensed: a per-region
// baseline plus a slow sinusoidal drift over the day, so aggregation
// error is measurable.
type GroundTruth struct {
	rng  *workload.RNG
	base map[string]float64
	// NoiseStdDev perturbs each phone's reading (sensor noise).
	NoiseStdDev float64
}

// NewGroundTruth creates a reproducible phenomenon.
func NewGroundTruth(seed uint64, noiseStdDev float64) *GroundTruth {
	return &GroundTruth{
		rng:         workload.NewRNG(seed),
		base:        make(map[string]float64),
		NoiseStdDev: noiseStdDev,
	}
}

// At returns the true value of the phenomenon for a region at a slot.
func (g *GroundTruth) At(region string, slot core.Slot, m core.Slot) float64 {
	base, ok := g.base[region]
	if !ok {
		base = 40 + g.rng.Float64()*40 // e.g. dB for a noise map
		g.base[region] = base
	}
	phase := 0.0
	if m > 1 {
		phase = float64(slot-1) / float64(m-1)
	}
	return base + 6*math.Sin(2*math.Pi*phase)
}

// Collect simulates winners delivering readings for the plan under the
// given allocation: every served task yields the ground truth plus
// sensor noise; unserved tasks yield nothing.
func (g *GroundTruth) Collect(p *Plan, m core.Slot, alloc *core.Allocation) []Reading {
	var out []Reading
	for k, phone := range alloc.ByTask {
		if phone == core.NoPhone {
			continue
		}
		q := p.query(p.Origin[k])
		value := g.At(q.Region, p.SlotOf[k], m) + g.rng.Normal()*g.NoiseStdDev
		out = append(out, Reading{
			Task:  core.TaskID(k),
			Query: p.Origin[k],
			Slot:  p.SlotOf[k],
			Phone: phone,
			Value: value,
		})
	}
	return out
}

func (p *Plan) query(id QueryID) Query {
	for _, q := range p.Queries {
		if q.ID == id {
			return q
		}
	}
	return Query{}
}

// Answer is the aggregated result of one query.
type Answer struct {
	Query    QueryID
	Region   string
	Samples  int     // readings received
	Want     int     // samples requested
	Coverage float64 // Samples / Want
	Mean     float64 // mean of received readings (NaN if none)
	RMSE     float64 // error vs ground truth over received samples (NaN if none)
}

// Aggregate reduces readings into per-query answers, scoring them
// against the ground truth.
func Aggregate(p *Plan, m core.Slot, readings []Reading, truth *GroundTruth) []Answer {
	byQuery := make(map[QueryID][]Reading)
	for _, r := range readings {
		byQuery[r.Query] = append(byQuery[r.Query], r)
	}
	var answers []Answer
	for _, q := range p.Queries {
		rs := byQuery[q.ID]
		a := Answer{
			Query:  q.ID,
			Region: q.Region,
			Want:   int(q.To - q.From + 1),
		}
		a.Samples = len(rs)
		if a.Want > 0 {
			a.Coverage = float64(a.Samples) / float64(a.Want)
		}
		if len(rs) == 0 {
			a.Mean = math.NaN()
			a.RMSE = math.NaN()
			answers = append(answers, a)
			continue
		}
		var sum, sq float64
		for _, r := range rs {
			sum += r.Value
			d := r.Value - truth.At(q.Region, r.Slot, m)
			sq += d * d
		}
		a.Mean = sum / float64(len(rs))
		a.RMSE = math.Sqrt(sq / float64(len(rs)))
		answers = append(answers, a)
	}
	return answers
}

// CampaignResult ties auction metrics to data quality for one round.
type CampaignResult struct {
	Answers      []Answer
	MeanCoverage float64
	MeanRMSE     float64 // over answered queries
	Welfare      float64
	TotalPaid    float64
}

// RunCampaign plans the queries, runs the mechanism, collects readings,
// and aggregates — the full Fig. 1 pipeline in one call.
func RunCampaign(m core.Slot, value float64, queries []Query, bids []core.Bid, mech core.Mechanism, truth *GroundTruth) (*CampaignResult, error) {
	plan, err := NewPlan(m, queries)
	if err != nil {
		return nil, err
	}
	in := plan.Instance(m, value, bids)
	out, err := mech.Run(in)
	if err != nil {
		return nil, fmt.Errorf("sensing: %w", err)
	}
	readings := truth.Collect(plan, m, out.Allocation)
	answers := Aggregate(plan, m, readings, truth)

	res := &CampaignResult{
		Answers:   answers,
		Welfare:   out.Welfare,
		TotalPaid: out.TotalPayment(),
	}
	var covSum, rmseSum float64
	answered := 0
	for _, a := range answers {
		covSum += a.Coverage
		if !math.IsNaN(a.RMSE) {
			rmseSum += a.RMSE
			answered++
		}
	}
	if len(answers) > 0 {
		res.MeanCoverage = covSum / float64(len(answers))
	}
	if answered > 0 {
		res.MeanRMSE = rmseSum / float64(answered)
	}
	return res, nil
}
