package sensing

import (
	"math"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

func demoQueries() []Query {
	return []Query{
		{ID: 0, Region: "Old Town", From: 1, To: 4},
		{ID: 1, Region: "Docklands", From: 2, To: 3},
	}
}

func TestQueryValidate(t *testing.T) {
	bad := []Query{
		{ID: 0, Region: "", From: 1, To: 2},
		{ID: 1, Region: "x", From: 0, To: 2},
		{ID: 2, Region: "x", From: 1, To: 9},
		{ID: 3, Region: "x", From: 3, To: 2},
	}
	for _, q := range bad {
		if q.Validate(5) == nil {
			t.Errorf("query %d accepted", q.ID)
		}
	}
	if (Query{ID: 4, Region: "x", From: 1, To: 5}).Validate(5) != nil {
		t.Error("valid query rejected")
	}
}

func TestNewPlanDecomposes(t *testing.T) {
	p, err := NewPlan(5, demoQueries())
	if err != nil {
		t.Fatal(err)
	}
	// 4 samples for query 0, 2 for query 1.
	if len(p.Tasks) != 6 {
		t.Fatalf("planned %d tasks, want 6", len(p.Tasks))
	}
	// Tasks must be in arrival order with dense IDs (core invariant).
	for k, task := range p.Tasks {
		if task.ID != core.TaskID(k) {
			t.Fatalf("task %d has id %d", k, task.ID)
		}
		if k > 0 && task.Arrival < p.Tasks[k-1].Arrival {
			t.Fatal("tasks out of arrival order")
		}
		if p.SlotOf[k] != task.Arrival {
			t.Fatal("SlotOf mismatch")
		}
	}
	// Sample counts per query.
	count := map[QueryID]int{}
	for _, q := range p.Origin {
		count[q]++
	}
	if count[0] != 4 || count[1] != 2 {
		t.Fatalf("sample counts: %v", count)
	}
	// The instance must validate.
	in := p.Instance(5, 20, []core.Bid{{Phone: 0, Arrival: 1, Departure: 5, Cost: 2}})
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPlanRejectsBadQuery(t *testing.T) {
	if _, err := NewPlan(3, []Query{{ID: 0, Region: "x", From: 1, To: 9}}); err == nil {
		t.Fatal("want error")
	}
}

func TestGroundTruthStableAndDrifting(t *testing.T) {
	g := NewGroundTruth(1, 0)
	a := g.At("Old Town", 1, 24)
	b := g.At("Old Town", 1, 24)
	if a != b {
		t.Fatal("ground truth not stable")
	}
	mid := g.At("Old Town", 7, 24) // quarter phase: +6 sin(π/2·...)
	if mid == a {
		t.Fatal("no diurnal drift")
	}
	other := g.At("Docklands", 1, 24)
	if other == a {
		t.Fatal("regions share a baseline (vanishingly unlikely)")
	}
}

func TestCollectOnlyServedTasks(t *testing.T) {
	p, err := NewPlan(4, demoQueries()[:1])
	if err != nil {
		t.Fatal(err)
	}
	alloc := core.NewAllocation(len(p.Tasks), 2)
	alloc.Assign(0, 0, p.Tasks[0].Arrival)
	alloc.Assign(2, 1, p.Tasks[2].Arrival)
	g := NewGroundTruth(2, 0) // zero sensor noise: readings equal truth
	readings := g.Collect(p, 4, alloc)
	if len(readings) != 2 {
		t.Fatalf("got %d readings, want 2", len(readings))
	}
	for _, r := range readings {
		want := g.At("Old Town", r.Slot, 4)
		if math.Abs(r.Value-want) > 1e-9 {
			t.Fatalf("noise-free reading %g != truth %g", r.Value, want)
		}
	}
}

func TestAggregateScoresCoverageAndError(t *testing.T) {
	p, err := NewPlan(4, demoQueries())
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroundTruth(3, 0)
	// Answer query 0 with 2 of 4 samples; query 1 with none.
	var readings []Reading
	for k := range p.Tasks {
		if p.Origin[k] == 0 && len(readings) < 2 {
			readings = append(readings, Reading{
				Task: core.TaskID(k), Query: 0, Slot: p.SlotOf[k], Phone: 0,
				Value: g.At("Old Town", p.SlotOf[k], 4),
			})
		}
	}
	answers := Aggregate(p, 4, readings, g)
	if len(answers) != 2 {
		t.Fatalf("got %d answers", len(answers))
	}
	a0, a1 := answers[0], answers[1]
	if a0.Coverage != 0.5 || a0.Samples != 2 || a0.Want != 4 {
		t.Fatalf("query 0 coverage: %+v", a0)
	}
	if a0.RMSE > 1e-9 {
		t.Fatalf("noise-free RMSE %g != 0", a0.RMSE)
	}
	if a1.Samples != 0 || !math.IsNaN(a1.Mean) || !math.IsNaN(a1.RMSE) {
		t.Fatalf("unanswered query: %+v", a1)
	}
}

// TestRunCampaignEndToEnd exercises the full pipeline and ties data
// quality to auction performance: with abundant cheap phones, coverage
// is full and RMSE tracks the sensor noise.
func TestRunCampaignEndToEnd(t *testing.T) {
	rng := workload.NewRNG(4)
	var bids []core.Bid
	for i := 0; i < 30; i++ {
		a := core.Slot(1 + rng.Intn(4))
		d := a + core.Slot(rng.Intn(3))
		if d > 4 {
			d = 4
		}
		bids = append(bids, core.Bid{
			Phone: core.PhoneID(i), Arrival: a, Departure: d, Cost: rng.Uniform(1, 10),
		})
	}
	// Bids must be sorted by arrival for instance validity? Not required
	// by core, only dense IDs — already dense.
	truth := NewGroundTruth(5, 1.5)
	res, err := RunCampaign(4, 20, demoQueries(), bids, &core.OnlineMechanism{}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCoverage < 0.99 {
		t.Fatalf("coverage %g with abundant supply", res.MeanCoverage)
	}
	// RMSE should be on the order of the sensor noise, not the signal.
	if res.MeanRMSE <= 0 || res.MeanRMSE > 6 {
		t.Fatalf("RMSE %g implausible for noise σ=1.5", res.MeanRMSE)
	}
	if res.Welfare <= 0 || res.TotalPaid < res.Welfare*0 {
		t.Fatalf("auction metrics missing: %+v", res)
	}
}

// TestRunCampaignScarcity: with no phones, coverage is zero and RMSE
// undefined but the campaign still completes.
func TestRunCampaignScarcity(t *testing.T) {
	truth := NewGroundTruth(6, 1)
	res, err := RunCampaign(4, 20, demoQueries(), nil, &core.OnlineMechanism{}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCoverage != 0 {
		t.Fatalf("coverage %g with no phones", res.MeanCoverage)
	}
	if res.MeanRMSE != 0 {
		t.Fatalf("RMSE %g should be zero-valued when nothing answered", res.MeanRMSE)
	}
}

func TestRunCampaignPropagatesErrors(t *testing.T) {
	truth := NewGroundTruth(7, 1)
	if _, err := RunCampaign(3, 20, []Query{{ID: 0, Region: "x", From: 1, To: 9}}, nil, &core.OnlineMechanism{}, truth); err == nil {
		t.Fatal("want plan error")
	}
	bad := []core.Bid{{Phone: 9, Arrival: 1, Departure: 2, Cost: 1}}
	if _, err := RunCampaign(3, 20, demoQueries()[:1], bad, &core.OnlineMechanism{}, truth); err == nil {
		t.Fatal("want mechanism error")
	}
}
