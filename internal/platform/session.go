package platform

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dynacrowd/internal/protocol"
)

// outbound is one unit of work for a session's writer goroutine: either
// a per-session message to encode, or a shared pre-encoded broadcast
// frame (see frame.go). upgrade marks the negotiated wire switch: the
// writer sends msg (the state reply, still in the old format) and then
// flips itself to binary for everything after.
type outbound struct {
	msg     *protocol.Message
	frame   *frame
	upgrade bool
}

// session is one agent connection. Outbound traffic goes through a
// bounded queue drained by a dedicated writer goroutine, so the slot
// clock (Server.Tick) can never be stalled by a peer: a session that
// stops draining either misses its per-message write deadline or
// overflows its queue, and in both cases it is disconnected rather
// than waited on.
type session struct {
	srv  *Server
	conn net.Conn

	out     chan outbound
	done    chan struct{} // closed once the session is torn down
	closing chan struct{} // closed to ask the writer to flush then sever

	closeOnce    sync.Once
	shutdownOnce sync.Once
	gone         atomic.Bool // writer dead; further sends are dropped
	binary       atomic.Bool // negotiated the compact binary framing

	bid bool // guarded by Server.mu: a bid was accepted on this connection
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:     srv,
		conn:    conn,
		out:     make(chan outbound, srv.cfg.outboundQueue()),
		done:    make(chan struct{}),
		closing: make(chan struct{}),
	}
}

// send enqueues m for delivery and never blocks. A dead session drops
// the message; a full queue marks the session a slow consumer and
// disconnects it. Either way the auction keeps the session's bid — the
// phone promised availability — and the lost notices can be recovered
// later through resume{phone}.
func (sess *session) send(m *protocol.Message) {
	sess.enqueue(outbound{msg: m}, m.Type)
}

// sendUpgrade enqueues the state reply that finalizes a binary
// negotiation; the writer switches its wire format right after writing
// it, so the reply is the last JSON message the session emits.
func (sess *session) sendUpgrade(m *protocol.Message) {
	sess.enqueue(outbound{msg: m, upgrade: true}, m.Type)
}

// sendFrame enqueues a shared broadcast frame, taking its own reference
// on the frame for the writer to release after the write (or for the
// drop path to release immediately).
func (sess *session) sendFrame(f *frame, msgType string) {
	f.retain()
	sess.enqueue(outbound{frame: f}, msgType)
}

func (sess *session) enqueue(o outbound, msgType string) {
	if sess.gone.Load() {
		sess.srv.counters.messagesDropped.Add(1)
		sess.releaseOutbound(o)
		return
	}
	select {
	case sess.out <- o:
		sess.srv.counters.messagesQueued.Add(1)
	default:
		sess.srv.counters.messagesDropped.Add(1)
		sess.srv.counters.slowConsumers.Add(1)
		sess.releaseOutbound(o)
		sess.srv.cfg.Logger.Warn("slow consumer disconnected",
			"remote", sess.conn.RemoteAddr().String(), "dropped", msgType)
		sess.abort()
	}
}

func (sess *session) releaseOutbound(o outbound) {
	if o.frame != nil {
		o.frame.release()
	}
}

// abort severs the connection; the reader and writer goroutines unwind
// on their own. Safe to call more than once and from any goroutine.
func (sess *session) abort() {
	sess.closeOnce.Do(func() {
		close(sess.done)
		sess.conn.Close()
	})
}

// shutdown asks the writer to flush whatever is already queued (e.g.
// the error reply that ends a misbehaving session) and then sever the
// connection. Safe to call more than once.
func (sess *session) shutdown() {
	sess.shutdownOnce.Do(func() { close(sess.closing) })
}

// writeLoop drains the outbound queue onto the wire under the
// configured per-message write deadline. A failed or overdue write
// kills the session: its remaining queue is abandoned, exactly like a
// phone that powered off.
func (sess *session) writeLoop() {
	defer sess.srv.wg.Done()
	// Frames still queued when the writer dies hold references taken by
	// sendFrame; drain and release them so the buffers return to the
	// pool. (A send racing past gone after this drain leaks one frame to
	// the garbage collector — harmless, just unpooled.)
	defer func() {
		for {
			select {
			case o := <-sess.out:
				sess.releaseOutbound(o)
			default:
				return
			}
		}
	}()
	w := protocol.NewWriter(sess.conn)
	timeout := sess.srv.cfg.writeTimeout()
	c := &sess.srv.counters
	fail := func() bool {
		sess.gone.Store(true)
		sess.abort()
		return false
	}
	// queueOne stages a message in the write buffer; flush pushes the
	// staged batch onto the wire. Coalescing the backlog into one flush
	// is what makes large fan-outs cheap: a session that fell a few
	// ticks behind catches up with a single write instead of one
	// syscall (or pipe handoff) per message.
	queueOne := func(o outbound) bool {
		var err error
		if o.frame != nil {
			err = w.QueueEncoded(o.frame.encoded(w.Format()))
			o.frame.release()
		} else {
			err = w.Queue(o.msg)
		}
		if err != nil {
			return fail()
		}
		if w.Format() == protocol.FormatBinary {
			c.sentBinary.Add(1)
		} else {
			c.sentJSON.Add(1)
		}
		if o.upgrade {
			w.SetFormat(protocol.FormatBinary)
		}
		return true
	}
	write := func(o outbound) bool {
		if timeout > 0 {
			// One deadline covers the whole coalesced batch, including any
			// write-through of an overfull buffer while staging.
			sess.conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		if !queueOne(o) {
			return false
		}
		for {
			select {
			case next := <-sess.out:
				if !queueOne(next) {
					return false
				}
			default:
				if err := w.Flush(); err != nil {
					return fail()
				}
				return true
			}
		}
	}
	for {
		select {
		case o := <-sess.out:
			if !write(o) {
				return
			}
		case <-sess.closing:
			// Flush the backlog, then sever.
			for {
				select {
				case o := <-sess.out:
					if !write(o) {
						return
					}
				default:
					sess.gone.Store(true)
					sess.abort()
					return
				}
			}
		case <-sess.done:
			sess.gone.Store(true)
			return
		}
	}
}
