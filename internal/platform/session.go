package platform

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dynacrowd/internal/protocol"
)

// session is one agent connection. Outbound traffic goes through a
// bounded queue drained by a dedicated writer goroutine, so the slot
// clock (Server.Tick) can never be stalled by a peer: a session that
// stops draining either misses its per-message write deadline or
// overflows its queue, and in both cases it is disconnected rather
// than waited on.
type session struct {
	srv  *Server
	conn net.Conn

	out     chan *protocol.Message
	done    chan struct{} // closed once the session is torn down
	closing chan struct{} // closed to ask the writer to flush then sever

	closeOnce    sync.Once
	shutdownOnce sync.Once
	gone         atomic.Bool // writer dead; further sends are dropped

	bid bool // guarded by Server.mu: a bid was accepted on this connection
}

func newSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:     srv,
		conn:    conn,
		out:     make(chan *protocol.Message, srv.cfg.outboundQueue()),
		done:    make(chan struct{}),
		closing: make(chan struct{}),
	}
}

// send enqueues m for delivery and never blocks. A dead session drops
// the message; a full queue marks the session a slow consumer and
// disconnects it. Either way the auction keeps the session's bid — the
// phone promised availability — and the lost notices can be recovered
// later through resume{phone}.
func (sess *session) send(m *protocol.Message) {
	if sess.gone.Load() {
		sess.srv.counters.messagesDropped.Add(1)
		return
	}
	select {
	case sess.out <- m:
		sess.srv.counters.messagesQueued.Add(1)
	default:
		sess.srv.counters.messagesDropped.Add(1)
		sess.srv.counters.slowConsumers.Add(1)
		sess.srv.cfg.Logger.Warn("slow consumer disconnected",
			"remote", sess.conn.RemoteAddr().String(), "dropped", m.Type)
		sess.abort()
	}
}

// abort severs the connection; the reader and writer goroutines unwind
// on their own. Safe to call more than once and from any goroutine.
func (sess *session) abort() {
	sess.closeOnce.Do(func() {
		close(sess.done)
		sess.conn.Close()
	})
}

// shutdown asks the writer to flush whatever is already queued (e.g.
// the error reply that ends a misbehaving session) and then sever the
// connection. Safe to call more than once.
func (sess *session) shutdown() {
	sess.shutdownOnce.Do(func() { close(sess.closing) })
}

// writeLoop drains the outbound queue onto the wire under the
// configured per-message write deadline. A failed or overdue write
// kills the session: its remaining queue is abandoned, exactly like a
// phone that powered off.
func (sess *session) writeLoop() {
	defer sess.srv.wg.Done()
	w := protocol.NewWriter(sess.conn)
	timeout := sess.srv.cfg.writeTimeout()
	write := func(m *protocol.Message) bool {
		if timeout > 0 {
			sess.conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		if err := w.Send(m); err != nil {
			sess.gone.Store(true)
			sess.abort()
			return false
		}
		return true
	}
	for {
		select {
		case m := <-sess.out:
			if !write(m) {
				return
			}
		case <-sess.closing:
			// Flush the backlog, then sever.
			for {
				select {
				case m := <-sess.out:
					if !write(m) {
						return
					}
				default:
					sess.gone.Store(true)
					sess.abort()
					return
				}
			}
		case <-sess.done:
			sess.gone.Store(true)
			return
		}
	}
}
