package platform

import (
	"net"
	"strings"
	"testing"
	"time"

	"dynacrowd/internal/protocol"
)

// rawConn dials the server with a bare protocol reader/writer pair for
// scripting wire-level exchanges.
func rawConn(t *testing.T, addr string) (net.Conn, *protocol.Reader, *protocol.Writer) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, protocol.NewReader(conn), protocol.NewWriter(conn)
}

// readMsg receives one message with a test deadline.
func readMsg(t *testing.T, conn net.Conn, r *protocol.Reader) *protocol.Message {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := r.Receive()
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	return m
}

// cutConn severs the agent's live connection out from under it,
// simulating a network-level reset the agent did not ask for.
func cutConn(a *Agent) {
	a.mu.Lock()
	conn := a.conn
	a.mu.Unlock()
	conn.Close()
}

// TestResumeReplaysPhoneState scripts the resume exchange at the wire
// level: a second connection re-attaches to an admitted phone and
// receives its welcome and assignment again, then the payment arrives
// on the new connection when the phone departs.
func TestResumeReplaysPhoneState(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("original", 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // slot 1: admitted + assigned
		t.Fatal(err)
	}
	waitEvent(t, a, EventAssign)

	// The "reconnected" phone arrives on a fresh connection.
	conn, r, w := rawConn(t, s.Addr())
	if err := w.Send(&protocol.Message{Type: protocol.TypeResume, Phone: 0, Round: 1}); err != nil {
		t.Fatal(err)
	}
	welcome := readMsg(t, conn, r)
	if welcome.Type != protocol.TypeWelcome || welcome.Phone != 0 || welcome.Slot != 1 || welcome.Departure != 2 {
		t.Fatalf("replayed welcome = %+v", welcome)
	}
	assign := readMsg(t, conn, r)
	if assign.Type != protocol.TypeAssign || assign.Task != 0 || assign.Slot != 1 {
		t.Fatalf("replayed assign = %+v", assign)
	}

	// Departure happens at the next tick; the payment must reach the NEW
	// connection, not the old one.
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	var pay *protocol.Message
	for pay == nil {
		m := readMsg(t, conn, r)
		if m.Type == protocol.TypePayment {
			pay = m
		}
	}
	if pay.Amount != 10 || pay.Slot != 2 {
		t.Fatalf("payment on resumed conn = %+v, want reserve 10 at slot 2", pay)
	}
	if st := s.Stats(); st.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", st.Resumes)
	}
}

// TestResumeAfterRoundEndReplaysEnd: a phone reconnecting after the
// final slot still learns its payment and the round summary.
func TestResumeAfterRoundEndReplaysEnd(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("latecheck", 1, 3); err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}

	conn, r, w := rawConn(t, s.Addr())
	if err := w.Send(&protocol.Message{Type: protocol.TypeResume, Phone: 0, Round: 1}); err != nil {
		t.Fatal(err)
	}
	var sawWelcome, sawAssign, sawPayment, sawEnd bool
	for !sawEnd {
		switch m := readMsg(t, conn, r); m.Type {
		case protocol.TypeWelcome:
			sawWelcome = true
		case protocol.TypeAssign:
			sawAssign = true
		case protocol.TypePayment:
			sawPayment = true
			if m.Amount != 10 {
				t.Fatalf("replayed payment = %+v", m)
			}
		case protocol.TypeEnd:
			sawEnd = true
		default:
			t.Fatalf("unexpected replay message %+v", m)
		}
	}
	if !sawWelcome || !sawAssign || !sawPayment {
		t.Fatalf("incomplete replay: welcome=%v assign=%v payment=%v", sawWelcome, sawAssign, sawPayment)
	}
}

// TestResumeUnknownPhoneRejected: resuming a phone that was never
// admitted is a protocol error.
func TestResumeUnknownPhoneRejected(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10})
	conn, r, w := rawConn(t, s.Addr())
	if err := w.Send(&protocol.Message{Type: protocol.TypeResume, Phone: 7, Round: 1}); err != nil {
		t.Fatal(err)
	}
	m := readMsg(t, conn, r)
	if m.Type != protocol.TypeError || !strings.Contains(m.Error, "unknown phone") {
		t.Fatalf("reply = %+v, want unknown-phone error", m)
	}
}

// TestResumeStaleRoundAnswersRound: resuming a finished round of a
// multi-round server yields a round announcement (bid again), because
// the phone-ID namespace restarted.
func TestResumeStaleRoundAnswersRound(t *testing.T) {
	s := newTestServer(t, Config{Slots: 1, Value: 10, Rounds: 2})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("r1", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // round 1 plays out entirely
		t.Fatal(err)
	}
	if s.Round() != 2 {
		t.Fatalf("round = %d, want 2", s.Round())
	}

	conn, r, w := rawConn(t, s.Addr())
	if err := w.Send(&protocol.Message{Type: protocol.TypeResume, Phone: 0, Round: 1}); err != nil {
		t.Fatal(err)
	}
	m := readMsg(t, conn, r)
	if m.Type != protocol.TypeRound || m.Round != 2 {
		t.Fatalf("reply = %+v, want round{2}", m)
	}
}

// TestResilientAgentSurvivesCut is the individual-rationality guarantee
// under a TCP reset: a winner loses its connection after the assignment
// but before the payment, reconnects automatically, and still receives
// its critical-value payment exactly once.
func TestResilientAgentSurvivesCut(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10})
	a, err := DialResilient(s.Addr(), ReconnectPolicy{
		BaseDelay: 2 * time.Millisecond,
		MaxDelay:  20 * time.Millisecond,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })

	if err := a.SubmitBid("phoenix", 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // slot 1: welcome + assign
		t.Fatal(err)
	}
	waitEvent(t, a, EventWelcome)
	waitEvent(t, a, EventAssign)

	// The network eats the connection before the payment slot.
	cutConn(a)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Resumes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("agent never resumed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := s.Tick(0); err != nil { // slot 2: departure, payment
		t.Fatal(err)
	}
	pay := waitEvent(t, a, EventPayment)
	if pay.Amount != 10 {
		t.Fatalf("payment after reconnect = %+v, want reserve 10", pay)
	}
	if _, err := s.Tick(0); err != nil { // slot 3: round ends
		t.Fatal(err)
	}
	end := waitEvent(t, a, EventEnd)
	if end.Payments != 10 {
		t.Fatalf("end after reconnect = %+v", end)
	}

	// Dedup: the replayed welcome/assign must not surface twice. After
	// EventEnd the resilient agent stops reconnecting; the channel
	// closes once the server shuts the connection.
	s.Close()
	for ev := range a.Events() {
		if ev.Kind == EventWelcome || ev.Kind == EventAssign || ev.Kind == EventPayment {
			t.Fatalf("duplicate %v after replay", ev.Kind)
		}
	}
}

// TestResilientAgentGivesUp: with the server gone for good, the agent
// reports one terminal error after exhausting its attempts.
func TestResilientAgentGivesUp(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10})
	a, err := DialResilient(s.Addr(), ReconnectPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	if err := a.SubmitBid("orphan", 3, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, a, EventWelcome)
	s.Close() // server vanishes permanently

	sawGiveUp := false
	for ev := range a.Events() {
		if ev.Kind == EventError && strings.Contains(ev.Err.Error(), "gave up reconnecting") {
			sawGiveUp = true
		}
	}
	if !sawGiveUp {
		t.Fatal("no terminal reconnect error surfaced")
	}
}
