package platform

import (
	"testing"
	"time"

	"dynacrowd/internal/core"
)

// TestMultiRoundPlatform plays two consecutive rounds over TCP: the
// same agent bids (and wins) in both, IDs restart per round, and the
// round lifecycle messages arrive in order.
func TestMultiRoundPlatform(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10, Rounds: 2})
	a := dialAgent(t, s.Addr())

	st, err := a.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 1 {
		t.Fatalf("initial round = %d", st.Round)
	}

	// --- round 1 ---
	if err := a.SubmitBid("again", 1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // slot 1: wins, departs, paid
		t.Fatal(err)
	}
	waitEvent(t, a, EventAssign)
	pay1 := waitEvent(t, a, EventPayment)
	if _, err := s.Tick(0); err != nil { // slot 2: round 1 ends
		t.Fatal(err)
	}
	end1 := waitEvent(t, a, EventEnd)
	if end1.Round != 1 {
		t.Fatalf("first end message round = %d", end1.Round)
	}
	roundEv := waitEvent(t, a, EventRound)
	if roundEv.Round != 2 {
		t.Fatalf("round event = %d, want 2", roundEv.Round)
	}
	if s.Done() {
		t.Fatal("server done after round 1 of 2")
	}
	if s.Round() != 2 {
		t.Fatalf("server round = %d", s.Round())
	}

	// --- round 2: the same connection bids again ---
	if err := a.SubmitBid("again", 2, 4); err != nil {
		t.Fatalf("second-round bid rejected: %v", err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	w := waitEvent(t, a, EventWelcome)
	if w.Phone != 0 {
		t.Fatalf("round-2 phone id = %d, want IDs to restart at 0", w.Phone)
	}
	waitEvent(t, a, EventAssign)
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	pay2 := waitEvent(t, a, EventPayment)
	end2 := waitEvent(t, a, EventEnd)
	if end2.Round != 2 {
		t.Fatalf("second end message round = %d", end2.Round)
	}
	if !s.Done() {
		t.Fatal("server not done after final round")
	}
	// Both wins were uncontested: paid the reserve each time.
	if pay1.Amount != 10 || pay2.Amount != 10 {
		t.Fatalf("payments %g, %g, want 10 each", pay1.Amount, pay2.Amount)
	}
	// A bid after the final round is refused.
	if err := a.SubmitBid("late", 1, 1); err == nil {
		t.Fatal("bid accepted after the final round")
	}
	// Cumulative stats span both rounds.
	if st := s.Stats(); st.TasksAnnounced != 2 || st.PaymentsIssued != 2 || st.TotalPaid != 20 {
		t.Fatalf("cumulative stats: %+v", st)
	}
}

// TestMultiRoundRunClock drives three short rounds on the wall clock.
func TestMultiRoundRunClock(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10, Rounds: 3})
	done := make(chan error, 1)
	go func() { done <- s.RunClock(3*time.Millisecond, func(core.Slot) int { return 0 }) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunClock stalled across rounds")
	}
	if !s.Done() || s.Round() != 3 {
		t.Fatalf("after RunClock: done=%v round=%d", s.Done(), s.Round())
	}
}

// TestPendingBidCarriesIntoNextRound: a bid landing in the final slot of
// round 1 (after its tick) is admitted at round 2's first tick.
func TestPendingBidCarriesIntoNextRound(t *testing.T) {
	s := newTestServer(t, Config{Slots: 1, Value: 10, Rounds: 2})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("carried", 1, 2); err != nil {
		t.Fatal(err)
	}
	// Round 1 plays out without a tick between bid and round end? No —
	// the bid is pending; tick 1 admits it AND ends round 1 (1 slot).
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	// Now in round 2; the phone was admitted in round 1 (no task, lost).
	// Bid again for round 2 and win.
	if err := a.SubmitBid("carried", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	if s.Outcome().Allocation.NumServed() != 1 {
		t.Fatal("round-2 bid not served")
	}
}
