package platform

import (
	"fmt"
	"math"
	"net"
	"testing"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
	"dynacrowd/internal/dshard"
)

// memShards boots n shard-server processes on in-memory listeners and
// returns a Config fragment (ShardAddrs + ShardDial) pointing at them.
// The servers outlive individual coordinators — a multi-round platform
// re-dials the same fleet for every round, like restarting a round
// against long-lived crowd-shard processes.
func memShards(t *testing.T, n int) ([]string, func(string) (net.Conn, error)) {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]*chaos.MemListener, n)
	for s := 0; s < n; s++ {
		addrs[s] = fmt.Sprintf("mem://platform-shard/%d", s)
		listeners[s] = chaos.NewMemListener(8)
		srv := &dshard.Server{}
		go srv.Serve(listeners[s])
		t.Cleanup(func() { srv.Close() })
	}
	dial := func(addr string) (net.Conn, error) {
		for s, a := range addrs {
			if a == addr {
				return listeners[s].Dial()
			}
		}
		return nil, fmt.Errorf("unknown shard address %q", addr)
	}
	return addrs, dial
}

// TestDistributedServerRound runs a full wire-level round with the
// auction engine living in separate shard-server processes
// (Config.ShardAddrs): admissions, assignments, critical-value
// payments, and the end-of-round summary behave exactly as on the
// sequential in-process engine.
func TestDistributedServerRound(t *testing.T) {
	addrs, dial := memShards(t, 3)
	s := newTestServer(t, Config{Slots: 3, Value: 10, ShardAddrs: addrs, ShardDial: dial})
	a := dialAgent(t, s.Addr())

	if err := a.SubmitBid("solo", 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // slot 1: bid admitted, 1 task
		t.Fatal(err)
	}
	w := waitEvent(t, a, EventWelcome)
	if w.Phone != 0 || w.Slot != 1 || w.Departure != 2 {
		t.Fatalf("welcome = %+v", w)
	}
	asg := waitEvent(t, a, EventAssign)
	if asg.Task != 0 || asg.Slot != 1 {
		t.Fatalf("assign = %+v", asg)
	}
	if _, err := s.Tick(0); err != nil { // slot 2: departure, payment due
		t.Fatal(err)
	}
	pay := waitEvent(t, a, EventPayment)
	if pay.Amount != 10 || pay.Slot != 2 {
		t.Fatalf("payment = %+v (want reserve 10 in slot 2)", pay)
	}
	if _, err := s.Tick(0); err != nil { // slot 3: round ends
		t.Fatal(err)
	}
	end := waitEvent(t, a, EventEnd)
	if end.Welfare != 6 || end.Payments != 10 {
		t.Fatalf("end = %+v", end)
	}
	if !s.Done() {
		t.Fatal("server not done after final slot")
	}
}

// TestDistributedCheckpointResumeCrossEngine checkpoints a sequential
// server mid-round and resumes it on the distributed engine — the v1
// snapshot is engine-portable, so the coordinator reseeds the shard
// fleet from it — then finishes the round and checks the outcome
// against the batch mechanism on the accumulated instance.
func TestDistributedCheckpointResumeCrossEngine(t *testing.T) {
	s1 := newTestServer(t, Config{Slots: 4, Value: 20})

	a1 := dialAgent(t, s1.Addr())
	if err := a1.SubmitBid("early", 4, 5); err != nil {
		t.Fatal(err)
	}
	a2 := dialAgent(t, s1.Addr())
	if err := a2.SubmitBid("rival", 4, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Tick(1); err != nil {
		t.Fatal(err)
	}
	checkpoint, err := s1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	addrs, dial := memShards(t, 4)
	s2, err := Resume("127.0.0.1:0", Config{Slots: 4, Value: 20, ShardAddrs: addrs, ShardDial: dial}, checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	a3 := dialAgent(t, s2.Addr())
	if err := a3.SubmitBid("late", 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Tick(1); err != nil {
		t.Fatal(err)
	}
	for !s2.Done() {
		if _, err := s2.Tick(0); err != nil {
			t.Fatal(err)
		}
	}

	inst := s2.Instance()
	batch, err := (&core.OnlineMechanism{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	out := s2.Outcome()
	if math.Float64bits(out.Welfare) != math.Float64bits(batch.Welfare) {
		t.Fatalf("resumed welfare %g != batch %g", out.Welfare, batch.Welfare)
	}
	for i := range batch.Payments {
		if math.Float64bits(out.Payments[i]) != math.Float64bits(batch.Payments[i]) {
			t.Fatalf("payment[%d]: %g != %g", i, out.Payments[i], batch.Payments[i])
		}
	}
}

// TestDistributedMultiRound checks that a multi-round server closes the
// finished round's coordinator (releasing its shard connections) and
// dials a fresh one against the same shard fleet for the next round.
func TestDistributedMultiRound(t *testing.T) {
	addrs, dial := memShards(t, 2)
	s := newTestServer(t, Config{Slots: 2, Value: 10, Rounds: 2, ShardAddrs: addrs, ShardDial: dial})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("r1", 1, 3); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for i := 0; i < 2; i++ {
			if _, err := s.Tick(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !s.Done() {
		t.Fatal("server not done after both rounds")
	}
	s.mu.Lock()
	_, distributed := s.auction.(*dshard.Coordinator)
	s.mu.Unlock()
	if !distributed {
		t.Fatal("round 2 auction is not the distributed engine")
	}
}
