package platform

import (
	"fmt"
	"testing"

	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// TestLyingDoesNotPayOverTCP is the paper's thesis as an end-to-end
// integration test: the same market is played twice over the real
// platform; in the second play one phone misreports (delayed arrival,
// shortened stay, inflated cost — the Fig. 5 attack repertoire). Its
// realized utility must never beat its truthful run. The network layer,
// slot clock, and payment plumbing are all in the loop.
func TestLyingDoesNotPayOverTCP(t *testing.T) {
	const (
		slots = 6
		value = 30.0
	)
	rng := workload.NewRNG(41)

	// A fixed supporting cast plus the phone under test (index 0).
	type phoneScript struct {
		join     core.Slot
		duration core.Slot
		cost     float64
	}
	cast := []phoneScript{
		{join: 1, duration: 4, cost: 8}, // the strategic phone's TRUE type
	}
	for i := 0; i < 10; i++ {
		join := core.Slot(1 + rng.Intn(slots))
		cast = append(cast, phoneScript{
			join:     join,
			duration: core.Slot(1 + rng.Intn(3)),
			cost:     rng.Uniform(2, 28),
		})
	}
	tasksPerSlot := make([]int, slots+1)
	for s := 1; s <= slots; s++ {
		tasksPerSlot[s] = rng.Poisson(1.5)
	}

	// play runs one full round over TCP with the strategic phone
	// reporting the given script, returning its total payment.
	play := func(t *testing.T, report phoneScript) float64 {
		t.Helper()
		srv := newTestServer(t, Config{Slots: slots, Value: value})
		agents := make([]*Agent, len(cast))
		for i := range agents {
			agents[i] = dialAgent(t, srv.Addr())
		}
		scripts := append([]phoneScript(nil), cast...)
		scripts[0] = report
		for s := core.Slot(1); s <= slots; s++ {
			for i, sc := range scripts {
				if sc.join == s {
					if err := agents[i].SubmitBid(fmt.Sprintf("p%d", i), sc.duration, sc.cost); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := srv.Tick(tasksPerSlot[s]); err != nil {
				t.Fatal(err)
			}
		}
		var paid float64
		for ev := range agents[0].Events() {
			switch ev.Kind {
			case EventPayment:
				paid += ev.Amount
			case EventEnd:
				return paid
			case EventError:
				t.Fatal(ev.Err)
			}
		}
		return paid
	}

	truth := cast[0]
	truthfulPaid := play(t, truth)
	truthfulUtility := 0.0
	if truthfulPaid > 0 {
		truthfulUtility = truthfulPaid - truth.cost
	}

	misreports := []phoneScript{
		{join: truth.join + 1, duration: truth.duration - 1, cost: truth.cost},     // delay arrival
		{join: truth.join, duration: truth.duration - 2, cost: truth.cost},         // leave early
		{join: truth.join, duration: truth.duration, cost: truth.cost * 1.5},       // inflate cost
		{join: truth.join + 2, duration: truth.duration - 2, cost: truth.cost * 2}, // all at once
		{join: truth.join, duration: truth.duration, cost: truth.cost * 0.25},      // underbid
	}
	for mi, lie := range misreports {
		paid := play(t, lie)
		utility := 0.0
		if paid > 0 {
			utility = paid - truth.cost // utility is always against the REAL cost
		}
		if utility > truthfulUtility+1e-9 {
			t.Fatalf("misreport %d (%+v) earned %g > truthful %g over TCP",
				mi, lie, utility, truthfulUtility)
		}
	}
}
