// Package platform is the networked mobile-crowdsourcing platform of the
// paper's Fig. 1: a TCP server that runs the online truthful auction in
// real time, admitting smartphone agents as they connect, announcing
// sensing tasks slot by slot, and issuing assignments and critical-value
// payments over the wire (see internal/protocol for the message flow).
//
// The slot clock is externally driven through Server.Tick so tests and
// simulations advance deterministically; RunClock provides a wall-clock
// driver for live deployments.
package platform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/dshard"
	"dynacrowd/internal/budget"
	"dynacrowd/internal/obs"
	"dynacrowd/internal/protocol"
	"dynacrowd/internal/shard"
)

// Config parameterizes a platform round.
type Config struct {
	// Slots is the round length m.
	Slots core.Slot
	// Value is the platform's per-task value ν.
	Value float64
	// AllocateAtLoss forwards to the auction (see core.Instance).
	AllocateAtLoss bool
	// Rounds is the number of consecutive auction rounds the server
	// plays (the paper's §III-B "round by round" deployment). Values
	// below 1 mean a single round. Each round starts a fresh auction:
	// phone IDs restart, every connection may bid again, and agents are
	// notified with a round message.
	Rounds int
	// Logger receives structured auction events (joins, assignments,
	// payments, protocol errors). Nil disables logging.
	Logger *slog.Logger
	// WriteTimeout bounds each outbound message write to a session; a
	// session missing the deadline is disconnected. Zero means the
	// 5-second default, negative disables the deadline.
	WriteTimeout time.Duration
	// OutboundQueue caps the per-session outbound message queue; a
	// session whose queue overflows is a slow consumer and is
	// disconnected. Zero means the default of 64.
	OutboundQueue int
	// Shards selects the auction engine: values above 1 run the sharded
	// online auction (internal/shard) with that many partitioned bid
	// pools; 0 or 1 runs the sequential core.OnlineAuction. Outcomes are
	// bit-identical either way (see docs/SHARDING.md), so this is a
	// throughput knob only.
	Shards int
	// ShardAddrs, when non-empty, runs the distributed auction engine
	// (internal/dshard): one shard-server process per address, driven by
	// an in-process coordinator performing the exact over-the-wire top-k
	// merge. Outcomes are bit-identical to the sequential engine (see
	// docs/DISTRIBUTED.md). Takes precedence over Shards.
	ShardAddrs []string
	// ShardDial overrides how the coordinator reaches shard servers;
	// nil uses plain TCP. Test harnesses inject in-memory transports
	// (and chaos wrappers) here.
	ShardDial func(addr string) (net.Conn, error)
	// PaymentEngine selects how departing winners are priced. Nil uses
	// core.CascadePayments, which prices from the auction's retained
	// incremental state without re-simulating the round. All engines
	// produce identical payments, so this is a performance knob only.
	// Ignored when CompletionDeadline is set: defaults rewrite the winner
	// set mid-round, and only the cascade engine prices from the
	// auction's live state, so completion rounds force cascade.
	PaymentEngine core.PaymentEngine
	// Budget, when non-zero, runs the round under the budget-feasible
	// online mechanism (internal/budget): total payments are guaranteed
	// ≤ Budget, tasks are gated through per-stage posted-price
	// thresholds, and bids arriving after the budget is fully committed
	// are rejected with a typed error. Must be a positive finite number
	// (budget.ErrInvalidBudget otherwise). Incompatible with Shards,
	// ShardAddrs, and CompletionDeadline (ErrBudgetIncompatible). The
	// state and end messages carry the budget so agents can see the
	// regime they are bidding into.
	Budget float64
	// BudgetEngine selects the budgeted threshold estimator: "" or
	// "stage" for the OMG-style proportional-share engine, "frugal" for
	// the coverage-quantile engine. Ignored unless Budget is set.
	BudgetEngine string
	// CompletionDeadline enables the unreliable-winner lifecycle (see
	// docs/PLATFORM.md): every winner must report its task done, via a
	// complete message, within this many slots of being assigned. A
	// winner that does not is defaulted — its task is re-allocated in
	// place to the next-cheapest eligible phone, and any payment already
	// issued to it is revoked with a clawback message. A round whose
	// final slot leaves unresolved assignments drains: Tick keeps running
	// (announcing no tasks) until every assignment is completed or
	// defaulted, and only then does the round close. Zero (the default)
	// disables tracking; the disabled path is allocation-free.
	CompletionDeadline core.Slot
	// OfflineBenchmark, when non-nil, solves the offline VCG optimum ω*
	// over each completed round's full bid history under the given
	// engine (core.IntervalOffline is the intended choice; the dense
	// oracles work but cost more). The optimum is logged alongside the
	// online welfare — the paper's competitive-ratio check, live — and
	// accumulated in Stats.OfflineOptimum / Stats.OfflineRounds. Nil
	// (the default) disables the solve entirely.
	OfflineBenchmark core.OfflineEngine
	// Obs enables observability: the platform and its auction register
	// metrics in Obs.Registry and emit structured auction events to
	// Obs.Tracer (see docs/OBSERVABILITY.md for the catalog). The
	// server takes ownership: Close flushes the tracer's sinks and
	// stops the introspection HTTP server with a deadline. Nil (the
	// default) disables observability; the no-op paths are
	// allocation-free.
	Obs *obs.Observability
}

func (c Config) rounds() int {
	if c.Rounds < 1 {
		return 1
	}
	return c.Rounds
}

func (c Config) writeTimeout() time.Duration {
	switch {
	case c.WriteTimeout == 0:
		return 5 * time.Second
	case c.WriteTimeout < 0:
		return 0
	default:
		return c.WriteTimeout
	}
}

func (c Config) outboundQueue() int {
	if c.OutboundQueue < 1 {
		return 64
	}
	return c.OutboundQueue
}

func (c Config) completionsEnabled() bool { return c.CompletionDeadline > 0 }

func (c Config) budgeted() bool { return c.Budget != 0 }

// ErrBudgetIncompatible reports a budgeted Config that also asks for an
// engine the budget gates cannot run on: the sharded and distributed
// engines partition the bid pool (the stage thresholds need the global
// cost sample), and the completion lifecycle rewrites the winner set
// after reserves are committed.
var ErrBudgetIncompatible = errors.New(
	"Budget is incompatible with Shards, ShardAddrs, and CompletionDeadline")

// validateBudget vets the budget knobs; nil when Budget is unset.
func (c Config) validateBudget() error {
	if !c.budgeted() {
		return nil
	}
	if err := budget.ValidateBudget(c.Budget); err != nil {
		return err
	}
	if _, err := budget.EngineByName(c.BudgetEngine); err != nil {
		return err
	}
	if c.Shards > 1 || len(c.ShardAddrs) > 0 || c.completionsEnabled() {
		return ErrBudgetIncompatible
	}
	return nil
}

// newAuction creates the configured auction engine for one round.
func (c Config) newAuction() (core.Auction, error) {
	if err := c.validateBudget(); err != nil {
		return nil, err
	}
	if c.budgeted() {
		eng, _ := budget.EngineByName(c.BudgetEngine) // vetted above
		return budget.New(c.Slots, c.Value, c.AllocateAtLoss, c.Budget, eng)
	}
	if len(c.ShardAddrs) > 0 {
		return dshard.New(c.dshardOptions())
	}
	if c.Shards > 1 {
		return shard.New(c.Shards, c.Slots, c.Value, c.AllocateAtLoss)
	}
	return core.NewOnlineAuction(c.Slots, c.Value, c.AllocateAtLoss)
}

func (c Config) dshardOptions() dshard.Options {
	return dshard.Options{
		Addrs:          c.ShardAddrs,
		Slots:          c.Slots,
		Value:          c.Value,
		AllocateAtLoss: c.AllocateAtLoss,
		Dial:           c.ShardDial,
	}
}

// closeAuction releases engine-held resources (the distributed
// coordinator's shard connections); in-process engines hold none.
func closeAuction(a core.Auction) {
	if c, ok := a.(interface{ Close() error }); ok {
		c.Close()
	}
}

// ErrClosed is returned by Tick once the server has been closed.
// RunClock treats it as a clean shutdown rather than a failure.
var ErrClosed = errors.New("platform: server closed")

// Server hosts one auction round over TCP.
type Server struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	auction  core.Auction
	round    int                       // current round, 1-based
	phones   map[core.PhoneID]*session // admitted bidders (current round)
	sessions map[*session]struct{}     // every live connection
	pending  []pendingBid              // bids awaiting the next tick
	closed   bool

	// outstanding tracks each unresolved assignment's completion
	// deadline (empty unless Config.CompletionDeadline is set). drain
	// counts the virtual slots ticked past the round's end while
	// assignments from the final slots await resolution.
	outstanding map[core.PhoneID]outstandingTask
	drain       core.Slot

	// counters is the lock-free operational tally behind Stats and the
	// Prometheus bridge; session goroutines and scrapers touch it
	// without holding s.mu.
	counters counters

	metrics     *platformMetrics // nil when Config.Obs is nil
	tracer      *obs.Tracer      // nil when Config.Obs is nil; Emit is nil-safe
	coreMetrics *core.Metrics    // shared across rounds; nil when Config.Obs is nil

	wg sync.WaitGroup
}

type pendingBid struct {
	name     string
	duration core.Slot
	cost     float64
	sess     *session
}

// outstandingTask is one winner's unresolved assignment: the task it
// holds and the (possibly virtual, during drain) slot at which the
// winner defaults unless it reports completion first.
type outstandingTask struct {
	task     core.TaskID
	slot     core.Slot // slot the task was assigned in
	deadline core.Slot
}

// Listen starts a platform server on addr ("127.0.0.1:0" for an
// ephemeral test port).
func Listen(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	return Serve(ln, cfg)
}

// Serve starts a platform server on an existing listener, which the
// server takes ownership of. Injectable listeners are how fault
// harnesses (see internal/chaos) put the platform under unreliable
// transports.
func Serve(ln net.Listener, cfg Config) (*Server, error) {
	auction, err := cfg.newAuction()
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("platform: %w", err)
	}
	return serveWith(ln, cfg, auction), nil
}

// Resume starts a platform server that continues a round from a
// checkpoint written by Checkpoint. Bids that were pending (received
// but not yet admitted at a slot tick) at checkpoint time are not part
// of the auction state; their agents must resubmit.
func Resume(addr string, cfg Config, checkpoint []byte) (*Server, error) {
	var auction core.Auction
	var err error
	if err = cfg.validateBudget(); err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	switch {
	case cfg.budgeted():
		// The budget section in the snapshot pins the engine and budget
		// the round started with; the replay rebuilds stage state.
		auction, err = budget.Restore(checkpoint)
	case len(cfg.ShardAddrs) > 0:
		// The coordinator reseeds every shard server from the
		// checkpoint; the snapshot format is the same engine-portable
		// stream the other engines write.
		auction, err = dshard.Restore(checkpoint, cfg.dshardOptions())
	case cfg.Shards > 1:
		// Snapshot formats are engine-portable, so a round checkpointed
		// by the sequential engine resumes sharded and vice versa.
		auction, err = shard.Restore(checkpoint, cfg.Shards)
	default:
		auction, err = core.RestoreOnlineAuction(checkpoint)
	}
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	s := serveWith(ln, cfg, auction)
	s.tracer.Emit(obs.Event{
		Type: obs.EventRestore, Round: 1, Slot: int(auction.Now()),
		Phone: -1, Task: -1, Detail: "resumed from checkpoint",
	})
	return s, nil
}

func serveWith(ln net.Listener, cfg Config, auction core.Auction) *Server {
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		auction:  auction,
		round:    1,
		phones:   make(map[core.PhoneID]*session),
		sessions: make(map[*session]struct{}),
	}
	if s.cfg.Logger == nil {
		s.cfg.Logger = slog.New(discardHandler{})
	}
	s.configureAuction(auction)
	if s.cfg.completionsEnabled() {
		// A resumed round may carry live assignments; give each a fresh
		// deadline from the resumed clock (a fresh round has no phones,
		// so this loop is a no-op there).
		s.outstanding = make(map[core.PhoneID]outstandingTask)
		for i := 0; i < auction.Instance().NumPhones(); i++ {
			id := core.PhoneID(i)
			if st := auction.Completion(id); st.Status == core.StatusAssigned {
				s.outstanding[id] = outstandingTask{
					task:     st.Task,
					slot:     st.Slot,
					deadline: auction.Now() + 1 + s.cfg.CompletionDeadline,
				}
			}
		}
	}
	s.counters.round.Store(1)
	s.counters.slot.Store(int64(auction.Now()))
	if o := cfg.Obs; o != nil {
		s.metrics = newPlatformMetrics(o.Registry, s)
		s.tracer = o.Tracer
		s.coreMetrics = core.NewMetrics(o.Registry)
		auction.SetMetrics(s.coreMetrics)
		auction.TrackDepartures(true)
		s.instrumentShards(auction)
		if auction.Now() == 0 {
			s.tracer.Emit(obs.Event{Type: obs.EventRoundOpen, Round: 1, Phone: -1, Task: -1})
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// configureAuction applies the configured engine knobs to a fresh (or
// resumed) auction. Completion tracking forces the cascade payment
// engine: a default rewrites the winner set mid-round, and only cascade
// prices replacements from the auction's live state — the oracle and
// parallel engines re-derive payments from the bids alone and would
// price the pre-default winners.
func (s *Server) configureAuction(auction core.Auction) {
	engine := s.cfg.PaymentEngine
	if s.cfg.completionsEnabled() {
		auction.TrackCompletions(true)
		if engine != nil {
			s.cfg.Logger.Warn("completion tracking forces the cascade payment engine; configured engine ignored")
			engine = nil
		}
	}
	auction.SetPaymentEngine(engine)
}

// instrumentShards attaches the per-shard observability bundle (pool
// depth gauges, admission counters, merge latency, shard_merge trace
// events) when the configured engine is the sharded one. Caller has
// cfg.Obs non-nil.
func (s *Server) instrumentShards(auction core.Auction) {
	switch a := auction.(type) {
	case *shard.Auction:
		a.SetInstruments(shard.NewMetrics(s.cfg.Obs.Registry, a.Shards()))
		a.SetTracer(s.tracer)
	case *dshard.Coordinator:
		a.SetInstruments(dshard.NewMetrics(s.cfg.Obs.Registry, a.Shards()))
		a.SetTracer(s.tracer)
	case *budget.Auction:
		a.SetInstruments(budget.NewMetrics(s.cfg.Obs.Registry))
		a.SetTracer(s.tracer)
	}
}

// Checkpoint serializes the auction state for Resume. Call between
// ticks; pending (unadmitted) bids are not included. Only the current
// round's auction is captured: a multi-round server resumed from a
// checkpoint restarts its round counter at 1 and finishes the captured
// round plus (Rounds−1) fresh ones.
func (s *Server) Checkpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.auction.Snapshot()
	if err == nil {
		s.tracer.Emit(obs.Event{
			Type: obs.EventSnapshot, Round: s.round, Slot: int(s.auction.Now()),
			Phone: -1, Task: -1,
		})
	}
	return b, err
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrives
// only in Go 1.24's stdlib; this keeps the module at its declared 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.counters.connections.Add(1)
		s.counters.live.Add(1)
		s.mu.Unlock()
		s.wg.Add(2)
		go s.serve(sess)
		go sess.writeLoop()
	}
}

// serve handles one agent connection until EOF or protocol error.
func (s *Server) serve(sess *session) {
	defer s.wg.Done()
	defer func() {
		// Graceful: let the writer flush any farewell (e.g. the error
		// reply) before the connection is severed.
		sess.shutdown()
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.counters.live.Add(-1)
		if sess.binary.Load() {
			s.counters.binarySessions.Add(-1)
		}
	}()
	r := protocol.NewReader(sess.conn)
	var m protocol.Message // reused across receives: steady-state reads allocate nothing
	for {
		err := r.ReceiveInto(&m)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.counters.protocolErrors.Add(1)
				s.cfg.Logger.Warn("protocol error", "remote", sess.conn.RemoteAddr().String(), "err", err.Error())
				sess.send(&protocol.Message{Type: protocol.TypeError, Error: err.Error()})
			}
			return
		}
		switch m.Type {
		case protocol.TypeHello:
			s.mu.Lock()
			now := s.auction.Now()
			round := s.round
			s.mu.Unlock()
			reply := &protocol.Message{
				Type:   protocol.TypeState,
				Slot:   now,
				Slots:  s.cfg.Slots,
				Value:  s.cfg.Value,
				Round:  round,
				Budget: s.cfg.Budget,
			}
			wire, _ := protocol.FormatByName(m.Wire) // Validate vetted the name
			if wire == protocol.FormatBinary {
				// Negotiated upgrade: the state reply (still JSON) echoes the
				// format and is the last JSON message either way — the writer
				// flips right after sending it, and this reader flips now,
				// because the agent sends nothing between hello and state.
				reply.Wire = protocol.WireBinary
				if sess.binary.CompareAndSwap(false, true) {
					s.counters.binarySessions.Add(1)
				}
				sess.sendUpgrade(reply)
				r.SetFormat(protocol.FormatBinary)
			} else {
				sess.send(reply)
			}
		case protocol.TypeBid:
			if err := s.enqueueBid(&m, sess); err != nil {
				sess.send(&protocol.Message{Type: protocol.TypeError, Error: err.Error()})
			} else {
				sess.send(&protocol.Message{Type: protocol.TypeAck})
			}
		case protocol.TypeResume:
			s.handleResume(&m, sess)
		case protocol.TypeComplete:
			s.handleComplete(&m, sess)
		default:
			sess.send(&protocol.Message{
				Type:  protocol.TypeError,
				Error: fmt.Sprintf("platform: unexpected message %q from agent", m.Type),
			})
		}
	}
}

func (s *Server) enqueueBid(m *protocol.Message, sess *session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	reject := func(reason string) error {
		s.counters.bidsRejected.Add(1)
		s.tracer.Emit(obs.Event{
			Type: obs.EventBidRejected, Round: s.round, Slot: int(s.auction.Now()),
			Phone: -1, Task: -1, Cost: m.Cost, Detail: reason,
		})
		return errors.New("platform: " + reason)
	}
	if s.closed {
		return reject("server closed")
	}
	if s.auction.Done() && s.round >= s.cfg.rounds() {
		return reject("round already complete")
	}
	// The paper's model (§III-B): each smartphone submits at most one
	// bid per round.
	if sess.bid {
		return reject("this connection already submitted its bid")
	}
	// A budgeted round whose budget is fully committed can never pay
	// another winner; reject the bid now instead of admitting a phone
	// that is guaranteed to lose.
	if ba, ok := s.auction.(*budget.Auction); ok && ba.BudgetExhausted() {
		return reject(fmt.Sprintf("round budget %g exhausted", s.cfg.Budget))
	}
	sess.bid = true
	s.counters.bidsAccepted.Add(1)
	s.tracer.Emit(obs.Event{
		Type: obs.EventBidAccepted, Round: s.round, Slot: int(s.auction.Now()),
		Phone: -1, Task: -1, Cost: m.Cost, Detail: m.Name,
	})
	s.pending = append(s.pending, pendingBid{
		name:     m.Name,
		duration: m.Duration,
		cost:     m.Cost,
		sess:     sess,
	})
	return nil
}

// handleResume re-attaches a reconnecting agent to its admitted bid and
// replays the phone's standing — its welcome, its assignment and (if
// already departed) its critical-value payment, and the round summary
// if the round is over. The replay is what preserves the mechanism's
// individual-rationality guarantee across a TCP reset: a winner that
// vanished and came back still learns what it is owed. A resume naming
// an earlier (finished) round is answered with round{current}, because
// the phone-ID namespace restarted and the agent must bid afresh.
func (s *Server) handleResume(m *protocol.Message, sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		sess.send(&protocol.Message{Type: protocol.TypeError, Error: "platform: server closed"})
		return
	}
	if m.Round != s.round {
		if m.Round < s.round {
			sess.send(&protocol.Message{Type: protocol.TypeRound, Round: s.round})
		} else {
			sess.send(&protocol.Message{
				Type:  protocol.TypeError,
				Error: fmt.Sprintf("platform: resume for round %d, but round %d is live", m.Round, s.round),
			})
		}
		return
	}
	inst := s.auction.Instance()
	id := m.Phone
	if int(id) >= inst.NumPhones() {
		s.counters.protocolErrors.Add(1)
		sess.send(&protocol.Message{
			Type:  protocol.TypeError,
			Error: fmt.Sprintf("platform: resume for unknown phone %d", id),
		})
		return
	}
	if old := s.phones[id]; old != nil && old != sess {
		old.abort() // superseded by the reconnected phone
	}
	s.phones[id] = sess
	sess.bid = true
	s.counters.resumes.Add(1)
	s.cfg.Logger.Info("phone resumed",
		"phone", int(id), "remote", sess.conn.RemoteAddr().String(), "slot", int(s.auction.Now()))

	bid := inst.Bids[id]
	sess.send(&protocol.Message{
		Type:      protocol.TypeWelcome,
		Phone:     id,
		Slot:      bid.Arrival,
		Departure: bid.Departure,
		Round:     s.round,
	})
	out := s.auction.Outcome()
	if s.cfg.completionsEnabled() {
		// Lifecycle-aware replay: the tracker knows what was actually
		// executed for this phone, which the allocation alone cannot say
		// once defaults rewrite it.
		st := s.auction.Completion(id)
		switch {
		case st.Status == core.StatusDefaulted:
			// Defaulted while away: the phone learns its payment (amount 0
			// if none had been issued) is revoked.
			sess.send(&protocol.Message{
				Type: protocol.TypeClawback, Phone: id, Amount: st.Paid, Slot: s.auction.Now(),
			})
		case st.Task != core.NoTask:
			sess.send(&protocol.Message{
				Type:  protocol.TypeAssign,
				Phone: id,
				Task:  st.Task,
				Slot:  st.Slot,
			})
			// An executed payment is final — a winner that disconnected
			// after completing but before the payment notice still learns
			// what it is owed. An unissued payment may still move, so it
			// is not replayed.
			if st.PaidAt != 0 {
				sess.send(&protocol.Message{
					Type:   protocol.TypePayment,
					Phone:  id,
					Amount: st.Paid,
					Slot:   st.PaidAt,
				})
			}
		}
	} else if task := out.Allocation.ByPhone[id]; task != core.NoTask {
		sess.send(&protocol.Message{
			Type:  protocol.TypeAssign,
			Phone: id,
			Task:  task,
			Slot:  out.Allocation.WonAt[id],
		})
		// Payments finalize at the reported departure; an undeparted
		// winner's critical value may still move, so only a settled
		// payment is replayed.
		if bid.Departure <= s.auction.Now() {
			sess.send(&protocol.Message{
				Type:   protocol.TypePayment,
				Phone:  id,
				Amount: out.Payments[id],
				Slot:   bid.Departure,
			})
		}
	}
	if s.auction.Done() && len(s.outstanding) == 0 {
		sess.send(&protocol.Message{
			Type:     protocol.TypeEnd,
			Welfare:  out.Welfare,
			Payments: out.TotalPayment(),
			Round:    s.round,
			Budget:   s.cfg.Budget,
		})
	}
}

// Tick advances the round one slot: pending bids are admitted with the
// new slot as their arrival, numTasks tasks are announced and allocated,
// winners receive assignments, and departing winners receive payments.
// It returns the auction's slot result.
func (s *Server) Tick(numTasks int) (*core.SlotResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.cfg.completionsEnabled() && s.auction.Done() && len(s.outstanding) > 0 {
		// The round's slots are all played but assignments from its last
		// slots are still unresolved: drain on a virtual clock until every
		// winner has completed or defaulted, then close the round.
		return s.drainTick()
	}
	var tickStart time.Time
	if s.metrics != nil {
		tickStart = time.Now()
	}
	next := s.auction.Now() + 1
	if s.cfg.completionsEnabled() {
		s.resolveOverdue(next)
	}

	batch := s.pending
	s.pending = nil
	arriving := make([]core.StreamBid, 0, len(batch))
	admitted := make([]pendingBid, 0, len(batch))
	for _, pb := range batch {
		depart := next + pb.duration - 1
		// The second clause catches integer overflow of an absurd
		// duration wrapping negative (the wire layer bounds durations,
		// but in-process callers get the same safety).
		if depart > s.cfg.Slots || depart < next {
			depart = s.cfg.Slots
		}
		arriving = append(arriving, core.StreamBid{Departure: depart, Cost: pb.cost})
		admitted = append(admitted, pb)
	}

	res, err := s.auction.Step(arriving, numTasks)
	if err != nil {
		// Re-queue nothing: a failed step at this layer is programmer
		// error (negative task count) or a finished round.
		return nil, fmt.Errorf("platform: %w", err)
	}
	c := &s.counters
	c.slot.Store(int64(res.Slot))
	c.tasksAnnounced.Add(int64(numTasks))
	c.tasksServed.Add(int64(len(res.Assignments)))
	c.tasksUnserved.Add(int64(res.Unserved))
	c.paymentsIssued.Add(int64(len(res.Payments)))
	var paid float64
	for _, p := range res.Payments {
		paid += p.Amount
	}
	if paid != 0 {
		c.totalPaid.Add(paid)
		s.metrics.addRoundPaid(paid)
	}

	// Instance() clones the full bid set — O(phones) — so fetch it
	// lazily: a steady-state tick (no joins, assignments, or departures)
	// never pays for it, which also keeps such ticks allocation-free.
	var cloned *core.Instance
	snapshot := func() *core.Instance {
		if cloned == nil {
			cloned = s.auction.Instance()
		}
		return cloned
	}
	for k, id := range res.Joined {
		s.phones[id] = admitted[k].sess
		s.cfg.Logger.Info("phone admitted",
			"phone", int(id), "name", admitted[k].name, "slot", int(res.Slot),
			"departure", int(snapshot().Bids[id].Departure), "cost", snapshot().Bids[id].Cost)
		admitted[k].sess.send(&protocol.Message{
			Type:      protocol.TypeWelcome,
			Phone:     id,
			Slot:      res.Slot,
			Departure: snapshot().Bids[id].Departure,
			Round:     s.round,
		})
	}
	if len(s.phones) > 0 {
		// Batched fan-out: the slot notice is encoded once per wire format
		// and the encoded frame is shared by every session (see frame.go) —
		// the per-tick cost is two encodes plus one channel send per phone,
		// regardless of population.
		var fanStart time.Time
		if s.metrics != nil {
			fanStart = time.Now()
		}
		if f := s.newBroadcast(&protocol.Message{Type: protocol.TypeSlot, Slot: res.Slot}); f != nil {
			for _, sess := range s.phones {
				sess.sendFrame(f, protocol.TypeSlot)
			}
			f.release()
		}
		if s.metrics != nil {
			s.metrics.observeFanout(time.Since(fanStart))
		}
	}
	var welfare float64
	for _, a := range res.Assignments {
		cost := snapshot().Bids[a.Phone].Cost
		welfare += s.cfg.Value - cost
		s.cfg.Logger.Info("task assigned", "task", int(a.Task), "phone", int(a.Phone), "slot", int(a.Slot))
		s.tracer.Emit(obs.Event{
			Type: obs.EventAllocation, Round: s.round, Slot: int(a.Slot),
			Phone: int(a.Phone), Task: int(a.Task),
			Cost: cost, Welfare: s.cfg.Value - cost,
		})
		if sess := s.phones[a.Phone]; sess != nil {
			sess.send(&protocol.Message{
				Type:  protocol.TypeAssign,
				Phone: a.Phone,
				Task:  a.Task,
				Slot:  a.Slot,
			})
		}
	}
	if welfare != 0 {
		c.totalWelfare.Add(welfare)
		s.metrics.addRoundWelfare(welfare)
	}
	if s.cfg.completionsEnabled() {
		for _, a := range res.Assignments {
			s.outstanding[a.Phone] = outstandingTask{
				task: a.Task, slot: a.Slot,
				deadline: res.Slot + s.cfg.CompletionDeadline,
			}
		}
	}
	if res.Unserved > 0 {
		s.cfg.Logger.Warn("tasks unserved", "slot", int(res.Slot), "count", res.Unserved)
	}
	for _, p := range res.Departed {
		s.tracer.Emit(obs.Event{
			Type: obs.EventDeparture, Round: s.round, Slot: int(res.Slot),
			Phone: int(p), Task: -1, Cost: snapshot().Bids[p].Cost,
		})
	}
	for _, p := range res.Payments {
		s.cfg.Logger.Info("payment issued", "phone", int(p.Phone), "amount", p.Amount, "slot", int(res.Slot))
		s.tracer.Emit(obs.Event{
			Type: obs.EventPayment, Round: s.round, Slot: int(res.Slot),
			Phone: int(p.Phone), Task: -1, Amount: p.Amount,
		})
		if sess := s.phones[p.Phone]; sess != nil {
			sess.send(&protocol.Message{
				Type:   protocol.TypePayment,
				Phone:  p.Phone,
				Amount: p.Amount,
				Slot:   res.Slot,
			})
		}
	}

	if s.auction.Done() && (!s.cfg.completionsEnabled() || len(s.outstanding) == 0) {
		if err := s.finishRound(res.Slot); err != nil {
			return nil, err
		}
	}
	if s.metrics != nil {
		s.metrics.observeTick(time.Since(tickStart))
	}
	return res, nil
}

// finishRound closes the current round: the summary is logged and
// broadcast, and the next round opens if one is configured. Caller
// holds s.mu and has verified the auction is done with (when tracking)
// no outstanding assignments.
func (s *Server) finishRound(slot core.Slot) error {
	out := s.auction.Outcome()
	s.counters.roundsCompleted.Add(1)
	s.benchmarkRound(out)
	s.cfg.Logger.Info("round complete",
		"round", s.round,
		"welfare", out.Welfare, "totalPaid", out.TotalPayment(),
		"served", out.Allocation.NumServed(), "tasks", len(out.Allocation.ByTask))
	s.tracer.Emit(obs.Event{
		Type: obs.EventRoundClose, Round: s.round, Slot: int(slot),
		Phone: -1, Task: -1,
		Welfare: out.Welfare, Amount: out.TotalPayment(),
	})
	end := &protocol.Message{
		Type:     protocol.TypeEnd,
		Welfare:  out.Welfare,
		Payments: out.TotalPayment(),
		Round:    s.round,
		Budget:   s.cfg.Budget,
	}
	if f := s.newBroadcast(end); f != nil {
		for _, sess := range s.phones {
			sess.sendFrame(f, protocol.TypeEnd)
		}
		f.release()
	}
	if s.round < s.cfg.rounds() {
		return s.beginNextRound()
	}
	return nil
}

// benchmarkRound solves the round's offline optimum when
// Config.OfflineBenchmark is set, logging it next to the realized
// online welfare and accumulating the Stats tallies. Caller holds s.mu;
// the solve runs on the round-close path, so it must stay cheap — the
// interval engine is near-linear in the bid count, the dense oracles
// are not.
func (s *Server) benchmarkRound(out *core.Outcome) {
	if s.cfg.OfflineBenchmark == nil {
		return
	}
	mech := &core.OfflineMechanism{Engine: s.cfg.OfflineBenchmark}
	opt, err := mech.Welfare(s.auction.Instance())
	if err != nil {
		s.cfg.Logger.Warn("offline benchmark failed", "round", s.round, "err", err)
		return
	}
	s.counters.offlineRounds.Add(1)
	s.counters.offlineOptimum.Add(opt)
	ratio := 1.0
	if opt > 0 {
		ratio = out.Welfare / opt
	}
	s.cfg.Logger.Info("offline benchmark",
		"round", s.round, "engine", s.cfg.OfflineBenchmark.Name(),
		"optimum", opt, "welfare", out.Welfare, "ratio", ratio)
}

// drainTick plays one virtual slot past the round's end: no bids are
// admitted and no tasks are announced; only completion deadlines
// advance. Caller holds s.mu. See Config.CompletionDeadline.
func (s *Server) drainTick() (*core.SlotResult, error) {
	s.drain++
	s.resolveOverdue(s.auction.Now() + s.drain)
	res := &core.SlotResult{Slot: s.auction.Now()}
	if len(s.outstanding) == 0 {
		if err := s.finishRound(s.auction.Now()); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// resolveOverdue defaults every winner whose completion deadline is at
// or past `next`, the slot about to be played (virtual during drain).
// Each default re-allocates in place: the replacement is notified of
// its assignment and put under its own deadline, the defaulted winner
// receives a clawback notice for whatever it had been paid (amount 0 if
// nothing yet), and a replacement drafted after its own departure is
// paid immediately. Deterministic: overdue winners resolve in phone-ID
// order, so identical histories default identically regardless of map
// iteration. Caller holds s.mu.
func (s *Server) resolveOverdue(next core.Slot) {
	var overdue []core.PhoneID
	for id, o := range s.outstanding {
		if o.deadline <= next {
			overdue = append(overdue, id)
		}
	}
	if len(overdue) == 0 {
		return
	}
	sort.Slice(overdue, func(i, j int) bool { return overdue[i] < overdue[j] })
	c := &s.counters
	for _, id := range overdue {
		dr, err := s.auction.Default(id)
		if err != nil {
			// Unreachable by construction (outstanding only holds live
			// assignments); surface it rather than wedge the round.
			s.cfg.Logger.Error("default failed", "phone", int(id), "err", err.Error())
			delete(s.outstanding, id)
			continue
		}
		delete(s.outstanding, id)
		inst := s.auction.Instance()
		now := int(s.auction.Now())
		c.winnersDefaulted.Add(1)
		s.cfg.Logger.Warn("winner defaulted",
			"phone", int(id), "task", int(dr.Task), "slot", int(dr.Slot), "deadline", int(next))
		s.tracer.Emit(obs.Event{
			Type: obs.EventWinnerDefaulted, Round: s.round, Slot: now,
			Phone: int(id), Task: int(dr.Task), Cost: inst.Bids[id].Cost,
			Detail: "completion deadline lapsed",
		})
		// The defaulted winner nets zero: revoke whatever it was paid.
		if dr.Clawback > 0 {
			c.clawbacksIssued.Add(1)
			c.clawbackTotal.Add(dr.Clawback)
			s.cfg.Logger.Info("payment clawed back", "phone", int(id), "amount", dr.Clawback)
			s.tracer.Emit(obs.Event{
				Type: obs.EventClawback, Round: s.round, Slot: now,
				Phone: int(id), Task: int(dr.Task), Amount: dr.Clawback,
			})
		}
		if sess := s.phones[id]; sess != nil {
			sess.send(&protocol.Message{
				Type: protocol.TypeClawback, Phone: id, Amount: dr.Clawback, Slot: dr.Slot,
			})
		}
		// Keep the cumulative welfare tally aligned with Outcome.Welfare:
		// the defaulted assignment's surplus comes back out, the
		// replacement's goes in.
		dw := -(s.cfg.Value - inst.Bids[id].Cost)
		if dr.Replacement == core.NoPhone {
			c.tasksUnreplaced.Add(1)
			s.cfg.Logger.Warn("task unreplaced", "task", int(dr.Task), "slot", int(dr.Slot))
		} else {
			r := dr.Replacement
			dw += s.cfg.Value - inst.Bids[r].Cost
			c.tasksReallocated.Add(1)
			s.outstanding[r] = outstandingTask{
				task: dr.Task, slot: dr.Slot, deadline: next + s.cfg.CompletionDeadline,
			}
			s.cfg.Logger.Info("task re-allocated",
				"task", int(dr.Task), "slot", int(dr.Slot), "from", int(id), "to", int(r))
			s.tracer.Emit(obs.Event{
				Type: obs.EventReallocation, Round: s.round, Slot: now,
				Phone: int(r), Task: int(dr.Task), Cost: inst.Bids[r].Cost,
			})
			if sess := s.phones[r]; sess != nil {
				sess.send(&protocol.Message{
					Type: protocol.TypeAssign, Phone: r, Task: dr.Task, Slot: dr.Slot,
				})
			}
		}
		if dw != 0 {
			c.totalWelfare.Add(dw)
			s.metrics.addRoundWelfare(dw)
		}
		for _, p := range dr.Payments {
			c.paymentsIssued.Add(1)
			c.totalPaid.Add(p.Amount)
			s.metrics.addRoundPaid(p.Amount)
			s.cfg.Logger.Info("payment issued", "phone", int(p.Phone), "amount", p.Amount, "slot", now)
			s.tracer.Emit(obs.Event{
				Type: obs.EventPayment, Round: s.round, Slot: now,
				Phone: int(p.Phone), Task: -1, Amount: p.Amount,
			})
			if sess := s.phones[p.Phone]; sess != nil {
				sess.send(&protocol.Message{
					Type: protocol.TypePayment, Phone: p.Phone, Amount: p.Amount, Slot: s.auction.Now(),
				})
			}
		}
	}
}

// handleComplete processes a winner's task-done report. A valid report
// settles the assignment (its payment, issued at departure, stands); an
// invalid one is answered with the typed core error without disturbing
// the round.
func (s *Server) handleComplete(m *protocol.Message, sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reject := func(reason string) {
		s.counters.completionsRejected.Add(1)
		sess.send(&protocol.Message{Type: protocol.TypeError, Error: "platform: " + reason})
	}
	if s.closed {
		reject("server closed")
		return
	}
	if !s.cfg.completionsEnabled() {
		reject(core.ErrNotTracking.Error())
		return
	}
	if m.Round != s.round {
		reject(fmt.Sprintf("complete for round %d, but round %d is live", m.Round, s.round))
		return
	}
	id := m.Phone
	if int(id) >= s.auction.Instance().NumPhones() {
		reject(fmt.Sprintf("complete for unknown phone %d", id))
		return
	}
	if s.phones[id] != sess {
		reject(fmt.Sprintf("phone %d is not attached to this connection (resume first)", id))
		return
	}
	if st := s.auction.Completion(id); st.Status == core.StatusAssigned && st.Task != m.Task {
		reject(fmt.Sprintf("phone %d holds task %d, not task %d", id, st.Task, m.Task))
		return
	}
	if err := s.auction.Complete(id); err != nil {
		// Typed rejection (ErrAlreadyCompleted / ErrNotAssigned): the
		// agent learns exactly why; the round state is untouched.
		reject(err.Error())
		return
	}
	delete(s.outstanding, id)
	s.counters.completionsReported.Add(1)
	s.cfg.Logger.Info("task completed", "phone", int(id), "task", int(m.Task), "slot", int(s.auction.Now()))
	s.tracer.Emit(obs.Event{
		Type: obs.EventTaskCompleted, Round: s.round, Slot: int(s.auction.Now()),
		Phone: int(id), Task: int(m.Task),
	})
	sess.send(&protocol.Message{Type: protocol.TypeAck})
	if s.auction.Done() && len(s.outstanding) == 0 {
		if err := s.finishRound(s.auction.Now()); err != nil {
			s.cfg.Logger.Error("round close failed", "err", err.Error())
		}
	}
}

// beginNextRound rolls the server onto a fresh auction: phone IDs
// restart, every live connection may bid again, and agents are told the
// new round number. Bids still pending from the final slot of the
// previous round carry over and are admitted at the new round's first
// tick. Caller holds s.mu.
func (s *Server) beginNextRound() error {
	auction, err := s.cfg.newAuction()
	if err != nil {
		return fmt.Errorf("platform: next round: %w", err)
	}
	s.configureAuction(auction)
	if s.cfg.completionsEnabled() {
		s.outstanding = make(map[core.PhoneID]outstandingTask)
		s.drain = 0
	}
	if s.cfg.Obs != nil {
		auction.SetMetrics(s.coreMetrics)
		auction.TrackDepartures(true)
		s.instrumentShards(auction)
	}
	closeAuction(s.auction) // a distributed coordinator holds live shard connections
	s.auction = auction
	s.round++
	s.counters.round.Store(int64(s.round))
	s.metrics.resetRound()
	s.tracer.Emit(obs.Event{Type: obs.EventRoundOpen, Round: s.round, Phone: -1, Task: -1})
	s.phones = make(map[core.PhoneID]*session)
	for sess := range s.sessions {
		sess.bid = false // guarded by s.mu, like every sess.bid access
	}
	s.cfg.Logger.Info("round opened", "round", s.round, "of", s.cfg.rounds())
	announce := &protocol.Message{Type: protocol.TypeRound, Round: s.round}
	if f := s.newBroadcast(announce); f != nil {
		for sess := range s.sessions {
			sess.sendFrame(f, protocol.TypeRound)
		}
		f.release()
	}
	return nil
}

// newBroadcast encodes m once per wire format into a pooled shared
// frame (see frame.go). A nil return means the message failed to encode
// — impossible for the platform's own well-formed broadcasts, but
// surfaced rather than panicking.
func (s *Server) newBroadcast(m *protocol.Message) *frame {
	f, err := newFrame(m)
	if err != nil {
		s.cfg.Logger.Error("broadcast encode failed", "type", m.Type, "err", err.Error())
		return nil
	}
	return f
}

// Done reports whether every slot of every configured round has been
// played — and, when a completion deadline is set, every assignment of
// the final round has been completed or defaulted.
func (s *Server) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.auction.Done() && s.round >= s.cfg.rounds() && len(s.outstanding) == 0
}

// Round returns the current round number (1-based).
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// Outcome returns the round outcome so far (see core.OnlineAuction).
func (s *Server) Outcome() *core.Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.auction.Outcome()
}

// Instance returns a copy of the accumulated auction instance.
func (s *Server) Instance() *core.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.auction.Instance()
}

// RunClock drives the remaining slots on a wall clock, announcing the
// task counts produced by tasksFor(slot) each tick. It blocks until the
// round completes or the server closes; a server closed mid-round is a
// clean shutdown (nil), not an error.
func (s *Server) RunClock(slotEvery time.Duration, tasksFor func(core.Slot) int) error {
	ticker := time.NewTicker(slotEvery)
	defer ticker.Stop()
	for range ticker.C {
		if s.Done() {
			return nil
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil
		}
		draining := s.cfg.completionsEnabled() && s.auction.Done()
		next := s.auction.Now() + 1
		s.mu.Unlock()
		n := 0
		if !draining {
			// During drain no tasks are announced, and tasksFor is not
			// consulted (its domain is the round's real slots).
			n = tasksFor(next)
		}
		if _, err := s.Tick(n); err != nil {
			if errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		if s.Done() {
			return nil
		}
	}
	return nil
}

// Close shuts the listener and all connections. Each session's writer
// first flushes the messages already queued for it (so a just-ticked
// end-of-round notice still reaches responsive agents), bounded by the
// per-message write deadline; then the connections are severed. Safe to
// call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, sess := range sessions {
		sess.shutdown()
	}
	s.wg.Wait()
	s.mu.Lock()
	closeAuction(s.auction)
	s.mu.Unlock()
	// With every producer goroutine drained, flush the trace sinks and
	// stop the introspection server (bounded by its shutdown deadline).
	if oerr := s.cfg.Obs.Close(); oerr != nil && err == nil {
		err = oerr
	}
	return err
}
