package platform

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
)

// TestChaosRoundInvariants is the fault-tolerance counterpart of
// TestSwarm: dozens of resilient agents play a round while the
// transport injects latency, pathological segmentation, torn frames,
// and mid-stream disconnects (all deterministic under the fixed seed).
// The auction's guarantees must survive:
//
//   - every slot tick completes (no peer can stall the clock),
//   - reconnecting winners still receive their payments, each at least
//     the winning bid (individual rationality over a broken network),
//   - the outcome equals a fault-free batch replay of the exact bid
//     stream the platform admitted.
func TestChaosRoundInvariants(t *testing.T) {
	const (
		slots     = 10
		numAgents = 25
		seed      = 1234
	)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := chaos.Wrap(raw, chaos.Plan{
		Seed:           seed,
		LatencyProb:    0.25,
		MaxLatency:     2 * time.Millisecond,
		ChunkBytes:     9,
		TruncateProb:   0.05,
		DisconnectProb: 0.10,
		// Let ack+welcome (and, on reconnect, the resume replay) land
		// before a connection becomes cuttable, mirroring a network
		// that fails between exchanges rather than during the SYN.
		ArmAfterBytes: 256,
	})
	s, err := Serve(ln, Config{
		Slots:         slots,
		Value:         30,
		OutboundQueue: 32,
		WriteTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(seed))
	type plan struct {
		joinAfterTick int
		duration      core.Slot
		cost          float64
	}
	plans := make([]plan, numAgents)
	for i := range plans {
		plans[i] = plan{
			joinAfterTick: rng.Intn(slots - 1),
			duration:      core.Slot(1 + rng.Intn(4)),
			cost:          rng.Float64() * 35,
		}
	}

	type report struct {
		assigned bool
		paid     float64
		payments int
		ended    bool
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		reports = make([]report, numAgents)
		errsCh  = make(chan error, numAgents)
	)
	barriers := make([]chan struct{}, slots+1)
	for i := range barriers {
		barriers[i] = make(chan struct{})
	}

	for i, p := range plans {
		name := fmt.Sprintf("chaos-%02d", i)
		wg.Add(1)
		go func(i int, p plan, name string) {
			defer wg.Done()
			<-barriers[p.joinAfterTick]
			a, err := DialResilient(s.Addr(), ReconnectPolicy{
				MaxAttempts: 50,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    20 * time.Millisecond,
				Seed:        int64(i),
			})
			if err != nil {
				errsCh <- fmt.Errorf("%s: dial: %w", name, err)
				return
			}
			defer a.Close()
			if err := a.SubmitBid(name, p.duration, p.cost); err != nil {
				errsCh <- fmt.Errorf("%s: bid: %w", name, err)
				return
			}
			for ev := range a.Events() {
				switch ev.Kind {
				case EventAssign:
					mu.Lock()
					reports[i].assigned = true
					mu.Unlock()
				case EventPayment:
					mu.Lock()
					reports[i].paid += ev.Amount
					reports[i].payments++
					mu.Unlock()
				case EventEnd:
					mu.Lock()
					reports[i].ended = true
					mu.Unlock()
					return
				case EventError:
					errsCh <- fmt.Errorf("%s: %w", name, ev.Err)
					return
				}
			}
			errsCh <- fmt.Errorf("%s: events closed before round end", name)
		}(i, p, name)
	}

	close(barriers[0])
	for tk := 1; tk <= slots; tk++ {
		time.Sleep(40 * time.Millisecond) // let this tick's joiners bid
		if _, err := s.Tick(1 + rng.Intn(3)); err != nil {
			t.Fatalf("tick %d: %v", tk, err)
		}
		if tk < len(barriers) {
			close(barriers[tk])
		}
	}
	if !s.Done() {
		t.Fatal("round incomplete after all ticks")
	}

	// Agents may still be mid-reconnect fetching their end-of-round
	// replay; give them bounded time to settle.
	settled := make(chan struct{})
	go func() { wg.Wait(); close(settled) }()
	select {
	case <-settled:
	case <-time.After(30 * time.Second):
		t.Fatal("agents did not settle after the round")
	}
	close(errsCh)
	for err := range errsCh {
		t.Fatal(err)
	}

	// Invariant: every winner that stayed in the game was paid at least
	// its winning bid, exactly once — through however many reconnects.
	mu.Lock()
	for i, r := range reports {
		if !r.ended {
			t.Fatalf("agent %d never saw the round end", i)
		}
		if r.assigned {
			if r.payments != 1 {
				t.Fatalf("agent %d received %d payments, want exactly 1", i, r.payments)
			}
			if r.paid+1e-9 < plans[i].cost {
				t.Fatalf("agent %d paid %g < winning bid %g (IR violated)", i, r.paid, plans[i].cost)
			}
		} else if r.payments != 0 {
			t.Fatalf("agent %d paid without an assignment", i)
		}
	}
	mu.Unlock()

	// Invariant: the outcome equals a fault-free batch replay of the
	// admitted bid stream — the network chaos perturbed delivery, never
	// the mechanism.
	inst := s.Instance()
	batch, err := (&core.OnlineMechanism{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Outcome()
	if math.Abs(out.Welfare-batch.Welfare) > 1e-9 {
		t.Fatalf("chaotic welfare %g != fault-free replay %g", out.Welfare, batch.Welfare)
	}
	if out.Allocation.NumServed() != batch.Allocation.NumServed() {
		t.Fatalf("served %d != replay %d", out.Allocation.NumServed(), batch.Allocation.NumServed())
	}
	for i := range batch.Payments {
		if math.Abs(out.Payments[i]-batch.Payments[i]) > 1e-9 {
			t.Fatalf("payment[%d]: %g != replay %g", i, out.Payments[i], batch.Payments[i])
		}
	}
	if err := out.Allocation.Validate(inst); err != nil {
		t.Fatal(err)
	}

	// The chaos must actually have bitten: under this seed connections
	// were cut and phones resumed. A zero here means the harness tested
	// nothing.
	st := s.Stats()
	if st.Resumes == 0 {
		t.Fatalf("no resumes under chaos seed %d: %+v", seed, st)
	}
	t.Logf("chaos stats: %d connections, %d resumes, %d queued, %d dropped, %d slow consumers",
		st.Connections, st.Resumes, st.MessagesQueued, st.MessagesDropped, st.SlowConsumers)
}
