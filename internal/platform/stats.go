package platform

import (
	"sync/atomic"

	"dynacrowd/internal/core"
	"dynacrowd/internal/obs"
)

// Stats is a point-in-time snapshot of the server's operational
// counters, for dashboards and tests. All numbers are cumulative since
// Listen (or Resume).
type Stats struct {
	Slot            core.Slot // last processed slot
	Round           int       // current round (1-based)
	Connections     int       // sessions ever accepted
	LiveConnections int       // sessions currently open
	BidsAccepted    int       // bids queued for admission
	BidsRejected    int       // bids refused (duplicate, late, closed)
	TasksAnnounced  int
	TasksServed     int
	TasksUnserved   int
	PaymentsIssued  int
	TotalPaid       float64
	TotalWelfare    float64 // Σ (ν − b) over assignments, across rounds
	ProtocolErrors  int
	Resumes         int   // sessions re-attached to a phone via resume{phone}
	RoundsCompleted int   // auction rounds played to the final slot
	MessagesQueued  int64 // outbound messages accepted into session queues
	MessagesDropped int64 // outbound messages dropped (dead or overflowing session)
	SlowConsumers   int64 // sessions disconnected for not draining their queue

	// Wire-format split (see docs/PLATFORM.md "Wire formats").
	SessionsBinary     int   // live sessions upgraded to the binary framing
	MessagesSentJSON   int64 // messages written to the wire JSON-framed
	MessagesSentBinary int64 // messages written to the wire binary-framed

	// Completion-lifecycle tallies (zero unless Config.CompletionDeadline
	// is set; see docs/PLATFORM.md).
	CompletionsReported int     // task-done reports accepted
	CompletionsRejected int     // task-done reports refused (wrong phone/task/round)
	WinnersDefaulted    int     // winners whose completion deadline lapsed
	TasksReallocated    int     // defaulted tasks re-assigned to a replacement
	TasksUnreplaced     int     // defaulted tasks with no eligible replacement
	ClawbacksIssued     int     // revocation notices sent for already-paid winners
	ClawbackTotal       float64 // Σ revoked payment amounts

	// Offline-benchmark tallies (zero unless Config.OfflineBenchmark is
	// set). OfflineOptimum / TotalWelfare is the realized competitive
	// ratio across benchmarked rounds (≥ 1/2 by Theorem 6).
	OfflineRounds  int     // rounds whose offline optimum was solved
	OfflineOptimum float64 // Σ ω* across benchmarked rounds
}

// counters is the server's live tally. Every field is an atomic so a
// Stats snapshot (or a Prometheus scrape) never takes the server lock —
// a long Tick cannot stall a dashboard, and concurrent read/write is
// race-clean by construction. Writers are the server and its session
// goroutines; fields mutated inside Tick are written under s.mu, but
// readers never rely on that.
type counters struct {
	slot            atomic.Int64
	round           atomic.Int64
	connections     atomic.Int64
	live            atomic.Int64
	bidsAccepted    atomic.Int64
	bidsRejected    atomic.Int64
	tasksAnnounced  atomic.Int64
	tasksServed     atomic.Int64
	tasksUnserved   atomic.Int64
	paymentsIssued  atomic.Int64
	protocolErrors  atomic.Int64
	resumes         atomic.Int64
	roundsCompleted atomic.Int64
	messagesQueued  atomic.Int64
	messagesDropped atomic.Int64
	slowConsumers   atomic.Int64
	binarySessions  atomic.Int64 // gauge: live binary-upgraded sessions
	sentJSON        atomic.Int64
	sentBinary      atomic.Int64

	completionsReported atomic.Int64
	completionsRejected atomic.Int64
	winnersDefaulted    atomic.Int64
	tasksReallocated    atomic.Int64
	tasksUnreplaced     atomic.Int64
	clawbacksIssued     atomic.Int64

	offlineRounds atomic.Int64

	totalPaid      obs.FloatCounter
	totalWelfare   obs.FloatCounter
	clawbackTotal  obs.FloatCounter
	offlineOptimum obs.FloatCounter
}

// Stats returns the current counters. Lock-free: safe to call at any
// frequency from any goroutine, including while a Tick is in flight.
func (s *Server) Stats() Stats {
	c := &s.counters
	return Stats{
		Slot:            core.Slot(c.slot.Load()),
		Round:           int(c.round.Load()),
		Connections:     int(c.connections.Load()),
		LiveConnections: int(c.live.Load()),
		BidsAccepted:    int(c.bidsAccepted.Load()),
		BidsRejected:    int(c.bidsRejected.Load()),
		TasksAnnounced:  int(c.tasksAnnounced.Load()),
		TasksServed:     int(c.tasksServed.Load()),
		TasksUnserved:   int(c.tasksUnserved.Load()),
		PaymentsIssued:  int(c.paymentsIssued.Load()),
		TotalPaid:       c.totalPaid.Value(),
		TotalWelfare:    c.totalWelfare.Value(),
		ProtocolErrors:  int(c.protocolErrors.Load()),
		Resumes:         int(c.resumes.Load()),
		RoundsCompleted: int(c.roundsCompleted.Load()),
		MessagesQueued:  c.messagesQueued.Load(),
		MessagesDropped: c.messagesDropped.Load(),
		SlowConsumers:   c.slowConsumers.Load(),

		SessionsBinary:     int(c.binarySessions.Load()),
		MessagesSentJSON:   c.sentJSON.Load(),
		MessagesSentBinary: c.sentBinary.Load(),

		CompletionsReported: int(c.completionsReported.Load()),
		CompletionsRejected: int(c.completionsRejected.Load()),
		WinnersDefaulted:    int(c.winnersDefaulted.Load()),
		TasksReallocated:    int(c.tasksReallocated.Load()),
		TasksUnreplaced:     int(c.tasksUnreplaced.Load()),
		ClawbacksIssued:     int(c.clawbacksIssued.Load()),
		ClawbackTotal:       c.clawbackTotal.Value(),

		OfflineRounds:  int(c.offlineRounds.Load()),
		OfflineOptimum: c.offlineOptimum.Value(),
	}
}
