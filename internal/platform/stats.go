package platform

import "dynacrowd/internal/core"

// Stats is a point-in-time snapshot of the server's operational
// counters, for dashboards and tests. All numbers are cumulative since
// Listen (or Resume).
type Stats struct {
	Slot            core.Slot // last processed slot
	Connections     int       // sessions ever accepted
	LiveConnections int       // sessions currently open
	BidsAccepted    int       // bids queued for admission
	BidsRejected    int       // bids refused (duplicate, late, closed)
	TasksAnnounced  int
	TasksServed     int
	TasksUnserved   int
	PaymentsIssued  int
	TotalPaid       float64
	ProtocolErrors  int
	Resumes         int   // sessions re-attached to a phone via resume{phone}
	MessagesQueued  int64 // outbound messages accepted into session queues
	MessagesDropped int64 // outbound messages dropped (dead or overflowing session)
	SlowConsumers   int64 // sessions disconnected for not draining their queue
}

// Stats returns the current counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Slot = s.auction.Now()
	st.LiveConnections = len(s.sessions)
	st.MessagesQueued = s.messagesQueued.Load()
	st.MessagesDropped = s.messagesDropped.Load()
	st.SlowConsumers = s.slowConsumers.Load()
	return st
}
