package platform

import (
	"sync"
	"sync/atomic"

	"dynacrowd/internal/protocol"
)

// frame is one broadcast message encoded once per wire format and
// shared by reference across every session it is fanned out to — the
// heart of batched fan-out: a tick's slot notice costs two encodes
// total instead of one marshal per session.
//
// Lifecycle: newFrame returns a frame holding the broadcaster's
// reference. The broadcaster retains once per session it enqueues to
// (sendFrame does this) and releases its own reference when the loop is
// done; each session's writer releases after the frame hits the wire
// (or when the session dies with frames still queued). At zero
// references the frame's buffers go back to the pool, so steady-state
// broadcasts recycle the same two byte slices forever.
type frame struct {
	refs atomic.Int32
	json []byte
	bin  []byte
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// newFrame encodes m in both wire formats into pooled buffers. Both
// encodings are built eagerly: frames are pooled, so a sync.Once-style
// lazy encode would need re-arming, and every realistic broadcast mix
// has at least one session per format anyway.
func newFrame(m *protocol.Message) (*frame, error) {
	f := framePool.Get().(*frame)
	var err error
	if f.json, err = protocol.AppendFrame(f.json[:0], m, protocol.FormatJSON); err != nil {
		framePool.Put(f)
		return nil, err
	}
	if f.bin, err = protocol.AppendFrame(f.bin[:0], m, protocol.FormatBinary); err != nil {
		framePool.Put(f)
		return nil, err
	}
	f.refs.Store(1)
	return f, nil
}

// encoded returns the frame bytes for one wire format. The slice is
// owned by the frame: valid only while the caller holds a reference.
func (f *frame) encoded(format protocol.Format) []byte {
	if format == protocol.FormatBinary {
		return f.bin
	}
	return f.json
}

func (f *frame) retain() { f.refs.Add(1) }

// release drops one reference, returning the frame to the pool at zero.
func (f *frame) release() {
	if f.refs.Add(-1) == 0 {
		framePool.Put(f)
	}
}
