package platform

import (
	"io"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
	"dynacrowd/internal/protocol"
)

// TestBinaryNegotiationEndToEnd plays a complete round — bid, welcome,
// slot ticks, assignment, payment, end — over the negotiated binary
// framing, through the public Agent API and a real TCP connection.
func TestBinaryNegotiationEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 30})
	a := dialAgent(t, s.Addr())
	st, err := a.UpgradeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if st.Wire != protocol.WireBinary || st.Slots != 3 || st.Value != 30 {
		t.Fatalf("state = %+v", st)
	}
	if got := s.Stats().SessionsBinary; got != 1 {
		t.Fatalf("SessionsBinary = %d, want 1", got)
	}
	if err := a.SubmitBid("bin-phone", 3, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	w := waitEvent(t, a, EventWelcome)
	if w.Phone != 0 || w.Departure != 3 {
		t.Fatalf("welcome = %+v", w)
	}
	as := waitEvent(t, a, EventAssign)
	if as.Task != 0 || as.Slot != 1 {
		t.Fatalf("assign = %+v", as)
	}
	for slot := 2; slot <= 3; slot++ {
		if _, err := s.Tick(0); err != nil {
			t.Fatal(err)
		}
	}
	pay := waitEvent(t, a, EventPayment)
	if pay.Amount != 30 { // sole bidder: critical value is ν
		t.Fatalf("payment = %+v", pay)
	}
	end := waitEvent(t, a, EventEnd)
	if end.Welfare != 20 {
		t.Fatalf("end = %+v", end)
	}
	stats := s.Stats()
	if stats.MessagesSentBinary == 0 {
		t.Fatal("no binary-framed messages were sent")
	}
	// Only the pre-negotiation state reply travels as JSON.
	if stats.MessagesSentJSON != 1 {
		t.Fatalf("MessagesSentJSON = %d, want 1 (the state reply)", stats.MessagesSentJSON)
	}
}

// TestHelloRejectsUnknownWire: an unknown wire name in hello is a
// protocol error, answered and disconnected like any malformed message.
func TestHelloRejectsUnknownWire(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 30})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"type":"hello","wire":"msgpack"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	m, err := protocol.NewReader(conn).Receive()
	if err != nil || m.Type != protocol.TypeError {
		t.Fatalf("want error reply, got %+v, %v", m, err)
	}
}

// rawWireAgent is a protocol-level client for wire tests: no event
// channels, just a reader loop counting what arrives.
type rawWireAgent struct {
	conn  net.Conn
	r     *protocol.Reader
	w     *protocol.Writer
	slots atomic.Int64 // slot notices observed by the drain loop
}

func newRawWireAgent(t testing.TB, ln *chaos.MemListener, wire string) *rawWireAgent {
	t.Helper()
	conn, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	a := &rawWireAgent{conn: conn, r: protocol.NewReader(conn), w: protocol.NewWriter(conn)}
	if err := a.w.Send(&protocol.Message{Type: protocol.TypeHello, Wire: wire}); err != nil {
		t.Fatal(err)
	}
	st, err := a.r.Receive()
	if err != nil || st.Type != protocol.TypeState {
		t.Fatalf("state: %+v, %v", st, err)
	}
	if st.Wire == protocol.WireBinary {
		a.r.SetFormat(protocol.FormatBinary)
		a.w.SetFormat(protocol.FormatBinary)
	}
	return a
}

// bid submits and reads messages until the ack arrives.
func (a *rawWireAgent) bid(t testing.TB, name string, duration core.Slot, cost float64) {
	t.Helper()
	if err := a.w.Send(&protocol.Message{Type: protocol.TypeBid, Name: name, Duration: duration, Cost: cost}); err != nil {
		t.Fatal(err)
	}
	for {
		m, err := a.r.Receive()
		if err != nil {
			t.Fatalf("awaiting ack: %v", err)
		}
		if m.Type == protocol.TypeAck {
			return
		}
		if m.Type == protocol.TypeError {
			t.Fatalf("bid rejected: %s", m.Error)
		}
	}
}

// drain consumes messages until the connection dies, tallying slots.
// The loop is allocation-free in binary mode (ReceiveInto).
func (a *rawWireAgent) drain() {
	var m protocol.Message
	for {
		if err := a.r.ReceiveInto(&m); err != nil {
			return
		}
		if m.Type == protocol.TypeSlot {
			a.slots.Add(1)
		}
	}
}

// waitDrained blocks until every queued outbound message has been
// written to the wire (or the deadline passes).
func waitDrained(t testing.TB, s *Server, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		st := s.Stats()
		if st.MessagesSentJSON+st.MessagesSentBinary+st.MessagesDropped >= st.MessagesQueued {
			return
		}
		if time.Now().After(stop) {
			t.Fatalf("queues never drained: %+v", st)
		}
		runtime.Gosched()
	}
}

// TestBackpressureUnderBatchedFanout: with shared-frame broadcasts, a
// consumer that stops reading must still trip the bounded-queue
// slow-consumer disconnect, and healthy sessions must keep receiving
// every subsequent slot notice. net.Pipe transport makes the stall
// fully deterministic: there is no kernel buffer for the slow peer to
// hide behind.
func TestBackpressureUnderBatchedFanout(t *testing.T) {
	ln := chaos.NewMemListener(8)
	s, err := Serve(ln, Config{
		Slots: 500, Value: 30,
		OutboundQueue: 4,
		WriteTimeout:  -1, // queue overflow, not a write deadline, is the trip wire
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	healthy := newRawWireAgent(t, ln, protocol.WireBinary)
	defer healthy.conn.Close()
	slow := newRawWireAgent(t, ln, protocol.WireJSON)
	defer slow.conn.Close()
	healthy.bid(t, "healthy", 500, 10)
	slow.bid(t, "slow", 500, 11)

	if _, err := s.Tick(0); err != nil { // admit both
		t.Fatal(err)
	}
	go healthy.drain()
	// The slow consumer reads its welcome and then goes silent.
	for {
		m, err := slow.r.Receive()
		if err != nil {
			t.Fatalf("slow agent welcome: %v", err)
		}
		if m.Type == protocol.TypeWelcome {
			break
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().SlowConsumers == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow consumer never tripped: %+v", s.Stats())
		}
		// Pace on the healthy agent's receipts: each tick's notice must
		// reach it before the next tick fires, so its bounded queue can
		// never overflow merely because the scheduler starved its drain
		// goroutine. The stalled session reads nothing, so its queue
		// fills at full tick rate regardless.
		h0 := healthy.slots.Load()
		if _, err := s.Tick(0); err != nil {
			t.Fatal(err)
		}
		for healthy.slots.Load() == h0 && s.Stats().SlowConsumers == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("healthy agent never saw its slot notice: %+v", s.Stats())
			}
			runtime.Gosched()
		}
	}
	st := s.Stats()
	if st.SlowConsumers != 1 || st.MessagesDropped == 0 {
		t.Fatalf("stats after stall: %+v", st)
	}

	// The healthy session keeps receiving: five more ticks must all
	// reach it even though the slow session is (or is being) torn down.
	// Paced like above — each notice must land before the next tick, so
	// a scheduling stall cannot overflow the 4-deep queue by itself.
	before := healthy.slots.Load()
	waitForSlots := time.Now().Add(10 * time.Second)
	for i := int64(1); i <= 5; i++ {
		if _, err := s.Tick(0); err != nil {
			t.Fatal(err)
		}
		for healthy.slots.Load() < before+i {
			if time.Now().After(waitForSlots) {
				t.Fatalf("healthy session stalled: saw %d slots, want >= %d", healthy.slots.Load(), before+i)
			}
			runtime.Gosched()
		}
	}
}

// TestSteadyStateFanoutAllocFree pins the tentpole's allocation claim:
// with an idle auction (no joins, tasks, or departures), broadcasting a
// slot tick to a connected binary swarm allocates nothing per message —
// the shared frame is pooled, the outbound queue carries structs, the
// writers reuse their buffers, and the agents' ReceiveInto loops are
// allocation-free. The only allocations left are the fixed per-tick
// bookkeeping, which this test amortizes over population × ticks.
func TestSteadyStateFanoutAllocFree(t *testing.T) {
	const agents = 192
	const ticks = 40
	ln := chaos.NewMemListener(agents)
	s, err := Serve(ln, Config{
		Slots: 10_000, Value: 30,
		OutboundQueue: ticks + 8, // no overflow even if drains lag a whole run
		WriteTimeout:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	swarm := make([]*rawWireAgent, agents)
	for i := range swarm {
		swarm[i] = newRawWireAgent(t, ln, protocol.WireBinary)
		defer swarm[i].conn.Close()
		swarm[i].bid(t, "p", 10_000, 10)
	}
	if _, err := s.Tick(0); err != nil { // admit the swarm
		t.Fatal(err)
	}
	for _, a := range swarm {
		go a.drain()
	}
	waitDrained(t, s, 10*time.Second)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ticks; i++ {
		if _, err := s.Tick(0); err != nil {
			t.Fatal(err)
		}
		waitDrained(t, s, 10*time.Second)
	}
	runtime.ReadMemStats(&after)

	msgs := float64(agents) * float64(ticks)
	perMsg := float64(after.Mallocs-before.Mallocs) / msgs
	t.Logf("steady-state fan-out: %.4f allocs/msg over %d msgs", perMsg, int(msgs))
	// The budget is deliberately tight: per-message cost must be zero,
	// with only the fixed per-tick auction bookkeeping (amortized to
	// ~0.1/msg at this population) allowed through.
	if perMsg >= 0.5 {
		t.Fatalf("steady-state fan-out allocates %.3f/msg, want < 0.5", perMsg)
	}
}

// BenchmarkTickFanout measures delivered broadcast throughput — tick,
// then wait until every session's writer has the slot notice on the
// wire — for both framings at a fixed population.
func BenchmarkTickFanout(b *testing.B) {
	for _, wire := range []string{protocol.WireJSON, protocol.WireBinary} {
		b.Run(wire, func(b *testing.B) {
			const agents = 512
			ln := chaos.NewMemListener(agents)
			s, err := Serve(ln, Config{
				Slots: core.Slot(b.N + 10_000), Value: 30,
				OutboundQueue: 64,
				WriteTimeout:  -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			swarm := make([]*rawWireAgent, agents)
			for i := range swarm {
				swarm[i] = newRawWireAgent(b, ln, wire)
				defer swarm[i].conn.Close()
				swarm[i].bid(b, "p", core.Slot(b.N+10_000), 10)
			}
			if _, err := s.Tick(0); err != nil {
				b.Fatal(err)
			}
			for _, a := range swarm {
				go a.drain()
			}
			waitDrained(b, s, 30*time.Second)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := s.Tick(0); err != nil {
					b.Fatal(err)
				}
				waitDrained(b, s, 30*time.Second)
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(agents)*float64(b.N)/elapsed, "msgs/s")
			}
		})
	}
}

// TestMemListener covers the in-memory listener used by the wire tests
// and the load harness.
func TestMemListener(t *testing.T) {
	ln := chaos.NewMemListener(1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(c, c) // echo
		c.Close()
	}()
	c, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo: %q, %v", buf, err)
	}
	if c.LocalAddr().String() == c.RemoteAddr().String() {
		t.Fatalf("addresses not distinguishable: %v", c.LocalAddr())
	}
	c.Close()
	<-done
	ln.Close()
	if _, err := ln.Dial(); err == nil {
		t.Fatal("dial after close must fail")
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("accept after close must fail")
	}
}
