package platform

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"dynacrowd/internal/chaos"
	"dynacrowd/internal/core"
	"dynacrowd/internal/workload"
)

// TestSoakUnreliableWinnersUnderChaos is the robustness soak demanded
// by the failure model in docs/PLATFORM.md: workload realization faults
// (phones drawn from the chaos reliability mixture silently skip their
// completion reports) composed with transport faults (latency, torn
// frames, mid-stream disconnects) on every connection. Whatever the
// two-axis fault schedule does, the money must conserve:
//
//   - a defaulted winner nets zero: any issued payment is revoked by a
//     clawback of exactly the issued amount,
//   - a surviving winner is paid exactly once, at least its bid,
//   - the platform's books balance: Σ issued − Σ revoked equals the
//     final outcome's total payment,
//   - the round still terminates (drain defaults every silent winner),
//   - and the chaos actually bit: resumes and defaults both happened,
//     with at least 20% of resolved assignments defaulting.
//
// Run it under -race via `make soak`.
func TestSoakUnreliableWinnersUnderChaos(t *testing.T) {
	const (
		slots     = 12
		numAgents = 30
		seed      = 4242
		deadline  = 2
	)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := chaos.Wrap(raw, chaos.Plan{
		Seed:           seed,
		LatencyProb:    0.25,
		MaxLatency:     2 * time.Millisecond,
		ChunkBytes:     9,
		TruncateProb:   0.05,
		DisconnectProb: 0.10,
		ArmAfterBytes:  256,
	})
	s, err := Serve(ln, Config{
		Slots:              slots,
		Value:              30,
		CompletionDeadline: deadline,
		OutboundQueue:      32,
		WriteTimeout:       time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Each agent is drawn into a reliability class of the same chaos
	// mixture the realization model uses; its class decides, per
	// assignment, whether it reports the task done or stays silent and
	// rides into a default.
	model := workload.ChaosModel()
	var totalWeight float64
	for _, c := range model.Classes {
		totalWeight += c.Weight
	}
	classOf := func(rng *workload.RNG) workload.ReliabilityClass {
		u := rng.Float64() * totalWeight
		for _, c := range model.Classes {
			if u < c.Weight {
				return c
			}
			u -= c.Weight
		}
		return model.Classes[len(model.Classes)-1]
	}

	rng := rand.New(rand.NewSource(seed))
	type plan struct {
		joinAfterTick int
		duration      core.Slot
		cost          float64
		class         workload.ReliabilityClass
	}
	plans := make([]plan, numAgents)
	for i := range plans {
		wrng := workload.NewRNG(uint64(seed)*1000 + uint64(i))
		plans[i] = plan{
			joinAfterTick: rng.Intn(slots - 1),
			duration:      core.Slot(1 + rng.Intn(4)),
			cost:          rng.Float64() * 35,
			class:         classOf(wrng),
		}
	}

	type report struct {
		phone     core.PhoneID
		assigned  int
		payments  int
		paid      float64
		clawbacks int
		clawed    float64
		ended     bool
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		reports = make([]report, numAgents)
		errsCh  = make(chan error, numAgents)
	)
	for i := range reports {
		reports[i].phone = core.NoPhone
	}
	barriers := make([]chan struct{}, slots+1)
	for i := range barriers {
		barriers[i] = make(chan struct{})
	}

	for i, p := range plans {
		name := fmt.Sprintf("soak-%02d", i)
		wg.Add(1)
		go func(i int, p plan, name string) {
			defer wg.Done()
			<-barriers[p.joinAfterTick]
			a, err := DialResilient(s.Addr(), ReconnectPolicy{
				MaxAttempts: 50,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    20 * time.Millisecond,
				Seed:        int64(i),
			})
			if err != nil {
				errsCh <- fmt.Errorf("%s: dial: %w", name, err)
				return
			}
			defer a.Close()
			if err := a.SubmitBid(name, p.duration, p.cost); err != nil {
				errsCh <- fmt.Errorf("%s: bid: %w", name, err)
				return
			}
			frng := workload.NewRNG(uint64(seed)*7777 + uint64(i))
			for ev := range a.Events() {
				switch ev.Kind {
				case EventWelcome:
					mu.Lock()
					reports[i].phone = ev.Phone
					mu.Unlock()
				case EventAssign:
					mu.Lock()
					reports[i].assigned++
					mu.Unlock()
					// The realization draw: a no-show or vanished phone
					// stays silent and lets the deadline default it. A
					// report swallowed by the chaotic transport is the
					// same outcome via a different fault, so a failed
					// ReportCompletion is part of the experiment, not an
					// error.
					silent := frng.Float64() < p.class.NoShow || frng.Float64() < p.class.Vanish
					if !silent {
						_ = a.ReportCompletion()
					}
				case EventPayment:
					mu.Lock()
					reports[i].payments++
					reports[i].paid += ev.Amount
					mu.Unlock()
				case EventClawback:
					mu.Lock()
					reports[i].clawbacks++
					reports[i].clawed += ev.Amount
					mu.Unlock()
				case EventEnd:
					mu.Lock()
					reports[i].ended = true
					mu.Unlock()
					return
				case EventError:
					errsCh <- fmt.Errorf("%s: %w", name, ev.Err)
					return
				}
			}
			errsCh <- fmt.Errorf("%s: events closed before round end", name)
		}(i, p, name)
	}

	close(barriers[0])
	for tk := 1; tk <= slots; tk++ {
		time.Sleep(50 * time.Millisecond)
		if _, err := s.Tick(1 + rng.Intn(3)); err != nil {
			t.Fatalf("tick %d: %v", tk, err)
		}
		if tk < len(barriers) {
			close(barriers[tk])
		}
	}
	// Drain: virtual ticks lapse the outstanding completion windows;
	// silent winners default and their replacements get their own
	// windows, so termination is guaranteed but not instant.
	for i := 0; !s.Done(); i++ {
		if i > 20*numAgents {
			t.Fatalf("round failed to terminate after %d drain ticks: %+v", i, s.Stats())
		}
		time.Sleep(25 * time.Millisecond)
		if _, err := s.Tick(0); err != nil {
			t.Fatalf("drain tick %d: %v", i, err)
		}
	}

	settled := make(chan struct{})
	go func() { wg.Wait(); close(settled) }()
	select {
	case <-settled:
	case <-time.After(30 * time.Second):
		t.Fatal("agents did not settle after the round")
	}
	close(errsCh)
	for err := range errsCh {
		t.Fatal(err)
	}

	st := s.Stats()
	out := s.Outcome()

	// Per-agent money invariants, through any number of reconnects.
	mu.Lock()
	for i, r := range reports {
		if !r.ended {
			t.Fatalf("agent %d never saw the round end", i)
		}
		if r.payments > 1 {
			t.Fatalf("agent %d received %d payments, want at most 1", i, r.payments)
		}
		if r.clawbacks > 1 {
			t.Fatalf("agent %d received %d clawbacks, want at most 1", i, r.clawbacks)
		}
		if r.payments > 0 && r.assigned == 0 {
			t.Fatalf("agent %d paid without an assignment", i)
		}
		switch {
		case r.clawbacks == 1:
			// Defaulted: whatever was issued was revoked — net zero —
			// and the final books owe this phone nothing.
			if math.Abs(r.clawed-r.paid) > 1e-9 {
				t.Fatalf("agent %d clawed %g != paid %g (default must net zero)", i, r.clawed, r.paid)
			}
			if r.phone != core.NoPhone && out.Payments[r.phone] != 0 {
				t.Fatalf("defaulted agent %d still owed %g in the outcome", i, out.Payments[r.phone])
			}
		case r.payments == 1:
			// Survived: individual rationality held through the chaos.
			if r.paid+1e-9 < plans[i].cost {
				t.Fatalf("agent %d paid %g < winning bid %g (IR violated)", i, r.paid, plans[i].cost)
			}
		}
	}
	mu.Unlock()

	// Books balance: issued minus revoked is exactly the final total.
	if got := st.TotalPaid - st.ClawbackTotal; math.Abs(got-out.TotalPayment()) > 1e-9 {
		t.Fatalf("issued %g − revoked %g = %g, but the outcome totals %g",
			st.TotalPaid, st.ClawbackTotal, st.TotalPaid-st.ClawbackTotal, out.TotalPayment())
	}
	if st.TasksReallocated+st.TasksUnreplaced != st.WinnersDefaulted {
		t.Fatalf("every default must re-allocate or unserve: %+v", st)
	}

	// The two fault axes must both have bitten, hard enough to mean
	// something: the ISSUE's floor is a 20% default rate.
	resolved := st.WinnersDefaulted + st.CompletionsReported
	if resolved == 0 {
		t.Fatal("no assignments resolved; the soak tested nothing")
	}
	rate := float64(st.WinnersDefaulted) / float64(resolved)
	if rate < 0.20 {
		t.Fatalf("default rate %.0f%% below the 20%% floor (%d defaults / %d resolved)", rate*100, st.WinnersDefaulted, resolved)
	}
	if st.Resumes == 0 {
		t.Fatalf("no resumes under chaos seed %d: %+v", seed, st)
	}
	t.Logf("soak stats: %d connections, %d resumes, %d completed, %d defaulted (%.0f%% rate), %d reallocated, %d unreplaced, %.2f issued, %.2f clawed back",
		st.Connections, st.Resumes, st.CompletionsReported, st.WinnersDefaulted, rate*100,
		st.TasksReallocated, st.TasksUnreplaced, st.TotalPaid, st.ClawbackTotal)
}
