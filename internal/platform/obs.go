package platform

import (
	"time"

	"dynacrowd/internal/obs"
)

// platformMetrics holds the platform-layer instruments. Constructed
// only when Config.Obs is set; a nil *platformMetrics (observability
// disabled) makes every method a cheap no-op, keeping the tick path
// allocation-free.
type platformMetrics struct {
	tickSeconds   *obs.Histogram
	fanoutSeconds *obs.Histogram  // latency of one batched slot fan-out
	roundWelfare  *obs.FloatGauge // welfare accumulated in the current round
	roundPaid     *obs.FloatGauge // payments issued in the current round
	queueDepth    func() float64  // retained for tests; registered as a GaugeFunc
}

// newPlatformMetrics registers the platform metric catalog (see
// docs/OBSERVABILITY.md) against reg. Cumulative counters are bridged
// from the server's atomic tally via CounterFunc/GaugeFunc, so the
// counters are maintained once and scraped without double accounting
// or extra hot-path work.
func newPlatformMetrics(reg *obs.Registry, s *Server) *platformMetrics {
	if reg == nil {
		return nil
	}
	c := &s.counters
	bridge := func(name, help string, v func() float64, gauge bool) {
		if gauge {
			reg.GaugeFunc(name, help, v)
		} else {
			reg.CounterFunc(name, help, v)
		}
	}
	i64 := func(a interface{ Load() int64 }) func() float64 {
		return func() float64 { return float64(a.Load()) }
	}
	bridge("dynacrowd_platform_slot", "Last processed slot of the current round.", i64(&c.slot), true)
	bridge("dynacrowd_platform_round", "Current round number (1-based).", i64(&c.round), true)
	bridge("dynacrowd_platform_connections_total", "Agent sessions ever accepted.", i64(&c.connections), false)
	bridge("dynacrowd_platform_live_connections", "Agent sessions currently open.", i64(&c.live), true)
	bridge("dynacrowd_platform_bids_accepted_total", "Bids queued for admission.", i64(&c.bidsAccepted), false)
	bridge("dynacrowd_platform_bids_rejected_total", "Bids refused (duplicate, late, closed).", i64(&c.bidsRejected), false)
	bridge("dynacrowd_platform_tasks_announced_total", "Sensing tasks announced.", i64(&c.tasksAnnounced), false)
	bridge("dynacrowd_platform_tasks_served_total", "Sensing tasks allocated to a phone.", i64(&c.tasksServed), false)
	bridge("dynacrowd_platform_tasks_unserved_total", "Sensing tasks that found no eligible phone.", i64(&c.tasksUnserved), false)
	bridge("dynacrowd_platform_payments_issued_total", "Critical-value payments issued to departing winners.", i64(&c.paymentsIssued), false)
	bridge("dynacrowd_platform_protocol_errors_total", "Malformed or unexpected agent messages.", i64(&c.protocolErrors), false)
	bridge("dynacrowd_platform_resumes_total", "Sessions re-attached to a phone via resume.", i64(&c.resumes), false)
	bridge("dynacrowd_platform_rounds_completed_total", "Auction rounds played to their final slot.", i64(&c.roundsCompleted), false)
	bridge("dynacrowd_platform_messages_queued_total", "Outbound messages accepted into session queues.", i64(&c.messagesQueued), false)
	bridge("dynacrowd_platform_messages_dropped_total", "Outbound messages dropped (dead or overflowing session).", i64(&c.messagesDropped), false)
	bridge("dynacrowd_platform_slow_consumers_total", "Sessions disconnected for not draining their queue.", i64(&c.slowConsumers), false)
	reg.GaugeFunc("dynacrowd_platform_sessions", "Agent sessions currently connected, by negotiated wire format.",
		func() float64 { return float64(c.live.Load() - c.binarySessions.Load()) }, "format", "json")
	reg.GaugeFunc("dynacrowd_platform_sessions", "Agent sessions currently connected, by negotiated wire format.",
		i64(&c.binarySessions), "format", "binary")
	reg.CounterFunc("dynacrowd_platform_messages_sent_total", "Messages written to the wire, by framing.",
		i64(&c.sentJSON), "format", "json")
	reg.CounterFunc("dynacrowd_platform_messages_sent_total", "Messages written to the wire, by framing.",
		i64(&c.sentBinary), "format", "binary")
	bridge("dynacrowd_platform_completions_total", "Task-done reports accepted from winners.", i64(&c.completionsReported), false)
	bridge("dynacrowd_platform_completions_rejected_total", "Task-done reports refused (wrong phone, task, or round).", i64(&c.completionsRejected), false)
	bridge("dynacrowd_platform_winners_defaulted_total", "Winners whose completion deadline lapsed.", i64(&c.winnersDefaulted), false)
	bridge("dynacrowd_platform_tasks_reallocated_total", "Defaulted tasks re-assigned to a replacement phone.", i64(&c.tasksReallocated), false)
	bridge("dynacrowd_platform_tasks_unreplaced_total", "Defaulted tasks with no eligible replacement.", i64(&c.tasksUnreplaced), false)
	bridge("dynacrowd_platform_clawbacks_total", "Payment revocation notices issued to defaulted winners.", i64(&c.clawbacksIssued), false)
	reg.CounterFunc("dynacrowd_platform_clawback_amount_total",
		"Cumulative payment amounts revoked from defaulted winners.",
		c.clawbackTotal.Value)
	reg.CounterFunc("dynacrowd_platform_paid_total",
		"Cumulative payments issued, across rounds (matches Outcome.TotalPayment per completed round).",
		c.totalPaid.Value)
	reg.CounterFunc("dynacrowd_platform_welfare_total",
		"Cumulative social welfare Σ(ν − b) over assignments, across rounds (matches Outcome.Welfare per completed round).",
		c.totalWelfare.Value)

	queueDepth := func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		depth := 0
		for sess := range s.sessions {
			depth += len(sess.out)
		}
		return float64(depth)
	}
	reg.GaugeFunc("dynacrowd_platform_session_queue_depth",
		"Outbound messages sitting in session queues right now.", queueDepth)

	return &platformMetrics{
		tickSeconds: reg.Histogram("dynacrowd_platform_tick_seconds",
			"Latency of one slot tick: bid admission, allocation, notifications, payments.",
			obs.LatencyBuckets),
		fanoutSeconds: reg.Histogram("dynacrowd_platform_fanout_seconds",
			"Latency of one batched slot broadcast: encode once per format, enqueue to every phone.",
			obs.LatencyBuckets),
		roundWelfare: reg.FloatGauge("dynacrowd_platform_round_welfare",
			"Social welfare accumulated in the current round."),
		roundPaid: reg.FloatGauge("dynacrowd_platform_round_paid",
			"Payments issued in the current round."),
		queueDepth: queueDepth,
	}
}

// observeTick records one tick's latency.
func (pm *platformMetrics) observeTick(d time.Duration) {
	if pm != nil {
		pm.tickSeconds.Observe(d.Seconds())
	}
}

// observeFanout records one batched slot broadcast's latency.
func (pm *platformMetrics) observeFanout(d time.Duration) {
	if pm != nil {
		pm.fanoutSeconds.Observe(d.Seconds())
	}
}

// addRoundWelfare / addRoundPaid advance the per-round gauges.
func (pm *platformMetrics) addRoundWelfare(v float64) {
	if pm != nil {
		pm.roundWelfare.Add(v)
	}
}

func (pm *platformMetrics) addRoundPaid(v float64) {
	if pm != nil {
		pm.roundPaid.Add(v)
	}
}

// resetRound zeroes the per-round gauges when a new round opens.
func (pm *platformMetrics) resetRound() {
	if pm != nil {
		pm.roundWelfare.Set(0)
		pm.roundPaid.Set(0)
	}
}
