package platform

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/protocol"
)

// EventKind discriminates Agent events.
type EventKind int

// Agent event kinds.
const (
	EventWelcome EventKind = iota + 1 // bid admitted; Phone and Departure set
	EventSlot                         // slot tick; Slot set
	EventAssign                       // won a task; Task and Slot set
	EventPayment                      // paid; Amount and Slot set
	EventEnd                          // round finished; Welfare, Payments, Round set
	EventRound                        // a new round opened; Round set (bid again!)
	EventError                        // platform reported an error; Err set
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventWelcome:
		return "welcome"
	case EventSlot:
		return "slot"
	case EventAssign:
		return "assign"
	case EventPayment:
		return "payment"
	case EventEnd:
		return "end"
	case EventRound:
		return "round"
	case EventError:
		return "error"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one platform notification delivered to the agent.
type Event struct {
	Kind      EventKind
	Phone     core.PhoneID
	Slot      core.Slot
	Departure core.Slot
	Task      core.TaskID
	Amount    float64
	Welfare   float64
	Payments  float64
	Round     int
	Err       error
}

// RoundState is the platform's reply to a hello.
type RoundState struct {
	Slot  core.Slot // last processed slot (0 before the first tick)
	Slots core.Slot // round length m
	Value float64   // per-task value ν
	Round int       // current round number (1-based)
}

// Agent is a smartphone client of the platform: it submits one bid and
// then consumes platform events until the round ends or the connection
// drops. Events are delivered on the Events channel in wire order; the
// channel closes when the connection ends.
type Agent struct {
	conn   net.Conn
	w      *protocol.Writer
	events chan Event

	mu       sync.Mutex
	stateful chan RoundState // pending hello reply
	acks     chan error      // pending bid acknowledgements

	closeOnce sync.Once
}

// Dial connects an agent to the platform.
func Dial(addr string) (*Agent, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("agent: %w", err)
	}
	a := &Agent{
		conn:     conn,
		w:        protocol.NewWriter(conn),
		events:   make(chan Event, 64),
		stateful: make(chan RoundState, 1),
		acks:     make(chan error, 1),
	}
	go a.readLoop()
	return a, nil
}

// Hello queries the round state (current slot, round length, ν).
func (a *Agent) Hello() (RoundState, error) {
	if err := a.send(&protocol.Message{Type: protocol.TypeHello}); err != nil {
		return RoundState{}, err
	}
	select {
	case st, ok := <-a.stateful:
		if !ok {
			return RoundState{}, errors.New("agent: connection closed before state reply")
		}
		return st, nil
	case <-time.After(5 * time.Second):
		return RoundState{}, errors.New("agent: timed out waiting for state")
	}
}

// SubmitBid submits this phone's (single) bid: it stays active for
// duration slots starting at the next slot tick and charges cost per
// task. It blocks until the platform acknowledges queueing the bid, so a
// successful return guarantees the bid joins the next slot; the
// admission confirmation itself arrives later as an EventWelcome.
func (a *Agent) SubmitBid(name string, duration core.Slot, cost float64) error {
	err := a.send(&protocol.Message{
		Type:     protocol.TypeBid,
		Name:     name,
		Duration: duration,
		Cost:     cost,
	})
	if err != nil {
		return err
	}
	select {
	case ackErr, ok := <-a.acks:
		if !ok {
			return errors.New("agent: connection closed before bid ack")
		}
		return ackErr
	case <-time.After(5 * time.Second):
		return errors.New("agent: timed out waiting for bid ack")
	}
}

// Events returns the platform notification stream. The channel closes
// when the connection ends.
func (a *Agent) Events() <-chan Event { return a.events }

// Close tears down the connection; pending events are still drained.
func (a *Agent) Close() error {
	var err error
	a.closeOnce.Do(func() { err = a.conn.Close() })
	return err
}

func (a *Agent) send(m *protocol.Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.w.Send(m)
}

func (a *Agent) readLoop() {
	defer close(a.events)
	defer close(a.stateful)
	defer close(a.acks)
	r := protocol.NewReader(a.conn)
	for {
		m, err := r.Receive()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				a.events <- Event{Kind: EventError, Err: err}
			}
			return
		}
		switch m.Type {
		case protocol.TypeState:
			select {
			case a.stateful <- RoundState{Slot: m.Slot, Slots: m.Slots, Value: m.Value, Round: m.Round}:
			default: // unsolicited state replies are dropped
			}
		case protocol.TypeWelcome:
			a.events <- Event{Kind: EventWelcome, Phone: m.Phone, Slot: m.Slot, Departure: m.Departure}
		case protocol.TypeSlot:
			a.events <- Event{Kind: EventSlot, Slot: m.Slot}
		case protocol.TypeAssign:
			a.events <- Event{Kind: EventAssign, Phone: m.Phone, Task: m.Task, Slot: m.Slot}
		case protocol.TypePayment:
			a.events <- Event{Kind: EventPayment, Phone: m.Phone, Amount: m.Amount, Slot: m.Slot}
		case protocol.TypeEnd:
			a.events <- Event{Kind: EventEnd, Welfare: m.Welfare, Payments: m.Payments, Round: m.Round}
		case protocol.TypeRound:
			a.events <- Event{Kind: EventRound, Round: m.Round}
		case protocol.TypeAck:
			select {
			case a.acks <- nil:
			default:
			}
		case protocol.TypeError:
			err := errors.New(m.Error)
			// A platform error may answer an in-flight bid; resolve the
			// waiter as well as emitting the event.
			select {
			case a.acks <- err:
			default:
			}
			a.events <- Event{Kind: EventError, Err: err}
		}
	}
}
