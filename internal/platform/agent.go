package platform

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/protocol"
)

// EventKind discriminates Agent events.
type EventKind int

// Agent event kinds.
const (
	EventWelcome  EventKind = iota + 1 // bid admitted; Phone and Departure set
	EventSlot                          // slot tick; Slot set
	EventAssign                        // won a task; Task and Slot set
	EventPayment                       // paid; Amount and Slot set
	EventEnd                           // round finished; Welfare, Payments, Round set
	EventRound                         // a new round opened; Round set (bid again!)
	EventClawback                      // defaulted; payment revoked; Amount and Slot set
	EventError                         // platform reported an error; Err set
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventWelcome:
		return "welcome"
	case EventSlot:
		return "slot"
	case EventAssign:
		return "assign"
	case EventPayment:
		return "payment"
	case EventEnd:
		return "end"
	case EventRound:
		return "round"
	case EventClawback:
		return "clawback"
	case EventError:
		return "error"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one platform notification delivered to the agent.
type Event struct {
	Kind      EventKind
	Phone     core.PhoneID
	Slot      core.Slot
	Departure core.Slot
	Task      core.TaskID
	Amount    float64
	Welfare   float64
	Payments  float64
	Round     int
	Err       error
}

// RoundState is the platform's reply to a hello.
type RoundState struct {
	Slot   core.Slot // last processed slot (0 before the first tick)
	Slots  core.Slot // round length m
	Value  float64   // per-task value ν
	Round  int       // current round number (1-based)
	Wire   string    // wire format in effect after this reply ("" means JSON)
	Budget float64   // round budget B (0 means unbudgeted)
}

// ReconnectPolicy configures a resilient agent's automatic reconnect:
// exponential backoff with jitter between dial attempts, resuming the
// agent's admitted phone via the resume{phone} protocol message. The
// zero value of any field takes the documented default.
type ReconnectPolicy struct {
	// MaxAttempts is the number of dial attempts per outage before the
	// agent gives up (default 8).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 50ms); each retry
	// doubles it up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter (each delay is scaled uniformly into
	// [0.5, 1.5)), so a swarm of reconnecting agents does not stampede
	// in lockstep while tests stay reproducible.
	Seed int64
	// DialTimeout bounds each dial attempt (default 5s). Ignored when
	// Dialer is set.
	DialTimeout time.Duration
	// Dialer overrides how connections are made — e.g. a chaos.Dialer
	// in fault-injection tests. Nil means plain TCP.
	Dialer func(addr string) (net.Conn, error)
}

func (p *ReconnectPolicy) withDefaults() *ReconnectPolicy {
	q := *p
	if q.MaxAttempts < 1 {
		q.MaxAttempts = 8
	}
	if q.BaseDelay <= 0 {
		q.BaseDelay = 50 * time.Millisecond
	}
	if q.MaxDelay <= 0 {
		q.MaxDelay = 2 * time.Second
	}
	if q.DialTimeout <= 0 {
		q.DialTimeout = 5 * time.Second
	}
	return &q
}

func (p *ReconnectPolicy) dial(addr string) (net.Conn, error) {
	if p.Dialer != nil {
		return p.Dialer(addr)
	}
	return net.DialTimeout("tcp", addr, p.DialTimeout)
}

// Agent is a smartphone client of the platform: it submits one bid and
// then consumes platform events until the round ends or the connection
// drops. Events are delivered on the Events channel in wire order; the
// channel closes when the connection ends for good.
//
// An agent dialed with DialResilient additionally survives connection
// loss: once its bid has been admitted (EventWelcome), a dropped
// connection triggers automatic redials with exponential backoff, and
// the new connection re-attaches to the same phone via resume{phone}.
// The platform replays the phone's standing on resume; the agent
// deduplicates the replay, so consumers still see each of welcome,
// assign, payment, and end at most once per round.
type Agent struct {
	addr   string
	policy *ReconnectPolicy // nil: a dropped connection is final
	events chan Event

	mu       sync.Mutex
	conn     net.Conn
	w        *protocol.Writer
	closed   bool
	stateful chan RoundState // pending hello reply
	acks     chan error      // pending bid acknowledgements

	// Resume and dedup state, touched only by the run goroutine.
	phone    core.PhoneID
	round    int
	welcomed bool
	assigned bool
	paid     bool
	ended    bool
	clawed   bool
	rng      *rand.Rand

	// mu-guarded mirrors of the run goroutine's standing, read by
	// ReportCompletion from the consumer goroutine.
	livePhone core.PhoneID
	liveRound int
	liveTask  core.TaskID // NoTask when holding no unresolved assignment
}

// Dial connects an agent to the platform. The connection is not
// resilient: if it drops, the event channel closes (see DialResilient).
func Dial(addr string) (*Agent, error) {
	return dial(addr, nil)
}

// DialResilient connects an agent that automatically reconnects and
// resumes its phone when the connection drops mid-round.
func DialResilient(addr string, policy ReconnectPolicy) (*Agent, error) {
	return dial(addr, policy.withDefaults())
}

func dial(addr string, policy *ReconnectPolicy) (*Agent, error) {
	var conn net.Conn
	var err error
	if policy != nil {
		conn, err = policy.dial(addr)
	} else {
		conn, err = net.DialTimeout("tcp", addr, 5*time.Second)
	}
	if err != nil {
		return nil, fmt.Errorf("agent: %w", err)
	}
	a := &Agent{
		addr:     addr,
		policy:   policy,
		conn:     conn,
		w:        protocol.NewWriter(conn),
		events:   make(chan Event, 64),
		stateful: make(chan RoundState, 1),
		acks:     make(chan error, 1),
		phone:    core.NoPhone,
		round:    1,

		livePhone: core.NoPhone,
		liveRound: 1,
		liveTask:  core.NoTask,
	}
	if policy != nil {
		a.rng = rand.New(rand.NewSource(policy.Seed))
	}
	go a.run(conn)
	return a, nil
}

// Hello queries the round state (current slot, round length, ν).
func (a *Agent) Hello() (RoundState, error) {
	return a.hello("")
}

// UpgradeBinary negotiates the compact binary wire framing: it sends
// hello{wire:"binary"} and blocks until the platform's state reply
// confirms the switch. Call it first on a fresh connection, before any
// other message — the negotiation contract forbids sending between the
// hello and the state reply. After it returns, all traffic both ways is
// binary-framed. A resilient agent that redials starts the new
// connection back in JSON (resume does not re-negotiate).
func (a *Agent) UpgradeBinary() (RoundState, error) {
	st, err := a.hello(protocol.WireBinary)
	if err != nil {
		return st, err
	}
	if st.Wire != protocol.WireBinary {
		return st, fmt.Errorf("agent: platform kept wire format %q", st.Wire)
	}
	// The read side switched itself when the state reply arrived (see
	// readConn); switching the writer here, after that reply, keeps the
	// negotiation ordering.
	a.mu.Lock()
	a.w.SetFormat(protocol.FormatBinary)
	a.mu.Unlock()
	return st, nil
}

func (a *Agent) hello(wire string) (RoundState, error) {
	if err := a.send(&protocol.Message{Type: protocol.TypeHello, Wire: wire}); err != nil {
		return RoundState{}, err
	}
	select {
	case st, ok := <-a.stateful:
		if !ok {
			return RoundState{}, errors.New("agent: connection closed before state reply")
		}
		return st, nil
	case <-time.After(5 * time.Second):
		return RoundState{}, errors.New("agent: timed out waiting for state")
	}
}

// SubmitBid submits this phone's (single) bid: it stays active for
// duration slots starting at the next slot tick and charges cost per
// task. It blocks until the platform acknowledges queueing the bid, so a
// successful return guarantees the bid joins the next slot; the
// admission confirmation itself arrives later as an EventWelcome.
func (a *Agent) SubmitBid(name string, duration core.Slot, cost float64) error {
	err := a.send(&protocol.Message{
		Type:     protocol.TypeBid,
		Name:     name,
		Duration: duration,
		Cost:     cost,
	})
	if err != nil {
		return err
	}
	select {
	case ackErr, ok := <-a.acks:
		if !ok {
			return errors.New("agent: connection closed before bid ack")
		}
		return ackErr
	case <-time.After(5 * time.Second):
		return errors.New("agent: timed out waiting for bid ack")
	}
}

// ReportCompletion tells the platform this phone performed its assigned
// task. Call after an EventAssign, before the platform's completion
// deadline lapses; a winner that never reports is defaulted — its task
// re-allocated and any issued payment revoked (EventClawback). It
// blocks until the platform acknowledges or rejects the report; a
// rejection carries the platform's typed reason (already completed, not
// assigned, tracking disabled).
func (a *Agent) ReportCompletion() error {
	a.mu.Lock()
	phone, task, round := a.livePhone, a.liveTask, a.liveRound
	a.mu.Unlock()
	if phone == core.NoPhone || task == core.NoTask {
		return errors.New("agent: no unresolved assignment to complete")
	}
	err := a.send(&protocol.Message{
		Type:  protocol.TypeComplete,
		Phone: phone,
		Task:  task,
		Round: round,
	})
	if err != nil {
		return err
	}
	select {
	case ackErr, ok := <-a.acks:
		if !ok {
			return errors.New("agent: connection closed before completion ack")
		}
		if ackErr == nil {
			a.mu.Lock()
			a.liveTask = core.NoTask
			a.mu.Unlock()
		}
		return ackErr
	case <-time.After(5 * time.Second):
		return errors.New("agent: timed out waiting for completion ack")
	}
}

// Events returns the platform notification stream. The channel closes
// when the connection ends (for a resilient agent: once reconnection is
// exhausted or no longer useful).
func (a *Agent) Events() <-chan Event { return a.events }

// Close tears down the connection; pending events are still drained.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	conn := a.conn
	a.mu.Unlock()
	return conn.Close()
}

func (a *Agent) isClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

func (a *Agent) send(m *protocol.Message) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.w.Send(m)
}

// run owns the agent's read side across the lifetime of possibly many
// connections. It exits — closing the event and reply channels — when a
// connection ends and resuming is impossible (not resilient, closed by
// the user, never admitted, round already over) or reconnection gives
// up.
func (a *Agent) run(conn net.Conn) {
	defer close(a.events)
	defer close(a.stateful)
	defer close(a.acks)
	for {
		err := a.readConn(conn)
		if !a.shouldResume() {
			if err != nil && !a.isClosed() && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				a.events <- Event{Kind: EventError, Err: err}
			}
			return
		}
		next := a.redial()
		if next == nil {
			return
		}
		conn = next
	}
}

// shouldResume reports whether a dropped connection is worth resuming:
// the agent is resilient, still wanted, holds an admitted phone, and
// the round is not over.
func (a *Agent) shouldResume() bool {
	return a.policy != nil && !a.isClosed() && a.welcomed && !a.ended
}

// redial attempts to re-establish the connection with exponential
// backoff and jitter, then re-attaches to the admitted phone with
// resume{phone, round}. It returns nil once attempts are exhausted or
// the agent is closed.
func (a *Agent) redial() net.Conn {
	delay := a.policy.BaseDelay
	for attempt := 1; attempt <= a.policy.MaxAttempts; attempt++ {
		// Jitter: scale into [0.5, 1.5) so reconnecting swarms spread out.
		time.Sleep(delay/2 + time.Duration(a.rng.Int63n(int64(delay))))
		if delay *= 2; delay > a.policy.MaxDelay {
			delay = a.policy.MaxDelay
		}
		if a.isClosed() {
			return nil
		}
		conn, err := a.policy.dial(a.addr)
		if err != nil {
			continue
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return nil
		}
		a.conn = conn
		a.w = protocol.NewWriter(conn)
		err = a.w.Send(&protocol.Message{Type: protocol.TypeResume, Phone: a.phone, Round: a.round})
		a.mu.Unlock()
		if err != nil {
			conn.Close()
			continue
		}
		return conn
	}
	if !a.isClosed() {
		a.events <- Event{
			Kind: EventError,
			Err:  fmt.Errorf("agent: gave up reconnecting after %d attempts", a.policy.MaxAttempts),
		}
	}
	return nil
}

// readConn consumes one connection's messages until it fails, updating
// the resume/dedup state and emitting events. Resume replays are
// deduplicated: each of welcome, assign, payment, clawback, and end
// reaches the consumer at most once per round.
func (a *Agent) readConn(conn net.Conn) error {
	r := protocol.NewReader(conn)
	for {
		m, err := r.Receive()
		if err != nil {
			return err
		}
		switch m.Type {
		case protocol.TypeState:
			if m.Round > 0 {
				a.round = m.Round
			}
			if m.Wire == protocol.WireBinary {
				// Negotiated upgrade confirmed: everything after this state
				// reply arrives binary-framed. The buffered-byte-preserving
				// reader makes the switch safe even if binary frames are
				// already sitting behind the reply.
				r.SetFormat(protocol.FormatBinary)
			}
			select {
			case a.stateful <- RoundState{Slot: m.Slot, Slots: m.Slots, Value: m.Value, Round: m.Round, Wire: m.Wire, Budget: m.Budget}:
			default: // unsolicited state replies are dropped
			}
		case protocol.TypeWelcome:
			first := !a.welcomed
			a.welcomed = true
			a.phone = m.Phone
			if m.Round > 0 {
				a.round = m.Round
			}
			a.mu.Lock()
			a.livePhone = m.Phone
			if m.Round > 0 {
				a.liveRound = m.Round
			}
			a.mu.Unlock()
			if first {
				a.events <- Event{Kind: EventWelcome, Phone: m.Phone, Slot: m.Slot, Departure: m.Departure, Round: m.Round}
			}
		case protocol.TypeSlot:
			a.events <- Event{Kind: EventSlot, Slot: m.Slot}
		case protocol.TypeAssign:
			first := !a.assigned
			a.assigned = true
			a.mu.Lock()
			a.liveTask = m.Task
			a.mu.Unlock()
			if first {
				a.events <- Event{Kind: EventAssign, Phone: m.Phone, Task: m.Task, Slot: m.Slot}
			}
		case protocol.TypePayment:
			first := !a.paid
			a.paid = true
			if first {
				a.events <- Event{Kind: EventPayment, Phone: m.Phone, Amount: m.Amount, Slot: m.Slot}
			}
		case protocol.TypeEnd:
			first := !a.ended
			a.ended = true
			if first {
				a.events <- Event{Kind: EventEnd, Welfare: m.Welfare, Payments: m.Payments, Round: m.Round}
			}
		case protocol.TypeClawback:
			// This phone was defaulted: its payment (possibly zero) is
			// revoked and its assignment is gone.
			first := !a.clawed
			a.clawed = true
			a.mu.Lock()
			a.liveTask = core.NoTask
			a.mu.Unlock()
			if first {
				a.events <- Event{Kind: EventClawback, Phone: m.Phone, Amount: m.Amount, Slot: m.Slot}
			}
		case protocol.TypeRound:
			// A fresh round: phone IDs restarted, the dedup ledger resets,
			// and the agent may bid again.
			a.phone = core.NoPhone
			a.welcomed, a.assigned, a.paid, a.ended, a.clawed = false, false, false, false, false
			a.round = m.Round
			a.mu.Lock()
			a.livePhone, a.liveTask, a.liveRound = core.NoPhone, core.NoTask, m.Round
			a.mu.Unlock()
			a.events <- Event{Kind: EventRound, Round: m.Round}
		case protocol.TypeAck:
			select {
			case a.acks <- nil:
			default:
			}
		case protocol.TypeError:
			err := errors.New(m.Error)
			// A platform error may answer an in-flight bid; resolve the
			// waiter as well as emitting the event.
			select {
			case a.acks <- err:
			default:
			}
			a.events <- Event{Kind: EventError, Err: err}
		}
	}
}
