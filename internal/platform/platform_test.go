package platform

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"dynacrowd/internal/core"
	"dynacrowd/internal/protocol"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialAgent(t *testing.T, addr string) *Agent {
	t.Helper()
	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// waitEvent pulls events until one of the wanted kind arrives, failing
// on timeout or channel close. Other event kinds are collected into
// skipped for callers that care.
func waitEvent(t *testing.T, a *Agent, kind EventKind) Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-a.Events():
			if !ok {
				t.Fatalf("event channel closed while waiting for %v", kind)
			}
			if ev.Kind == EventError {
				t.Fatalf("platform error while waiting for %v: %v", kind, ev.Err)
			}
			if ev.Kind == kind {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %v", kind)
		}
	}
}

func TestListenValidatesConfig(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", Config{Slots: 0, Value: 10}); err == nil {
		t.Fatal("want config error")
	}
}

func TestHelloReportsState(t *testing.T) {
	s := newTestServer(t, Config{Slots: 7, Value: 42})
	a := dialAgent(t, s.Addr())
	st, err := a.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if st.Slots != 7 || st.Value != 42 || st.Slot != 0 {
		t.Fatalf("state = %+v", st)
	}
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	st, err = a.Hello()
	if err != nil {
		t.Fatal(err)
	}
	if st.Slot != 1 {
		t.Fatalf("slot after tick = %d, want 1", st.Slot)
	}
}

// TestSingleAgentRound: one phone, one task; the phone wins, is paid the
// reserve ν (no competition), and sees the full event sequence.
func TestSingleAgentRound(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10})
	a := dialAgent(t, s.Addr())

	if err := a.SubmitBid("solo", 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // slot 1: bid admitted, 1 task
		t.Fatal(err)
	}
	w := waitEvent(t, a, EventWelcome)
	if w.Phone != 0 || w.Slot != 1 || w.Departure != 2 {
		t.Fatalf("welcome = %+v", w)
	}
	asg := waitEvent(t, a, EventAssign)
	if asg.Task != 0 || asg.Slot != 1 {
		t.Fatalf("assign = %+v", asg)
	}
	if _, err := s.Tick(0); err != nil { // slot 2: departure, payment due
		t.Fatal(err)
	}
	pay := waitEvent(t, a, EventPayment)
	if pay.Amount != 10 || pay.Slot != 2 {
		t.Fatalf("payment = %+v (want reserve 10 in slot 2)", pay)
	}
	if _, err := s.Tick(0); err != nil { // slot 3: round ends
		t.Fatal(err)
	}
	end := waitEvent(t, a, EventEnd)
	if end.Welfare != 6 || end.Payments != 10 {
		t.Fatalf("end = %+v", end)
	}
	if !s.Done() {
		t.Fatal("server not done after final slot")
	}
}

// TestCompetitionPayments: two phones in one slot, cheaper wins, paid
// the loser's cost (the critical value).
func TestCompetitionPayments(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 100})
	cheap := dialAgent(t, s.Addr())
	costly := dialAgent(t, s.Addr())

	if err := cheap.SubmitBid("cheap", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := costly.SubmitBid("costly", 1, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	asg := waitEvent(t, cheap, EventAssign)
	pay := waitEvent(t, cheap, EventPayment) // departure slot == win slot
	if asg.Slot != 1 || pay.Amount != 30 {
		t.Fatalf("cheap phone: assign %+v pay %+v, want paid 30", asg, pay)
	}
	// The losing phone sees slot ticks but no assignment.
	waitEvent(t, costly, EventSlot)
	select {
	case ev := <-costly.Events():
		if ev.Kind == EventAssign || ev.Kind == EventPayment {
			t.Fatalf("loser received %v", ev.Kind)
		}
	default:
	}
}

// TestPlatformMatchesBatchMechanism: a scripted multi-agent round ends
// with exactly the outcome the batch online mechanism computes on the
// equivalent instance.
func TestPlatformMatchesBatchMechanism(t *testing.T) {
	s := newTestServer(t, Config{Slots: 5, Value: 20})

	// Mirror the paper's Fig. 4 example: (joinSlot, duration, cost).
	script := []struct {
		join     core.Slot
		duration core.Slot
		cost     float64
	}{
		{2, 4, 3}, {1, 4, 5}, {3, 3, 11}, {4, 2, 9}, {2, 1, 4}, {3, 3, 8}, {1, 3, 6},
	}
	agents := make([]*Agent, len(script))
	for i := range agents {
		agents[i] = dialAgent(t, s.Addr())
	}

	totalPaid := map[int]float64{}
	assigned := map[int]core.Slot{}
	for slot := core.Slot(1); slot <= 5; slot++ {
		for i, sc := range script {
			if sc.join == slot {
				if err := agents[i].SubmitBid("phone", sc.duration, sc.cost); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	// Collect every event until the end marker on each agent.
	for i, a := range agents {
		for ev := range a.Events() {
			switch ev.Kind {
			case EventAssign:
				assigned[i] = ev.Slot
			case EventPayment:
				totalPaid[i] += ev.Amount
			case EventError:
				t.Fatalf("agent %d: %v", i, ev.Err)
			}
			if ev.Kind == EventEnd {
				break
			}
		}
	}

	// Equivalent batch instance and expectations (core tests verify the
	// batch numbers against the paper's walkthrough).
	batchOut, err := (&core.OnlineMechanism{}).Run(s.Instance())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Outcome().Welfare; math.Abs(got-batchOut.Welfare) > 1e-9 {
		t.Fatalf("platform welfare %g != batch %g", got, batchOut.Welfare)
	}
	// Paper walkthrough: winners are phones 2,1,7,6,4 in slots 1..5 and
	// phone 1 (index 0) is paid 9. Note platform IDs are assigned in
	// arrival order, which differs from the script order.
	if assigned[0] != 2 {
		t.Fatalf("phone 1 won in slot %d, want 2", assigned[0])
	}
	if totalPaid[0] != 9 {
		t.Fatalf("phone 1 paid %g, want 9", totalPaid[0])
	}
	var paidSum float64
	for _, v := range totalPaid {
		paidSum += v
	}
	if math.Abs(paidSum-batchOut.TotalPayment()) > 1e-9 {
		t.Fatalf("total notified payments %g != batch %g", paidSum, batchOut.TotalPayment())
	}
}

// TestBidAfterRoundEndRejected: bids after the final slot get an error
// event.
func TestBidAfterRoundEndRejected(t *testing.T) {
	s := newTestServer(t, Config{Slots: 1, Value: 10})
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	a := dialAgent(t, s.Addr())
	err := a.SubmitBid("late", 1, 5)
	if err == nil || !strings.Contains(err.Error(), "complete") {
		t.Fatalf("SubmitBid error = %v, want round-complete error", err)
	}
}

// TestMalformedMessageGetsError: garbage on the wire produces an error
// reply and a closed connection, without disturbing the round.
func TestMalformedMessageGetsError(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10})
	a := dialAgent(t, s.Addr())
	// Send an unknown type through the raw writer.
	if err := a.send(&protocol.Message{Type: "bogus"}); err == nil {
		// The protocol Writer encodes anything; the server must reject.
		ev := <-a.Events()
		if ev.Kind != EventError {
			t.Fatalf("event = %+v, want error", ev)
		}
	}
	// The round continues unharmed.
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
}

// TestDurationClampedToRound: a duration overrunning the round is
// truncated to the last slot.
func TestDurationClampedToRound(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("long", 99, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	w := waitEvent(t, a, EventWelcome)
	if w.Departure != 3 {
		t.Fatalf("departure = %d, want clamped 3", w.Departure)
	}
}

// TestAgentDisconnectDoesNotStallRound: a winner disconnecting before
// its payment slot must not break later ticks.
func TestAgentDisconnectDoesNotStallRound(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("flaky", 3, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, a, EventAssign)
	a.Close()
	time.Sleep(20 * time.Millisecond)
	for !s.Done() {
		if _, err := s.Tick(0); err != nil {
			t.Fatal(err)
		}
	}
	// The auction still accounts for the winner.
	out := s.Outcome()
	if out.Allocation.NumServed() != 1 {
		t.Fatal("disconnected winner lost its assignment")
	}
}

// TestRunClock drives a tiny round on a fast wall clock.
func TestRunClock(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("clocked", 3, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.RunClock(5*time.Millisecond, func(core.Slot) int { return 1 }) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunClock did not finish")
	}
	if !s.Done() {
		t.Fatal("round incomplete after RunClock")
	}
	if served := s.Outcome().Allocation.NumServed(); served != 1 {
		t.Fatalf("served %d tasks, want 1 (single phone serves once)", served)
	}
}

// TestCloseIdempotent: closing twice is fine; ticks after close fail.
func TestCloseIdempotent(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(0); err == nil {
		t.Fatal("tick after close must fail")
	}
}

func TestEventKindString(t *testing.T) {
	for k := EventWelcome; k <= EventError; k++ {
		if strings.Contains(k.String(), "EventKind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if !strings.Contains(EventKind(99).String(), "99") {
		t.Fatal("unknown kind should render its number")
	}
}

// TestSecondBidRejected: the paper's one-bid-per-phone rule is enforced
// per connection.
func TestSecondBidRejected(t *testing.T) {
	s := newTestServer(t, Config{Slots: 3, Value: 10})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("first", 2, 4); err != nil {
		t.Fatal(err)
	}
	err := a.SubmitBid("second", 2, 3)
	if err == nil || !strings.Contains(err.Error(), "already submitted") {
		t.Fatalf("second bid error = %v", err)
	}
	// The first bid still participates.
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	if s.Outcome().Allocation.NumServed() != 1 {
		t.Fatal("first bid lost")
	}
}

// TestTornWriteThenDisconnect: a client that sends half a JSON line and
// vanishes must not disturb the round or leak its session.
func TestTornWriteThenDisconnect(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte(`{"type":"bi`)); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	time.Sleep(20 * time.Millisecond)

	// The round continues and a well-behaved agent is unaffected.
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("fine", 1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	if s.Outcome().Allocation.NumServed() != 1 {
		t.Fatal("round disturbed by torn write")
	}
	if live := s.Stats().LiveConnections; live != 1 {
		t.Fatalf("leaked sessions: %d live", live)
	}
}

// TestGarbageFlood: a client streaming non-JSON noise is cut off after
// its first malformed line and the server stays healthy.
func TestGarbageFlood(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 10})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 50; i++ {
		if _, err := conn.Write([]byte("???? not json ????\n")); err != nil {
			break // server already hung up — that's the point
		}
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := s.Tick(0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ProtocolErrors == 0 {
		t.Fatal("garbage not recorded as a protocol error")
	}
}
