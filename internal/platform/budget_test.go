package platform

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dynacrowd/internal/budget"
	"dynacrowd/internal/obs"
)

// TestBudgetConfigValidation pins the typed rejection of bad budget
// knobs at Listen time.
func TestBudgetConfigValidation(t *testing.T) {
	base := Config{Slots: 4, Value: 10}
	bad := []struct {
		name string
		mut  func(*Config)
		want error
	}{
		{"negative", func(c *Config) { c.Budget = -3 }, budget.ErrInvalidBudget},
		{"nan-rejected-by-engine", func(c *Config) { c.Budget = 5; c.BudgetEngine = "simplex" }, nil},
		{"with-shards", func(c *Config) { c.Budget = 5; c.Shards = 4 }, ErrBudgetIncompatible},
		{"with-dshard", func(c *Config) { c.Budget = 5; c.ShardAddrs = []string{"x"} }, ErrBudgetIncompatible},
		{"with-completions", func(c *Config) { c.Budget = 5; c.CompletionDeadline = 2 }, ErrBudgetIncompatible},
	}
	for _, tc := range bad {
		cfg := base
		tc.mut(&cfg)
		_, err := Listen("127.0.0.1:0", cfg)
		if err == nil {
			t.Errorf("%s: config accepted", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestBudgetedRoundEndToEnd runs the Fig-5-style counterexample script
// through a live budgeted platform: the state message advertises the
// budget, total payments respect it, winners are paid at least their
// cost, and the end message carries the budget.
func TestBudgetedRoundEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Slots: 2, Value: 30, Budget: 40})
	agents := make([]*Agent, 3)
	for i := range agents {
		agents[i] = dialAgent(t, s.Addr())
	}
	st, err := agents[0].Hello()
	if err != nil {
		t.Fatal(err)
	}
	if st.Budget != 40 {
		t.Fatalf("state budget %g, want 40", st.Budget)
	}

	// The instance of TestBudgetEnginesPassCounterexample, live:
	// phones (window, cost): 0:[1,2]c4, 1:[1,2]c5, 2:[2,2]c8;
	// tasks: two in slot 1, one in slot 2.
	if err := agents[0].SubmitBid("a", 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := agents[1].SubmitBid("b", 2, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(2); err != nil {
		t.Fatal(err)
	}
	if err := agents[2].SubmitBid("c", 1, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("round should be over")
	}

	costs := []float64{4, 5, 8}
	var total float64
	for i, a := range agents {
		var paid float64
		for ev := range a.Events() {
			switch ev.Kind {
			case EventPayment:
				paid += ev.Amount
			case EventEnd:
				if ev.Payments > 40+1e-9 {
					t.Fatalf("end reports %g paid, over budget", ev.Payments)
				}
			case EventError:
				t.Fatalf("agent %d: %v", i, ev.Err)
			}
			if ev.Kind == EventEnd {
				a.Close()
			}
		}
		if paid > 0 && paid < costs[i]-1e-9 {
			t.Errorf("phone %d paid %g below cost %g", i, paid, costs[i])
		}
		total += paid
	}
	if total > 40+1e-9 {
		t.Fatalf("total paid %g exceeds budget 40", total)
	}
	if total == 0 {
		t.Fatal("budgeted round paid nobody; the gates are over-tight")
	}
}

// TestBudgetedBidRejectedWhenExhausted drives a tiny budgeted round to
// full commitment and checks the platform refuses further bids with the
// typed budget-exhausted reason.
func TestBudgetedBidRejectedWhenExhausted(t *testing.T) {
	// m=4 → stages end 1,2,4 with allowances B/4, B/2, B. A lone cheap
	// phone is allowance-blocked in stages 1–2 (its exclude-self sample
	// is empty, so its cap is the non-binding ν = B), then wins in slot
	// 3 reserving the full budget — exhaustion with one slot to spare.
	s := newTestServer(t, Config{Slots: 4, Value: 30, Budget: 30})
	first := dialAgent(t, s.Addr())
	if err := first.SubmitBid("first", 4, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	waitEvent(t, first, EventAssign)

	late := dialAgent(t, s.Addr())
	err := late.SubmitBid("late", 1, 1)
	if err == nil {
		t.Fatal("bid accepted after the budget was fully committed")
	}
	if !strings.Contains(err.Error(), "budget") || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("rejection reason %q does not name the exhausted budget", err)
	}
}

// TestBudgetedCheckpointResume checkpoints a budgeted round mid-stage,
// resumes it on a fresh server, and finishes the round; the budgeted
// engine and its stage state must survive the trip.
func TestBudgetedCheckpointResume(t *testing.T) {
	cfg := Config{Slots: 4, Value: 30, Budget: 16}
	s := newTestServer(t, cfg)
	a := dialAgent(t, s.Addr())
	b := dialAgent(t, s.Addr())
	if err := a.SubmitBid("a", 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitBid("b", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tick(1); err != nil { // slot 1: allowance too tight, no win
		t.Fatal(err)
	}
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Resume("127.0.0.1:0", cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ra, ok := s2.auction.(*budget.Auction)
	if !ok {
		t.Fatalf("resumed auction is %T, not budgeted", s2.auction)
	}
	if ra.Now() != 1 || ra.Budget() != 16 {
		t.Fatalf("resumed clock %d budget %g", ra.Now(), ra.Budget())
	}
	for ra.Now() < cfg.Slots {
		if _, err := s2.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	out := ra.Outcome()
	if got := out.TotalPayment(); got > 16+1e-9 {
		t.Fatalf("resumed round paid %g over budget 16", got)
	}
	if out.Allocation.NumServed() == 0 {
		t.Fatal("resumed round served nothing")
	}
}

// TestBudgetObservabilityWiring checks the platform attaches the budget
// instrument bundle and the stage trace events to a budgeted round.
func TestBudgetObservabilityWiring(t *testing.T) {
	sink := &obs.MemorySink{}
	o := &obs.Observability{Registry: obs.NewRegistry(), Tracer: obs.NewTracer(256, sink)}
	s := newTestServer(t, Config{Slots: 4, Value: 30, Budget: 16, Obs: o})
	a := dialAgent(t, s.Addr())
	if err := a.SubmitBid("a", 4, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	var buf bytes.Buffer
	if err := o.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dynacrowd_budget_") {
		t.Fatalf("no dynacrowd_budget_* metrics registered:\n%s", buf.String())
	}
	var stages int
	for _, ev := range sink.Events() {
		if ev.Type == obs.EventBudgetStage {
			stages++
		}
	}
	if stages == 0 {
		t.Fatal("no budget_stage trace events reached the sink")
	}
}
